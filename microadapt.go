// Package microadapt is a from-scratch Go reproduction of "Micro
// Adaptivity in Vectorwise" (Răducanu, Boncz, Żukowski; SIGMOD 2013).
//
// Micro Adaptivity keeps many functionally equivalent implementations
// ("flavors") of every vectorized query-execution primitive and picks one
// at each call with a multi-armed-bandit learning algorithm — vw-greedy —
// guided by the costs observed so far. This package is the public facade
// over the full system: the flavor framework and bandit algorithms
// (internal/core), the primitive library with every flavor axis the paper
// studies (internal/primitive), the vectorized engine and TPC-H workload
// (internal/engine, internal/tpch), the virtual-hardware substitution for
// compilers and machines (internal/hw), and the experiment harness that
// regenerates every table and figure of the paper (internal/bench).
//
// Quickstart:
//
//	sess := microadapt.NewSession(microadapt.AllFlavors(), microadapt.Machine1())
//	db := microadapt.GenerateTPCH(0.01, 42)
//	result, err := microadapt.RunQuery(db, sess, 12)
//
// See examples/ for runnable programs and cmd/madapt for the CLI.
package microadapt

import (
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"

	"microadapt/internal/bench"
	"microadapt/internal/core"
	"microadapt/internal/engine"
	"microadapt/internal/heuristics"
	"microadapt/internal/hw"
	"microadapt/internal/plan"
	"microadapt/internal/policy"
	"microadapt/internal/primitive"
	"microadapt/internal/server"
	"microadapt/internal/service"
	"microadapt/internal/storage"
	"microadapt/internal/tpch"
)

// Re-exported core types. See the internal packages for full API docs.
type (
	// Session owns a primitive dictionary, a machine profile, a flavor-
	// selection policy and the primitive instances of executed plans.
	Session = core.Session
	// Chooser is a flavor-selection policy (a bandit over flavors).
	Chooser = core.Chooser
	// ChooseContext carries the instance and live call a policy may inspect.
	ChooseContext = core.ChooseContext
	// Observation reports the measured outcome of one primitive call.
	Observation = core.Observation
	// Snapshotter is the knowledge-export capability of learning policies.
	Snapshotter = core.Snapshotter
	// WarmStarter is the knowledge-import capability of learning policies.
	WarmStarter = core.WarmStarter
	// ChooserFactory builds a fresh Chooser for an n-flavor instance.
	ChooserFactory = core.ChooserFactory
	// PolicyDefinition describes one entry of the policy registry.
	PolicyDefinition = policy.Definition
	// VWParams are the vw-greedy tuning knobs (§3.2 of the paper).
	VWParams = core.VWParams
	// Machine is a virtual machine profile (Table 2 of the paper).
	Machine = hw.Machine
	// FlavorOptions selects which flavor axes get registered.
	FlavorOptions = primitive.Options
	// DB is a generated TPC-H database.
	DB = tpch.DB
	// Table is an in-memory column-store relation (also query results).
	Table = engine.Table
	// ExperimentConfig parameterizes the paper-experiment harness.
	ExperimentConfig = bench.Config
	// Report is a rendered experiment result.
	Report = bench.Report
	// Service executes TPC-H queries concurrently over one shared database
	// with a cross-session flavor-knowledge cache (see internal/service).
	Service = service.Service
	// ServiceConfig parameterizes a Service.
	ServiceConfig = service.Config
	// LoadConfig describes a load-generation run against a Service.
	LoadConfig = service.LoadConfig
	// LoadMetrics aggregates throughput, latency and adaptation overhead.
	LoadMetrics = service.Metrics
	// PlanBuilder accumulates the logical plan DAG of one query; the
	// physical planner lowers it onto engine operators, derives instance
	// labels from plan position, and fans morsel-partitionable
	// scan→select→project chains into parallel fragments automatically.
	PlanBuilder = plan.Builder
	// PlanNode is one logical operator of a plan DAG.
	PlanNode = plan.Node
	// PlanExec is a plan bound to a session, ready to materialize roots.
	PlanExec = plan.Exec
	// PlanPred is one conjunct of a plan-level Select.
	PlanPred = plan.Pred
	// PlanScalar defers a predicate constant to a scalar subplan's result.
	PlanScalar = plan.Scalar
	// AggSpec is one aggregate output of an aggregation node.
	AggSpec = engine.AggSpec
	// AggFn enumerates the aggregate functions.
	AggFn = engine.AggFn
	// ProjExpr is one output column of a projection node.
	ProjExpr = engine.ProjExpr
	// SortKey describes one ordering column.
	SortKey = engine.SortKey
	// EncodedTable is a relation resident in compressed columnar form.
	EncodedTable = storage.EncodedTable
	// EncodedColumn is one column resident in an encoding (dictionary,
	// run-length, bit-packed, or flat passthrough).
	EncodedColumn = storage.EncodedColumn
	// Server is the HTTP/JSON serving layer over a Service: per-client
	// sessions, bounded admission with per-request deadlines, load
	// shedding, graceful drain, and a metrics endpoint (see
	// internal/server and cmd/madaptd).
	Server = server.Server
	// ServerConfig parameterizes a Server.
	ServerConfig = server.Config
	// ServerClient talks the madaptd wire protocol.
	ServerClient = server.Client
	// SoakConfig parameterizes a sustained open-loop load run against a
	// server, with sampled bit-identical result verification.
	SoakConfig = server.SoakConfig
	// SoakReport is a soak run's outcome; Validate applies the acceptance
	// criteria (zero protocol errors, zero mismatches, stable p99).
	SoakReport = server.SoakReport
	// TableResolver resolves scan-table names when decoding wire plans.
	TableResolver = plan.TableResolver
)

// Aggregate functions usable in plan aggregation nodes.
const (
	AggSum   = engine.AggSum
	AggCount = engine.AggCount
	AggMin   = engine.AggMin
	AggMax   = engine.AggMax
	AggAvg   = engine.AggAvg
	AggFirst = engine.AggFirst
)

// Agg builds an aggregate spec: fn over column col, named as.
func Agg(fn AggFn, col int, as string) AggSpec { return engine.Agg(fn, col, as) }

// Keep passes an input column through a projection unchanged.
func Keep(name string, idx int) ProjExpr { return engine.Keep(name, idx) }

// Asc sorts ascending on col.
func Asc(col int) SortKey { return engine.Asc(col) }

// Desc sorts descending on col.
func Desc(col int) SortKey { return engine.Desc(col) }

// Plan-level predicate constructors (see internal/plan for the full API).
func PlanCmpVal(col int, op string, value any) PlanPred { return plan.CmpVal(col, op, value) }

// PlanCmpCol builds a column-vs-column plan predicate.
func PlanCmpCol(col int, op string, rhs int) PlanPred { return plan.CmpCol(col, op, rhs) }

// PlanLike builds a LIKE plan predicate.
func PlanLike(col int, pattern string) PlanPred { return plan.Like(col, pattern) }

// PlanInStr builds an IN-list plan predicate over a string column.
func PlanInStr(col int, values ...string) PlanPred { return plan.InStr(col, values...) }

// PlanCmpScalar builds a column-vs-scalar plan predicate; the constant is
// resolved from the scalar's source subplan at lowering time.
func PlanCmpScalar(col int, op string, s PlanScalar) PlanPred { return plan.CmpScalar(col, op, s) }

// PlanScalarOf references row 0 of column col of node n's result.
func PlanScalarOf(n *PlanNode, col string) PlanScalar { return plan.ScalarOf(n, col) }

// Machine profiles of the paper's Table 2.
func Machine1() *Machine { return hw.Machine1() }

// Machine2 is the Intel Core2 box.
func Machine2() *Machine { return hw.Machine2() }

// Machine3 is the AMD Egypt box.
func Machine3() *Machine { return hw.Machine3() }

// Machine4 is the Intel Sandy Bridge box.
func Machine4() *Machine { return hw.Machine4() }

// DefaultFlavors registers one flavor per primitive (the baseline build).
func DefaultFlavors() FlavorOptions { return primitive.Defaults() }

// AllFlavors registers every flavor on every axis: three compilers x
// branching x full-computation x loop-fission x hand-unrolling.
func AllFlavors() FlavorOptions { return primitive.Everything() }

// BranchFlavors widens only the branching axis of selection primitives
// (the flavor set of Table 6).
func BranchFlavors() FlavorOptions { return primitive.BranchSet() }

// CompilerFlavors widens only the compiler axis (Table 7).
func CompilerFlavors() FlavorOptions { return primitive.CompilerSet() }

// DecompressFlavors widens only the decompression-strategy axis (the
// compressed-storage scenario: eager vs lazy decode, operate-on-compressed
// selection).
func DecompressFlavors() FlavorOptions { return primitive.DecompressSet() }

// EncodeTable analyzes a table's columns and makes it resident in
// compressed columnar form; plans then scan it through the adaptive
// decompression flavor family. Use DB.Encode to encode a whole database.
func EncodeTable(t *Table) *EncodedTable { return engine.EncodeTable(t) }

// DefaultVWParams returns the parameters the paper's trace study found
// best: (EXPLORE_PERIOD, EXPLOIT_PERIOD, EXPLORE_LENGTH) = (1024, 8, 2).
func DefaultVWParams() VWParams { return core.DefaultVWParams() }

// NewSession builds a session with vw-greedy flavor selection.
func NewSession(o FlavorOptions, m *Machine, opts ...core.SessionOption) *Session {
	return core.NewSession(primitive.NewDictionary(o), m, opts...)
}

// WithVectorSize sets tuples per vector (default 1024).
func WithVectorSize(n int) core.SessionOption { return core.WithVectorSize(n) }

// WithSeed sets the session's deterministic seed.
func WithSeed(seed int64) core.SessionOption { return core.WithSeed(seed) }

// WithChooser overrides the flavor-selection policy.
func WithChooser(f ChooserFactory) core.SessionOption { return core.WithChooser(f) }

// WithParallelism sets intra-query pipeline parallelism: partitionable
// plans (the scan-heavy TPC-H pipelines) fan into P morsel streams, each on
// its own goroutine with its own fragment session and choosers, merged by
// an exchange that preserves the serial plan's row order and aggregates all
// partitions' learned flavor knowledge.
func WithParallelism(p int) core.SessionOption { return core.WithParallelism(p) }

// VWGreedyChooser returns a policy factory for vw-greedy with the given
// parameters and seed. Every chooser the factory builds draws its own
// random stream derived from seed — never a shared rand — so the factory
// is safe to use with parallel sessions (WithParallelism spawns fragment
// sessions whose choosers run on concurrent goroutines). Streams are
// assigned in chooser-creation order; with one factory serving several
// concurrently opening fragments that order follows goroutine scheduling,
// so parallel cycle traces may vary run to run (results never do). Use
// core.WithFragmentSpawner with a per-fragment factory for bit-reproducible
// parallel runs.
func VWGreedyChooser(p VWParams, seed int64) ChooserFactory {
	var ctr atomic.Int64
	return func(n int) Chooser {
		// The odd stride decorrelates consecutive streams (same scheme as
		// the policy registry).
		rng := rand.New(rand.NewSource(seed + ctr.Add(1)*6364136223846793005))
		return core.NewVWGreedy(n, p, rng)
	}
}

// HeuristicsChooser returns the hard-coded threshold policy of §4.2,
// tuned for the given machine.
func HeuristicsChooser(m *Machine) ChooserFactory {
	return heuristics.Factory(m, heuristics.Default())
}

// FixedChooser pins every instance to one flavor index (clamped); it is
// the registry's "fixed:arm=N" policy.
func FixedChooser(arm int) ChooserFactory {
	if arm < 0 {
		arm = 0
	}
	return policy.MustFactory(fmt.Sprintf("fixed:arm=%d", arm), policy.Env{})
}

// PolicyChooser resolves a policy-registry spec string — e.g. "vw-greedy",
// "ucb1:c=2", "eps-greedy:eps=0.05", "fixed:arm=1" — into a chooser
// factory for the given machine and seed. Each chooser the factory builds
// gets its own deterministic random stream, so one factory may serve
// concurrently running sessions (individual choosers stay single-
// threaded). See Policies for the registry.
func PolicyChooser(spec string, m *Machine, seed int64) (ChooserFactory, error) {
	return policy.NewFactory(spec, policy.Env{Machine: m, Seed: seed})
}

// Policies lists the policy registry: name, parameter documentation, and
// warm-start capability of every selectable policy.
func Policies() []PolicyDefinition { return policy.Definitions() }

// PolicyNames lists the registered policy names, sorted.
func PolicyNames() []string { return policy.Names() }

// GenerateTPCH builds the deterministic TPC-H database at a scale factor.
func GenerateTPCH(sf float64, seed int64) *DB { return tpch.Generate(sf, seed) }

// RunQuery executes TPC-H query n (1-22) and returns its result table.
func RunQuery(db *DB, s *Session, n int) (*Table, error) {
	return tpch.Query(n).Run(db, s)
}

// NewPlan starts a declarative plan builder; name prefixes the derived
// plan-position instance labels ("name/sel0", "name/hj2", ...). Build the
// DAG with the Scan/Select/Project/Agg/Join/Sort methods, register roots,
// then Bind to a session and Run a root:
//
//	b := microadapt.NewPlan("revenue")
//	sel := b.Scan(db.Lineitem, "l_shipdate", "l_extendedprice").Select(...)
//	b.Root(sel.Agg(nil, ...))
//	tab, err := b.Bind(sess).Run(b.MainRoot())
func NewPlan(name string) *PlanBuilder { return plan.New(name) }

// ExplainQuery renders TPC-H query n's logical plan plus its physical
// lowering at pipeline parallelism p, partition annotations included.
func ExplainQuery(db *DB, n, p int) string { return tpch.Explain(db, n, p) }

// RunAllQueries executes the full 22-query suite in one session.
func RunAllQueries(db *DB, s *Session) error { return bench.RunTPCH(db, s) }

// FormatTable renders up to maxRows of a result table.
func FormatTable(t *Table, maxRows int) string { return engine.TableString(t, maxRows) }

// DefaultExperimentConfig returns the standard experiment configuration.
func DefaultExperimentConfig() ExperimentConfig { return bench.DefaultConfig() }

// RunExperiment regenerates one of the paper's tables or figures by id
// (e.g. "fig2", "table11"); see ExperimentIDs.
func RunExperiment(cfg ExperimentConfig, id string) (*Report, error) {
	e, ok := bench.ByID(id)
	if !ok {
		return nil, &UnknownExperimentError{ID: id}
	}
	return e.Run(cfg)
}

// RunAllExperiments regenerates every table and figure, writing reports
// to w.
func RunAllExperiments(cfg ExperimentConfig, w io.Writer) error {
	return bench.RunAll(cfg, w)
}

// ExperimentIDs lists the available experiment ids.
func ExperimentIDs() []string { return bench.IDs() }

// DefaultServiceConfig returns a ready-to-run concurrent-service
// configuration (GOMAXPROCS workers, all flavors, warm start on).
func DefaultServiceConfig() ServiceConfig { return service.DefaultConfig() }

// NewService builds a concurrent adaptive query service over db. Sessions
// are created fresh per query; with cfg.WarmStart they seed their choosers
// from the per-flavor costs earlier queries observed.
func NewService(db *DB, cfg ServiceConfig) *Service { return service.New(db, cfg) }

// NewServer builds the HTTP/JSON serving layer over a service; serve it
// with server.Start or mount it on any http mux (it implements
// http.Handler). cmd/madaptd is the packaged binary.
func NewServer(cfg ServerConfig) *Server { return server.NewServer(cfg) }

// NewServerClient builds a client for a running madaptd base URL.
func NewServerClient(base string) *ServerClient { return server.NewClient(base) }

// MarshalPlan serializes a logical plan DAG to its canonical JSON wire
// form — the body of madaptd's /v1/plan endpoint. Plans referencing
// opaque Go functions refuse to marshal; use RegisterPlanMapFn names and
// pattern-based CaseLikeStr instead.
func MarshalPlan(b *PlanBuilder) ([]byte, error) { return plan.MarshalPlan(b) }

// UnmarshalPlan validates a wire plan and rebuilds it against the tables
// resolve provides. All structural validation (node kinds, operator and
// aggregate sets, backward-only references, arity, column ranges) happens
// here; untrusted input comes back as an error, never a panic.
func UnmarshalPlan(data []byte, resolve TableResolver) (*PlanBuilder, error) {
	return plan.UnmarshalPlan(data, resolve)
}

// RegisterPlanMapFn names an int64 map function so MapI64 expressions
// using it survive the plan wire format.
func RegisterPlanMapFn(name string, fn func(int64) int64) { plan.RegisterMapI64(name, fn) }

// RunSoak drives a sustained open-loop load run (query mix, burst
// phases, sampled bit-identical result checks) against a running server,
// or an in-process one when cfg.URL is empty.
func RunSoak(cfg SoakConfig) (*SoakReport, error) { return server.RunSoak(cfg) }

// UnknownExperimentError reports a bad experiment id.
type UnknownExperimentError struct{ ID string }

func (e *UnknownExperimentError) Error() string {
	return "microadapt: unknown experiment " + e.ID
}
