// Quickstart: generate a small TPC-H database, run a query with Micro
// Adaptivity enabled (all flavors, vw-greedy selection), and inspect what
// the framework learned: which flavor each primitive instance settled on.
package main

import (
	"fmt"
	"log"

	"microadapt"
)

func main() {
	// A session carries the primitive dictionary (here: every flavor on
	// every axis), the virtual machine profile, and the learning policy
	// (vw-greedy by default).
	sess := microadapt.NewSession(
		microadapt.AllFlavors(),
		microadapt.Machine1(),
		microadapt.WithVectorSize(256),
		microadapt.WithSeed(7),
	)

	db := microadapt.GenerateTPCH(0.01, 42)

	result, err := microadapt.RunQuery(db, sess, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("TPC-H Q1 result:")
	fmt.Print(microadapt.FormatTable(result, 10))

	fmt.Printf("\nvirtual cycles: %.0f total, %.0f in primitives\n",
		sess.Ctx.TotalCycles(), sess.Ctx.PrimCycles)

	fmt.Println("\nwhat each primitive instance learned (calls per flavor):")
	for _, inst := range sess.Instances() {
		if inst.Calls < 32 {
			continue
		}
		fmt.Printf("  %-48s %6d calls, %5.2f cycles/tuple\n",
			inst.Label, inst.Calls, inst.CyclesPerTuple())
		for fi, fs := range inst.PerFlavor {
			if fs.Calls == 0 {
				continue
			}
			fmt.Printf("      %-28s %6d calls  %6.2f cycles/tuple\n",
				inst.Prim.Flavors[fi].Name, fs.Calls, fs.CyclesPerTuple())
		}
	}
}
