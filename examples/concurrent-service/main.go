// Concurrent service: many TPC-H queries in flight at once over one shared
// database, one fresh session per query, with a shared flavor-knowledge
// cache. The demonstration runs the same load twice — cold sessions first,
// then sessions warm-started from what the cold phase learned — and shows
// the exploration tax (calls spent on flavors a session later abandons)
// shrinking, the cross-session amortization the service exists for.
package main

import (
	"fmt"
	"log"

	"microadapt"
)

func main() {
	db := microadapt.GenerateTPCH(0.01, 42)
	mix := []int{1, 6, 12, 14}
	load := microadapt.LoadConfig{Mix: mix, Jobs: 48}

	// Phase 1: every session explores from scratch.
	cold := microadapt.DefaultServiceConfig()
	cold.Workers = 4
	cold.WarmStart = false
	cold.Seed = 7
	coldMetrics, err := microadapt.NewService(db, cold).RunLoad(load)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cold:", coldMetrics)

	// Phase 2: same load, but sessions seed their choosers from the shared
	// cache through the WarmStarter capability — the same code path works
	// for any registry policy (try cold.Policy = "ucb1" or "thompson").
	// The first pass over the mix populates the cache; the measured load
	// then runs warm.
	warm := cold
	warm.WarmStart = true
	svc := microadapt.NewService(db, warm)
	if _, err := svc.RunLoad(microadapt.LoadConfig{Mix: mix, Jobs: len(mix)}); err != nil {
		log.Fatal(err)
	}
	warmMetrics, err := svc.RunLoad(load)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("warm:", warmMetrics)

	fmt.Printf("\nwarm start: %.1f -> %.1f off-best calls/job; %d instance keys cached\n",
		coldMetrics.OffBestPerJob(), warmMetrics.OffBestPerJob(), svc.Cache().Len())

	fmt.Println("\nbest known flavor per cached instance (first 10):")
	for i, key := range svc.Cache().Keys() {
		if i == 10 {
			break
		}
		name, cost := svc.Cache().BestFlavor(key)
		fmt.Printf("  %-64s %-24s %6.2f cycles/tuple\n", key, name, cost)
	}
}
