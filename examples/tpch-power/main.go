// tpch-power runs the full 22-query TPC-H workload three times — baseline
// build, hand-tuned heuristics, and Micro Adaptivity — and prints the
// per-query improvement factors and the power-score geometric mean,
// mirroring Table 11 of the paper.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"microadapt"
	"microadapt/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	vecsize := flag.Int("vecsize", 128, "tuples per vector")
	flag.Parse()

	db := microadapt.GenerateTPCH(*sf, 42)
	fmt.Printf("TPC-H SF %.3g: %d lineitems, %d orders, vector size %d\n\n",
		*sf, db.Lineitem.Rows(), db.Orders.Rows(), *vecsize)

	run := func(mk func() *microadapt.Session) []float64 {
		var out []float64
		for _, q := range tpch.Queries() {
			s := mk()
			if _, err := q.Run(db, s); err != nil {
				log.Fatalf("%s: %v", q.Name, err)
			}
			out = append(out, s.Ctx.TotalCycles())
		}
		return out
	}

	base := run(func() *microadapt.Session {
		return microadapt.NewSession(microadapt.DefaultFlavors(), microadapt.Machine1(),
			microadapt.WithVectorSize(*vecsize), microadapt.WithSeed(1))
	})
	heur := run(func() *microadapt.Session {
		return microadapt.NewSession(microadapt.AllFlavors(), microadapt.Machine1(),
			microadapt.WithVectorSize(*vecsize), microadapt.WithSeed(1),
			microadapt.WithChooser(microadapt.HeuristicsChooser(microadapt.Machine1())))
	})
	vw := microadapt.DefaultVWParams().Scaled(8)
	adapt := run(func() *microadapt.Session {
		return microadapt.NewSession(microadapt.AllFlavors(), microadapt.Machine1(),
			microadapt.WithVectorSize(*vecsize), microadapt.WithSeed(1),
			microadapt.WithChooser(microadapt.VWGreedyChooser(vw, 1)))
	})

	fmt.Printf("%-6s %16s %12s %16s\n", "query", "baseline cycles", "heuristics", "micro adaptive")
	hGeo, aGeo := 0.0, 0.0
	for i, q := range tpch.Queries() {
		hf := base[i] / heur[i]
		af := base[i] / adapt[i]
		hGeo += math.Log(hf)
		aGeo += math.Log(af)
		fmt.Printf("%-6s %16.0f %12.2f %16.2f\n", q.Name, base[i], hf, af)
	}
	n := float64(len(base))
	fmt.Printf("%-6s %16s %12.2f %16.2f\n", "geo", "", math.Exp(hGeo/n), math.Exp(aGeo/n))
	fmt.Println("\n(paper, SF-100: heuristics 1.05, micro adaptivity 1.09)")
}
