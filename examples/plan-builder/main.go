// Plan builder: declare a custom query as a logical plan DAG, print its
// explain output (logical plan plus physical lowering with automatic
// morsel-partition annotations), and run it serially and morsel-parallel —
// the planner derives partitionability from plan shape, so the parallel
// run needs no query changes and returns a bit-identical table.
package main

import (
	"fmt"
	"log"

	"microadapt"
	"microadapt/internal/engine"
	"microadapt/internal/expr"
)

func main() {
	db := microadapt.GenerateTPCH(0.02, 42)

	// A custom query, not one of the built-in 22: revenue and order count
	// of high-discount lineitems per return flag, largest revenue first.
	//
	// The builder derives every instance label from plan position
	// ("discount-report/sel0", ...), detects that scan→select→project is
	// morsel-partitionable, and materializes nothing except the final
	// result — all from the DAG's shape.
	build := func() *microadapt.PlanBuilder {
		b := microadapt.NewPlan("discount-report")
		scan := b.Scan(db.Lineitem, "l_returnflag", "l_extendedprice", "l_discount", "l_quantity")
		sel := scan.Select(
			microadapt.PlanCmpVal(2, ">=", 5),
			microadapt.PlanCmpVal(3, "<", 30),
		)
		proj := sel.Project(
			engine.Keep("l_returnflag", 0),
			engine.ProjExpr{Name: "rev", Expr: expr.Div(
				expr.Mul(sel.Col("l_extendedprice"), sel.Col("l_discount")),
				&expr.ConstI64{V: 100})},
		)
		agg := proj.Agg([]int{0},
			engine.Agg(engine.AggSum, 1, "revenue"),
			engine.Agg(engine.AggCount, -1, "orders"),
		)
		b.Root(agg.Sort(engine.Desc(1)))
		return b
	}

	fmt.Println(build().Explain(4))

	var serial string
	for _, p := range []int{1, 4} {
		sess := microadapt.NewSession(
			microadapt.AllFlavors(),
			microadapt.Machine1(),
			microadapt.WithVectorSize(256),
			microadapt.WithSeed(7),
			microadapt.WithParallelism(p),
		)
		b := build()
		tab, err := b.Bind(sess).Run(b.MainRoot())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("P=%d result (%d fragment sessions spawned):\n%s\n",
			p, len(sess.Fragments()), microadapt.FormatTable(tab, 5))
		out := microadapt.FormatTable(tab, 0)
		if p == 1 {
			serial = out
		} else if out == serial {
			fmt.Println("parallel result is bit-identical to the serial plan ✓")
		} else {
			log.Fatal("parallel result diverged from serial plan")
		}
	}
}
