// flavor-lab explores the flavor space interactively: it dumps the
// primitive dictionary, then race-tests the flavors of one signature over
// a chosen machine and data distribution — a small workbench for the
// performance-diversity factors of §2 of the paper.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"microadapt"
	"microadapt/internal/core"
	"microadapt/internal/primitive"
	"microadapt/internal/vector"
)

func main() {
	machineName := flag.String("machine", "machine1", "machine profile (machine1..machine4)")
	sig := flag.String("sig", "select_<_sint_col_sint_val", "primitive signature to race")
	selectivity := flag.Float64("sel", 0.5, "data selectivity for selection primitives")
	calls := flag.Int("calls", 2000, "number of calls")
	flag.Parse()

	machine := pickMachine(*machineName)
	sess := microadapt.NewSession(microadapt.AllFlavors(), machine,
		microadapt.WithVectorSize(1024), microadapt.WithSeed(3))

	prim, ok := sess.Dict.Lookup(*sig)
	if !ok {
		log.Fatalf("unknown signature %q; run 'madapt flavors' for the list", *sig)
	}
	fmt.Printf("%s on %s (%s %s): %d flavors\n\n", *sig, machine.Name, machine.Vendor, machine.Arch, len(prim.Flavors))

	if len(flag.Args()) > 0 && flag.Args()[0] == "list" {
		for i, f := range prim.Flavors {
			fmt.Printf("  [%d] %s\n", i, f.Name)
		}
		return
	}

	// Race every flavor on identical data, then run the adaptive policy.
	type result struct {
		name   string
		cycles float64
	}
	var results []result
	for arm := range prim.Flavors {
		inst := sess.Instance(*sig, fmt.Sprintf("lab/arm%d", arm))
		cycles := drive(sess, inst, arm, *selectivity, *calls)
		results = append(results, result{prim.Flavors[arm].Name, cycles})
	}
	adaptInst := sess.Instance(*sig, "lab/adaptive")
	adaptive := drive(sess, adaptInst, -1, *selectivity, *calls)

	best := results[0].cycles
	for _, r := range results {
		fmt.Printf("  %-28s %14.0f cycles\n", r.name, r.cycles)
		if r.cycles < best {
			best = r.cycles
		}
	}
	fmt.Printf("  %-28s %14.0f cycles (%.2fx vs best static)\n", "micro adaptive", adaptive, best/adaptive)
}

func pickMachine(name string) *microadapt.Machine {
	for _, m := range []*microadapt.Machine{
		microadapt.Machine1(), microadapt.Machine2(), microadapt.Machine3(), microadapt.Machine4(),
	} {
		if m.Name == name {
			return m
		}
	}
	log.Fatalf("unknown machine %q", name)
	return nil
}

// drive feeds synthetic vectors through the instance; arm >= 0 pins a
// flavor, arm < 0 uses the instance's (vw-greedy) chooser.
func drive(sess *microadapt.Session, inst *core.Instance, arm int, sel float64, calls int) float64 {
	n := sess.VectorSize
	col := make([]int32, n)
	out := make([]int32, n)
	res := vector.New(vector.I64, n)
	res.SetLen(n)
	rng := rand.New(rand.NewSource(11))
	threshold := vector.ConstI32(int32(sel * 1000))
	for call := 0; call < calls; call++ {
		for i := range col {
			col[i] = int32(rng.Intn(1000))
		}
		c := &core.Call{N: n, In: []*vector.Vector{vector.FromI32(col), threshold}, SelOut: out, Res: res}
		if arm >= 0 {
			fl := inst.Prim.Flavors[arm]
			c.Inst = inst
			_, cyc := fl.Fn(sess.Ctx, c)
			inst.Cycles += cyc
			inst.Calls++
			inst.Tuples += int64(n)
		} else {
			inst.Run(sess.Ctx, c)
		}
	}
	return inst.Cycles
}

var _ = primitive.SelSig
