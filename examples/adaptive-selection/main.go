// adaptive-selection demonstrates the paper's motivating example (§1,
// Figures 1-2): branching vs no-branching selection primitives under a
// selectivity that changes mid-stream, and how vw-greedy switches between
// them at run time.
//
// The program streams vectors whose selectivity starts at 100%, collapses
// to 2% half-way, and recovers at the end — the worst case for any static
// flavor choice — and prints what each strategy costs.
package main

import (
	"fmt"
	"math/rand"

	"microadapt"
	"microadapt/internal/core"
	"microadapt/internal/primitive"
	"microadapt/internal/vector"
)

const (
	vectorSize = 1024
	totalCalls = 6000
)

// selectivityAt is the changing environment: fraction of tuples below the
// predicate threshold at a given call.
func selectivityAt(call int) float64 {
	switch {
	case call < totalCalls/3:
		return 0.98
	case call < 2*totalCalls/3:
		return 0.02
	default:
		return 0.60
	}
}

// runPolicy streams the workload through one session and returns the total
// virtual cycles of the selection instance.
func runPolicy(name string, chooser microadapt.ChooserFactory) float64 {
	sess := microadapt.NewSession(
		microadapt.BranchFlavors(),
		microadapt.Machine1(),
		microadapt.WithVectorSize(vectorSize),
		microadapt.WithChooser(chooser),
	)
	sig := primitive.SelSig("<", vector.I32, false)
	inst := sess.Instance(sig, "demo/"+sig)
	rng := rand.New(rand.NewSource(1))

	col := make([]int32, vectorSize)
	out := make([]int32, vectorSize)
	threshold := vector.ConstI32(1000)
	for call := 0; call < totalCalls; call++ {
		sel := selectivityAt(call)
		for i := range col {
			if rng.Float64() < sel {
				col[i] = int32(rng.Intn(1000)) // qualifies
			} else {
				col[i] = 1000 + int32(rng.Intn(1000)) // does not
			}
		}
		c := &core.Call{N: vectorSize, In: []*vector.Vector{vector.FromI32(col), threshold}, SelOut: out}
		inst.Run(sess.Ctx, c)
	}
	fmt.Printf("%-22s %12.0f cycles  (%.2f cycles/tuple)\n",
		name, inst.Cycles, inst.CyclesPerTuple())
	for fi, fs := range inst.PerFlavor {
		if fs.Calls > 0 {
			fmt.Printf("    %-24s used for %5d calls\n", inst.Prim.Flavors[fi].Name, fs.Calls)
		}
	}
	return inst.Cycles
}

func main() {
	fmt.Println("selection over a stream whose selectivity shifts 98% -> 2% -> 60%")
	fmt.Printf("(%d calls x %d tuples)\n\n", totalCalls, vectorSize)

	always0 := runPolicy("always branching", microadapt.FixedChooser(0))
	always1 := runPolicy("always no-branching", microadapt.FixedChooser(1))
	adaptive := runPolicy("micro adaptive", nil)

	best := always0
	if always1 < best {
		best = always1
	}
	fmt.Printf("\nmicro adaptivity vs best static flavor: %.2fx\n", best/adaptive)
	fmt.Println("(> 1.0 means the adaptive run beat every static choice, as in Figure 2)")
}
