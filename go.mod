module microadapt

go 1.22
