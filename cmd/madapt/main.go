// Command madapt runs the Micro Adaptivity reproduction: any of the
// paper's experiments (tables and figures), the TPC-H workload under a
// chosen flavor configuration and policy, or listings of the registered
// primitive flavors and selection policies.
//
// Usage:
//
//	madapt exp all                     # every table and figure
//	madapt exp fig2 table11            # specific experiments
//	madapt exp -sf 0.05 -vecsize 256 table7
//	madapt tpch -q 12 -flavors everything -policy ucb1:c=2
//	madapt bench-concurrent -policy thompson -workers 8
//	madapt policies                    # list the policy registry
//	madapt flavors                     # dump the primitive dictionary
//	madapt list                        # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"microadapt/internal/bench"
	"microadapt/internal/engine"
	"microadapt/internal/policy"
	"microadapt/internal/primitive"
	"microadapt/internal/server"
	"microadapt/internal/service"
	"microadapt/internal/tpch"

	"microadapt/internal/hw"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "exp":
		err = cmdExp(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "tpch":
		err = cmdTPCH(os.Args[2:])
	case "bench-concurrent":
		err = cmdBenchConcurrent(os.Args[2:])
	case "bench-all":
		err = cmdBenchAll(os.Args[2:])
	case "bench-compare":
		err = cmdBenchCompare(os.Args[2:])
	case "distverify":
		err = cmdDistVerify(os.Args[2:])
	case "soak":
		err = cmdSoak(os.Args[2:])
	case "policies":
		err = cmdPolicies()
	case "flavors":
		err = cmdFlavors(os.Args[2:])
	case "list":
		for _, e := range bench.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "madapt:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  madapt exp [-sf F] [-seed N] [-vecsize N] [-machine machineK] <id>... | all
  madapt explain [-sf F] [-q N] [-pipeline-parallel P] [-encoded]
  madapt tpch [-sf F] [-q N] [-flavors defaults|everything|branch|compiler|fission|compute|unroll|decompress] [-policy SPEC] [-pipeline-parallel P] [-encoded]
  madapt bench-concurrent [-workers N] [-jobs N] [-duration D] [-mix 1,6,12|all] [-flavors SET] [-policy SPEC] [-pipeline-parallel P] [-encoded] [-cold-only]
  madapt bench-all [-sf F] [-seed N] [-vecsize N] [-json] [-out FILE]
  madapt bench-compare [-wall] baseline.json current.json
  madapt distverify -addr URL [-sf F] [-seed N] [-mix 1,6,12|all]
  madapt soak [-addr URL] [-duration D] [-rate R] [-clients N] [-mix 1,6,12] [-zipf S] [-burst] [-plan-every N] [-sample-every N] [-sf F] [-seed N]
  madapt policies
  madapt flavors
  madapt list

policy SPEC is a registry name with optional parameters, e.g. vw-greedy,
ucb1:c=2, eps-greedy:eps=0.05, fixed:arm=1 (see: madapt policies)`)
}

// benchFlags registers the shared configuration flags; call the returned
// function after fs.Parse to resolve flag values into the config.
func benchFlags(fs *flag.FlagSet) (*bench.Config, func() error) {
	cfg := bench.DefaultConfig()
	fs.Float64Var(&cfg.SF, "sf", cfg.SF, "TPC-H scale factor")
	fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "generator seed")
	fs.IntVar(&cfg.VectorSize, "vecsize", cfg.VectorSize, "tuples per vector")
	machine := fs.String("machine", cfg.Machine.Name, "machine profile (machine1..machine4)")
	fs.IntVar(&cfg.VW.ExplorePeriod, "explore-period", cfg.VW.ExplorePeriod, "vw-greedy EXPLORE_PERIOD")
	fs.IntVar(&cfg.VW.ExploitPeriod, "exploit-period", cfg.VW.ExploitPeriod, "vw-greedy EXPLOIT_PERIOD")
	fs.IntVar(&cfg.VW.ExploreLength, "explore-length", cfg.VW.ExploreLength, "vw-greedy EXPLORE_LENGTH")
	return &cfg, func() error {
		m := hw.MachineByName(*machine)
		if m == nil {
			return fmt.Errorf("unknown machine %q", *machine)
		}
		cfg.Machine = m
		return nil
	}
}

func cmdExp(args []string) error {
	fs := flag.NewFlagSet("exp", flag.ExitOnError)
	cfg, finish := benchFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := finish(); err != nil {
		return err
	}
	ids := fs.Args()
	if len(ids) == 0 {
		return fmt.Errorf("no experiment ids (try: madapt list)")
	}
	if len(ids) == 1 && ids[0] == "all" {
		return bench.RunAll(*cfg, os.Stdout)
	}
	for _, id := range ids {
		e, ok := bench.ByID(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try: madapt list)", id)
		}
		rep, err := e.Run(*cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(rep.String())
	}
	return nil
}

// cmdExplain prints the logical plan and the physical lowering — with
// automatic morsel-partition annotations — of one query (or all 22).
func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	cfg, finish := benchFlags(fs)
	q := fs.Int("q", 0, "query number (0 = all)")
	pp := fs.Int("pipeline-parallel", 1, "intra-query pipeline parallelism (morsel partitions)")
	encoded := fs.Bool("encoded", false, "explain over a compressed-resident database (encoded scans, pushdown)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := finish(); err != nil {
		return err
	}
	db := cfg.DB()
	if *encoded {
		db.Encode()
	}
	queries := tpch.Queries()
	if *q != 0 {
		queries = []tpch.Spec{tpch.Query(*q)}
	}
	for _, qs := range queries {
		fmt.Printf("-- %s\n%s\n", qs.Name, tpch.Explain(db, qs.ID, *pp))
	}
	return nil
}

func flavorOptions(name string) (primitive.Options, error) {
	switch name {
	case "defaults":
		return primitive.Defaults(), nil
	case "everything":
		return primitive.Everything(), nil
	case "branch":
		return primitive.BranchSet(), nil
	case "compiler":
		return primitive.CompilerSet(), nil
	case "fission":
		return primitive.FissionSet(), nil
	case "compute":
		return primitive.ComputeSet(), nil
	case "unroll":
		return primitive.UnrollSet(), nil
	case "decompress":
		return primitive.DecompressSet(), nil
	default:
		return primitive.Options{}, fmt.Errorf("unknown flavor set %q", name)
	}
}

func cmdTPCH(args []string) error {
	fs := flag.NewFlagSet("tpch", flag.ExitOnError)
	cfg, finish := benchFlags(fs)
	q := fs.Int("q", 0, "query number (0 = all)")
	flavors := fs.String("flavors", "everything", "flavor configuration")
	spec := fs.String("policy", "vw-greedy", "selection policy spec (see: madapt policies)")
	arm := fs.Int("arm", 0, "shorthand for -policy fixed:arm=N")
	rows := fs.Int("rows", 10, "result rows to print")
	pp := fs.Int("pipeline-parallel", 1, "intra-query pipeline parallelism (morsel partitions)")
	encoded := fs.Bool("encoded", false, "keep tables resident in compressed columnar form (adaptive decompression scans)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := finish(); err != nil {
		return err
	}
	opts, err := flavorOptions(*flavors)
	if err != nil {
		return err
	}
	cfg.Policy = *spec
	cfg.PipelineParallelism = *pp
	if *spec == "fixed" && *arm > 0 {
		cfg.Policy = fmt.Sprintf("fixed:arm=%d", *arm)
	}
	// Validate the spec up front: Session panics on wiring bugs, but a CLI
	// typo deserves a flag-style error.
	if _, err := policy.NewFactory(cfg.Policy, cfg.PolicyEnv()); err != nil {
		return err
	}

	db := cfg.DB()
	if *encoded {
		db.Encode()
		flat, resident := db.StorageFootprint()
		fmt.Printf("-- encoded storage: %d -> %d resident bytes (%.1f%%)\n",
			flat, resident, 100*float64(resident)/float64(flat))
	}
	var queries []tpch.Spec
	if *q == 0 {
		queries = tpch.Queries()
	} else {
		queries = []tpch.Spec{tpch.Query(*q)}
	}
	for _, qs := range queries {
		s := cfg.Session(opts, nil)
		tab, err := qs.Run(db, s)
		if err != nil {
			return fmt.Errorf("%s: %w", qs.Name, err)
		}
		fmt.Printf("-- %s: %d rows, %.0f virtual cycles (%.0f in primitives, %d instances)\n",
			qs.Name, tab.Rows(), s.Ctx.TotalCycles(), s.Ctx.PrimCycles, len(s.AllInstances()))
		if *rows > 0 {
			fmt.Print(engine.TableString(tab, *rows))
		}
		fmt.Println()
	}
	return nil
}

// cmdBenchConcurrent drives the concurrent adaptive query service: a
// worker pool running a TPC-H mix over one shared database, cold sessions
// first and then sessions warm-started from the shared flavor-knowledge
// cache, reporting throughput, latency percentiles and the exploration tax
// each phase paid.
func cmdBenchConcurrent(args []string) error {
	fs := flag.NewFlagSet("bench-concurrent", flag.ExitOnError)
	cfg, finish := benchFlags(fs)
	workers := fs.Int("workers", 4, "worker pool size")
	jobs := fs.Int("jobs", 64, "queries per phase (0 = time-bounded by -duration)")
	duration := fs.Duration("duration", 0, "per-phase wall cap when -jobs 0")
	mixFlag := fs.String("mix", "1,6,12", "comma-separated TPC-H query numbers, or \"all\"")
	flavors := fs.String("flavors", "everything", "flavor configuration")
	spec := fs.String("policy", "vw-greedy", "selection policy spec (see: madapt policies)")
	pp := fs.Int("pipeline-parallel", 1, "intra-query pipeline parallelism (morsel partitions)")
	encoded := fs.Bool("encoded", false, "run the load over a compressed-resident database")
	coldOnly := fs.Bool("cold-only", false, "skip the warm-start phase")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := finish(); err != nil {
		return err
	}
	opts, err := flavorOptions(*flavors)
	if err != nil {
		return err
	}
	if _, err := policy.NewFactory(*spec, cfg.PolicyEnv()); err != nil {
		return err
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}
	if *jobs <= 0 && *duration <= 0 {
		return fmt.Errorf("need -jobs > 0 or -duration > 0")
	}
	rep, err := bench.BenchConcurrent(*cfg, bench.ConcurrentOptions{
		Workers:             *workers,
		Jobs:                *jobs,
		Duration:            *duration,
		Mix:                 mix,
		Flavors:             opts,
		Policy:              *spec,
		ColdOnly:            *coldOnly,
		PipelineParallelism: *pp,
		Encoded:             *encoded,
	})
	if err != nil {
		return err
	}
	fmt.Println(rep.String())
	return nil
}

// cmdBenchAll runs the performance trajectory suite — single-process,
// distributed at two fleet sizes, and the federation cold/warm phases —
// and emits it as a table or as the machine-readable JSON form that is
// checked in as BENCH_<pr>.json and gated in CI via bench-compare.
func cmdBenchAll(args []string) error {
	fs := flag.NewFlagSet("bench-all", flag.ExitOnError)
	cfg, finish := benchFlags(fs)
	asJSON := fs.Bool("json", false, "emit the machine-readable suite JSON")
	out := fs.String("out", "", "write output to FILE instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := finish(); err != nil {
		return err
	}
	suite, err := bench.RunPerfSuite(*cfg)
	if err != nil {
		return err
	}
	var data []byte
	if *asJSON {
		if data, err = suite.MarshalIndent(); err != nil {
			return err
		}
	} else {
		data = []byte(suite.String() + "\n")
	}
	if *out != "" {
		return os.WriteFile(*out, data, 0o644)
	}
	_, err = os.Stdout.Write(data)
	return err
}

// cmdBenchCompare gates a fresh suite against a checked-in baseline.
func cmdBenchCompare(args []string) error {
	fs := flag.NewFlagSet("bench-compare", flag.ExitOnError)
	wall := fs.Bool("wall", false, "also gate host-dependent wall-clock metrics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: madapt bench-compare [-wall] baseline.json current.json")
	}
	load := func(path string) (*bench.PerfSuite, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return bench.LoadPerfSuite(data)
	}
	baseline, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	current, err := load(fs.Arg(1))
	if err != nil {
		return err
	}
	if err := bench.ComparePerf(baseline, current, *wall); err != nil {
		return err
	}
	fmt.Printf("perf gate ok: %d entries within tolerance of %s\n",
		len(baseline.Entries), fs.Arg(0))
	return nil
}

// cmdDistVerify checks a running server — single-process, shard, or a
// coordinator fronting a fleet — for bit-identical results: every query
// of the mix is executed remotely and its fingerprint compared against
// local single-process execution over the same (sf, seed) database.
func cmdDistVerify(args []string) error {
	fs := flag.NewFlagSet("distverify", flag.ExitOnError)
	addr := fs.String("addr", "", "target server base URL (required)")
	sf := fs.Float64("sf", 0.01, "scale factor of the target's database")
	seed := fs.Int64("seed", 42, "database generator seed of the target")
	mixFlag := fs.String("mix", "1,3,6,12,14,19", "comma-separated TPC-H query numbers, or \"all\"")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("distverify: -addr is required")
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}
	fmt.Printf("distverify: local ground truth at sf=%g seed=%d\n", *sf, *seed)
	svc := service.New(tpch.Generate(*sf, *seed), service.DefaultConfig())
	c := server.NewClient(*addr)
	if err := c.WaitReady(30 * time.Second); err != nil {
		return err
	}
	mismatches := 0
	for _, q := range mix {
		tab, _, err := svc.Execute(q)
		if err != nil {
			return fmt.Errorf("local Q%02d: %w", q, err)
		}
		want := server.Fingerprint(tab)
		out, err := c.Query(server.QueryRequest{Query: q})
		if err != nil {
			return fmt.Errorf("remote Q%02d: %w", q, err)
		}
		if !out.OK() {
			return fmt.Errorf("remote Q%02d: status %d", q, out.Status)
		}
		status := "ok"
		if out.Response.Fingerprint != want {
			status = "MISMATCH"
			mismatches++
		}
		fmt.Printf("  Q%02d %-8s %d rows %s\n", q, status, out.Response.Rows, out.Response.Fingerprint[:12])
	}
	if mismatches > 0 {
		return fmt.Errorf("distverify: %d/%d queries differ from local ground truth", mismatches, len(mix))
	}
	fmt.Printf("distverify: %d queries bit-identical to local execution\n", len(mix))
	return nil
}

// cmdSoak drives sustained open-loop load against a madaptd server — a
// running one via -addr, or an in-process one spawned for the run — and
// fails unless the run completes with zero protocol errors, bit-identical
// sampled results, and a stable p99.
func cmdSoak(args []string) error {
	fs := flag.NewFlagSet("soak", flag.ExitOnError)
	addr := fs.String("addr", "", "target server base URL (empty = spawn in-process)")
	duration := fs.Duration("duration", 60*time.Second, "soak length")
	rate := fs.Float64("rate", 40, "base arrival rate (requests/second, open loop)")
	clients := fs.Int("clients", 4, "concurrent client sessions")
	mixFlag := fs.String("mix", "1,6,12,14", "comma-separated TPC-H query numbers, or \"all\"")
	zipf := fs.Float64("zipf", 1, "query-mix skew exponent (0 = uniform)")
	burst := fs.Bool("burst", true, "inject a 3x burst phase in the middle third of the run")
	planEvery := fs.Int("plan-every", 5, "ship every Nth request as a wire plan via /v1/plan (0 = never)")
	sampleEvery := fs.Int("sample-every", 16, "verify every Nth result bit-identical to in-process execution")
	sf := fs.Float64("sf", 0.002, "scale factor of the server's database (must match -addr target)")
	seed := fs.Int64("seed", 42, "database generator seed (must match -addr target)")
	trafficSeed := fs.Int64("traffic-seed", 1, "arrival schedule seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}
	cfg := server.SoakConfig{
		URL:         *addr,
		Duration:    *duration,
		Rate:        *rate,
		Clients:     *clients,
		Mix:         bench.ZipfMix(*zipf, mix...),
		Seed:        *trafficSeed,
		PlanEvery:   *planEvery,
		SampleEvery: *sampleEvery,
		SF:          *sf,
		DBSeed:      *seed,
		Out:         os.Stdout,
	}
	if *burst {
		cfg.Bursts = []bench.Phase{{
			Start:          *duration / 3,
			Duration:       *duration / 3,
			RateMultiplier: 3,
		}}
	}
	rep, err := server.RunSoak(cfg)
	if err != nil {
		return err
	}
	fmt.Println(rep.String())
	return rep.Validate()
}

// parseMix turns "1,6,12" or "all" into a query-number list.
func parseMix(s string) ([]int, error) {
	if s == "all" {
		mix := make([]int, 22)
		for i := range mix {
			mix[i] = i + 1
		}
		return mix, nil
	}
	var mix []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		q, err := strconv.Atoi(part)
		if err != nil || q < 1 || q > 22 {
			return nil, fmt.Errorf("bad query %q in mix (want 1-22)", part)
		}
		mix = append(mix, q)
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty query mix")
	}
	return mix, nil
}

// cmdPolicies lists the policy registry: every name -policy accepts, the
// parameters each takes, and whether it participates in cross-session
// warm-start.
func cmdPolicies() error {
	fmt.Printf("%-16s %-10s %-36s %s\n", "NAME", "WARM-START", "PARAMETERS", "SUMMARY")
	for _, d := range policy.Definitions() {
		warm := "no"
		if d.WarmStart {
			warm = "yes"
		}
		params := d.ParamDoc
		if params == "" {
			params = "-"
		}
		fmt.Printf("%-16s %-10s %-36s %s\n", d.Name, warm, params, d.Summary)
	}
	fmt.Println("\nspec syntax: name[:key=value,...], e.g. vw-greedy:explore=1024,exploit=8,len=2")
	return nil
}

func cmdFlavors(args []string) error {
	fs := flag.NewFlagSet("flavors", flag.ExitOnError)
	flavors := fs.String("flavors", "everything", "flavor configuration")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := flavorOptions(*flavors)
	if err != nil {
		return err
	}
	d := primitive.NewDictionary(opts)
	sigs := d.Sigs()
	total := 0
	for _, sig := range sigs {
		p, _ := d.Lookup(sig)
		names := make([]string, len(p.Flavors))
		for i, f := range p.Flavors {
			names[i] = f.Name
		}
		total += len(p.Flavors)
		fmt.Printf("%-46s %-12s %2d flavors: %s\n", sig, p.Class, len(p.Flavors), strings.Join(names, ", "))
	}
	fmt.Printf("\n%d signatures, %d flavors\n", len(sigs), total)
	return nil
}
