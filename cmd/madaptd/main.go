// Command madaptd serves the micro-adaptive query engine over HTTP/JSON:
// TPC-H queries by number or client-built logical plans (the plan JSON
// wire form), executed through internal/service with per-request
// admission control, per-client sessions, load shedding under
// saturation, and graceful drain on SIGTERM.
//
// Usage:
//
//	madaptd -addr 127.0.0.1:7433 -sf 0.01 -workers 4
//
// Distributed tiers (see docs/ARCHITECTURE.md):
//
//	madaptd -shard 0 -shards 2 ...      serve one row-range shard
//	madaptd -coordinator URL,URL ...    front a shard fleet
//
// A shard process generates the same database as a single-process server
// and serves shard i's contiguous row range of every table over the
// identical HTTP surface. A coordinator process holds only the schema,
// lowers each query into per-shard plan fragments, merges the partials
// bit-identically, finishes the residual locally, and gossips flavor
// knowledge across the fleet through /v1/flavors.
//
// Endpoints:
//
//	GET    /healthz            readiness (503 once draining)
//	GET    /metrics            latency percentiles, shed/expired counts,
//	                           off-best %, flavor-cache hit rates
//	POST   /v1/session         mint a client session
//	GET    /v1/session/{id}    a session's adaptation counters
//	DELETE /v1/session/{id}    drop a session
//	POST   /v1/query           {"query": 6, "session": "...", ...}
//	POST   /v1/plan            {"plan": <plan JSON>, ...}
//	POST   /v1/plan/stream     same request, NDJSON chunked response
//	                           (header / chunk* / trailer frames)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // -pprof serves the default mux's profile endpoints
	"os"
	"os/signal"
	"syscall"
	"time"

	"strings"

	"microadapt/internal/dist"
	"microadapt/internal/server"
	"microadapt/internal/service"
	"microadapt/internal/tpch"
)

func main() {
	fs := flag.NewFlagSet("madaptd", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7433", "listen address (host:port; port 0 picks one)")
	sf := fs.Float64("sf", 0.01, "TPC-H scale factor of the served database")
	seed := fs.Int64("seed", 42, "database generator seed")
	workers := fs.Int("workers", 0, "concurrent query executors (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "admission queue depth beyond executing requests (-1 = none)")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request deadline")
	retryAfter := fs.Duration("retry-after", 50*time.Millisecond, "backoff suggested on 429")
	maxSessions := fs.Int("max-sessions", 256, "live session cap (LRU beyond it)")
	sessionTTL := fs.Duration("session-ttl", 10*time.Minute, "idle session expiry")
	policy := fs.String("policy", "vw-greedy", "flavor-selection policy spec")
	pp := fs.Int("pipeline-parallel", 1, "intra-query pipeline parallelism (morsel partitions)")
	encoded := fs.Bool("encoded", false, "serve a compressed-resident database")
	drainTimeout := fs.Duration("drain-timeout", 60*time.Second, "cap on graceful shutdown")
	shard := fs.Int("shard", -1, "serve shard I of a range-partitioned fleet (requires -shards)")
	shards := fs.Int("shards", 0, "fleet size N when serving a shard")
	coordinator := fs.String("coordinator", "", "comma-separated shard URLs: run as fleet coordinator")
	gossip := fs.Duration("gossip", 2*time.Second, "coordinator flavor-gossip interval (0 disables)")
	siteFanout := fs.Int("site-fanout", 0, "coordinator: concurrent fragment sites per query (0 = default, 1 = sequential)")
	bufferedFrags := fs.Bool("buffered-fragments", false, "coordinator: disable streaming fragment fetch, buffer whole partials")
	streamChunk := fs.Int("stream-chunk-rows", 0, "rows per /v1/plan/stream chunk frame (0 = default)")
	wireJSON := fs.Bool("wire-json", false, "force the legacy JSON wire encoding for result tables (server: ignore binary negotiation; coordinator: do not request binary from shards)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty disables)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	log.SetPrefix("madaptd: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	if *coordinator != "" && *shard >= 0 {
		log.Fatal("-coordinator and -shard are mutually exclusive")
	}
	if (*shard >= 0) != (*shards > 0) {
		log.Fatal("-shard and -shards must be set together")
	}
	if *shard >= 0 && *shard >= *shards {
		log.Fatalf("-shard %d out of range for -shards %d", *shard, *shards)
	}

	if *pprofAddr != "" {
		go func() {
			// net/http/pprof registers on http.DefaultServeMux.
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	log.Printf("generating TPC-H database (sf=%g seed=%d)", *sf, *seed)
	db := tpch.Generate(*sf, *seed)

	svcCfg := service.DefaultConfig()
	svcCfg.Workers = *workers
	svcCfg.Policy = *policy
	svcCfg.PipelineParallelism = *pp
	svcCfg.EncodedStorage = *encoded

	var (
		executor server.Executor
		coord    *dist.Coordinator
		role     string
	)
	switch {
	case *coordinator != "":
		urls := strings.Split(*coordinator, ",")
		for i := range urls {
			urls[i] = strings.TrimSpace(urls[i])
		}
		var err error
		coord, err = dist.New(dist.Config{
			Shards:            urls,
			DB:                db,
			Service:           svcCfg,
			SiteFanout:        *siteFanout,
			BufferedFragments: *bufferedFrags,
			JSONWire:          *wireJSON,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("coordinator: waiting for %d shards", coord.Shards())
		if err := coord.WaitReady(time.Minute); err != nil {
			log.Fatal(err)
		}
		if *gossip > 0 {
			coord.StartGossip(*gossip)
			defer coord.Stop()
		}
		executor = coord
		role = fmt.Sprintf("coordinator over %d shards", coord.Shards())
	case *shard >= 0:
		executor = service.New(db.Shard(*shard, *shards), svcCfg)
		role = fmt.Sprintf("shard %d/%d", *shard, *shards)
	default:
		executor = service.New(db, svcCfg)
		role = "single-process"
	}

	run, err := server.Start(server.NewServer(server.Config{
		Service:         executor,
		Workers:         *workers,
		QueueDepth:      *queue,
		DefaultTimeout:  *timeout,
		RetryAfter:      *retryAfter,
		MaxSessions:     *maxSessions,
		SessionTTL:      *sessionTTL,
		StreamChunkRows: *streamChunk,
		LegacyJSONWire:  *wireJSON,
	}), *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The URL line doubles as the readiness handshake for wrappers that
	// scrape stdout instead of polling /healthz.
	fmt.Printf("madaptd listening on %s\n", run.URL)
	log.Printf("serving %d tables (%s), policy %s, workers=%d queue=%d",
		len(executor.DB().Tables()), role, *policy, *workers, *queue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	log.Printf("%s: draining (completing in-flight and queued work, rejecting new)", got)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := run.Shutdown(ctx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	m := run.Server.Metrics()
	log.Printf("drained: executed=%d shed=%d expired=%d p99=%.0fus",
		m.Admission.Executed, m.Admission.Shed, m.Admission.Expired, m.LatencyP99US)
}
