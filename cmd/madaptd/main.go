// Command madaptd serves the micro-adaptive query engine over HTTP/JSON:
// TPC-H queries by number or client-built logical plans (the plan JSON
// wire form), executed through internal/service with per-request
// admission control, per-client sessions, load shedding under
// saturation, and graceful drain on SIGTERM.
//
// Usage:
//
//	madaptd -addr 127.0.0.1:7433 -sf 0.01 -workers 4
//
// Endpoints:
//
//	GET    /healthz            readiness (503 once draining)
//	GET    /metrics            latency percentiles, shed/expired counts,
//	                           off-best %, flavor-cache hit rates
//	POST   /v1/session         mint a client session
//	GET    /v1/session/{id}    a session's adaptation counters
//	DELETE /v1/session/{id}    drop a session
//	POST   /v1/query           {"query": 6, "session": "...", ...}
//	POST   /v1/plan            {"plan": <plan JSON>, ...}
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"microadapt/internal/server"
	"microadapt/internal/service"
	"microadapt/internal/tpch"
)

func main() {
	fs := flag.NewFlagSet("madaptd", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7433", "listen address (host:port; port 0 picks one)")
	sf := fs.Float64("sf", 0.01, "TPC-H scale factor of the served database")
	seed := fs.Int64("seed", 42, "database generator seed")
	workers := fs.Int("workers", 0, "concurrent query executors (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "admission queue depth beyond executing requests (-1 = none)")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request deadline")
	retryAfter := fs.Duration("retry-after", 50*time.Millisecond, "backoff suggested on 429")
	maxSessions := fs.Int("max-sessions", 256, "live session cap (LRU beyond it)")
	sessionTTL := fs.Duration("session-ttl", 10*time.Minute, "idle session expiry")
	policy := fs.String("policy", "vw-greedy", "flavor-selection policy spec")
	pp := fs.Int("pipeline-parallel", 1, "intra-query pipeline parallelism (morsel partitions)")
	encoded := fs.Bool("encoded", false, "serve a compressed-resident database")
	drainTimeout := fs.Duration("drain-timeout", 60*time.Second, "cap on graceful shutdown")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	log.SetPrefix("madaptd: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	log.Printf("generating TPC-H database (sf=%g seed=%d)", *sf, *seed)
	db := tpch.Generate(*sf, *seed)

	svcCfg := service.DefaultConfig()
	svcCfg.Workers = *workers
	svcCfg.Policy = *policy
	svcCfg.PipelineParallelism = *pp
	svcCfg.EncodedStorage = *encoded
	svc := service.New(db, svcCfg)

	run, err := server.Start(server.NewServer(server.Config{
		Service:        svc,
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		RetryAfter:     *retryAfter,
		MaxSessions:    *maxSessions,
		SessionTTL:     *sessionTTL,
	}), *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The URL line doubles as the readiness handshake for wrappers that
	// scrape stdout instead of polling /healthz.
	fmt.Printf("madaptd listening on %s\n", run.URL)
	log.Printf("serving %d tables, policy %s, workers=%d queue=%d", len(db.Tables()), *policy, *workers, *queue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	log.Printf("%s: draining (completing in-flight and queued work, rejecting new)", got)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := run.Shutdown(ctx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	m := run.Server.Metrics()
	log.Printf("drained: executed=%d shed=%d expired=%d p99=%.0fus",
		m.Admission.Executed, m.Admission.Shed, m.Admission.Expired, m.LatencyP99US)
}
