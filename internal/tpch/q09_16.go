package tpch

import (
	"sort"

	"microadapt/internal/core"
	"microadapt/internal/engine"
	"microadapt/internal/expr"
	"microadapt/internal/vector"
)

// Q9 is product-type profit measure: %green% parts, the two-column
// partsupp join packed into one int64 key, profit per nation and year.
func Q9(db *DB, s *core.Session) (*engine.Table, error) {
	partSel := engine.NewSelect(s, engine.NewScan(s, db.Part, "p_partkey", "p_name"),
		"Q9/part", engine.Like(1, "%green%"))
	li := semiJoin(s, partSel,
		engine.NewScan(s, db.Lineitem,
			"l_orderkey", "l_partkey", "l_suppkey", "l_quantity", "l_extendedprice", "l_discount"),
		"Q9/j_part", "p_partkey", "l_partkey")
	liPacked := engine.NewProject(s, li, "Q9/pack",
		engine.Keep("l_orderkey", 0),
		engine.Keep("l_suppkey", 2),
		engine.Keep("l_quantity", 3),
		engine.Keep("l_extendedprice", 4),
		engine.Keep("l_discount", 5),
		engine.ProjExpr{Name: "ps_key", Expr: packKey(li, "l_partkey", "l_suppkey")})

	psScan := engine.NewScan(s, db.PartSupp, "ps_partkey", "ps_suppkey", "ps_supplycost")
	psPacked := engine.NewProject(s, psScan, "Q9/pspack",
		engine.ProjExpr{Name: "ps_key", Expr: packKey(psScan, "ps_partkey", "ps_suppkey")},
		engine.Keep("ps_supplycost", 2))
	j1 := engine.NewHashJoin(s, psPacked, liPacked, "Q9/j_ps", "ps_key", "ps_key",
		[]string{"ps_supplycost"})

	mj := engine.NewMergeJoin(s,
		engine.NewScan(s, db.Orders, "o_orderkey", "o_orderdate"),
		j1, "Q9/mj", "o_orderkey", "l_orderkey",
		[]string{"o_orderdate"},
		[]string{"l_suppkey", "l_quantity", "l_extendedprice", "l_discount", "ps_supplycost"})

	suppNat := engine.NewHashJoin(s,
		engine.NewScan(s, db.Nation, "n_nationkey", "n_name"),
		engine.NewScan(s, db.Supplier, "s_suppkey", "s_nationkey"),
		"Q9/j_suppnat", "n_nationkey", "s_nationkey", []string{"n_name"})
	suppNatTab, err := run(suppNat)
	if err != nil {
		return nil, err
	}
	j2 := engine.NewHashJoin(s, engine.NewScan(s, suppNatTab), mj, "Q9/j_supp",
		"s_suppkey", "l_suppkey", []string{"n_name"})

	amount := expr.Sub(
		revenue(j2, "l_extendedprice", "l_discount"),
		expr.Mul(col(j2, "ps_supplycost"), expr.ToI64(col(j2, "l_quantity"))))
	proj := engine.NewProject(s, j2, "Q9/proj",
		engine.Keep("nation", idx(j2, "n_name")),
		engine.ProjExpr{Name: "o_year", Expr: yearOf(j2, "o_orderdate")},
		engine.ProjExpr{Name: "amount", Expr: amount})
	agg := engine.NewHashAgg(s, proj, "Q9/agg", []int{0, 1},
		engine.Agg(engine.AggSum, 2, "sum_profit"))
	sorted := engine.NewSort(s, agg, engine.Asc(0), engine.Desc(1))
	return run(sorted)
}

// Q10 is returned-item reporting: revenue lost to returns per customer in
// a quarter, top 20.
func Q10(db *DB, s *core.Session) (*engine.Table, error) {
	ord := engine.NewSelect(s,
		engine.NewScan(s, db.Orders, "o_orderkey", "o_custkey", "o_orderdate"),
		"Q10/ord",
		engine.CmpVal(2, ">=", int(Date(1993, 10, 1))),
		engine.CmpVal(2, "<", int(Date(1994, 1, 1))))
	li := engine.NewSelect(s,
		engine.NewScan(s, db.Lineitem, "l_orderkey", "l_extendedprice", "l_discount", "l_returnflag"),
		"Q10/li", engine.CmpVal(3, "==", "R"))
	mj := engine.NewMergeJoin(s, ord, li, "Q10/mj", "o_orderkey", "l_orderkey",
		[]string{"o_custkey"},
		[]string{"l_extendedprice", "l_discount"})
	proj := engine.NewProject(s, mj, "Q10/proj",
		engine.Keep("o_custkey", 0),
		engine.ProjExpr{Name: "rev", Expr: revenue(mj, "l_extendedprice", "l_discount")})
	agg := engine.NewHashAgg(s, proj, "Q10/agg", []int{0},
		engine.Agg(engine.AggSum, 1, "revenue"))
	j := engine.NewHashJoin(s,
		engine.NewScan(s, db.Customer, "c_custkey", "c_name", "c_acctbal", "c_nationkey", "c_phone"),
		agg, "Q10/j_cust", "c_custkey", "o_custkey",
		[]string{"c_name", "c_acctbal", "c_nationkey", "c_phone"})
	j2 := engine.NewHashJoin(s,
		engine.NewScan(s, db.Nation, "n_nationkey", "n_name"),
		j, "Q10/j_nat", "n_nationkey", "c_nationkey", []string{"n_name"})
	sorted := engine.NewTopN(s, j2, 20, engine.Desc(idx(j2, "revenue")))
	return run(sorted)
}

// Q11 is important-stock identification in GERMANY with the HAVING
// threshold computed as a scalar sub-aggregate.
func Q11(db *DB, s *core.Session) (*engine.Table, error) {
	suppDE := nationFilteredSuppliers(db, s, "Q11", "GERMANY")
	ps := engine.NewHashJoin(s, suppDE,
		engine.NewScan(s, db.PartSupp, "ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"),
		"Q11/j_supp", "s_suppkey", "ps_suppkey", nil, engine.WithKind(engine.SemiJoin))
	proj := engine.NewProject(s, ps, "Q11/proj",
		engine.Keep("ps_partkey", 0),
		engine.ProjExpr{Name: "value", Expr: expr.Mul(
			col(ps, "ps_supplycost"), expr.ToI64(col(ps, "ps_availqty")))})
	valTab, err := run(proj)
	if err != nil {
		return nil, err
	}
	totalAgg, err := run(engine.NewHashAgg(s, engine.NewScan(s, valTab), "Q11/total", nil,
		engine.Agg(engine.AggSum, 1, "total")))
	if err != nil {
		return nil, err
	}
	threshold := scalarI64(totalAgg, "total") / 10000 // fraction 0.0001
	perPart := engine.NewHashAgg(s, engine.NewScan(s, valTab), "Q11/agg", []int{0},
		engine.Agg(engine.AggSum, 1, "value"))
	sel := engine.NewSelect(s, perPart, "Q11/having",
		engine.CmpVal(1, ">", int(threshold)))
	sorted := engine.NewSort(s, sel, engine.Desc(1))
	return run(sorted)
}

// Q12 is the shipping-modes query of Figure 2: the receiptdate range
// selection runs over date-clustered lineitem, so its selectivity is ~0,
// then ~100%, then drops — the non-stationary case that motivates
// vw-greedy. orders-lineitem is the merge join of Figure 4(d).
func Q12(db *DB, s *core.Session) (*engine.Table, error) {
	// The receiptdate range predicates run first over the date-clustered
	// scan (as Vectorwise's clustered range selection would), giving the
	// second one the ~100%-then-collapse selectivity profile of Figure 2.
	// Partitioned, every morsel reproduces that profile on its own range.
	li, err := partitioned(s, db.Lineitem, func(fs *core.Session, m engine.Morsel) (engine.Operator, error) {
		return engine.NewSelect(fs,
			engine.NewRangeScan(fs, db.Lineitem, m.Lo, m.Hi,
				"l_orderkey", "l_shipmode", "l_shipdate", "l_commitdate", "l_receiptdate"),
			"Q12/li",
			engine.CmpVal(4, ">=", int(Date(1994, 1, 1))),
			engine.CmpVal(4, "<", int(Date(1995, 1, 1))),
			engine.InStr(1, "MAIL", "SHIP"),
			engine.CmpCol(3, "<", 4),
			engine.CmpCol(2, "<", 3)), nil
	})
	if err != nil {
		return nil, err
	}
	mj := engine.NewMergeJoin(s,
		engine.NewScan(s, db.Orders, "o_orderkey", "o_orderpriority"),
		li, "Q12/mj", "o_orderkey", "l_orderkey",
		[]string{"o_orderpriority"},
		[]string{"l_shipmode"})
	proj := engine.NewProject(s, mj, "Q12/proj",
		engine.Keep("l_shipmode", 1),
		engine.ProjExpr{Name: "high_line", Expr: &expr.CaseInStr{
			Col: col(mj, "o_orderpriority"), Values: []string{"1-URGENT", "2-HIGH"}, Then: 1, Else: 0}},
		engine.ProjExpr{Name: "low_line", Expr: &expr.CaseInStr{
			Col: col(mj, "o_orderpriority"), Values: []string{"1-URGENT", "2-HIGH"}, Then: 0, Else: 1}})
	agg := engine.NewHashAgg(s, proj, "Q12/agg", []int{0},
		engine.Agg(engine.AggSum, 1, "high_line_count"),
		engine.Agg(engine.AggSum, 2, "low_line_count"))
	sorted := engine.NewSort(s, agg, engine.Asc(0))
	return run(sorted)
}

// Q13 is customer order-count distribution including zero-order customers
// (the outer join expressed as aggregate + anti join).
func Q13(db *DB, s *core.Session) (*engine.Table, error) {
	ord := engine.NewSelect(s,
		engine.NewScan(s, db.Orders, "o_orderkey", "o_custkey", "o_comment"),
		"Q13/ord", engine.NotLike(2, "%special%requests%"))
	perCust := engine.NewHashAgg(s, ord, "Q13/percust", []int{1},
		engine.Agg(engine.AggCount, -1, "c_count"))
	perCustTab, err := run(perCust)
	if err != nil {
		return nil, err
	}
	dist := engine.NewHashAgg(s, engine.NewScan(s, perCustTab), "Q13/dist", []int{1},
		engine.Agg(engine.AggCount, -1, "custdist"))
	distTab, err := run(dist)
	if err != nil {
		return nil, err
	}
	// Customers with no (qualifying) orders form the c_count = 0 bucket.
	anti := engine.NewHashJoin(s, engine.NewScan(s, perCustTab),
		engine.NewScan(s, db.Customer, "c_custkey"),
		"Q13/anti", "o_custkey", "c_custkey", nil, engine.WithKind(engine.AntiJoin))
	zeroAgg, err := run(engine.NewHashAgg(s, anti, "Q13/zero", nil,
		engine.Agg(engine.AggCount, -1, "n")))
	if err != nil {
		return nil, err
	}
	zeros := scalarI64(zeroAgg, "n")

	counts := append([]int64(nil), distTab.Col("c_count").I64()[:distTab.Rows()]...)
	dists := append([]int64(nil), distTab.Col("custdist").I64()[:distTab.Rows()]...)
	if zeros > 0 {
		counts = append(counts, 0)
		dists = append(dists, zeros)
	}
	ordIdx := make([]int, len(counts))
	for i := range ordIdx {
		ordIdx[i] = i
	}
	sort.Slice(ordIdx, func(a, b int) bool {
		ia, ib := ordIdx[a], ordIdx[b]
		if dists[ia] != dists[ib] {
			return dists[ia] > dists[ib]
		}
		return counts[ia] > counts[ib]
	})
	oc := make([]int64, len(counts))
	od := make([]int64, len(counts))
	for i, j := range ordIdx {
		oc[i], od[i] = counts[j], dists[j]
	}
	return engine.NewTable("q13", vector.Schema{
		{Name: "c_count", Type: vector.I64},
		{Name: "custdist", Type: vector.I64},
	}, []*vector.Vector{vector.FromI64(oc), vector.FromI64(od)}), nil
}

// Q14 is promotion effect: the share of promo-part revenue in a month.
// Its shipdate selection is the Figure 11(a) instance.
func Q14(db *DB, s *core.Session) (*engine.Table, error) {
	li, err := partitioned(s, db.Lineitem, func(fs *core.Session, m engine.Morsel) (engine.Operator, error) {
		return engine.NewSelect(fs,
			engine.NewRangeScan(fs, db.Lineitem, m.Lo, m.Hi,
				"l_partkey", "l_extendedprice", "l_discount", "l_shipdate"),
			"Q14/li",
			engine.CmpVal(3, ">=", int(Date(1995, 9, 1))),
			engine.CmpVal(3, "<", int(Date(1995, 10, 1)))), nil
	})
	if err != nil {
		return nil, err
	}
	j := engine.NewHashJoin(s,
		engine.NewScan(s, db.Part, "p_partkey", "p_type"),
		li, "Q14/j_part", "p_partkey", "l_partkey", []string{"p_type"})
	rev := revenue(j, "l_extendedprice", "l_discount")
	proj := engine.NewProject(s, j, "Q14/proj",
		engine.ProjExpr{Name: "rev", Expr: rev},
		engine.ProjExpr{Name: "promo_rev", Expr: expr.Mul(
			&expr.CaseLikeStr{Col: col(j, "p_type"), Match: func(v string) bool {
				return len(v) >= 5 && v[:5] == "PROMO"
			}, Then: 1, Else: 0},
			rev)})
	agg, err := run(engine.NewHashAgg(s, proj, "Q14/agg", nil,
		engine.Agg(engine.AggSum, 1, "promo"),
		engine.Agg(engine.AggSum, 0, "total")))
	if err != nil {
		return nil, err
	}
	promo, total := scalarI64(agg, "promo"), scalarI64(agg, "total")
	share := 0.0
	if total != 0 {
		share = 100 * float64(promo) / float64(total)
	}
	return singleRow("q14",
		vector.Schema{{Name: "promo_revenue", Type: vector.F64}}, share), nil
}

// Q15 is top supplier: suppliers achieving the maximum quarterly revenue.
func Q15(db *DB, s *core.Session) (*engine.Table, error) {
	pipe, err := partitioned(s, db.Lineitem, func(fs *core.Session, m engine.Morsel) (engine.Operator, error) {
		li := engine.NewSelect(fs,
			engine.NewRangeScan(fs, db.Lineitem, m.Lo, m.Hi,
				"l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"),
			"Q15/li",
			engine.CmpVal(3, ">=", int(Date(1996, 1, 1))),
			engine.CmpVal(3, "<", int(Date(1996, 4, 1))))
		return engine.NewProject(fs, li, "Q15/proj",
			engine.Keep("l_suppkey", 0),
			engine.ProjExpr{Name: "rev", Expr: revenue(li, "l_extendedprice", "l_discount")}), nil
	})
	if err != nil {
		return nil, err
	}
	revAgg := engine.NewHashAgg(s, pipe, "Q15/agg", []int{0},
		engine.Agg(engine.AggSum, 1, "total_revenue"))
	revTab, err := run(revAgg)
	if err != nil {
		return nil, err
	}
	maxAgg, err := run(engine.NewHashAgg(s, engine.NewScan(s, revTab), "Q15/max", nil,
		engine.Agg(engine.AggMax, 1, "max_rev")))
	if err != nil {
		return nil, err
	}
	maxRev := scalarI64(maxAgg, "max_rev")
	best := engine.NewSelect(s, engine.NewScan(s, revTab), "Q15/best",
		engine.CmpVal(1, "==", int(maxRev)))
	j := engine.NewHashJoin(s,
		engine.NewScan(s, db.Supplier, "s_suppkey", "s_name", "s_phone"),
		best, "Q15/j_supp", "s_suppkey", "l_suppkey", []string{"s_name", "s_phone"})
	sorted := engine.NewSort(s, j, engine.Asc(0))
	return run(sorted)
}

// Q16 is parts/supplier relationship: distinct supplier counts per
// (brand, type, size) excluding complained-about suppliers.
func Q16(db *DB, s *core.Session) (*engine.Table, error) {
	partSel := engine.NewSelect(s,
		engine.NewScan(s, db.Part, "p_partkey", "p_brand", "p_type", "p_size"),
		"Q16/part",
		engine.CmpVal(1, "!=", "Brand#45"),
		engine.NotLike(2, "MEDIUM POLISHED%"),
		engine.InI32(3, 49, 14, 23, 45, 19, 3, 36, 9))
	j := engine.NewHashJoin(s, partSel,
		engine.NewScan(s, db.PartSupp, "ps_partkey", "ps_suppkey"),
		"Q16/j_part", "p_partkey", "ps_partkey", []string{"p_brand", "p_type", "p_size"})
	badSupp := engine.NewSelect(s,
		engine.NewScan(s, db.Supplier, "s_suppkey", "s_comment"),
		"Q16/badsupp", engine.Like(1, "%Customer%Complaints%"))
	j2 := engine.NewHashJoin(s, badSupp, j, "Q16/anti", "s_suppkey", "ps_suppkey",
		nil, engine.WithKind(engine.AntiJoin))
	distinct := engine.NewHashAgg(s, j2, "Q16/distinct",
		[]int{idx(j2, "p_brand"), idx(j2, "p_type"), idx(j2, "p_size"), idx(j2, "ps_suppkey")},
		engine.Agg(engine.AggCount, -1, "n"))
	cnt := engine.NewHashAgg(s, distinct, "Q16/cnt", []int{0, 1, 2},
		engine.Agg(engine.AggCount, -1, "supplier_cnt"))
	sorted := engine.NewSort(s, cnt, engine.Desc(3), engine.Asc(0), engine.Asc(1), engine.Asc(2))
	return run(sorted)
}
