package tpch

import (
	"sort"

	"microadapt/internal/core"
	"microadapt/internal/engine"
	"microadapt/internal/expr"
	"microadapt/internal/plan"
	"microadapt/internal/vector"
)

// q9Plan is product-type profit measure: %green% parts, the two-column
// partsupp join packed into one int64 key, profit per nation and year.
func q9Plan(db *DB) *plan.Builder {
	b := plan.New("Q9")
	partSel := b.Scan(db.Part, "p_partkey", "p_name").
		Select(plan.Like(1, "%green%"))
	li := semiJoin(b, partSel,
		b.Scan(db.Lineitem,
			"l_orderkey", "l_partkey", "l_suppkey", "l_quantity", "l_extendedprice", "l_discount"),
		"p_partkey", "l_partkey")
	liPacked := li.Project(
		engine.Keep("l_orderkey", 0),
		engine.Keep("l_suppkey", 2),
		engine.Keep("l_quantity", 3),
		engine.Keep("l_extendedprice", 4),
		engine.Keep("l_discount", 5),
		engine.ProjExpr{Name: "ps_key", Expr: packKey(li, "l_partkey", "l_suppkey")})

	psScan := b.Scan(db.PartSupp, "ps_partkey", "ps_suppkey", "ps_supplycost")
	psPacked := psScan.Project(
		engine.ProjExpr{Name: "ps_key", Expr: packKey(psScan, "ps_partkey", "ps_suppkey")},
		engine.Keep("ps_supplycost", 2))
	j1 := b.HashJoin(psPacked, liPacked, "ps_key", "ps_key", []string{"ps_supplycost"})

	mj := b.MergeJoin(
		b.Scan(db.Orders, "o_orderkey", "o_orderdate"),
		j1, "o_orderkey", "l_orderkey",
		[]string{"o_orderdate"},
		[]string{"l_suppkey", "l_quantity", "l_extendedprice", "l_discount", "ps_supplycost"})

	suppNat := b.HashJoin(
		b.Scan(db.Nation, "n_nationkey", "n_name"),
		b.Scan(db.Supplier, "s_suppkey", "s_nationkey"),
		"n_nationkey", "s_nationkey", []string{"n_name"})
	j2 := b.HashJoin(suppNat, mj, "s_suppkey", "l_suppkey", []string{"n_name"})

	amount := expr.Sub(
		revenue(j2, "l_extendedprice", "l_discount"),
		expr.Mul(j2.Col("ps_supplycost"), expr.ToI64(j2.Col("l_quantity"))))
	proj := j2.Project(
		engine.Keep("nation", j2.Idx("n_name")),
		engine.ProjExpr{Name: "o_year", Expr: yearOf(j2, "o_orderdate")},
		engine.ProjExpr{Name: "amount", Expr: amount})
	agg := proj.Agg([]int{0, 1}, engine.Agg(engine.AggSum, 2, "sum_profit"))
	b.Root(agg.Sort(engine.Asc(0), engine.Desc(1)))
	return b
}

// Q9 runs the product-type profit query.
func Q9(db *DB, s *core.Session) (*engine.Table, error) { return Query(9).Run(db, s) }

// q10Plan is returned-item reporting: revenue lost to returns per customer
// in a quarter, top 20.
func q10Plan(db *DB) *plan.Builder {
	b := plan.New("Q10")
	ord := b.Scan(db.Orders, "o_orderkey", "o_custkey", "o_orderdate").
		Select(
			plan.CmpVal(2, ">=", int(Date(1993, 10, 1))),
			plan.CmpVal(2, "<", int(Date(1994, 1, 1))))
	li := b.Scan(db.Lineitem, "l_orderkey", "l_extendedprice", "l_discount", "l_returnflag").
		Select(plan.CmpVal(3, "==", "R"))
	mj := b.MergeJoin(ord, li, "o_orderkey", "l_orderkey",
		[]string{"o_custkey"},
		[]string{"l_extendedprice", "l_discount"})
	proj := mj.Project(
		engine.Keep("o_custkey", 0),
		engine.ProjExpr{Name: "rev", Expr: revenue(mj, "l_extendedprice", "l_discount")})
	agg := proj.Agg([]int{0}, engine.Agg(engine.AggSum, 1, "revenue"))
	j := b.HashJoin(
		b.Scan(db.Customer, "c_custkey", "c_name", "c_acctbal", "c_nationkey", "c_phone"),
		agg, "c_custkey", "o_custkey",
		[]string{"c_name", "c_acctbal", "c_nationkey", "c_phone"})
	j2 := b.HashJoin(
		b.Scan(db.Nation, "n_nationkey", "n_name"),
		j, "n_nationkey", "c_nationkey", []string{"n_name"})
	b.Root(j2.TopN(20, engine.Desc(j2.Idx("revenue"))))
	return b
}

// Q10 runs the returned-item reporting query.
func Q10(db *DB, s *core.Session) (*engine.Table, error) { return Query(10).Run(db, s) }

// q11Plan is important-stock identification in GERMANY. The HAVING
// threshold is a scalar subplan inside the plan: the shared value
// projection is materialized once, the global sum resolves to a constant
// (divided by 10000), and the per-part aggregate filters against it.
func q11Plan(db *DB) *plan.Builder {
	b := plan.New("Q11")
	suppDE := nationFilteredSuppliers(b, db, "GERMANY")
	ps := b.SemiJoin(suppDE,
		b.Scan(db.PartSupp, "ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"),
		"s_suppkey", "ps_suppkey")
	proj := ps.Project(
		engine.Keep("ps_partkey", 0),
		engine.ProjExpr{Name: "value", Expr: expr.Mul(
			ps.Col("ps_supplycost"), expr.ToI64(ps.Col("ps_availqty")))})
	totalAgg := proj.Agg(nil, engine.Agg(engine.AggSum, 1, "total"))
	perPart := proj.Agg([]int{0}, engine.Agg(engine.AggSum, 1, "value"))
	sel := perPart.Select(
		plan.CmpScalar(1, ">", plan.ScalarOf(totalAgg, "total").DivBy(10000)))
	b.Root(sel.Sort(engine.Desc(1)))
	return b
}

// Q11 runs the important-stock query.
func Q11(db *DB, s *core.Session) (*engine.Table, error) { return Query(11).Run(db, s) }

// q12Plan is the shipping-modes query of Figure 2: the receiptdate range
// selection runs over date-clustered lineitem, so its selectivity is ~0,
// then ~100%, then drops — the non-stationary case that motivates
// vw-greedy. orders-lineitem is the merge join of Figure 4(d). Partitioned,
// every morsel reproduces that profile on its own range.
func q12Plan(db *DB) *plan.Builder {
	b := plan.New("Q12")
	li := b.Scan(db.Lineitem,
		"l_orderkey", "l_shipmode", "l_shipdate", "l_commitdate", "l_receiptdate").
		Select(
			plan.CmpVal(4, ">=", int(Date(1994, 1, 1))),
			plan.CmpVal(4, "<", int(Date(1995, 1, 1))),
			plan.InStr(1, "MAIL", "SHIP"),
			plan.CmpCol(3, "<", 4),
			plan.CmpCol(2, "<", 3))
	mj := b.MergeJoin(
		b.Scan(db.Orders, "o_orderkey", "o_orderpriority"),
		li, "o_orderkey", "l_orderkey",
		[]string{"o_orderpriority"},
		[]string{"l_shipmode"})
	proj := mj.Project(
		engine.Keep("l_shipmode", 1),
		engine.ProjExpr{Name: "high_line", Expr: &expr.CaseInStr{
			Col: mj.Col("o_orderpriority"), Values: []string{"1-URGENT", "2-HIGH"}, Then: 1, Else: 0}},
		engine.ProjExpr{Name: "low_line", Expr: &expr.CaseInStr{
			Col: mj.Col("o_orderpriority"), Values: []string{"1-URGENT", "2-HIGH"}, Then: 0, Else: 1}})
	agg := proj.Agg([]int{0},
		engine.Agg(engine.AggSum, 1, "high_line_count"),
		engine.Agg(engine.AggSum, 2, "low_line_count"))
	b.Root(agg.Sort(engine.Asc(0)))
	return b
}

// Q12 runs the shipping-modes query.
func Q12(db *DB, s *core.Session) (*engine.Table, error) { return Query(12).Run(db, s) }

// q13Plan is customer order-count distribution. The per-customer aggregate
// is shared by the distribution root and by the anti join counting
// zero-order customers; the zero bucket and the final ordering are a
// delivery step in Q13.
func q13Plan(db *DB) *plan.Builder {
	b := plan.New("Q13")
	ord := b.Scan(db.Orders, "o_orderkey", "o_custkey", "o_comment").
		Select(plan.NotLike(2, "%special%requests%"))
	perCust := ord.Agg([]int{1}, engine.Agg(engine.AggCount, -1, "c_count"))
	dist := perCust.Agg([]int{1}, engine.Agg(engine.AggCount, -1, "custdist"))
	b.NamedRoot("dist", dist)
	anti := b.AntiJoin(perCust,
		b.Scan(db.Customer, "c_custkey"),
		"o_custkey", "c_custkey")
	zero := anti.Agg(nil, engine.Agg(engine.AggCount, -1, "n"))
	b.NamedRoot("zero", zero)
	return b
}

// Q13 runs the order-count distribution query.
func Q13(db *DB, s *core.Session) (*engine.Table, error) { return Query(13).Run(db, s) }

// deliverQ13 finishes Q13: both plan roots share the per-customer
// aggregate, and the zero-order bucket plus the distribution ordering are
// assembled here.
func deliverQ13(b *plan.Builder, ex *plan.Exec) (*engine.Table, error) {
	roots := b.Roots()
	distTab, err := ex.Run(roots[0].Node)
	if err != nil {
		return nil, err
	}
	zeros, err := ex.ScalarI64(roots[1].Node, "n")
	if err != nil {
		return nil, err
	}

	counts := append([]int64(nil), distTab.Col("c_count").I64()[:distTab.Rows()]...)
	dists := append([]int64(nil), distTab.Col("custdist").I64()[:distTab.Rows()]...)
	if zeros > 0 {
		counts = append(counts, 0)
		dists = append(dists, zeros)
	}
	ordIdx := make([]int, len(counts))
	for i := range ordIdx {
		ordIdx[i] = i
	}
	sort.Slice(ordIdx, func(a, b int) bool {
		ia, ib := ordIdx[a], ordIdx[b]
		if dists[ia] != dists[ib] {
			return dists[ia] > dists[ib]
		}
		return counts[ia] > counts[ib]
	})
	oc := make([]int64, len(counts))
	od := make([]int64, len(counts))
	for i, j := range ordIdx {
		oc[i], od[i] = counts[j], dists[j]
	}
	return engine.NewTable("q13", vector.Schema{
		{Name: "c_count", Type: vector.I64},
		{Name: "custdist", Type: vector.I64},
	}, []*vector.Vector{vector.FromI64(oc), vector.FromI64(od)}), nil
}

// q14Plan is promotion effect: the share of promo-part revenue in a month.
// Its shipdate selection is the Figure 11(a) instance; the share division
// is a delivery step in Q14.
func q14Plan(db *DB) *plan.Builder {
	b := plan.New("Q14")
	li := b.Scan(db.Lineitem, "l_partkey", "l_extendedprice", "l_discount", "l_shipdate").
		Select(
			plan.CmpVal(3, ">=", int(Date(1995, 9, 1))),
			plan.CmpVal(3, "<", int(Date(1995, 10, 1))))
	j := b.HashJoin(
		b.Scan(db.Part, "p_partkey", "p_type"),
		li, "p_partkey", "l_partkey", []string{"p_type"})
	rev := revenue(j, "l_extendedprice", "l_discount")
	proj := j.Project(
		engine.ProjExpr{Name: "rev", Expr: rev},
		engine.ProjExpr{Name: "promo_rev", Expr: expr.Mul(
			&expr.CaseLikeStr{Col: j.Col("p_type"), Pattern: "PROMO%", Then: 1, Else: 0},
			rev)})
	agg := proj.Agg(nil,
		engine.Agg(engine.AggSum, 1, "promo"),
		engine.Agg(engine.AggSum, 0, "total"))
	b.NamedRoot("agg", agg)
	return b
}

// Q14 runs the promotion-effect query.
func Q14(db *DB, s *core.Session) (*engine.Table, error) { return Query(14).Run(db, s) }

// deliverQ14 finishes Q14 with the promo-share division.
func deliverQ14(b *plan.Builder, ex *plan.Exec) (*engine.Table, error) {
	agg, err := ex.Run(b.MainRoot())
	if err != nil {
		return nil, err
	}
	promo, total := scalarI64(agg, "promo"), scalarI64(agg, "total")
	share := 0.0
	if total != 0 {
		share = 100 * float64(promo) / float64(total)
	}
	return singleRow("q14",
		vector.Schema{{Name: "promo_revenue", Type: vector.F64}}, share), nil
}

// q15Plan is top supplier: suppliers achieving the maximum quarterly
// revenue. The per-supplier revenue aggregate is shared by the max subplan
// and the best-supplier filter, whose constant is the max as an in-plan
// scalar.
func q15Plan(db *DB) *plan.Builder {
	b := plan.New("Q15")
	li := b.Scan(db.Lineitem, "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate").
		Select(
			plan.CmpVal(3, ">=", int(Date(1996, 1, 1))),
			plan.CmpVal(3, "<", int(Date(1996, 4, 1))))
	proj := li.Project(
		engine.Keep("l_suppkey", 0),
		engine.ProjExpr{Name: "rev", Expr: revenue(li, "l_extendedprice", "l_discount")})
	revAgg := proj.Agg([]int{0}, engine.Agg(engine.AggSum, 1, "total_revenue"))
	maxAgg := revAgg.Agg(nil, engine.Agg(engine.AggMax, 1, "max_rev"))
	best := revAgg.Select(
		plan.CmpScalar(1, "==", plan.ScalarOf(maxAgg, "max_rev")))
	j := b.HashJoin(
		b.Scan(db.Supplier, "s_suppkey", "s_name", "s_phone"),
		best, "s_suppkey", "l_suppkey", []string{"s_name", "s_phone"})
	b.Root(j.Sort(engine.Asc(0)))
	return b
}

// Q15 runs the top-supplier query.
func Q15(db *DB, s *core.Session) (*engine.Table, error) { return Query(15).Run(db, s) }

// q16Plan is parts/supplier relationship: distinct supplier counts per
// (brand, type, size) excluding complained-about suppliers.
func q16Plan(db *DB) *plan.Builder {
	b := plan.New("Q16")
	partSel := b.Scan(db.Part, "p_partkey", "p_brand", "p_type", "p_size").
		Select(
			plan.CmpVal(1, "!=", "Brand#45"),
			plan.NotLike(2, "MEDIUM POLISHED%"),
			plan.InI32(3, 49, 14, 23, 45, 19, 3, 36, 9))
	j := b.HashJoin(partSel,
		b.Scan(db.PartSupp, "ps_partkey", "ps_suppkey"),
		"p_partkey", "ps_partkey", []string{"p_brand", "p_type", "p_size"})
	badSupp := b.Scan(db.Supplier, "s_suppkey", "s_comment").
		Select(plan.Like(1, "%Customer%Complaints%"))
	j2 := b.AntiJoin(badSupp, j, "s_suppkey", "ps_suppkey")
	distinct := j2.Agg(
		[]int{j2.Idx("p_brand"), j2.Idx("p_type"), j2.Idx("p_size"), j2.Idx("ps_suppkey")},
		engine.Agg(engine.AggCount, -1, "n"))
	cnt := distinct.Agg([]int{0, 1, 2}, engine.Agg(engine.AggCount, -1, "supplier_cnt"))
	b.Root(cnt.Sort(engine.Desc(3), engine.Asc(0), engine.Asc(1), engine.Asc(2)))
	return b
}

// Q16 runs the parts/supplier relationship query.
func Q16(db *DB, s *core.Session) (*engine.Table, error) { return Query(16).Run(db, s) }
