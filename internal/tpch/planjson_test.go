package tpch

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"microadapt/internal/core"
	"microadapt/internal/engine"
	"microadapt/internal/hw"
	"microadapt/internal/plan"
	"microadapt/internal/primitive"
)

// resolveTest resolves scan tables against the shared test database, the
// way the query server resolves client plans against its own.
func resolveTest(name string) (*engine.Table, bool) { return testDB.TableByName(name) }

// TestPlanJSONRoundTrip is the codec property test over the full query
// corpus: every TPC-H logical DAG must marshal -> unmarshal -> explain
// identically, at P=1 and P=4, and the round-tripped explain must equal
// the committed golden file — so the wire form provably carries everything
// the planner derives labels, schemas and partitionability from. A second
// marshal of the rebuilt plan must reproduce the wire bytes (the encoding
// is canonical, not just lossless).
func TestPlanJSONRoundTrip(t *testing.T) {
	for _, q := range Queries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			orig := q.Plan(testDB)
			data, err := plan.MarshalPlan(orig)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			rebuilt, err := plan.UnmarshalPlan(data, resolveTest)
			if err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			for _, p := range []int{1, 4} {
				if got, want := rebuilt.Explain(p), orig.Explain(p); got != want {
					t.Fatalf("explain(P=%d) drift after round trip:\ngot:\n%s\nwant:\n%s", p, got, want)
				}
			}
			golden := fmt.Sprintf("# golden explain for TPC-H Q%02d (testDB sf=0.005 seed=42)\n", q.ID) +
				rebuilt.Explain(1) + rebuilt.Explain(4)
			path := filepath.Join("testdata", "explain", fmt.Sprintf("q%02d.golden", q.ID))
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file: %v", err)
			}
			if golden != string(want) {
				t.Errorf("round-tripped plan differs from golden %s", path)
			}
			again, err := plan.MarshalPlan(rebuilt)
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			if string(again) != string(data) {
				t.Errorf("re-marshal not canonical:\nfirst:  %s\nsecond: %s", data, again)
			}
		})
	}
}

// TestPlanJSONExecutesIdentically executes round-tripped plans and asserts
// the result tables are bit-identical to the original plans' — the
// correctness contract the soak harness leans on when it replays wire
// plans against in-process execution.
func TestPlanJSONExecutesIdentically(t *testing.T) {
	queries := []int{1, 6, 11, 14, 19, 22} // group-by, scalar subquery, map fn, case exprs, disjunct roots
	if testing.Short() {
		queries = []int{6, 14}
	}
	session := func() *core.Session {
		dict := primitive.NewDictionary(primitive.Defaults())
		return core.NewSession(dict, hw.Machine1(), core.WithVectorSize(128), core.WithSeed(11))
	}
	for _, qn := range queries {
		q := Query(qn)
		orig := q.Plan(testDB)
		data, err := plan.MarshalPlan(orig)
		if err != nil {
			t.Fatalf("%s: marshal: %v", q.Name, err)
		}
		rebuilt, err := plan.UnmarshalPlan(data, resolveTest)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", q.Name, err)
		}
		want, err := orig.Bind(session()).Run(orig.MainRoot())
		if err != nil {
			t.Fatalf("%s: run original: %v", q.Name, err)
		}
		got, err := rebuilt.Bind(session()).Run(rebuilt.MainRoot())
		if err != nil {
			t.Fatalf("%s: run rebuilt: %v", q.Name, err)
		}
		if tableFingerprint(got) != tableFingerprint(want) {
			t.Errorf("%s: round-tripped plan result differs from original", q.Name)
		}
	}
}
