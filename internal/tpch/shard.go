package tpch

import (
	"fmt"

	"microadapt/internal/engine"
)

// Shard returns the i-th of n range partitions of the database: every base
// table restricted to its rows [i*rows/n, (i+1)*rows/n), zero copy.
// Concatenating the n shards in shard order reproduces every table exactly
// — same rows, same order — which is what makes distributed fragment
// results mergeable bit-identically to single-process execution (order
// clustering, e.g. lineitem/orders by order date, survives too, so merge
// joins keep working on shards). Shard before Encode: encoding a shard
// makes its own slice compressed-resident.
func (db *DB) Shard(i, n int) *DB {
	if n < 1 || i < 0 || i >= n {
		panic(fmt.Sprintf("tpch: shard %d of %d", i, n))
	}
	out := &DB{SF: db.SF}
	dst := out.tableSlots()
	for ti, t := range db.Tables() {
		lo := t.Rows() * i / n
		hi := t.Rows() * (i + 1) / n
		*dst[ti] = t.Slice(lo, hi)
	}
	return out
}

// SchemaOnly returns a zero-row view of the database: full schemas, no
// data. A distributed coordinator plans against it — every plan builds and
// labels identically to a data-bearing process — while all row access goes
// through shard fragments.
func (db *DB) SchemaOnly() *DB {
	out := &DB{SF: db.SF}
	dst := out.tableSlots()
	for ti, t := range db.Tables() {
		*dst[ti] = t.Slice(0, 0)
	}
	return out
}

// tableSlots returns the table fields in the same order Tables() lists
// them.
func (db *DB) tableSlots() []**engine.Table {
	return []**engine.Table{
		&db.Region, &db.Nation, &db.Supplier, &db.Customer,
		&db.Part, &db.PartSupp, &db.Orders, &db.Lineitem,
	}
}
