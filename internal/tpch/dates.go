// Package tpch provides a deterministic, scale-factor-parameterized TPC-H
// data generator and hand-built physical plans for all 22 TPC-H queries
// over the vectorized engine. The paper evaluates Micro Adaptivity on
// TPC-H SF-100 (schema and queries used for demonstration purposes, as the
// paper notes); this reproduction defaults to much smaller scale factors
// with proportionally scaled vector sizes and vw-greedy parameters.
package tpch

import "fmt"

// Dates are stored as int32 days since 1992-01-01 (the first TPC-H order
// date). The workload spans 1992-01-01 .. 1998-12-31.

// EpochYear is the year of day 0.
const EpochYear = 1992

var daysInMonth = [12]int{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}

func isLeap(y int) bool { return y%4 == 0 && (y%100 != 0 || y%400 == 0) }

// yearStart[i] is the day number of Jan 1 of year EpochYear+i.
var yearStart = func() [16]int32 {
	var ys [16]int32
	d := int32(0)
	for i := 0; i < 16; i++ {
		ys[i] = d
		days := 365
		if isLeap(EpochYear + i) {
			days = 366
		}
		d += int32(days)
	}
	return ys
}()

// Date converts a calendar date to day-number form. Panics outside
// 1992-2007.
func Date(y, m, d int) int32 {
	if y < EpochYear || y >= EpochYear+16 {
		panic(fmt.Sprintf("tpch.Date: year %d out of range", y))
	}
	day := yearStart[y-EpochYear]
	for i := 0; i < m-1; i++ {
		day += int32(daysInMonth[i])
		if i == 1 && isLeap(y) {
			day++
		}
	}
	return day + int32(d-1)
}

// YearOf returns the calendar year of a day number.
func YearOf(day int64) int64 {
	for i := len(yearStart) - 1; i >= 0; i-- {
		if day >= int64(yearStart[i]) {
			return int64(EpochYear + i)
		}
	}
	return EpochYear
}

// DateString renders a day number as YYYY-MM-DD (for result display).
func DateString(day int32) string {
	y := int(YearOf(int64(day)))
	rem := int(day - yearStart[y-EpochYear])
	for m := 0; m < 12; m++ {
		dm := daysInMonth[m]
		if m == 1 && isLeap(y) {
			dm++
		}
		if rem < dm {
			return fmt.Sprintf("%04d-%02d-%02d", y, m+1, rem+1)
		}
		rem -= dm
	}
	return fmt.Sprintf("%04d-12-31", y)
}

// AddMonths returns the day number months after a first-of-month date; it
// is used for the paper-style interval parameters (date + 3 months).
func AddMonths(day int32, months int) int32 {
	y := int(YearOf(int64(day)))
	rem := int(day - yearStart[y-EpochYear])
	m := 0
	for {
		dm := daysInMonth[m]
		if m == 1 && isLeap(y) {
			dm++
		}
		if rem < dm {
			break
		}
		rem -= dm
		m++
	}
	m += months
	y += m / 12
	m %= 12
	if rem >= daysInMonth[m] {
		rem = daysInMonth[m] - 1
	}
	return Date(y, m+1, rem+1)
}
