package tpch

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden explain files")

// goldenExplain renders the committed explain text of one query: the
// logical plan plus the physical lowering at P=1 and P=4 — so accidental
// plan drift, including partition-eligibility changes, fails the test.
func goldenExplain(q int) string {
	var out strings.Builder
	fmt.Fprintf(&out, "# golden explain for TPC-H Q%02d (testDB sf=0.005 seed=42)\n", q)
	out.WriteString(Explain(testDB, q, 1))
	out.WriteString(Explain(testDB, q, 4))
	return out.String()
}

// TestExplainGolden pins the logical and physical plans of all 22 queries.
// Regenerate with:
//
//	go test ./internal/tpch -run TestExplainGolden -update
func TestExplainGolden(t *testing.T) {
	for _, q := range Queries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			got := goldenExplain(q.ID)
			path := filepath.Join("testdata", "explain", fmt.Sprintf("q%02d.golden", q.ID))
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("plan drift for %s: explain output differs from %s\n"+
					"got:\n%s\nwant:\n%s\n(if the change is intentional, regenerate with -update)",
					q.Name, path, got, want)
			}
		})
	}
}

// TestExplainAnnotatesPartitions asserts the structural properties the
// goldens encode: the lineitem-heavy pipelines fan out at P=4, and the
// same plans stay serial at P=1.
func TestExplainAnnotatesPartitions(t *testing.T) {
	for _, q := range []int{1, 3, 6, 12, 14, 15} {
		at4 := Explain(testDB, q, 4)
		if !strings.Contains(at4, "Exchange [order-preserving merge of 4 morsel fragments]") {
			t.Errorf("Q%02d at P=4: no partitioned pipeline annotation:\n%s", q, at4)
		}
		at1 := Explain(testDB, q, 1)
		if strings.Contains(at1, "Exchange [order-preserving merge") {
			t.Errorf("Q%02d at P=1: unexpected fan-out annotation", q)
		}
	}
}

// TestExplainShowsScalars asserts scalar subplans print symbolically.
func TestExplainShowsScalars(t *testing.T) {
	out := Explain(testDB, 11, 1)
	if !strings.Contains(out, "$(Q11/agg0.total)/10000") {
		t.Errorf("Q11 explain misses the scalar threshold:\n%s", out)
	}
}
