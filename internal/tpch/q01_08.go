package tpch

import (
	"microadapt/internal/core"
	"microadapt/internal/engine"
	"microadapt/internal/expr"
	"microadapt/internal/vector"
)

// Q1 is the pricing summary report: one pass over lineitem with a date
// selection, two map-heavy projected expressions, and an aggregation
// grouped on (returnflag, linestatus). It is the query of Figures 4(a),
// 4(b) and 11(c) in the paper. The scan/select/project prefix is
// partitionable: under pipeline parallelism each morsel of lineitem runs
// the full select+project stack on its own fragment session.
func Q1(db *DB, s *core.Session) (*engine.Table, error) {
	pipe, err := partitioned(s, db.Lineitem, func(fs *core.Session, m engine.Morsel) (engine.Operator, error) {
		scan := engine.NewRangeScan(fs, db.Lineitem, m.Lo, m.Hi,
			"l_quantity", "l_extendedprice", "l_discount", "l_tax",
			"l_returnflag", "l_linestatus", "l_shipdate")
		sel := engine.NewSelect(fs, scan, "Q1/sel",
			engine.CmpVal(6, "<=", int(Date(1998, 9, 2))))
		discPrice := revenue(sel, "l_extendedprice", "l_discount")
		charge := expr.Div(
			expr.Mul(discPrice, expr.Add(&expr.ConstI64{V: 100}, col(sel, "l_tax"))),
			&expr.ConstI64{V: 100})
		return engine.NewProject(fs, sel, "Q1/proj",
			engine.Keep("l_returnflag", 4),
			engine.Keep("l_linestatus", 5),
			engine.Keep("l_quantity", 0),
			engine.Keep("l_extendedprice", 1),
			engine.ProjExpr{Name: "disc_price", Expr: discPrice},
			engine.ProjExpr{Name: "charge", Expr: charge},
			engine.Keep("l_discount", 2),
		), nil
	})
	if err != nil {
		return nil, err
	}
	agg := engine.NewHashAgg(s, pipe, "Q1/agg", []int{0, 1},
		engine.Agg(engine.AggSum, 2, "sum_qty"),
		engine.Agg(engine.AggSum, 3, "sum_base_price"),
		engine.Agg(engine.AggSum, 4, "sum_disc_price"),
		engine.Agg(engine.AggSum, 5, "sum_charge"),
		engine.Agg(engine.AggAvg, 2, "avg_qty"),
		engine.Agg(engine.AggAvg, 3, "avg_price"),
		engine.Agg(engine.AggAvg, 6, "avg_disc"),
		engine.Agg(engine.AggCount, -1, "count_order"),
	)
	sorted := engine.NewSort(s, agg, engine.Asc(0), engine.Asc(1))
	return run(sorted)
}

// Q2 finds the minimum-cost supplier per part in EUROPE for size-15
// %BRASS parts, with the min-cost correlated subquery as an aggregate +
// join-back.
func Q2(db *DB, s *core.Session) (*engine.Table, error) {
	partScan := engine.NewScan(s, db.Part, "p_partkey", "p_mfgr", "p_size", "p_type")
	partSel := engine.NewSelect(s, partScan, "Q2/part",
		engine.CmpVal(2, "==", 15),
		engine.Like(3, "%BRASS"))

	ps := engine.NewScan(s, db.PartSupp, "ps_partkey", "ps_suppkey", "ps_supplycost")
	j1 := engine.NewHashJoin(s, partSel, ps, "Q2/j_part", "p_partkey", "ps_partkey", []string{"p_mfgr"})

	supp := engine.NewScan(s, db.Supplier, "s_suppkey", "s_name", "s_nationkey", "s_acctbal")
	j2 := engine.NewHashJoin(s, supp, j1, "Q2/j_supp", "s_suppkey", "ps_suppkey",
		[]string{"s_name", "s_acctbal", "s_nationkey"})

	regSel := engine.NewSelect(s, engine.NewScan(s, db.Region, "r_regionkey", "r_name"),
		"Q2/region", engine.CmpVal(1, "==", "EUROPE"))
	natScan := engine.NewScan(s, db.Nation, "n_nationkey", "n_name", "n_regionkey")
	natEur := semiJoin(s, regSel, natScan, "Q2/j_region", "r_regionkey", "n_regionkey")
	natTab, err := run(natEur)
	if err != nil {
		return nil, err
	}
	j3 := engine.NewHashJoin(s, engine.NewScan(s, natTab), j2, "Q2/j_nation",
		"n_nationkey", "s_nationkey", []string{"n_name"})

	joined, err := run(j3)
	if err != nil {
		return nil, err
	}
	minAgg := engine.NewHashAgg(s, engine.NewScan(s, joined), "Q2/minagg",
		[]int{joined.Sch.MustIndexOf("ps_partkey")},
		engine.Agg(engine.AggMin, joined.Sch.MustIndexOf("ps_supplycost"), "min_cost"))
	minTab, err := run(minAgg)
	if err != nil {
		return nil, err
	}
	back := engine.NewHashJoin(s, engine.NewScan(s, minTab), engine.NewScan(s, joined),
		"Q2/j_back", "ps_partkey", "ps_partkey", []string{"min_cost"})
	final := engine.NewSelect(s, back, "Q2/selmin",
		engine.CmpCol(back.Schema().MustIndexOf("ps_supplycost"), "==", back.Schema().MustIndexOf("min_cost")))
	sorted := engine.NewTopN(s, final, 100,
		engine.Desc(final.Schema().MustIndexOf("s_acctbal")),
		engine.Asc(final.Schema().MustIndexOf("n_name")),
		engine.Asc(final.Schema().MustIndexOf("s_name")),
		engine.Asc(final.Schema().MustIndexOf("ps_partkey")))
	return run(sorted)
}

// Q3 is the shipping-priority query: BUILDING customers, pre-date orders,
// post-date lineitems, top-10 revenue. orders-lineitem is a merge join on
// the clustered orderkey.
func Q3(db *DB, s *core.Session) (*engine.Table, error) {
	cutoff := int(Date(1995, 3, 15))
	cust := engine.NewSelect(s,
		engine.NewScan(s, db.Customer, "c_custkey", "c_mktsegment"),
		"Q3/cust", engine.CmpVal(1, "==", "BUILDING"))
	ord := engine.NewSelect(s,
		engine.NewScan(s, db.Orders, "o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"),
		"Q3/ord", engine.CmpVal(2, "<", cutoff))
	ordB := semiJoin(s, cust, ord, "Q3/j_cust", "c_custkey", "o_custkey")

	li, err := partitioned(s, db.Lineitem, func(fs *core.Session, m engine.Morsel) (engine.Operator, error) {
		return engine.NewSelect(fs,
			engine.NewRangeScan(fs, db.Lineitem, m.Lo, m.Hi,
				"l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"),
			"Q3/li", engine.CmpVal(3, ">", cutoff)), nil
	})
	if err != nil {
		return nil, err
	}
	mj := engine.NewMergeJoin(s, ordB, li, "Q3/mj", "o_orderkey", "l_orderkey",
		[]string{"o_orderkey", "o_orderdate", "o_shippriority"},
		[]string{"l_extendedprice", "l_discount"})
	proj := engine.NewProject(s, mj, "Q3/proj",
		engine.Keep("o_orderkey", 0),
		engine.Keep("o_orderdate", 1),
		engine.Keep("o_shippriority", 2),
		engine.ProjExpr{Name: "rev", Expr: revenue(mj, "l_extendedprice", "l_discount")},
	)
	agg := engine.NewHashAgg(s, proj, "Q3/agg", []int{0, 1, 2},
		engine.Agg(engine.AggSum, 3, "revenue"))
	sorted := engine.NewTopN(s, agg, 10, engine.Desc(3), engine.Asc(1))
	return run(sorted)
}

// Q4 is the order-priority check: orders in a quarter having at least one
// late lineitem (semi join), counted per priority.
func Q4(db *DB, s *core.Session) (*engine.Table, error) {
	li := engine.NewScan(s, db.Lineitem, "l_orderkey", "l_commitdate", "l_receiptdate")
	late := engine.NewSelect(s, li, "Q4/late", engine.CmpCol(1, "<", 2))
	ord := engine.NewSelect(s,
		engine.NewScan(s, db.Orders, "o_orderkey", "o_orderdate", "o_orderpriority"),
		"Q4/ord",
		engine.CmpVal(1, ">=", int(Date(1993, 7, 1))),
		engine.CmpVal(1, "<", int(Date(1993, 10, 1))))
	j := semiJoin(s, late, ord, "Q4/j", "l_orderkey", "o_orderkey")
	agg := engine.NewHashAgg(s, j, "Q4/agg", []int{2},
		engine.Agg(engine.AggCount, -1, "order_count"))
	sorted := engine.NewSort(s, agg, engine.Asc(0))
	return run(sorted)
}

// Q5 is local-supplier volume in ASIA for 1994: a five-way join with the
// customer-nation = supplier-nation constraint as a column-column select.
func Q5(db *DB, s *core.Session) (*engine.Table, error) {
	regSel := engine.NewSelect(s, engine.NewScan(s, db.Region, "r_regionkey", "r_name"),
		"Q5/region", engine.CmpVal(1, "==", "ASIA"))
	nat := semiJoin(s, regSel,
		engine.NewScan(s, db.Nation, "n_nationkey", "n_name", "n_regionkey"),
		"Q5/j_region", "r_regionkey", "n_regionkey")
	natTab, err := run(nat)
	if err != nil {
		return nil, err
	}
	supp := engine.NewHashJoin(s, engine.NewScan(s, natTab),
		engine.NewScan(s, db.Supplier, "s_suppkey", "s_nationkey"),
		"Q5/j_suppnat", "n_nationkey", "s_nationkey", []string{"n_name"})
	suppTab, err := run(supp)
	if err != nil {
		return nil, err
	}

	ord := engine.NewSelect(s,
		engine.NewScan(s, db.Orders, "o_orderkey", "o_custkey", "o_orderdate"),
		"Q5/ord",
		engine.CmpVal(2, ">=", int(Date(1994, 1, 1))),
		engine.CmpVal(2, "<", int(Date(1995, 1, 1))))
	mj := engine.NewMergeJoin(s, ord,
		engine.NewScan(s, db.Lineitem, "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"),
		"Q5/mj", "o_orderkey", "l_orderkey",
		[]string{"o_custkey"},
		[]string{"l_suppkey", "l_extendedprice", "l_discount"})
	j2 := engine.NewHashJoin(s, engine.NewScan(s, suppTab), mj, "Q5/j_supp",
		"s_suppkey", "l_suppkey", []string{"n_name", "s_nationkey"})
	j3 := engine.NewHashJoin(s,
		engine.NewScan(s, db.Customer, "c_custkey", "c_nationkey"),
		j2, "Q5/j_cust", "c_custkey", "o_custkey", []string{"c_nationkey"})
	filt := engine.NewSelect(s, j3, "Q5/samenation",
		engine.CmpCol(idx(j3, "s_nationkey"), "==", idx(j3, "c_nationkey")))
	proj := engine.NewProject(s, filt, "Q5/proj",
		engine.Keep("n_name", idx(filt, "n_name")),
		engine.ProjExpr{Name: "rev", Expr: revenue(filt, "l_extendedprice", "l_discount")})
	agg := engine.NewHashAgg(s, proj, "Q5/agg", []int{0},
		engine.Agg(engine.AggSum, 1, "revenue"))
	sorted := engine.NewSort(s, agg, engine.Desc(1))
	return run(sorted)
}

// Q6 is the forecasting revenue-change query: three selections on one
// lineitem scan and a global aggregate — the paper's canonical selection-
// dominated query (the biggest heuristics/adaptivity win in Table 11).
func Q6(db *DB, s *core.Session) (*engine.Table, error) {
	pipe, err := partitioned(s, db.Lineitem, func(fs *core.Session, m engine.Morsel) (engine.Operator, error) {
		scan := engine.NewRangeScan(fs, db.Lineitem, m.Lo, m.Hi,
			"l_shipdate", "l_discount", "l_quantity", "l_extendedprice")
		sel := engine.NewSelect(fs, scan, "Q6/sel",
			engine.CmpVal(0, ">=", int(Date(1994, 1, 1))),
			engine.CmpVal(0, "<", int(Date(1995, 1, 1))),
			engine.CmpVal(1, ">=", 5),
			engine.CmpVal(1, "<=", 7),
			engine.CmpVal(2, "<", 24))
		return engine.NewProject(fs, sel, "Q6/proj",
			engine.ProjExpr{Name: "rev", Expr: expr.Div(
				expr.Mul(col(sel, "l_extendedprice"), col(sel, "l_discount")),
				&expr.ConstI64{V: 100})}), nil
	})
	if err != nil {
		return nil, err
	}
	agg := engine.NewHashAgg(s, pipe, "Q6/agg", nil,
		engine.Agg(engine.AggSum, 0, "revenue"))
	return run(agg)
}

// Q7 is the volume-shipping query between FRANCE and GERMANY, grouped by
// the shipping year; orders-lineitem runs as the merge join of Figure 4(c).
func Q7(db *DB, s *core.Session) (*engine.Table, error) {
	natPair := engine.NewSelect(s, engine.NewScan(s, db.Nation, "n_nationkey", "n_name"),
		"Q7/nations", engine.InStr(1, "FRANCE", "GERMANY"))
	natTab, err := run(natPair)
	if err != nil {
		return nil, err
	}
	suppJ := engine.NewHashJoin(s, engine.NewScan(s, natTab),
		engine.NewScan(s, db.Supplier, "s_suppkey", "s_nationkey"),
		"Q7/j_suppnat", "n_nationkey", "s_nationkey", []string{"n_name"})
	suppTab, err := run(suppJ)
	if err != nil {
		return nil, err
	}
	suppTab = engine.Rename(suppTab, map[string]string{"n_name": "supp_nation"})
	custJ := engine.NewHashJoin(s, engine.NewScan(s, natTab),
		engine.NewScan(s, db.Customer, "c_custkey", "c_nationkey"),
		"Q7/j_custnat", "n_nationkey", "c_nationkey", []string{"n_name"})
	custTab, err := run(custJ)
	if err != nil {
		return nil, err
	}
	custTab = engine.Rename(custTab, map[string]string{"n_name": "cust_nation"})

	li := engine.NewSelect(s,
		engine.NewScan(s, db.Lineitem, "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"),
		"Q7/li",
		engine.CmpVal(4, ">=", int(Date(1995, 1, 1))),
		engine.CmpVal(4, "<=", int(Date(1996, 12, 31))))
	mj := engine.NewMergeJoin(s,
		engine.NewScan(s, db.Orders, "o_orderkey", "o_custkey"),
		li, "Q7/mj", "o_orderkey", "l_orderkey",
		[]string{"o_custkey"},
		[]string{"l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"})
	j1 := engine.NewHashJoin(s, engine.NewScan(s, suppTab), mj, "Q7/j_supp",
		"s_suppkey", "l_suppkey", []string{"supp_nation"})
	j2 := engine.NewHashJoin(s, engine.NewScan(s, custTab), j1, "Q7/j_cust",
		"c_custkey", "o_custkey", []string{"cust_nation"})
	pairSel := engine.NewSelect(s, j2, "Q7/pair",
		engine.CmpCol(idx(j2, "supp_nation"), "!=", idx(j2, "cust_nation")))
	proj := engine.NewProject(s, pairSel, "Q7/proj",
		engine.Keep("supp_nation", idx(pairSel, "supp_nation")),
		engine.Keep("cust_nation", idx(pairSel, "cust_nation")),
		engine.ProjExpr{Name: "l_year", Expr: yearOf(pairSel, "l_shipdate")},
		engine.ProjExpr{Name: "volume", Expr: revenue(pairSel, "l_extendedprice", "l_discount")})
	agg := engine.NewHashAgg(s, proj, "Q7/agg", []int{0, 1, 2},
		engine.Agg(engine.AggSum, 3, "revenue"))
	sorted := engine.NewSort(s, agg, engine.Asc(0), engine.Asc(1), engine.Asc(2))
	return run(sorted)
}

// Q8 is national market share: BRAZIL's fraction of AMERICA's ECONOMY
// ANODIZED STEEL volume per year, via an indicator CASE expression.
func Q8(db *DB, s *core.Session) (*engine.Table, error) {
	partSel := engine.NewSelect(s, engine.NewScan(s, db.Part, "p_partkey", "p_type"),
		"Q8/part", engine.CmpVal(1, "==", "ECONOMY ANODIZED STEEL"))
	li := semiJoin(s, partSel,
		engine.NewScan(s, db.Lineitem, "l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice", "l_discount"),
		"Q8/j_part", "p_partkey", "l_partkey")
	ord := engine.NewSelect(s,
		engine.NewScan(s, db.Orders, "o_orderkey", "o_custkey", "o_orderdate"),
		"Q8/ord",
		engine.CmpVal(2, ">=", int(Date(1995, 1, 1))),
		engine.CmpVal(2, "<=", int(Date(1996, 12, 31))))
	mj := engine.NewMergeJoin(s, ord, li, "Q8/mj", "o_orderkey", "l_orderkey",
		[]string{"o_custkey", "o_orderdate"},
		[]string{"l_suppkey", "l_extendedprice", "l_discount"})

	regSel := engine.NewSelect(s, engine.NewScan(s, db.Region, "r_regionkey", "r_name"),
		"Q8/region", engine.CmpVal(1, "==", "AMERICA"))
	natAm := semiJoin(s, regSel,
		engine.NewScan(s, db.Nation, "n_nationkey", "n_regionkey"),
		"Q8/j_region", "r_regionkey", "n_regionkey")
	natAmTab, err := run(natAm)
	if err != nil {
		return nil, err
	}
	custAm := semiJoin(s, engine.NewScan(s, natAmTab),
		engine.NewScan(s, db.Customer, "c_custkey", "c_nationkey"),
		"Q8/j_custnat", "n_nationkey", "c_nationkey")
	custAmTab, err := run(custAm)
	if err != nil {
		return nil, err
	}
	j1 := semiJoin(s, engine.NewScan(s, custAmTab), mj, "Q8/j_cust", "c_custkey", "o_custkey")

	suppNat := engine.NewHashJoin(s,
		engine.NewScan(s, db.Nation, "n_nationkey", "n_name"),
		engine.NewScan(s, db.Supplier, "s_suppkey", "s_nationkey"),
		"Q8/j_suppnat", "n_nationkey", "s_nationkey", []string{"n_name"})
	suppNatTab, err := run(suppNat)
	if err != nil {
		return nil, err
	}
	j2 := engine.NewHashJoin(s, engine.NewScan(s, suppNatTab), j1, "Q8/j_supp",
		"s_suppkey", "l_suppkey", []string{"n_name"})

	vol := revenue(j2, "l_extendedprice", "l_discount")
	proj := engine.NewProject(s, j2, "Q8/proj",
		engine.ProjExpr{Name: "o_year", Expr: yearOf(j2, "o_orderdate")},
		engine.ProjExpr{Name: "volume", Expr: vol},
		engine.ProjExpr{Name: "brazil_volume", Expr: expr.Mul(
			&expr.CaseEqStr{Col: col(j2, "n_name"), Value: "BRAZIL", Then: 1, Else: 0},
			vol)})
	agg := engine.NewHashAgg(s, proj, "Q8/agg", []int{0},
		engine.Agg(engine.AggSum, 2, "brazil_volume"),
		engine.Agg(engine.AggSum, 1, "total_volume"))
	aggTab, err := run(engine.NewSort(s, agg, engine.Asc(0)))
	if err != nil {
		return nil, err
	}
	// Final share = brazil/total per year, computed in the delivery step.
	years := aggTab.Col("o_year").I64()[:aggTab.Rows()]
	br := aggTab.Col("brazil_volume").I64()[:aggTab.Rows()]
	tot := aggTab.Col("total_volume").I64()[:aggTab.Rows()]
	share := make([]float64, aggTab.Rows())
	for i := range share {
		if tot[i] != 0 {
			share[i] = float64(br[i]) / float64(tot[i])
		}
	}
	return engine.NewTable("q8", vector.Schema{
		{Name: "o_year", Type: vector.I64},
		{Name: "mkt_share", Type: vector.F64},
	}, []*vector.Vector{vector.FromI64(years), vector.FromF64(share)}), nil
}
