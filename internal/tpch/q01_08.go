package tpch

import (
	"microadapt/internal/core"
	"microadapt/internal/engine"
	"microadapt/internal/expr"
	"microadapt/internal/plan"
	"microadapt/internal/vector"
)

// q1Plan is the pricing summary report: one pass over lineitem with a date
// selection, two map-heavy projected expressions, and an aggregation
// grouped on (returnflag, linestatus). It is the query of Figures 4(a),
// 4(b) and 11(c) in the paper. The planner derives the scan→select→project
// prefix as morsel-partitionable: under pipeline parallelism each morsel of
// lineitem runs the full stack on its own fragment session.
func q1Plan(db *DB) *plan.Builder {
	b := plan.New("Q1")
	scan := b.Scan(db.Lineitem,
		"l_quantity", "l_extendedprice", "l_discount", "l_tax",
		"l_returnflag", "l_linestatus", "l_shipdate")
	sel := scan.Select(plan.CmpVal(6, "<=", int(Date(1998, 9, 2))))
	discPrice := revenue(sel, "l_extendedprice", "l_discount")
	charge := expr.Div(
		expr.Mul(discPrice, expr.Add(&expr.ConstI64{V: 100}, sel.Col("l_tax"))),
		&expr.ConstI64{V: 100})
	proj := sel.Project(
		engine.Keep("l_returnflag", 4),
		engine.Keep("l_linestatus", 5),
		engine.Keep("l_quantity", 0),
		engine.Keep("l_extendedprice", 1),
		engine.ProjExpr{Name: "disc_price", Expr: discPrice},
		engine.ProjExpr{Name: "charge", Expr: charge},
		engine.Keep("l_discount", 2),
	)
	agg := proj.Agg([]int{0, 1},
		engine.Agg(engine.AggSum, 2, "sum_qty"),
		engine.Agg(engine.AggSum, 3, "sum_base_price"),
		engine.Agg(engine.AggSum, 4, "sum_disc_price"),
		engine.Agg(engine.AggSum, 5, "sum_charge"),
		engine.Agg(engine.AggAvg, 2, "avg_qty"),
		engine.Agg(engine.AggAvg, 3, "avg_price"),
		engine.Agg(engine.AggAvg, 6, "avg_disc"),
		engine.Agg(engine.AggCount, -1, "count_order"),
	)
	b.Root(agg.Sort(engine.Asc(0), engine.Asc(1)))
	return b
}

// Q1 runs the pricing summary report.
func Q1(db *DB, s *core.Session) (*engine.Table, error) { return Query(1).Run(db, s) }

// q2Plan finds the minimum-cost supplier per part in EUROPE for size-15
// %BRASS parts; the min-cost correlated subquery is an aggregate over the
// shared join result (materialized once by the planner) joined back.
func q2Plan(db *DB) *plan.Builder {
	b := plan.New("Q2")
	partSel := b.Scan(db.Part, "p_partkey", "p_mfgr", "p_size", "p_type").
		Select(plan.CmpVal(2, "==", 15), plan.Like(3, "%BRASS"))

	ps := b.Scan(db.PartSupp, "ps_partkey", "ps_suppkey", "ps_supplycost")
	j1 := b.HashJoin(partSel, ps, "p_partkey", "ps_partkey", []string{"p_mfgr"})

	supp := b.Scan(db.Supplier, "s_suppkey", "s_name", "s_nationkey", "s_acctbal")
	j2 := b.HashJoin(supp, j1, "s_suppkey", "ps_suppkey",
		[]string{"s_name", "s_acctbal", "s_nationkey"})

	regSel := b.Scan(db.Region, "r_regionkey", "r_name").
		Select(plan.CmpVal(1, "==", "EUROPE"))
	natScan := b.Scan(db.Nation, "n_nationkey", "n_name", "n_regionkey")
	natEur := semiJoin(b, regSel, natScan, "r_regionkey", "n_regionkey")
	j3 := b.HashJoin(natEur, j2, "n_nationkey", "s_nationkey", []string{"n_name"})

	// j3 feeds both the per-part minimum and the join-back probe: the
	// planner materializes it once.
	minAgg := j3.Agg([]int{j3.Idx("ps_partkey")},
		engine.Agg(engine.AggMin, j3.Idx("ps_supplycost"), "min_cost"))
	back := b.HashJoin(minAgg, j3, "ps_partkey", "ps_partkey", []string{"min_cost"})
	final := back.Select(plan.CmpCol(back.Idx("ps_supplycost"), "==", back.Idx("min_cost")))
	b.Root(final.TopN(100,
		engine.Desc(final.Idx("s_acctbal")),
		engine.Asc(final.Idx("n_name")),
		engine.Asc(final.Idx("s_name")),
		engine.Asc(final.Idx("ps_partkey"))))
	return b
}

// Q2 runs the minimum-cost supplier query.
func Q2(db *DB, s *core.Session) (*engine.Table, error) { return Query(2).Run(db, s) }

// q3Plan is the shipping-priority query: BUILDING customers, pre-date
// orders, post-date lineitems, top-10 revenue. orders-lineitem is a merge
// join on the clustered orderkey.
func q3Plan(db *DB) *plan.Builder {
	b := plan.New("Q3")
	cutoff := int(Date(1995, 3, 15))
	cust := b.Scan(db.Customer, "c_custkey", "c_mktsegment").
		Select(plan.CmpVal(1, "==", "BUILDING"))
	ord := b.Scan(db.Orders, "o_orderkey", "o_custkey", "o_orderdate", "o_shippriority").
		Select(plan.CmpVal(2, "<", cutoff))
	ordB := semiJoin(b, cust, ord, "c_custkey", "o_custkey")

	li := b.Scan(db.Lineitem, "l_orderkey", "l_extendedprice", "l_discount", "l_shipdate").
		Select(plan.CmpVal(3, ">", cutoff))
	mj := b.MergeJoin(ordB, li, "o_orderkey", "l_orderkey",
		[]string{"o_orderkey", "o_orderdate", "o_shippriority"},
		[]string{"l_extendedprice", "l_discount"})
	proj := mj.Project(
		engine.Keep("o_orderkey", 0),
		engine.Keep("o_orderdate", 1),
		engine.Keep("o_shippriority", 2),
		engine.ProjExpr{Name: "rev", Expr: revenue(mj, "l_extendedprice", "l_discount")},
	)
	agg := proj.Agg([]int{0, 1, 2}, engine.Agg(engine.AggSum, 3, "revenue"))
	b.Root(agg.TopN(10, engine.Desc(3), engine.Asc(1)))
	return b
}

// Q3 runs the shipping-priority query.
func Q3(db *DB, s *core.Session) (*engine.Table, error) { return Query(3).Run(db, s) }

// q4Plan is the order-priority check: orders in a quarter having at least
// one late lineitem (semi join), counted per priority.
func q4Plan(db *DB) *plan.Builder {
	b := plan.New("Q4")
	late := b.Scan(db.Lineitem, "l_orderkey", "l_commitdate", "l_receiptdate").
		Select(plan.CmpCol(1, "<", 2))
	ord := b.Scan(db.Orders, "o_orderkey", "o_orderdate", "o_orderpriority").
		Select(
			plan.CmpVal(1, ">=", int(Date(1993, 7, 1))),
			plan.CmpVal(1, "<", int(Date(1993, 10, 1))))
	j := semiJoin(b, late, ord, "l_orderkey", "o_orderkey")
	agg := j.Agg([]int{2}, engine.Agg(engine.AggCount, -1, "order_count"))
	b.Root(agg.Sort(engine.Asc(0)))
	return b
}

// Q4 runs the order-priority check.
func Q4(db *DB, s *core.Session) (*engine.Table, error) { return Query(4).Run(db, s) }

// q5Plan is local-supplier volume in ASIA for 1994: a five-way join with
// the customer-nation = supplier-nation constraint as a column-column
// select.
func q5Plan(db *DB) *plan.Builder {
	b := plan.New("Q5")
	regSel := b.Scan(db.Region, "r_regionkey", "r_name").
		Select(plan.CmpVal(1, "==", "ASIA"))
	nat := semiJoin(b, regSel,
		b.Scan(db.Nation, "n_nationkey", "n_name", "n_regionkey"),
		"r_regionkey", "n_regionkey")
	supp := b.HashJoin(nat,
		b.Scan(db.Supplier, "s_suppkey", "s_nationkey"),
		"n_nationkey", "s_nationkey", []string{"n_name"})

	ord := b.Scan(db.Orders, "o_orderkey", "o_custkey", "o_orderdate").
		Select(
			plan.CmpVal(2, ">=", int(Date(1994, 1, 1))),
			plan.CmpVal(2, "<", int(Date(1995, 1, 1))))
	mj := b.MergeJoin(ord,
		b.Scan(db.Lineitem, "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"),
		"o_orderkey", "l_orderkey",
		[]string{"o_custkey"},
		[]string{"l_suppkey", "l_extendedprice", "l_discount"})
	j2 := b.HashJoin(supp, mj, "s_suppkey", "l_suppkey", []string{"n_name", "s_nationkey"})
	j3 := b.HashJoin(
		b.Scan(db.Customer, "c_custkey", "c_nationkey"),
		j2, "c_custkey", "o_custkey", []string{"c_nationkey"})
	filt := j3.Select(plan.CmpCol(j3.Idx("s_nationkey"), "==", j3.Idx("c_nationkey")))
	proj := filt.Project(
		engine.Keep("n_name", filt.Idx("n_name")),
		engine.ProjExpr{Name: "rev", Expr: revenue(filt, "l_extendedprice", "l_discount")})
	agg := proj.Agg([]int{0}, engine.Agg(engine.AggSum, 1, "revenue"))
	b.Root(agg.Sort(engine.Desc(1)))
	return b
}

// Q5 runs the local-supplier volume query.
func Q5(db *DB, s *core.Session) (*engine.Table, error) { return Query(5).Run(db, s) }

// q6Plan is the forecasting revenue-change query: three selections on one
// lineitem scan and a global aggregate — the paper's canonical selection-
// dominated query (the biggest heuristics/adaptivity win in Table 11).
func q6Plan(db *DB) *plan.Builder {
	b := plan.New("Q6")
	sel := b.Scan(db.Lineitem, "l_shipdate", "l_discount", "l_quantity", "l_extendedprice").
		Select(
			plan.CmpVal(0, ">=", int(Date(1994, 1, 1))),
			plan.CmpVal(0, "<", int(Date(1995, 1, 1))),
			plan.CmpVal(1, ">=", 5),
			plan.CmpVal(1, "<=", 7),
			plan.CmpVal(2, "<", 24))
	proj := sel.Project(
		engine.ProjExpr{Name: "rev", Expr: expr.Div(
			expr.Mul(sel.Col("l_extendedprice"), sel.Col("l_discount")),
			&expr.ConstI64{V: 100})})
	b.Root(proj.Agg(nil, engine.Agg(engine.AggSum, 0, "revenue")))
	return b
}

// Q6 runs the forecasting revenue-change query.
func Q6(db *DB, s *core.Session) (*engine.Table, error) { return Query(6).Run(db, s) }

// q7Plan is the volume-shipping query between FRANCE and GERMANY, grouped
// by the shipping year; orders-lineitem runs as the merge join of
// Figure 4(c). The nation pair is a shared subtree feeding both the
// supplier and the customer joins; renames are projections.
func q7Plan(db *DB) *plan.Builder {
	b := plan.New("Q7")
	natPair := b.Scan(db.Nation, "n_nationkey", "n_name").
		Select(plan.InStr(1, "FRANCE", "GERMANY"))
	suppJ := b.HashJoin(natPair,
		b.Scan(db.Supplier, "s_suppkey", "s_nationkey"),
		"n_nationkey", "s_nationkey", []string{"n_name"})
	suppRen := suppJ.Project(
		engine.Keep("s_suppkey", 0),
		engine.Keep("s_nationkey", 1),
		engine.Keep("supp_nation", 2))
	custJ := b.HashJoin(natPair,
		b.Scan(db.Customer, "c_custkey", "c_nationkey"),
		"n_nationkey", "c_nationkey", []string{"n_name"})
	custRen := custJ.Project(
		engine.Keep("c_custkey", 0),
		engine.Keep("c_nationkey", 1),
		engine.Keep("cust_nation", 2))

	li := b.Scan(db.Lineitem, "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate").
		Select(
			plan.CmpVal(4, ">=", int(Date(1995, 1, 1))),
			plan.CmpVal(4, "<=", int(Date(1996, 12, 31))))
	mj := b.MergeJoin(
		b.Scan(db.Orders, "o_orderkey", "o_custkey"),
		li, "o_orderkey", "l_orderkey",
		[]string{"o_custkey"},
		[]string{"l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"})
	j1 := b.HashJoin(suppRen, mj, "s_suppkey", "l_suppkey", []string{"supp_nation"})
	j2 := b.HashJoin(custRen, j1, "c_custkey", "o_custkey", []string{"cust_nation"})
	pairSel := j2.Select(plan.CmpCol(j2.Idx("supp_nation"), "!=", j2.Idx("cust_nation")))
	proj := pairSel.Project(
		engine.Keep("supp_nation", pairSel.Idx("supp_nation")),
		engine.Keep("cust_nation", pairSel.Idx("cust_nation")),
		engine.ProjExpr{Name: "l_year", Expr: yearOf(pairSel, "l_shipdate")},
		engine.ProjExpr{Name: "volume", Expr: revenue(pairSel, "l_extendedprice", "l_discount")})
	agg := proj.Agg([]int{0, 1, 2}, engine.Agg(engine.AggSum, 3, "revenue"))
	b.Root(agg.Sort(engine.Asc(0), engine.Asc(1), engine.Asc(2)))
	return b
}

// Q7 runs the volume-shipping query.
func Q7(db *DB, s *core.Session) (*engine.Table, error) { return Query(7).Run(db, s) }

// q8Plan is national market share: BRAZIL's fraction of AMERICA's ECONOMY
// ANODIZED STEEL volume per year, via an indicator CASE expression; the
// final share division is a delivery step in Q8.
func q8Plan(db *DB) *plan.Builder {
	b := plan.New("Q8")
	partSel := b.Scan(db.Part, "p_partkey", "p_type").
		Select(plan.CmpVal(1, "==", "ECONOMY ANODIZED STEEL"))
	li := semiJoin(b, partSel,
		b.Scan(db.Lineitem, "l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice", "l_discount"),
		"p_partkey", "l_partkey")
	ord := b.Scan(db.Orders, "o_orderkey", "o_custkey", "o_orderdate").
		Select(
			plan.CmpVal(2, ">=", int(Date(1995, 1, 1))),
			plan.CmpVal(2, "<=", int(Date(1996, 12, 31))))
	mj := b.MergeJoin(ord, li, "o_orderkey", "l_orderkey",
		[]string{"o_custkey", "o_orderdate"},
		[]string{"l_suppkey", "l_extendedprice", "l_discount"})

	regSel := b.Scan(db.Region, "r_regionkey", "r_name").
		Select(plan.CmpVal(1, "==", "AMERICA"))
	natAm := semiJoin(b, regSel,
		b.Scan(db.Nation, "n_nationkey", "n_regionkey"),
		"r_regionkey", "n_regionkey")
	custAm := semiJoin(b, natAm,
		b.Scan(db.Customer, "c_custkey", "c_nationkey"),
		"n_nationkey", "c_nationkey")
	j1 := semiJoin(b, custAm, mj, "c_custkey", "o_custkey")

	suppNat := b.HashJoin(
		b.Scan(db.Nation, "n_nationkey", "n_name"),
		b.Scan(db.Supplier, "s_suppkey", "s_nationkey"),
		"n_nationkey", "s_nationkey", []string{"n_name"})
	j2 := b.HashJoin(suppNat, j1, "s_suppkey", "l_suppkey", []string{"n_name"})

	vol := revenue(j2, "l_extendedprice", "l_discount")
	proj := j2.Project(
		engine.ProjExpr{Name: "o_year", Expr: yearOf(j2, "o_orderdate")},
		engine.ProjExpr{Name: "volume", Expr: vol},
		engine.ProjExpr{Name: "brazil_volume", Expr: expr.Mul(
			&expr.CaseEqStr{Col: j2.Col("n_name"), Value: "BRAZIL", Then: 1, Else: 0},
			vol)})
	agg := proj.Agg([]int{0},
		engine.Agg(engine.AggSum, 2, "brazil_volume"),
		engine.Agg(engine.AggSum, 1, "total_volume"))
	b.NamedRoot("agg", agg.Sort(engine.Asc(0)))
	return b
}

// Q8 runs the national market-share query.
func Q8(db *DB, s *core.Session) (*engine.Table, error) { return Query(8).Run(db, s) }

// deliverQ8 finishes Q8: the plan delivers per-year brazil/total volumes,
// and the share division happens here.
func deliverQ8(b *plan.Builder, ex *plan.Exec) (*engine.Table, error) {
	aggTab, err := ex.Run(b.MainRoot())
	if err != nil {
		return nil, err
	}
	years := aggTab.Col("o_year").I64()[:aggTab.Rows()]
	br := aggTab.Col("brazil_volume").I64()[:aggTab.Rows()]
	tot := aggTab.Col("total_volume").I64()[:aggTab.Rows()]
	share := make([]float64, aggTab.Rows())
	for i := range share {
		if tot[i] != 0 {
			share[i] = float64(br[i]) / float64(tot[i])
		}
	}
	return engine.NewTable("q8", vector.Schema{
		{Name: "o_year", Type: vector.I64},
		{Name: "mkt_share", Type: vector.F64},
	}, []*vector.Vector{vector.FromI64(years), vector.FromF64(share)}), nil
}
