package tpch

import (
	"fmt"
	"strings"

	"microadapt/internal/engine"
)

// Tables returns the eight base tables in schema order.
func (db *DB) Tables() []*engine.Table {
	return []*engine.Table{
		db.Region, db.Nation, db.Supplier, db.Customer,
		db.Part, db.PartSupp, db.Orders, db.Lineitem,
	}
}

// TableByName resolves a base table by its schema name ("lineitem",
// "orders", ...); the second result is false for unknown names. It is the
// table resolver the plan JSON codec uses to rebuild client-shipped plans
// against this database.
func (db *DB) TableByName(name string) (*engine.Table, bool) {
	for _, t := range db.Tables() {
		if t.Name == name {
			return t, true
		}
	}
	return nil, false
}

// Encode analyzes every base table and makes it resident in compressed
// columnar form: plans then scan through the adaptive decompression
// primitives instead of the flat zero-copy cursor. Encoding is idempotent;
// it returns the database for chaining.
func (db *DB) Encode() *DB {
	for _, t := range db.Tables() {
		engine.EncodeTable(t)
	}
	return db
}

// Encoded reports whether the database is resident in compressed form.
func (db *DB) Encoded() bool { return db.Lineitem.Enc != nil }

// StorageFootprint returns the flat byte size of all base tables and the
// resident size under the current storage form (equal when not encoded).
func (db *DB) StorageFootprint() (flat, resident int) {
	for _, t := range db.Tables() {
		for i, c := range t.Sch {
			flat += t.Cols[i].Len() * c.Type.Width()
		}
		if t.Enc != nil {
			resident += t.Enc.ResidentBytes()
		} else {
			for i, c := range t.Sch {
				resident += t.Cols[i].Len() * c.Type.Width()
			}
		}
	}
	return flat, resident
}

// StorageSummary renders the analyzer's per-column encoding choices for
// every encoded table.
func (db *DB) StorageSummary() string {
	var b strings.Builder
	for _, t := range db.Tables() {
		if t.Enc == nil {
			fmt.Fprintf(&b, "%s: flat (not encoded)\n", t.Name)
			continue
		}
		b.WriteString(t.Enc.Summary())
	}
	return b.String()
}
