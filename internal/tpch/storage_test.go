package tpch

import (
	"strings"
	"sync"
	"testing"

	"microadapt/internal/core"
	"microadapt/internal/hw"
	"microadapt/internal/primitive"
	"microadapt/internal/storage"
)

// encodedTestDB is testDB's twin resident in compressed form. It is a
// separate generation so tests against testDB never see an Enc field
// appear mid-run.
var (
	encodedOnce   sync.Once
	encodedTestDB *DB
)

func encodedDB() *DB {
	encodedOnce.Do(func() {
		encodedTestDB = Generate(0.005, 42).Encode()
	})
	return encodedTestDB
}

// TestEncodeShrinksResidentBytes: the analyzer must find real compression
// in TPC-H — clustered dates, small in-list domains, low-cardinality flags.
func TestEncodeShrinksResidentBytes(t *testing.T) {
	db := encodedDB()
	flat, resident := db.StorageFootprint()
	if resident >= flat {
		t.Fatalf("encoded resident bytes %d >= flat %d", resident, flat)
	}
	if ratio := float64(resident) / float64(flat); ratio > 0.8 {
		t.Errorf("compression ratio %.2f, want <= 0.8:\n%s", ratio, db.StorageSummary())
	}
	// The scenario needs non-flat encodings on the hot scan columns.
	for _, col := range []string{"l_shipdate", "l_quantity", "l_discount"} {
		if enc := db.Lineitem.Enc.Col(col); enc.Encoding() == storage.Flat {
			t.Errorf("lineitem %s stayed flat", col)
		}
	}
}

// TestEncodedMatchesFlat is the acceptance property of compressed storage:
// every TPC-H query must return a bit-identical table on encoded storage
// vs flat, at every pipeline parallelism — under the full flavor set, so
// eager/lazy decompression and operate-on-compressed selection all run.
func TestEncodedMatchesFlat(t *testing.T) {
	queries := Queries()
	if testing.Short() {
		// Scan-heavy partitioned plans plus one join-heavy control.
		queries = []Spec{Query(1), Query(6), Query(12), Query(4)}
	}
	enc := encodedDB()
	for _, q := range queries {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			for _, p := range []int{1, 2, 4} {
				newSess := func() *core.Session {
					return core.NewSession(primitive.NewDictionary(primitive.Everything()), hw.Machine1(),
						core.WithVectorSize(128), core.WithSeed(7), core.WithParallelism(p))
				}
				flatTab, err := q.Run(testDB, newSess())
				if err != nil {
					t.Fatalf("%s flat P=%d: %v", q.Name, p, err)
				}
				s := newSess()
				encTab, err := q.Run(enc, s)
				if err != nil {
					t.Fatalf("%s encoded P=%d: %v", q.Name, p, err)
				}
				if got, want := tableFingerprint(encTab), tableFingerprint(flatTab); got != want {
					t.Errorf("%s: encoded result differs from flat at P=%d", q.Name, p)
				}
				if p == 1 && scanHeavy(q.ID) {
					assertDecompressInstances(t, s, q.Name)
				}
			}
		})
	}
}

// scanHeavy marks queries whose plans scan encoded lineitem columns
// directly (a decompression instance must exist).
func scanHeavy(id int) bool {
	switch id {
	case 1, 6, 12, 14:
		return true
	}
	return false
}

func assertDecompressInstances(t *testing.T, s *core.Session, name string) {
	t.Helper()
	found := false
	for _, inst := range s.AllInstances() {
		if strings.HasPrefix(inst.Prim.Sig, "scan_decompress_") || strings.HasPrefix(inst.Prim.Sig, "selenc_") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("%s on encoded storage created no decompression instances", name)
	}
}

// TestEncodedExplainAnnotates: explain over an encoded database marks the
// scans and the pushed-down conjuncts.
func TestEncodedExplainAnnotates(t *testing.T) {
	out := Explain(encodedDB(), 6, 4)
	if !strings.Contains(out, "[encoded]") {
		t.Errorf("explain lacks [encoded] scan tag:\n%s", out)
	}
	if !strings.Contains(out, "EncodedRangeScan[morsel]") {
		t.Errorf("explain lacks EncodedRangeScan line:\n%s", out)
	}
	if !strings.Contains(out, "pushdown=") {
		t.Errorf("explain lacks pushdown annotation:\n%s", out)
	}
	// The flat database must render exactly as before (golden tests guard
	// the full output; this is the targeted negative).
	if strings.Contains(Explain(testDB, 6, 4), "[encoded]") {
		t.Error("flat explain gained an [encoded] tag")
	}
}
