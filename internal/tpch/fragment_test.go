package tpch

import (
	"testing"

	"microadapt/internal/plan"
)

// TestFragmentJSONRoundTrip is the distribution codec property test over
// the full query corpus: every TPC-H plan's fragment sites must marshal
// -> unmarshal -> re-marshal canonically, and the wire form must carry
// the original plan's node labels — the invariant that makes shard-side
// flavor knowledge land under single-process cache keys.
func TestFragmentJSONRoundTrip(t *testing.T) {
	for _, q := range Queries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			b := q.Plan(testDB)
			sites := plan.FragmentSites(b)
			if len(sites) == 0 {
				t.Fatalf("%s: no fragment sites — every query scans at least one base table", q.Name)
			}
			for _, site := range sites {
				data, err := plan.MarshalPlan(site.Fragment)
				if err != nil {
					t.Fatalf("marshal fragment over %s: %v", site.Table, err)
				}
				rebuilt, err := plan.UnmarshalPlan(data, resolveTest)
				if err != nil {
					t.Fatalf("unmarshal fragment over %s: %v", site.Table, err)
				}
				orig, dec := site.Fragment.Nodes(), rebuilt.Nodes()
				if len(orig) != len(dec) {
					t.Fatalf("fragment over %s: %d nodes decoded as %d", site.Table, len(orig), len(dec))
				}
				for i := range orig {
					if orig[i].Label() != dec[i].Label() {
						t.Errorf("fragment over %s node %d: label %q decoded as %q",
							site.Table, i, orig[i].Label(), dec[i].Label())
					}
				}
				// The frontier node's label must be the original plan
				// position, not a fragment-local derivation.
				if got, want := orig[len(orig)-1].Label(), site.Node.Label(); got != want {
					t.Errorf("fragment over %s: frontier label %q, want original %q", site.Table, got, want)
				}
				again, err := plan.MarshalPlan(rebuilt)
				if err != nil {
					t.Fatalf("re-marshal fragment over %s: %v", site.Table, err)
				}
				if string(again) != string(data) {
					t.Errorf("fragment over %s: re-marshal not canonical", site.Table)
				}
			}
		})
	}
}
