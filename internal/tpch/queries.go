package tpch

import (
	"fmt"

	"microadapt/internal/core"
	"microadapt/internal/engine"
	"microadapt/internal/expr"
	"microadapt/internal/primitive"
	"microadapt/internal/vector"
)

// Spec describes one TPC-H query: its number and a runner that builds the
// physical plan(s), executes them through the session's adaptive primitive
// instances, and returns the result table.
type Spec struct {
	ID   int
	Name string
	Run  func(db *DB, s *core.Session) (*engine.Table, error)
}

// Queries returns all 22 TPC-H queries in order.
func Queries() []Spec {
	return []Spec{
		{1, "Q01", Q1}, {2, "Q02", Q2}, {3, "Q03", Q3}, {4, "Q04", Q4},
		{5, "Q05", Q5}, {6, "Q06", Q6}, {7, "Q07", Q7}, {8, "Q08", Q8},
		{9, "Q09", Q9}, {10, "Q10", Q10}, {11, "Q11", Q11}, {12, "Q12", Q12},
		{13, "Q13", Q13}, {14, "Q14", Q14}, {15, "Q15", Q15}, {16, "Q16", Q16},
		{17, "Q17", Q17}, {18, "Q18", Q18}, {19, "Q19", Q19}, {20, "Q20", Q20},
		{21, "Q21", Q21}, {22, "Q22", Q22},
	}
}

// Query returns the spec of query n (1-22).
func Query(n int) Spec {
	qs := Queries()
	if n < 1 || n > len(qs) {
		panic(fmt.Sprintf("tpch: no query %d", n))
	}
	return qs[n-1]
}

// partitioned builds the scan-heavy prefix of a plan over table t: a
// FragmentBuilder expressing the scan+select(+project) stack runs either
// once with the coordinator session (serial, the default) or per morsel on
// fragment sessions merged by an exchange, following the session's pipeline
// parallelism. Fragments preserve row order, so downstream operators —
// order-sensitive merge joins and first-seen group numbering included —
// see exactly the serial plan's stream.
func partitioned(s *core.Session, t *engine.Table, build engine.FragmentBuilder) (engine.Operator, error) {
	return engine.ParallelPipeline(s, t.Rows(), build)
}

// idx resolves a column name in an operator's schema.
func idx(op engine.Operator, name string) int { return op.Schema().MustIndexOf(name) }

// col builds a column-reference expression by name.
func col(op engine.Operator, name string) expr.Node { return &expr.Col{Idx: idx(op, name)} }

// revenue builds l_extendedprice * (100 - l_discount) / 100 over int64
// cents, the expression at the heart of most TPC-H aggregates.
func revenue(op engine.Operator, priceCol, discCol string) expr.Node {
	return expr.Div(
		expr.Mul(col(op, priceCol), expr.Sub(&expr.ConstI64{V: 100}, col(op, discCol))),
		&expr.ConstI64{V: 100})
}

// yearOf builds year(dateCol) as an expression.
func yearOf(op engine.Operator, dateCol string) expr.Node {
	return &expr.MapI64{Child: expr.ToI64(col(op, dateCol)), Fn: YearOf}
}

// packKey builds partkey*1_000_000 + suppkey, the composite-key packing
// used for partsupp joins (Q9, Q20).
func packKey(op engine.Operator, partCol, suppCol string) expr.Node {
	return expr.Add(
		expr.Mul(expr.ToI64(col(op, partCol)), &expr.ConstI64{V: 1_000_000}),
		expr.ToI64(col(op, suppCol)))
}

// scalarI64 reads row 0 of a named column as int64.
func scalarI64(t *engine.Table, name string) int64 { return t.Col(name).GetI64(0) }

// scalarF64 reads row 0 of a named column as float64.
func scalarF64(t *engine.Table, name string) float64 { return t.Col(name).GetF64(0) }

// run materializes an operator tree.
func run(op engine.Operator) (*engine.Table, error) { return engine.Materialize(op) }

// singleRow builds a one-row result table (for scalar-result queries).
func singleRow(name string, cols []vector.Col, vals ...any) *engine.Table {
	vecs := make([]*vector.Vector, len(cols))
	for i, c := range cols {
		switch c.Type {
		case vector.I64:
			vecs[i] = vector.FromI64([]int64{vals[i].(int64)})
		case vector.F64:
			vecs[i] = vector.FromF64([]float64{vals[i].(float64)})
		case vector.Str:
			vecs[i] = vector.FromStr([]string{vals[i].(string)})
		default:
			panic("tpch.singleRow: unsupported type")
		}
	}
	return engine.NewTable(name, cols, vecs)
}

// semiJoin is shorthand for a semi hash join probe⋉build.
func semiJoin(s *core.Session, build, probe engine.Operator, label, buildKey, probeKey string) *engine.HashJoin {
	return engine.NewHashJoin(s, build, probe, label, buildKey, probeKey, nil, engine.WithKind(engine.SemiJoin))
}

// nationFilteredSuppliers returns suppliers from the named nation
// (semi-joined), a pattern several queries share.
func nationFilteredSuppliers(db *DB, s *core.Session, label, nationName string) engine.Operator {
	natScan := engine.NewScan(s, db.Nation, "n_nationkey", "n_name")
	natSel := engine.NewSelect(s, natScan, label+"/nation", engine.CmpVal(1, "==", nationName))
	supp := engine.NewScan(s, db.Supplier, "s_suppkey", "s_name", "s_nationkey")
	return semiJoin(s, natSel, supp, label+"/suppnat", "n_nationkey", "s_nationkey")
}

// widenGroupKey is a no-op marker documenting that aggregate group columns
// come out widened to I64; joins against them widen the other side too.
var _ = primitive.WidenToI64
