package tpch

import (
	"fmt"

	"microadapt/internal/core"
	"microadapt/internal/engine"
	"microadapt/internal/expr"
	"microadapt/internal/plan"
	"microadapt/internal/vector"
)

// Spec describes one TPC-H query: its number, the declarative plan builder
// (the logical DAG the physical planner lowers, partitions and labels),
// and — for the handful of queries with a scalar delivery step (Q8, Q13,
// Q14, Q17, Q19) — the small Go assembly of the final result table.
type Spec struct {
	ID   int
	Name string
	// Plan builds the query's logical plan DAG over db. Every operator the
	// query runs is declared here; partitionability and instance labels are
	// derived from this structure by the planner, never hand-maintained.
	Plan func(db *DB) *plan.Builder
	// Deliver assembles the final result from the bound plan's roots for
	// queries with a post-plan delivery step; nil means "materialize the
	// main root".
	Deliver func(b *plan.Builder, ex *plan.Exec) (*engine.Table, error)
}

// Run executes the query over db on session s and returns its result table.
func (sp Spec) Run(db *DB, s *core.Session) (*engine.Table, error) {
	b := sp.Plan(db)
	return sp.Finish(b, b.Bind(s))
}

// Finish completes execution of an already-bound plan: the delivery step
// when the query has one, otherwise materializing the main root. The
// distributed coordinator routes through this after presetting fragment
// results into ex, so delivery-step queries work unchanged over shards.
func (sp Spec) Finish(b *plan.Builder, ex *plan.Exec) (*engine.Table, error) {
	if sp.Deliver != nil {
		return sp.Deliver(b, ex)
	}
	return ex.Run(b.MainRoot())
}

// Queries returns all 22 TPC-H queries in order.
func Queries() []Spec {
	return []Spec{
		{1, "Q01", q1Plan, nil}, {2, "Q02", q2Plan, nil}, {3, "Q03", q3Plan, nil}, {4, "Q04", q4Plan, nil},
		{5, "Q05", q5Plan, nil}, {6, "Q06", q6Plan, nil}, {7, "Q07", q7Plan, nil}, {8, "Q08", q8Plan, deliverQ8},
		{9, "Q09", q9Plan, nil}, {10, "Q10", q10Plan, nil}, {11, "Q11", q11Plan, nil}, {12, "Q12", q12Plan, nil},
		{13, "Q13", q13Plan, deliverQ13}, {14, "Q14", q14Plan, deliverQ14}, {15, "Q15", q15Plan, nil}, {16, "Q16", q16Plan, nil},
		{17, "Q17", q17Plan, deliverQ17}, {18, "Q18", q18Plan, nil}, {19, "Q19", q19Plan, deliverQ19}, {20, "Q20", q20Plan, nil},
		{21, "Q21", q21Plan, nil}, {22, "Q22", q22Plan, nil},
	}
}

// Query returns the spec of query n (1-22).
func Query(n int) Spec {
	qs := Queries()
	if n < 1 || n > len(qs) {
		panic(fmt.Sprintf("tpch: no query %d", n))
	}
	return qs[n-1]
}

// Explain renders query n's logical plan and its physical lowering at the
// given pipeline parallelism, partition annotations included.
func Explain(db *DB, n int, parallelism int) string {
	if parallelism < 1 {
		parallelism = 1
	}
	return Query(n).Plan(db).Explain(parallelism)
}

// revenue builds l_extendedprice * (100 - l_discount) / 100 over int64
// cents, the expression at the heart of most TPC-H aggregates.
func revenue(n *plan.Node, priceCol, discCol string) expr.Node {
	return expr.Div(
		expr.Mul(n.Col(priceCol), expr.Sub(&expr.ConstI64{V: 100}, n.Col(discCol))),
		&expr.ConstI64{V: 100})
}

// yearOf builds year(dateCol) as an expression. The function carries its
// registry name so the node survives plan JSON serialization.
func yearOf(n *plan.Node, dateCol string) expr.Node {
	return &expr.MapI64{Child: expr.ToI64(n.Col(dateCol)), Fn: YearOf, Name: "tpch.year_of"}
}

// The plan JSON codec rebuilds MapI64 nodes from this registration.
func init() { plan.RegisterMapI64("tpch.year_of", YearOf) }

// packKey builds partkey*1_000_000 + suppkey, the composite-key packing
// used for partsupp joins (Q9, Q20).
func packKey(n *plan.Node, partCol, suppCol string) expr.Node {
	return expr.Add(
		expr.Mul(expr.ToI64(n.Col(partCol)), &expr.ConstI64{V: 1_000_000}),
		expr.ToI64(n.Col(suppCol)))
}

// scalarI64 reads row 0 of a named column as int64.
func scalarI64(t *engine.Table, name string) int64 { return t.Col(name).GetI64(0) }

// singleRow builds a one-row result table (for scalar-result queries).
func singleRow(name string, cols []vector.Col, vals ...any) *engine.Table {
	vecs := make([]*vector.Vector, len(cols))
	for i, c := range cols {
		switch c.Type {
		case vector.I64:
			vecs[i] = vector.FromI64([]int64{vals[i].(int64)})
		case vector.F64:
			vecs[i] = vector.FromF64([]float64{vals[i].(float64)})
		case vector.Str:
			vecs[i] = vector.FromStr([]string{vals[i].(string)})
		default:
			panic("tpch.singleRow: unsupported type")
		}
	}
	return engine.NewTable(name, cols, vecs)
}

// semiJoin is shorthand for a semi hash join probe⋉build.
func semiJoin(b *plan.Builder, build, probe *plan.Node, buildKey, probeKey string) *plan.Node {
	return b.SemiJoin(build, probe, buildKey, probeKey)
}

// nationFilteredSuppliers returns suppliers from the named nation
// (semi-joined), a pattern several queries share.
func nationFilteredSuppliers(b *plan.Builder, db *DB, nationName string) *plan.Node {
	natSel := b.Scan(db.Nation, "n_nationkey", "n_name").
		Select(plan.CmpVal(1, "==", nationName))
	supp := b.Scan(db.Supplier, "s_suppkey", "s_name", "s_nationkey")
	return semiJoin(b, natSel, supp, "n_nationkey", "s_nationkey")
}
