package tpch

import (
	"fmt"
	"math/rand"

	"microadapt/internal/engine"
	"microadapt/internal/vector"
)

// DB holds the eight generated TPC-H tables.
type DB struct {
	SF       float64
	Region   *engine.Table
	Nation   *engine.Table
	Supplier *engine.Table
	Customer *engine.Table
	Part     *engine.Table
	PartSupp *engine.Table
	Orders   *engine.Table
	Lineitem *engine.Table
}

var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// nationDefs is the fixed TPC-H nation list: name and region key.
var nationDefs = []struct {
	name   string
	region int32
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
	{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
var shipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
var typeSyl1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
var typeSyl2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
var typeSyl3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
var containerSyl1 = []string{"SM", "MED", "LG", "JUMBO", "WRAP"}
var containerSyl2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}
var colors = []string{
	"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
	"blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
	"chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
	"dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
	"frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
	"hot", "hunter", "indian", "ivory", "khaki", "lace", "lavender", "lawn",
	"lemon", "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
	"midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange",
	"orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder",
	"puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
	"sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring",
	"steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow",
}
var commentWords = []string{
	"carefully", "quickly", "furiously", "slyly", "blithely", "deposits",
	"requests", "accounts", "packages", "foxes", "pearls", "instructions",
	"theodolites", "platelets", "pinto", "beans", "ideas", "dependencies",
	"excuses", "waters", "sleep", "nag", "haggle", "bold", "final", "express",
	"silent", "regular", "unusual", "even", "special", "pending", "ironic",
}

const (
	startDate = 0 // 1992-01-01
)

// Generate builds a deterministic TPC-H database at the given scale
// factor. Orders (and hence lineitem) are clustered on o_orderdate — the
// data locality that produces the border-region phases of Figures 2 and
// 4(c)/(d) in the paper.
func Generate(sf float64, seed int64) *DB {
	db := &DB{SF: sf}
	nSupp := scaleCount(10_000, sf, 10)
	nCust := scaleCount(150_000, sf, 30)
	nPart := scaleCount(200_000, sf, 40)
	nOrders := scaleCount(1_500_000, sf, 150)

	db.genRegion()
	db.genNation()
	db.genSupplier(nSupp, seed+1)
	db.genCustomer(nCust, seed+2)
	prices := db.genPart(nPart, seed+3)
	db.genPartSupp(nPart, nSupp, seed+4)
	db.genOrdersLineitem(nOrders, nCust, nPart, nSupp, prices, seed+5)
	return db
}

func scaleCount(base int, sf float64, min int) int {
	n := int(float64(base) * sf)
	if n < min {
		n = min
	}
	return n
}

func words(rng *rand.Rand, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += commentWords[rng.Intn(len(commentWords))]
	}
	return out
}

func (db *DB) genRegion() {
	keys := make([]int32, 5)
	names := make([]string, 5)
	for i := 0; i < 5; i++ {
		keys[i] = int32(i)
		names[i] = regionNames[i]
	}
	db.Region = engine.NewTable("region",
		vector.Schema{{Name: "r_regionkey", Type: vector.I32}, {Name: "r_name", Type: vector.Str}},
		[]*vector.Vector{vector.FromI32(keys), vector.FromStr(names)})
}

func (db *DB) genNation() {
	n := len(nationDefs)
	keys := make([]int32, n)
	names := make([]string, n)
	regions := make([]int32, n)
	for i, def := range nationDefs {
		keys[i] = int32(i)
		names[i] = def.name
		regions[i] = def.region
	}
	db.Nation = engine.NewTable("nation",
		vector.Schema{
			{Name: "n_nationkey", Type: vector.I32},
			{Name: "n_name", Type: vector.Str},
			{Name: "n_regionkey", Type: vector.I32},
		},
		[]*vector.Vector{vector.FromI32(keys), vector.FromStr(names), vector.FromI32(regions)})
}

func (db *DB) genSupplier(n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int32, n)
	names := make([]string, n)
	nations := make([]int32, n)
	acct := make([]float64, n)
	phones := make([]string, n)
	comments := make([]string, n)
	for i := 0; i < n; i++ {
		keys[i] = int32(i + 1)
		names[i] = fmt.Sprintf("Supplier#%09d", i+1)
		nations[i] = int32(rng.Intn(25))
		acct[i] = float64(rng.Intn(1_100_000)-100_000) / 100
		phones[i] = fmt.Sprintf("%d-%03d-%03d-%04d", 10+nations[i], rng.Intn(1000), rng.Intn(1000), rng.Intn(10000))
		c := words(rng, 6)
		// ~0.5% of suppliers have complaint comments (Q16's anti filter).
		if rng.Intn(200) == 0 {
			c = "take Customer slow Complaints " + c
		}
		comments[i] = c
	}
	db.Supplier = engine.NewTable("supplier",
		vector.Schema{
			{Name: "s_suppkey", Type: vector.I32},
			{Name: "s_name", Type: vector.Str},
			{Name: "s_nationkey", Type: vector.I32},
			{Name: "s_acctbal", Type: vector.F64},
			{Name: "s_phone", Type: vector.Str},
			{Name: "s_comment", Type: vector.Str},
		},
		[]*vector.Vector{
			vector.FromI32(keys), vector.FromStr(names), vector.FromI32(nations),
			vector.FromF64(acct), vector.FromStr(phones), vector.FromStr(comments),
		})
}

func (db *DB) genCustomer(n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int32, n)
	names := make([]string, n)
	nations := make([]int32, n)
	acct := make([]float64, n)
	segs := make([]string, n)
	phones := make([]string, n)
	comments := make([]string, n)
	for i := 0; i < n; i++ {
		keys[i] = int32(i + 1)
		names[i] = fmt.Sprintf("Customer#%09d", i+1)
		nations[i] = int32(rng.Intn(25))
		acct[i] = float64(rng.Intn(1_100_000)-100_000) / 100
		segs[i] = segments[rng.Intn(len(segments))]
		phones[i] = fmt.Sprintf("%d-%03d-%03d-%04d", 10+nations[i], rng.Intn(1000), rng.Intn(1000), rng.Intn(10000))
		comments[i] = words(rng, 8)
	}
	db.Customer = engine.NewTable("customer",
		vector.Schema{
			{Name: "c_custkey", Type: vector.I32},
			{Name: "c_name", Type: vector.Str},
			{Name: "c_nationkey", Type: vector.I32},
			{Name: "c_acctbal", Type: vector.F64},
			{Name: "c_mktsegment", Type: vector.Str},
			{Name: "c_phone", Type: vector.Str},
			{Name: "c_comment", Type: vector.Str},
		},
		[]*vector.Vector{
			vector.FromI32(keys), vector.FromStr(names), vector.FromI32(nations),
			vector.FromF64(acct), vector.FromStr(segs), vector.FromStr(phones),
			vector.FromStr(comments),
		})
}

// genPart returns the retail price array (cents) for lineitem pricing.
func (db *DB) genPart(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int32, n)
	names := make([]string, n)
	mfgrs := make([]string, n)
	brands := make([]string, n)
	types := make([]string, n)
	sizes := make([]int32, n)
	containers := make([]string, n)
	prices := make([]int64, n)
	for i := 0; i < n; i++ {
		keys[i] = int32(i + 1)
		names[i] = colors[rng.Intn(len(colors))] + " " + colors[rng.Intn(len(colors))]
		m := rng.Intn(5) + 1
		mfgrs[i] = fmt.Sprintf("Manufacturer#%d", m)
		brands[i] = fmt.Sprintf("Brand#%d%d", m, rng.Intn(5)+1)
		types[i] = typeSyl1[rng.Intn(len(typeSyl1))] + " " +
			typeSyl2[rng.Intn(len(typeSyl2))] + " " + typeSyl3[rng.Intn(len(typeSyl3))]
		sizes[i] = int32(rng.Intn(50) + 1)
		containers[i] = containerSyl1[rng.Intn(len(containerSyl1))] + " " +
			containerSyl2[rng.Intn(len(containerSyl2))]
		prices[i] = int64(90_000 + (i%2000)*10 + rng.Intn(1000)) // ~900-1100 dollars in cents
	}
	db.Part = engine.NewTable("part",
		vector.Schema{
			{Name: "p_partkey", Type: vector.I32},
			{Name: "p_name", Type: vector.Str},
			{Name: "p_mfgr", Type: vector.Str},
			{Name: "p_brand", Type: vector.Str},
			{Name: "p_type", Type: vector.Str},
			{Name: "p_size", Type: vector.I32},
			{Name: "p_container", Type: vector.Str},
			{Name: "p_retailprice", Type: vector.I64},
		},
		[]*vector.Vector{
			vector.FromI32(keys), vector.FromStr(names), vector.FromStr(mfgrs),
			vector.FromStr(brands), vector.FromStr(types), vector.FromI32(sizes),
			vector.FromStr(containers), vector.FromI64(prices),
		})
	return prices
}

// suppForPart returns the s-th (0..3) supplier of a part, the TPC-H
// formula that makes lineitem (partkey, suppkey) pairs exist in partsupp.
func suppForPart(partkey, s, nSupp int) int32 {
	return int32((partkey+s*(nSupp/4+(partkey-1)/nSupp))%nSupp + 1)
}

func (db *DB) genPartSupp(nPart, nSupp int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	n := nPart * 4
	partkeys := make([]int32, 0, n)
	suppkeys := make([]int32, 0, n)
	avail := make([]int32, 0, n)
	cost := make([]int64, 0, n)
	comments := make([]string, 0, n)
	for p := 1; p <= nPart; p++ {
		for s := 0; s < 4; s++ {
			partkeys = append(partkeys, int32(p))
			suppkeys = append(suppkeys, suppForPart(p, s, nSupp))
			avail = append(avail, int32(rng.Intn(9999)+1))
			cost = append(cost, int64(rng.Intn(99_901)+100)) // 1.00-1000.00 dollars in cents
			comments = append(comments, words(rng, 5))
		}
	}
	db.PartSupp = engine.NewTable("partsupp",
		vector.Schema{
			{Name: "ps_partkey", Type: vector.I32},
			{Name: "ps_suppkey", Type: vector.I32},
			{Name: "ps_availqty", Type: vector.I32},
			{Name: "ps_supplycost", Type: vector.I64},
			{Name: "ps_comment", Type: vector.Str},
		},
		[]*vector.Vector{
			vector.FromI32(partkeys), vector.FromI32(suppkeys), vector.FromI32(avail),
			vector.FromI64(cost), vector.FromStr(comments),
		})
}

func (db *DB) genOrdersLineitem(nOrders, nCust, nPart, nSupp int, prices []int64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	endDay := Date(1998, 8, 2)
	span := int(endDay) - startDate

	oKey := make([]int32, nOrders)
	oCust := make([]int32, nOrders)
	oStatus := make([]string, nOrders)
	oTotal := make([]int64, nOrders)
	oDate := make([]int32, nOrders)
	oPrio := make([]string, nOrders)
	oShipPrio := make([]int32, nOrders)
	oComment := make([]string, nOrders)

	var lOrder, lPart, lSupp, lLineNum, lQty []int32
	var lPrice, lDisc, lTax []int64
	var lRetFlag, lLineStatus []string
	var lShip, lCommit, lReceipt []int32
	var lInstruct, lMode, lComment []string

	cutoff := Date(1995, 6, 17)
	for o := 0; o < nOrders; o++ {
		oKey[o] = int32(o + 1)
		oCust[o] = int32(rng.Intn(nCust) + 1)
		// Clustered order dates: monotone with small jitter.
		d := startDate + o*span/nOrders + rng.Intn(31) - 15
		if d < startDate {
			d = startDate
		}
		if d > int(endDay) {
			d = int(endDay)
		}
		oDate[o] = int32(d)
		oPrio[o] = priorities[rng.Intn(len(priorities))]
		oShipPrio[o] = 0
		c := words(rng, 6)
		if rng.Intn(50) == 0 {
			c = "special wishes requests " + c
		}
		oComment[o] = c

		lines := rng.Intn(7) + 1
		var total int64
		allF := true
		for ln := 0; ln < lines; ln++ {
			pk := rng.Intn(nPart) + 1
			qty := rng.Intn(50) + 1
			ship := int32(d + rng.Intn(121) + 1)
			commit := int32(d + rng.Intn(61) + 30)
			receipt := ship + int32(rng.Intn(30)+1)
			price := int64(qty) * prices[pk-1]
			lOrder = append(lOrder, int32(o+1))
			lPart = append(lPart, int32(pk))
			lSupp = append(lSupp, suppForPart(pk, rng.Intn(4), nSupp))
			lLineNum = append(lLineNum, int32(ln+1))
			lQty = append(lQty, int32(qty))
			lPrice = append(lPrice, price)
			lDisc = append(lDisc, int64(rng.Intn(11)))
			lTax = append(lTax, int64(rng.Intn(9)))
			if receipt <= cutoff {
				if rng.Intn(2) == 0 {
					lRetFlag = append(lRetFlag, "R")
				} else {
					lRetFlag = append(lRetFlag, "A")
				}
			} else {
				lRetFlag = append(lRetFlag, "N")
			}
			if ship <= cutoff {
				lLineStatus = append(lLineStatus, "F")
			} else {
				lLineStatus = append(lLineStatus, "O")
				allF = false
			}
			lShip = append(lShip, ship)
			lCommit = append(lCommit, commit)
			lReceipt = append(lReceipt, receipt)
			lInstruct = append(lInstruct, shipInstructs[rng.Intn(len(shipInstructs))])
			lMode = append(lMode, shipModes[rng.Intn(len(shipModes))])
			lComment = append(lComment, words(rng, 4))
			total += price
		}
		oTotal[o] = total
		if allF {
			oStatus[o] = "F"
		} else {
			oStatus[o] = "O"
		}
	}

	db.Orders = engine.NewTable("orders",
		vector.Schema{
			{Name: "o_orderkey", Type: vector.I32},
			{Name: "o_custkey", Type: vector.I32},
			{Name: "o_orderstatus", Type: vector.Str},
			{Name: "o_totalprice", Type: vector.I64},
			{Name: "o_orderdate", Type: vector.I32},
			{Name: "o_orderpriority", Type: vector.Str},
			{Name: "o_shippriority", Type: vector.I32},
			{Name: "o_comment", Type: vector.Str},
		},
		[]*vector.Vector{
			vector.FromI32(oKey), vector.FromI32(oCust), vector.FromStr(oStatus),
			vector.FromI64(oTotal), vector.FromI32(oDate), vector.FromStr(oPrio),
			vector.FromI32(oShipPrio), vector.FromStr(oComment),
		})

	db.Lineitem = engine.NewTable("lineitem",
		vector.Schema{
			{Name: "l_orderkey", Type: vector.I32},
			{Name: "l_partkey", Type: vector.I32},
			{Name: "l_suppkey", Type: vector.I32},
			{Name: "l_linenumber", Type: vector.I32},
			{Name: "l_quantity", Type: vector.I32},
			{Name: "l_extendedprice", Type: vector.I64},
			{Name: "l_discount", Type: vector.I64},
			{Name: "l_tax", Type: vector.I64},
			{Name: "l_returnflag", Type: vector.Str},
			{Name: "l_linestatus", Type: vector.Str},
			{Name: "l_shipdate", Type: vector.I32},
			{Name: "l_commitdate", Type: vector.I32},
			{Name: "l_receiptdate", Type: vector.I32},
			{Name: "l_shipinstruct", Type: vector.Str},
			{Name: "l_shipmode", Type: vector.Str},
			{Name: "l_comment", Type: vector.Str},
		},
		[]*vector.Vector{
			vector.FromI32(lOrder), vector.FromI32(lPart), vector.FromI32(lSupp),
			vector.FromI32(lLineNum), vector.FromI32(lQty), vector.FromI64(lPrice),
			vector.FromI64(lDisc), vector.FromI64(lTax), vector.FromStr(lRetFlag),
			vector.FromStr(lLineStatus), vector.FromI32(lShip), vector.FromI32(lCommit),
			vector.FromI32(lReceipt), vector.FromStr(lInstruct), vector.FromStr(lMode),
			vector.FromStr(lComment),
		})
}
