package tpch

import (
	"microadapt/internal/core"
	"microadapt/internal/engine"
	"microadapt/internal/expr"
	"microadapt/internal/vector"
)

// Q17 is small-quantity-order revenue: lineitems below 20% of their part's
// average quantity, for one brand/container.
func Q17(db *DB, s *core.Session) (*engine.Table, error) {
	partSel := engine.NewSelect(s,
		engine.NewScan(s, db.Part, "p_partkey", "p_brand", "p_container"),
		"Q17/part",
		engine.CmpVal(1, "==", "Brand#23"),
		engine.CmpVal(2, "==", "MED BOX"))
	li := semiJoin(s, partSel,
		engine.NewScan(s, db.Lineitem, "l_partkey", "l_quantity", "l_extendedprice"),
		"Q17/j_part", "p_partkey", "l_partkey")
	liTab, err := run(li)
	if err != nil {
		return nil, err
	}
	avgAgg := engine.NewHashAgg(s, engine.NewScan(s, liTab), "Q17/avg", []int{0},
		engine.Agg(engine.AggAvg, 1, "avg_qty"))
	avgTab, err := run(avgAgg)
	if err != nil {
		return nil, err
	}
	j := engine.NewHashJoin(s, engine.NewScan(s, avgTab), engine.NewScan(s, liTab),
		"Q17/j_back", "l_partkey", "l_partkey", []string{"avg_qty"})
	proj := engine.NewProject(s, j, "Q17/proj",
		engine.Keep("l_extendedprice", idx(j, "l_extendedprice")),
		engine.ProjExpr{Name: "qty_f", Expr: expr.CastF64(col(j, "l_quantity"))},
		engine.ProjExpr{Name: "limit_f", Expr: expr.Mul(col(j, "avg_qty"), &expr.ConstF64{V: 0.2})})
	sel := engine.NewSelect(s, proj, "Q17/sel", engine.CmpCol(1, "<", 2))
	sumAgg, err := run(engine.NewHashAgg(s, sel, "Q17/sum", nil,
		engine.Agg(engine.AggSum, 0, "sum_price")))
	if err != nil {
		return nil, err
	}
	yearly := float64(scalarI64(sumAgg, "sum_price")) / 7.0
	return singleRow("q17", vector.Schema{{Name: "avg_yearly", Type: vector.F64}}, yearly), nil
}

// Q18 is large-volume customers: orders whose total quantity exceeds 300.
func Q18(db *DB, s *core.Session) (*engine.Table, error) {
	perOrder := engine.NewHashAgg(s,
		engine.NewScan(s, db.Lineitem, "l_orderkey", "l_quantity"),
		"Q18/perorder", []int{0},
		engine.Agg(engine.AggSum, 1, "sum_qty"))
	big := engine.NewSelect(s, perOrder, "Q18/big", engine.CmpVal(1, ">", 300))
	j := engine.NewHashJoin(s, big,
		engine.NewScan(s, db.Orders, "o_orderkey", "o_custkey", "o_totalprice", "o_orderdate"),
		"Q18/j_ord", "l_orderkey", "o_orderkey", []string{"sum_qty"})
	j2 := engine.NewHashJoin(s,
		engine.NewScan(s, db.Customer, "c_custkey", "c_name"),
		j, "Q18/j_cust", "c_custkey", "o_custkey", []string{"c_name"})
	sorted := engine.NewTopN(s, j2, 100,
		engine.Desc(idx(j2, "o_totalprice")), engine.Asc(idx(j2, "o_orderdate")))
	return run(sorted)
}

// q19Branch computes one disjunct of Q19 (the branches are disjoint by
// brand, so their revenues add).
func q19Branch(db *DB, s *core.Session, label, brand string, containers []string, qtyLo, qtyHi, sizeHi int) (int64, error) {
	li := engine.NewSelect(s,
		engine.NewScan(s, db.Lineitem,
			"l_partkey", "l_quantity", "l_extendedprice", "l_discount", "l_shipinstruct", "l_shipmode"),
		label+"/li",
		engine.InStr(5, "AIR", "REG AIR"),
		engine.CmpVal(4, "==", "DELIVER IN PERSON"),
		engine.CmpVal(1, ">=", qtyLo),
		engine.CmpVal(1, "<=", qtyHi))
	part := engine.NewSelect(s,
		engine.NewScan(s, db.Part, "p_partkey", "p_brand", "p_container", "p_size"),
		label+"/part",
		engine.CmpVal(1, "==", brand),
		engine.InStr(2, containers...),
		engine.CmpVal(3, ">=", 1),
		engine.CmpVal(3, "<=", sizeHi))
	j := semiJoin(s, part, li, label+"/j", "p_partkey", "l_partkey")
	proj := engine.NewProject(s, j, label+"/proj",
		engine.ProjExpr{Name: "rev", Expr: revenue(j, "l_extendedprice", "l_discount")})
	agg, err := run(engine.NewHashAgg(s, proj, label+"/agg", nil,
		engine.Agg(engine.AggSum, 0, "revenue")))
	if err != nil {
		return 0, err
	}
	return scalarI64(agg, "revenue"), nil
}

// Q19 is discounted revenue over three brand/container/quantity disjuncts.
func Q19(db *DB, s *core.Session) (*engine.Table, error) {
	r1, err := q19Branch(db, s, "Q19/b1", "Brand#12",
		[]string{"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 1, 11, 5)
	if err != nil {
		return nil, err
	}
	r2, err := q19Branch(db, s, "Q19/b2", "Brand#23",
		[]string{"MED BAG", "MED BOX", "MED PKG", "MED PACK"}, 10, 20, 10)
	if err != nil {
		return nil, err
	}
	r3, err := q19Branch(db, s, "Q19/b3", "Brand#34",
		[]string{"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 20, 30, 15)
	if err != nil {
		return nil, err
	}
	return singleRow("q19", vector.Schema{{Name: "revenue", Type: vector.I64}}, r1+r2+r3), nil
}

// Q20 is potential part promotion: suppliers of forest% parts whose
// availability exceeds half of the year's shipped quantity.
func Q20(db *DB, s *core.Session) (*engine.Table, error) {
	partForest := engine.NewSelect(s,
		engine.NewScan(s, db.Part, "p_partkey", "p_name"),
		"Q20/part", engine.Like(1, "forest%"))
	partTab, err := run(partForest)
	if err != nil {
		return nil, err
	}

	li := engine.NewSelect(s,
		engine.NewScan(s, db.Lineitem, "l_partkey", "l_suppkey", "l_quantity", "l_shipdate"),
		"Q20/li",
		engine.CmpVal(3, ">=", int(Date(1994, 1, 1))),
		engine.CmpVal(3, "<", int(Date(1995, 1, 1))))
	liForest := semiJoin(s, engine.NewScan(s, partTab), li, "Q20/j_part", "p_partkey", "l_partkey")
	liPacked := engine.NewProject(s, liForest, "Q20/pack",
		engine.ProjExpr{Name: "ps_key", Expr: packKey(liForest, "l_partkey", "l_suppkey")},
		engine.Keep("l_quantity", 2))
	qtyAgg := engine.NewHashAgg(s, liPacked, "Q20/qty", []int{0},
		engine.Agg(engine.AggSum, 1, "sum_qty"))
	qtyTab, err := run(qtyAgg)
	if err != nil {
		return nil, err
	}

	psForest := semiJoin(s, engine.NewScan(s, partTab),
		engine.NewScan(s, db.PartSupp, "ps_partkey", "ps_suppkey", "ps_availqty"),
		"Q20/j_ps", "p_partkey", "ps_partkey")
	psPacked := engine.NewProject(s, psForest, "Q20/pspack",
		engine.ProjExpr{Name: "ps_key", Expr: packKey(psForest, "ps_partkey", "ps_suppkey")},
		engine.Keep("ps_suppkey", 1),
		engine.ProjExpr{Name: "avail2", Expr: expr.Mul(
			expr.ToI64(col(psForest, "ps_availqty")), &expr.ConstI64{V: 2})})
	j := engine.NewHashJoin(s, engine.NewScan(s, qtyTab), psPacked, "Q20/j_qty",
		"ps_key", "ps_key", []string{"sum_qty"})
	excess := engine.NewSelect(s, j, "Q20/excess",
		engine.CmpCol(idx(j, "avail2"), ">", idx(j, "sum_qty")))
	suppKeys := engine.NewHashAgg(s, excess, "Q20/supps", []int{idx(j, "ps_suppkey")},
		engine.Agg(engine.AggCount, -1, "n"))
	suppKeysTab, err := run(suppKeys)
	if err != nil {
		return nil, err
	}

	suppCA := nationFilteredSuppliers(db, s, "Q20", "CANADA")
	final := semiJoin(s, engine.NewScan(s, suppKeysTab), suppCA, "Q20/final", "ps_suppkey", "s_suppkey")
	sorted := engine.NewSort(s, final, engine.Asc(idx(final, "s_name")))
	return run(sorted)
}

// Q21 is suppliers who kept orders waiting: the multi-exists query. Its
// hash joins carry bloom-filter pre-filters — the sel_bloomfilter
// primitive of Figure 11(d) and Table 8.
func Q21(db *DB, s *core.Session) (*engine.Table, error) {
	// Distinct (orderkey, suppkey) pairs over all lineitems and over the
	// late lineitems.
	allPairs := engine.NewHashAgg(s,
		engine.NewScan(s, db.Lineitem, "l_orderkey", "l_suppkey"),
		"Q21/allpairs", []int{0, 1},
		engine.Agg(engine.AggCount, -1, "n"))
	allPairsTab, err := run(allPairs)
	if err != nil {
		return nil, err
	}
	cntAll := engine.NewHashAgg(s, engine.NewScan(s, allPairsTab), "Q21/cntall", []int{0},
		engine.Agg(engine.AggCount, -1, "nsupp"))
	multiSupp := engine.NewSelect(s, cntAll, "Q21/multi", engine.CmpVal(1, ">=", 2))

	late := engine.NewSelect(s,
		engine.NewScan(s, db.Lineitem, "l_orderkey", "l_suppkey", "l_commitdate", "l_receiptdate"),
		"Q21/late", engine.CmpCol(3, ">", 2))
	latePairs := engine.NewHashAgg(s, late, "Q21/latepairs", []int{0, 1},
		engine.Agg(engine.AggCount, -1, "n"))
	latePairsTab, err := run(latePairs)
	if err != nil {
		return nil, err
	}
	cntLate := engine.NewHashAgg(s, engine.NewScan(s, latePairsTab), "Q21/cntlate", []int{0},
		engine.Agg(engine.AggCount, -1, "nlate"))
	soloLate := engine.NewSelect(s, cntLate, "Q21/solo", engine.CmpVal(1, "==", 1))

	// Candidate pairs: late pairs whose order has >=2 suppliers overall
	// and exactly one late supplier; bloom filters pay off because most
	// probes miss.
	cand := engine.NewHashJoin(s, multiSupp, engine.NewScan(s, latePairsTab),
		"Q21/j_multi", "l_orderkey", "l_orderkey", nil,
		engine.WithKind(engine.SemiJoin), engine.WithBloom(8))
	cand2 := engine.NewHashJoin(s, soloLate, cand, "Q21/j_solo",
		"l_orderkey", "l_orderkey", nil,
		engine.WithKind(engine.SemiJoin), engine.WithBloom(8))

	ordF := engine.NewSelect(s,
		engine.NewScan(s, db.Orders, "o_orderkey", "o_orderstatus"),
		"Q21/ordF", engine.CmpVal(1, "==", "F"))
	cand3 := engine.NewHashJoin(s, ordF, cand2, "Q21/j_ord",
		"o_orderkey", "l_orderkey", nil,
		engine.WithKind(engine.SemiJoin), engine.WithBloom(8))

	suppSA := nationFilteredSuppliers(db, s, "Q21", "SAUDI ARABIA")
	suppSATab, err := run(suppSA)
	if err != nil {
		return nil, err
	}
	final := engine.NewHashJoin(s, engine.NewScan(s, suppSATab), cand3, "Q21/j_supp",
		"s_suppkey", "l_suppkey", []string{"s_name"}, engine.WithBloom(8))
	agg := engine.NewHashAgg(s, final, "Q21/agg", []int{idx(final, "s_name")},
		engine.Agg(engine.AggCount, -1, "numwait"))
	sorted := engine.NewTopN(s, agg, 100, engine.Desc(1), engine.Asc(0))
	return run(sorted)
}

// Q22 is global sales opportunity: well-funded customers in selected
// country codes with no orders.
func Q22(db *DB, s *core.Session) (*engine.Table, error) {
	codes := []string{"13", "31", "23", "29", "30", "18", "17"}
	custScan := engine.NewScan(s, db.Customer, "c_custkey", "c_acctbal", "c_phone")
	custProj := engine.NewProject(s, custScan, "Q22/proj",
		engine.Keep("c_custkey", 0),
		engine.Keep("c_acctbal", 1),
		engine.ProjExpr{Name: "cntrycode", Expr: &expr.Substr{Child: col(custScan, "c_phone"), From: 0, Len: 2}})
	custSel := engine.NewSelect(s, custProj, "Q22/codes", engine.InStr(2, codes...))
	custTab, err := run(custSel)
	if err != nil {
		return nil, err
	}

	posBal := engine.NewSelect(s, engine.NewScan(s, custTab), "Q22/posbal",
		engine.CmpVal(1, ">", 0.0))
	avgAgg, err := run(engine.NewHashAgg(s, posBal, "Q22/avg", nil,
		engine.Agg(engine.AggAvg, 1, "avg_bal")))
	if err != nil {
		return nil, err
	}
	avgBal := scalarF64(avgAgg, "avg_bal")

	rich := engine.NewSelect(s, engine.NewScan(s, custTab), "Q22/rich",
		engine.CmpVal(1, ">", avgBal))
	ordCust := engine.NewHashAgg(s,
		engine.NewScan(s, db.Orders, "o_custkey"),
		"Q22/ordcust", []int{0},
		engine.Agg(engine.AggCount, -1, "n"))
	noOrders := engine.NewHashJoin(s, ordCust, rich, "Q22/anti",
		"o_custkey", "c_custkey", nil, engine.WithKind(engine.AntiJoin))
	agg := engine.NewHashAgg(s, noOrders, "Q22/agg", []int{2},
		engine.Agg(engine.AggCount, -1, "numcust"),
		engine.Agg(engine.AggSum, 1, "totacctbal"))
	sorted := engine.NewSort(s, agg, engine.Asc(0))
	return run(sorted)
}
