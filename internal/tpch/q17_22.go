package tpch

import (
	"microadapt/internal/core"
	"microadapt/internal/engine"
	"microadapt/internal/expr"
	"microadapt/internal/plan"
	"microadapt/internal/vector"
)

// q17Plan is small-quantity-order revenue: lineitems below 20% of their
// part's average quantity, for one brand/container. The brand-filtered
// lineitems are shared by the per-part average and the join-back probe;
// the yearly division is a delivery step in Q17.
func q17Plan(db *DB) *plan.Builder {
	b := plan.New("Q17")
	partSel := b.Scan(db.Part, "p_partkey", "p_brand", "p_container").
		Select(
			plan.CmpVal(1, "==", "Brand#23"),
			plan.CmpVal(2, "==", "MED BOX"))
	li := semiJoin(b, partSel,
		b.Scan(db.Lineitem, "l_partkey", "l_quantity", "l_extendedprice"),
		"p_partkey", "l_partkey")
	avgAgg := li.Agg([]int{0}, engine.Agg(engine.AggAvg, 1, "avg_qty"))
	j := b.HashJoin(avgAgg, li, "l_partkey", "l_partkey", []string{"avg_qty"})
	proj := j.Project(
		engine.Keep("l_extendedprice", j.Idx("l_extendedprice")),
		engine.ProjExpr{Name: "qty_f", Expr: expr.CastF64(j.Col("l_quantity"))},
		engine.ProjExpr{Name: "limit_f", Expr: expr.Mul(j.Col("avg_qty"), &expr.ConstF64{V: 0.2})})
	sel := proj.Select(plan.CmpCol(1, "<", 2))
	sum := sel.Agg(nil, engine.Agg(engine.AggSum, 0, "sum_price"))
	b.NamedRoot("sum", sum)
	return b
}

// Q17 runs the small-quantity-order revenue query.
func Q17(db *DB, s *core.Session) (*engine.Table, error) { return Query(17).Run(db, s) }

// deliverQ17 finishes Q17 with the yearly division.
func deliverQ17(b *plan.Builder, ex *plan.Exec) (*engine.Table, error) {
	sumAgg, err := ex.Run(b.MainRoot())
	if err != nil {
		return nil, err
	}
	yearly := float64(scalarI64(sumAgg, "sum_price")) / 7.0
	return singleRow("q17", vector.Schema{{Name: "avg_yearly", Type: vector.F64}}, yearly), nil
}

// q18Plan is large-volume customers: orders whose total quantity exceeds
// 300.
func q18Plan(db *DB) *plan.Builder {
	b := plan.New("Q18")
	perOrder := b.Scan(db.Lineitem, "l_orderkey", "l_quantity").
		Agg([]int{0}, engine.Agg(engine.AggSum, 1, "sum_qty"))
	big := perOrder.Select(plan.CmpVal(1, ">", 300))
	j := b.HashJoin(big,
		b.Scan(db.Orders, "o_orderkey", "o_custkey", "o_totalprice", "o_orderdate"),
		"l_orderkey", "o_orderkey", []string{"sum_qty"})
	j2 := b.HashJoin(
		b.Scan(db.Customer, "c_custkey", "c_name"),
		j, "c_custkey", "o_custkey", []string{"c_name"})
	b.Root(j2.TopN(100,
		engine.Desc(j2.Idx("o_totalprice")), engine.Asc(j2.Idx("o_orderdate"))))
	return b
}

// Q18 runs the large-volume customers query.
func Q18(db *DB, s *core.Session) (*engine.Table, error) { return Query(18).Run(db, s) }

// q19Branch declares one disjunct of Q19 (the branches are disjoint by
// brand, so their revenues add): a brand/container/quantity-filtered semi
// join aggregated to a branch revenue root.
func q19Branch(b *plan.Builder, db *DB, brand string, containers []string, qtyLo, qtyHi, sizeHi int) *plan.Node {
	li := b.Scan(db.Lineitem,
		"l_partkey", "l_quantity", "l_extendedprice", "l_discount", "l_shipinstruct", "l_shipmode").
		Select(
			plan.InStr(5, "AIR", "REG AIR"),
			plan.CmpVal(4, "==", "DELIVER IN PERSON"),
			plan.CmpVal(1, ">=", qtyLo),
			plan.CmpVal(1, "<=", qtyHi))
	part := b.Scan(db.Part, "p_partkey", "p_brand", "p_container", "p_size").
		Select(
			plan.CmpVal(1, "==", brand),
			plan.InStr(2, containers...),
			plan.CmpVal(3, ">=", 1),
			plan.CmpVal(3, "<=", sizeHi))
	j := semiJoin(b, part, li, "p_partkey", "l_partkey")
	proj := j.Project(
		engine.ProjExpr{Name: "rev", Expr: revenue(j, "l_extendedprice", "l_discount")})
	return proj.Agg(nil, engine.Agg(engine.AggSum, 0, "revenue"))
}

// q19Plan is discounted revenue over three brand/container/quantity
// disjuncts, one plan root per branch.
func q19Plan(db *DB) *plan.Builder {
	b := plan.New("Q19")
	b.NamedRoot("b1", q19Branch(b, db, "Brand#12",
		[]string{"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 1, 11, 5))
	b.NamedRoot("b2", q19Branch(b, db, "Brand#23",
		[]string{"MED BAG", "MED BOX", "MED PKG", "MED PACK"}, 10, 20, 10))
	b.NamedRoot("b3", q19Branch(b, db, "Brand#34",
		[]string{"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 20, 30, 15))
	return b
}

// Q19 runs the discounted-revenue query.
func Q19(db *DB, s *core.Session) (*engine.Table, error) { return Query(19).Run(db, s) }

// deliverQ19 finishes Q19, summing the three branch roots.
func deliverQ19(b *plan.Builder, ex *plan.Exec) (*engine.Table, error) {
	var total int64
	for _, r := range b.Roots() {
		v, err := ex.ScalarI64(r.Node, "revenue")
		if err != nil {
			return nil, err
		}
		total += v
	}
	return singleRow("q19", vector.Schema{{Name: "revenue", Type: vector.I64}}, total), nil
}

// q20Plan is potential part promotion: suppliers of forest% parts whose
// availability exceeds half of the year's shipped quantity. The forest
// part list is a shared subtree feeding both semi joins.
func q20Plan(db *DB) *plan.Builder {
	b := plan.New("Q20")
	partForest := b.Scan(db.Part, "p_partkey", "p_name").
		Select(plan.Like(1, "forest%"))

	li := b.Scan(db.Lineitem, "l_partkey", "l_suppkey", "l_quantity", "l_shipdate").
		Select(
			plan.CmpVal(3, ">=", int(Date(1994, 1, 1))),
			plan.CmpVal(3, "<", int(Date(1995, 1, 1))))
	liForest := semiJoin(b, partForest, li, "p_partkey", "l_partkey")
	liPacked := liForest.Project(
		engine.ProjExpr{Name: "ps_key", Expr: packKey(liForest, "l_partkey", "l_suppkey")},
		engine.Keep("l_quantity", 2))
	qtyAgg := liPacked.Agg([]int{0}, engine.Agg(engine.AggSum, 1, "sum_qty"))

	psForest := semiJoin(b, partForest,
		b.Scan(db.PartSupp, "ps_partkey", "ps_suppkey", "ps_availqty"),
		"p_partkey", "ps_partkey")
	psPacked := psForest.Project(
		engine.ProjExpr{Name: "ps_key", Expr: packKey(psForest, "ps_partkey", "ps_suppkey")},
		engine.Keep("ps_suppkey", 1),
		engine.ProjExpr{Name: "avail2", Expr: expr.Mul(
			expr.ToI64(psForest.Col("ps_availqty")), &expr.ConstI64{V: 2})})
	j := b.HashJoin(qtyAgg, psPacked, "ps_key", "ps_key", []string{"sum_qty"})
	excess := j.Select(plan.CmpCol(j.Idx("avail2"), ">", j.Idx("sum_qty")))
	suppKeys := excess.Agg([]int{excess.Idx("ps_suppkey")},
		engine.Agg(engine.AggCount, -1, "n"))

	suppCA := nationFilteredSuppliers(b, db, "CANADA")
	final := semiJoin(b, suppKeys, suppCA, "ps_suppkey", "s_suppkey")
	b.Root(final.Sort(engine.Asc(final.Idx("s_name"))))
	return b
}

// Q20 runs the potential part promotion query.
func Q20(db *DB, s *core.Session) (*engine.Table, error) { return Query(20).Run(db, s) }

// q21Plan is suppliers who kept orders waiting: the multi-exists query. Its
// hash joins carry bloom-filter pre-filters — the sel_bloomfilter primitive
// of Figure 11(d) and Table 8.
func q21Plan(db *DB) *plan.Builder {
	b := plan.New("Q21")
	// Distinct (orderkey, suppkey) pairs over all lineitems and over the
	// late lineitems.
	allPairs := b.Scan(db.Lineitem, "l_orderkey", "l_suppkey").
		Agg([]int{0, 1}, engine.Agg(engine.AggCount, -1, "n"))
	cntAll := allPairs.Agg([]int{0}, engine.Agg(engine.AggCount, -1, "nsupp"))
	multiSupp := cntAll.Select(plan.CmpVal(1, ">=", 2))

	late := b.Scan(db.Lineitem, "l_orderkey", "l_suppkey", "l_commitdate", "l_receiptdate").
		Select(plan.CmpCol(3, ">", 2))
	latePairs := late.Agg([]int{0, 1}, engine.Agg(engine.AggCount, -1, "n"))
	cntLate := latePairs.Agg([]int{0}, engine.Agg(engine.AggCount, -1, "nlate"))
	soloLate := cntLate.Select(plan.CmpVal(1, "==", 1))

	// Candidate pairs: late pairs whose order has >=2 suppliers overall
	// and exactly one late supplier; bloom filters pay off because most
	// probes miss.
	cand := b.SemiJoin(multiSupp, latePairs, "l_orderkey", "l_orderkey", plan.WithBloom(8))
	cand2 := b.SemiJoin(soloLate, cand, "l_orderkey", "l_orderkey", plan.WithBloom(8))

	ordF := b.Scan(db.Orders, "o_orderkey", "o_orderstatus").
		Select(plan.CmpVal(1, "==", "F"))
	cand3 := b.SemiJoin(ordF, cand2, "o_orderkey", "l_orderkey", plan.WithBloom(8))

	suppSA := nationFilteredSuppliers(b, db, "SAUDI ARABIA")
	final := b.HashJoin(suppSA, cand3, "s_suppkey", "l_suppkey",
		[]string{"s_name"}, plan.WithBloom(8))
	agg := final.Agg([]int{final.Idx("s_name")},
		engine.Agg(engine.AggCount, -1, "numwait"))
	b.Root(agg.TopN(100, engine.Desc(1), engine.Asc(0)))
	return b
}

// Q21 runs the waiting-suppliers query.
func Q21(db *DB, s *core.Session) (*engine.Table, error) { return Query(21).Run(db, s) }

// q22Plan is global sales opportunity: well-funded customers in selected
// country codes with no orders. The code-filtered customers are a shared
// subtree, and the average positive balance filters the rich set as an
// in-plan scalar.
func q22Plan(db *DB) *plan.Builder {
	b := plan.New("Q22")
	codes := []string{"13", "31", "23", "29", "30", "18", "17"}
	custScan := b.Scan(db.Customer, "c_custkey", "c_acctbal", "c_phone")
	custProj := custScan.Project(
		engine.Keep("c_custkey", 0),
		engine.Keep("c_acctbal", 1),
		engine.ProjExpr{Name: "cntrycode", Expr: &expr.Substr{Child: custScan.Col("c_phone"), From: 0, Len: 2}})
	custSel := custProj.Select(plan.InStr(2, codes...))

	posBal := custSel.Select(plan.CmpVal(1, ">", 0.0))
	avgAgg := posBal.Agg(nil, engine.Agg(engine.AggAvg, 1, "avg_bal"))
	rich := custSel.Select(
		plan.CmpScalar(1, ">", plan.ScalarOf(avgAgg, "avg_bal")))
	ordCust := b.Scan(db.Orders, "o_custkey").
		Agg([]int{0}, engine.Agg(engine.AggCount, -1, "n"))
	noOrders := b.AntiJoin(ordCust, rich, "o_custkey", "c_custkey")
	agg := noOrders.Agg([]int{2},
		engine.Agg(engine.AggCount, -1, "numcust"),
		engine.Agg(engine.AggSum, 1, "totacctbal"))
	b.Root(agg.Sort(engine.Asc(0)))
	return b
}

// Q22 runs the global sales opportunity query.
func Q22(db *DB, s *core.Session) (*engine.Table, error) { return Query(22).Run(db, s) }
