package tpch

import (
	"fmt"
	"testing"

	"microadapt/internal/core"
	"microadapt/internal/engine"
	"microadapt/internal/hw"
	"microadapt/internal/primitive"
)

// testDB is shared across tests (generation is the expensive part).
var testDB = Generate(0.005, 42)

func newSession(t testing.TB, o primitive.Options, chooser core.ChooserFactory) *core.Session {
	t.Helper()
	dict := primitive.NewDictionary(o)
	opts := []core.SessionOption{core.WithVectorSize(128), core.WithSeed(7)}
	if chooser != nil {
		opts = append(opts, core.WithChooser(chooser))
	}
	return core.NewSession(dict, hw.Machine1(), opts...)
}

// tableFingerprint renders a table to a canonical string for equivalence
// checks across flavor configurations.
func tableFingerprint(t *engine.Table) string {
	return engine.TableString(t, 0) + fmt.Sprintf("rows=%d", t.Rows())
}

func TestGenerateShapes(t *testing.T) {
	db := testDB
	if db.Region.Rows() != 5 {
		t.Errorf("region rows = %d, want 5", db.Region.Rows())
	}
	if db.Nation.Rows() != 25 {
		t.Errorf("nation rows = %d, want 25", db.Nation.Rows())
	}
	if db.Orders.Rows() < 1000 {
		t.Errorf("orders rows = %d, want >= 1000", db.Orders.Rows())
	}
	if db.Lineitem.Rows() < 3*db.Orders.Rows() {
		t.Errorf("lineitem rows = %d, want >= 3x orders (%d)", db.Lineitem.Rows(), db.Orders.Rows())
	}
	if db.PartSupp.Rows() != 4*db.Part.Rows() {
		t.Errorf("partsupp rows = %d, want 4x part (%d)", db.PartSupp.Rows(), db.Part.Rows())
	}
}

func TestOrdersClusteredByDate(t *testing.T) {
	dates := testDB.Orders.Col("o_orderdate").I32()
	violations := 0
	for i := 1; i < len(dates); i++ {
		if dates[i] < dates[i-1]-31 {
			violations++
		}
	}
	if violations > 0 {
		t.Errorf("order dates not clustered: %d violations", violations)
	}
}

func TestLineitemDatesConsistent(t *testing.T) {
	li := testDB.Lineitem
	ship := li.Col("l_shipdate").I32()
	receipt := li.Col("l_receiptdate").I32()
	for i := 0; i < li.Rows(); i++ {
		if receipt[i] <= ship[i] {
			t.Fatalf("row %d: receiptdate %d <= shipdate %d", i, receipt[i], ship[i])
		}
	}
}

func TestLineitemSuppkeysExistInPartsupp(t *testing.T) {
	type pair struct{ p, s int32 }
	ps := make(map[pair]bool)
	pk := testDB.PartSupp.Col("ps_partkey").I32()
	sk := testDB.PartSupp.Col("ps_suppkey").I32()
	for i := 0; i < testDB.PartSupp.Rows(); i++ {
		ps[pair{pk[i], sk[i]}] = true
	}
	lp := testDB.Lineitem.Col("l_partkey").I32()
	ls := testDB.Lineitem.Col("l_suppkey").I32()
	for i := 0; i < testDB.Lineitem.Rows(); i++ {
		if !ps[pair{lp[i], ls[i]}] {
			t.Fatalf("lineitem %d references (%d,%d) missing from partsupp", i, lp[i], ls[i])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates three databases; skipped in -short mode")
	}
	a := Generate(0.002, 7)
	b := Generate(0.002, 7)
	if got, want := tableFingerprint(a.Lineitem), tableFingerprint(b.Lineitem); got != want {
		t.Error("same seed produced different lineitem data")
	}
	c := Generate(0.002, 8)
	if tableFingerprint(a.Lineitem) == tableFingerprint(c.Lineitem) {
		t.Error("different seed produced identical lineitem data")
	}
}

// TestAllQueriesRun executes every query on the default (single-flavor)
// build and checks it produces a well-formed result.
func TestAllQueriesRun(t *testing.T) {
	for _, q := range Queries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			s := newSession(t, primitive.Defaults(), nil)
			tab, err := q.Run(testDB, s)
			if err != nil {
				t.Fatalf("%s failed: %v", q.Name, err)
			}
			if tab == nil {
				t.Fatalf("%s returned nil table", q.Name)
			}
			if len(tab.Sch) == 0 {
				t.Fatalf("%s returned empty schema", q.Name)
			}
			if s.Ctx.PrimCycles <= 0 {
				t.Errorf("%s consumed no primitive cycles", q.Name)
			}
		})
	}
}

// TestQueriesFlavorEquivalence is the core correctness property of Micro
// Adaptivity: flavors are functionally equivalent, so every query must
// produce identical results under any flavor configuration and any
// selection policy.
func TestQueriesFlavorEquivalence(t *testing.T) {
	configs := []struct {
		name    string
		opts    primitive.Options
		chooser core.ChooserFactory
	}{
		{"defaults", primitive.Defaults(), nil},
		{"everything-vwgreedy", primitive.Everything(), nil},
		{"everything-roundrobin", primitive.Everything(), func(n int) core.Chooser { return core.NewRoundRobin(n) }},
		{"branchset-epsgreedy", primitive.BranchSet(), nil},
	}
	if testing.Short() {
		t.Skip("22 queries x 4 flavor configurations; skipped in -short mode")
	}
	for _, q := range Queries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			var want string
			for ci, cfg := range configs {
				s := newSession(t, cfg.opts, cfg.chooser)
				tab, err := q.Run(testDB, s)
				if err != nil {
					t.Fatalf("%s under %s failed: %v", q.Name, cfg.name, err)
				}
				got := tableFingerprint(tab)
				if ci == 0 {
					want = got
					continue
				}
				if got != want {
					t.Errorf("%s: config %s produced different results", q.Name, cfg.name)
				}
			}
		})
	}
}

// TestQueriesJoinStrategyEquivalence is the correctness property of the
// join-strategy decision: hash, merge (binary-search) and bloom-prefiltered
// hash all return the lowest matching build row per probe tuple, so every
// query must be bit-identical whichever arm is forced, serial or parallel.
// Arms are pinned through WithInstanceChooser, which fragments inherit;
// indices past a decision's arm count clamp to 0 (the anti-join decision
// has no bloomhash arm).
func TestQueriesJoinStrategyEquivalence(t *testing.T) {
	queries := Queries()
	if testing.Short() {
		// The join-heavy plans plus one join-free control query.
		queries = []Spec{Query(3), Query(5), Query(17), Query(21), Query(1)}
	}
	forced := func(arm int) core.SessionOption {
		return core.WithInstanceChooser(func(sig, label string, arms []string) core.Chooser {
			if core.IsDecisionSig(sig) {
				return core.NewFixed(arm)
			}
			return core.NewFixed(0)
		})
	}
	for _, q := range queries {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			var want string
			first := true
			for _, p := range []int{1, 4} {
				for arm := 0; arm < 3; arm++ {
					dict := primitive.NewDictionary(primitive.Everything())
					opts := []core.SessionOption{
						core.WithVectorSize(128), core.WithSeed(7), forced(arm),
					}
					if p > 1 {
						opts = append(opts, core.WithParallelism(p))
					}
					s := core.NewSession(dict, hw.Machine1(), opts...)
					tab, err := q.Run(testDB, s)
					if err != nil {
						t.Fatalf("%s arm=%d P=%d: %v", q.Name, arm, p, err)
					}
					got := tableFingerprint(tab)
					if first {
						want, first = got, false
						continue
					}
					if got != want {
						t.Errorf("%s: arm=%d P=%d result differs from arm=0 P=1", q.Name, arm, p)
					}
				}
			}
		})
	}
}

// TestParallelMatchesSerial is the acceptance property of morsel-driven
// pipeline parallelism: with PipelineParallelism P > 1 every query must
// return results identical to the serial plan, for every P. Queries without
// a partitionable prefix run serially and pass trivially; the partitioned
// ones (Q1, Q3, Q6, Q12, Q14, Q15) exercise the Parallel/Exchange path.
func TestParallelMatchesSerial(t *testing.T) {
	queries := Queries()
	if testing.Short() {
		// The partitioned plans plus one serial-only control query.
		queries = []Spec{Query(1), Query(3), Query(6), Query(12), Query(14), Query(15), Query(4)}
	}
	for _, q := range queries {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			var want string
			for _, p := range []int{1, 2, 4} {
				dict := primitive.NewDictionary(primitive.Everything())
				s := core.NewSession(dict, hw.Machine1(),
					core.WithVectorSize(128), core.WithSeed(7), core.WithParallelism(p))
				tab, err := q.Run(testDB, s)
				if err != nil {
					t.Fatalf("%s at P=%d: %v", q.Name, p, err)
				}
				got := tableFingerprint(tab)
				if p == 1 {
					want = got
					if len(s.Fragments()) != 0 {
						t.Fatalf("%s: serial run spawned %d fragments", q.Name, len(s.Fragments()))
					}
					continue
				}
				if got != want {
					t.Errorf("%s: P=%d result differs from serial plan", q.Name, p)
				}
				for _, fs := range s.Fragments() {
					if fs.Partition() < 0 {
						t.Errorf("%s: fragment session without partition tag", q.Name)
					}
				}
			}
		})
	}
}

// TestQ1Values cross-checks Q1 aggregates against a straightforward Go
// reimplementation of the query.
func TestQ1Values(t *testing.T) {
	s := newSession(t, primitive.Everything(), nil)
	tab, err := Q1(testDB, s)
	if err != nil {
		t.Fatal(err)
	}
	// Reference computation.
	li := testDB.Lineitem
	cutoff := Date(1998, 9, 2)
	type acc struct {
		qty, base, disc, charge, count int64
	}
	ref := map[string]*acc{}
	ship := li.Col("l_shipdate").I32()
	rf := li.Col("l_returnflag").Str()
	ls := li.Col("l_linestatus").Str()
	qty := li.Col("l_quantity").I32()
	price := li.Col("l_extendedprice").I64()
	disc := li.Col("l_discount").I64()
	tax := li.Col("l_tax").I64()
	for i := 0; i < li.Rows(); i++ {
		if ship[i] > cutoff {
			continue
		}
		k := rf[i] + "|" + ls[i]
		a := ref[k]
		if a == nil {
			a = &acc{}
			ref[k] = a
		}
		dp := price[i] * (100 - disc[i]) / 100
		ch := dp * (100 + tax[i]) / 100
		a.qty += int64(qty[i])
		a.base += price[i]
		a.disc += dp
		a.charge += ch
		a.count++
	}
	if tab.Rows() != len(ref) {
		t.Fatalf("Q1 groups = %d, want %d", tab.Rows(), len(ref))
	}
	for r := 0; r < tab.Rows(); r++ {
		k := tab.Col("l_returnflag").GetStr(r) + "|" + tab.Col("l_linestatus").GetStr(r)
		a := ref[k]
		if a == nil {
			t.Fatalf("unexpected group %q", k)
		}
		if got := tab.Col("sum_qty").GetI64(r); got != a.qty {
			t.Errorf("group %s sum_qty = %d, want %d", k, got, a.qty)
		}
		if got := tab.Col("sum_base_price").GetI64(r); got != a.base {
			t.Errorf("group %s sum_base = %d, want %d", k, got, a.base)
		}
		if got := tab.Col("sum_disc_price").GetI64(r); got != a.disc {
			t.Errorf("group %s sum_disc_price = %d, want %d", k, got, a.disc)
		}
		if got := tab.Col("sum_charge").GetI64(r); got != a.charge {
			t.Errorf("group %s sum_charge = %d, want %d", k, got, a.charge)
		}
		if got := tab.Col("count_order").GetI64(r); got != a.count {
			t.Errorf("group %s count = %d, want %d", k, got, a.count)
		}
	}
}

// TestQ6Value cross-checks the Q6 scalar.
func TestQ6Value(t *testing.T) {
	s := newSession(t, primitive.Everything(), nil)
	tab, err := Q6(testDB, s)
	if err != nil {
		t.Fatal(err)
	}
	li := testDB.Lineitem
	ship := li.Col("l_shipdate").I32()
	disc := li.Col("l_discount").I64()
	qty := li.Col("l_quantity").I32()
	price := li.Col("l_extendedprice").I64()
	lo, hi := Date(1994, 1, 1), Date(1995, 1, 1)
	var want int64
	for i := 0; i < li.Rows(); i++ {
		if ship[i] >= lo && ship[i] < hi && disc[i] >= 5 && disc[i] <= 7 && qty[i] < 24 {
			want += price[i] * disc[i] / 100
		}
	}
	if got := tab.Col("revenue").GetI64(0); got != want {
		t.Errorf("Q6 revenue = %d, want %d", got, want)
	}
}

// TestQ12Values cross-checks Q12 counts.
func TestQ12Values(t *testing.T) {
	s := newSession(t, primitive.Everything(), nil)
	tab, err := Q12(testDB, s)
	if err != nil {
		t.Fatal(err)
	}
	li := testDB.Lineitem
	ord := testDB.Orders
	prio := ord.Col("o_orderpriority").Str()
	mode := li.Col("l_shipmode").Str()
	okey := li.Col("l_orderkey").I32()
	shipd := li.Col("l_shipdate").I32()
	commitd := li.Col("l_commitdate").I32()
	receiptd := li.Col("l_receiptdate").I32()
	lo, hi := Date(1994, 1, 1), Date(1995, 1, 1)
	want := map[string][2]int64{}
	for i := 0; i < li.Rows(); i++ {
		if (mode[i] != "MAIL" && mode[i] != "SHIP") ||
			commitd[i] >= receiptd[i] || shipd[i] >= commitd[i] ||
			receiptd[i] < lo || receiptd[i] >= hi {
			continue
		}
		p := prio[okey[i]-1]
		hl := want[mode[i]]
		if p == "1-URGENT" || p == "2-HIGH" {
			hl[0]++
		} else {
			hl[1]++
		}
		want[mode[i]] = hl
	}
	if tab.Rows() != len(want) {
		t.Fatalf("Q12 groups = %d, want %d", tab.Rows(), len(want))
	}
	for r := 0; r < tab.Rows(); r++ {
		m := tab.Col("l_shipmode").GetStr(r)
		if got := tab.Col("high_line_count").GetI64(r); got != want[m][0] {
			t.Errorf("%s high = %d, want %d", m, got, want[m][0])
		}
		if got := tab.Col("low_line_count").GetI64(r); got != want[m][1] {
			t.Errorf("%s low = %d, want %d", m, got, want[m][1])
		}
	}
}

func TestDateHelpers(t *testing.T) {
	if Date(1992, 1, 1) != 0 {
		t.Errorf("epoch day = %d, want 0", Date(1992, 1, 1))
	}
	if Date(1992, 12, 31) != 365 {
		t.Errorf("1992-12-31 = %d, want 365 (leap year)", Date(1992, 12, 31))
	}
	if got := Date(1993, 1, 1); got != 366 {
		t.Errorf("1993-01-01 = %d, want 366", got)
	}
	if got := YearOf(int64(Date(1995, 6, 17))); got != 1995 {
		t.Errorf("YearOf(1995-06-17) = %d", got)
	}
	for _, d := range []struct{ y, m, day int }{{1994, 1, 1}, {1996, 2, 29}, {1998, 8, 2}} {
		day := Date(d.y, d.m, d.day)
		want := fmt.Sprintf("%04d-%02d-%02d", d.y, d.m, d.day)
		if got := DateString(day); got != want {
			t.Errorf("DateString(%d) = %s, want %s", day, got, want)
		}
	}
	if got := AddMonths(Date(1995, 10, 1), 3); got != Date(1996, 1, 1) {
		t.Errorf("AddMonths(1995-10-01, 3) = %s", DateString(got))
	}
}
