package core

import (
	"math/rand"
	"sort"
	"strings"

	"microadapt/internal/hw"
)

// ChooserFactory builds a fresh Chooser for an instance with n flavors.
type ChooserFactory func(n int) Chooser

// InstanceChooserFactory builds a Chooser knowing which primitive instance
// it is for: the dictionary signature and the plan-unique label. This is
// the hook warm-started sessions use to look up prior per-flavor knowledge
// under the instance's stable identity before the first call runs.
type InstanceChooserFactory func(sig, label string, n int) Chooser

// Session ties together everything a query execution needs: the primitive
// dictionary, the machine profile (virtual hardware), the flavor-selection
// policy, and the registry of primitive instances created by plans, from
// which the experiment harness reads profiling and histories after a run.
type Session struct {
	Dict       *Dictionary
	Machine    *hw.Machine
	VectorSize int
	Ctx        *ExecCtx
	Rand       *rand.Rand

	newChooser     ChooserFactory
	newInstChooser InstanceChooserFactory
	instances      []*Instance
	byLabel        map[string]*Instance
}

// SessionOption configures NewSession.
type SessionOption func(*Session)

// WithVectorSize sets the tuples-per-vector of the session (default 1024).
func WithVectorSize(n int) SessionOption {
	return func(s *Session) { s.VectorSize = n }
}

// WithChooser sets the flavor-selection policy factory. The default is
// vw-greedy with the paper's best parameters (1024, 8, 2).
func WithChooser(f ChooserFactory) SessionOption {
	return func(s *Session) { s.newChooser = f }
}

// WithInstanceChooser sets an instance-aware policy factory that receives
// the primitive signature and plan label of each instance; it takes
// precedence over WithChooser. Warm-started sessions use it to seed
// choosers from cross-session knowledge.
func WithInstanceChooser(f InstanceChooserFactory) SessionOption {
	return func(s *Session) { s.newInstChooser = f }
}

// WithSeed sets the session's deterministic random seed (default 1).
func WithSeed(seed int64) SessionOption {
	return func(s *Session) { s.Rand = rand.New(rand.NewSource(seed)) }
}

// NewSession builds a session on the given machine profile.
func NewSession(dict *Dictionary, m *hw.Machine, opts ...SessionOption) *Session {
	s := &Session{
		Dict:       dict,
		Machine:    m,
		VectorSize: 1024,
		Ctx:        NewExecCtx(m),
		Rand:       rand.New(rand.NewSource(1)),
		byLabel:    make(map[string]*Instance),
	}
	for _, o := range opts {
		o(s)
	}
	if s.newChooser == nil {
		p := DefaultVWParams()
		s.newChooser = func(n int) Chooser { return NewVWGreedy(n, p, s.Rand) }
	}
	return s
}

// Instance returns the instance registered under label, creating it (bound
// to the signature's flavors and a fresh chooser) on first use. Each plan
// node uses a distinct label, so two uses of the same primitive in a plan
// learn independently, as in the paper.
func (s *Session) Instance(sig, label string) *Instance {
	if inst, ok := s.byLabel[label]; ok {
		return inst
	}
	prim := s.Dict.MustLookup(sig)
	if len(prim.Flavors) == 0 {
		panic("core: primitive has no flavors: " + sig)
	}
	var chooser Chooser
	if s.newInstChooser != nil {
		chooser = s.newInstChooser(sig, label, len(prim.Flavors))
	} else {
		chooser = s.newChooser(len(prim.Flavors))
	}
	inst := NewInstance(prim, label, chooser)
	s.instances = append(s.instances, inst)
	s.byLabel[label] = inst
	return inst
}

// Instances returns all instances created so far, in creation order.
func (s *Session) Instances() []*Instance { return s.instances }

// InstanceByLabel returns a registered instance or nil.
func (s *Session) InstanceByLabel(label string) *Instance { return s.byLabel[label] }

// FindInstances returns the labels of instances whose label contains
// substr, sorted — a convenience for the experiment harness.
func (s *Session) FindInstances(substr string) []*Instance {
	var out []*Instance
	for _, inst := range s.instances {
		if substr == "" || strings.Contains(inst.Label, substr) {
			out = append(out, inst)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// ResetInstances drops all instances and their profiling but keeps the
// dictionary and machine; used between benchmark repetitions.
func (s *Session) ResetInstances() {
	s.instances = nil
	s.byLabel = make(map[string]*Instance)
	s.Ctx.ResetCycles()
}
