package core

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"microadapt/internal/hw"
)

// ChooserFactory builds a fresh Chooser for an instance with n flavors.
type ChooserFactory func(n int) Chooser

// InstanceChooserFactory builds a Chooser knowing which decision point it
// is for: the identity signature (a dictionary primitive signature, or
// DecisionSig(name) for an operator-level decision), the plan-unique
// label, and the arm names in arm order (flavor names for primitive
// instances, strategy names for decisions). This is the hook warm-started
// sessions use to look up prior per-arm knowledge under the point's
// stable identity before the first call runs; arm names arrive here so
// the factory never needs a dictionary lookup that would fail for
// non-primitive decisions.
type InstanceChooserFactory func(sig, label string, arms []string) Chooser

// FragmentSpawner builds the session one parallel pipeline fragment runs
// on. It receives the partition index and must return a session that shares
// the parent's dictionary and machine but owns its chooser state — the
// engine and choosers stay single-threaded; parallelism comes from running
// whole fragment sessions on separate goroutines.
type FragmentSpawner func(part int) *Session

// Session ties together everything a query execution needs: the primitive
// dictionary, the machine profile (virtual hardware), the flavor-selection
// policy, and the registry of primitive instances created by plans, from
// which the experiment harness reads profiling and histories after a run.
type Session struct {
	Dict       *Dictionary
	Machine    *hw.Machine
	VectorSize int
	Ctx        *ExecCtx
	Rand       *rand.Rand

	newChooser     ChooserFactory
	newInstChooser InstanceChooserFactory
	defaultPolicy  bool // newChooser is the built-in default (owns s.Rand)
	instances      []*Instance
	byLabel        map[string]*Instance
	decisions      []*Decision
	decByLabel     map[string]*Decision

	seed          int64
	parallelism   int // pipeline partitions a partitionable plan may fan into
	partition     int // partition index of a fragment session; -1 otherwise
	spawnFragment FragmentSpawner
	fragments     []*Session // fragment sessions spawned by this session's plans
}

// SessionOption configures NewSession.
type SessionOption func(*Session)

// WithVectorSize sets the tuples-per-vector of the session (default 1024).
func WithVectorSize(n int) SessionOption {
	return func(s *Session) { s.VectorSize = n }
}

// WithChooser sets the flavor-selection policy factory. The default is
// vw-greedy with the paper's best parameters (1024, 8, 2).
func WithChooser(f ChooserFactory) SessionOption {
	return func(s *Session) { s.newChooser = f }
}

// WithInstanceChooser sets an instance-aware policy factory that receives
// the primitive signature and plan label of each instance; it takes
// precedence over WithChooser. Warm-started sessions use it to seed
// choosers from cross-session knowledge.
func WithInstanceChooser(f InstanceChooserFactory) SessionOption {
	return func(s *Session) { s.newInstChooser = f }
}

// WithSeed sets the session's deterministic random seed (default 1).
func WithSeed(seed int64) SessionOption {
	return func(s *Session) {
		s.seed = seed
		s.Rand = rand.New(rand.NewSource(seed))
	}
}

// WithParallelism sets the pipeline parallelism P: partitionable plans
// (engine.ParallelPipeline) fan their scan-heavy fragments into P morsel
// streams, each running on its own goroutine with its own fragment session.
// P <= 1 (the default) keeps every plan serial.
func WithParallelism(p int) SessionOption {
	return func(s *Session) { s.parallelism = p }
}

// WithFragmentSpawner overrides how Fragment builds partition sessions. The
// concurrent service uses it to warm-start every fragment from the shared
// flavor cache. The spawner may be invoked once per partition each time a
// parallel plan opens; the sessions it returns must be freshly built (never
// shared with another goroutine).
func WithFragmentSpawner(f FragmentSpawner) SessionOption {
	return func(s *Session) { s.spawnFragment = f }
}

// NewSession builds a session on the given machine profile.
func NewSession(dict *Dictionary, m *hw.Machine, opts ...SessionOption) *Session {
	s := &Session{
		Dict:       dict,
		Machine:    m,
		VectorSize: 1024,
		Ctx:        NewExecCtx(m),
		Rand:       rand.New(rand.NewSource(1)),
		byLabel:    make(map[string]*Instance),
		decByLabel: make(map[string]*Decision),
		seed:       1,
		partition:  -1,
	}
	for _, o := range opts {
		o(s)
	}
	if s.newChooser == nil {
		p := DefaultVWParams()
		s.newChooser = func(n int) Chooser { return NewVWGreedy(n, p, s.Rand) }
		s.defaultPolicy = true
	}
	return s
}

// Parallelism returns the session's pipeline-parallelism setting (>= 1).
func (s *Session) Parallelism() int {
	if s.parallelism < 1 {
		return 1
	}
	return s.parallelism
}

// Partition returns the fragment's partition index, or -1 for a session
// that is not a pipeline fragment.
func (s *Session) Partition() int { return s.partition }

// FragmentSeedStride spaces the derived seeds of fragment sessions; any
// odd constant keeps partitions distinct without colliding with the
// +1-per-session sequences callers use. Custom FragmentSpawners (the
// concurrent service's) reuse it so default- and spawner-built fragments
// derive seeds the same way.
const FragmentSeedStride = 1_000_003

// Fragment builds and registers the session a pipeline fragment for
// partition part runs on. With a configured FragmentSpawner the spawner
// decides everything but the partition tag; otherwise the fragment shares
// the parent's dictionary, machine and vector size, draws a
// partition-derived deterministic seed, and reuses the parent's chooser
// factory when the caller set one (registry factories are safe for
// concurrent sessions) or builds its own default vw-greedy over its own
// random stream. Fragment must be called from the goroutine that owns the
// parent session — typically while a parallel operator opens — never from
// inside a running fragment goroutine.
//
// Reproducibility note: a single shared factory hands out per-chooser
// random streams in instance-creation arrival order, which across
// concurrently opening fragments depends on goroutine scheduling — results
// are unaffected (flavors are equivalent) but cycle traces can vary run to
// run. Callers that need bit-reproducible parallel runs should install a
// FragmentSpawner building a fresh, partition-seeded factory per fragment,
// as the concurrent service and the bench harness do.
func (s *Session) Fragment(part int) *Session {
	var fs *Session
	if s.spawnFragment != nil {
		fs = s.spawnFragment(part)
	} else {
		opts := []SessionOption{
			WithVectorSize(s.VectorSize),
			WithSeed(s.seed + FragmentSeedStride*int64(part+1)),
		}
		if s.newInstChooser != nil {
			opts = append(opts, WithInstanceChooser(s.newInstChooser))
		} else if !s.defaultPolicy {
			opts = append(opts, WithChooser(s.newChooser))
		}
		fs = NewSession(s.Dict, s.Machine, opts...)
	}
	fs.partition = part
	fs.parallelism = 1 // fragments never fan out further
	s.fragments = append(s.fragments, fs)
	return fs
}

// Fragments returns the fragment sessions spawned by this session's plans,
// in spawn order.
func (s *Session) Fragments() []*Session { return s.fragments }

// AllInstances returns the session's instances followed by those of every
// fragment session it spawned — the full set of bandits one query execution
// created, which knowledge harvesting and adaptation accounting walk.
func (s *Session) AllInstances() []*Instance {
	if len(s.fragments) == 0 {
		return s.instances
	}
	out := append([]*Instance(nil), s.instances...)
	for _, fs := range s.fragments {
		out = append(out, fs.AllInstances()...)
	}
	return out
}

// partitionSep introduces the partition tag of fragment-session instance
// labels: "Q1/sel/select_<=_sint_col_sint_val#0~p2" is partition 2's
// instance of the plan node the serial plan labels without the suffix.
const partitionSep = "~p"

// PartitionLabel appends the partition tag to a plan label.
func PartitionLabel(label string, part int) string {
	return label + partitionSep + strconv.Itoa(part)
}

// BaseLabel strips a trailing partition tag, returning the plan label all
// partitions of one plan node share; labels without a tag pass through.
// Cross-session identity (primitive.InstanceKey) is built on base labels,
// which is what makes P per-partition bandits aggregate their knowledge
// under one cache key.
func BaseLabel(label string) string {
	i := strings.LastIndex(label, partitionSep)
	if i < 0 {
		return label
	}
	digits := label[i+len(partitionSep):]
	if digits == "" {
		return label
	}
	for _, r := range digits {
		if r < '0' || r > '9' {
			return label
		}
	}
	return label[:i]
}

// Instance returns the instance registered under label, creating it (bound
// to the signature's flavors and a fresh chooser) on first use. Each plan
// node uses a distinct label, so two uses of the same primitive in a plan
// learn independently, as in the paper. Fragment sessions tag the label
// with their partition so profiling stays per-partition while BaseLabel
// still collapses all partitions onto the serial plan's label.
func (s *Session) Instance(sig, label string) *Instance {
	if s.partition >= 0 {
		label = PartitionLabel(label, s.partition)
	}
	if inst, ok := s.byLabel[label]; ok {
		return inst
	}
	prim := s.Dict.MustLookup(sig)
	if len(prim.Flavors) == 0 {
		panic("core: primitive has no flavors: " + sig)
	}
	var chooser Chooser
	if s.newInstChooser != nil {
		names := make([]string, len(prim.Flavors))
		for i, f := range prim.Flavors {
			names[i] = f.Name
		}
		chooser = s.newInstChooser(sig, label, names)
	} else {
		chooser = s.newChooser(len(prim.Flavors))
	}
	inst := NewInstance(prim, label, chooser)
	s.instances = append(s.instances, inst)
	s.byLabel[label] = inst
	return inst
}

// Decision returns the operator-level decision point registered under
// label, creating it (bound to the named arms and a fresh chooser) on
// first use — the exact Instance protocol one level up: fragment sessions
// tag the label with their partition, warm-started sessions build the
// chooser through the same instance-aware factory (under the identity
// DecisionSig(name)), and knowledge harvesting walks AllDecisions like
// AllInstances. Arms must be stable across sessions for a given name:
// cross-session knowledge is exchanged by arm name.
func (s *Session) Decision(name, label string, arms []string) *Decision {
	if s.partition >= 0 {
		label = PartitionLabel(label, s.partition)
	}
	if d, ok := s.decByLabel[label]; ok {
		return d
	}
	if len(arms) == 0 {
		panic("core: decision has no arms: " + name)
	}
	var chooser Chooser
	if s.newInstChooser != nil {
		chooser = s.newInstChooser(DecisionSig(name), label, arms)
	} else {
		chooser = s.newChooser(len(arms))
	}
	d := NewDecision(name, label, arms, chooser)
	s.decisions = append(s.decisions, d)
	s.decByLabel[label] = d
	return d
}

// Decisions returns the session's own decision points, in creation order.
func (s *Session) Decisions() []*Decision { return s.decisions }

// DecisionByLabel returns a registered decision point or nil.
func (s *Session) DecisionByLabel(label string) *Decision { return s.decByLabel[label] }

// AllDecisions returns the session's decision points followed by those of
// every fragment session it spawned, mirroring AllInstances.
func (s *Session) AllDecisions() []*Decision {
	if len(s.fragments) == 0 {
		return s.decisions
	}
	out := append([]*Decision(nil), s.decisions...)
	for _, fs := range s.fragments {
		out = append(out, fs.AllDecisions()...)
	}
	return out
}

// Instances returns all instances created so far, in creation order.
func (s *Session) Instances() []*Instance { return s.instances }

// InstanceByLabel returns a registered instance or nil.
func (s *Session) InstanceByLabel(label string) *Instance { return s.byLabel[label] }

// FindInstances returns the labels of instances whose label contains
// substr, sorted — a convenience for the experiment harness.
func (s *Session) FindInstances(substr string) []*Instance {
	var out []*Instance
	for _, inst := range s.instances {
		if substr == "" || strings.Contains(inst.Label, substr) {
			out = append(out, inst)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// ResetInstances drops all instances and their profiling (including spawned
// fragment sessions) but keeps the dictionary and machine; used between
// benchmark repetitions.
func (s *Session) ResetInstances() {
	s.instances = nil
	s.byLabel = make(map[string]*Instance)
	s.decisions = nil
	s.decByLabel = make(map[string]*Decision)
	s.fragments = nil
	s.Ctx.ResetCycles()
}
