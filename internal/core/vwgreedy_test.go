package core

import (
	"math"
	"math/rand"
	"testing"
)

// simulate feeds a cost function through a chooser and returns the arm
// sequence and mean achieved cost; costs[arm](call) gives cycles/tuple.
func simulate(ch Chooser, calls int, cost func(arm, call int) float64) (armUse []int, total float64) {
	nArms := 0
	switch c := ch.(type) {
	case *VWGreedy:
		nArms = c.n
	}
	_ = nArms
	armUse = make([]int, 16)
	for t := 0; t < calls; t++ {
		arm := ch.Choose(ChooseContext{})
		c := cost(arm, t)
		ch.Observe(Observation{Arm: arm, Tuples: 100, Cycles: c * 100})
		armUse[arm]++
		total += c
	}
	return armUse, total
}

func TestVWGreedyConvergesToBestArm(t *testing.T) {
	p := VWParams{ExplorePeriod: 64, ExploitPeriod: 8, ExploreLength: 4, WarmupSkip: 2, InitialSweep: true}
	ch := NewVWGreedy(3, p, rand.New(rand.NewSource(1)))
	use, _ := simulate(ch, 4096, func(arm, call int) float64 {
		return []float64{5, 3, 9}[arm] // arm 1 is always best
	})
	if use[1] < 3500 {
		t.Errorf("best arm used %d/4096 times, want dominant", use[1])
	}
}

// TestVWGreedyAdaptsToChange is the non-stationary scenario of Figure 10:
// the best arm changes mid-query and vw-greedy must switch.
func TestVWGreedyAdaptsToChange(t *testing.T) {
	p := VWParams{ExplorePeriod: 128, ExploitPeriod: 8, ExploreLength: 4, WarmupSkip: 2, InitialSweep: true}
	ch := NewVWGreedy(2, p, rand.New(rand.NewSource(2)))
	half := 4096
	costFn := func(arm, call int) float64 {
		if call < half {
			return []float64{3, 6}[arm]
		}
		return []float64{6, 3}[arm]
	}
	lateUse := make([]int, 2)
	for call := 0; call < 2*half; call++ {
		arm := ch.Choose(ChooseContext{})
		c := costFn(arm, call)
		ch.Observe(Observation{Arm: arm, Tuples: 100, Cycles: c * 100})
		if call >= half+512 { // allow switching time
			lateUse[arm]++
		}
	}
	if lateUse[1] < lateUse[0]*3 {
		t.Errorf("after the change arm1 should dominate: use = %v", lateUse)
	}
}

// TestVWGreedyDetectsDeteriorationFast mirrors the paper's observation on
// Figure 11(a): deterioration of the current best flavor is noticed within
// EXPLOIT_PERIOD calls, while discovering an improved alternative takes
// EXPLORE_PERIOD calls.
func TestVWGreedyDetectsDeteriorationFast(t *testing.T) {
	p := VWParams{ExplorePeriod: 1024, ExploitPeriod: 8, ExploreLength: 2, WarmupSkip: 2, InitialSweep: true}
	ch := NewVWGreedy(2, p, rand.New(rand.NewSource(3)))
	// Warm up on arm 0 best.
	for call := 0; call < 512; call++ {
		arm := ch.Choose(ChooseContext{})
		c := []float64{2, 4}[arm]
		ch.Observe(Observation{Arm: arm, Tuples: 100, Cycles: c * 100})
	}
	if ch.Current() != 0 {
		t.Fatalf("expected arm 0 before the change, got %d", ch.Current())
	}
	// Arm 0 deteriorates hard (the Figure 2 branching collapse).
	switched := -1
	for call := 0; call < 256; call++ {
		arm := ch.Choose(ChooseContext{})
		c := []float64{40, 4}[arm]
		ch.Observe(Observation{Arm: arm, Tuples: 100, Cycles: c * 100})
		if arm == 1 && switched < 0 {
			switched = call
		}
	}
	if switched < 0 {
		t.Fatal("never switched away from deteriorated flavor")
	}
	if switched > 4*p.ExploitPeriod+8 {
		t.Errorf("switch took %d calls, want within a few exploit periods", switched)
	}
}

func TestVWGreedyInitialSweepTriesAllArms(t *testing.T) {
	p := VWParams{ExplorePeriod: 1024, ExploitPeriod: 8, ExploreLength: 4, WarmupSkip: 2, InitialSweep: true}
	ch := NewVWGreedy(5, p, rand.New(rand.NewSource(4)))
	seen := make(map[int]bool)
	for call := 0; call < 5*(4+2)+8; call++ {
		arm := ch.Choose(ChooseContext{})
		seen[arm] = true
		ch.Observe(Observation{Arm: arm, Tuples: 10, Cycles: 10})
	}
	for a := 0; a < 5; a++ {
		if !seen[a] {
			t.Errorf("initial sweep never tried arm %d", a)
		}
	}
}

func TestVWGreedyNoSweepStartsExploiting(t *testing.T) {
	p := VWParams{ExplorePeriod: 64, ExploitPeriod: 8, ExploreLength: 2, WarmupSkip: 0, InitialSweep: false}
	ch := NewVWGreedy(3, p, rand.New(rand.NewSource(5)))
	if ch.Current() != 0 {
		t.Error("without a sweep the first arm should be 0")
	}
	use, _ := simulate(ch, 1024, func(arm, call int) float64 { return float64(arm + 1) })
	if use[0] < 700 {
		t.Errorf("arm 0 (best) used %d times, want dominant", use[0])
	}
}

func TestVWGreedyWindowedMeanIgnoresAncientHistory(t *testing.T) {
	// An arm that was terrible long ago but is good now must be picked:
	// vw-greedy ranks by the most recent window only.
	p := VWParams{ExplorePeriod: 32, ExploitPeriod: 8, ExploreLength: 4, WarmupSkip: 0, InitialSweep: true}
	vw := NewVWGreedy(2, p, rand.New(rand.NewSource(6)))
	eps := NewEpsGreedy(2, 0.05, rand.New(rand.NewSource(6)))
	cost := func(arm, call int) float64 {
		if call < 2000 {
			return []float64{2, 50}[arm] // arm 1 catastrophic early
		}
		return []float64{10, 1}[arm] // arm 1 great late
	}
	lateVW, lateEps := 0, 0
	for call := 0; call < 8000; call++ {
		a := vw.Choose(ChooseContext{})
		c := cost(a, call)
		vw.Observe(Observation{Arm: a, Tuples: 100, Cycles: c * 100})
		if call > 4000 && a == 1 {
			lateVW++
		}
		a = eps.Choose(ChooseContext{})
		c = cost(a, call)
		eps.Observe(Observation{Arm: a, Tuples: 100, Cycles: c * 100})
		if call > 4000 && a == 1 {
			lateEps++
		}
	}
	if lateVW < 3000 {
		t.Errorf("vw-greedy late arm1 use = %d/4000, want dominant", lateVW)
	}
	// The all-history mean of ε-greedy needs far longer to forgive arm 1;
	// this is the ablation argument for the windowed mean.
	if lateEps > lateVW {
		t.Errorf("eps-greedy (%d) should adapt slower than vw-greedy (%d)", lateEps, lateVW)
	}
}

func TestVWGreedyDefaultParams(t *testing.T) {
	p := DefaultVWParams()
	if p.ExplorePeriod != 1024 || p.ExploitPeriod != 8 || p.ExploreLength != 2 {
		t.Errorf("default params = %+v, want (1024,8,2)", p)
	}
	d := DemoVWParams()
	if d.ExplorePeriod != 1024 || d.ExploitPeriod != 256 || d.ExploreLength != 32 {
		t.Errorf("demo params = %+v, want (1024,256,32)", d)
	}
}

func TestVWParamsScaled(t *testing.T) {
	p := DefaultVWParams().Scaled(8)
	if p.ExplorePeriod != 128 || p.ExploitPeriod != 1 || p.ExploreLength != 1 {
		t.Errorf("scaled params = %+v", p)
	}
	// Scaling preserves the ordering invariants.
	if p.ExploitPeriod > p.ExplorePeriod || p.ExploreLength > p.ExploitPeriod {
		t.Errorf("scaled params violate invariants: %+v", p)
	}
}

func TestVWGreedyAvgCostExposed(t *testing.T) {
	p := VWParams{ExplorePeriod: 16, ExploitPeriod: 4, ExploreLength: 4, WarmupSkip: 0, InitialSweep: true}
	ch := NewVWGreedy(2, p, rand.New(rand.NewSource(7)))
	if !math.IsInf(ch.AvgCost(0), 1) {
		t.Error("unmeasured arm cost should be +Inf")
	}
	simulate(ch, 64, func(arm, call int) float64 { return float64(arm*2 + 3) })
	if ch.AvgCost(0) <= 0 || math.IsInf(ch.AvgCost(0), 1) {
		t.Error("arm 0 should have a measured cost")
	}
	if ch.Name() != "vw-greedy" {
		t.Error("name wrong")
	}
	if ch.Params().ExplorePeriod != 16 {
		t.Error("params accessor wrong")
	}
}

func TestVWGreedyWarmStartsAtBestPrior(t *testing.T) {
	p := VWParams{ExplorePeriod: 256, ExploitPeriod: 8, ExploreLength: 2, WarmupSkip: 0, InitialSweep: true}
	ch := NewVWGreedyWarm(3, p, rand.New(rand.NewSource(1)), []float64{5, 2, 9})
	if ch.Current() != 1 {
		t.Fatalf("warm chooser starts at arm %d, want 1 (cheapest prior)", ch.Current())
	}
	// With all arms seeded there is nothing to sweep: the first exploit
	// window should stay on the known-best arm.
	use, _ := simulate(ch, 64, func(arm, call int) float64 {
		return []float64{5, 2, 9}[arm]
	})
	if use[1] < 56 {
		t.Errorf("seeded best arm used %d/64 times, want near-total", use[1])
	}
}

func TestVWGreedyWarmSweepsOnlyUnknownArms(t *testing.T) {
	p := VWParams{ExplorePeriod: 1 << 20, ExploitPeriod: 8, ExploreLength: 2, WarmupSkip: 0, InitialSweep: true}
	ch := NewVWGreedyWarm(4, p, rand.New(rand.NewSource(2)), []float64{3, math.Inf(1), 2, math.NaN()})
	if ch.Current() != 2 {
		t.Fatalf("start arm = %d, want 2", ch.Current())
	}
	seen := make(map[int]bool)
	for call := 0; call < 64; call++ {
		arm := ch.Choose(ChooseContext{})
		seen[arm] = true
		ch.Observe(Observation{Arm: arm, Tuples: 100, Cycles: float64(arm+1) * 100})
	}
	// Unseeded arms 1 and 3 must still get their initial look...
	if !seen[1] || !seen[3] {
		t.Errorf("sweep skipped unknown arms: seen=%v", seen)
	}
	// ...but the seeded non-best arm 0 has a prior and needs no sweep
	// (with exploration pushed out of reach, visiting it means the sweep
	// re-tested known knowledge).
	if seen[0] {
		t.Errorf("sweep re-tested seeded arm 0: seen=%v", seen)
	}
	// SessionMeasured distinguishes live measurements from seeded priors:
	// arm 0 was never run here, the start arm and swept arms were.
	if ch.SessionMeasured(0) {
		t.Error("seeded-but-unvisited arm must not count as session-measured")
	}
	for _, arm := range []int{1, 2, 3} {
		if !ch.SessionMeasured(arm) {
			t.Errorf("arm %d was measured this session", arm)
		}
	}
}

func TestVWGreedyWarmNilPriorsIsCold(t *testing.T) {
	p := VWParams{ExplorePeriod: 64, ExploitPeriod: 8, ExploreLength: 2, WarmupSkip: 0, InitialSweep: true}
	warm := NewVWGreedyWarm(3, p, rand.New(rand.NewSource(3)), nil)
	cold := NewVWGreedy(3, p, rand.New(rand.NewSource(3)))
	if warm.Current() != cold.Current() {
		t.Error("nil priors should behave exactly like a cold start")
	}
	for call := 0; call < 512; call++ {
		wa, ca := warm.Choose(ChooseContext{}), cold.Choose(ChooseContext{})
		if wa != ca {
			t.Fatalf("call %d: warm(nil) chose %d, cold chose %d", call, wa, ca)
		}
		warm.Observe(Observation{Arm: wa, Tuples: 100, Cycles: float64(wa+1) * 100})
		cold.Observe(Observation{Arm: ca, Tuples: 100, Cycles: float64(ca+1) * 100})
	}
}

func TestVWGreedySnapshotRoundTrip(t *testing.T) {
	p := VWParams{ExplorePeriod: 32, ExploitPeriod: 8, ExploreLength: 2, WarmupSkip: 0, InitialSweep: true}
	ch := NewVWGreedy(3, p, rand.New(rand.NewSource(4)))
	simulate(ch, 256, func(arm, call int) float64 { return []float64{4, 2, 6}[arm] })
	snap, measured := ch.Snapshot()
	if len(snap) != 3 || len(measured) != 3 {
		t.Fatalf("snapshot len = %d/%d", len(snap), len(measured))
	}
	for a := 0; a < 3; a++ {
		if measured[a] != ch.SessionMeasured(a) {
			t.Errorf("snapshot mask[%d] = %v, SessionMeasured = %v", a, measured[a], ch.SessionMeasured(a))
		}
	}
	for a := 0; a < 3; a++ {
		if snap[a] != ch.AvgCost(a) {
			t.Errorf("snapshot[%d] = %v, AvgCost = %v", a, snap[a], ch.AvgCost(a))
		}
	}
	// The snapshot is a copy: later observations must not mutate it.
	before := snap[0]
	simulate(ch, 64, func(arm, call int) float64 { return 50 })
	if snap[0] != before {
		t.Error("snapshot aliases live chooser state")
	}
	// Round trip: seeding a fresh chooser with the snapshot starts it on
	// the arm the first chooser found best.
	warm := NewVWGreedyWarm(3, p, rand.New(rand.NewSource(5)), snap)
	if warm.Current() != 1 {
		t.Errorf("round-tripped chooser starts at %d, want 1", warm.Current())
	}
}

func TestVWGreedyZeroTupleWindows(t *testing.T) {
	// Windows with zero tuples (empty selections) must not poison the
	// averages with NaN.
	p := VWParams{ExplorePeriod: 16, ExploitPeriod: 4, ExploreLength: 2, WarmupSkip: 0, InitialSweep: true}
	ch := NewVWGreedy(2, p, rand.New(rand.NewSource(8)))
	for call := 0; call < 256; call++ {
		arm := ch.Choose(ChooseContext{})
		ch.Observe(Observation{Arm: arm, Tuples: 0, Cycles: 50}) // only call overhead, no tuples
	}
	for a := 0; a < 2; a++ {
		if math.IsNaN(ch.AvgCost(a)) {
			t.Errorf("arm %d cost is NaN", a)
		}
	}
}
