package core

import "strconv"

// Features are the cheap per-call context signals a contextual policy may
// condition on: quantities the operator already knows (or estimates in O(1))
// before the call runs, never anything that requires extra data passes.
// They were historically hidden in Call.Aux as operator-private state; the
// typed struct lifts them into ChooseContext so every Choose sees them.
//
// The zero value (Valid == false) means "no context" and is always legal:
// contextual policies must degrade to context-free behavior on it, which is
// what keeps trace replay, synthetic tests and Choose(ChooseContext{})
// working unchanged.
type Features struct {
	// Valid marks the struct as carrying real context. Policies must treat
	// Valid == false exactly like a context-free call.
	Valid bool
	// Selectivity is the estimated fraction of input tuples surviving the
	// call (a selection's observed output/input ratio, a join's match
	// rate), in [0, 1].
	Selectivity float64
	// Sortedness is the fraction of adjacent element pairs already in
	// ascending order in the relevant key column, in [0, 1]; 1 = sorted.
	Sortedness float64
	// DistinctRatio is distinct values / rows of the relevant column, in
	// (0, 1]; the storage analyzer computes it per encoded column.
	DistinctRatio float64
	// Encoding is the storage encoding the call reads ("flat", "dict",
	// "rle", "for"), "" when unknown or not applicable.
	Encoding string
}

// selBuckets is the number of selectivity quantile buckets Bucket uses.
// Four (quartiles) keeps per-bucket sample counts healthy: contextual
// policies split their observations across buckets, and finer bucketing
// would starve each bucket's bandit of measurements.
const selBuckets = 4

// Bucket maps the features onto a small stable context key: the
// selectivity quartile plus the encoding kind. Contextual policies key
// per-bucket arm statistics on it. Invalid features map to the empty
// bucket, so a policy bucketing on Features degrades to one context-free
// bandit when no operator supplies context.
func (f Features) Bucket() string {
	if !f.Valid {
		return ""
	}
	s := f.Selectivity
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	q := int(s * selBuckets)
	if q == selBuckets {
		q = selBuckets - 1
	}
	b := "s" + strconv.Itoa(q)
	if f.Encoding != "" {
		b += "/" + f.Encoding
	}
	return b
}
