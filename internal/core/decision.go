package core

import "strings"

// Decision is an operator-level decision point: a named set of arms
// ("hash", "merge", "bloomhash"; a partition fan-out; a table sizing) with
// a cost signal, chosen per plan position by the same policy machinery
// that picks primitive flavors. Where an Instance's arms are the flavors
// of a dictionary primitive, a Decision's arms are whatever strategies the
// operator enumerates — the generalization Cuttlefish showed works one
// level above primitives.
//
// A Decision is resolved far less often than a primitive is called
// (typically once per operator Open), so its cost signal is coarse: the
// operator reports, per resolution, the tuples the strategy processed and
// the cycles (or nanoseconds — units only need to be consistent per
// decision name) it attributes to the strategy.
type Decision struct {
	Name  string   // decision kind, e.g. "join-strategy"
	Label string   // plan-position label, e.g. "Q3/hj1/strategy"
	Arms  []string // stable arm names, in arm order

	chooser Chooser

	// Profiling, mirroring Instance.
	Calls   int
	Tuples  int64
	Cycles  float64
	PerArm  []FlavorStats
	LastArm int
}

// decisionSigPrefix namespaces decision identities away from dictionary
// primitive signatures in chooser factories and knowledge caches.
const decisionSigPrefix = "decision:"

// DecisionSig returns the signature-shaped identity of a decision kind;
// it flows through InstanceChooserFactory and the knowledge cache exactly
// like a primitive signature, so "decision:join-strategy@Q3/hj1/strategy"
// and "sel_htlookup_slng_col@Q3/hj1/..." live in one namespace.
func DecisionSig(name string) string { return decisionSigPrefix + name }

// IsDecisionSig reports whether a signature names a decision rather than a
// dictionary primitive — the test chooser factories use it to pin flavors
// while leaving operator strategies at their defaults (or vice versa).
func IsDecisionSig(sig string) bool { return strings.HasPrefix(sig, decisionSigPrefix) }

// NewDecision builds a decision point over the named arms using the given
// chooser (constructed for len(arms) arms).
func NewDecision(name, label string, arms []string, chooser Chooser) *Decision {
	return &Decision{
		Name: name, Label: label, Arms: arms,
		chooser: chooser,
		PerArm:  make([]FlavorStats, len(arms)),
	}
}

// Chooser exposes the decision's policy.
func (d *Decision) Chooser() Chooser { return d.chooser }

// Choose resolves the decision under the given features and returns the
// arm index (clamped — a misbehaving policy must not crash the operator).
// Single-arm decisions short-circuit.
func (d *Decision) Choose(feat Features) int {
	arm := 0
	if len(d.Arms) > 1 {
		arm = d.chooser.Choose(ChooseContext{Feat: feat})
		if arm < 0 || arm >= len(d.Arms) {
			arm = 0
		}
	}
	d.LastArm = arm
	return arm
}

// Observe reports the measured outcome of the most recent Choose: how many
// tuples the chosen strategy processed and what it cost. Operators call it
// once per resolution (typically at Close), after the cost is known.
func (d *Decision) Observe(tuples int, cost float64) {
	d.Calls++
	d.Tuples += int64(tuples)
	d.Cycles += cost
	fs := &d.PerArm[d.LastArm]
	fs.Calls++
	fs.Tuples += int64(tuples)
	fs.Cycles += cost
	d.chooser.Observe(Observation{Arm: d.LastArm, Tuples: tuples, Cycles: cost})
}

// BestMeasuredArm returns the arm with the lowest measured mean cost among
// arms that processed at least one tuple, or -1.
func (d *Decision) BestMeasuredArm() int {
	best, bestCost := -1, 0.0
	for i := range d.PerArm {
		fs := &d.PerArm[i]
		if fs.Tuples == 0 {
			continue
		}
		if c := fs.CyclesPerTuple(); best < 0 || c < bestCost {
			best, bestCost = i, c
		}
	}
	return best
}

// DecisionAdaptationCost sums, over multi-arm decisions, total resolutions
// and resolutions that used an arm other than the decision's measured best
// — the operator-level analogue of AdaptationCost, folded into the same
// off-best accounting by the service and the bench harness.
func DecisionAdaptationCost(ds []*Decision) (adaptive, offBest int64) {
	for _, d := range ds {
		if len(d.Arms) <= 1 {
			continue
		}
		adaptive += int64(d.Calls)
		if best := d.BestMeasuredArm(); best >= 0 {
			offBest += int64(d.Calls - d.PerArm[best].Calls)
		}
	}
	return adaptive, offBest
}
