package core

import "math/rand"

// EpsGreedy is the classic ε-greedy strategy: with probability eps explore
// a uniformly random arm, otherwise exploit the arm with the best
// all-history mean. Its regret grows linearly (§3.2).
type EpsGreedy struct {
	eps  float64
	n    int
	rng  *rand.Rand
	mean armMeans
}

// NewEpsGreedy returns an ε-greedy policy over n arms.
func NewEpsGreedy(n int, eps float64, rng *rand.Rand) *EpsGreedy {
	return &EpsGreedy{eps: eps, n: n, rng: rng, mean: newArmMeans(n)}
}

// Name implements Chooser.
func (e *EpsGreedy) Name() string { return "eps-greedy" }

// Choose implements Chooser.
func (e *EpsGreedy) Choose(ChooseContext) int {
	if e.rng.Float64() < e.eps {
		return e.rng.Intn(e.n)
	}
	return e.mean.best()
}

// Observe implements Chooser.
func (e *EpsGreedy) Observe(o Observation) {
	e.mean.observe(o.Arm, o.Tuples, o.Cycles)
}

// SeedPriors implements WarmStarter.
func (e *EpsGreedy) SeedPriors(priors []float64) { e.mean.seed(priors) }

// Snapshot implements Snapshotter.
func (e *EpsGreedy) Snapshot() ([]float64, []bool) { return e.mean.snapshot() }

// EpsFirst explores uniformly for the first eps*horizon calls and then
// commits to the best mean for the rest of the query ("it only tests all
// flavors at the beginning and then sticks to its choice", §3.2).
type EpsFirst struct {
	n            int
	exploreCalls int
	calls        int
	rng          *rand.Rand
	mean         armMeans
	committed    int
}

// NewEpsFirst returns an ε-first policy over n arms. horizon is the
// expected number of calls in a query (the paper's traces have 16K-32K).
func NewEpsFirst(n int, eps float64, horizon int, rng *rand.Rand) *EpsFirst {
	ex := int(eps * float64(horizon))
	if ex < n {
		ex = n // at least one look at each arm
	}
	return &EpsFirst{n: n, exploreCalls: ex, rng: rng, mean: newArmMeans(n), committed: -1}
}

// Name implements Chooser.
func (e *EpsFirst) Name() string { return "eps-first" }

// Choose implements Chooser.
func (e *EpsFirst) Choose(ChooseContext) int {
	if e.calls < e.exploreCalls {
		// Deterministic sweep guarantees coverage of all arms even for
		// short exploration budgets; ties with the paper's description
		// of "testing all flavors at the beginning".
		return e.calls % e.n
	}
	if e.committed < 0 {
		e.committed = e.mean.best()
	}
	return e.committed
}

// Observe implements Chooser.
func (e *EpsFirst) Observe(o Observation) {
	e.calls++
	e.mean.observe(o.Arm, o.Tuples, o.Cycles)
}

// SeedPriors implements WarmStarter. ε-first explores only to gather the
// knowledge it commits to; when every arm arrives with a prior there is
// nothing left to gather, so the exploration phase is skipped outright —
// the policy's whole exploration budget is exactly the cold-start tax a
// warm start exists to remove.
func (e *EpsFirst) SeedPriors(priors []float64) {
	e.mean.seed(priors)
	if e.calls > 0 {
		return
	}
	for i := 0; i < e.n; i++ {
		if e.mean.tuples[i] == 0 {
			return // an arm is still unknown: keep exploring
		}
	}
	e.exploreCalls = 0
}

// Snapshot implements Snapshotter.
func (e *EpsFirst) Snapshot() ([]float64, []bool) { return e.mean.snapshot() }

// EpsDecreasing is ε-greedy with ε_t = min(1, c/t): exploration decays at
// rate 1/n, which achieves logarithmic regret for stationary rewards
// (Auer et al., cited as [2] in the paper).
type EpsDecreasing struct {
	c     float64
	n     int
	calls int
	rng   *rand.Rand
	mean  armMeans
}

// NewEpsDecreasing returns an ε-decreasing policy over n arms with scale c.
func NewEpsDecreasing(n int, c float64, rng *rand.Rand) *EpsDecreasing {
	return &EpsDecreasing{c: c, n: n, rng: rng, mean: newArmMeans(n)}
}

// Name implements Chooser.
func (e *EpsDecreasing) Name() string { return "eps-decreasing" }

// Choose implements Chooser.
func (e *EpsDecreasing) Choose(ChooseContext) int {
	eps := 1.0
	if e.calls > 0 {
		eps = e.c / float64(e.calls)
		if eps > 1 {
			eps = 1
		}
	}
	if e.rng.Float64() < eps {
		return e.rng.Intn(e.n)
	}
	return e.mean.best()
}

// Observe implements Chooser.
func (e *EpsDecreasing) Observe(o Observation) {
	e.calls++
	e.mean.observe(o.Arm, o.Tuples, o.Cycles)
}

// SeedPriors implements WarmStarter.
func (e *EpsDecreasing) SeedPriors(priors []float64) { e.mean.seed(priors) }

// Snapshot implements Snapshotter.
func (e *EpsDecreasing) Snapshot() ([]float64, []bool) { return e.mean.snapshot() }
