package core

import (
	"math"
	"math/rand"
)

// Thompson is Thompson sampling over windowed costs: each arm carries a
// Gaussian belief about its cycles/tuple cost whose mean and variance are
// exponentially windowed estimates of recent observations. Selection draws
// one sample per arm from
//
//	Normal(mean[i], sd[i] / sqrt(plays[i]))
//
// and runs the arm with the cheapest draw, so exploration is proportional
// to posterior uncertainty: rarely played or noisy arms get sampled wide
// and keep a chance of being tried, well-known arms concentrate on their
// mean. The windowed estimates (rather than conjugate all-history updates)
// keep the belief honest under the paper's non-stationary flavor costs.
type Thompson struct {
	n    int
	rng  *rand.Rand
	w    windowedArms
	varw []float64 // windowed squared deviation per arm
}

// NewThompson returns a Thompson-sampling policy over n arms; alpha is the
// EWMA window weight.
func NewThompson(n int, alpha float64, rng *rand.Rand) *Thompson {
	return &Thompson{
		n:    n,
		rng:  rng,
		w:    newWindowedArms(n, alpha),
		varw: make([]float64, n),
	}
}

// Name implements Chooser.
func (t *Thompson) Name() string { return "thompson" }

// sd returns the posterior draw width of an arm: the windowed standard
// deviation with a floor of 5% of the mean, shrunk by replication. The
// floor keeps a minimum of exploration alive even when a window happens to
// measure identical costs, without drowning the 10-30% cost gaps that
// separate real flavors in steady-state sampling noise.
func (t *Thompson) sd(i int) float64 {
	s := math.Sqrt(t.varw[i])
	if floor := 0.05 * t.w.cost[i]; s < floor {
		s = floor
	}
	return s / math.Sqrt(t.w.plays[i])
}

// Choose implements Chooser.
func (t *Thompson) Choose(ChooseContext) int {
	// Every arm gets one cost-bearing look before sampling applies.
	if i := t.w.unplayed(); i >= 0 {
		return i
	}
	// Every played arm has a finite mean, so a best draw always exists.
	best, bestDraw := 0, math.Inf(1)
	for i := 0; i < t.n; i++ {
		draw := t.w.cost[i] + t.sd(i)*t.rng.NormFloat64()
		if draw < bestDraw {
			best, bestDraw = i, draw
		}
	}
	return best
}

// Observe implements Chooser.
func (t *Thompson) Observe(o Observation) {
	d, ok := t.w.observe(o)
	if !ok {
		return
	}
	t.varw[o.Arm] = (1 - t.w.alpha) * (t.varw[o.Arm] + t.w.alpha*d*d)
}

// SeedPriors implements WarmStarter: seeded arms enter with a few
// pseudo-plays at the prior mean and the same belief width the sd floor
// would assign a live-measured arm, so the initial look-at-every-arm round
// skips them and a warm session samples no wider than a converged cold one
// — while the windowed mean still lets live evidence overturn a stale
// prior within a handful of observations.
func (t *Thompson) SeedPriors(priors []float64) { t.w.seed(priors) }

// Snapshot implements Snapshotter.
func (t *Thompson) Snapshot() ([]float64, []bool) { return t.w.snapshot() }
