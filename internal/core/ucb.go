package core

import "math"

// UCB1 adapts the classic upper-confidence-bound policy (Auer et al.) to
// cost minimization over non-stationary flavor costs: each arm keeps an
// exponentially windowed mean cost (cycles/tuple) instead of an all-history
// mean, and selection takes the arm with the lowest confidence bound
//
//	cost[i] - c * scale * sqrt(ln(t) / plays[i])
//
// where scale is the cheapest known cost (the bound must be unitful —
// virtual cycle costs are not rewards in [0,1]). Arms without any
// cost-bearing observation are tried first, and the decay of the window
// keeps the policy responsive when a flavor deteriorates.
type UCB1 struct {
	n int
	c float64 // exploration coefficient
	w windowedArms
}

// NewUCB1 returns a UCB1 policy over n arms. c scales the exploration
// bonus; alpha is the EWMA window weight. The default c is well below the
// classic 2: flavor-cost gaps are typically 10-30% of the cost itself, and
// with the bonus scaled by the cheapest cost a large c degenerates into
// round-robin for the 10^2-10^4 calls a primitive instance actually gets.
func NewUCB1(n int, c, alpha float64) *UCB1 {
	if c <= 0 {
		c = 0.25
	}
	return &UCB1{n: n, c: c, w: newWindowedArms(n, alpha)}
}

// Name implements Chooser.
func (u *UCB1) Name() string { return "ucb1" }

// Choose implements Chooser.
func (u *UCB1) Choose(ChooseContext) int {
	// Every arm gets one cost-bearing look before the bound applies.
	if i := u.w.unplayed(); i >= 0 {
		return i
	}
	// Every played arm has a finite cost, so scale is finite too.
	scale := math.Inf(1)
	for i := 0; i < u.n; i++ {
		if u.w.cost[i] < scale {
			scale = u.w.cost[i]
		}
	}
	if scale <= 0 || math.IsInf(scale, 1) {
		scale = 1
	}
	logT := math.Log(u.w.totalPlays() + 1)
	best, bestScore := 0, math.Inf(1)
	for i := 0; i < u.n; i++ {
		score := u.w.cost[i] - u.c*scale*math.Sqrt(logT/u.w.plays[i])
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// Observe implements Chooser.
func (u *UCB1) Observe(o Observation) {
	u.w.observe(o)
}

// SeedPriors implements WarmStarter: seeded arms enter with a few
// pseudo-plays at the prior cost, so the initial one-look-per-arm round
// skips them and the confidence bound treats cached knowledge as evidence
// rather than flagging every seeded arm as maximally under-explored.
func (u *UCB1) SeedPriors(priors []float64) { u.w.seed(priors) }

// Snapshot implements Snapshotter.
func (u *UCB1) Snapshot() ([]float64, []bool) { return u.w.snapshot() }
