package core

import "testing"

func TestDecisionSigNamespace(t *testing.T) {
	sig := DecisionSig("join-strategy")
	if sig != "decision:join-strategy" {
		t.Errorf("DecisionSig = %q", sig)
	}
	if !IsDecisionSig(sig) {
		t.Error("IsDecisionSig should accept decision signatures")
	}
	if IsDecisionSig("sel_htlookup_slng_col") {
		t.Error("IsDecisionSig should reject primitive signatures")
	}
}

func TestDecisionChooseObserveProfile(t *testing.T) {
	d := NewDecision("join-strategy", "Q3/hj0/strategy", []string{"hash", "merge"}, NewRoundRobin(2))
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		arm := d.Choose(Features{Valid: true, Selectivity: 0.5})
		seen[arm] = true
		if arm != d.LastArm {
			t.Fatalf("Choose returned %d but LastArm is %d", arm, d.LastArm)
		}
		cost := 100.0
		if arm == 1 {
			cost = 400
		}
		d.Observe(1000, cost)
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("round-robin decision visited arms %v, want both", seen)
	}
	if d.Calls != 4 || d.Tuples != 4000 {
		t.Errorf("Calls=%d Tuples=%d, want 4 and 4000", d.Calls, d.Tuples)
	}
	if got := d.BestMeasuredArm(); got != 0 {
		t.Errorf("BestMeasuredArm = %d, want 0", got)
	}
	adaptive, offBest := DecisionAdaptationCost([]*Decision{d})
	if adaptive != 4 || offBest != 2 {
		t.Errorf("DecisionAdaptationCost = (%d, %d), want (4, 2)", adaptive, offBest)
	}
}

// TestDecisionClampsMisbehavingChooser: out-of-range arms must fall back
// to arm 0 rather than crash the operator — this is what makes forcing
// arm N safe on decisions with fewer than N+1 arms (the anti-join
// strategy set has no bloomhash arm).
func TestDecisionClampsMisbehavingChooser(t *testing.T) {
	d := NewDecision("join-strategy", "L", []string{"hash", "merge"}, NewFixed(7))
	if arm := d.Choose(Features{}); arm != 0 {
		t.Errorf("out-of-range choice resolved to arm %d, want clamped 0", arm)
	}
	d.Observe(10, 1)
	if d.PerArm[0].Calls != 1 {
		t.Error("observation did not land on the clamped arm")
	}
}

// TestDecisionSingleArmShortCircuits: one-arm decisions never consult the
// policy and report no adaptation cost.
func TestDecisionSingleArmShortCircuits(t *testing.T) {
	d := NewDecision("parallelism", "L", []string{"only"}, NewFixed(3))
	if arm := d.Choose(Features{}); arm != 0 {
		t.Errorf("single-arm decision chose %d", arm)
	}
	adaptive, offBest := DecisionAdaptationCost([]*Decision{d})
	if adaptive != 0 || offBest != 0 {
		t.Errorf("single-arm decision counted toward adaptation cost: (%d, %d)", adaptive, offBest)
	}
}
