package core

import "math"

// seedPseudoPlays is how much evidence a cached prior counts for when
// seeding a windowed policy: enough that confidence bounds and posterior
// draws trust the cache, little enough that live measurements overturn a
// stale prior within a handful of observations.
const seedPseudoPlays = 4

// windowedArms is the shared per-arm bookkeeping of the windowed-cost
// policies (ucb1, thompson): an exponentially windowed mean cost
// (cycles/tuple, +Inf = unknown), a play count, and the session-measured
// mask the Snapshotter capability exports. It is the windowed counterpart
// of armMeans, which keeps all-history means for the ε-strategies.
type windowedArms struct {
	alpha float64
	cost  []float64
	plays []float64
	live  []bool
}

func newWindowedArms(n int, alpha float64) windowedArms {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	w := windowedArms{
		alpha: alpha,
		cost:  make([]float64, n),
		plays: make([]float64, n),
		live:  make([]bool, n),
	}
	for i := range w.cost {
		w.cost[i] = math.Inf(1)
	}
	return w
}

// unplayed returns the first arm with no plays, or -1. Zero-tuple calls do
// not count as plays (see observe), so an arm keeps its mandatory first
// look until a call actually carries cost signal — otherwise one empty
// vector during the initial sweep would park the arm at +Inf forever and
// starve it out of every later comparison.
func (w *windowedArms) unplayed() int {
	for i := range w.plays {
		if w.plays[i] == 0 {
			return i
		}
	}
	return -1
}

// totalPlays sums the per-arm plays (including seeded pseudo-plays).
func (w *windowedArms) totalPlays() float64 {
	var t float64
	for _, p := range w.plays {
		t += p
	}
	return t
}

// observe folds one observation into the window and reports the update
// delta (new cost - previous estimate; 0 on an arm's first measurement).
// Calls without tuples carry no per-tuple cost signal and are ignored
// entirely, ok = false.
func (w *windowedArms) observe(o Observation) (delta float64, ok bool) {
	if o.Arm < 0 || o.Arm >= len(w.cost) {
		return 0, false
	}
	per := o.Cost()
	if math.IsInf(per, 1) {
		return 0, false
	}
	w.plays[o.Arm]++
	w.live[o.Arm] = true
	if math.IsInf(w.cost[o.Arm], 1) {
		w.cost[o.Arm] = per
		return 0, true
	}
	delta = per - w.cost[o.Arm]
	w.cost[o.Arm] += w.alpha * delta
	return delta, true
}

// seed installs priors on arms with no plays, each counting as
// seedPseudoPlays of evidence; the live mask stays false.
func (w *windowedArms) seed(priors []float64) {
	for i := 0; i < len(w.cost) && i < len(priors); i++ {
		if usablePrior(priors[i]) && w.plays[i] == 0 {
			w.cost[i] = priors[i]
			w.plays[i] = seedPseudoPlays
		}
	}
}

// snapshot exports cost estimates and the session-measured mask (copies).
func (w *windowedArms) snapshot() ([]float64, []bool) {
	costs := append([]float64(nil), w.cost...)
	live := append([]bool(nil), w.live...)
	return costs, live
}
