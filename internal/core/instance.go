package core

import (
	"microadapt/internal/aph"
	"microadapt/internal/hw"
)

// FlavorStats aggregates the profiling of one flavor within one instance.
type FlavorStats struct {
	Calls  int
	Tuples int64
	Cycles float64
}

// CyclesPerTuple returns the flavor's mean cost within the instance.
func (s FlavorStats) CyclesPerTuple() float64 {
	if s.Tuples == 0 {
		return 0
	}
	return s.Cycles / float64(s.Tuples)
}

// Instance is a primitive instance: one occurrence of a primitive function
// in a query plan (§1.1 "Primitive Instances"). Different instances of the
// same primitive process different data streams, so each carries its own
// profiling state, Approximated Performance History, flavor chooser, and
// virtual-hardware state (its branch predictor site).
type Instance struct {
	Prim  *Primitive
	Label string // plan-unique name, e.g. "Q12/select_>=_sint_col_sint_val#1"

	chooser Chooser
	hist    *aph.History

	// Classical profiling (totals).
	Calls    int
	Tuples   int64
	Cycles   float64
	Produced int64 // output tuples (selection primitives: qualifying tuples)

	// Per-flavor profiling.
	PerFlavor []FlavorStats

	// Pred is the branch predictor state of this instance's data-
	// dependent branch site, shared across flavors (it is the same
	// branch in all builds).
	Pred hw.BranchPredictor

	// LastArm is the flavor used by the most recent call.
	LastArm int
}

// NewInstance builds an instance of prim using the given chooser. The
// chooser must have been constructed for len(prim.Flavors) arms.
func NewInstance(prim *Primitive, label string, chooser Chooser) *Instance {
	return &Instance{
		Prim:      prim,
		Label:     label,
		chooser:   chooser,
		hist:      aph.New(),
		PerFlavor: make([]FlavorStats, len(prim.Flavors)),
	}
}

// Chooser exposes the instance's policy.
func (inst *Instance) Chooser() Chooser { return inst.chooser }

// History returns the instance's Approximated Performance History.
func (inst *Instance) History() *aph.History { return inst.hist }

// CyclesPerTuple returns the instance's overall mean cost.
func (inst *Instance) CyclesPerTuple() float64 {
	if inst.Tuples == 0 {
		return 0
	}
	return inst.Cycles / float64(inst.Tuples)
}

// BestMeasuredFlavor returns the arm with the lowest measured mean cost
// (cycles/tuple) among flavors that processed at least one tuple, or -1
// when nothing was measured yet.
func (inst *Instance) BestMeasuredFlavor() int {
	best, bestCost := -1, 0.0
	for i := range inst.PerFlavor {
		fs := &inst.PerFlavor[i]
		if fs.Tuples == 0 {
			continue
		}
		if c := fs.CyclesPerTuple(); best < 0 || c < bestCost {
			best, bestCost = i, c
		}
	}
	return best
}

// AdaptationCost sums, over instances with more than one flavor, the total
// adaptive calls and the calls that used a flavor other than the
// instance's measured best — the exploration (plus wrong-exploitation)
// overhead that warm starts are meant to shrink. The service and the
// bench harness both report it; keeping the accounting here keeps their
// numbers comparable.
func AdaptationCost(insts []*Instance) (adaptive, offBest int64) {
	for _, inst := range insts {
		if len(inst.Prim.Flavors) <= 1 {
			continue
		}
		adaptive += int64(inst.Calls)
		if best := inst.BestMeasuredFlavor(); best >= 0 {
			offBest += int64(inst.Calls - inst.PerFlavor[best].Calls)
		}
	}
	return adaptive, offBest
}

// Run executes one call of the instance: it asks the chooser for a flavor,
// invokes it, and feeds the observed (tuples, cycles) back into the
// chooser, the APH and the profiling counters. It returns the number of
// produced tuples.
func (inst *Instance) Run(ctx *ExecCtx, c *Call) int {
	c.Inst = inst
	if !c.Feat.Valid {
		// Operators that know better (encoded scans, joins) set Feat
		// themselves; everything else gets the instance's running output
		// selectivity as the default context — the same estimate the §4.2
		// heuristics read, now visible to every contextual policy.
		c.Feat.Valid = true
		if inst.Tuples > 0 {
			c.Feat.Selectivity = float64(inst.Produced) / float64(inst.Tuples)
		} else {
			c.Feat.Selectivity = 1
		}
	}
	arm := 0
	if len(inst.Prim.Flavors) > 1 {
		arm = inst.chooser.Choose(ChooseContext{Inst: inst, Call: c, Feat: c.Feat})
		if arm < 0 || arm >= len(inst.Prim.Flavors) {
			arm = 0 // a misbehaving policy must not crash the engine
		}
	}
	fl := inst.Prim.Flavors[arm]
	produced, cycles := fl.Fn(ctx, c)

	tuples := c.Live()
	inst.LastArm = arm
	inst.Calls++
	inst.Tuples += int64(tuples)
	inst.Cycles += cycles
	inst.Produced += int64(produced)
	fs := &inst.PerFlavor[arm]
	fs.Calls++
	fs.Tuples += int64(tuples)
	fs.Cycles += cycles
	inst.hist.Add(tuples, cycles)
	inst.chooser.Observe(Observation{Arm: arm, Tuples: tuples, Cycles: cycles})
	ctx.PrimCycles += cycles
	return produced
}
