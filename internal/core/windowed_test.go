package core

import (
	"math/rand"
	"testing"
)

// TestWindowedPoliciesSurviveZeroTupleFirstLook is the regression test for
// the starvation bug: if an arm's mandatory first look lands on a
// zero-tuple call (an empty selection vector), the call carries no cost
// signal — the arm must keep its first-look eligibility and eventually be
// measured, not get parked at +Inf and excluded for the session.
func TestWindowedPoliciesSurviveZeroTupleFirstLook(t *testing.T) {
	mks := map[string]func() Chooser{
		"ucb1":     func() Chooser { return NewUCB1(3, 0, 0) },
		"thompson": func() Chooser { return NewThompson(3, 0, rand.New(rand.NewSource(9))) },
	}
	for name, mk := range mks {
		ch := mk()
		// The first call into every arm is an empty vector.
		for i := 0; i < 3; i++ {
			arm := ch.Choose(ChooseContext{})
			ch.Observe(Observation{Arm: arm, Tuples: 0, Cycles: 10})
		}
		// From here calls carry tuples; arm 0 is clearly cheapest.
		use := make([]int, 3)
		for call := 0; call < 600; call++ {
			arm := ch.Choose(ChooseContext{})
			use[arm]++
			ch.Observe(Observation{Arm: arm, Tuples: 100, Cycles: []float64{2, 8, 9}[arm] * 100})
		}
		for a := 0; a < 3; a++ {
			if use[a] == 0 {
				t.Errorf("%s: arm %d starved after a zero-tuple first look (use=%v)", name, a, use)
			}
		}
		if use[0] < 400 {
			t.Errorf("%s: cheapest arm used %d/600, want dominant (use=%v)", name, use[0], use)
		}
	}
}

// TestWindowedPoliciesAllZeroTupleStream: a stream with no cost signal at
// all must stay in range and not panic (the arm choice is arbitrary).
func TestWindowedPoliciesAllZeroTupleStream(t *testing.T) {
	for _, ch := range []Chooser{NewUCB1(2, 0, 0), NewThompson(2, 0, rand.New(rand.NewSource(10)))} {
		for call := 0; call < 200; call++ {
			arm := ch.Choose(ChooseContext{})
			if arm < 0 || arm >= 2 {
				t.Fatalf("%s chose out-of-range arm %d", ch.Name(), arm)
			}
			ch.Observe(Observation{Arm: arm, Tuples: 0, Cycles: 5})
		}
	}
}
