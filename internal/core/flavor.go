// Package core implements the Micro Adaptivity framework of the paper: the
// Primitive Dictionary that stores multiple implementations ("flavors") per
// primitive signature, per-plan primitive instances with full profiling and
// Approximated Performance Histories, and the family of multi-armed-bandit
// learning algorithms (vw-greedy and the ε-strategies it is evaluated
// against) that pick a flavor at every call.
package core

import (
	"fmt"
	"sort"
	"sync"

	"microadapt/internal/hw"
	"microadapt/internal/vector"
)

// Call carries the arguments of one primitive call. The layout mirrors
// Vectorwise primitive signatures: N input tuples, an optional selection
// vector, input vectors (column or single-value constant parameters), and
// either an output vector (map/aggr primitives) or an output selection
// buffer (selection primitives).
type Call struct {
	N      int              // tuples in the input vectors
	Sel    vector.Sel       // input selection vector; nil = all N live
	Cap    int              // nominal vector capacity when N varies per call (0 = N)
	In     []*vector.Vector // input parameters in signature order
	Res    *vector.Vector   // output vector for map/aggregate primitives
	SelOut []int32          // output selection buffer for selection primitives
	Aux    any              // operator-supplied state (bloom filter, hash table, ...)
	Feat   Features         // cheap per-call context for contextual policies
	Inst   *Instance        // back pointer set by Instance.Run
}

// Live returns the number of live input tuples of the call.
func (c *Call) Live() int {
	if c.Sel != nil {
		return len(c.Sel)
	}
	return c.N
}

// Density returns live tuples / vector capacity: the fill factor that
// drives call-overhead amortization (the border regions of Figure 4c/d).
func (c *Call) Density() float64 {
	den := c.N
	if c.Cap > den {
		den = c.Cap
	}
	if den == 0 {
		return 1
	}
	return float64(c.Live()) / float64(den)
}

// PrimFn is one flavor's implementation: it computes the real result into
// c.Res or c.SelOut and returns the number of produced tuples along with
// the virtual cycle cost of the call under ctx.Machine (see internal/hw).
type PrimFn func(ctx *ExecCtx, c *Call) (produced int, cycles float64)

// Flavor is one implementation of a primitive, with the meta-information
// the Primitive Dictionary keeps per flavor (§1.1 "Flavors"): the source
// that produced it (compiler build, algorithmic variant) and free-form tags
// used by heuristics and the experiment harness.
type Flavor struct {
	Name   string            // unique within a primitive, e.g. "branching/gcc/u8"
	Source string            // flavor provenance, e.g. compiler name
	Tags   map[string]string // variant axes: branch=y/n, fission=y/n, full=y/n, unroll=8/1, compiler=...
	Fn     PrimFn
}

// Tag returns the flavor's tag value or "" when absent.
func (f *Flavor) Tag(key string) string {
	if f.Tags == nil {
		return ""
	}
	return f.Tags[key]
}

// Primitive is a dictionary entry: a signature plus its registered flavors.
type Primitive struct {
	Sig     string // e.g. "select_<_sint_col_sint_val"
	Class   string // cost/flavor class, one of the hw.Class* constants
	Flavors []*Flavor
}

// FlavorIndex returns the index of the flavor with the given name, or -1.
func (p *Primitive) FlavorIndex(name string) int {
	for i, f := range p.Flavors {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// FlavorByTag returns the index of the first flavor whose tag key equals
// val, or -1.
func (p *Primitive) FlavorByTag(key, val string) int {
	for i, f := range p.Flavors {
		if f.Tag(key) == val {
			return i
		}
	}
	return -1
}

// Dictionary is the Primitive Dictionary of the query evaluator, extended
// (as in the paper) to map each signature to a list of flavors instead of a
// single function pointer. Registration is dynamic: flavor libraries can be
// added at startup or while the system is active, so access is guarded.
type Dictionary struct {
	mu    sync.RWMutex
	prims map[string]*Primitive
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{prims: make(map[string]*Primitive)}
}

// Register creates the signature entry if needed and returns it.
func (d *Dictionary) Register(sig, class string) *Primitive {
	d.mu.Lock()
	defer d.mu.Unlock()
	if p, ok := d.prims[sig]; ok {
		return p
	}
	p := &Primitive{Sig: sig, Class: class}
	d.prims[sig] = p
	return p
}

// AddFlavor registers a flavor under the signature, creating the entry when
// absent. It returns an error on duplicate flavor names.
func (d *Dictionary) AddFlavor(sig, class string, f *Flavor) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.prims[sig]
	if !ok {
		p = &Primitive{Sig: sig, Class: class}
		d.prims[sig] = p
	}
	for _, ex := range p.Flavors {
		if ex.Name == f.Name {
			return fmt.Errorf("core: duplicate flavor %q for %q", f.Name, sig)
		}
	}
	p.Flavors = append(p.Flavors, f)
	return nil
}

// Lookup resolves a signature.
func (d *Dictionary) Lookup(sig string) (*Primitive, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p, ok := d.prims[sig]
	return p, ok
}

// MustLookup resolves a signature and panics when it is unknown — primitive
// resolution failures are programming errors in plan construction.
func (d *Dictionary) MustLookup(sig string) *Primitive {
	if p, ok := d.Lookup(sig); ok {
		return p
	}
	panic("core: unknown primitive signature " + sig)
}

// Sigs returns all registered signatures, sorted.
func (d *Dictionary) Sigs() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.prims))
	for s := range d.prims {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// NumFlavors returns the flavor count of a signature, 0 when unknown.
func (d *Dictionary) NumFlavors(sig string) int {
	if p, ok := d.Lookup(sig); ok {
		return len(p.Flavors)
	}
	return 0
}

// ExecCtx carries per-query virtual-hardware state: the machine profile the
// query "runs on", the shared last-level-cache simulator, and the cycle
// accounting that the experiment harness reads back (Table 1's stage
// breakdown and all per-primitive measurements).
type ExecCtx struct {
	Machine *hw.Machine
	LLC     *hw.Cache

	// Cycle accounting, by stage (Table 1 of the paper).
	PreCycles      float64 // query preprocessing (plan build, resolution)
	PrimCycles     float64 // inside primitive functions
	OperatorCycles float64 // execute-stage cycles outside primitives
	PostCycles     float64 // result delivery
}

// NewExecCtx builds an execution context for the machine, including a
// last-level-cache simulator of the machine's LLC size.
func NewExecCtx(m *hw.Machine) *ExecCtx {
	return &ExecCtx{
		Machine: m,
		LLC:     hw.NewCache(m.LLCBytes, m.CacheLine, 8),
	}
}

// ExecuteCycles is the total execute-stage cost (primitives + operators).
func (ctx *ExecCtx) ExecuteCycles() float64 { return ctx.PrimCycles + ctx.OperatorCycles }

// TotalCycles is the end-to-end query cost.
func (ctx *ExecCtx) TotalCycles() float64 {
	return ctx.PreCycles + ctx.ExecuteCycles() + ctx.PostCycles
}

// ResetCycles zeroes the stage accounting (the LLC state is kept).
func (ctx *ExecCtx) ResetCycles() {
	ctx.PreCycles, ctx.PrimCycles, ctx.OperatorCycles, ctx.PostCycles = 0, 0, 0, 0
}
