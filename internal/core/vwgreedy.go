package core

import (
	"math"
	"math/rand"
)

// VWParams are the three tuning knobs of vw-greedy (§3.2). The algorithm
// assumes ExplorePeriod > ExploitPeriod and both are multiples of
// ExploreLength. In Vectorwise all three are powers of two so the phase
// tests compile to mask operations.
type VWParams struct {
	// ExplorePeriod: an exploration phase starts every this many calls.
	ExplorePeriod int
	// ExploitPeriod: between explorations, the best flavor is re-chosen
	// every this many calls (this is also how quickly deterioration of
	// the current best flavor is detected).
	ExploitPeriod int
	// ExploreLength: how many calls a randomly chosen exploration flavor
	// is kept.
	ExploreLength int
	// WarmupSkip: measurement windows ignore this many leading calls to
	// avoid charging instruction-cache misses to the flavor (the paper
	// uses 2).
	WarmupSkip int
	// InitialSweep: test every flavor once for ExploreLength calls at
	// query start — the extension the trace simulation of Table 5
	// prompted the authors to add.
	InitialSweep bool
}

// DefaultVWParams returns the parameters the trace study of Table 5 found
// best: (EXPLORE_PERIOD, EXPLOIT_PERIOD, EXPLORE_LENGTH) = (1024, 8, 2).
func DefaultVWParams() VWParams {
	return VWParams{ExplorePeriod: 1024, ExploitPeriod: 8, ExploreLength: 2, WarmupSkip: 2, InitialSweep: true}
}

// FilledWith returns the parameters with each unset (< 1) period/length
// field replaced by the corresponding field of def, leaving every field the
// caller did set untouched. WarmupSkip and InitialSweep pass through
// unconditionally: zero/false are meaningful values there, not "unset".
func (p VWParams) FilledWith(def VWParams) VWParams {
	if p.ExplorePeriod < 1 {
		p.ExplorePeriod = def.ExplorePeriod
	}
	if p.ExploitPeriod < 1 {
		p.ExploitPeriod = def.ExploitPeriod
	}
	if p.ExploreLength < 1 {
		p.ExploreLength = def.ExploreLength
	}
	return p
}

// DemoVWParams returns the parameters of the Figure 10 demonstration:
// (1024, 256, 32).
func DemoVWParams() VWParams {
	return VWParams{ExplorePeriod: 1024, ExploitPeriod: 256, ExploreLength: 32, WarmupSkip: 2, InitialSweep: true}
}

// Scaled returns the parameters divided by f (minimum 1 each), used when a
// workload has far fewer primitive calls than the paper's SF-100 runs.
func (p VWParams) Scaled(f int) VWParams {
	div := func(v int) int {
		v /= f
		if v < 1 {
			v = 1
		}
		return v
	}
	p.ExplorePeriod = div(p.ExplorePeriod)
	p.ExploitPeriod = div(p.ExploitPeriod)
	if p.ExploitPeriod > p.ExplorePeriod {
		p.ExploitPeriod = p.ExplorePeriod
	}
	if p.ExploreLength > p.ExploitPeriod {
		p.ExploreLength = p.ExploitPeriod
	}
	if p.ExploreLength < 1 {
		p.ExploreLength = 1
	}
	return p
}

// VWGreedy is the vw-greedy algorithm of Listing 8: ε-greedy restructured
// for non-stationary rewards by (1) alternating exploration and
// exploitation in a deterministic pattern and (2) ranking flavors by the
// mean cost of their most recent measurement window only, instead of an
// all-history mean.
type VWGreedy struct {
	p   VWParams
	n   int
	rng *rand.Rand

	cur   int // flavor in use
	calls int // total calls observed

	// Cumulative profiling counters (classical Vectorwise profiling).
	totTuples int64
	totCycles float64

	// Measurement window state, mirroring Listing 8.
	calcStart   int
	calcEnd     int
	nextExplore int
	prevTuples  int64
	prevCycles  float64

	// Knowledge: last measured average cost per flavor. measured marks
	// arms with any knowledge (including seeded priors); live marks arms
	// this chooser measured itself after construction — the distinction
	// that keeps knowledge caches from re-ingesting their own priors.
	avgCost  []float64
	measured []bool
	live     []bool

	sweep []int // arms the initial sweep still has to visit
}

// NewVWGreedy builds a cold-start vw-greedy chooser over n flavors.
func NewVWGreedy(n int, p VWParams, rng *rand.Rand) *VWGreedy {
	if p.ExplorePeriod < 1 {
		p = DefaultVWParams()
	}
	if p.ExploitPeriod < 1 {
		p.ExploitPeriod = 1
	}
	if p.ExploreLength < 1 {
		p.ExploreLength = 1
	}
	if p.WarmupSkip < 0 {
		p.WarmupSkip = 0
	}
	v := &VWGreedy{
		p:        p,
		n:        n,
		rng:      rng,
		avgCost:  make([]float64, n),
		measured: make([]bool, n),
		live:     make([]bool, n),
	}
	for i := range v.avgCost {
		v.avgCost[i] = math.Inf(1)
	}
	v.plan()
	return v
}

// NewVWGreedyWarm builds a vw-greedy chooser seeded with prior per-flavor
// cost estimates (cycles/tuple) observed elsewhere — by an earlier session,
// another worker, or a previous run of the same query. It is shorthand for
// NewVWGreedy followed by SeedPriors; see SeedPriors for the semantics.
func NewVWGreedyWarm(n int, p VWParams, rng *rand.Rand, priors []float64) *VWGreedy {
	v := NewVWGreedy(n, p, rng)
	v.SeedPriors(priors)
	return v
}

// SeedPriors implements WarmStarter. priors[i] < +Inf marks arm i as
// already measured at that cost: the chooser starts on the cheapest known
// arm and the initial sweep visits only arms with no prior. A nil or
// all-Inf priors slice leaves the cold-start behavior unchanged. Priors are
// only a starting point: the first measurement window on an arm overwrites
// its prior, so a stale or wrong prior costs at most one exploit period
// (the same bound as flavor deterioration, §3.2). Like every WarmStarter
// in the registry, priors never displace knowledge the chooser measured
// itself, so a late call (after observations) fills unknown arms at most.
func (v *VWGreedy) SeedPriors(priors []float64) {
	for i := 0; i < v.n && i < len(priors); i++ {
		if usablePrior(priors[i]) && !v.live[i] {
			v.avgCost[i] = priors[i]
			v.measured[i] = true
		}
	}
	if v.calls == 0 {
		v.plan()
	}
}

// plan (re)derives the start-of-query schedule from current knowledge:
// begin on the best-known arm, sweep only the arms with no knowledge.
func (v *VWGreedy) plan() {
	v.cur = v.best()
	v.sweep = v.sweep[:0]
	if v.p.InitialSweep {
		for i := 0; i < v.n; i++ {
			if i != v.cur && !v.measured[i] {
				v.sweep = append(v.sweep, i)
			}
		}
	}
	v.nextExplore = v.p.ExplorePeriod
	v.calcStart = v.warmup()
	v.calcEnd = v.calcStart + v.p.ExploreLength
}

func (v *VWGreedy) warmup() int {
	w := v.p.WarmupSkip
	if w >= v.p.ExploreLength {
		w = v.p.ExploreLength - 1
	}
	if w < 0 {
		w = 0
	}
	return w
}

// Name implements Chooser.
func (v *VWGreedy) Name() string { return "vw-greedy" }

// Params returns the active parameters.
func (v *VWGreedy) Params() VWParams { return v.p }

// Current returns the flavor currently in use (for tests/telemetry).
func (v *VWGreedy) Current() int { return v.cur }

// AvgCost returns the last windowed average cost of an arm (+Inf when the
// arm has not been measured yet).
func (v *VWGreedy) AvgCost(arm int) float64 { return v.avgCost[arm] }

// Snapshot implements Snapshotter: the most recent windowed average cost
// (cycles/tuple) of every arm, +Inf for arms never measured, plus the mask
// of arms this chooser measured itself after construction. Both slices are
// copies — they stay valid after the chooser moves on — and the costs are
// the exact shape SeedPriors accepts, so knowledge harvested from one
// session can seed the next.
func (v *VWGreedy) Snapshot() ([]float64, []bool) {
	costs := append([]float64(nil), v.avgCost...)
	live := append([]bool(nil), v.live...)
	return costs, live
}

// SessionMeasured reports whether the chooser itself measured the arm
// after construction. Seeded priors leave it false until the arm's first
// live measurement window completes; knowledge harvesters must skip
// non-live arms, or a warm-started chooser would echo the cache's own
// priors back into the cache as if they were fresh observations.
func (v *VWGreedy) SessionMeasured(arm int) bool { return v.live[arm] }

// Choose implements Chooser: vw-greedy switches flavors only at phase
// boundaries, handled in Observe, so Choose just returns the current one.
func (v *VWGreedy) Choose(ChooseContext) int { return v.cur }

// Observe implements Chooser. It is a faithful port of the vw-greedy
// function of Listing 8, extended with the initial sweep.
func (v *VWGreedy) Observe(o Observation) {
	// Classical primitive profiling.
	v.totCycles += o.Cycles
	v.totTuples += int64(o.Tuples)
	v.calls++

	if v.calls == v.calcEnd {
		// Average cost of the flavor over the window just completed.
		dt := v.totTuples - v.prevTuples
		if dt > 0 {
			v.avgCost[v.cur] = (v.totCycles - v.prevCycles) / float64(dt)
			v.measured[v.cur] = true
			v.live[v.cur] = true
		}

		var phaseLen int
		switch {
		case len(v.sweep) > 0:
			// Initial exploration: test every flavor not yet known (all of
			// them on a cold start, only unseeded ones on a warm start).
			v.cur = v.sweep[0]
			v.sweep = v.sweep[1:]
			phaseLen = v.p.ExploreLength
		case v.calls > v.nextExplore:
			// Perform exploration.
			v.nextExplore += v.p.ExplorePeriod
			v.cur = v.rng.Intn(v.n)
			phaseLen = v.p.ExploreLength
		default:
			// Perform exploitation.
			v.cur = v.best()
			phaseLen = v.p.ExploitPeriod
		}

		// Ignore the first WarmupSkip calls of the new phase to avoid
		// measuring instruction-cache misses.
		v.calcStart = v.calls + v.warmup()
		v.calcEnd = v.calcStart + phaseLen
	}
	if v.calls == v.calcStart {
		v.prevTuples = v.totTuples
		v.prevCycles = v.totCycles
	}
}

// best returns the flavor with the lowest windowed average cost; arms that
// were never measured lose to any measured arm, and the current arm wins
// ties so the algorithm does not churn.
func (v *VWGreedy) best() int {
	best := v.cur
	bestCost := v.avgCost[v.cur]
	for i := 0; i < v.n; i++ {
		if v.avgCost[i] < bestCost {
			best, bestCost = i, v.avgCost[i]
		}
	}
	return best
}
