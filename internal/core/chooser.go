package core

import "math"

// ChooseContext carries everything a policy may inspect before picking an
// arm: the primitive instance (profiling totals, flavor metadata), the
// live call (selectivity, density, auxiliary state), and the typed
// per-call Features contextual policies condition on.
//
// The zero value is explicitly valid: Inst and Call may be nil and Feat
// may be invalid (its zero value) — trace replay, synthetic tests and
// operator-level decisions all drive choosers without an engine call — so
// every policy must tolerate Choose(ChooseContext{}), degrading to
// context-free behavior rather than panicking on absent context.
type ChooseContext struct {
	Inst *Instance
	Call *Call
	Feat Features
}

// Observation reports the measured outcome of one primitive call: which arm
// ran, how many live tuples it processed, and what it cost.
type Observation struct {
	Arm    int
	Tuples int
	Cycles float64
}

// Cost returns the observation's cycles/tuple, or +Inf when no tuples were
// processed (a call that paid only invocation overhead carries no per-tuple
// cost signal).
func (o Observation) Cost() float64 {
	if o.Tuples <= 0 {
		return math.Inf(1)
	}
	return o.Cycles / float64(o.Tuples)
}

// Chooser is a flavor-selection policy for one primitive instance: a
// multi-armed bandit over the instance's flavors. Choose returns the arm to
// use for the next call; Observe feeds back what the call actually cost.
// Implementations are not safe for concurrent use; each primitive instance
// owns its chooser.
//
// Policies advertise optional abilities through capability interfaces
// instead of widening this one: Snapshotter exports learned knowledge,
// WarmStarter accepts prior knowledge. Callers type-assert on the
// capability, never on a concrete policy type.
type Chooser interface {
	// Name identifies the policy (for reports).
	Name() string
	// Choose returns the flavor index to use for the next call.
	Choose(ChooseContext) int
	// Observe records the outcome of a call.
	Observe(Observation)
}

// Snapshotter is the knowledge-export capability: Snapshot returns the
// policy's current per-arm cost estimates (cycles/tuple, +Inf for arms it
// knows nothing about) and a mask marking the arms the policy measured
// *itself* during this session. Seeded priors leave the mask false until
// the arm's first live measurement, which is what keeps knowledge caches
// from re-ingesting their own priors as fresh observations. Both slices
// are copies and stay valid after the chooser moves on.
type Snapshotter interface {
	Snapshot() (costs []float64, measured []bool)
}

// WarmStarter is the knowledge-import capability: SeedPriors hands the
// policy per-arm prior costs (cycles/tuple) observed elsewhere — an earlier
// session, another worker. priors[i] = +Inf or NaN means "no knowledge";
// finite non-negative entries mark the arm as already measured at that
// cost. Priors are a starting point only: live measurements overwrite
// them. SeedPriors must be called before the first Observe.
type WarmStarter interface {
	SeedPriors(priors []float64)
}

// usablePrior reports whether a prior value carries knowledge.
func usablePrior(p float64) bool {
	return !math.IsInf(p, 1) && !math.IsNaN(p) && p >= 0
}

// Fixed always picks the same arm; it is how "always flavor X" baseline
// runs and trace recording are expressed. Build clamped instances through
// the policy registry's "fixed:arm=N" spec.
type Fixed struct {
	Arm int
}

// NewFixed returns a Chooser pinned to arm.
func NewFixed(arm int) *Fixed { return &Fixed{Arm: arm} }

// Name implements Chooser.
func (f *Fixed) Name() string { return "fixed" }

// Choose implements Chooser.
func (f *Fixed) Choose(ChooseContext) int { return f.Arm }

// Observe implements Chooser.
func (f *Fixed) Observe(Observation) {}

// RoundRobin cycles deterministically through the arms; it is used by tests
// and as a worst-case reference policy.
type RoundRobin struct {
	n    int
	next int
}

// NewRoundRobin returns a round-robin policy over n arms.
func NewRoundRobin(n int) *RoundRobin { return &RoundRobin{n: n} }

// Name implements Chooser.
func (r *RoundRobin) Name() string { return "round-robin" }

// Choose implements Chooser.
func (r *RoundRobin) Choose(ChooseContext) int {
	arm := r.next
	r.next = (r.next + 1) % r.n
	return arm
}

// Observe implements Chooser.
func (r *RoundRobin) Observe(Observation) {}

// armMeans tracks the all-history mean cycles/tuple per arm, the knowledge
// state of the classic ε-strategies. live marks arms with at least one real
// observation this session; seeded priors enter as a one-tuple
// pseudo-observation and leave live false.
type armMeans struct {
	tuples []float64
	cycles []float64
	live   []bool
}

func newArmMeans(n int) armMeans {
	return armMeans{
		tuples: make([]float64, n),
		cycles: make([]float64, n),
		live:   make([]bool, n),
	}
}

func (a *armMeans) observe(arm, tuples int, cycles float64) {
	if tuples <= 0 {
		// An empty-vector call carries no per-tuple cost signal; folding
		// its overhead cycles into the mean would corrupt it outright when
		// the denominator is a seeded 1-tuple pseudo-observation — and a
		// live-marked corrupted mean would then be harvested into the
		// shared flavor cache as fresh evidence.
		return
	}
	a.tuples[arm] += float64(tuples)
	a.cycles[arm] += cycles
	a.live[arm] = true
}

// seed installs priors as one-tuple pseudo-observations on arms with no
// history; a single real vector-sized observation immediately dominates.
func (a *armMeans) seed(priors []float64) {
	for i := 0; i < len(a.tuples) && i < len(priors); i++ {
		if usablePrior(priors[i]) && a.tuples[i] == 0 {
			a.tuples[i] = 1
			a.cycles[i] = priors[i]
		}
	}
}

// snapshot exports mean costs (+Inf for unknown arms) and the live mask.
func (a *armMeans) snapshot() ([]float64, []bool) {
	costs := make([]float64, len(a.tuples))
	live := append([]bool(nil), a.live...)
	for i := range costs {
		if a.tuples[i] > 0 {
			costs[i] = a.cycles[i] / a.tuples[i]
		} else {
			costs[i] = math.Inf(1)
		}
	}
	return costs, live
}

// best returns the arm with the lowest mean cost; unobserved arms are
// preferred (cost -1) so every arm gets tried once.
func (a *armMeans) best() int {
	best, bestCost := 0, 0.0
	first := true
	for i := range a.tuples {
		var cost float64
		if a.tuples[i] == 0 {
			cost = -1 // never tried: try it now
		} else {
			cost = a.cycles[i] / a.tuples[i]
		}
		if first || cost < bestCost {
			best, bestCost, first = i, cost, false
		}
		if cost < 0 {
			return i
		}
	}
	return best
}
