package core

import "math/rand"

// Chooser is a flavor-selection policy for one primitive instance: a
// multi-armed bandit over the instance's flavors. Choose returns the arm to
// use for the next call; Observe reports the measured cost of a call that
// used the arm. Implementations are not safe for concurrent use; each
// primitive instance owns its chooser.
type Chooser interface {
	// Name identifies the policy (for reports).
	Name() string
	// Choose returns the flavor index to use for the next call.
	Choose() int
	// Observe records that a call using flavor arm processed the given
	// number of tuples in the given number of cycles.
	Observe(arm int, tuples int, cycles float64)
}

// ContextChooser is a Chooser that may inspect the live call (selectivity,
// auxiliary state) before deciding — the interface used by the hard-coded
// heuristics baseline of §4.2, which e.g. picks no-branching selection
// between 10% and 90% observed selectivity.
type ContextChooser interface {
	Chooser
	// ChooseCtx returns the flavor index given the instance and call.
	ChooseCtx(inst *Instance, c *Call) int
}

// Fixed always picks the same arm; it is how "always flavor X" baseline
// runs and trace recording are expressed.
type Fixed struct {
	Arm int
}

// NewFixed returns a Chooser pinned to arm.
func NewFixed(arm int) *Fixed { return &Fixed{Arm: arm} }

// Name implements Chooser.
func (f *Fixed) Name() string { return "fixed" }

// Choose implements Chooser.
func (f *Fixed) Choose() int { return f.Arm }

// Observe implements Chooser.
func (f *Fixed) Observe(int, int, float64) {}

// RoundRobin cycles deterministically through the arms; it is used by tests
// and as a worst-case reference policy.
type RoundRobin struct {
	n    int
	next int
}

// NewRoundRobin returns a round-robin policy over n arms.
func NewRoundRobin(n int) *RoundRobin { return &RoundRobin{n: n} }

// Name implements Chooser.
func (r *RoundRobin) Name() string { return "round-robin" }

// Choose implements Chooser.
func (r *RoundRobin) Choose() int {
	arm := r.next
	r.next = (r.next + 1) % r.n
	return arm
}

// Observe implements Chooser.
func (r *RoundRobin) Observe(int, int, float64) {}

// armMeans tracks the all-history mean cycles/tuple per arm, the knowledge
// state of the classic ε-strategies.
type armMeans struct {
	tuples []float64
	cycles []float64
}

func newArmMeans(n int) armMeans {
	return armMeans{tuples: make([]float64, n), cycles: make([]float64, n)}
}

func (a *armMeans) observe(arm, tuples int, cycles float64) {
	a.tuples[arm] += float64(tuples)
	a.cycles[arm] += cycles
}

// best returns the arm with the lowest mean cost; unobserved arms are
// preferred (cost -1) so every arm gets tried once.
func (a *armMeans) best() int {
	best, bestCost := 0, 0.0
	first := true
	for i := range a.tuples {
		var cost float64
		if a.tuples[i] == 0 {
			cost = -1 // never tried: try it now
		} else {
			cost = a.cycles[i] / a.tuples[i]
		}
		if first || cost < bestCost {
			best, bestCost, first = i, cost, false
		}
		if cost < 0 {
			return i
		}
	}
	return best
}

// EpsGreedy is the classic ε-greedy strategy: with probability eps explore
// a uniformly random arm, otherwise exploit the arm with the best
// all-history mean. Its regret grows linearly (§3.2).
type EpsGreedy struct {
	eps  float64
	n    int
	rng  *rand.Rand
	mean armMeans
}

// NewEpsGreedy returns an ε-greedy policy over n arms.
func NewEpsGreedy(n int, eps float64, rng *rand.Rand) *EpsGreedy {
	return &EpsGreedy{eps: eps, n: n, rng: rng, mean: newArmMeans(n)}
}

// Name implements Chooser.
func (e *EpsGreedy) Name() string { return "eps-greedy" }

// Choose implements Chooser.
func (e *EpsGreedy) Choose() int {
	if e.rng.Float64() < e.eps {
		return e.rng.Intn(e.n)
	}
	return e.mean.best()
}

// Observe implements Chooser.
func (e *EpsGreedy) Observe(arm, tuples int, cycles float64) {
	e.mean.observe(arm, tuples, cycles)
}

// EpsFirst explores uniformly for the first eps*horizon calls and then
// commits to the best mean for the rest of the query ("it only tests all
// flavors at the beginning and then sticks to its choice", §3.2).
type EpsFirst struct {
	n            int
	exploreCalls int
	calls        int
	rng          *rand.Rand
	mean         armMeans
	committed    int
}

// NewEpsFirst returns an ε-first policy over n arms. horizon is the
// expected number of calls in a query (the paper's traces have 16K-32K).
func NewEpsFirst(n int, eps float64, horizon int, rng *rand.Rand) *EpsFirst {
	ex := int(eps * float64(horizon))
	if ex < n {
		ex = n // at least one look at each arm
	}
	return &EpsFirst{n: n, exploreCalls: ex, rng: rng, mean: newArmMeans(n), committed: -1}
}

// Name implements Chooser.
func (e *EpsFirst) Name() string { return "eps-first" }

// Choose implements Chooser.
func (e *EpsFirst) Choose() int {
	if e.calls < e.exploreCalls {
		// Deterministic sweep guarantees coverage of all arms even for
		// short exploration budgets; ties with the paper's description
		// of "testing all flavors at the beginning".
		return e.calls % e.n
	}
	if e.committed < 0 {
		e.committed = e.mean.best()
	}
	return e.committed
}

// Observe implements Chooser.
func (e *EpsFirst) Observe(arm, tuples int, cycles float64) {
	e.calls++
	e.mean.observe(arm, tuples, cycles)
}

// EpsDecreasing is ε-greedy with ε_t = min(1, c/t): exploration decays at
// rate 1/n, which achieves logarithmic regret for stationary rewards
// (Auer et al., cited as [2] in the paper).
type EpsDecreasing struct {
	c     float64
	n     int
	calls int
	rng   *rand.Rand
	mean  armMeans
}

// NewEpsDecreasing returns an ε-decreasing policy over n arms with scale c.
func NewEpsDecreasing(n int, c float64, rng *rand.Rand) *EpsDecreasing {
	return &EpsDecreasing{c: c, n: n, rng: rng, mean: newArmMeans(n)}
}

// Name implements Chooser.
func (e *EpsDecreasing) Name() string { return "eps-decreasing" }

// Choose implements Chooser.
func (e *EpsDecreasing) Choose() int {
	eps := 1.0
	if e.calls > 0 {
		eps = e.c / float64(e.calls)
		if eps > 1 {
			eps = 1
		}
	}
	if e.rng.Float64() < eps {
		return e.rng.Intn(e.n)
	}
	return e.mean.best()
}

// Observe implements Chooser.
func (e *EpsDecreasing) Observe(arm, tuples int, cycles float64) {
	e.calls++
	e.mean.observe(arm, tuples, cycles)
}
