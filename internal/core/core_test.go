package core

import (
	"strings"
	"testing"

	"microadapt/internal/hw"
	"microadapt/internal/vector"
)

// testFlavor builds a flavor with a constant per-tuple cost that fills the
// result vector with a marker value.
func testFlavor(name string, marker int64, costPerTuple float64) *Flavor {
	return &Flavor{
		Name:   name,
		Source: "test",
		Tags:   map[string]string{"marker": name},
		Fn: func(ctx *ExecCtx, c *Call) (int, float64) {
			res := c.Res.I64()
			for i := 0; i < c.N; i++ {
				res[i] = marker
			}
			return c.N, float64(c.Live()) * costPerTuple
		},
	}
}

func TestDictionaryRegistrationAndLookup(t *testing.T) {
	d := NewDictionary()
	if err := d.AddFlavor("p1", hw.ClassMapArith, testFlavor("a", 1, 5)); err != nil {
		t.Fatal(err)
	}
	if err := d.AddFlavor("p1", hw.ClassMapArith, testFlavor("b", 2, 3)); err != nil {
		t.Fatal(err)
	}
	p, ok := d.Lookup("p1")
	if !ok || len(p.Flavors) != 2 {
		t.Fatalf("lookup: ok=%v flavors=%d", ok, len(p.Flavors))
	}
	if d.NumFlavors("p1") != 2 || d.NumFlavors("nope") != 0 {
		t.Error("NumFlavors wrong")
	}
	if _, ok := d.Lookup("nope"); ok {
		t.Error("unknown signature should fail lookup")
	}
	if err := d.AddFlavor("p1", hw.ClassMapArith, testFlavor("a", 9, 9)); err == nil {
		t.Error("duplicate flavor name should error")
	}
	if p.FlavorIndex("b") != 1 || p.FlavorIndex("z") != -1 {
		t.Error("FlavorIndex wrong")
	}
	if p.FlavorByTag("marker", "b") != 1 || p.FlavorByTag("marker", "zz") != -1 {
		t.Error("FlavorByTag wrong")
	}
	sigs := d.Sigs()
	if len(sigs) != 1 || sigs[0] != "p1" {
		t.Errorf("sigs = %v", sigs)
	}
}

func TestDictionaryDynamicRegistration(t *testing.T) {
	// The paper's registration mechanism allows loading flavor libraries
	// while the system is active: an instance created before must not be
	// affected, but new instances see the extra flavor.
	d := NewDictionary()
	d.AddFlavor("p", hw.ClassMapArith, testFlavor("a", 1, 5))
	s := NewSession(d, hw.Machine1())
	inst1 := s.Instance("p", "before")
	d.AddFlavor("p", hw.ClassMapArith, testFlavor("b", 2, 1))
	inst2 := s.Instance("p", "after")
	if len(inst1.PerFlavor) != 1 {
		t.Error("pre-registration instance should track one flavor")
	}
	if len(inst2.PerFlavor) != 2 {
		t.Error("post-registration instance should track two flavors")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLookup on unknown signature should panic")
		}
	}()
	NewDictionary().MustLookup("missing")
}

func TestInstanceRunProfilesAndChooses(t *testing.T) {
	d := NewDictionary()
	d.AddFlavor("p", hw.ClassMapArith, testFlavor("slow", 1, 10))
	d.AddFlavor("p", hw.ClassMapArith, testFlavor("fast", 2, 1))
	s := NewSession(d, hw.Machine1(), WithVectorSize(64))
	inst := s.Instance("p", "T/p#0")

	res := vector.New(vector.I64, 64)
	res.SetLen(64)
	for i := 0; i < 500; i++ {
		c := &Call{N: 64, Res: res}
		inst.Run(s.Ctx, c)
	}
	if inst.Calls != 500 {
		t.Errorf("calls = %d", inst.Calls)
	}
	if inst.Tuples != 500*64 {
		t.Errorf("tuples = %d", inst.Tuples)
	}
	if inst.Cycles <= 0 || s.Ctx.PrimCycles != inst.Cycles {
		t.Error("cycle accounting inconsistent")
	}
	// vw-greedy must spend most calls on the fast flavor.
	if inst.PerFlavor[1].Calls < 350 {
		t.Errorf("fast flavor calls = %d/500, want dominant", inst.PerFlavor[1].Calls)
	}
	if inst.History().Calls() != 500 {
		t.Error("APH must record every call")
	}
	if inst.CyclesPerTuple() <= 0 {
		t.Error("cycles per tuple must be positive")
	}
	if inst.PerFlavor[0].CyclesPerTuple() <= inst.PerFlavor[1].CyclesPerTuple() {
		t.Error("per-flavor stats should reflect the cost difference")
	}
	if (FlavorStats{}).CyclesPerTuple() != 0 {
		t.Error("empty flavor stats cost should be 0")
	}
}

func TestSessionInstanceMemoization(t *testing.T) {
	d := NewDictionary()
	d.AddFlavor("p", hw.ClassMapArith, testFlavor("a", 1, 5))
	s := NewSession(d, hw.Machine1())
	i1 := s.Instance("p", "x")
	i2 := s.Instance("p", "x")
	i3 := s.Instance("p", "y")
	if i1 != i2 {
		t.Error("same label must return the same instance")
	}
	if i1 == i3 {
		t.Error("different labels must be distinct instances")
	}
	if len(s.Instances()) != 2 {
		t.Errorf("instances = %d, want 2", len(s.Instances()))
	}
	if s.InstanceByLabel("y") != i3 || s.InstanceByLabel("zz") != nil {
		t.Error("InstanceByLabel wrong")
	}
	found := s.FindInstances("x")
	if len(found) != 1 || found[0] != i1 {
		t.Error("FindInstances wrong")
	}
	s.ResetInstances()
	if len(s.Instances()) != 0 || s.Ctx.TotalCycles() != 0 {
		t.Error("reset should clear instances and cycles")
	}
}

func TestSessionOptions(t *testing.T) {
	d := NewDictionary()
	d.AddFlavor("p", hw.ClassMapArith, testFlavor("a", 1, 5))
	s := NewSession(d, hw.Machine2(),
		WithVectorSize(256),
		WithSeed(99),
		WithChooser(func(n int) Chooser { return NewFixed(0) }))
	if s.VectorSize != 256 {
		t.Error("vector size option ignored")
	}
	if s.Machine.Name != "machine2" {
		t.Error("machine wrong")
	}
	inst := s.Instance("p", "l")
	if _, ok := inst.Chooser().(*Fixed); !ok {
		t.Error("chooser factory ignored")
	}
}

// TestWithInstanceChooser: the instance-aware factory receives the
// signature and label of each new instance and takes precedence over the
// plain factory — the hook warm-started sessions hang their cache lookup on.
func TestWithInstanceChooser(t *testing.T) {
	d := NewDictionary()
	d.AddFlavor("p1", hw.ClassMapArith, testFlavor("a", 1, 5))
	d.AddFlavor("p1", hw.ClassMapArith, testFlavor("b", 2, 3))
	var gotSig, gotLabel string
	var gotArms []string
	s := NewSession(d, hw.Machine1(),
		WithChooser(func(n int) Chooser { t.Error("plain factory must not be used"); return NewFixed(0) }),
		WithInstanceChooser(func(sig, label string, arms []string) Chooser {
			gotSig, gotLabel, gotArms = sig, label, arms
			return NewFixed(1)
		}))
	inst := s.Instance("p1", "Q99/p1#0")
	if gotSig != "p1" || gotLabel != "Q99/p1#0" || len(gotArms) != 2 || gotArms[0] != "a" || gotArms[1] != "b" {
		t.Errorf("factory saw (%q, %q, %v), want (p1, Q99/p1#0, [a b])", gotSig, gotLabel, gotArms)
	}
	if inst.Chooser().Choose(ChooseContext{}) != 1 {
		t.Error("instance should use the chooser the instance factory built")
	}
	// Memoized instances do not re-invoke the factory.
	gotLabel = ""
	if s.Instance("p1", "Q99/p1#0") != inst {
		t.Error("memoization broken")
	}
	if gotLabel != "" {
		t.Error("factory re-invoked for a memoized instance")
	}
}

func TestInstanceWithNoFlavorsPanics(t *testing.T) {
	d := NewDictionary()
	d.Register("empty", hw.ClassMapArith)
	s := NewSession(d, hw.Machine1())
	defer func() {
		if recover() == nil {
			t.Error("instance over zero flavors should panic")
		}
	}()
	s.Instance("empty", "l")
}

func TestExecCtxStageAccounting(t *testing.T) {
	ctx := NewExecCtx(hw.Machine1())
	ctx.PreCycles = 10
	ctx.PrimCycles = 1000
	ctx.OperatorCycles = 50
	ctx.PostCycles = 5
	if ctx.ExecuteCycles() != 1050 {
		t.Errorf("execute = %v", ctx.ExecuteCycles())
	}
	if ctx.TotalCycles() != 1065 {
		t.Errorf("total = %v", ctx.TotalCycles())
	}
	ctx.ResetCycles()
	if ctx.TotalCycles() != 0 {
		t.Error("reset failed")
	}
	if ctx.LLC == nil {
		t.Error("LLC simulator missing")
	}
}

func TestCallLiveAndDensity(t *testing.T) {
	c := &Call{N: 100}
	if c.Live() != 100 || c.Density() != 1 {
		t.Error("dense call wrong")
	}
	c.Sel = []int32{1, 2, 3}
	if c.Live() != 3 || c.Density() != 0.03 {
		t.Errorf("selected call live/density = %d/%v", c.Live(), c.Density())
	}
	c2 := &Call{N: 10, Cap: 100}
	if c2.Density() != 0.1 {
		t.Errorf("cap density = %v, want 0.1", c2.Density())
	}
	c3 := &Call{N: 0}
	if c3.Density() != 1 {
		t.Error("empty call density should be 1")
	}
}

func TestChooserSeesCallContext(t *testing.T) {
	d := NewDictionary()
	d.AddFlavor("p", hw.ClassMapArith, testFlavor("a", 1, 5))
	d.AddFlavor("p", hw.ClassMapArith, testFlavor("b", 2, 5))
	s := NewSession(d, hw.Machine1(), WithChooser(func(n int) Chooser {
		return &densityChooser{}
	}))
	inst := s.Instance("p", "l")
	res := vector.New(vector.I64, 8)
	res.SetLen(8)
	// Dense call: expect arm 1; sparse call: arm 0.
	inst.Run(s.Ctx, &Call{N: 8, Res: res})
	if inst.LastArm != 1 {
		t.Errorf("dense call arm = %d, want 1", inst.LastArm)
	}
	inst.Run(s.Ctx, &Call{N: 8, Sel: []int32{0}, Res: res})
	if inst.LastArm != 0 {
		t.Errorf("sparse call arm = %d, want 0", inst.LastArm)
	}
}

type densityChooser struct{}

func (d *densityChooser) Name() string        { return "density" }
func (d *densityChooser) Observe(Observation) {}
func (d *densityChooser) Choose(cc ChooseContext) int {
	if cc.Call != nil && cc.Call.Density() > 0.5 {
		return 1
	}
	return 0
}

func TestFlavorTagHelper(t *testing.T) {
	f := &Flavor{Name: "x"}
	if f.Tag("anything") != "" {
		t.Error("nil tags should return empty")
	}
	f.Tags = map[string]string{"k": "v"}
	if f.Tag("k") != "v" {
		t.Error("tag lookup wrong")
	}
}

func TestFindInstancesSorted(t *testing.T) {
	d := NewDictionary()
	d.AddFlavor("p", hw.ClassMapArith, testFlavor("a", 1, 5))
	s := NewSession(d, hw.Machine1())
	s.Instance("p", "Q2/b")
	s.Instance("p", "Q1/a")
	s.Instance("p", "Q3/c")
	labels := []string{}
	for _, inst := range s.FindInstances("Q") {
		labels = append(labels, inst.Label)
	}
	if strings.Join(labels, ",") != "Q1/a,Q2/b,Q3/c" {
		t.Errorf("sorted labels = %v", labels)
	}
}
