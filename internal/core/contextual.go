package core

import (
	"math"
	"sort"
)

// Contextual lifts any context-free chooser into a contextual policy by
// bucketing: it keys independent inner choosers by Features.Bucket() and
// routes every Choose/Observe pair to the bucket of the call's features.
// Data-dependent cost structure that a single bandit averages away — a
// selection whose best flavor flips with per-batch selectivity, a scan
// whose best decompression depends on the encoding — becomes separable,
// because each bucket's bandit sees only its own regime.
//
// Calls without features (the zero ChooseContext) land in the "" bucket,
// so the wrapper degrades to exactly one inner chooser — context-free
// behavior — when no operator supplies context.
//
// Like every Chooser, a Contextual is single-threaded. Knowledge flows
// through the usual capabilities: Snapshot merges the buckets (per arm,
// the cheapest measured estimate — the cost the instance can achieve when
// the context cooperates), SeedPriors seeds every bucket, present and
// future, so fleet knowledge warms all regimes.
type Contextual struct {
	inner   func() Chooser
	n       int
	buckets map[string]Chooser
	order   []string // creation order, for deterministic Snapshot merging
	last    Chooser  // bucket chooser that served the latest Choose
	priors  []float64
	name    string
}

// NewContextual builds a contextual wrapper over n arms; inner builds one
// fresh context-free chooser per bucket on demand.
func NewContextual(n int, inner func() Chooser) *Contextual {
	c := &Contextual{inner: inner, n: n, buckets: make(map[string]Chooser)}
	c.name = "ctx(" + c.bucket("").Name() + ")"
	return c
}

// Name implements Chooser.
func (c *Contextual) Name() string { return c.name }

// bucket returns (creating on first use) the inner chooser of one bucket.
func (c *Contextual) bucket(key string) Chooser {
	if ch, ok := c.buckets[key]; ok {
		return ch
	}
	ch := c.inner()
	if c.priors != nil {
		if ws, ok := ch.(WarmStarter); ok {
			ws.SeedPriors(c.priors)
		}
	}
	c.buckets[key] = ch
	c.order = append(c.order, key)
	return ch
}

// Choose implements Chooser: it delegates to the bucket of the call's
// features and remembers it so the matching Observe lands in the same
// bucket (Choose/Observe pair up per call under the Chooser contract).
func (c *Contextual) Choose(cc ChooseContext) int {
	ch := c.bucket(cc.Feat.Bucket())
	c.last = ch
	return ch.Choose(cc)
}

// Observe implements Chooser, feeding the bucket that made the choice.
func (c *Contextual) Observe(o Observation) {
	if c.last == nil {
		c.last = c.bucket("")
	}
	c.last.Observe(o)
}

// Snapshot implements Snapshotter: per arm, the cheapest cost any bucket
// measured itself, with the measured mask OR-ed across buckets. Buckets
// without the capability contribute nothing.
func (c *Contextual) Snapshot() ([]float64, []bool) {
	costs := make([]float64, c.n)
	measured := make([]bool, c.n)
	for i := range costs {
		costs[i] = math.Inf(1)
	}
	keys := append([]string(nil), c.order...)
	sort.Strings(keys)
	for _, key := range keys {
		sn, ok := c.buckets[key].(Snapshotter)
		if !ok {
			continue
		}
		bc, bm := sn.Snapshot()
		for i := 0; i < c.n && i < len(bc); i++ {
			if i < len(bm) && bm[i] && bc[i] < costs[i] {
				costs[i] = bc[i]
				measured[i] = true
			}
		}
	}
	return costs, measured
}

// SeedPriors implements WarmStarter: priors seed every existing bucket and
// are kept for buckets created later, so a warm start reaches regimes the
// session has not met yet.
func (c *Contextual) SeedPriors(priors []float64) {
	c.priors = append([]float64(nil), priors...)
	for _, key := range c.order {
		if ws, ok := c.buckets[key].(WarmStarter); ok {
			ws.SeedPriors(priors)
		}
	}
}

// Buckets returns the bucket keys seen so far, sorted (tests/telemetry).
func (c *Contextual) Buckets() []string {
	out := append([]string(nil), c.order...)
	sort.Strings(out)
	return out
}
