package core

import (
	"testing"

	"microadapt/internal/hw"
)

func TestPartitionLabelRoundTrip(t *testing.T) {
	for _, label := range []string{
		"Q1/sel/select_<=_sint_col_sint_val#0",
		"Q12/li/select_in_str_col#2",
		"plain",
	} {
		for _, part := range []int{0, 3, 12} {
			tagged := PartitionLabel(label, part)
			if tagged == label {
				t.Fatalf("PartitionLabel(%q, %d) did not tag", label, part)
			}
			if got := BaseLabel(tagged); got != label {
				t.Errorf("BaseLabel(%q) = %q, want %q", tagged, got, label)
			}
		}
		if got := BaseLabel(label); got != label {
			t.Errorf("BaseLabel(%q) = %q, want unchanged", label, got)
		}
	}
	// Labels that merely look tag-ish must survive: no digits after ~p, or
	// non-digit content.
	for _, label := range []string{"a~p", "a~px", "a~p1x"} {
		if got := BaseLabel(label); got != label {
			t.Errorf("BaseLabel(%q) = %q, want unchanged", label, got)
		}
	}
}

// TestFragmentSessions: default fragment spawning shares the dictionary,
// machine and vector size, tags instance labels with the partition, and
// registers fragments on the parent for AllInstances.
func TestFragmentSessions(t *testing.T) {
	d := NewDictionary()
	d.AddFlavor("p", hw.ClassMapArith, testFlavor("a", 1, 5))
	d.AddFlavor("p", hw.ClassMapArith, testFlavor("b", 2, 3))
	s := NewSession(d, hw.Machine1(), WithVectorSize(64), WithSeed(9), WithParallelism(4))
	if s.Parallelism() != 4 || s.Partition() != -1 {
		t.Fatalf("parallelism/partition = %d/%d, want 4/-1", s.Parallelism(), s.Partition())
	}
	s.Instance("p", "root")

	f0 := s.Fragment(0)
	f1 := s.Fragment(1)
	if f0.Dict != s.Dict || f0.Machine != s.Machine || f0.VectorSize != 64 {
		t.Error("fragment must share dictionary/machine/vector size")
	}
	if f0.Partition() != 0 || f1.Partition() != 1 {
		t.Errorf("fragment partitions = %d/%d", f0.Partition(), f1.Partition())
	}
	if f0.Parallelism() != 1 {
		t.Error("fragments must not fan out further")
	}
	if f0.Rand == s.Rand || f0.Rand == f1.Rand {
		t.Error("fragments must own their random streams")
	}
	i0 := f0.Instance("p", "node")
	i1 := f1.Instance("p", "node")
	if i0.Label == i1.Label {
		t.Error("fragment instances of different partitions must have distinct labels")
	}
	if BaseLabel(i0.Label) != "node" || BaseLabel(i1.Label) != "node" {
		t.Errorf("fragment labels %q/%q must collapse to the plan label", i0.Label, i1.Label)
	}
	if got := len(s.Fragments()); got != 2 {
		t.Fatalf("fragments = %d, want 2", got)
	}
	if got := len(s.AllInstances()); got != 3 {
		t.Errorf("AllInstances = %d, want 3 (root + 2 fragment nodes)", got)
	}
	s.ResetInstances()
	if len(s.AllInstances()) != 0 || len(s.Fragments()) != 0 {
		t.Error("reset must drop fragment sessions too")
	}
}

// TestFragmentSpawnerOverride: a configured spawner decides the fragment
// session; Fragment still applies the partition tag and registration.
func TestFragmentSpawnerOverride(t *testing.T) {
	d := NewDictionary()
	d.AddFlavor("p", hw.ClassMapArith, testFlavor("a", 1, 5))
	spawned := 0
	s := NewSession(d, hw.Machine1(), WithFragmentSpawner(func(part int) *Session {
		spawned++
		return NewSession(d, hw.Machine1(), WithVectorSize(32), WithSeed(int64(100+part)))
	}))
	fs := s.Fragment(2)
	if spawned != 1 {
		t.Fatalf("spawner invoked %d times, want 1", spawned)
	}
	if fs.VectorSize != 32 {
		t.Error("spawner-built session was replaced")
	}
	if fs.Partition() != 2 {
		t.Errorf("partition = %d, want 2 (set by Fragment)", fs.Partition())
	}
	inst := fs.Instance("p", "n")
	if BaseLabel(inst.Label) != "n" || inst.Label == "n" {
		t.Errorf("spawned fragment label %q must be partition-tagged", inst.Label)
	}
}

// TestFragmentInheritsCallerChooser: a caller-set chooser factory carries
// over to default-spawned fragments; the built-in default (which owns the
// parent's rand) must not.
func TestFragmentInheritsCallerChooser(t *testing.T) {
	d := NewDictionary()
	d.AddFlavor("p", hw.ClassMapArith, testFlavor("a", 1, 5))
	d.AddFlavor("p", hw.ClassMapArith, testFlavor("b", 2, 3))
	s := NewSession(d, hw.Machine1(), WithChooser(func(n int) Chooser { return NewFixed(1) }))
	fs := s.Fragment(0)
	if _, ok := fs.Instance("p", "n").Chooser().(*Fixed); !ok {
		t.Error("caller-set chooser factory should reach fragments")
	}

	sDef := NewSession(d, hw.Machine1())
	fsDef := sDef.Fragment(0)
	if _, ok := fsDef.Instance("p", "n").Chooser().(*VWGreedy); !ok {
		t.Error("default-policy fragment should build its own vw-greedy")
	}
}
