package core

import (
	"math/rand"
	"testing"
)

func TestFixedChooser(t *testing.T) {
	f := NewFixed(2)
	for i := 0; i < 10; i++ {
		if f.Choose(ChooseContext{}) != 2 {
			t.Fatal("fixed chooser moved")
		}
		f.Observe(Observation{Arm: 2, Tuples: 10, Cycles: 100})
	}
	if f.Name() != "fixed" {
		t.Error("name wrong")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	r := NewRoundRobin(3)
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		if got := r.Choose(ChooseContext{}); got != w {
			t.Fatalf("call %d = %d, want %d", i, got, w)
		}
		r.Observe(Observation{Arm: w, Tuples: 1, Cycles: 1})
	}
	if r.Name() != "round-robin" {
		t.Error("name wrong")
	}
}

func TestEpsGreedyExploitsBestArm(t *testing.T) {
	ch := NewEpsGreedy(3, 0.05, rand.New(rand.NewSource(1)))
	use := make([]int, 3)
	for i := 0; i < 3000; i++ {
		a := ch.Choose(ChooseContext{})
		use[a]++
		cost := []float64{9, 2, 7}[a]
		ch.Observe(Observation{Arm: a, Tuples: 100, Cycles: cost * 100})
	}
	if use[1] < 2500 {
		t.Errorf("best arm used %d/3000, want dominant", use[1])
	}
	if use[0] == 0 || use[2] == 0 {
		t.Error("eps-greedy should still explore occasionally")
	}
	if ch.Name() != "eps-greedy" {
		t.Error("name wrong")
	}
}

func TestEpsGreedyTriesUnseenArmsFirst(t *testing.T) {
	ch := NewEpsGreedy(4, 0.0, rand.New(rand.NewSource(2)))
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		a := ch.Choose(ChooseContext{})
		seen[a] = true
		ch.Observe(Observation{Arm: a, Tuples: 10, Cycles: 10})
	}
	if len(seen) != 4 {
		t.Errorf("first four choices covered %d arms, want 4", len(seen))
	}
}

func TestEpsFirstCommits(t *testing.T) {
	ch := NewEpsFirst(2, 0.01, 1000, rand.New(rand.NewSource(3)))
	// Exploration phase: eps*horizon = 10 calls.
	for i := 0; i < 10; i++ {
		a := ch.Choose(ChooseContext{})
		cost := []float64{8, 3}[a]
		ch.Observe(Observation{Arm: a, Tuples: 100, Cycles: cost * 100})
	}
	// Committed phase: always the best arm.
	for i := 0; i < 100; i++ {
		if got := ch.Choose(ChooseContext{}); got != 1 {
			t.Fatalf("eps-first did not commit to the best arm (got %d)", got)
		}
		ch.Observe(Observation{Arm: 1, Tuples: 100, Cycles: 300})
	}
	if ch.Name() != "eps-first" {
		t.Error("name wrong")
	}
}

// TestEpsFirstCannotAdapt documents the weakness the paper exploits:
// ε-first sticks to its early choice even when the world changes.
func TestEpsFirstCannotAdapt(t *testing.T) {
	ch := NewEpsFirst(2, 0.01, 1000, rand.New(rand.NewSource(4)))
	for call := 0; call < 2000; call++ {
		a := ch.Choose(ChooseContext{})
		var cost float64
		if call < 500 {
			cost = []float64{2, 6}[a]
		} else {
			cost = []float64{6, 2}[a]
		}
		ch.Observe(Observation{Arm: a, Tuples: 100, Cycles: cost * 100})
	}
	if ch.Choose(ChooseContext{}) != 0 {
		t.Error("eps-first should still be stuck on the early winner")
	}
}

func TestEpsFirstMinimumExploration(t *testing.T) {
	ch := NewEpsFirst(8, 0.0, 100, rand.New(rand.NewSource(5)))
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		a := ch.Choose(ChooseContext{})
		seen[a] = true
		ch.Observe(Observation{Arm: a, Tuples: 1, Cycles: float64(a)})
	}
	if len(seen) != 8 {
		t.Errorf("exploration must cover all arms at least once, got %d", len(seen))
	}
}

func TestEpsDecreasingExploresLessOverTime(t *testing.T) {
	ch := NewEpsDecreasing(2, 5.0, rand.New(rand.NewSource(6)))
	early, late := 0, 0
	for call := 0; call < 4000; call++ {
		a := ch.Choose(ChooseContext{})
		cost := []float64{2, 8}[a]
		ch.Observe(Observation{Arm: a, Tuples: 100, Cycles: cost * 100})
		if a == 1 { // suboptimal choice = exploration
			if call < 200 {
				early++
			}
			if call >= 3800 {
				late++
			}
		}
	}
	if late >= early {
		t.Errorf("exploration should decay: early=%d late=%d", early, late)
	}
	if ch.Name() != "eps-decreasing" {
		t.Error("name wrong")
	}
}

// TestArmMeansIgnoresZeroTupleCalls: an empty-vector call must not fold
// its overhead cycles into a mean — with a seeded 1-tuple pseudo-
// observation as denominator, one such call would multiply the arm's
// apparent cost, flip best(), and (being live-marked) poison the shared
// flavor cache on harvest.
func TestArmMeansIgnoresZeroTupleCalls(t *testing.T) {
	m := newArmMeans(2)
	m.seed([]float64{3, 5}) // arm 0 is the known-best
	m.observe(0, 0, 50)     // empty vector: 50 overhead cycles, no tuples
	if m.best() != 0 {
		t.Errorf("best flipped to %d after a zero-tuple call", m.best())
	}
	costs, live := m.snapshot()
	if costs[0] != 3 {
		t.Errorf("seeded cost corrupted: %v", costs[0])
	}
	if live[0] {
		t.Error("zero-tuple call must not mark the arm session-measured")
	}
}

func TestArmMeansBest(t *testing.T) {
	m := newArmMeans(3)
	m.observe(0, 100, 500) // 5/tuple
	m.observe(1, 100, 200) // 2/tuple
	m.observe(2, 100, 900) // 9/tuple
	if m.best() != 1 {
		t.Errorf("best = %d, want 1", m.best())
	}
	// Unobserved arms take priority.
	m2 := newArmMeans(2)
	m2.observe(0, 100, 1)
	if m2.best() != 1 {
		t.Error("unobserved arm should be tried first")
	}
}
