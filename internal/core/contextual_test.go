package core

import (
	"math"
	"math/rand"
	"testing"
)

// feat builds valid Features at a given selectivity.
func feat(sel float64) Features { return Features{Valid: true, Selectivity: sel} }

// TestContextualSeparatesRegimes: on a workload whose best arm flips with
// the context, a contextual wrapper must learn each bucket's best arm
// independently — the property a single context-free bandit cannot have.
func TestContextualSeparatesRegimes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewContextual(2, func() Chooser { return NewEpsGreedy(2, 0.1, rng) })
	// Regime A (sel 0.1 → bucket s0): arm 0 cheap. Regime B (sel 0.6 →
	// bucket s2): arm 1 cheap.
	cost := func(sel float64, arm int) float64 {
		if (sel < 0.25) == (arm == 0) {
			return 1
		}
		return 10
	}
	for i := 0; i < 400; i++ {
		sel := 0.1
		if i%2 == 1 {
			sel = 0.6
		}
		arm := c.Choose(ChooseContext{Feat: feat(sel)})
		c.Observe(Observation{Arm: arm, Tuples: 100, Cycles: 100 * cost(sel, arm)})
	}
	// The "" bucket always exists (NewContextual probes it for the name).
	if got := c.Buckets(); len(got) != 3 || got[1] != "s0" || got[2] != "s2" {
		t.Fatalf("buckets = %v, want [\"\" s0 s2]", got)
	}
	// After learning, each regime must pick its own best arm (ε-greedy
	// still explores, so sample the exploit majority).
	for _, re := range []struct {
		sel  float64
		best int
	}{{0.1, 0}, {0.6, 1}} {
		hits := 0
		for i := 0; i < 100; i++ {
			arm := c.Choose(ChooseContext{Feat: feat(re.sel)})
			c.Observe(Observation{Arm: arm, Tuples: 100, Cycles: 100 * cost(re.sel, arm)})
			if arm == re.best {
				hits++
			}
		}
		if hits < 80 {
			t.Errorf("sel=%.1f: best arm chosen %d/100 times, want >= 80", re.sel, hits)
		}
	}
}

// TestContextualZeroContextDegrades: the zero ChooseContext is explicitly
// valid; without features every call lands in the "" bucket, i.e. the
// wrapper behaves as exactly one context-free inner chooser.
func TestContextualZeroContextDegrades(t *testing.T) {
	c := NewContextual(3, func() Chooser { return NewRoundRobin(3) })
	var got []int
	for i := 0; i < 6; i++ {
		arm := c.Choose(ChooseContext{})
		c.Observe(Observation{Arm: arm, Tuples: 1, Cycles: 1})
		got = append(got, arm)
	}
	for i, arm := range got {
		if arm != i%3 {
			t.Fatalf("call %d chose arm %d, want %d (single round-robin bucket)", i, arm, i%3)
		}
	}
	if b := c.Buckets(); len(b) != 1 || b[0] != "" {
		t.Errorf("buckets = %v, want exactly [\"\"]", b)
	}
}

// TestContextualSnapshotMergesBuckets: Snapshot reports, per arm, the
// cheapest self-measured cost across buckets, never priors.
func TestContextualSnapshotMergesBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewContextual(2, func() Chooser { return NewEpsGreedy(2, 0, rng) })
	// Bucket s0 measures arm 0 at 2.0; bucket s2 measures arm 0 at 5.0 and
	// arm 1 at 3.0.
	c.Choose(ChooseContext{Feat: feat(0.1)})
	c.Observe(Observation{Arm: 0, Tuples: 10, Cycles: 20})
	c.Choose(ChooseContext{Feat: feat(0.6)})
	c.Observe(Observation{Arm: 0, Tuples: 10, Cycles: 50})
	c.Choose(ChooseContext{Feat: feat(0.6)})
	c.Observe(Observation{Arm: 1, Tuples: 10, Cycles: 30})

	costs, measured := c.Snapshot()
	if !measured[0] || !measured[1] {
		t.Fatalf("measured = %v, want both arms", measured)
	}
	if costs[0] != 2 || costs[1] != 3 {
		t.Errorf("costs = %v, want [2 3] (cheapest bucket per arm)", costs)
	}
}

// TestContextualSeedPriorsReachesFutureBuckets: priors seed buckets that
// do not exist yet at seeding time.
func TestContextualSeedPriorsReachesFutureBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewContextual(2, func() Chooser { return NewEpsGreedy(2, 0, rng) })
	c.SeedPriors([]float64{5, 1}) // arm 1 known cheaper fleet-wide
	// A brand-new bucket must exploit the prior immediately (ε = 0).
	if arm := c.Choose(ChooseContext{Feat: feat(0.9)}); arm != 1 {
		t.Errorf("fresh bucket chose arm %d, want prior-seeded 1", arm)
	}
}

// TestFeaturesBucket pins the bucket key scheme: selectivity quartile plus
// encoding, "" for the zero value.
func TestFeaturesBucket(t *testing.T) {
	cases := []struct {
		f    Features
		want string
	}{
		{Features{}, ""},
		{feat(0.0), "s0"},
		{feat(0.24), "s0"},
		{feat(0.5), "s2"},
		{feat(1.0), "s3"},
		{feat(math.Inf(1)), "s3"}, // clamped
		{feat(-1), "s0"},          // clamped
		{Features{Valid: true, Selectivity: 0.3, Encoding: "rle"}, "s1/rle"},
	}
	for _, tc := range cases {
		if got := tc.f.Bucket(); got != tc.want {
			t.Errorf("Bucket(%+v) = %q, want %q", tc.f, got, tc.want)
		}
	}
}
