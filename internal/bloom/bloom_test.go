package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1024, 2)
	keys := []int64{0, 1, -5, 1 << 40, -1 << 50, 42}
	for _, k := range keys {
		f.Add(k)
	}
	for _, k := range keys {
		if !f.Test(k) {
			t.Errorf("false negative for %d", k)
		}
	}
	if f.Items() != len(keys) {
		t.Errorf("items = %d", f.Items())
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	check := func(keys []int64) bool {
		f := New(4096, 3)
		for _, k := range keys {
			f.Add(k)
		}
		for _, k := range keys {
			if !f.Test(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	// 10 bits per key, k=2: FP rate should be small.
	n := 10000
	f := New(n*10/8, 2)
	rng := rand.New(rand.NewSource(1))
	present := make(map[int64]bool, n)
	for i := 0; i < n; i++ {
		k := rng.Int63()
		present[k] = true
		f.Add(k)
	}
	fp := 0
	trials := 100000
	for i := 0; i < trials; i++ {
		k := rng.Int63()
		if !present[k] && f.Test(k) {
			fp++
		}
	}
	rate := float64(fp) / float64(trials)
	if rate > 0.10 {
		t.Errorf("false positive rate = %v, want < 0.10", rate)
	}
	est := f.FalsePositiveRate()
	if est <= 0 || est >= 0.5 {
		t.Errorf("estimated FP rate = %v out of plausible range", est)
	}
}

func TestSizeRounding(t *testing.T) {
	if got := New(1000, 2).SizeBytes(); got != 1024 {
		t.Errorf("size = %d, want 1024", got)
	}
	if got := New(1, 2).SizeBytes(); got != 64 {
		t.Errorf("minimum size = %d, want 64", got)
	}
	if New(64, 0).K() != 1 {
		t.Error("k should clamp to >= 1")
	}
}

func TestTestHashMatchesTest(t *testing.T) {
	f := New(2048, 3)
	for i := int64(0); i < 100; i += 3 {
		f.Add(i)
	}
	for i := int64(0); i < 200; i++ {
		if f.Test(i) != f.TestHash(Hash(i)) {
			t.Fatalf("Test and TestHash disagree for %d", i)
		}
	}
}

func TestHashAvalanche(t *testing.T) {
	// Neighbouring keys must map to very different hashes.
	h1, h2 := Hash(1), Hash(2)
	diff := h1 ^ h2
	bits := 0
	for diff != 0 {
		bits += int(diff & 1)
		diff >>= 1
	}
	if bits < 16 {
		t.Errorf("avalanche bits = %d, want >= 16", bits)
	}
}

func TestEmptyFilterRejects(t *testing.T) {
	f := New(1024, 2)
	hits := 0
	for i := int64(0); i < 1000; i++ {
		if f.Test(i) {
			hits++
		}
	}
	if hits != 0 {
		t.Errorf("empty filter accepted %d keys", hits)
	}
}
