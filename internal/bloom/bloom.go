// Package bloom implements the blocked bloom filter Vectorwise uses to
// accelerate hash-table lookups when probe keys are often absent (§2 of the
// paper, "Loop Fission"). The filter is a plain bitmap with k hash probes
// per key; its byte size is what drives the cache behaviour studied in
// Figure 6.
package bloom

import "math"

// Filter is a bloom filter over 64-bit keys.
type Filter struct {
	bits  []uint64
	mask  uint64 // number of bits - 1 (power of two)
	k     int
	items int
}

// New creates a filter of sizeBytes (rounded up to a power of two, minimum
// 64 bytes) using k hash probes per key.
func New(sizeBytes int, k int) *Filter {
	if sizeBytes < 64 {
		sizeBytes = 64
	}
	p := 64
	for p < sizeBytes {
		p *= 2
	}
	nbits := uint64(p) * 8
	if k < 1 {
		k = 1
	}
	return &Filter{
		bits: make([]uint64, nbits/64),
		mask: nbits - 1,
		k:    k,
	}
}

// SizeBytes returns the bitmap size in bytes.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// K returns the number of probes per key.
func (f *Filter) K() int { return f.k }

// Items returns how many keys have been added.
func (f *Filter) Items() int { return f.items }

// Hash is the 64-bit mix function used for filter probes; it is exported so
// the primitive cost model can account for its work explicitly.
func Hash(key int64) uint64 {
	x := uint64(key)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a key.
func (f *Filter) Add(key int64) {
	h := Hash(key)
	for i := 0; i < f.k; i++ {
		bit := (h + uint64(i)*(h>>32|1)) & f.mask
		f.bits[bit>>6] |= 1 << (bit & 63)
	}
	f.items++
}

// Test reports whether the key may be present (no false negatives).
func (f *Filter) Test(key int64) bool {
	h := Hash(key)
	for i := 0; i < f.k; i++ {
		bit := (h + uint64(i)*(h>>32|1)) & f.mask
		if f.bits[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}

// TestHash is Test for a pre-computed hash; the fission flavor of the probe
// primitive computes all hashes in a first loop and tests in a second.
func (f *Filter) TestHash(h uint64) bool {
	for i := 0; i < f.k; i++ {
		bit := (h + uint64(i)*(h>>32|1)) & f.mask
		if f.bits[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}

// FalsePositiveRate estimates the current false-positive probability from
// the fill factor: (1 - (1-1/m)^(kn))^k.
func (f *Filter) FalsePositiveRate() float64 {
	m := float64(f.mask + 1)
	n := float64(f.items)
	k := float64(f.k)
	inner := 1.0 - math.Pow(1.0-1.0/m, k*n)
	return math.Pow(inner, k)
}
