package traffic

import (
	"testing"
	"time"
)

func testTraffic() Traffic {
	return Traffic{
		Duration: 10 * time.Second,
		Rate:     200,
		Mix:      UniformMix(1, 6, 14),
		Seed:     42,
	}
}

// TestTrafficDeterministic: the same Traffic value yields the same
// schedule, and a different seed yields a different one.
func TestTrafficDeterministic(t *testing.T) {
	a, err := testTraffic().Schedule()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testTraffic().Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	tr := testTraffic()
	tr.Seed = 43
	c, err := tr.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

// TestTrafficBoundariesAndOrder: arrivals are sorted and inside the run.
func TestTrafficBoundariesAndOrder(t *testing.T) {
	tr := testTraffic()
	arr, err := tr.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	queries := map[int]bool{1: true, 6: true, 14: true}
	for i, a := range arr {
		if a.At < 0 || a.At >= tr.Duration {
			t.Fatalf("arrival %d at %v outside [0, %v)", i, a.At, tr.Duration)
		}
		if i > 0 && a.At < arr[i-1].At {
			t.Fatalf("arrivals out of order at %d", i)
		}
		if !queries[a.Query] {
			t.Fatalf("arrival %d drew query %d outside the mix", i, a.Query)
		}
	}
}

// TestTrafficRate: the realized arrival count tracks Rate * Duration.
// 2000 expected arrivals has a Poisson standard deviation of ~45, so a
// 10% band is a > 4-sigma acceptance.
func TestTrafficRate(t *testing.T) {
	tr := testTraffic()
	arr, err := tr.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Rate * tr.Duration.Seconds()
	if got := float64(len(arr)); got < 0.9*want || got > 1.1*want {
		t.Errorf("arrivals = %v, want %v +/- 10%%", got, want)
	}
}

// TestTrafficBurstDensity: arrivals inside a 3x burst phase are ~3x as
// dense as outside it.
func TestTrafficBurstDensity(t *testing.T) {
	tr := testTraffic()
	tr.Bursts = []Phase{{Start: 4 * time.Second, Duration: 2 * time.Second, RateMultiplier: 3}}
	arr, err := tr.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	var in, out int
	for _, a := range arr {
		if a.At >= 4*time.Second && a.At < 6*time.Second {
			in++
		} else {
			out++
		}
	}
	// Base rate: 8s at 200/s = 1600 expected outside; burst: 2s at 600/s
	// = 1200 expected inside.
	inRate := float64(in) / 2
	outRate := float64(out) / 8
	if ratio := inRate / outRate; ratio < 2.5 || ratio > 3.5 {
		t.Errorf("burst density ratio = %.2f (in %d, out %d), want ~3", ratio, in, out)
	}
}

// TestTrafficSkew: a Zipf mix draws its head query far more often than
// its tail query.
func TestTrafficSkew(t *testing.T) {
	tr := testTraffic()
	tr.Mix = ZipfMix(1, 6, 1, 14, 19)
	arr, err := tr.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	count := map[int]int{}
	for _, a := range arr {
		count[a.Query]++
	}
	// Weights 1, 1/2, 1/3, 1/4: the head gets 4x the tail's share.
	if count[6] <= 2*count[19] {
		t.Errorf("skew missing: head Q6 drawn %d, tail Q19 drawn %d", count[6], count[19])
	}
	if count[19] == 0 {
		t.Error("tail query never drawn")
	}
}

// TestTrafficRejectsBadConfigs: invalid models error instead of looping
// or dividing by zero.
func TestTrafficRejectsBadConfigs(t *testing.T) {
	cases := []Traffic{
		{Duration: 0, Rate: 10, Mix: UniformMix(1)},
		{Duration: time.Second, Rate: 0, Mix: UniformMix(1)},
		{Duration: time.Second, Rate: 10},
		{Duration: time.Second, Rate: 10, Mix: []WeightedQuery{{Query: 1, Weight: -1}}},
		{Duration: time.Second, Rate: 10, Mix: []WeightedQuery{{Query: 1, Weight: 0}}},
		{Duration: time.Second, Rate: 10, Mix: UniformMix(1),
			Bursts: []Phase{{Start: 0, Duration: time.Second, RateMultiplier: 0}}},
	}
	for i, tr := range cases {
		if _, err := tr.Schedule(); err == nil {
			t.Errorf("case %d: bad traffic model accepted", i)
		}
	}
}
