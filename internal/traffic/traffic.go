package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Traffic describes an open-loop load model: arrivals are scheduled by a
// Poisson process whose instantaneous rate the client imposes on the
// server regardless of how fast responses come back. This is the honest
// way to load-test an admission controller — a closed loop (send, wait,
// send) self-throttles exactly when the server slows down, hiding the
// overload behavior the controller exists for.
type Traffic struct {
	// Duration is the length of the run.
	Duration time.Duration
	// Rate is the base arrival rate in requests per second.
	Rate float64
	// Mix is the weighted query mix; arrivals draw queries independently
	// with probability proportional to weight.
	Mix []WeightedQuery
	// Bursts are phases during which the arrival rate is multiplied —
	// e.g. a 3x burst for two seconds in the middle of the run. Phases
	// may overlap; multipliers compound.
	Bursts []Phase
	// Seed makes the schedule deterministic.
	Seed int64
}

// WeightedQuery is one entry of a query mix.
type WeightedQuery struct {
	Query  int
	Weight float64
}

// Phase is a burst window relative to the start of the run.
type Phase struct {
	Start    time.Duration
	Duration time.Duration
	// RateMultiplier scales the base rate while the phase is active
	// (values < 1 model lulls).
	RateMultiplier float64
}

// Arrival is one scheduled request.
type Arrival struct {
	At    time.Duration // offset from the start of the run
	Query int
}

// UniformMix weights every query equally.
func UniformMix(queries ...int) []WeightedQuery {
	mix := make([]WeightedQuery, len(queries))
	for i, q := range queries {
		mix[i] = WeightedQuery{Query: q, Weight: 1}
	}
	return mix
}

// ZipfMix weights queries by a Zipf law: the i-th listed query gets
// weight 1/(i+1)^s, so early entries dominate. s=0 degenerates to
// uniform; s=1 is the classic heavy skew.
func ZipfMix(s float64, queries ...int) []WeightedQuery {
	mix := make([]WeightedQuery, len(queries))
	for i, q := range queries {
		mix[i] = WeightedQuery{Query: q, Weight: 1 / math.Pow(float64(i+1), s)}
	}
	return mix
}

// rateAt returns the instantaneous rate multiplier at offset t.
func (tr Traffic) rateAt(t time.Duration) float64 {
	m := 1.0
	for _, p := range tr.Bursts {
		if t >= p.Start && t < p.Start+p.Duration {
			m *= p.RateMultiplier
		}
	}
	return m
}

// Schedule materializes the arrival times and query choices for one run.
// The same Traffic value always yields the same schedule. Inter-arrival
// gaps are exponential with the rate active at the previous arrival —
// the standard thinning-free approximation for piecewise-constant rates,
// exact away from phase edges.
func (tr Traffic) Schedule() ([]Arrival, error) {
	if tr.Duration <= 0 {
		return nil, fmt.Errorf("traffic: duration %v", tr.Duration)
	}
	if tr.Rate <= 0 {
		return nil, fmt.Errorf("traffic: rate %v", tr.Rate)
	}
	if len(tr.Mix) == 0 {
		return nil, fmt.Errorf("traffic: mix is empty")
	}
	total := 0.0
	cum := make([]float64, len(tr.Mix))
	for i, wq := range tr.Mix {
		if wq.Weight < 0 {
			return nil, fmt.Errorf("traffic: negative weight for Q%d", wq.Query)
		}
		total += wq.Weight
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("traffic: mix has zero total weight")
	}
	for _, p := range tr.Bursts {
		if p.RateMultiplier <= 0 || p.Duration <= 0 {
			return nil, fmt.Errorf("traffic: bad burst phase %+v", p)
		}
	}

	rng := rand.New(rand.NewSource(tr.Seed))
	var out []Arrival
	t := time.Duration(0)
	for {
		rate := tr.Rate * tr.rateAt(t)
		gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		t += gap
		if t >= tr.Duration {
			return out, nil
		}
		u := rng.Float64() * total
		q := tr.Mix[sort.SearchFloat64s(cum, u)].Query
		out = append(out, Arrival{At: t, Query: q})
	}
}
