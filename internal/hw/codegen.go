package hw

import "math"

// Primitive cost classes. Codegen multipliers and flavor sets are keyed by
// class rather than by individual signature; the paper's observations are
// also per class (selection comparisons, map arithmetic, merge join, ...).
const (
	ClassSelCmp     = "sel_cmp"
	ClassMapArith   = "map_arith"
	ClassFetch      = "fetch"
	ClassAggr       = "aggr"
	ClassMergeJoin  = "mergejoin"
	ClassHash       = "hash"
	ClassHashInsert = "hash_insert"
	ClassBloom      = "bloom"
	ClassDecompress = "decompress"
)

// Drift models a codegen efficiency multiplier that changes as a primitive
// instance executes, decaying exponentially from Start to End with
// time-constant Tau calls. It reproduces the mid-query compiler cross-overs
// of Figure 4(b): the paper observes them but does not explain them, so the
// model carries them as calibrated behaviour rather than mechanism.
type Drift struct {
	Start, End float64
	Tau        float64 // calls
}

// At returns the multiplier after the given number of calls.
func (d Drift) At(calls int) float64 {
	if d.Tau <= 0 {
		return d.End
	}
	return d.End + (d.Start-d.End)*math.Exp(-float64(calls)/d.Tau)
}

// Codegen is a compiler profile: the efficiency of the code one compiler
// generates for each primitive class on each machine, relative to the
// reference (gcc = 1.0 unless the paper reports otherwise). This is the
// substitution for building with gcc/icc/clang (Table 3); see DESIGN.md §4.
type Codegen struct {
	Name string

	// classMul maps class -> machine name -> multiplier. Missing entries
	// default to the class default ("" machine key), then to 1.0.
	classMul map[string]map[string]float64

	// drift maps class -> Drift for instance-age-dependent efficiency.
	drift map[string]Drift

	// Fetch primitives show density-split behaviour (Figure 4d): one of
	// gcc/clang is best above 50% selection density, the other below,
	// with icc in the middle. FetchHiMul applies at density >= 0.5,
	// FetchLoMul below.
	FetchHiMul float64
	FetchLoMul float64

	// AutoVectorize reports whether this compiler's flags enable SIMD
	// auto-vectorization of dense loops (all of Table 3 do).
	AutoVectorize bool
	// AutoUnroll reports whether the flags enable compiler loop
	// unrolling (gcc -funroll-loops; icc -O5 does; clang -O3 does not).
	AutoUnroll bool
}

// Mul returns the efficiency multiplier of this compiler for the given
// class on the given machine (higher = slower code).
func (cg *Codegen) Mul(class string, m *Machine) float64 {
	mm, ok := cg.classMul[class]
	if !ok {
		return 1.0
	}
	if v, ok := mm[m.Name]; ok {
		return v
	}
	if v, ok := mm[""]; ok {
		return v
	}
	return 1.0
}

// DriftMul returns the instance-age-dependent multiplier for the class, or
// 1.0 when the class has no drift for this compiler.
func (cg *Codegen) DriftMul(class string, calls int) float64 {
	d, ok := cg.drift[class]
	if !ok {
		return 1.0
	}
	return d.At(calls)
}

// FetchMul returns the density-dependent fetch multiplier.
func (cg *Codegen) FetchMul(density float64) float64 {
	if density >= 0.5 {
		return cg.FetchHiMul
	}
	return cg.FetchLoMul
}

// GCC is the gcc 4.6.2 profile (Table 3 flags): the reference compiler.
// Per Figure 4(c)/Figure 5 its merge-join code is ~90% slower on the Intel
// machines.
func GCC() *Codegen {
	return &Codegen{
		Name: "gcc",
		classMul: map[string]map[string]float64{
			ClassMergeJoin: {"machine1": 1.90, "machine2": 1.60, "machine3": 1.50, "machine4": 1.90},
			ClassAggr:      {"": 1.0},
		},
		drift:      map[string]Drift{},
		FetchHiMul: 1.0, FetchLoMul: 1.30,
		AutoVectorize: true, AutoUnroll: true,
	}
}

// ICC is the icc 11.0 profile. Fastest merge joins on Intel but much slower
// on the AMD machine (Figure 5); 2x slower string hash inserts (Figure 4e);
// ~30% slower short addition (Figure 4a); consistently best integer
// aggregation (Figure 4b).
func ICC() *Codegen {
	return &Codegen{
		Name: "icc",
		classMul: map[string]map[string]float64{
			ClassMergeJoin:  {"machine1": 1.00, "machine2": 1.10, "machine3": 1.60, "machine4": 1.00},
			ClassMapArith:   {"": 1.30},
			ClassAggr:       {"": 0.80},
			ClassHashInsert: {"": 2.00},
			ClassSelCmp:     {"": 1.05},
			ClassBloom:      {"": 0.95},
		},
		drift:      map[string]Drift{},
		FetchHiMul: 1.15, FetchLoMul: 1.15,
		AutoVectorize: true, AutoUnroll: true,
	}
}

// Clang is the clang 3.1 profile. Best merge join on the AMD machine
// (Figure 5); its aggregation code starts at gcc level and crosses over to
// beat icc mid-query (Figure 4b), modelled as Drift.
func Clang() *Codegen {
	return &Codegen{
		Name: "clang",
		classMul: map[string]map[string]float64{
			ClassMergeJoin: {"machine1": 1.10, "machine2": 1.00, "machine3": 1.00, "machine4": 1.05},
			ClassMapArith:  {"": 1.15},
			ClassSelCmp:    {"": 0.97},
		},
		drift: map[string]Drift{
			ClassAggr: {Start: 1.02, End: 0.70, Tau: 1200},
		},
		FetchHiMul: 1.30, FetchLoMul: 1.00,
		AutoVectorize: true, AutoUnroll: false,
	}
}

// Compilers returns the three compiler profiles of Table 3, gcc first
// (gcc is the default build).
func Compilers() []*Codegen { return []*Codegen{GCC(), ICC(), Clang()} }

// CompilerByName returns the named profile, or nil.
func CompilerByName(name string) *Codegen {
	for _, cg := range Compilers() {
		if cg.Name == name {
			return cg
		}
	}
	return nil
}
