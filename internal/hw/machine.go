// Package hw models the hardware and compiler dimensions of primitive
// performance diversity described in the paper.
//
// The paper measures real CPU cycles on four physical machines (Table 2)
// built by three C compilers (Table 3). A Go reproduction has neither
// hardware cycle counters it can rely on deterministically, nor multiple
// compilers. Package hw therefore provides a *virtual cycle model*: machine
// profiles with explicit microarchitectural parameters (branch-miss penalty,
// memory latency, memory-level parallelism, cache capacities, SIMD lane
// efficiency) plus compiler "codegen" profiles, calibrated so the cost of a
// primitive call is a mechanistic function of the same data-dependent
// quantities that drive the effects in the paper: actual branch outcomes run
// through a simulated 2-bit predictor, actual working-set sizes run through
// a miss-ratio model or the set-associative cache simulator, selection
// density, data type width, and unrolling.
//
// Everything is deterministic: the same inputs produce the same cycle
// counts on any host, which makes the paper's figures reproducible exactly.
package hw

// Machine is a virtual machine profile. The four constructors correspond to
// Table 2 of the paper; the microarchitectural parameters are calibrated to
// reproduce the relations the paper reports (see DESIGN.md §4).
type Machine struct {
	Name   string
	Vendor string
	Arch   string

	// Cache hierarchy (bytes).
	L1Bytes   int
	L2Bytes   int
	LLCBytes  int
	CacheLine int
	RAMBytes  int64

	// BranchMissPenalty is the pipeline-flush cost in cycles of one
	// mispredicted branch.
	BranchMissPenalty float64

	// MemLat is the latency in cycles of a load that misses all caches.
	MemLat float64

	// OverlapSerial is the effective number of concurrent outstanding
	// cache misses achieved by a loop whose iterations form a dependency
	// chain (the no-fission bloom probe of Listing 5).
	OverlapSerial float64
	// OverlapFission is the effective number of concurrent outstanding
	// misses achieved by an independent-iteration loop (Listing 6). The
	// paper cites up to 5 in-flight iterations on Ivy Bridge.
	OverlapFission float64

	// BloomEffCache is the bloom-filter size at which probes begin to
	// miss the cache on this machine. The paper observes (Figure 6) that
	// the fission cross-over point does *not* trivially follow from the
	// LLC sizes of Table 2 (machine 1 crosses at 1MB despite a 12MB LLC),
	// so the model carries the observed value directly.
	BloomEffCache int

	// SIMD model: lanes = SIMDWidthBytes / typeWidth; a vectorized loop
	// retires PerLaneEff useful elements per cycle-equivalent per lane.
	// PerLaneEff < 1/lanes means auto-vectorization loses to scalar code,
	// as the paper observes on machine 3 (AMD Egypt, Table 4).
	SIMDWidthBytes int
	PerLaneEff     float64

	// Scalar loop shape parameters (cycles/tuple) used by the primitive
	// cost functions.
	LoopOverhead    float64 // per-iteration branch/induction overhead
	UnrollResidual  float64 // fraction of LoopOverhead left after unroll 8
	SelAccessFactor float64 // slowdown of gather via a selection vector
	CallOverhead    float64 // fixed cycles per primitive call (amortized)
	// ArithElem is the scalar cost of one 32-bit multiply-class ALU
	// operation including its load/store, calibrated from Table 4.
	ArithElem float64
}

// Machine1 is the Intel Nehalem box of Table 2 (12MB LLC, 48GB RAM).
func Machine1() *Machine {
	return &Machine{
		Name: "machine1", Vendor: "Intel", Arch: "Nehalem",
		L1Bytes: 32 << 10, L2Bytes: 256 << 10, LLCBytes: 12 << 20,
		CacheLine: 64, RAMBytes: 48 << 30,
		BranchMissPenalty: 17, MemLat: 200,
		OverlapSerial: 2.8, OverlapFission: 4.5,
		BloomEffCache:  512 << 10,
		SIMDWidthBytes: 16, PerLaneEff: 0.39,
		LoopOverhead: 1.0, UnrollResidual: 0.13,
		SelAccessFactor: 1.8, CallOverhead: 48,
		ArithElem: 1.60,
	}
}

// Machine2 is the Intel Core2 box of Table 2 (4MB LLC, 8GB RAM).
func Machine2() *Machine {
	return &Machine{
		Name: "machine2", Vendor: "Intel", Arch: "Core2",
		L1Bytes: 32 << 10, L2Bytes: 4 << 20, LLCBytes: 4 << 20,
		CacheLine: 64, RAMBytes: 8 << 30,
		BranchMissPenalty: 15, MemLat: 240,
		OverlapSerial: 1.2, OverlapFission: 2.8,
		BloomEffCache:  1 << 20,
		SIMDWidthBytes: 16, PerLaneEff: 0.155,
		LoopOverhead: 1.2, UnrollResidual: 0.15,
		SelAccessFactor: 1.9, CallOverhead: 56,
		ArithElem: 1.75,
	}
}

// Machine3 is the AMD Egypt (Opteron) box of Table 2 (1MB LLC, 64GB RAM).
// Its 128-bit SIMD ops are split into two 64-bit halves, so auto-vectorized
// code loses to unrolled scalar code (Table 4 of the paper).
func Machine3() *Machine {
	return &Machine{
		Name: "machine3", Vendor: "AMD", Arch: "Egypt",
		L1Bytes: 64 << 10, L2Bytes: 1 << 20, LLCBytes: 1 << 20,
		CacheLine: 64, RAMBytes: 64 << 30,
		BranchMissPenalty: 12, MemLat: 300,
		OverlapSerial: 1.0, OverlapFission: 3.2,
		BloomEffCache:  128 << 10,
		SIMDWidthBytes: 16, PerLaneEff: 0.155,
		LoopOverhead: 2.1, UnrollResidual: 0.06,
		SelAccessFactor: 1.7, CallOverhead: 64,
		ArithElem: 1.90,
	}
}

// Machine4 is the Intel Sandy Bridge box of Table 2 (8MB LLC, 16GB RAM).
func Machine4() *Machine {
	return &Machine{
		Name: "machine4", Vendor: "Intel", Arch: "Sandy Bridge",
		L1Bytes: 32 << 10, L2Bytes: 256 << 10, LLCBytes: 8 << 20,
		CacheLine: 64, RAMBytes: 16 << 30,
		BranchMissPenalty: 16, MemLat: 180,
		OverlapSerial: 2.2, OverlapFission: 5.0,
		BloomEffCache:  2 << 20,
		SIMDWidthBytes: 16, PerLaneEff: 0.42,
		LoopOverhead: 0.9, UnrollResidual: 0.12,
		SelAccessFactor: 1.8, CallOverhead: 44,
		ArithElem: 1.50,
	}
}

// ScaledCaches returns a copy of the machine with cache capacities scaled
// by f. The reproduction runs TPC-H at small scale factors; shrinking the
// caches proportionally keeps working-set-to-cache ratios (hash-table
// growth, bloom-filter residency) in the paper's regime. Capacities are
// floored so the model stays sane.
func (m *Machine) ScaledCaches(f float64) *Machine {
	if f >= 1 || f <= 0 {
		return m
	}
	c := *m
	scale := func(bytes int, floor int) int {
		v := int(float64(bytes) * f)
		if v < floor {
			v = floor
		}
		return v
	}
	c.L1Bytes = scale(m.L1Bytes, 1<<10)
	c.L2Bytes = scale(m.L2Bytes, 2<<10)
	c.LLCBytes = scale(m.LLCBytes, 16<<10)
	c.BloomEffCache = scale(m.BloomEffCache, 1<<10)
	return &c
}

// Machines returns the four test machines of Table 2, in order.
func Machines() []*Machine {
	return []*Machine{Machine1(), Machine2(), Machine3(), Machine4()}
}

// MachineByName returns the named machine profile, or nil.
func MachineByName(name string) *Machine {
	for _, m := range Machines() {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// SIMDLanes returns how many elements of the given width fit one SIMD word.
func (m *Machine) SIMDLanes(typeWidth int) int {
	if typeWidth <= 0 {
		return 1
	}
	l := m.SIMDWidthBytes / typeWidth
	if l < 1 {
		l = 1
	}
	return l
}

// SIMDSpeed returns the throughput multiplier of an auto-vectorized loop
// over the scalar element cost for elements of the given width. Values
// below 1 mean vectorization hurts (machine 3).
func (m *Machine) SIMDSpeed(typeWidth int) float64 {
	return float64(m.SIMDLanes(typeWidth)) * m.PerLaneEff
}

// MissRatio is the analytic fraction of random accesses into a working set
// of wsBytes that miss a cache of effBytes: 0 while the working set fits,
// then 1-eff/ws (uniform random probes into a resident fraction eff/ws).
func MissRatio(wsBytes, effBytes int) float64 {
	if wsBytes <= 0 || wsBytes <= effBytes {
		return 0
	}
	return 1 - float64(effBytes)/float64(wsBytes)
}
