package hw

// BranchPredictor simulates a single branch site's 2-bit saturating-counter
// predictor, the textbook dynamic predictor that drives the selectivity-
// dependent behaviour of the branching selection primitive (Figure 1 of the
// paper, and Ross, "Selection conditions in main memory", TODS 2004).
//
// States 0,1 predict not-taken; states 2,3 predict taken. The zero value is
// a valid predictor biased to not-taken.
type BranchPredictor struct {
	state uint8
}

// Record feeds one actual branch outcome and reports whether the predictor
// mispredicted it, then trains the counter.
func (p *BranchPredictor) Record(taken bool) (mispredict bool) {
	predictTaken := p.state >= 2
	mispredict = predictTaken != taken
	if taken {
		if p.state < 3 {
			p.state++
		}
	} else {
		if p.state > 0 {
			p.state--
		}
	}
	return mispredict
}

// State exposes the counter value (0..3) for tests.
func (p *BranchPredictor) State() uint8 { return p.state }

// Reset returns the predictor to its initial not-taken bias.
func (p *BranchPredictor) Reset() { p.state = 0 }
