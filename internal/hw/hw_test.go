package hw

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMachineProfiles(t *testing.T) {
	ms := Machines()
	if len(ms) != 4 {
		t.Fatalf("machines = %d, want 4", len(ms))
	}
	// Table 2 of the paper: LLC sizes 12MB, 4MB, 1MB, 8MB.
	wantLLC := []int{12 << 20, 4 << 20, 1 << 20, 8 << 20}
	wantVendor := []string{"Intel", "Intel", "AMD", "Intel"}
	for i, m := range ms {
		if m.LLCBytes != wantLLC[i] {
			t.Errorf("%s LLC = %d, want %d", m.Name, m.LLCBytes, wantLLC[i])
		}
		if m.Vendor != wantVendor[i] {
			t.Errorf("%s vendor = %s, want %s", m.Name, m.Vendor, wantVendor[i])
		}
		if m.OverlapFission <= m.OverlapSerial {
			t.Errorf("%s: fission overlap must exceed serial overlap", m.Name)
		}
	}
	if MachineByName("machine3").Arch != "Egypt" {
		t.Error("machine3 should be the AMD Egypt box")
	}
	if MachineByName("nope") != nil {
		t.Error("unknown machine should be nil")
	}
}

func TestSIMDLanesAndSpeed(t *testing.T) {
	m1 := Machine1()
	if m1.SIMDLanes(4) != 4 || m1.SIMDLanes(8) != 2 || m1.SIMDLanes(2) != 8 {
		t.Error("SSE lane counts wrong")
	}
	if m1.SIMDLanes(0) != 1 || m1.SIMDLanes(32) != 1 {
		t.Error("degenerate widths should clamp to 1 lane")
	}
	// The paper's Table 4: machine 1 SIMD wins for int32, machine 3 loses.
	if Machine1().SIMDSpeed(4) <= 1 {
		t.Error("machine1 int32 SIMD should be profitable")
	}
	if Machine3().SIMDSpeed(4) >= 1 {
		t.Error("machine3 int32 SIMD should be unprofitable (split SSE units)")
	}
	// Figure 8: 64-bit multiplication never benefits on machine 1.
	if Machine1().SIMDSpeed(8) >= 1 {
		t.Error("machine1 int64 SIMD should be unprofitable")
	}
	// Narrower types gain more (Figure 8's short vs int vs long).
	if Machine1().SIMDSpeed(2) <= Machine1().SIMDSpeed(4) {
		t.Error("i16 SIMD speed should exceed i32")
	}
}

func TestMissRatio(t *testing.T) {
	if MissRatio(1<<20, 2<<20) != 0 {
		t.Error("working set within cache must not miss")
	}
	if got := MissRatio(2<<20, 1<<20); got != 0.5 {
		t.Errorf("2x cache miss ratio = %v, want 0.5", got)
	}
	if got := MissRatio(4<<20, 1<<20); got != 0.75 {
		t.Errorf("4x cache miss ratio = %v, want 0.75", got)
	}
	if MissRatio(0, 1024) != 0 {
		t.Error("empty working set must not miss")
	}
}

func TestBranchPredictorLearnsConstantDirection(t *testing.T) {
	var p BranchPredictor
	misses := 0
	for i := 0; i < 100; i++ {
		if p.Record(true) {
			misses++
		}
	}
	if misses > 2 {
		t.Errorf("always-taken misses = %d, want <= 2 (warmup only)", misses)
	}
	p.Reset()
	misses = 0
	for i := 0; i < 100; i++ {
		if p.Record(false) {
			misses++
		}
	}
	if misses != 0 {
		t.Errorf("never-taken misses = %d, want 0 from not-taken bias", misses)
	}
}

func TestBranchPredictorAlternatingIsWorstCase(t *testing.T) {
	var p BranchPredictor
	misses := 0
	n := 1000
	for i := 0; i < n; i++ {
		if p.Record(i%2 == 0) {
			misses++
		}
	}
	if misses < n/3 {
		t.Errorf("alternating misses = %d, want high", misses)
	}
}

// TestBranchPredictorHump verifies the Figure 1 shape driver: random
// branches at 50%% selectivity mispredict far more than at 5%% or 95%%.
func TestBranchPredictorHump(t *testing.T) {
	rate := func(p float64) float64 {
		rng := rand.New(rand.NewSource(1))
		var bp BranchPredictor
		miss := 0
		n := 100000
		for i := 0; i < n; i++ {
			if bp.Record(rng.Float64() < p) {
				miss++
			}
		}
		return float64(miss) / float64(n)
	}
	lo, mid, hi := rate(0.05), rate(0.5), rate(0.95)
	if mid < 0.4 {
		t.Errorf("50%% selectivity miss rate = %v, want ~0.5", mid)
	}
	if lo > 0.15 || hi > 0.15 {
		t.Errorf("extreme selectivity miss rates = %v/%v, want small", lo, hi)
	}
	if mid <= lo || mid <= hi {
		t.Error("miss rate must peak at 50%")
	}
}

func TestCacheBasics(t *testing.T) {
	c := NewCache(1024, 64, 4) // 16 lines, 4 sets
	if miss := c.Access(0); !miss {
		t.Error("first access must miss")
	}
	if miss := c.Access(0); miss {
		t.Error("second access to same line must hit")
	}
	if miss := c.Access(63); miss {
		t.Error("same cache line must hit")
	}
	if miss := c.Access(64); !miss {
		t.Error("next line must miss")
	}
	acc, misses := c.Stats()
	if acc != 4 || misses != 2 {
		t.Errorf("stats = %d/%d, want 4/2", acc, misses)
	}
	c.Flush()
	if acc, _ := c.Stats(); acc != 0 {
		t.Error("flush must clear stats")
	}
	if !c.Access(0) {
		t.Error("post-flush access must miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Direct-mapped-ish: 1 set, 2 ways.
	c := NewCache(128, 64, 2)
	c.Access(0)   // miss, cache {0}
	c.Access(64)  // miss, cache {64,0}
	c.Access(0)   // hit, order {0,64}
	c.Access(128) // miss, evicts 64
	if c.Access(0) {
		t.Error("0 should still be cached (was MRU)")
	}
	if !c.Access(64) {
		t.Error("64 should have been evicted (was LRU)")
	}
}

func TestCacheWorkingSetMissRates(t *testing.T) {
	c := NewCache(64<<10, 64, 8)
	rng := rand.New(rand.NewSource(2))
	// Working set half the cache: near-zero steady-state misses.
	for i := 0; i < 200000; i++ {
		c.Access(uint64(rng.Intn(32 << 10)))
	}
	c2 := NewCache(64<<10, 64, 8)
	for i := 0; i < 200000; i++ {
		c2.Access(uint64(rng.Intn(1 << 20))) // 16x cache
	}
	small := c.MissRate()
	big := c2.MissRate()
	if small > 0.01 {
		t.Errorf("fitting working set miss rate = %v, want ~0", small)
	}
	if big < 0.5 {
		t.Errorf("16x working set miss rate = %v, want > 0.5", big)
	}
}

func TestCachePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewCache(1024, 60, 4) }, // non-power-of-two line
		func() { NewCache(1024, 64, 0) }, // zero associativity
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCodegenProfiles(t *testing.T) {
	gcc, icc, clang := GCC(), ICC(), Clang()
	m1, m3 := Machine1(), Machine3()
	// Figure 5: gcc mergejoin much slower on Intel; icc slower than clang
	// on AMD.
	if gcc.Mul(ClassMergeJoin, m1) < 1.5 {
		t.Error("gcc mergejoin on machine1 should be ~1.9x")
	}
	if icc.Mul(ClassMergeJoin, m3) <= clang.Mul(ClassMergeJoin, m3) {
		t.Error("icc mergejoin should lose to clang on the AMD machine")
	}
	if icc.Mul(ClassMergeJoin, m1) >= gcc.Mul(ClassMergeJoin, m1) {
		t.Error("icc mergejoin should beat gcc on machine1")
	}
	// Figure 4e: icc hash insert 2x slower.
	if icc.Mul(ClassHashInsert, m1) != 2.0 {
		t.Error("icc hash insert should be 2x")
	}
	// Unknown class defaults to 1.
	if gcc.Mul("nonexistent", m1) != 1.0 {
		t.Error("unknown class multiplier should be 1")
	}
	if CompilerByName("gcc") == nil || CompilerByName("nope") != nil {
		t.Error("CompilerByName lookup wrong")
	}
	if len(Compilers()) != 3 {
		t.Error("three compilers expected")
	}
}

func TestClangAggrDriftCrossesICC(t *testing.T) {
	clang, icc := Clang(), ICC()
	early := clang.DriftMul(ClassAggr, 0)
	late := clang.DriftMul(ClassAggr, 100000)
	iccMul := icc.Mul(ClassAggr, Machine4())
	if early <= iccMul {
		t.Errorf("clang aggr should start slower than icc (%v vs %v)", early, iccMul)
	}
	if late >= iccMul {
		t.Errorf("clang aggr should end faster than icc (%v vs %v)", late, iccMul)
	}
	// gcc has no drift.
	if GCC().DriftMul(ClassAggr, 500) != 1.0 {
		t.Error("gcc should have no aggr drift")
	}
}

func TestFetchDensitySplit(t *testing.T) {
	gcc, icc, clang := GCC(), ICC(), Clang()
	// Figure 4d: gcc best at one density regime, clang at the other, icc
	// never best.
	if gcc.FetchMul(0.9) >= clang.FetchMul(0.9) {
		t.Error("gcc should win dense fetches")
	}
	if clang.FetchMul(0.1) >= gcc.FetchMul(0.1) {
		t.Error("clang should win sparse fetches")
	}
	for _, d := range []float64{0.1, 0.9} {
		if icc.FetchMul(d) <= minF(gcc.FetchMul(d), clang.FetchMul(d)) {
			t.Errorf("icc should never be best at density %v", d)
		}
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func TestDriftMonotone(t *testing.T) {
	d := Drift{Start: 1.0, End: 0.7, Tau: 100}
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return d.At(x) >= d.At(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if got := d.At(0); got != 1.0 {
		t.Errorf("At(0) = %v, want Start", got)
	}
	zero := Drift{}
	if zero.At(5) != 0 {
		t.Error("zero-Tau drift should return End")
	}
}
