package hw

// Cache is a set-associative LRU cache simulator. It is the substrate used
// where the paper's effects depend on cache residency that evolves during a
// query (hash-table growth in Figure 4e) and is available for ad-hoc
// microarchitecture experiments.
//
// Tags are stored per set in LRU order (front = most recent). Associativity
// is kept small (4-16) so a lookup is a short linear scan.
type Cache struct {
	lineBits uint
	setMask  uint64
	assoc    int
	sets     [][]uint64

	accesses uint64
	misses   uint64
}

// NewCache builds a cache of totalBytes capacity with the given line size
// and associativity. totalBytes is rounded down to a power-of-two number of
// sets; line size must be a power of two.
func NewCache(totalBytes, lineSize, assoc int) *Cache {
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		panic("hw.NewCache: line size must be a power of two")
	}
	if assoc <= 0 {
		panic("hw.NewCache: associativity must be positive")
	}
	lineBits := uint(0)
	for 1<<lineBits < lineSize {
		lineBits++
	}
	numSets := totalBytes / (lineSize * assoc)
	if numSets < 1 {
		numSets = 1
	}
	// Round down to a power of two.
	p := 1
	for p*2 <= numSets {
		p *= 2
	}
	numSets = p
	c := &Cache{
		lineBits: lineBits,
		setMask:  uint64(numSets - 1),
		assoc:    assoc,
		sets:     make([][]uint64, numSets),
	}
	for i := range c.sets {
		c.sets[i] = make([]uint64, 0, assoc)
	}
	return c
}

// Access touches addr and reports whether it missed. The touched line
// becomes most-recently-used; on a miss in a full set the LRU line is
// evicted.
func (c *Cache) Access(addr uint64) (miss bool) {
	c.accesses++
	tag := addr >> c.lineBits
	set := c.sets[tag&c.setMask]
	for i, t := range set {
		if t == tag {
			// Hit: move to front.
			copy(set[1:i+1], set[:i])
			set[0] = tag
			return false
		}
	}
	c.misses++
	if len(set) < c.assoc {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = tag
	c.sets[tag&c.setMask] = set
	return true
}

// Stats returns total accesses and misses so far.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// MissRate returns misses/accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Flush empties the cache and zeroes the statistics.
func (c *Cache) Flush() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.accesses, c.misses = 0, 0
}
