package primitive

import (
	"math"

	"microadapt/internal/core"
	"microadapt/internal/hw"
)

// Binary-search probe primitives: the merge arm of the engine's
// join-strategy decision. The build side is a SortedTable (keys sorted,
// ties by row), and each probe tuple runs one binary search returning the
// lowest matching build row — the same row JoinTable.Lookup returns, so
// swapping the strategy arm can never change a query result.

// bsearchEntryBytes is the footprint of one sorted-table entry (8-byte key
// + 4-byte row), the unit of the cached-depth estimate below.
const bsearchEntryBytes = 12

// makeBsearch builds sel_bsearch_slng_col (and its miss twin): the exact
// call contract of makeLookup — keys in In[0] (slng), Aux *SortedTable,
// qualifying positions appended to SelOut, build rows written to Res —
// with a binary search in place of the hash probe.
//
// Cost: log2(n) dependent compares per tuple. The top levels of the
// implicit search tree are shared by every probe and stay cache-resident;
// only the levels beyond what the LLC holds miss, so per-tuple stalls are
// (depth - cachedDepth) misses, zero while the table fits. That gives the
// strategy decision a real crossover: against the hash probe's flat
// insertElem + one-miss profile, binary search wins small or cache-warm
// builds and loses big ones. Software prefetch cannot help a dependent
// chain, so unlike the hash lookup the flavor axes are codegen and
// unrolling only.
func makeBsearch(v variant, miss bool) core.PrimFn {
	return func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
		t := c.Aux.(*SortedTable)
		keys := c.In[0].I64()
		out := c.SelOut
		var rows []int32
		if c.Res != nil {
			rows = c.Res.I32()
		}
		k := 0
		try := func(i int32) {
			r := t.Lookup(keys[i])
			if miss {
				if r < 0 {
					out[k] = i
					k++
				}
				return
			}
			if r >= 0 {
				out[k] = i
				if rows != nil {
					rows[i] = r
				}
				k++
			}
		}
		if c.Sel != nil {
			for _, i := range c.Sel {
				try(i)
			}
		} else {
			for i := 0; i < c.N; i++ {
				try(int32(i))
			}
		}
		if c.Res != nil {
			c.Res.SetLen(c.N)
		}
		m := ctx.Machine
		depth := math.Log2(float64(t.Entries()) + 2)
		cached := math.Log2(float64(m.LLCBytes)/bsearchEntryBytes + 2)
		missProbes := depth - cached
		if missProbes < 0 {
			missProbes = 0
		}
		per := cmpElem*depth*v.mul(m) + missProbes*m.MemLat*probeMemMul + v.loopOv(m)
		return k, m.CallOverhead + float64(c.Live())*per
	}
}

func registerBsearch(d *core.Dictionary, o Options) {
	for _, cg := range o.hashCodegens() {
		for _, u := range o.unrolls() {
			v := variant{cg: cg, unroll: u, class: hw.ClassHash}
			meta := map[string]string{"compiler": cg.Name, "unroll": unrollTag(u)}
			name := flavorName(cg.Name, unrollTag(u))
			addFlavor(d, "sel_bsearch_slng_col", hw.ClassHash, &core.Flavor{
				Name: name, Source: cg.Name, Tags: meta,
				Fn: makeBsearch(v, false),
			})
			addFlavor(d, "sel_bsearchmiss_slng_col", hw.ClassHash, &core.Flavor{
				Name: name, Source: cg.Name, Tags: meta,
				Fn: makeBsearch(v, true),
			})
		}
	}
}
