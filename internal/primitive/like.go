package primitive

import (
	"strings"

	"microadapt/internal/core"
	"microadapt/internal/hw"
)

// LikeMatch matches simplified SQL LIKE patterns: literal segments
// separated by '%' wildcards ('_' is not supported; the TPC-H predicates
// this engine runs do not use it).
func LikeMatch(s, pattern string) bool {
	parts := strings.Split(pattern, "%")
	if len(parts) == 1 {
		return s == pattern
	}
	if parts[0] != "" {
		if !strings.HasPrefix(s, parts[0]) {
			return false
		}
		s = s[len(parts[0]):]
	}
	last := parts[len(parts)-1]
	if last != "" {
		if !strings.HasSuffix(s, last) {
			return false
		}
		s = s[:len(s)-len(last)]
	}
	for _, mid := range parts[1 : len(parts)-1] {
		if mid == "" {
			continue
		}
		idx := strings.Index(s, mid)
		if idx < 0 {
			return false
		}
		s = s[idx+len(mid):]
	}
	return true
}

// likeCostFactor scales the comparison cost of string matching relative to
// an integer compare.
const likeCostFactor = 4.0

// makeSelLike builds select_like_str_col_str_val and its negation; like
// all selection primitives it has branching and no-branching flavors.
func makeSelLike(negate, branching bool, v variant) core.PrimFn {
	return func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
		col := c.In[0].Str()
		pattern := c.In[1].Str()[0]
		out := c.SelOut
		k := 0
		if branching {
			mispredicts := 0
			pred := &c.Inst.Pred
			match := func(i int32) {
				ok := LikeMatch(col[i], pattern) != negate
				if pred.Record(ok) {
					mispredicts++
				}
				if ok {
					out[k] = i
					k++
				}
			}
			if c.Sel != nil {
				for _, i := range c.Sel {
					match(i)
				}
			} else {
				for i := 0; i < c.N; i++ {
					match(int32(i))
				}
			}
			cost := selectionCost(ctx, v, c.Live(), k, mispredicts)
			cost += float64(c.Live()) * cmpElem * (likeCostFactor - 1)
			return k, cost
		}
		match := func(i int32) {
			out[k] = i
			k += b2i(LikeMatch(col[i], pattern) != negate)
		}
		if c.Sel != nil {
			for _, i := range c.Sel {
				match(i)
			}
		} else {
			for i := 0; i < c.N; i++ {
				match(int32(i))
			}
		}
		cost := selectionNoBranchCost(ctx, v, c.Live())
		cost += float64(c.Live()) * cmpElem * (likeCostFactor - 1)
		return k, cost
	}
}

// makeSelIn builds select_in_str_col: qualifying tuples are those whose
// value appears in the In[1] value list (built once per call; the lists
// are tiny in practice — TPC-H uses 2-8 values).
func makeSelIn(branching bool, v variant) core.PrimFn {
	return func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
		col := c.In[0].Str()
		vals := c.In[1].Str()
		set := make(map[string]bool, len(vals))
		for _, s := range vals {
			set[s] = true
		}
		out := c.SelOut
		k := 0
		if branching {
			mispredicts := 0
			pred := &c.Inst.Pred
			if c.Sel != nil {
				for _, i := range c.Sel {
					ok := set[col[i]]
					if pred.Record(ok) {
						mispredicts++
					}
					if ok {
						out[k] = i
						k++
					}
				}
			} else {
				for i := 0; i < c.N; i++ {
					ok := set[col[i]]
					if pred.Record(ok) {
						mispredicts++
					}
					if ok {
						out[k] = int32(i)
						k++
					}
				}
			}
			cost := selectionCost(ctx, v, c.Live(), k, mispredicts)
			cost += float64(c.Live()) * cmpElem * (likeCostFactor - 1)
			return k, cost
		}
		if c.Sel != nil {
			for _, i := range c.Sel {
				out[k] = i
				k += b2i(set[col[i]])
			}
		} else {
			for i := 0; i < c.N; i++ {
				out[k] = int32(i)
				k += b2i(set[col[i]])
			}
		}
		cost := selectionNoBranchCost(ctx, v, c.Live())
		cost += float64(c.Live()) * cmpElem * (likeCostFactor - 1)
		return k, cost
	}
}

// makeSelInI32 builds select_in_sint_col: the integer IN-list selection
// (sizes of TPC-H Q16/Q19). Values are In[1] (sint).
func makeSelInI32(branching bool, v variant) core.PrimFn {
	return func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
		col := c.In[0].I32()
		vals := c.In[1].I32()
		set := make(map[int32]bool, len(vals))
		for _, x := range vals {
			set[x] = true
		}
		out := c.SelOut
		k := 0
		if branching {
			mispredicts := 0
			pred := &c.Inst.Pred
			if c.Sel != nil {
				for _, i := range c.Sel {
					ok := set[col[i]]
					if pred.Record(ok) {
						mispredicts++
					}
					if ok {
						out[k] = i
						k++
					}
				}
			} else {
				for i := 0; i < c.N; i++ {
					ok := set[col[i]]
					if pred.Record(ok) {
						mispredicts++
					}
					if ok {
						out[k] = int32(i)
						k++
					}
				}
			}
			return k, selectionCost(ctx, v, c.Live(), k, mispredicts)
		}
		if c.Sel != nil {
			for _, i := range c.Sel {
				out[k] = i
				k += b2i(set[col[i]])
			}
		} else {
			for i := 0; i < c.N; i++ {
				out[k] = int32(i)
				k += b2i(set[col[i]])
			}
		}
		return k, selectionNoBranchCost(ctx, v, c.Live())
	}
}

func registerLike(d *core.Dictionary, o Options) {
	type entry struct {
		sig    string
		negate bool
		in     bool
		inI32  bool
	}
	entries := []entry{
		{"select_like_str_col_str_val", false, false, false},
		{"select_notlike_str_col_str_val", true, false, false},
		{"select_in_str_col", false, true, false},
		{"select_in_sint_col", false, false, true},
	}
	for _, e := range entries {
		for _, cg := range o.codegens() {
			for _, br := range o.Branching {
				for _, u := range o.unrolls() {
					v := variant{cg: cg, unroll: u, class: hw.ClassSelCmp}
					var fn core.PrimFn
					switch {
					case e.inI32:
						fn = makeSelInI32(br == "branch", v)
					case e.in:
						fn = makeSelIn(br == "branch", v)
					default:
						fn = makeSelLike(e.negate, br == "branch", v)
					}
					addFlavor(d, e.sig, hw.ClassSelCmp, &core.Flavor{
						Name:   flavorName(br, cg.Name, unrollTag(u)),
						Source: cg.Name,
						Tags: map[string]string{
							"compiler": cg.Name,
							"branch":   map[string]string{"branch": "y", "nobranch": "n"}[br],
							"unroll":   unrollTag(u),
						},
						Fn: fn,
					})
				}
			}
		}
	}
}
