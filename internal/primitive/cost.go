// Package primitive implements the Vectorwise primitive library scoped to
// the classes the paper measures, together with every flavor axis the paper
// studies: branching vs no-branching selections (Listings 1-2), loop
// fission in the bloom-filter probe (Listings 5-6), selective vs full
// computation (Figure 7), hand unrolling (Listing 7), and the three
// compiler codegen profiles (Table 3).
//
// Every flavor computes its real result with real Go code; its virtual
// cycle cost is produced by the calibrated cost functions in this file,
// driven by the actual data the call processed (branch outcomes through the
// instance's predictor, selection densities, working-set sizes, type
// widths). See internal/hw and DESIGN.md §4 for the substitution rationale.
package primitive

import (
	"microadapt/internal/core"
	"microadapt/internal/hw"
)

// Base per-element cost factors relative to Machine.ArithElem (a 32-bit
// multiply). Additions/subtractions are cheaper, divisions far slower.
const (
	opFactorAdd = 0.85
	opFactorSub = 0.85
	opFactorMul = 1.00
	opFactorDiv = 4.00

	cmpElem      = 0.90 // compare
	selStoreCost = 1.20 // append position to a selection vector
	nobranchDep  = 1.20 // loop-carried k += dependency of Listing 2
	fetchElem    = 1.10 // gather one value
	aggrElem     = 1.10 // accumulate one value
	hashElem     = 1.80 // one hash mix
	concatElem   = 6.00 // string concat for composite keys
	mjElem       = 1.40 // merge-join per consumed input tuple
	mjEmit       = 0.80 // merge-join per produced match
	bloomHash    = 2.20 // bf_hash
	bloomProbe   = 1.30 // bf_get excluding memory stall
	bloomFissPay = 0.60 // extra pass of the fission variant
	insertElem   = 3.50 // hash-table insert-check excluding memory stall
	probeMemMul  = 1.20 // memory stalls per insert-check probe
	groupMemMul  = 0.30 // memory stalls per grouped-aggregate update
	storePerByte = 0.06 // full-computation extra store traffic per byte
)

// variant captures the flavor axes that affect cost; each generated flavor
// closure carries one.
type variant struct {
	cg     *hw.Codegen
	unroll bool // hand unrolling (unroll 8)
	class  string
}

// loopOv is the per-iteration loop overhead of a scalar loop under this
// variant: hand unrolling removes it almost entirely; compiler unrolling
// (-funroll-loops) leaves a slightly larger residual (it cannot specialize
// the template body the way Listing 7 does).
func (v variant) loopOv(m *hw.Machine) float64 {
	switch {
	case v.unroll:
		return m.LoopOverhead * m.UnrollResidual
	case v.cg.AutoUnroll:
		return m.LoopOverhead * m.UnrollResidual * 2.6
	default:
		return m.LoopOverhead
	}
}

// callOv is the fixed per-call cost: the 8x-unrolled bodies bloat the
// instruction footprint, so hand-unrolled flavors pay a small i-cache
// penalty per call — which is why "no unroll" sometimes wins (Table 10).
func (v variant) callOv(m *hw.Machine) float64 {
	if v.unroll {
		return m.CallOverhead * 1.12
	}
	return m.CallOverhead
}

// unrollBias models the class-dependent net effect of 8x hand unrolling
// beyond loop overhead: arithmetic-dense kernels (merge join, aggregates)
// retire better unrolled, while pointer-chasing kernels (fetch, hashing)
// suffer from the 8x instruction footprint. This is the "sometimes better,
// sometimes worse, hard to predict" behaviour behind Table 10; map
// arithmetic carries no bias so Table 4's calibration stays exact.
func (v variant) unrollBias() float64 {
	if !v.unroll {
		return 1.0
	}
	switch v.class {
	case hw.ClassMergeJoin, hw.ClassAggr:
		return 0.95
	case hw.ClassFetch, hw.ClassHash, hw.ClassHashInsert:
		return 1.07
	case hw.ClassSelCmp:
		return 1.02
	default:
		return 1.0
	}
}

// mul is the codegen efficiency multiplier for this variant's class.
func (v variant) mul(m *hw.Machine) float64 { return v.cg.Mul(v.class, m) * v.unrollBias() }

// simdActive reports whether the compiler auto-vectorizes a dense loop of
// elements of the given width under this variant. Hand unrolling defeats
// auto-vectorization (the paper verified this in the generated assembly).
// Compilers vectorize whenever the flag allows it — including on machine 3,
// where the vector units make it a loss (Table 4) — but SSE-era ISAs have
// no 64-bit integer multiply, so 8-byte elements stay scalar (which is why
// mul_long never benefits from full computation in Figure 8).
func (v variant) simdActive(m *hw.Machine, typeWidth int) bool {
	return v.cg.AutoVectorize && !v.unroll && typeWidth < 8 && m.SIMDLanes(typeWidth) > 1
}

// gatherFactor is the slowdown of computing through a selection vector,
// adjusted by element width: narrow elements waste more of each fetched
// cache line, wide elements behave closer to sequential access.
func gatherFactor(m *hw.Machine, typeWidth int) float64 {
	f := m.SelAccessFactor
	switch {
	case typeWidth <= 2:
		return 1 + (f-1)*1.25
	case typeWidth >= 8:
		return 1 + (f-1)*0.45
	default:
		return f
	}
}

// denseLoopCost is the cost of a dense (no selection vector) loop over n
// elements with the given scalar per-element cost: the regime of Table 4.
func denseLoopCost(m *hw.Machine, v variant, n int, elem float64, typeWidth int) float64 {
	perElem := elem * v.mul(m)
	loop := v.loopOv(m)
	if v.simdActive(m, typeWidth) {
		lanes := float64(m.SIMDLanes(typeWidth))
		perElem /= m.SIMDSpeed(typeWidth)
		// The loop control amortizes over the lanes of each vector step.
		loop = m.LoopOverhead / lanes
		if v.cg.AutoUnroll {
			loop *= m.UnrollResidual
		}
	}
	return v.callOv(m) + float64(n)*(perElem+loop)
}

// selectiveLoopCost is the cost of computing only the k selected of n
// elements through a selection vector: gathers defeat SIMD.
func selectiveLoopCost(m *hw.Machine, v variant, k int, elem float64, typeWidth int) float64 {
	perElem := elem * gatherFactor(m, typeWidth) * v.mul(m)
	return v.callOv(m) + float64(k)*(perElem+v.loopOv(m))
}

// fullComputationCost is the cost of ignoring the selection vector and
// computing all n elements (Figure 7 right): dense SIMD-able loop plus the
// extra store traffic of the unneeded results. The full-computation
// template is generated without hand unrolling — "full computation
// trivially maps to SIMD, such that compilers generate it" (§2), and SIMD
// supersedes unrolling there.
func fullComputationCost(m *hw.Machine, v variant, n int, elem float64, typeWidth int) float64 {
	v.unroll = false
	return denseLoopCost(m, v, n, elem, typeWidth) + float64(n)*float64(typeWidth)*storePerByte
}

// selectionCost prices a branching selection: the branch outcomes already
// ran through the instance's 2-bit predictor, yielding mispredicts.
func selectionCost(ctx *core.ExecCtx, v variant, live, selected, mispredicts int) float64 {
	m := ctx.Machine
	return v.callOv(m) +
		float64(live)*(cmpElem*v.mul(m)+v.loopOv(m)) +
		float64(mispredicts)*m.BranchMissPenalty +
		float64(selected)*selStoreCost
}

// selectionNoBranchCost prices the branch-free variant of Listing 2: data-
// independent, every tuple pays compare + index arithmetic + store + the
// loop-carried dependency.
func selectionNoBranchCost(ctx *core.ExecCtx, v variant, live int) float64 {
	m := ctx.Machine
	per := (cmpElem+nobranchDep)*v.mul(m) + selStoreCost + v.loopOv(m)
	return v.callOv(m) + float64(live)*per
}

// bloomProbeCost prices the bloom-filter probe of Listings 5/6. The memory
// stall per probe is the analytic miss ratio of the filter against the
// machine's effective probe cache, divided by how many misses the loop
// shape lets the CPU keep in flight.
func bloomProbeCost(ctx *core.ExecCtx, v variant, live, filterBytes int, fission bool) float64 {
	m := ctx.Machine
	miss := hw.MissRatio(filterBytes, m.BloomEffCache)
	overlap := m.OverlapSerial
	elem := (bloomHash + bloomProbe) * v.mul(m)
	calls := v.callOv(m)
	if fission {
		overlap = m.OverlapFission
		elem += bloomFissPay * v.mul(m)
		calls += v.callOv(m) * 0.5 // second loop
	}
	per := elem + miss*m.MemLat/overlap + v.loopOv(m)
	return calls + float64(live)*per
}

// insertCheckCost prices a hash-table insert-check of one key column. The
// stall term grows as the table outgrows the LLC (Figure 4e).
func insertCheckCost(ctx *core.ExecCtx, v variant, live int, tableBytes int, driftCalls int) float64 {
	m := ctx.Machine
	miss := hw.MissRatio(tableBytes, m.LLCBytes)
	per := (insertElem + miss*m.MemLat*probeMemMul) * v.mul(m) * v.cg.DriftMul(v.class, driftCalls)
	return v.callOv(m) + float64(live)*(per+v.loopOv(m))
}

// groupedUpdateCost prices a grouped aggregate update over live tuples into
// an accumulator array of groups entries.
func groupedUpdateCost(ctx *core.ExecCtx, v variant, live, groups int, driftCalls int) float64 {
	m := ctx.Machine
	miss := hw.MissRatio(groups*16, m.LLCBytes)
	per := (aggrElem+miss*m.MemLat*groupMemMul)*v.mul(m)*v.cg.DriftMul(v.class, driftCalls) + v.loopOv(m)
	return v.callOv(m) + float64(live)*per
}

// fetchCost prices a positional gather; density drives which compiler's
// code wins (Figure 4d), and tiny selections expose the un-amortized call
// overhead (the border spikes of Figure 4c/d).
func fetchCost(ctx *core.ExecCtx, v variant, live int, density float64) float64 {
	m := ctx.Machine
	per := fetchElem*v.cg.FetchMul(density)*v.mul(m) + v.loopOv(m)
	return 3*v.callOv(m) + float64(live)*per
}

// mergeJoinCost prices one merge-join kernel call that consumed the given
// input tuples and emitted matches.
func mergeJoinCost(ctx *core.ExecCtx, v variant, consumed, matches int) float64 {
	m := ctx.Machine
	return v.callOv(m) + float64(consumed)*(mjElem*v.mul(m)+v.loopOv(m)) + float64(matches)*mjEmit
}
