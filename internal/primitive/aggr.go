package primitive

import (
	"microadapt/internal/core"
	"microadapt/internal/hw"
	"microadapt/internal/vector"
)

// AccI64 is a per-group int64 accumulator array, indexed by group id. The
// operator grows it to the current group count before each update call.
type AccI64 struct{ Acc []int64 }

// AccF64 is a per-group float64 accumulator array.
type AccF64 struct{ Acc []float64 }

// Grow extends the accumulator to n groups, filling new slots with init.
func (a *AccI64) Grow(n int, init int64) {
	for len(a.Acc) < n {
		a.Acc = append(a.Acc, init)
	}
}

// Grow extends the accumulator to n groups, filling new slots with init.
func (a *AccF64) Grow(n int, init float64) {
	for len(a.Acc) < n {
		a.Acc = append(a.Acc, init)
	}
}

// aggrKind enumerates the aggregate update functions.
type aggrKind int

const (
	aggrSum aggrKind = iota
	aggrCount
	aggrMin
	aggrMax
)

// makeAggrI64 builds an integer aggregate-update primitive: values In[0]
// (slng), group ids In[1] (sint, may be absent for the global group 0),
// accumulator in Aux (*AccI64). This is the class measured in Figure 4(b)
// (aggr_sum128_sint_col): the paper's 128-bit totals are represented by
// int64 accumulators here.
func makeAggrI64(kind aggrKind, v variant) core.PrimFn {
	return func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
		acc := c.Aux.(*AccI64).Acc
		var vals []int64
		if kind != aggrCount {
			vals = c.In[0].I64()
		}
		var gids []int32
		if len(c.In) > 1 && c.In[1] != nil {
			gids = c.In[1].I32()
		}
		gid := func(i int32) int32 {
			if gids == nil {
				return 0
			}
			return gids[i]
		}
		update := func(i int32) {
			g := gid(i)
			switch kind {
			case aggrSum:
				acc[g] += vals[i]
			case aggrCount:
				acc[g]++
			case aggrMin:
				if vals[i] < acc[g] {
					acc[g] = vals[i]
				}
			case aggrMax:
				if vals[i] > acc[g] {
					acc[g] = vals[i]
				}
			}
		}
		if c.Sel != nil {
			for _, i := range c.Sel {
				update(i)
			}
		} else {
			for i := 0; i < c.N; i++ {
				update(int32(i))
			}
		}
		return c.Live(), groupedUpdateCost(ctx, v, c.Live(), len(acc), c.Inst.Calls)
	}
}

// makeAggrF64 is makeAggrI64 for float64 values (Aux *AccF64).
func makeAggrF64(kind aggrKind, v variant) core.PrimFn {
	return func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
		acc := c.Aux.(*AccF64).Acc
		vals := c.In[0].F64()
		var gids []int32
		if len(c.In) > 1 && c.In[1] != nil {
			gids = c.In[1].I32()
		}
		update := func(i int32) {
			g := int32(0)
			if gids != nil {
				g = gids[i]
			}
			switch kind {
			case aggrSum:
				acc[g] += vals[i]
			case aggrMin:
				if vals[i] < acc[g] {
					acc[g] = vals[i]
				}
			case aggrMax:
				if vals[i] > acc[g] {
					acc[g] = vals[i]
				}
			}
		}
		if c.Sel != nil {
			for _, i := range c.Sel {
				update(i)
			}
		} else {
			for i := 0; i < c.N; i++ {
				update(int32(i))
			}
		}
		return c.Live(), groupedUpdateCost(ctx, v, c.Live(), len(acc), c.Inst.Calls)
	}
}

func registerAggr(d *core.Dictionary, o Options) {
	type entry struct {
		sig  string
		kind aggrKind
		f64  bool
	}
	entries := []entry{
		{"aggr_sum_slng_col", aggrSum, false},
		{"aggr_count_col", aggrCount, false},
		{"aggr_min_slng_col", aggrMin, false},
		{"aggr_max_slng_col", aggrMax, false},
		{"aggr_sum_dbl_col", aggrSum, true},
		{"aggr_min_dbl_col", aggrMin, true},
		{"aggr_max_dbl_col", aggrMax, true},
	}
	for _, e := range entries {
		for _, cg := range o.codegens() {
			for _, u := range o.unrolls() {
				v := variant{cg: cg, unroll: u, class: hw.ClassAggr}
				var fn core.PrimFn
				if e.f64 {
					fn = makeAggrF64(e.kind, v)
				} else {
					fn = makeAggrI64(e.kind, v)
				}
				addFlavor(d, e.sig, hw.ClassAggr, &core.Flavor{
					Name:   flavorName(cg.Name, unrollTag(u)),
					Source: cg.Name,
					Tags:   map[string]string{"compiler": cg.Name, "unroll": unrollTag(u)},
					Fn:     fn,
				})
			}
		}
	}
}

// AggrValueType returns the accumulator element type for a value column
// type, used by the aggregation operator to pick signatures.
func AggrValueType(t vector.Type) vector.Type {
	switch t {
	case vector.I16, vector.I32, vector.I64:
		return vector.I64
	case vector.F64:
		return vector.F64
	default:
		panic("primitive: cannot aggregate type " + t.String())
	}
}
