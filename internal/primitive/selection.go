package primitive

import (
	"microadapt/internal/core"
	"microadapt/internal/hw"
	"microadapt/internal/vector"
)

// ordered covers every vector element type that supports comparison.
type ordered interface {
	~int16 | ~int32 | ~int64 | ~float64 | ~string
}

// Comparison operators, in the spelling used inside signatures.
var selOps = []string{"<", "<=", ">", ">=", "==", "!="}

func cmpFn[T ordered](op string) func(a, b T) bool {
	switch op {
	case "<":
		return func(a, b T) bool { return a < b }
	case "<=":
		return func(a, b T) bool { return a <= b }
	case ">":
		return func(a, b T) bool { return a > b }
	case ">=":
		return func(a, b T) bool { return a >= b }
	case "==":
		return func(a, b T) bool { return a == b }
	case "!=":
		return func(a, b T) bool { return a != b }
	default:
		panic("primitive: unknown comparison " + op)
	}
}

// slice extracts the typed backing slice of a vector; instantiated per T.
func sliceOf[T ordered](v *vector.Vector) []T {
	switch any(*new(T)).(type) {
	case int16:
		return any(v.I16()).([]T)
	case int32:
		return any(v.I32()).([]T)
	case int64:
		return any(v.I64()).([]T)
	case float64:
		return any(v.F64()).([]T)
	case string:
		return any(v.Str()).([]T)
	default:
		panic("primitive: unsupported element type")
	}
}

// makeSelect builds one selection flavor: Listing 1 (branching=true) or
// Listing 2 (branching=false), for column-vs-constant (rhsCol=false) or
// column-vs-column comparisons. It writes qualifying positions to
// c.SelOut and returns their count.
func makeSelect[T ordered](op string, rhsCol bool, branching bool, v variant) core.PrimFn {
	cmp := cmpFn[T](op)
	if branching {
		return func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
			col := sliceOf[T](c.In[0])
			rhs := sliceOf[T](c.In[1])
			out := c.SelOut
			k := 0
			mispredicts := 0
			pred := &c.Inst.Pred
			if rhsCol {
				if c.Sel != nil {
					for _, i := range c.Sel {
						ok := cmp(col[i], rhs[i])
						if pred.Record(ok) {
							mispredicts++
						}
						if ok {
							out[k] = i
							k++
						}
					}
				} else {
					for i := 0; i < c.N; i++ {
						ok := cmp(col[i], rhs[i])
						if pred.Record(ok) {
							mispredicts++
						}
						if ok {
							out[k] = int32(i)
							k++
						}
					}
				}
			} else {
				val := rhs[0]
				if c.Sel != nil {
					for _, i := range c.Sel {
						ok := cmp(col[i], val)
						if pred.Record(ok) {
							mispredicts++
						}
						if ok {
							out[k] = i
							k++
						}
					}
				} else {
					for i := 0; i < c.N; i++ {
						ok := cmp(col[i], val)
						if pred.Record(ok) {
							mispredicts++
						}
						if ok {
							out[k] = int32(i)
							k++
						}
					}
				}
			}
			return k, selectionCost(ctx, v, c.Live(), k, mispredicts)
		}
	}
	// No-branching variant: result generation is unconditional; the
	// output cursor advances by the comparison outcome (Listing 2).
	return func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
		col := sliceOf[T](c.In[0])
		rhs := sliceOf[T](c.In[1])
		out := c.SelOut
		k := 0
		if rhsCol {
			if c.Sel != nil {
				for _, i := range c.Sel {
					out[k] = i
					k += b2i(cmp(col[i], rhs[i]))
				}
			} else {
				for i := 0; i < c.N; i++ {
					out[k] = int32(i)
					k += b2i(cmp(col[i], rhs[i]))
				}
			}
		} else {
			val := rhs[0]
			if c.Sel != nil {
				for _, i := range c.Sel {
					out[k] = i
					k += b2i(cmp(col[i], val))
				}
			} else {
				for i := 0; i < c.N; i++ {
					out[k] = int32(i)
					k += b2i(cmp(col[i], val))
				}
			}
		}
		return k, selectionNoBranchCost(ctx, v, c.Live())
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// registerSelectionsFor registers all comparison selections for one type.
func registerSelectionsFor[T ordered](d *core.Dictionary, o Options, t vector.Type) {
	for _, op := range selOps {
		for _, rhsCol := range []bool{false, true} {
			sig := SelSig(op, t, rhsCol)
			for _, cg := range o.codegens() {
				for _, br := range o.Branching {
					for _, u := range o.unrolls() {
						v := variant{cg: cg, unroll: u, class: hw.ClassSelCmp}
						fn := makeSelect[T](op, rhsCol, br == "branch", v)
						addFlavor(d, sig, hw.ClassSelCmp, &core.Flavor{
							Name:   flavorName(br, cg.Name, unrollTag(u)),
							Source: cg.Name,
							Tags: map[string]string{
								"compiler": cg.Name,
								"branch":   map[string]string{"branch": "y", "nobranch": "n"}[br],
								"unroll":   unrollTag(u),
							},
							Fn: fn,
						})
					}
				}
			}
		}
	}
}

func registerSelections(d *core.Dictionary, o Options) {
	registerSelectionsFor[int16](d, o, vector.I16)
	registerSelectionsFor[int32](d, o, vector.I32)
	registerSelectionsFor[int64](d, o, vector.I64)
	registerSelectionsFor[float64](d, o, vector.F64)
	registerSelectionsFor[string](d, o, vector.Str)
}
