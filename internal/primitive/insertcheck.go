package primitive

import (
	"microadapt/internal/core"
	"microadapt/internal/hw"
	"microadapt/internal/vector"
)

// makeInsertCheckI64 builds hash_insertcheck_slng_col (also used for sint
// keys after widening): for each live tuple it inserts-or-finds the key in
// the group table (Aux *GroupTableI64) and writes the group id to Res.
// The cost grows with the table's working set (Figure 4e).
func makeInsertCheckI64(v variant) core.PrimFn {
	return func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
		t := c.Aux.(*GroupTableI64)
		keys := c.In[0].I64()
		res := c.Res.I32()
		if c.Sel != nil {
			for _, i := range c.Sel {
				res[i] = t.insertCheck(keys[i])
			}
		} else {
			for i := 0; i < c.N; i++ {
				res[i] = t.insertCheck(keys[i])
			}
		}
		c.Res.SetLen(c.N)
		return c.Live(), insertCheckCost(ctx, v, c.Live(), t.ByteSize(), c.Inst.Calls)
	}
}

// makeInsertCheckStr builds hash_insertcheck_str_col (Figure 4e's exact
// primitive), with Aux *GroupTableStr.
func makeInsertCheckStr(v variant) core.PrimFn {
	return func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
		t := c.Aux.(*GroupTableStr)
		keys := c.In[0].Str()
		res := c.Res.I32()
		if c.Sel != nil {
			for _, i := range c.Sel {
				res[i] = t.insertCheck(keys[i])
			}
		} else {
			for i := 0; i < c.N; i++ {
				res[i] = t.insertCheck(keys[i])
			}
		}
		c.Res.SetLen(c.N)
		return c.Live(), insertCheckCost(ctx, v, c.Live(), t.ByteSize(), c.Inst.Calls)
	}
}

func registerInsertCheck(d *core.Dictionary, o Options) {
	for _, cg := range o.hashCodegens() {
		for _, u := range o.unrolls() {
			v := variant{cg: cg, unroll: u, class: hw.ClassHashInsert}
			meta := map[string]string{"compiler": cg.Name, "unroll": unrollTag(u)}
			addFlavor(d, "hash_insertcheck_slng_col", hw.ClassHashInsert, &core.Flavor{
				Name: flavorName(cg.Name, unrollTag(u)), Source: cg.Name, Tags: meta,
				Fn: makeInsertCheckI64(v),
			})
			addFlavor(d, "hash_insertcheck_str_col", hw.ClassHashInsert, &core.Flavor{
				Name: flavorName(cg.Name, unrollTag(u)), Source: cg.Name, Tags: meta,
				Fn: makeInsertCheckStr(v),
			})
		}
	}
}

// makeLookup builds sel_htlookup_slng_col: for each live probe tuple it
// looks up the key (In[0], slng) in the join table (Aux *JoinTable); tuples
// with a match have their position appended to SelOut and the matching
// build row id written to Res (sint) at that position. PK-FK joins have at
// most one match per probe key, which is how the engine uses it.
//
// prefetch is the software-prefetch distance of the flavor (the paper's
// future-work extension): deeper distances overlap more of the lookup's
// memory stalls, cost fixed per-tuple overhead, and waste work when the
// table is cache-resident — so the best distance depends on machine and
// table size, exactly the tuning problem Micro Adaptivity automates.
func makeLookup(v variant, miss bool, prefetch int) core.PrimFn {
	return func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
		t := c.Aux.(*JoinTable)
		keys := c.In[0].I64()
		out := c.SelOut
		var rows []int32
		if c.Res != nil {
			rows = c.Res.I32()
		}
		k := 0
		try := func(i int32) {
			r := t.Lookup(keys[i])
			if miss {
				if r < 0 {
					out[k] = i
					k++
				}
				return
			}
			if r >= 0 {
				out[k] = i
				if rows != nil {
					rows[i] = r
				}
				k++
			}
		}
		if c.Sel != nil {
			for _, i := range c.Sel {
				try(i)
			}
		} else {
			for i := 0; i < c.N; i++ {
				try(int32(i))
			}
		}
		if c.Res != nil {
			c.Res.SetLen(c.N)
		}
		m := ctx.Machine
		missRatio := hw.MissRatio(t.ByteSize(), m.LLCBytes)
		stall := missRatio * m.MemLat * probeMemMul
		perOverhead := 0.0
		switch {
		case prefetch >= 16:
			stall /= 3.2
			perOverhead = 0.6
		case prefetch >= 4:
			stall /= 1.8
			perOverhead = 0.3
		}
		// The sizing decision moves the table along a probes-vs-misses
		// curve: a snug table collides more (probeMul > 1), a roomy one
		// barely at all, but its larger ByteSize already raised missRatio.
		per := (insertElem+stall)*probeMul(t.LoadFactor())*v.mul(m) + perOverhead + v.loopOv(m)
		return k, m.CallOverhead + float64(c.Live())*per
	}
}

// probeMul scales the per-probe cost by the expected slot inspections of a
// successful linear-probing search at load factor α — (1 + 1/(1-α))/2,
// Knuth's classic result — normalized to the default "norm" sizing's α of
// 0.5 so that sizing keeps its calibrated cost.
func probeMul(alpha float64) float64 {
	if alpha > 0.95 {
		alpha = 0.95
	}
	if alpha < 0 {
		alpha = 0
	}
	const atNorm = (1 + 1/(1-0.5)) / 2
	return (1 + 1/(1-alpha)) / 2 / atNorm
}

func prefetchTag(d int) string {
	switch d {
	case 4:
		return "p4"
	case 16:
		return "p16"
	default:
		return "p0"
	}
}

func registerLookup(d *core.Dictionary, o Options) {
	for _, cg := range o.hashCodegens() {
		for _, u := range o.unrolls() {
			for _, pf := range o.prefetches() {
				v := variant{cg: cg, unroll: u, class: hw.ClassHash}
				meta := map[string]string{
					"compiler": cg.Name,
					"unroll":   unrollTag(u),
					"prefetch": prefetchTag(pf),
				}
				name := flavorName(cg.Name, unrollTag(u), prefetchTag(pf))
				addFlavor(d, "sel_htlookup_slng_col", hw.ClassHash, &core.Flavor{
					Name: name, Source: cg.Name, Tags: meta,
					Fn: makeLookup(v, false, pf),
				})
				addFlavor(d, "sel_htmiss_slng_col", hw.ClassHash, &core.Flavor{
					Name: name, Source: cg.Name, Tags: meta,
					Fn: makeLookup(v, true, pf),
				})
			}
		}
	}
}

// widenToI64 converts an I16/I32/I64 vector into an I64 key vector in res,
// a helper operators use before calling slng-keyed hash primitives.
func widenToI64(in *vector.Vector, sel vector.Sel, n int, res *vector.Vector) {
	dst := res.I64()
	switch in.Type() {
	case vector.I16:
		src := in.I16()
		if sel != nil {
			for _, i := range sel {
				dst[i] = int64(src[i])
			}
		} else {
			for i := 0; i < n; i++ {
				dst[i] = int64(src[i])
			}
		}
	case vector.I32:
		src := in.I32()
		if sel != nil {
			for _, i := range sel {
				dst[i] = int64(src[i])
			}
		} else {
			for i := 0; i < n; i++ {
				dst[i] = int64(src[i])
			}
		}
	case vector.I64:
		src := in.I64()
		if sel != nil {
			for _, i := range sel {
				dst[i] = src[i]
			}
		} else {
			copy(dst[:n], src[:n])
		}
	default:
		panic("primitive: cannot widen type " + in.Type().String())
	}
	res.SetLen(n)
}

// WidenToI64 is the exported form used by the engine.
func WidenToI64(in *vector.Vector, sel vector.Sel, n int, res *vector.Vector) {
	widenToI64(in, sel, n, res)
}
