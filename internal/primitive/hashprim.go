package primitive

import (
	"microadapt/internal/core"
	"microadapt/internal/hw"
	"microadapt/internal/vector"
)

// HashI64 is the engine's 64-bit hash (the same mix the bloom filter uses).
func HashI64(x int64) uint64 {
	u := uint64(x)
	u ^= u >> 33
	u *= 0xff51afd7ed558ccd
	u ^= u >> 33
	u *= 0xc4ceb9fe1a85ec53
	u ^= u >> 33
	return u
}

// HashStr hashes a string with FNV-1a folded through the 64-bit mixer.
func HashStr(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return HashI64(int64(h))
}

// makeMapHash builds map_hash_<t>_col: Res (slng) gets the hash of each
// live input value.
func makeMapHash(t vector.Type, v variant) core.PrimFn {
	return func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
		res := c.Res.I64()
		switch t {
		case vector.I32:
			in := c.In[0].I32()
			if c.Sel != nil {
				for _, i := range c.Sel {
					res[i] = int64(HashI64(int64(in[i])))
				}
			} else {
				for i := 0; i < c.N; i++ {
					res[i] = int64(HashI64(int64(in[i])))
				}
			}
		case vector.I64:
			in := c.In[0].I64()
			if c.Sel != nil {
				for _, i := range c.Sel {
					res[i] = int64(HashI64(in[i]))
				}
			} else {
				for i := 0; i < c.N; i++ {
					res[i] = int64(HashI64(in[i]))
				}
			}
		case vector.Str:
			in := c.In[0].Str()
			if c.Sel != nil {
				for _, i := range c.Sel {
					res[i] = int64(HashStr(in[i]))
				}
			} else {
				for i := 0; i < c.N; i++ {
					res[i] = int64(HashStr(in[i]))
				}
			}
		default:
			panic("primitive: map_hash unsupported type " + t.String())
		}
		c.Res.SetLen(c.N)
		m := ctx.Machine
		per := hashElem*v.mul(m) + v.loopOv(m)
		return c.Live(), m.CallOverhead + float64(c.Live())*per
	}
}

// makeConcat builds map_concat_str_col_str_col, used to pack multi-column
// group-by keys into one string key column.
func makeConcat(v variant) core.PrimFn {
	return func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
		a := c.In[0].Str()
		b := c.In[1].Str()
		res := c.Res.Str()
		if c.Sel != nil {
			for _, i := range c.Sel {
				res[i] = a[i] + "\x00" + b[i]
			}
		} else {
			for i := 0; i < c.N; i++ {
				res[i] = a[i] + "\x00" + b[i]
			}
		}
		c.Res.SetLen(c.N)
		m := ctx.Machine
		per := concatElem*v.mul(m) + v.loopOv(m)
		return c.Live(), m.CallOverhead + float64(c.Live())*per
	}
}

func registerHashPrims(d *core.Dictionary, o Options) {
	for _, t := range []vector.Type{vector.I32, vector.I64, vector.Str} {
		sig := "map_hash_" + t.String() + "_col"
		for _, cg := range o.hashCodegens() {
			for _, u := range o.unrolls() {
				v := variant{cg: cg, unroll: u, class: hw.ClassHash}
				addFlavor(d, sig, hw.ClassHash, &core.Flavor{
					Name:   flavorName(cg.Name, unrollTag(u)),
					Source: cg.Name,
					Tags:   map[string]string{"compiler": cg.Name, "unroll": unrollTag(u)},
					Fn:     makeMapHash(t, v),
				})
			}
		}
	}
	sig := "map_concat_str_col_str_col"
	for _, cg := range o.hashCodegens() {
		for _, u := range o.unrolls() {
			v := variant{cg: cg, unroll: u, class: hw.ClassHash}
			addFlavor(d, sig, hw.ClassHash, &core.Flavor{
				Name:   flavorName(cg.Name, unrollTag(u)),
				Source: cg.Name,
				Tags:   map[string]string{"compiler": cg.Name, "unroll": unrollTag(u)},
				Fn:     makeConcat(v),
			})
		}
	}
}
