package primitive

import (
	"testing"

	"microadapt/internal/core"
	"microadapt/internal/hw"
)

// TestInstanceKeyStability: the cache key must be identical across sessions
// for the same plan position and must not collide across labels or
// signatures.
func TestInstanceKeyStability(t *testing.T) {
	if InstanceKey("select_<_sint_col_sint_val", "Q12/sel#0") != "select_<_sint_col_sint_val@Q12/sel#0" {
		t.Error("key format changed — this breaks every populated knowledge cache")
	}
	if InstanceKey("a", "b") == InstanceKey("a", "c") {
		t.Error("labels must distinguish keys")
	}
	if InstanceKey("a", "b") == InstanceKey("c", "b") {
		t.Error("signatures must distinguish keys")
	}

	// Two independent sessions over equal dictionaries produce instances
	// with equal keys for the same plan label.
	mk := func() *core.Instance {
		d := NewDictionary(BranchSet())
		s := core.NewSession(d, hw.Machine1())
		return s.Instance("select_<_sint_col_sint_val", "Q06/shipdate#0")
	}
	if InstanceKeyOf(mk()) != InstanceKeyOf(mk()) {
		t.Error("instance keys differ across sessions")
	}
}

// TestInstanceKeyCollapsesPartitions: the fragment instances of every
// pipeline partition — and the serial plan's instance — share one key, so
// P per-partition bandits aggregate knowledge under one cache entry.
func TestInstanceKeyCollapsesPartitions(t *testing.T) {
	d := NewDictionary(BranchSet())
	serial := core.NewSession(d, hw.Machine1())
	want := InstanceKeyOf(serial.Instance("select_<_sint_col_sint_val", "Q06/sel#0"))
	parent := core.NewSession(d, hw.Machine1(), core.WithParallelism(2))
	for part := 0; part < 2; part++ {
		fs := parent.Fragment(part)
		inst := fs.Instance("select_<_sint_col_sint_val", "Q06/sel#0")
		if inst.Label == "Q06/sel#0" {
			t.Fatalf("partition %d: label %q not partition-tagged", part, inst.Label)
		}
		if got := InstanceKeyOf(inst); got != want {
			t.Errorf("partition %d key %q, want serial key %q", part, got, want)
		}
	}
}

// TestFlavorNamesOrder: FlavorNames must follow arm order — it is the
// translation table between arm indices and name-keyed cached knowledge.
func TestFlavorNamesOrder(t *testing.T) {
	d := NewDictionary(BranchSet())
	p := d.MustLookup("select_<_sint_col_sint_val")
	names := FlavorNames(p)
	if len(names) != len(p.Flavors) {
		t.Fatalf("names = %d, flavors = %d", len(names), len(p.Flavors))
	}
	for i, f := range p.Flavors {
		if names[i] != f.Name {
			t.Errorf("names[%d] = %q, flavor = %q", i, names[i], f.Name)
		}
	}
	// BranchSet gives selections exactly the branch/nobranch pair, so the
	// names must be distinct (a collapsed name would merge cache entries).
	if len(names) != 2 || names[0] == names[1] {
		t.Errorf("branch-set selection flavors = %v", names)
	}
}
