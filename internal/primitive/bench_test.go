package primitive

import (
	"math/rand"
	"testing"

	"microadapt/internal/bloom"
	"microadapt/internal/core"
	"microadapt/internal/hw"
	"microadapt/internal/vector"
)

// Wall-clock benchmarks of the real primitive kernels (the Go code itself,
// independent of the virtual cycle model).

func benchSession(b *testing.B, o Options) *core.Session {
	b.Helper()
	return core.NewSession(NewDictionary(o), hw.Machine1(), core.WithVectorSize(1024))
}

func BenchmarkKernelSelectBranching(b *testing.B) { benchSelect(b, 0) }

func BenchmarkKernelSelectNoBranching(b *testing.B) { benchSelect(b, 1) }

func benchSelect(b *testing.B, arm int) {
	s := benchSession(b, BranchSet())
	inst := s.Instance("select_<_sint_col_sint_val", "bench")
	fl := inst.Prim.Flavors[arm]
	rng := rand.New(rand.NewSource(1))
	n := 1024
	col := make([]int32, n)
	for i := range col {
		col[i] = int32(rng.Intn(100))
	}
	out := make([]int32, n)
	c := &core.Call{N: n, In: []*vector.Vector{vector.FromI32(col), vector.ConstI32(50)}, SelOut: out, Inst: inst}
	b.SetBytes(int64(4 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl.Fn(s.Ctx, c)
	}
}

func BenchmarkKernelMapMulDense(b *testing.B) {
	s := benchSession(b, Defaults())
	inst := s.Instance("map_*_slng_col_slng_col", "bench")
	fl := inst.Prim.Flavors[0]
	n := 1024
	x := vector.New(vector.I64, n)
	y := vector.New(vector.I64, n)
	res := vector.New(vector.I64, n)
	x.SetLen(n)
	y.SetLen(n)
	res.SetLen(n)
	c := &core.Call{N: n, In: []*vector.Vector{x, y}, Res: res, Inst: inst}
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl.Fn(s.Ctx, c)
	}
}

func BenchmarkKernelBloomProbe(b *testing.B) { benchBloom(b, 0) }

func BenchmarkKernelBloomProbeFission(b *testing.B) { benchBloom(b, 1) }

func benchBloom(b *testing.B, arm int) {
	s := benchSession(b, FissionSet())
	inst := s.Instance("sel_bloomfilter_slng_col", "bench")
	fl := inst.Prim.Flavors[arm]
	f := bloom.New(1<<20, 2)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		f.Add(rng.Int63())
	}
	n := 1024
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63()
	}
	out := make([]int32, n)
	c := &core.Call{N: n, In: []*vector.Vector{vector.FromI64(keys)}, SelOut: out, Aux: f, Inst: inst}
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl.Fn(s.Ctx, c)
	}
}

func BenchmarkKernelInsertCheck(b *testing.B) {
	s := benchSession(b, Defaults())
	inst := s.Instance("hash_insertcheck_slng_col", "bench")
	fl := inst.Prim.Flavors[0]
	tab := NewGroupTableI64(1024)
	n := 1024
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i % 256)
	}
	gids := vector.New(vector.I32, n)
	c := &core.Call{N: n, In: []*vector.Vector{vector.FromI64(keys)}, Res: gids, Aux: tab, Inst: inst}
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl.Fn(s.Ctx, c)
	}
}

func BenchmarkKernelMergeJoin(b *testing.B) {
	s := benchSession(b, Defaults())
	inst := s.Instance("mergejoin_slng_col_slng_col", "bench")
	fl := inst.Prim.Flavors[0]
	n := 1 << 16
	lk := make([]int64, n)
	rk := make([]int64, n)
	for i := range lk {
		lk[i] = int64(i)
		rk[i] = int64(i)
	}
	b.SetBytes(int64(16 * 1024))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := NewMergeState(lk, rk)
		st.LOut = make([]int32, 1024)
		st.ROut = make([]int32, 1024)
		c := &core.Call{N: 1024, Aux: st, Inst: inst}
		fl.Fn(s.Ctx, c)
	}
}
