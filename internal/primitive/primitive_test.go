package primitive

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"microadapt/internal/bloom"
	"microadapt/internal/core"
	"microadapt/internal/hw"
	"microadapt/internal/vector"
)

func testSetup(t testing.TB, o Options) (*core.Session, *core.ExecCtx) {
	t.Helper()
	d := NewDictionary(o)
	s := core.NewSession(d, hw.Machine1(), core.WithVectorSize(64), core.WithSeed(3))
	return s, s.Ctx
}

// runSel invokes one selection flavor and returns the selected positions.
func runSel(s *core.Session, sig string, arm int, label string, c *core.Call) []int32 {
	inst := s.Instance(sig, label)
	c.Inst = inst
	k, cycles := inst.Prim.Flavors[arm].Fn(s.Ctx, c)
	if cycles <= 0 {
		panic("non-positive cycle cost")
	}
	return c.SelOut[:k]
}

func TestRegistrationCounts(t *testing.T) {
	d := NewDictionary(Defaults())
	for _, sig := range d.Sigs() {
		if n := d.NumFlavors(sig); n != 1 {
			t.Errorf("%s: defaults registered %d flavors, want 1", sig, n)
		}
	}
	dAll := NewDictionary(Everything())
	// Selection comparisons: 2 branch x 3 compilers x 2 unroll = 12.
	if n := dAll.NumFlavors("select_<_sint_col_sint_val"); n != 12 {
		t.Errorf("selection flavors = %d, want 12", n)
	}
	// Maps: 2 compute x 3 compilers x 2 unroll = 12.
	if n := dAll.NumFlavors("map_*_slng_col_slng_col"); n != 12 {
		t.Errorf("map flavors = %d, want 12", n)
	}
	// Bloom: 2 fission x 3 compilers = 6.
	if n := dAll.NumFlavors("sel_bloomfilter_slng_col"); n != 6 {
		t.Errorf("bloom flavors = %d, want 6", n)
	}
	if len(dAll.Sigs()) < 120 {
		t.Errorf("signatures = %d, want a full library (>120)", len(dAll.Sigs()))
	}
}

func TestFlavorSetAxes(t *testing.T) {
	cases := []struct {
		o    Options
		sig  string
		want int
	}{
		{BranchSet(), "select_>=_sint_col_sint_val", 2},
		{CompilerSet(), "select_>=_sint_col_sint_val", 3},
		{UnrollSet(), "select_>=_sint_col_sint_val", 2},
		{ComputeSet(), "map_+_dbl_col_dbl_val", 2},
		{FissionSet(), "sel_bloomfilter_slng_col", 2},
		{BranchSet(), "map_+_dbl_col_dbl_val", 1}, // branch axis does not touch maps
		{ComputeSet(), "select_>=_sint_col_sint_val", 1},
	}
	for _, c := range cases {
		d := NewDictionary(c.o)
		if n := d.NumFlavors(c.sig); n != c.want {
			t.Errorf("%s: flavors = %d, want %d", c.sig, n, c.want)
		}
	}
}

// TestSelectionFlavorEquivalence: every flavor of every comparison op must
// select exactly the same positions (the defining property of flavors).
func TestSelectionFlavorEquivalence(t *testing.T) {
	s, _ := testSetup(t, Everything())
	rng := rand.New(rand.NewSource(9))
	n := 64
	col := make([]int32, n)
	for i := range col {
		col[i] = int32(rng.Intn(8))
	}
	colV := vector.FromI32(col)
	val := vector.ConstI32(4)
	for _, op := range selOps {
		sig := SelSig(op, vector.I32, false)
		prim := s.Dict.MustLookup(sig)
		var want []int32
		for arm := range prim.Flavors {
			out := make([]int32, n)
			c := &core.Call{N: n, In: []*vector.Vector{colV, val}, SelOut: out}
			got := runSel(s, sig, arm, fmt.Sprintf("%s/a%d", sig, arm), c)
			if arm == 0 {
				want = append([]int32(nil), got...)
				continue
			}
			if !equalSel(got, want) {
				t.Errorf("%s flavor %s disagrees", sig, prim.Flavors[arm].Name)
			}
		}
		if len(want) == 0 || len(want) == n {
			t.Errorf("%s: degenerate test selectivity %d/%d", sig, len(want), n)
		}
	}
}

func equalSel(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSelectionUnderInputSel: selection primitives compose selection
// vectors correctly (positions stay in original coordinates).
func TestSelectionUnderInputSel(t *testing.T) {
	s, _ := testSetup(t, BranchSet())
	col := vector.FromI32([]int32{5, 15, 25, 35, 45, 55})
	val := vector.ConstI32(30)
	inSel := []int32{1, 3, 5} // only 15, 35, 55 are live
	for arm := 0; arm < 2; arm++ {
		out := make([]int32, 6)
		c := &core.Call{N: 6, Sel: inSel, In: []*vector.Vector{col, val}, SelOut: out}
		got := runSel(s, "select_>_sint_col_sint_val", arm, fmt.Sprintf("sub/a%d", arm), c)
		if !equalSel(got, []int32{3, 5}) {
			t.Errorf("arm %d: got %v, want [3 5]", arm, got)
		}
	}
}

// TestSelectionProperty: branching and no-branching agree on random data
// and both match a straightforward reference.
func TestSelectionProperty(t *testing.T) {
	s, _ := testSetup(t, BranchSet())
	idx := 0
	f := func(vals []int32, threshold int32) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 64 {
			vals = vals[:64]
		}
		n := len(vals)
		colV := vector.FromI32(vals)
		valV := vector.ConstI32(threshold)
		var ref []int32
		for i, v := range vals {
			if v < threshold {
				ref = append(ref, int32(i))
			}
		}
		idx++
		for arm := 0; arm < 2; arm++ {
			out := make([]int32, n)
			c := &core.Call{N: n, In: []*vector.Vector{colV, valV}, SelOut: out}
			got := runSel(s, "select_<_sint_col_sint_val", arm, fmt.Sprintf("prop/%d/%d", idx, arm), c)
			if len(got) != len(ref) {
				return false
			}
			for i := range got {
				if got[i] != ref[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestMapFlavorEquivalence: selective and full computation produce the
// same values at live positions, across compilers and unrolling.
func TestMapFlavorEquivalence(t *testing.T) {
	s, ctx := testSetup(t, Everything())
	n := 32
	a := make([]int64, n)
	b := make([]int64, n)
	for i := range a {
		a[i] = int64(i * 3)
		b[i] = int64(i + 7)
	}
	sel := []int32{0, 3, 9, 31}
	for _, op := range mapOps {
		sig := MapSig(op, vector.I64, "col_col")
		prim := s.Dict.MustLookup(sig)
		var want []int64
		for arm, fl := range prim.Flavors {
			res := vector.New(vector.I64, n)
			res.SetLen(n)
			c := &core.Call{N: n, Sel: sel, In: []*vector.Vector{vector.FromI64(a), vector.FromI64(b)}, Res: res,
				Inst: s.Instance(sig, fmt.Sprintf("%s/%d", sig, arm))}
			_, cyc := fl.Fn(ctx, c)
			if cyc <= 0 {
				t.Fatalf("%s: non-positive cost", sig)
			}
			vals := make([]int64, len(sel))
			for j, i := range sel {
				vals[j] = res.I64()[i]
			}
			if arm == 0 {
				want = vals
				continue
			}
			for j := range vals {
				if vals[j] != want[j] {
					t.Errorf("%s flavor %s disagrees at live position %d", sig, fl.Name, sel[j])
				}
			}
		}
	}
}

func TestMapShapesAndDivByZero(t *testing.T) {
	s, ctx := testSetup(t, Defaults())
	n := 4
	col := vector.FromI64([]int64{10, 20, 0, 40})
	val := vector.ConstI64(0)
	res := vector.New(vector.I64, n)
	res.SetLen(n)
	sig := MapSig("/", vector.I64, "col_val")
	inst := s.Instance(sig, "div")
	c := &core.Call{N: n, In: []*vector.Vector{col, val}, Res: res, Inst: inst}
	inst.Prim.Flavors[0].Fn(ctx, c)
	for i := 0; i < n; i++ {
		if res.I64()[i] != 0 {
			t.Error("division by zero must yield 0")
		}
	}
	// val_col shape: 100 - col.
	sig2 := MapSig("-", vector.I64, "val_col")
	inst2 := s.Instance(sig2, "sub")
	c2 := &core.Call{N: n, In: []*vector.Vector{vector.ConstI64(100), col}, Res: res, Inst: inst2}
	inst2.Prim.Flavors[0].Fn(ctx, c2)
	if res.I64()[0] != 90 || res.I64()[3] != 60 {
		t.Errorf("val_col shape wrong: %v", res.I64()[:n])
	}
}

func TestFetchGather(t *testing.T) {
	s, ctx := testSetup(t, Defaults())
	src := vector.FromStr([]string{"zero", "one", "two", "three", "four"})
	idx := vector.FromI32([]int32{4, 0, 2})
	res := vector.New(vector.Str, 3)
	res.SetLen(3)
	sig := FetchSig(vector.Str)
	inst := s.Instance(sig, "fetch")
	c := &core.Call{N: 3, In: []*vector.Vector{idx, src}, Res: res, Inst: inst}
	inst.Prim.Flavors[0].Fn(ctx, c)
	want := []string{"four", "zero", "two"}
	for i, w := range want {
		if res.Str()[i] != w {
			t.Errorf("fetch[%d] = %q, want %q", i, res.Str()[i], w)
		}
	}
}

func TestAggrKinds(t *testing.T) {
	s, ctx := testSetup(t, Defaults())
	vals := vector.FromI64([]int64{5, -2, 9, 5})
	gids := vector.FromI32([]int32{0, 1, 0, 1})
	check := func(sig string, acc *AccI64, want0, want1 int64) {
		inst := s.Instance(sig, sig+"/t")
		c := &core.Call{N: 4, In: []*vector.Vector{vals, gids}, Aux: acc, Inst: inst}
		inst.Prim.Flavors[0].Fn(ctx, c)
		if acc.Acc[0] != want0 || acc.Acc[1] != want1 {
			t.Errorf("%s = %v, want [%d %d]", sig, acc.Acc, want0, want1)
		}
	}
	sum := &AccI64{}
	sum.Grow(2, 0)
	check("aggr_sum_slng_col", sum, 14, 3)
	cnt := &AccI64{}
	cnt.Grow(2, 0)
	check("aggr_count_col", cnt, 2, 2)
	mn := &AccI64{}
	mn.Grow(2, 1<<62)
	check("aggr_min_slng_col", mn, 5, -2)
	mx := &AccI64{}
	mx.Grow(2, -(1 << 62))
	check("aggr_max_slng_col", mx, 9, 5)
}

func TestAggrF64AndGlobal(t *testing.T) {
	s, ctx := testSetup(t, Defaults())
	vals := vector.FromF64([]float64{1.5, 2.5, -1})
	acc := &AccF64{}
	acc.Grow(1, 0)
	inst := s.Instance("aggr_sum_dbl_col", "f64sum")
	c := &core.Call{N: 3, In: []*vector.Vector{vals, nil}, Aux: acc, Inst: inst}
	inst.Prim.Flavors[0].Fn(ctx, c)
	if acc.Acc[0] != 3 {
		t.Errorf("global f64 sum = %v, want 3", acc.Acc[0])
	}
}

func TestGroupTables(t *testing.T) {
	ti := NewGroupTableI64(4)
	keys := []int64{7, 7, -1, 42, 7, -1}
	var gids []int32
	for _, k := range keys {
		gids = append(gids, ti.insertCheck(k))
	}
	if ti.Groups() != 3 {
		t.Fatalf("groups = %d, want 3", ti.Groups())
	}
	if gids[0] != gids[1] || gids[0] != gids[4] || gids[2] != gids[5] || gids[0] == gids[2] {
		t.Errorf("gids = %v", gids)
	}
	if ti.Key(gids[3]) != 42 {
		t.Error("key recovery wrong")
	}
	// Growth: many keys force rehash.
	for i := int64(0); i < 1000; i++ {
		ti.insertCheck(i * 13)
	}
	if ti.Groups() < 1000 {
		t.Errorf("groups after growth = %d", ti.Groups())
	}
	if ti.insertCheck(7) != gids[0] {
		t.Error("rehash lost a key")
	}
	if ti.ByteSize() <= 0 {
		t.Error("byte size must be positive")
	}

	ts := NewGroupTableStr(4)
	a := ts.insertCheck("x")
	b := ts.insertCheck("y")
	if ts.insertCheck("x") != a || a == b || ts.Groups() != 2 {
		t.Error("string table wrong")
	}
	if ts.Key(b) != "y" {
		t.Error("string key recovery wrong")
	}
	for i := 0; i < 500; i++ {
		ts.insertCheck(fmt.Sprintf("key-%d", i))
	}
	if ts.insertCheck("x") != a {
		t.Error("string rehash lost a key")
	}
}

func TestGroupTableProperty(t *testing.T) {
	f := func(keys []int64) bool {
		tab := NewGroupTableI64(2)
		ref := map[int64]int32{}
		for _, k := range keys {
			gid := tab.insertCheck(k)
			if want, ok := ref[k]; ok {
				if gid != want {
					return false
				}
			} else {
				if int(gid) != len(ref) {
					return false // ids must be dense in first-seen order
				}
				ref[k] = gid
			}
		}
		return tab.Groups() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestJoinTable(t *testing.T) {
	keys := []int64{10, 20, 10, 30}
	jt := NewJoinTable(keys)
	if jt.Entries() != 4 {
		t.Fatalf("entries = %d", jt.Entries())
	}
	if jt.Lookup(30) != 3 || jt.Lookup(99) != -1 {
		t.Error("lookup wrong")
	}
	rows := jt.LookupAll(10, nil)
	if len(rows) != 2 {
		t.Fatalf("duplicate key rows = %v", rows)
	}
	if (rows[0] == 0) == (rows[1] == 0) {
		t.Errorf("rows = %v, want {0,2}", rows)
	}
	if jt.ByteSize() <= 0 {
		t.Error("byte size must be positive")
	}
}

func TestBloomProbeFlavorEquivalence(t *testing.T) {
	s, ctx := testSetup(t, FissionSet())
	f := bloom.New(4096, 2)
	for i := int64(0); i < 100; i += 2 {
		f.Add(i)
	}
	n := 64
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)
	}
	prim := s.Dict.MustLookup("sel_bloomfilter_slng_col")
	var want []int32
	for arm, fl := range prim.Flavors {
		out := make([]int32, n)
		c := &core.Call{N: n, In: []*vector.Vector{vector.FromI64(keys)}, SelOut: out, Aux: f,
			Inst: s.Instance("sel_bloomfilter_slng_col", fmt.Sprintf("bp/%d", arm))}
		k, _ := fl.Fn(ctx, c)
		got := out[:k]
		if arm == 0 {
			want = append([]int32(nil), got...)
			continue
		}
		if !equalSel(got, want) {
			t.Errorf("bloom flavor %s disagrees", fl.Name)
		}
	}
	// All 32 even keys in [0,64) were inserted and must survive (no false
	// negatives).
	even := 0
	for _, p := range want {
		if p%2 == 0 {
			even++
		}
	}
	if even != 32 {
		t.Errorf("survivors include %d true positives, want 32", even)
	}
}

func TestBloomFissionCostModel(t *testing.T) {
	s, ctx := testSetup(t, FissionSet())
	m := ctx.Machine
	prim := s.Dict.MustLookup("sel_bloomfilter_slng_col")
	cost := func(arm int, filterBytes int) float64 {
		f := bloom.New(filterBytes, 2)
		n := 64
		keys := make([]int64, n)
		out := make([]int32, n)
		c := &core.Call{N: n, In: []*vector.Vector{vector.FromI64(keys)}, SelOut: out, Aux: f,
			Inst: s.Instance("sel_bloomfilter_slng_col", fmt.Sprintf("cm/%d/%d", arm, filterBytes))}
		_, cyc := prim.Flavors[arm].Fn(ctx, c)
		return cyc
	}
	small := m.BloomEffCache / 4
	big := m.BloomEffCache * 64
	if cost(1, small) <= cost(0, small) {
		t.Error("fission must be slower on cache-resident filters")
	}
	if cost(1, big) >= cost(0, big) {
		t.Error("fission must win on memory-resident filters")
	}
}

func TestMergeJoinKernel(t *testing.T) {
	s, ctx := testSetup(t, Defaults())
	st := NewMergeState(
		[]int64{1, 2, 2, 5},
		[]int64{2, 2, 3, 5, 5},
	)
	st.LOut = make([]int32, 3) // force multiple calls via tiny capacity
	st.ROut = make([]int32, 3)
	inst := s.Instance("mergejoin_slng_col_slng_col", "mj")
	type pair struct{ l, r int32 }
	var got []pair
	for !st.Done() {
		c := &core.Call{N: 3, Aux: st, Inst: inst}
		k, cyc := inst.Prim.Flavors[0].Fn(ctx, c)
		if cyc <= 0 {
			t.Fatal("non-positive cost")
		}
		for i := 0; i < k; i++ {
			got = append(got, pair{st.LOut[i], st.ROut[i]})
		}
	}
	want := []pair{{1, 0}, {1, 1}, {2, 0}, {2, 1}, {3, 3}, {3, 4}}
	if len(got) != len(want) {
		t.Fatalf("pairs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pair %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMergeJoinKernelProperty(t *testing.T) {
	s, ctx := testSetup(t, Defaults())
	idx := 0
	f := func(lraw, rraw []uint8) bool {
		lk := sortedKeys(lraw)
		rk := sortedKeys(rraw)
		want := 0
		counts := map[int64]int{}
		for _, k := range rk {
			counts[k]++
		}
		for _, k := range lk {
			want += counts[k]
		}
		st := NewMergeState(lk, rk)
		st.LOut = make([]int32, 7)
		st.ROut = make([]int32, 7)
		idx++
		inst := s.Instance("mergejoin_slng_col_slng_col", fmt.Sprintf("mjp/%d", idx))
		got := 0
		for !st.Done() {
			c := &core.Call{N: 7, Aux: st, Inst: inst}
			k, _ := inst.Prim.Flavors[0].Fn(ctx, c)
			got += k
			if k == 0 && !st.Done() {
				return false // no progress
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func sortedKeys(raw []uint8) []int64 {
	out := make([]int64, len(raw))
	for i, r := range raw {
		out[i] = int64(r % 16)
	}
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			out[i] = out[i-1]
		}
	}
	return out
}

func TestInsertCheckPrimitive(t *testing.T) {
	s, ctx := testSetup(t, Defaults())
	tab := NewGroupTableI64(8)
	keys := vector.FromI64([]int64{100, 200, 100, 300})
	gids := vector.New(vector.I32, 4)
	inst := s.Instance("hash_insertcheck_slng_col", "ic")
	c := &core.Call{N: 4, In: []*vector.Vector{keys}, Res: gids, Aux: tab, Inst: inst}
	inst.Prim.Flavors[0].Fn(ctx, c)
	g := gids.I32()
	if g[0] != g[2] || g[0] == g[1] || tab.Groups() != 3 {
		t.Errorf("gids = %v", g[:4])
	}
}

func TestInsertCheckCostGrowsWithTable(t *testing.T) {
	s, ctx := testSetup(t, Defaults())
	inst := s.Instance("hash_insertcheck_slng_col", "growth")
	fl := inst.Prim.Flavors[0]
	small := NewGroupTableI64(8)
	keys := vector.FromI64(make([]int64, 64))
	gids := vector.New(vector.I32, 64)
	c := &core.Call{N: 64, In: []*vector.Vector{keys}, Res: gids, Aux: small, Inst: inst}
	_, cheap := fl.Fn(ctx, c)
	// A table far beyond the LLC must cost more per probe (Figure 4e).
	big := NewGroupTableI64(8)
	for i := int64(0); i < int64(ctx.Machine.LLCBytes); i += 2 {
		big.insertCheck(i)
	}
	c2 := &core.Call{N: 64, In: []*vector.Vector{keys}, Res: gids, Aux: big, Inst: inst}
	_, costly := fl.Fn(ctx, c2)
	if costly <= cheap*2 {
		t.Errorf("insert-check cost should grow with table size: %v vs %v", cheap, costly)
	}
}

func TestLookupPrimitives(t *testing.T) {
	s, ctx := testSetup(t, Defaults())
	jt := NewJoinTable([]int64{10, 20, 30})
	keys := vector.FromI64([]int64{20, 99, 10})
	rows := vector.New(vector.I32, 3)
	out := make([]int32, 3)
	inst := s.Instance("sel_htlookup_slng_col", "lk")
	c := &core.Call{N: 3, In: []*vector.Vector{keys}, SelOut: out, Res: rows, Aux: jt, Inst: inst}
	k, _ := inst.Prim.Flavors[0].Fn(ctx, c)
	if k != 2 || out[0] != 0 || out[1] != 2 {
		t.Errorf("lookup sel = %v (k=%d)", out[:k], k)
	}
	if rows.I32()[0] != 1 || rows.I32()[2] != 0 {
		t.Error("lookup rows wrong")
	}
	miss := s.Instance("sel_htmiss_slng_col", "miss")
	c2 := &core.Call{N: 3, In: []*vector.Vector{keys}, SelOut: out, Aux: jt, Inst: miss}
	k2, _ := miss.Prim.Flavors[0].Fn(ctx, c2)
	if k2 != 1 || out[0] != 1 {
		t.Errorf("miss sel = %v (k=%d)", out[:k2], k2)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "hell", false},
		{"PROMO BRUSHED", "PROMO%", true},
		{"NOT PROMO", "PROMO%", false},
		{"LARGE BRASS", "%BRASS", true},
		{"BRASS PLATED", "%BRASS", false},
		{"a special deal requests more", "%special%requests%", true},
		{"special", "%special%requests%", false},
		{"MEDIUM POLISHED TIN", "MEDIUM POLISHED%", true},
		{"abc", "%", true},
		{"", "%", true},
		{"forest green", "forest%", true},
	}
	for _, c := range cases {
		if got := LikeMatch(c.s, c.pat); got != c.want {
			t.Errorf("LikeMatch(%q, %q) = %v", c.s, c.pat, c.want)
		}
	}
}

func TestWidenToI64(t *testing.T) {
	res := vector.New(vector.I64, 4)
	WidenToI64(vector.FromI16([]int16{-1, 2, 3, -4}), nil, 4, res)
	if res.I64()[0] != -1 || res.I64()[3] != -4 {
		t.Error("i16 widen wrong")
	}
	WidenToI64(vector.FromI32([]int32{7, 8, 9, 10}), []int32{1, 3}, 4, res)
	if res.I64()[1] != 8 || res.I64()[3] != 10 {
		t.Error("selective widen wrong")
	}
}

func TestHashFunctions(t *testing.T) {
	if HashI64(1) == HashI64(2) {
		t.Error("hash collision on trivial keys")
	}
	if HashStr("abc") == HashStr("abd") {
		t.Error("string hash collision on near keys")
	}
	if HashStr("") == 0 {
		t.Error("empty string should still hash")
	}
}

func TestMeasureDenseMulTable4Shape(t *testing.T) {
	m1, m3 := hw.Machine1(), hw.Machine3()
	// Machine 1: SIMD wins; hand unrolling blocks it.
	simd := MeasureDenseMul(m1, false, true, true, 1<<14)
	hand := MeasureDenseMul(m1, true, true, true, 1<<14)
	neither := MeasureDenseMul(m1, false, false, false, 1<<14)
	if simd >= hand {
		t.Errorf("machine1: SIMD (%v) should beat hand unrolling (%v)", simd, hand)
	}
	if hand >= neither {
		t.Errorf("machine1: hand unrolling (%v) should beat plain scalar (%v)", hand, neither)
	}
	// Machine 3: SIMD loses to unrolled scalar (the Table 4 surprise).
	simd3 := MeasureDenseMul(m3, false, true, false, 1<<14)
	hand3 := MeasureDenseMul(m3, true, false, false, 1<<14)
	if simd3 <= hand3 {
		t.Errorf("machine3: SIMD (%v) should lose to hand unrolling (%v)", simd3, hand3)
	}
}

// TestPrefetchFlavors covers the paper's future-work extension: prefetch
// distances for hash lookups, with machine/table-size-dependent winners.
func TestPrefetchFlavors(t *testing.T) {
	s, ctx := testSetup(t, PrefetchSet())
	prim := s.Dict.MustLookup("sel_htlookup_slng_col")
	if len(prim.Flavors) != 3 {
		t.Fatalf("prefetch flavors = %d, want 3", len(prim.Flavors))
	}
	cost := func(arm int, entries int) float64 {
		keys := make([]int64, entries)
		for i := range keys {
			keys[i] = int64(i)
		}
		jt := NewJoinTable(keys)
		probe := vector.FromI64(make([]int64, 64))
		out := make([]int32, 64)
		rows := vector.New(vector.I32, 64)
		c := &core.Call{N: 64, In: []*vector.Vector{probe}, SelOut: out, Res: rows, Aux: jt,
			Inst: s.Instance("sel_htlookup_slng_col", fmt.Sprintf("pf/%d/%d", arm, entries))}
		_, cyc := prim.Flavors[arm].Fn(ctx, c)
		return cyc
	}
	// Cache-resident table: prefetching is pure overhead.
	if cost(0, 100) >= cost(2, 100) {
		t.Error("no-prefetch should win on a cache-resident table")
	}
	// Memory-resident table: deep prefetch hides the stalls.
	big := ctx.Machine.LLCBytes / 4 // entries ~ 16B each -> 4x LLC
	if cost(2, big) >= cost(0, big) {
		t.Error("deep prefetch should win on a memory-resident table")
	}
	// Flavor results stay identical regardless of distance.
	if prim.Flavors[0].Tag("prefetch") != "p0" || prim.Flavors[2].Tag("prefetch") != "p16" {
		t.Error("prefetch tags wrong")
	}
}
