package primitive

import (
	"microadapt/internal/bloom"
	"microadapt/internal/core"
	"microadapt/internal/hw"
)

// makeBloomProbe builds sel_bloomfilter_slng_col, the primitive of
// Listings 5 (fission=false) and 6 (fission=true): keys In[0] (slng) are
// probed against the bloom filter in Aux (*bloom.Filter); surviving
// positions go to SelOut. The fission variant materializes the probe
// results in a temporary first, removing the loop-carried dependency so
// misses overlap (§2 "Loop Fission").
func makeBloomProbe(fission bool, v variant) core.PrimFn {
	if !fission {
		return func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
			f := c.Aux.(*bloom.Filter)
			keys := c.In[0].I64()
			out := c.SelOut
			k := 0
			if c.Sel != nil {
				for _, i := range c.Sel {
					out[k] = i
					k += b2i(f.TestHash(bloom.Hash(keys[i])))
				}
			} else {
				for i := 0; i < c.N; i++ {
					out[k] = int32(i)
					k += b2i(f.TestHash(bloom.Hash(keys[i])))
				}
			}
			return k, bloomProbeCost(ctx, v, c.Live(), f.SizeBytes(), false)
		}
	}
	return func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
		f := c.Aux.(*bloom.Filter)
		keys := c.In[0].I64()
		out := c.SelOut
		live := c.Live()
		tmp := make([]bool, live)
		// First loop: independent iterations, one probe each.
		if c.Sel != nil {
			for j, i := range c.Sel {
				tmp[j] = f.TestHash(bloom.Hash(keys[i]))
			}
		} else {
			for i := 0; i < c.N; i++ {
				tmp[i] = f.TestHash(bloom.Hash(keys[i]))
			}
		}
		// Second loop: collect the selected positions.
		k := 0
		if c.Sel != nil {
			for j, i := range c.Sel {
				out[k] = i
				k += b2i(tmp[j])
			}
		} else {
			for i := 0; i < c.N; i++ {
				out[k] = int32(i)
				k += b2i(tmp[i])
			}
		}
		return k, bloomProbeCost(ctx, v, live, f.SizeBytes(), true)
	}
}

func registerBloom(d *core.Dictionary, o Options) {
	for _, cg := range o.codegens() {
		for _, fis := range o.Fission {
			v := variant{cg: cg, unroll: false, class: hw.ClassBloom}
			addFlavor(d, "sel_bloomfilter_slng_col", hw.ClassBloom, &core.Flavor{
				Name:   flavorName(fis, cg.Name),
				Source: cg.Name,
				Tags: map[string]string{
					"compiler": cg.Name,
					"fission":  map[string]string{"nofission": "n", "fission": "y"}[fis],
				},
				Fn: makeBloomProbe(fis == "fission", v),
			})
		}
	}
}
