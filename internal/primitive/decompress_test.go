package primitive

import (
	"testing"

	"microadapt/internal/vector"
)

// TestDecompressBaselineAlwaysRegistered: whatever subset of the strategy
// axis a caller configures, the baseline flavors an encoded scan needs —
// eager decode and decompress-then-compare — must exist, or EncodedScan
// would panic resolving its signatures.
func TestDecompressBaselineAlwaysRegistered(t *testing.T) {
	for _, decompress := range [][]string{
		nil,
		{"eager"},
		{"lazy"},
		{"oncompressed"},
		{"lazy", "oncompressed"},
		{"eager", "lazy", "oncompressed"},
	} {
		o := Defaults()
		o.Decompress = decompress
		d := NewDictionary(o)
		scan := d.MustLookup(DecompressSig(vector.I32))
		if scan.FlavorIndex("eager") < 0 {
			t.Errorf("Decompress=%v: scan primitive lacks the eager baseline", decompress)
		}
		sel := d.MustLookup(EncSelSig("<", vector.I32))
		if sel.FlavorIndex("decode") < 0 {
			t.Errorf("Decompress=%v: selenc primitive lacks the decode baseline", decompress)
		}
		wantLazy := o.hasStrategy("lazy")
		if got := scan.FlavorIndex("lazy") >= 0; got != wantLazy {
			t.Errorf("Decompress=%v: lazy registered=%v, want %v", decompress, got, wantLazy)
		}
		wantOC := o.hasStrategy("oncompressed")
		if got := sel.FlavorIndex("oncompressed") >= 0; got != wantOC {
			t.Errorf("Decompress=%v: oncompressed registered=%v, want %v", decompress, got, wantOC)
		}
	}
}

// TestDecompressSetShape: the widened set carries exactly the two-flavor
// families the storage scenario competes over.
func TestDecompressSetShape(t *testing.T) {
	d := NewDictionary(DecompressSet())
	if n := d.NumFlavors(DecompressSig(vector.I32)); n != 2 {
		t.Errorf("scan_decompress flavors = %d, want 2 (eager, lazy)", n)
	}
	if n := d.NumFlavors(EncSelSig(">=", vector.Str)); n != 2 {
		t.Errorf("selenc flavors = %d, want 2 (decode, oncompressed)", n)
	}
	// The default build keeps the family single-flavored.
	d = NewDictionary(Defaults())
	if n := d.NumFlavors(DecompressSig(vector.I32)); n != 1 {
		t.Errorf("default scan_decompress flavors = %d, want 1", n)
	}
}
