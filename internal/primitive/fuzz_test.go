package primitive

import (
	"encoding/binary"
	"sync"
	"testing"

	"microadapt/internal/core"
	"microadapt/internal/hw"
	"microadapt/internal/storage"
	"microadapt/internal/vector"
)

// Differential flavor fuzzing: the core correctness contract of Micro
// Adaptivity is that every flavor of a primitive computes the same result,
// so the chooser is free to pick any of them at any call. These native fuzz
// targets (go test -fuzz=FuzzX ./internal/primitive) run every registered
// flavor of a class on one arbitrary batch/selection-vector/constant and
// fail on any cross-flavor divergence. The seed corpus is TPC-H-shaped:
// clustered dates, small-domain quantities, skewed selectivities.

// fuzzDict is the shared full-flavor dictionary (read-only, safe to share).
var (
	fuzzDictOnce sync.Once
	fuzzDictVal  *core.Dictionary
)

func fuzzDict() *core.Dictionary {
	fuzzDictOnce.Do(func() { fuzzDictVal = NewDictionary(Everything()) })
	return fuzzDictVal
}

const fuzzMaxN = 300

// i32sFromBytes decodes up to fuzzMaxN int32 values from fuzz bytes.
func i32sFromBytes(data []byte) []int32 {
	n := len(data) / 4
	if n > fuzzMaxN {
		n = fuzzMaxN
	}
	out := make([]int32, n)
	for i := 0; i < n; i++ {
		out[i] = int32(binary.LittleEndian.Uint32(data[4*i:]))
	}
	return out
}

// i32sToBytes builds a seed-corpus input from values.
func i32sToBytes(vals []int32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

// fuzzSel derives a selection vector over n positions from the seed:
// stride patterns cover nil (all live), dense and sparse selections.
func fuzzSel(n int, seed uint8) vector.Sel {
	stride := int(seed % 5)
	if stride == 0 {
		return nil
	}
	var sel vector.Sel
	for i := int(seed % 3); i < n; i += stride {
		sel = append(sel, int32(i))
	}
	if len(sel) == 0 {
		return nil // operators never call primitives on empty selections
	}
	return sel
}

// tpchShapedSeeds are corpus entries mirroring the batch shapes TPC-H
// produces: order-clustered dates, 1..50 quantities, 0..10 discounts, and
// a low-cardinality flag column.
func tpchShapedSeeds(f *testing.F, addSeed func(f *testing.F, vals []int32, aux int32, opIdx, selSeed uint8)) {
	dates := make([]int32, 200)
	for i := range dates {
		dates[i] = 700 + int32(i/9) // ~9-row runs, ascending
	}
	addSeed(f, dates, 731, 3, 0)
	quantities := make([]int32, 180)
	for i := range quantities {
		quantities[i] = int32(i*i%50) + 1
	}
	addSeed(f, quantities, 24, 0, 2)
	discounts := make([]int32, 150)
	for i := range discounts {
		discounts[i] = int32(i * 7 % 11)
	}
	addSeed(f, discounts, 5, 2, 3)
	flags := make([]int32, 160)
	for i := range flags {
		flags[i] = int32(i % 3)
	}
	addSeed(f, flags, 1, 4, 1)
}

// runSelectionArm executes one flavor of a selection primitive on a fresh
// instance and returns the produced selection.
func runSelectionArm(prim *core.Primitive, arm int, n int, sel vector.Sel, in []*vector.Vector) []int32 {
	ctx := core.NewExecCtx(hw.Machine1())
	inst := core.NewInstance(prim, "fuzz", core.NewFixed(arm))
	out := make([]int32, n)
	k := inst.Run(ctx, &core.Call{N: n, Sel: sel, In: in, SelOut: out})
	return out[:k]
}

func sameSel(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzSelectionFlavors cross-checks every selection flavor (branching x
// compiler x unroll) on one batch: all must produce the identical
// selection vector.
func FuzzSelectionFlavors(f *testing.F) {
	addSeed := func(f *testing.F, vals []int32, rhs int32, opIdx, selSeed uint8) {
		f.Add(i32sToBytes(vals), rhs, opIdx, selSeed)
	}
	tpchShapedSeeds(f, addSeed)
	f.Fuzz(func(t *testing.T, data []byte, rhs int32, opIdx, selSeed uint8) {
		vals := i32sFromBytes(data)
		if len(vals) == 0 {
			return
		}
		n := len(vals)
		op := selOps[int(opIdx)%len(selOps)]
		sel := fuzzSel(n, selSeed)
		prim := fuzzDict().MustLookup(SelSig(op, vector.I32, false))
		in := []*vector.Vector{vector.FromI32(vals), vector.ConstI32(rhs)}
		want := runSelectionArm(prim, 0, n, sel, in)
		for arm := 1; arm < len(prim.Flavors); arm++ {
			got := runSelectionArm(prim, arm, n, sel, in)
			if !sameSel(want, got) {
				t.Fatalf("select %s: flavor %q selected %d rows, flavor %q selected %d (n=%d live=%d)",
					op, prim.Flavors[arm].Name, len(got), prim.Flavors[0].Name, len(want), n, len(sel))
			}
		}
	})
}

// FuzzMapArithFlavors cross-checks every map-arithmetic flavor (selective
// vs full computation x compiler x unroll) on one batch: results must agree
// on every live position (full computation also writes non-live positions;
// those are dead by contract and excluded from the comparison).
func FuzzMapArithFlavors(f *testing.F) {
	addSeed := func(f *testing.F, vals []int32, rhs int32, opIdx, selSeed uint8) {
		f.Add(i32sToBytes(vals), rhs, opIdx, selSeed)
	}
	tpchShapedSeeds(f, addSeed)
	f.Fuzz(func(t *testing.T, data []byte, rhs int32, opIdx, selSeed uint8) {
		vals := i32sFromBytes(data)
		if len(vals) == 0 {
			return
		}
		n := len(vals)
		op := mapOps[int(opIdx)%len(mapOps)]
		sel := fuzzSel(n, selSeed)
		prim := fuzzDict().MustLookup(MapSig(op, vector.I32, "col_val"))
		in := []*vector.Vector{vector.FromI32(vals), vector.ConstI32(rhs)}
		run := func(arm int) []int32 {
			ctx := core.NewExecCtx(hw.Machine1())
			inst := core.NewInstance(prim, "fuzz", core.NewFixed(arm))
			res := vector.New(vector.I32, n)
			res.SetLen(n)
			inst.Run(ctx, &core.Call{N: n, Sel: sel, In: in, Res: res})
			return res.I32()
		}
		live := sel
		if live == nil {
			live = make([]int32, n)
			for i := range live {
				live[i] = int32(i)
			}
		}
		want := run(0)
		for arm := 1; arm < len(prim.Flavors); arm++ {
			got := run(arm)
			for _, p := range live {
				if want[p] != got[p] {
					t.Fatalf("map %s: flavor %q and %q diverge at live position %d: %d vs %d",
						op, prim.Flavors[0].Name, prim.Flavors[arm].Name, p, want[p], got[p])
				}
			}
		}
	})
}

// fuzzEncodings returns the column under every encoding it supports.
func fuzzEncodings(t *testing.T, v *vector.Vector) map[string]storage.EncodedColumn {
	out := map[string]storage.EncodedColumn{}
	for _, e := range []storage.Encoding{storage.Flat, storage.Dict, storage.RLE, storage.BitPack} {
		c, err := storage.EncodeColumnAs(v, e)
		if err != nil {
			continue
		}
		if c.Len() != v.Len() {
			t.Fatalf("%s: encoded length %d != %d", e, c.Len(), v.Len())
		}
		out[e.String()] = c
	}
	return out
}

// FuzzDecompressFlavors cross-checks the decompression family: for every
// encoding of one arbitrary column, (a) eager and lazy scan flavors must
// reconstruct the original values at every live position, and (b) the
// decode and operate-on-compressed selection flavors must produce the
// ground-truth selection vector.
func FuzzDecompressFlavors(f *testing.F) {
	addSeed := func(f *testing.F, vals []int32, rhs int32, opIdx, selSeed uint8) {
		f.Add(i32sToBytes(vals), rhs, opIdx, selSeed, uint8(0))
	}
	tpchShapedSeeds(f, addSeed)
	f.Fuzz(func(t *testing.T, data []byte, rhs int32, opIdx, selSeed, loSeed uint8) {
		vals := i32sFromBytes(data)
		if len(vals) == 0 {
			return
		}
		// The batch is a window [lo, hi) of the encoded column, exercising
		// non-zero decode offsets exactly like a mid-table scan batch.
		lo := int(loSeed) % len(vals)
		n := len(vals) - lo
		sel := fuzzSel(n, selSeed)
		op := selOps[int(opIdx)%len(selOps)]
		d := fuzzDict()
		scanPrim := d.MustLookup(DecompressSig(vector.I32))
		selPrim := d.MustLookup(EncSelSig(op, vector.I32))
		cmp := cmpFn[int32](op)
		var truthSel []int32
		if sel != nil {
			for _, p := range sel {
				if cmp(vals[lo+int(p)], rhs) {
					truthSel = append(truthSel, p)
				}
			}
		} else {
			for i := 0; i < n; i++ {
				if cmp(vals[lo+i], rhs) {
					truthSel = append(truthSel, int32(i))
				}
			}
		}
		live := sel
		if live == nil {
			live = make([]int32, n)
			for i := range live {
				live[i] = int32(i)
			}
		}
		for name, enc := range fuzzEncodings(t, vector.FromI32(vals)) {
			for arm := 0; arm < len(scanPrim.Flavors); arm++ {
				ctx := core.NewExecCtx(hw.Machine1())
				inst := core.NewInstance(scanPrim, "fuzz", core.NewFixed(arm))
				res := vector.New(vector.I32, n)
				res.SetLen(n)
				inst.Run(ctx, &core.Call{N: n, Sel: sel, Res: res,
					Aux: &DecompressArgs{Col: enc, Lo: lo}})
				got := res.I32()
				for _, p := range live {
					if got[p] != vals[lo+int(p)] {
						t.Fatalf("%s decode flavor %q: position %d = %d, want %d",
							name, scanPrim.Flavors[arm].Name, p, got[p], vals[lo+int(p)])
					}
				}
			}
			for arm := 0; arm < len(selPrim.Flavors); arm++ {
				ctx := core.NewExecCtx(hw.Machine1())
				inst := core.NewInstance(selPrim, "fuzz", core.NewFixed(arm))
				out := make([]int32, n)
				scratch := vector.New(vector.I32, n)
				k := inst.Run(ctx, &core.Call{N: n, Sel: sel, SelOut: out,
					In:  []*vector.Vector{vector.ConstI32(rhs)},
					Aux: &DecompressArgs{Col: enc, Lo: lo, Scratch: scratch}})
				if !sameSel(out[:k], truthSel) {
					t.Fatalf("%s selenc %s flavor %q: selected %d rows, ground truth %d (n=%d rhs=%d)",
						name, op, selPrim.Flavors[arm].Name, k, len(truthSel), n, rhs)
				}
			}
		}
	})
}
