package primitive

import "microadapt/internal/core"

// InstanceKey builds the stable cross-session identity of a primitive
// instance: the dictionary signature of the primitive plus the plan-unique
// label of the instance, joined with '@'. Plans construct labels
// deterministically ("Q12/select_..."), so two sessions executing the same
// query produce instances with equal keys — the property the concurrent
// service's shared flavor-knowledge cache relies on. The key deliberately
// excludes flavor indices: different sessions may register different flavor
// sets for the same signature, so cross-session knowledge is exchanged by
// flavor *name* (see Flavor.Name), never by arm position. Partition tags of
// fragment-session labels ("...#0~p2") are stripped, so the P per-partition
// bandits of a parallel plan — and the serial plan's single bandit —
// aggregate knowledge under one key.
func InstanceKey(sig, label string) string {
	return sig + "@" + core.BaseLabel(label)
}

// InstanceKeyOf returns the stable key of a live instance.
func InstanceKeyOf(inst *core.Instance) string {
	return InstanceKey(inst.Prim.Sig, inst.Label)
}

// FlavorNames lists the registered flavor names of an instance's primitive
// in arm order — the translation table between this session's arm indices
// and the name-keyed cross-session knowledge cache.
func FlavorNames(p *core.Primitive) []string {
	names := make([]string, len(p.Flavors))
	for i, f := range p.Flavors {
		names[i] = f.Name
	}
	return names
}
