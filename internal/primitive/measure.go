package primitive

import (
	"microadapt/internal/core"
	"microadapt/internal/hw"
	"microadapt/internal/vector"
)

// MeasureDenseMul supports the Table 4 experiment: it measures the dense
// (no selection vector) integer-multiplication map under an explicit
// combination of hand unrolling and compiler flags (-ftree-vectorize,
// -funroll-loops), returning cycles/tuple on the given machine. The flag
// combinations correspond to the gcc builds the paper benchmarks.
func MeasureDenseMul(m *hw.Machine, handUnroll, simdFlag, unrollFlag bool, n int) float64 {
	cg := hw.GCC()
	cg.AutoVectorize = simdFlag
	cg.AutoUnroll = unrollFlag
	v := variant{cg: cg, unroll: handUnroll, class: hw.ClassMapArith}
	fn := makeMap[int32]("*", "col_col", false, v, vector.I32.Width())

	a := vector.New(vector.I32, n)
	b := vector.New(vector.I32, n)
	res := vector.New(vector.I32, n)
	a.SetLen(n)
	b.SetLen(n)
	res.SetLen(n)
	as, bs := a.I32(), b.I32()
	for i := 0; i < n; i++ {
		as[i] = int32(i)
		bs[i] = int32(i * 3)
	}
	ctx := core.NewExecCtx(m)
	call := &core.Call{N: n, In: []*vector.Vector{a, b}, Res: res}
	_, cycles := fn(ctx, call)
	// Subtract the fixed call overhead so the table shows the asymptotic
	// per-tuple cost, as in the paper.
	return (cycles - m.CallOverhead) / float64(n)
}
