package primitive

import (
	"fmt"
	"math"

	"microadapt/internal/core"
	"microadapt/internal/hw"
	"microadapt/internal/storage"
	"microadapt/internal/vector"
)

// The decompression flavor family. Encoded-column scans do their data-path
// work through two primitive classes, both keyed by element type only —
// never by encoding, so a logical scan keeps its InstanceKey (and its
// cross-session warm-start knowledge) when the analyzer re-encodes a column:
//
//   - scan_decompress_<t>_col materializes an encoded column into a batch
//     vector. Flavors: "eager" decodes the whole vector range; "lazy"
//     gathers only the positions of the selection vector. The winner flips
//     with the selectivity of the pushed-down predicates, exactly like the
//     selective-vs-full-computation axis of Figure 7.
//   - selenc_<op>_<t>_col_<t>_val evaluates a pushed-down comparison over
//     an encoded column. Flavors: "decode" decompresses the live values and
//     compares them; "oncompressed" evaluates on the compressed form — a
//     dictionary code interval (one narrow compare per row) or one
//     predicate per RLE run (O(runs + selected)). The winner flips with the
//     encoding, run lengths and dictionary size, the paper's decompression
//     scenario (§1).
//
// The encoding itself travels in Call.Aux as a DecompressArgs: it is data,
// not flavor — flavors are strategies that every encoding supports
// (encodings without a compressed-form shortcut fall back to decoding
// inside the flavor, preserving result equivalence).

// DecompressArgs is Call.Aux for both decompress-class primitive families:
// the encoded column, the table row offset of batch position 0, and a
// scan-owned scratch vector (capacity >= Call.N) the decode-then-compare
// selection flavor materializes into.
type DecompressArgs struct {
	Col     storage.EncodedColumn
	Lo      int
	Scratch *vector.Vector
}

// DecompressSig builds a decompression scan signature, e.g.
// scan_decompress_sint_col.
func DecompressSig(t vector.Type) string {
	return fmt.Sprintf("scan_decompress_%s_col", t)
}

// EncSelSig builds an encoded-selection signature, e.g.
// selenc_<_sint_col_sint_val.
func EncSelSig(op string, t vector.Type) string {
	return fmt.Sprintf("selenc_%s_%s_col_%s_val", op, t, t)
}

// decompressStrategies resolves the configured strategy axis (default:
// eager only, the one-flavor baseline).
func (o Options) decompressStrategies() []string {
	if len(o.Decompress) == 0 {
		return []string{"eager"}
	}
	for _, s := range o.Decompress {
		switch s {
		case "eager", "lazy", "oncompressed":
		default:
			panic("primitive: unknown decompress strategy " + s)
		}
	}
	return o.Decompress
}

// hasStrategy reports whether the resolved axis contains s.
func (o Options) hasStrategy(s string) bool {
	for _, x := range o.decompressStrategies() {
		if x == s {
			return true
		}
	}
	return false
}

// Per-element decode cost factors, relative to Machine.ArithElem (see
// cost.go for the calibration convention).
const (
	decFlatElem = 0.50 // straight copy
	decDictElem = 1.25 // code load + dictionary fetch
	decRLEElem  = 0.40 // amortized run fill (sequential)
	decPackElem = 0.95 // shift/mask/add unpack
	decRandMul  = 1.35 // random-access penalty of per-position decode
	encCodeCmp  = 0.55 // one uint16 dictionary-code compare (narrow, dense)
	encRunCmp   = 2.20 // one per-run predicate evaluation + bounds bookkeeping
	encRunEmit  = 0.35 // one emitted position of a qualifying run (sequential fill)
	encSelWalk  = 0.30 // per live tuple of walking an input selection vector
)

// eagerDecodeElem is the sequential per-element decode cost of an encoding.
func eagerDecodeElem(enc storage.EncodedColumn) float64 {
	switch enc.Encoding() {
	case storage.Dict:
		return decDictElem
	case storage.RLE:
		return decRLEElem
	case storage.BitPack:
		return decPackElem
	default:
		return decFlatElem
	}
}

// eagerDecodeCost prices a full-range decode of n elements.
func eagerDecodeCost(ctx *core.ExecCtx, v variant, enc storage.EncodedColumn, n int) float64 {
	m := ctx.Machine
	return v.callOv(m) + float64(n)*(eagerDecodeElem(enc)*v.mul(m)+v.loopOv(m))
}

// lazyGatherCost prices decoding only the k selected of n elements through
// a selection vector: per-position random access defeats the sequential
// decode loop, and RLE additionally pays a run lookup for the first hit.
func lazyGatherCost(ctx *core.ExecCtx, v variant, enc storage.EncodedColumn, k int) float64 {
	m := ctx.Machine
	w := enc.Type().Width()
	per := eagerDecodeElem(enc) * decRandMul * gatherFactor(m, w) * v.mul(m)
	cost := v.callOv(m) + float64(k)*(per+v.loopOv(m))
	if enc.Encoding() == storage.RLE {
		cost += log2(enc.Units()) * cmpElem // binary search for the first run
	}
	return cost
}

// encSelectDecodeCost prices the decompress-then-compare selection flavor:
// the decode of the live values plus a branch-free compare over them.
func encSelectDecodeCost(ctx *core.ExecCtx, v variant, enc storage.EncodedColumn, n, live, selected int) float64 {
	m := ctx.Machine
	var decode float64
	if live == n {
		decode = float64(n) * (eagerDecodeElem(enc)*v.mul(m) + v.loopOv(m))
	} else {
		decode = lazyGatherCost(ctx, v, enc, live) - v.callOv(m)
	}
	per := (cmpElem+nobranchDep)*v.mul(m) + v.loopOv(m)
	return v.callOv(m) + decode + float64(live)*per + float64(selected)*selStoreCost
}

// encSelectCompressedCost prices predicate evaluation on the compressed
// form itself.
func encSelectCompressedCost(ctx *core.ExecCtx, v variant, enc storage.EncodedColumn, n, live, selected int, hadSel bool) float64 {
	m := ctx.Machine
	cost := v.callOv(m)
	switch enc.Encoding() {
	case storage.Dict:
		// Two binary searches map the constant to a code interval, then
		// every live row pays one narrow code compare.
		cost += 2*log2(enc.Units())*cmpElem + float64(live)*(encCodeCmp*v.mul(m)+v.loopOv(m)) + float64(selected)*selStoreCost
	case storage.RLE:
		// One predicate per run overlapping the batch; qualifying runs
		// emit their positions as a sequential fill.
		runsTouched := float64(enc.Units())*float64(n)/float64(max(enc.Len(), 1)) + 1
		cost += log2(enc.Units())*cmpElem + runsTouched*encRunCmp*v.mul(m) + float64(selected)*encRunEmit
		if hadSel {
			cost += float64(live) * encSelWalk
		}
	default:
		// The encoding had no compressed-form shortcut and the flavor fell
		// back to decode-and-compare; it pays that cost plus a failed probe.
		return encSelectDecodeCost(ctx, v, enc, n, live, selected) + cmpElem
	}
	return cost
}

// log2 is a cost-model helper over structural unit counts.
func log2(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Log2(float64(n))
}

// makeDecompress builds one scan-decompression flavor.
func makeDecompress(lazy bool, v variant) core.PrimFn {
	if !lazy {
		return func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
			args := c.Aux.(*DecompressArgs)
			args.Col.DecodeRange(args.Lo, args.Lo+c.N, c.Res)
			return c.N, eagerDecodeCost(ctx, v, args.Col, c.N)
		}
	}
	return func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
		args := c.Aux.(*DecompressArgs)
		if c.Sel == nil {
			// No selection to exploit: lazy degenerates to the eager scan.
			args.Col.DecodeRange(args.Lo, args.Lo+c.N, c.Res)
			return c.N, eagerDecodeCost(ctx, v, args.Col, c.N)
		}
		args.Col.Gather(args.Lo, c.Sel, c.Res)
		return len(c.Sel), lazyGatherCost(ctx, v, args.Col, len(c.Sel))
	}
}

// boxConst widens a typed constant for storage.EncodedColumn.SelectConst.
func boxConst[T ordered](v T) any {
	switch x := any(v).(type) {
	case int16:
		return int64(x)
	case int32:
		return int64(x)
	case int64:
		return x
	default:
		return x // float64, string pass through
	}
}

// makeEncSelect builds one encoded-selection flavor: decode-then-compare
// (onCompressed=false) or compressed-form evaluation with decode fallback.
func makeEncSelect[T ordered](op string, onCompressed bool, v variant) core.PrimFn {
	cmp := cmpFn[T](op)
	decode := func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
		args := c.Aux.(*DecompressArgs)
		if c.Sel == nil {
			args.Col.DecodeRange(args.Lo, args.Lo+c.N, args.Scratch)
		} else {
			args.Col.Gather(args.Lo, c.Sel, args.Scratch)
		}
		vals := sliceOf[T](args.Scratch)
		rhs := sliceOf[T](c.In[0])[0]
		out := c.SelOut
		k := 0
		if c.Sel != nil {
			for _, p := range c.Sel {
				if cmp(vals[p], rhs) {
					out[k] = p
					k++
				}
			}
		} else {
			for i := 0; i < c.N; i++ {
				if cmp(vals[i], rhs) {
					out[k] = int32(i)
					k++
				}
			}
		}
		return k, encSelectDecodeCost(ctx, v, args.Col, c.N, c.Live(), k)
	}
	if !onCompressed {
		return decode
	}
	return func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
		args := c.Aux.(*DecompressArgs)
		rhs := sliceOf[T](c.In[0])[0]
		k, ok := args.Col.SelectConst(args.Lo, args.Lo+c.N, op, boxConst(rhs), c.Sel, c.SelOut)
		if !ok {
			k, _ = decode(ctx, c)
		}
		return k, encSelectCompressedCost(ctx, v, args.Col, c.N, c.Live(), k, c.Sel != nil)
	}
}

// registerDecompressFor registers the decompression family for one type.
// The eager scan flavor and the decode selection flavor are the baseline
// every encoded scan needs (an EncodedScan cannot open without at least
// one flavor per signature it resolves), so they register unconditionally;
// axis entries beyond "eager" add the alternatives.
func registerDecompressFor[T ordered](d *core.Dictionary, o Options, t vector.Type) {
	cg := o.codegens()[0] // strategy axis is orthogonal to the compiler axis
	v := variant{cg: cg, class: hw.ClassDecompress}
	addFlavor(d, DecompressSig(t), hw.ClassDecompress, &core.Flavor{
		Name:   "eager",
		Source: cg.Name,
		Tags:   map[string]string{"strategy": "eager"},
		Fn:     makeDecompress(false, v),
	})
	for _, op := range selOps {
		addFlavor(d, EncSelSig(op, t), hw.ClassDecompress, &core.Flavor{
			Name:   "decode",
			Source: cg.Name,
			Tags:   map[string]string{"strategy": "decode"},
			Fn:     makeEncSelect[T](op, false, v),
		})
	}
	if o.hasStrategy("lazy") {
		addFlavor(d, DecompressSig(t), hw.ClassDecompress, &core.Flavor{
			Name:   "lazy",
			Source: cg.Name,
			Tags:   map[string]string{"strategy": "lazy"},
			Fn:     makeDecompress(true, v),
		})
	}
	if o.hasStrategy("oncompressed") {
		for _, op := range selOps {
			addFlavor(d, EncSelSig(op, t), hw.ClassDecompress, &core.Flavor{
				Name:   "oncompressed",
				Source: cg.Name,
				Tags:   map[string]string{"strategy": "oncompressed"},
				Fn:     makeEncSelect[T](op, true, v),
			})
		}
	}
}

func registerDecompress(d *core.Dictionary, o Options) {
	registerDecompressFor[int16](d, o, vector.I16)
	registerDecompressFor[int32](d, o, vector.I32)
	registerDecompressFor[int64](d, o, vector.I64)
	registerDecompressFor[float64](d, o, vector.F64)
	registerDecompressFor[string](d, o, vector.Str)
}
