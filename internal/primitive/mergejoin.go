package primitive

import (
	"microadapt/internal/core"
	"microadapt/internal/hw"
)

// MergeState is the cursor state of a merge join between two key columns
// sorted ascending. The kernel primitive advances it, emitting up to the
// output capacity of matched (left,right) row pairs per call; many-to-many
// duplicate groups are handled by rescanning the right group per left row.
type MergeState struct {
	LKeys, RKeys []int64
	LI           int // current left row
	RI           int // start of the right group matching LKeys[LI]
	RPos         int // scan position within the right group
	LOut, ROut   []int32
}

// NewMergeState builds merge-join state over two sorted key columns.
func NewMergeState(lkeys, rkeys []int64) *MergeState {
	return &MergeState{LKeys: lkeys, RKeys: rkeys}
}

// Done reports whether the join is exhausted.
func (st *MergeState) Done() bool {
	return st.LI >= len(st.LKeys) || st.RI >= len(st.RKeys)
}

// step advances the state emitting at most capacity pairs; it returns the
// number of pairs emitted and the number of input tuples consumed (cursor
// advances), the quantity the cost model charges per tuple.
func (st *MergeState) step(capacity int) (produced, consumed int) {
	L, R := st.LKeys, st.RKeys
	for st.LI < len(L) && produced < capacity {
		// Align the right group start with the current left key.
		for st.RI < len(R) && R[st.RI] < L[st.LI] {
			st.RI++
			consumed++
		}
		if st.RI >= len(R) {
			st.LI = len(L)
			break
		}
		if R[st.RI] > L[st.LI] {
			st.LI++
			st.RPos = 0
			consumed++
			continue
		}
		// Match: scan the right group.
		if st.RPos < st.RI {
			st.RPos = st.RI
		}
		for st.RPos < len(R) && R[st.RPos] == L[st.LI] && produced < capacity {
			st.LOut[produced] = int32(st.LI)
			st.ROut[produced] = int32(st.RPos)
			st.RPos++
			produced++
			consumed++
		}
		if st.RPos < len(R) && R[st.RPos] == L[st.LI] {
			// Output capacity reached mid-group; resume here next call.
			return produced, consumed
		}
		// This left row is done; next left row rescans the group.
		st.LI++
		st.RPos = st.RI
		consumed++
	}
	return produced, consumed
}

// makeMergeJoin builds mergejoin_slng_col_slng_col (Figures 4c and 5): one
// call fills at most c.N output pairs. Aux is the *MergeState; produced
// pair indexes land in st.LOut/st.ROut.
func makeMergeJoin(v variant) core.PrimFn {
	return func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
		st := c.Aux.(*MergeState)
		produced, consumed := st.step(c.N)
		return produced, mergeJoinCost(ctx, v, consumed, produced)
	}
}

func registerMergeJoin(d *core.Dictionary, o Options) {
	for _, cg := range o.codegens() {
		for _, u := range o.unrolls() {
			v := variant{cg: cg, unroll: u, class: hw.ClassMergeJoin}
			addFlavor(d, "mergejoin_slng_col_slng_col", hw.ClassMergeJoin, &core.Flavor{
				Name:   flavorName(cg.Name, unrollTag(u)),
				Source: cg.Name,
				Tags:   map[string]string{"compiler": cg.Name, "unroll": unrollTag(u)},
				Fn:     makeMergeJoin(v),
			})
		}
	}
}
