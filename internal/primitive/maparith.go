package primitive

import (
	"microadapt/internal/core"
	"microadapt/internal/hw"
	"microadapt/internal/vector"
)

// number covers the arithmetic vector element types.
type number interface {
	~int16 | ~int32 | ~int64 | ~float64
}

var mapOps = []string{"+", "-", "*", "/"}

func arithFn[T number](op string) func(a, b T) T {
	switch op {
	case "+":
		return func(a, b T) T { return a + b }
	case "-":
		return func(a, b T) T { return a - b }
	case "*":
		return func(a, b T) T { return a * b }
	case "/":
		return func(a, b T) T {
			if b == 0 {
				return 0
			}
			return a / b
		}
	default:
		panic("primitive: unknown arithmetic op " + op)
	}
}

func opFactor(op string) float64 {
	switch op {
	case "+":
		return opFactorAdd
	case "-":
		return opFactorSub
	case "*":
		return opFactorMul
	case "/":
		return opFactorDiv
	default:
		return 1
	}
}

// makeMap builds a map (Projection) primitive flavor of Listing 4: result
// positions align with input positions. Under "full computation" the
// selection vector is ignored and all N tuples are computed (Figure 7
// right), trading extra work for SIMD-ability.
func makeMap[T number](op, shape string, full bool, v variant, typeWidth int) core.PrimFn {
	fn := arithFn[T](op)
	elem := opFactor(op) // scaled by machine.ArithElem at call time
	return func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
		res := sliceOf[T](c.Res)
		var a, b []T
		switch shape {
		case "col_col":
			a, b = sliceOf[T](c.In[0]), sliceOf[T](c.In[1])
		case "col_val":
			a, b = sliceOf[T](c.In[0]), sliceOf[T](c.In[1])
		case "val_col":
			a, b = sliceOf[T](c.In[0]), sliceOf[T](c.In[1])
		}
		e := elem * ctx.Machine.ArithElem
		if c.Sel == nil || full {
			// Dense loop over all N tuples.
			switch shape {
			case "col_col":
				for i := 0; i < c.N; i++ {
					res[i] = fn(a[i], b[i])
				}
			case "col_val":
				val := b[0]
				for i := 0; i < c.N; i++ {
					res[i] = fn(a[i], val)
				}
			case "val_col":
				val := a[0]
				for i := 0; i < c.N; i++ {
					res[i] = fn(val, b[i])
				}
			}
			c.Res.SetLen(c.N)
			if c.Sel == nil {
				return c.N, denseLoopCost(ctx.Machine, v, c.N, e, typeWidth)
			}
			return c.N, fullComputationCost(ctx.Machine, v, c.N, e, typeWidth)
		}
		// Selective computation: only positions in the selection vector
		// (Figure 7 left); untouched positions keep stale values.
		switch shape {
		case "col_col":
			for _, i := range c.Sel {
				res[i] = fn(a[i], b[i])
			}
		case "col_val":
			val := b[0]
			for _, i := range c.Sel {
				res[i] = fn(a[i], val)
			}
		case "val_col":
			val := a[0]
			for _, i := range c.Sel {
				res[i] = fn(val, b[i])
			}
		}
		c.Res.SetLen(c.N)
		return len(c.Sel), selectiveLoopCost(ctx.Machine, v, len(c.Sel), e, typeWidth)
	}
}

func registerMapsFor[T number](d *core.Dictionary, o Options, t vector.Type) {
	for _, op := range mapOps {
		for _, shape := range []string{"col_col", "col_val", "val_col"} {
			sig := MapSig(op, t, shape)
			for _, cg := range o.codegens() {
				for _, comp := range o.Compute {
					for _, u := range o.unrolls() {
						v := variant{cg: cg, unroll: u, class: hw.ClassMapArith}
						fn := makeMap[T](op, shape, comp == "full", v, t.Width())
						addFlavor(d, sig, hw.ClassMapArith, &core.Flavor{
							Name:   flavorName(comp, cg.Name, unrollTag(u)),
							Source: cg.Name,
							Tags: map[string]string{
								"compiler": cg.Name,
								"full":     map[string]string{"selective": "n", "full": "y"}[comp],
								"unroll":   unrollTag(u),
							},
							Fn: fn,
						})
					}
				}
			}
		}
	}
}

func registerMaps(d *core.Dictionary, o Options) {
	registerMapsFor[int16](d, o, vector.I16)
	registerMapsFor[int32](d, o, vector.I32)
	registerMapsFor[int64](d, o, vector.I64)
	registerMapsFor[float64](d, o, vector.F64)
}
