package primitive

import (
	"fmt"

	"microadapt/internal/core"
	"microadapt/internal/hw"
	"microadapt/internal/vector"
)

// Options selects which alternatives of each flavor axis get registered.
// The first entry of every axis is the engine default; registering exactly
// the defaults reproduces the paper's baseline ("VW without heuristics"),
// while widening one axis at a time reproduces the flavor sets of
// Tables 6-10.
type Options struct {
	// Compilers: subset of {"gcc", "icc", "clang"}; default build is gcc.
	Compilers []string
	// Branching: subset of {"branch", "nobranch"} for selection
	// primitives; Vectorwise ships branching by default (Table 6).
	Branching []string
	// Compute: subset of {"selective", "full"} for map primitives
	// (Table 9; selective is the default).
	Compute []string
	// Fission: subset of {"nofission", "fission"} for the bloom-filter
	// probe (Table 8; no fission is the default).
	Fission []string
	// Unroll: subset of {"u8", "u1"}; hand unrolling by 8 is the
	// Vectorwise default (Table 10).
	Unroll []string
	// FullCompilerCoverage also registers compiler flavors for the
	// hash-table insert/lookup and hash-value primitives. By default they
	// stay on the default build: in Vectorwise these operators bypass the
	// expression evaluator, so Micro Adaptivity does not reach them (§4.1
	// notes the compiler flavor set covers only 51% of primitive cycles
	// and that fixing this "requires some additional engineering").
	FullCompilerCoverage bool
	// Decompress: subset of {"eager", "lazy", "oncompressed"} — the
	// strategies of the decompression flavor family for encoded-column
	// scans. The baseline — "eager" full-range decode for scan primitives
	// and decompress-then-compare for pushed-down selections — is always
	// registered (encoded scans cannot run without it); "lazy" adds the
	// per-selection-vector gather scan flavor, "oncompressed" adds
	// selection evaluation on the compressed form (dictionary code
	// intervals, per-run RLE predicates).
	Decompress []string
	// Prefetch: subset of {"p0", "p4", "p16"} — software-prefetch
	// distances for hash-table lookups. This implements the paper's
	// future-work proposal (§4.1/§6): "by encoding multiple prefetching
	// approaches and distances in separate primitive [flavors], we could
	// exploit Micro Adaptivity to automatically find the best combination
	// for the hardware ... and the data characteristics". Default: p0.
	Prefetch []string
}

// Defaults returns the baseline build: one flavor per primitive.
func Defaults() Options {
	return Options{
		Compilers:  []string{"gcc"},
		Branching:  []string{"branch"},
		Compute:    []string{"selective"},
		Fission:    []string{"nofission"},
		Unroll:     []string{"u8"},
		Decompress: []string{"eager"},
	}
}

// Everything returns all flavors on every axis (four builds x three
// compilers, as in §3.1).
func Everything() Options {
	o := Defaults()
	o.Compilers = []string{"gcc", "icc", "clang"}
	o.Branching = []string{"branch", "nobranch"}
	o.Compute = []string{"selective", "full"}
	o.Fission = []string{"nofission", "fission"}
	o.Unroll = []string{"u8", "u1"}
	o.Decompress = []string{"eager", "lazy", "oncompressed"}
	return o
}

// BranchSet widens only the branching axis (Table 6's flavor set).
func BranchSet() Options {
	o := Defaults()
	o.Branching = []string{"branch", "nobranch"}
	return o
}

// CompilerSet widens only the compiler axis (Table 7's flavor set).
func CompilerSet() Options {
	o := Defaults()
	o.Compilers = []string{"gcc", "icc", "clang"}
	return o
}

// FissionSet widens only the loop-fission axis (Table 8's flavor set).
func FissionSet() Options {
	o := Defaults()
	o.Fission = []string{"nofission", "fission"}
	return o
}

// ComputeSet widens only the full-computation axis (Table 9's flavor set).
func ComputeSet() Options {
	o := Defaults()
	o.Compute = []string{"selective", "full"}
	return o
}

// UnrollSet widens only the hand-unrolling axis (Table 10's flavor set).
func UnrollSet() Options {
	o := Defaults()
	o.Unroll = []string{"u8", "u1"}
	return o
}

// DecompressSet widens only the decompression-strategy axis: the flavor
// set of the compressed-storage scenario (eager vs lazy decode, selection
// on the compressed form).
func DecompressSet() Options {
	o := Defaults()
	o.Decompress = []string{"eager", "lazy", "oncompressed"}
	return o
}

// PrefetchSet widens only the hash-lookup prefetch-distance axis (the
// paper's future-work flavor set).
func PrefetchSet() Options {
	o := Defaults()
	o.Prefetch = []string{"p0", "p4", "p16"}
	return o
}

// prefetches resolves the configured prefetch distances (default p0).
func (o Options) prefetches() []int {
	if len(o.Prefetch) == 0 {
		return []int{0}
	}
	var out []int
	for _, p := range o.Prefetch {
		switch p {
		case "p0":
			out = append(out, 0)
		case "p4":
			out = append(out, 4)
		case "p16":
			out = append(out, 16)
		default:
			panic("primitive: unknown prefetch option " + p)
		}
	}
	return out
}

// codegens resolves the configured compiler profiles.
func (o Options) codegens() []*hw.Codegen {
	var out []*hw.Codegen
	for _, name := range o.Compilers {
		cg := hw.CompilerByName(name)
		if cg == nil {
			panic("primitive: unknown compiler " + name)
		}
		out = append(out, cg)
	}
	return out
}

// hashCodegens returns the compiler profiles visible to the hash-table
// primitive classes: just the default build unless FullCompilerCoverage.
func (o Options) hashCodegens() []*hw.Codegen {
	cgs := o.codegens()
	if !o.FullCompilerCoverage && len(cgs) > 1 {
		return cgs[:1]
	}
	return cgs
}

func (o Options) unrolls() []bool {
	var out []bool
	for _, u := range o.Unroll {
		switch u {
		case "u8":
			out = append(out, true)
		case "u1":
			out = append(out, false)
		default:
			panic("primitive: unknown unroll option " + u)
		}
	}
	return out
}

// flavorName builds the canonical flavor name from axis values.
func flavorName(parts ...string) string {
	name := ""
	for _, p := range parts {
		if p == "" {
			continue
		}
		if name != "" {
			name += "/"
		}
		name += p
	}
	return name
}

func unrollTag(u bool) string {
	if u {
		return "u8"
	}
	return "u1"
}

// addFlavor registers one flavor, panicking on registration conflicts
// (which are programming errors in the generators below).
func addFlavor(d *core.Dictionary, sig, class string, f *core.Flavor) {
	if err := d.AddFlavor(sig, class, f); err != nil {
		panic(err)
	}
}

// RegisterAll registers every primitive the engine uses, with the flavor
// sets selected by the options. It is the Go analogue of loading the flavor
// libraries built from the template expander (§3.1).
func RegisterAll(d *core.Dictionary, o Options) {
	registerSelections(d, o)
	registerLike(d, o)
	registerMaps(d, o)
	registerFetch(d, o)
	registerHashPrims(d, o)
	registerAggr(d, o)
	registerInsertCheck(d, o)
	registerLookup(d, o)
	registerBsearch(d, o)
	registerMergeJoin(d, o)
	registerBloom(d, o)
	registerDecompress(d, o)
}

// NewDictionary builds a dictionary and registers all primitives with the
// given options.
func NewDictionary(o Options) *core.Dictionary {
	d := core.NewDictionary()
	RegisterAll(d, o)
	return d
}

// SelSig builds a selection primitive signature, e.g.
// select_<_sint_col_sint_val.
func SelSig(op string, t vector.Type, rhsCol bool) string {
	rhs := "val"
	if rhsCol {
		rhs = "col"
	}
	return fmt.Sprintf("select_%s_%s_col_%s_%s", op, t, t, rhs)
}

// MapSig builds a map primitive signature, e.g. map_*_slng_col_slng_val.
// shape is "col_col", "col_val" or "val_col".
func MapSig(op string, t vector.Type, shape string) string {
	switch shape {
	case "col_col":
		return fmt.Sprintf("map_%s_%s_col_%s_col", op, t, t)
	case "col_val":
		return fmt.Sprintf("map_%s_%s_col_%s_val", op, t, t)
	case "val_col":
		return fmt.Sprintf("map_%s_%s_val_%s_col", op, t, t)
	default:
		panic("primitive: bad map shape " + shape)
	}
}

// FetchSig builds a fetch primitive signature, e.g.
// map_fetch_uidx_col_str_col.
func FetchSig(t vector.Type) string {
	return fmt.Sprintf("map_fetch_uidx_col_%s_col", t)
}
