package primitive

import (
	"microadapt/internal/core"
	"microadapt/internal/hw"
	"microadapt/internal/vector"
)

// fetchable covers the element types a fetch primitive can gather.
type fetchable interface {
	~int16 | ~int32 | ~int64 | ~float64 | ~string
}

// makeFetch builds the "fetch" primitive of Figure 4(d): it copies values
// from a source column into the output vector through an index column,
// res[i] = src[idx[i]] for every live position i. The index column holds
// row numbers into the (arbitrarily long) source column, which is how join
// payloads are materialized.
func makeFetch[T fetchable](v variant) core.PrimFn {
	return func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
		idx := c.In[0].I32()
		src := sliceOf[T](c.In[1])
		res := sliceOf[T](c.Res)
		if c.Sel != nil {
			for _, i := range c.Sel {
				res[i] = src[idx[i]]
			}
		} else {
			for i := 0; i < c.N; i++ {
				res[i] = src[idx[i]]
			}
		}
		c.Res.SetLen(c.N)
		return c.Live(), fetchCost(ctx, v, c.Live(), c.Density())
	}
}

func registerFetchFor[T fetchable](d *core.Dictionary, o Options, t vector.Type) {
	sig := FetchSig(t)
	for _, cg := range o.codegens() {
		for _, u := range o.unrolls() {
			v := variant{cg: cg, unroll: u, class: hw.ClassFetch}
			addFlavor(d, sig, hw.ClassFetch, &core.Flavor{
				Name:   flavorName(cg.Name, unrollTag(u)),
				Source: cg.Name,
				Tags:   map[string]string{"compiler": cg.Name, "unroll": unrollTag(u)},
				Fn:     makeFetch[T](v),
			})
		}
	}
}

func registerFetch(d *core.Dictionary, o Options) {
	registerFetchFor[int16](d, o, vector.I16)
	registerFetchFor[int32](d, o, vector.I32)
	registerFetchFor[int64](d, o, vector.I64)
	registerFetchFor[float64](d, o, vector.F64)
	registerFetchFor[string](d, o, vector.Str)
}
