package primitive

import "sort"

// Open-addressing hash tables used by aggregation (group tables) and hash
// joins (join tables). The tables live here rather than in the engine
// because the vectorized insert-check and lookup primitives operate
// directly on their internals, exactly like the hash primitives the paper
// lists among the Aggregation and Hash-Join workhorses.

// GroupTableI64 maps int64 keys to dense group ids [0, Groups).
type GroupTableI64 struct {
	slots []int32 // group id + 1; 0 = empty
	mask  uint64
	keys  []int64 // group id -> key
}

// NewGroupTableI64 returns a table pre-sized for the given group capacity.
func NewGroupTableI64(capacity int) *GroupTableI64 {
	t := &GroupTableI64{}
	t.init(nextPow2(capacity * 2))
	return t
}

func (t *GroupTableI64) init(slots int) {
	if slots < 16 {
		slots = 16
	}
	t.slots = make([]int32, slots)
	t.mask = uint64(slots - 1)
}

// Groups returns the number of distinct keys inserted.
func (t *GroupTableI64) Groups() int { return len(t.keys) }

// Key returns the key of a group id.
func (t *GroupTableI64) Key(gid int32) int64 { return t.keys[gid] }

// ByteSize approximates the resident size of the table, the quantity that
// drives the cache-miss growth of Figure 4(e).
func (t *GroupTableI64) ByteSize() int { return len(t.slots)*4 + len(t.keys)*8 }

// insertCheck returns the group id for key, inserting it when new.
func (t *GroupTableI64) insertCheck(key int64) int32 {
	if len(t.keys)*4 >= len(t.slots)*3 {
		t.grow()
	}
	h := HashI64(key) & t.mask
	for {
		g := t.slots[h]
		if g == 0 {
			gid := int32(len(t.keys))
			t.keys = append(t.keys, key)
			t.slots[h] = gid + 1
			return gid
		}
		if t.keys[g-1] == key {
			return g - 1
		}
		h = (h + 1) & t.mask
	}
}

func (t *GroupTableI64) grow() {
	old := t.keys
	t.init(len(t.slots) * 2)
	for gid, k := range old {
		h := HashI64(k) & t.mask
		for t.slots[h] != 0 {
			h = (h + 1) & t.mask
		}
		t.slots[h] = int32(gid) + 1
	}
}

// GroupTableStr maps string keys to dense group ids.
type GroupTableStr struct {
	slots []int32
	mask  uint64
	keys  []string
	bytes int
}

// NewGroupTableStr returns a table pre-sized for the given group capacity.
func NewGroupTableStr(capacity int) *GroupTableStr {
	t := &GroupTableStr{}
	t.init(nextPow2(capacity * 2))
	return t
}

func (t *GroupTableStr) init(slots int) {
	if slots < 16 {
		slots = 16
	}
	t.slots = make([]int32, slots)
	t.mask = uint64(slots - 1)
}

// Groups returns the number of distinct keys inserted.
func (t *GroupTableStr) Groups() int { return len(t.keys) }

// Key returns the key of a group id.
func (t *GroupTableStr) Key(gid int32) string { return t.keys[gid] }

// ByteSize approximates the resident size of the table.
func (t *GroupTableStr) ByteSize() int { return len(t.slots)*4 + len(t.keys)*16 + t.bytes }

func (t *GroupTableStr) insertCheck(key string) int32 {
	if len(t.keys)*4 >= len(t.slots)*3 {
		t.grow()
	}
	h := HashStr(key) & t.mask
	for {
		g := t.slots[h]
		if g == 0 {
			gid := int32(len(t.keys))
			t.keys = append(t.keys, key)
			t.bytes += len(key)
			t.slots[h] = gid + 1
			return gid
		}
		if t.keys[g-1] == key {
			return g - 1
		}
		h = (h + 1) & t.mask
	}
}

func (t *GroupTableStr) grow() {
	old := t.keys
	t.init(len(t.slots) * 2)
	for gid, k := range old {
		h := HashStr(k) & t.mask
		for t.slots[h] != 0 {
			h = (h + 1) & t.mask
		}
		t.slots[h] = int32(gid) + 1
	}
}

// JoinTable is a hash table from int64 keys to build-side row numbers,
// with chaining for duplicate keys.
type JoinTable struct {
	slots []int32 // entry index + 1; 0 = empty
	mask  uint64
	keys  []int64
	rows  []int32
	next  []int32 // entry -> next entry with same slot key chain (+1; 0 = end)
}

// JoinSizings are the capacity arms of the engine's hash-table sizing
// decision, smallest first. "snug" packs entries at up to 80% load — the
// smallest working set, but linear probing pays for the collisions;
// "norm" is the classic 50% load of NewJoinTable; "roomy" quarters the
// load again, trading resident bytes (and LLC misses once the table
// outgrows the cache) for near-collision-free probes. Which arm wins
// depends on build cardinality versus cache size, which is exactly why it
// is a decision rather than a constant.
var JoinSizings = []string{"snug", "norm", "roomy"}

// NewJoinTable builds the table from the build side's key column with the
// default "norm" sizing.
func NewJoinTable(keys []int64) *JoinTable { return NewJoinTableSized(keys, "norm") }

// NewJoinTableSized builds the table under one of the JoinSizings arms.
// Unknown sizing names fall back to "norm" so a stale cached decision can
// never build an invalid table.
func NewJoinTableSized(keys []int64, sizing string) *JoinTable {
	var slots int
	switch sizing {
	case "snug":
		slots = nextPow2(len(keys)*5/4 + 16)
	case "roomy":
		slots = nextPow2(len(keys)*4 + 16)
	default:
		slots = nextPow2(len(keys)*2 + 16)
	}
	t := &JoinTable{
		slots: make([]int32, slots),
		mask:  uint64(slots - 1),
		keys:  make([]int64, 0, len(keys)),
		rows:  make([]int32, 0, len(keys)),
		next:  make([]int32, 0, len(keys)),
	}
	for row, k := range keys {
		t.insert(k, int32(row))
	}
	return t
}

func (t *JoinTable) insert(key int64, row int32) {
	h := HashI64(key) & t.mask
	for {
		e := t.slots[h]
		if e == 0 {
			t.keys = append(t.keys, key)
			t.rows = append(t.rows, row)
			t.next = append(t.next, 0)
			t.slots[h] = int32(len(t.keys))
			return
		}
		if t.keys[e-1] == key {
			// Chain behind the first entry of this key.
			t.keys = append(t.keys, key)
			t.rows = append(t.rows, row)
			t.next = append(t.next, t.next[e-1])
			t.next[e-1] = int32(len(t.keys))
			return
		}
		h = (h + 1) & t.mask
	}
}

// Lookup returns the first build row for key, or -1.
func (t *JoinTable) Lookup(key int64) int32 {
	h := HashI64(key) & t.mask
	for {
		e := t.slots[h]
		if e == 0 {
			return -1
		}
		if t.keys[e-1] == key {
			return t.rows[e-1]
		}
		h = (h + 1) & t.mask
	}
}

// LookupAll appends all build rows for key to dst and returns it.
func (t *JoinTable) LookupAll(key int64, dst []int32) []int32 {
	h := HashI64(key) & t.mask
	for {
		e := t.slots[h]
		if e == 0 {
			return dst
		}
		if t.keys[e-1] == key {
			for e != 0 {
				dst = append(dst, t.rows[e-1])
				e = t.next[e-1]
			}
			return dst
		}
		h = (h + 1) & t.mask
	}
}

// Entries returns the number of build rows in the table.
func (t *JoinTable) Entries() int { return len(t.keys) }

// ByteSize approximates the resident size of the table.
func (t *JoinTable) ByteSize() int {
	return len(t.slots)*4 + len(t.keys)*8 + len(t.rows)*4 + len(t.next)*4
}

// LoadFactor is entries over slots — the α that drives the expected probe
// count of the lookup cost model. Duplicate keys chain without consuming a
// slot, so this slightly overstates occupancy for dup-heavy builds; the
// cost model only needs the trend.
func (t *JoinTable) LoadFactor() float64 {
	if len(t.slots) == 0 {
		return 0
	}
	return float64(len(t.keys)) / float64(len(t.slots))
}

// SortedTable is the merge-strategy counterpart of JoinTable: the build
// side's (key, row) pairs sorted by key, then row, probed by binary
// search. Lookup returns the lowest matching build row — the same
// first-inserted-row semantics as JoinTable.Lookup — so the hash and
// merge arms of the join-strategy decision are bit-identical by
// construction, never just by luck of the data.
type SortedTable struct {
	keys []int64
	rows []int32
}

// NewSortedTable builds the table from the build side's key column.
func NewSortedTable(keys []int64) *SortedTable {
	t := &SortedTable{keys: append([]int64(nil), keys...), rows: make([]int32, len(keys))}
	for i := range t.rows {
		t.rows[i] = int32(i)
	}
	sort.Sort((*sortedByKeyRow)(t))
	return t
}

type sortedByKeyRow SortedTable

func (s *sortedByKeyRow) Len() int { return len(s.keys) }
func (s *sortedByKeyRow) Less(i, j int) bool {
	return s.keys[i] < s.keys[j] || (s.keys[i] == s.keys[j] && s.rows[i] < s.rows[j])
}
func (s *sortedByKeyRow) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
}

// Lookup returns the lowest build row for key, or -1.
func (t *SortedTable) Lookup(key int64) int32 {
	lo, hi := 0, len(t.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(t.keys) && t.keys[lo] == key {
		return t.rows[lo]
	}
	return -1
}

// Entries returns the number of build rows in the table.
func (t *SortedTable) Entries() int { return len(t.keys) }

// ByteSize approximates the resident size of the table.
func (t *SortedTable) ByteSize() int { return len(t.keys)*8 + len(t.rows)*4 }

func nextPow2(n int) int {
	p := 16
	for p < n {
		p *= 2
	}
	return p
}
