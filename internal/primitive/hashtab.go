package primitive

// Open-addressing hash tables used by aggregation (group tables) and hash
// joins (join tables). The tables live here rather than in the engine
// because the vectorized insert-check and lookup primitives operate
// directly on their internals, exactly like the hash primitives the paper
// lists among the Aggregation and Hash-Join workhorses.

// GroupTableI64 maps int64 keys to dense group ids [0, Groups).
type GroupTableI64 struct {
	slots []int32 // group id + 1; 0 = empty
	mask  uint64
	keys  []int64 // group id -> key
}

// NewGroupTableI64 returns a table pre-sized for the given group capacity.
func NewGroupTableI64(capacity int) *GroupTableI64 {
	t := &GroupTableI64{}
	t.init(nextPow2(capacity * 2))
	return t
}

func (t *GroupTableI64) init(slots int) {
	if slots < 16 {
		slots = 16
	}
	t.slots = make([]int32, slots)
	t.mask = uint64(slots - 1)
}

// Groups returns the number of distinct keys inserted.
func (t *GroupTableI64) Groups() int { return len(t.keys) }

// Key returns the key of a group id.
func (t *GroupTableI64) Key(gid int32) int64 { return t.keys[gid] }

// ByteSize approximates the resident size of the table, the quantity that
// drives the cache-miss growth of Figure 4(e).
func (t *GroupTableI64) ByteSize() int { return len(t.slots)*4 + len(t.keys)*8 }

// insertCheck returns the group id for key, inserting it when new.
func (t *GroupTableI64) insertCheck(key int64) int32 {
	if len(t.keys)*4 >= len(t.slots)*3 {
		t.grow()
	}
	h := HashI64(key) & t.mask
	for {
		g := t.slots[h]
		if g == 0 {
			gid := int32(len(t.keys))
			t.keys = append(t.keys, key)
			t.slots[h] = gid + 1
			return gid
		}
		if t.keys[g-1] == key {
			return g - 1
		}
		h = (h + 1) & t.mask
	}
}

func (t *GroupTableI64) grow() {
	old := t.keys
	t.init(len(t.slots) * 2)
	for gid, k := range old {
		h := HashI64(k) & t.mask
		for t.slots[h] != 0 {
			h = (h + 1) & t.mask
		}
		t.slots[h] = int32(gid) + 1
	}
}

// GroupTableStr maps string keys to dense group ids.
type GroupTableStr struct {
	slots []int32
	mask  uint64
	keys  []string
	bytes int
}

// NewGroupTableStr returns a table pre-sized for the given group capacity.
func NewGroupTableStr(capacity int) *GroupTableStr {
	t := &GroupTableStr{}
	t.init(nextPow2(capacity * 2))
	return t
}

func (t *GroupTableStr) init(slots int) {
	if slots < 16 {
		slots = 16
	}
	t.slots = make([]int32, slots)
	t.mask = uint64(slots - 1)
}

// Groups returns the number of distinct keys inserted.
func (t *GroupTableStr) Groups() int { return len(t.keys) }

// Key returns the key of a group id.
func (t *GroupTableStr) Key(gid int32) string { return t.keys[gid] }

// ByteSize approximates the resident size of the table.
func (t *GroupTableStr) ByteSize() int { return len(t.slots)*4 + len(t.keys)*16 + t.bytes }

func (t *GroupTableStr) insertCheck(key string) int32 {
	if len(t.keys)*4 >= len(t.slots)*3 {
		t.grow()
	}
	h := HashStr(key) & t.mask
	for {
		g := t.slots[h]
		if g == 0 {
			gid := int32(len(t.keys))
			t.keys = append(t.keys, key)
			t.bytes += len(key)
			t.slots[h] = gid + 1
			return gid
		}
		if t.keys[g-1] == key {
			return g - 1
		}
		h = (h + 1) & t.mask
	}
}

func (t *GroupTableStr) grow() {
	old := t.keys
	t.init(len(t.slots) * 2)
	for gid, k := range old {
		h := HashStr(k) & t.mask
		for t.slots[h] != 0 {
			h = (h + 1) & t.mask
		}
		t.slots[h] = int32(gid) + 1
	}
}

// JoinTable is a hash table from int64 keys to build-side row numbers,
// with chaining for duplicate keys.
type JoinTable struct {
	slots []int32 // entry index + 1; 0 = empty
	mask  uint64
	keys  []int64
	rows  []int32
	next  []int32 // entry -> next entry with same slot key chain (+1; 0 = end)
}

// NewJoinTable builds the table from the build side's key column.
func NewJoinTable(keys []int64) *JoinTable {
	slots := nextPow2(len(keys)*2 + 16)
	t := &JoinTable{
		slots: make([]int32, slots),
		mask:  uint64(slots - 1),
		keys:  make([]int64, 0, len(keys)),
		rows:  make([]int32, 0, len(keys)),
		next:  make([]int32, 0, len(keys)),
	}
	for row, k := range keys {
		t.insert(k, int32(row))
	}
	return t
}

func (t *JoinTable) insert(key int64, row int32) {
	h := HashI64(key) & t.mask
	for {
		e := t.slots[h]
		if e == 0 {
			t.keys = append(t.keys, key)
			t.rows = append(t.rows, row)
			t.next = append(t.next, 0)
			t.slots[h] = int32(len(t.keys))
			return
		}
		if t.keys[e-1] == key {
			// Chain behind the first entry of this key.
			t.keys = append(t.keys, key)
			t.rows = append(t.rows, row)
			t.next = append(t.next, t.next[e-1])
			t.next[e-1] = int32(len(t.keys))
			return
		}
		h = (h + 1) & t.mask
	}
}

// Lookup returns the first build row for key, or -1.
func (t *JoinTable) Lookup(key int64) int32 {
	h := HashI64(key) & t.mask
	for {
		e := t.slots[h]
		if e == 0 {
			return -1
		}
		if t.keys[e-1] == key {
			return t.rows[e-1]
		}
		h = (h + 1) & t.mask
	}
}

// LookupAll appends all build rows for key to dst and returns it.
func (t *JoinTable) LookupAll(key int64, dst []int32) []int32 {
	h := HashI64(key) & t.mask
	for {
		e := t.slots[h]
		if e == 0 {
			return dst
		}
		if t.keys[e-1] == key {
			for e != 0 {
				dst = append(dst, t.rows[e-1])
				e = t.next[e-1]
			}
			return dst
		}
		h = (h + 1) & t.mask
	}
}

// Entries returns the number of build rows in the table.
func (t *JoinTable) Entries() int { return len(t.keys) }

// ByteSize approximates the resident size of the table.
func (t *JoinTable) ByteSize() int {
	return len(t.slots)*4 + len(t.keys)*8 + len(t.rows)*4 + len(t.next)*4
}

func nextPow2(n int) int {
	p := 16
	for p < n {
		p *= 2
	}
	return p
}
