// Flavor-knowledge federation: the coordinator periodically pulls each
// shard's FlavorCache snapshot, merges it into its own cache, and pushes
// the merged fleet knowledge back to every shard. Merging is EWMA through
// the cache's Observe path on both sides, so federation never clobbers a
// process's locally measured costs — it nudges them toward the fleet
// consensus, and a cold process (a shard joining, a restarted
// coordinator) warm-starts its next sessions from knowledge the rest of
// the fleet already paid the exploration tax for.
package dist

import (
	"fmt"
	"time"
)

// GossipOnce runs one pull-merge-push federation round and reports how
// many flavor estimates the coordinator imported from shards. Push
// failures don't abort the round — a shard that missed a push catches up
// next round — but the first error is returned so callers can log it.
func (c *Coordinator) GossipOnce() (imported int, err error) {
	for _, sh := range c.shards {
		snap, serr := sh.client.Flavors()
		if serr != nil {
			if err == nil {
				err = fmt.Errorf("dist: gossip pull %s: %w", sh.url, serr)
			}
			continue
		}
		imported += c.svc.Cache().Import(snap)
	}
	fleet := c.svc.Cache().Export()
	if fleet.Len() > 0 {
		for _, sh := range c.shards {
			if _, serr := sh.client.PushFlavors(fleet); serr != nil && err == nil {
				err = fmt.Errorf("dist: gossip push %s: %w", sh.url, serr)
			}
		}
	}
	c.gossipRounds.Add(1)
	c.gossipImported.Add(int64(imported))
	return imported, err
}

// StartGossip runs GossipOnce every interval until Stop. Errors are
// tolerated (the next round retries); starting twice is a no-op.
func (c *Coordinator) StartGossip(interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	c.gossipOnce.Do(func() {
		c.gossipStop = make(chan struct{})
		c.gossipDone = make(chan struct{})
		go func() {
			defer close(c.gossipDone)
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-c.gossipStop:
					return
				case <-t.C:
					_, _ = c.GossipOnce()
				}
			}
		}()
	})
}

// Stop ends the gossip loop, if one is running, and waits for it.
func (c *Coordinator) Stop() {
	if c.gossipStop == nil {
		return
	}
	select {
	case <-c.gossipStop:
	default:
		close(c.gossipStop)
	}
	<-c.gossipDone
}
