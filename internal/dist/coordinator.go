// Package dist is the sharded distributed execution tier: a coordinator
// that fronts N shard processes, each an ordinary madaptd serving a
// contiguous row-range of every TPC-H table (tpch.DB.Shard).
//
// The coordinator plans queries against a schema-only catalog, derives
// per-shard plan fragments at the base-table scans (plan.FragmentSites),
// fans the fragments out over madaptd's existing HTTP/JSON plan endpoint,
// merges the partial tables bit-identically (concatenation in shard
// order, or exact partial-aggregate folding), presets the merged results
// into the original plan's executor, and runs the residual — joins, final
// aggregates, delivery steps — locally. Results are byte-for-byte the
// tables a single process produces.
//
// Micro-adaptivity crosses the process boundary twice. Shard-side
// fragments carry the original plan's node labels, so their primitive
// instances learn under the same partition-free cache keys as a
// single-process run; the coordinator's residual session learns the
// non-fragment instances. Federation (gossip.go) then exchanges
// FlavorCache snapshots through /v1/flavors, so a shard joining cold
// warm-starts from the fleet's knowledge.
package dist

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"microadapt/internal/core"
	"microadapt/internal/engine"
	"microadapt/internal/plan"
	"microadapt/internal/server"
	"microadapt/internal/service"
	"microadapt/internal/stats"
	"microadapt/internal/tpch"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Shards are the shard base URLs in shard order. Shard i must hold
	// tpch DB.Shard(i, len(Shards)) of the same generated database —
	// range order is what makes concatenated partials bit-identical.
	// Required, at least one.
	Shards []string
	// DB is the coordinator's catalog. Only its schema matters: the
	// coordinator plans and validates against a zero-row SchemaOnly view,
	// and every base-table row it processes arrives from a shard.
	// Required.
	DB *tpch.DB
	// Service configures the residual-execution service (policy, flavors,
	// vector size, warm start). Zero value takes service defaults.
	Service service.Config
	// Retry is the per-shard client retry policy; zero value installs
	// server.DefaultRetry.
	Retry *server.RetryPolicy
	// FragmentTimeoutMS bounds one fragment round trip (default 60s).
	FragmentTimeoutMS int
	// LatencyWindow is the per-shard fragment RTT window capacity
	// (default 1024).
	LatencyWindow int
	// SiteFanout bounds how many independent fragment sites execute
	// concurrently (default 4). 1 runs sites sequentially in site order —
	// still streaming over the wire, but with a deterministic shard-side
	// learning sequence, which the bench suite relies on.
	SiteFanout int
	// BufferedFragments forces the buffered /v1/plan path for every
	// fragment instead of trying /v1/plan/stream first.
	BufferedFragments bool
	// JSONWire disables negotiation of the binary columnar partial
	// encoding, forcing JSON bodies like a pre-binary coordinator. The
	// default (false) requests binary from every shard; old JSON-only
	// shards ignore the negotiation header and keep answering JSON, which
	// the clients decode transparently — see server.Client.WithBinaryWire.
	JSONWire bool
}

// shardConn is one shard's client plus its observability.
type shardConn struct {
	url    string
	client *server.Client
	lat    *stats.Window // fragment round-trip time, ns
}

// Coordinator fans plan fragments out to shards and finishes queries
// locally. It implements server.Executor, so madaptd serves the same
// HTTP surface in coordinator mode as in single-process mode, and
// server.FleetReporter, so /metrics grows a fleet section.
type Coordinator struct {
	svc        *service.Service
	shards     []*shardConn
	timeoutMS  int
	siteFanout int
	buffered   bool // force the buffered fragment path

	fragments      atomic.Int64 // logical fragments dispatched (one per site x shard)
	attempts       atomic.Int64 // transport attempts (stream try + buffered retry each count)
	streamedFrags  atomic.Int64 // fragments completed over /v1/plan/stream
	bufferedFrags  atomic.Int64 // fragments completed over buffered /v1/plan
	binChunks      atomic.Int64 // partial chunks that arrived binary-encoded
	jsonChunks     atomic.Int64 // partial chunks that arrived JSON-encoded
	ttfc           *stats.Window
	gossipRounds   atomic.Int64
	gossipImported atomic.Int64

	gossipOnce sync.Once
	gossipStop chan struct{}
	gossipDone chan struct{}
}

// New builds a coordinator over the given shard fleet. It does not touch
// the network — WaitReady waits for the fleet.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("dist: no shards configured")
	}
	if cfg.DB == nil {
		return nil, fmt.Errorf("dist: Config.DB is required")
	}
	retry := server.DefaultRetry
	if cfg.Retry != nil {
		retry = *cfg.Retry
	}
	if cfg.FragmentTimeoutMS <= 0 {
		cfg.FragmentTimeoutMS = 60_000
	}
	if cfg.LatencyWindow < 1 {
		cfg.LatencyWindow = 1024
	}
	if cfg.SiteFanout < 1 {
		cfg.SiteFanout = 4
	}
	svc := service.New(cfg.DB.SchemaOnly(), cfg.Service)
	if err := svc.Err(); err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	c := &Coordinator{
		svc:        svc,
		timeoutMS:  cfg.FragmentTimeoutMS,
		siteFanout: cfg.SiteFanout,
		buffered:   cfg.BufferedFragments,
		ttfc:       stats.NewWindow(cfg.LatencyWindow),
	}
	for _, url := range cfg.Shards {
		c.shards = append(c.shards, &shardConn{
			url:    url,
			client: server.NewClient(url).WithRetry(retry).WithBinaryWire(!cfg.JSONWire),
			lat:    stats.NewWindow(cfg.LatencyWindow),
		})
	}
	return c, nil
}

// Shards returns the fleet size.
func (c *Coordinator) Shards() int { return len(c.shards) }

// WaitReady blocks until every shard answers /healthz or the timeout
// passes.
func (c *Coordinator) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, sh := range c.shards {
		left := time.Until(deadline)
		if left <= 0 {
			left = time.Millisecond
		}
		if err := sh.client.WaitReady(left); err != nil {
			return fmt.Errorf("dist: shard %s: %w", sh.url, err)
		}
	}
	return nil
}

// DB implements server.Executor: the schema-only catalog wire plans are
// validated against.
func (c *Coordinator) DB() *tpch.DB { return c.svc.DB() }

// Cache implements server.Executor: the coordinator's own knowledge
// store, which gossip keeps merged with the shards'.
func (c *Coordinator) Cache() *service.FlavorCache { return c.svc.Cache() }

// SeededInstances implements server.Executor for the coordinator's
// residual sessions.
func (c *Coordinator) SeededInstances() (seeded, cold int64) { return c.svc.SeededInstances() }

// Execute implements server.Executor: one TPC-H query, distributed.
func (c *Coordinator) Execute(q int) (*engine.Table, service.JobStats, error) {
	if q < 1 || q > 22 {
		return nil, service.JobStats{}, fmt.Errorf("dist: no TPC-H query %d", q)
	}
	sp := tpch.Query(q)
	b := sp.Plan(c.svc.DB())
	tab, st, err := c.run(b, sp.Finish)
	st.Query = q
	if err != nil {
		return nil, st, fmt.Errorf("dist: Q%02d: %w", q, err)
	}
	return tab, st, nil
}

// ExecutePlan implements server.Executor: an arbitrary wire plan,
// distributed. Like the single-process ExecutePlan it runs every root
// (side outputs learn too) and returns the main root's table.
func (c *Coordinator) ExecutePlan(b *plan.Builder) (*engine.Table, service.JobStats, error) {
	if len(b.Roots()) == 0 {
		return nil, service.JobStats{}, fmt.Errorf("dist: plan %s has no roots", b.Name())
	}
	tab, st, err := c.run(b, func(b *plan.Builder, ex *plan.Exec) (tab *engine.Table, err error) {
		// Wire plans can reach engine panics the builder cannot rule out
		// statically; convert them like service.ExecutePlan does.
		defer func() {
			if r := recover(); r != nil {
				tab, err = nil, fmt.Errorf("plan %s: %v", b.Name(), r)
			}
		}()
		for _, root := range b.Roots() {
			t, rerr := ex.Run(root.Node)
			if rerr != nil {
				return nil, rerr
			}
			if tab == nil {
				tab = t
			}
		}
		return tab, nil
	})
	if err != nil {
		return nil, st, fmt.Errorf("dist: %w", err)
	}
	return tab, st, nil
}

// run is the distributed execution spine: derive fragment sites, fan the
// fragments out — sites concurrent under the bounded fan-out, each site
// streaming per-shard chunks straight into its incremental merge — preset
// the merged tables into the original plan, and finish locally.
func (c *Coordinator) run(b *plan.Builder, finish func(*plan.Builder, *plan.Exec) (*engine.Table, error)) (*engine.Table, service.JobStats, error) {
	if err := c.svc.Err(); err != nil {
		return nil, service.JobStats{}, err
	}
	start := time.Now()
	st := service.JobStats{}

	sites := plan.FragmentSites(b)
	merged := make([]*engine.Table, len(sites))
	siteStats := make([]server.StatsJSON, len(sites))
	if c.siteFanout <= 1 {
		// Sequential sites in site order: the deterministic path.
		for si, site := range sites {
			var err error
			merged[si], siteStats[si], err = c.runSite(site)
			if err != nil {
				return nil, st, err
			}
		}
	} else {
		sem := make(chan struct{}, c.siteFanout)
		errs := make([]error, len(sites))
		var wg sync.WaitGroup
		for si, site := range sites {
			wg.Add(1)
			go func(si int, site *plan.FragmentSite) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				merged[si], siteStats[si], errs[si] = c.runSite(site)
			}(si, site)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, st, err
			}
		}
	}
	// Fold per-site stats in site order after the fan-out, so the float
	// sums come out identical whatever order the sites finished in.
	for _, sst := range siteStats {
		st.PrimCycles += sst.PrimCycles
		st.Instances += sst.Instances
		st.AdaptiveCalls += sst.AdaptiveCalls
		st.OffBestCalls += sst.OffBestCalls
	}

	// Residual execution: the original plan with every fragment site's
	// merged table preset, in a fresh warm-started session that learns the
	// coordinator-side instances.
	s := c.svc.NewSession()
	ex := b.Bind(s)
	for si, site := range sites {
		if err := ex.Preset(site.Node, merged[si]); err != nil {
			return nil, st, err
		}
	}
	tab, err := finish(b, ex)
	st.Latency = time.Since(start)
	if err != nil {
		return nil, st, err
	}
	c.svc.Cache().Harvest(s)
	st.PrimCycles += s.Ctx.PrimCycles
	st.Instances += len(s.AllInstances())
	adaptive, offBest := core.AdaptationCost(s.AllInstances())
	st.AdaptiveCalls += adaptive
	st.OffBestCalls += offBest
	return tab, st, nil
}

// encodeFragment marshals one site's fragment into the request body every
// shard receives — encoded exactly once per site, however large the
// fleet. The same bytes serve both the streaming and buffered endpoints.
func (c *Coordinator) encodeFragment(site *plan.FragmentSite) ([]byte, error) {
	wire, err := plan.MarshalPlan(site.Fragment)
	if err != nil {
		return nil, fmt.Errorf("marshal fragment %s: %w", site.Table, err)
	}
	body, err := server.EncodePlanRequest(server.PlanRequest{
		Plan:          wire,
		TimeoutMS:     c.timeoutMS,
		IncludeResult: true,
	})
	if err != nil {
		return nil, fmt.Errorf("encode fragment %s: %w", site.Table, err)
	}
	return body, nil
}

// runSite executes one fragment site across the fleet: every shard
// streams its partial concurrently, chunks fold into the site's
// incremental accumulator as they arrive, and the merged table comes back
// with the site's shard stats folded in shard order (deterministic float
// sums).
func (c *Coordinator) runSite(site *plan.FragmentSite) (*engine.Table, server.StatsJSON, error) {
	body, err := c.encodeFragment(site)
	if err != nil {
		return nil, server.StatsJSON{}, err
	}
	acc := site.NewAccumulator(len(c.shards))
	shardStats := make([]server.StatsJSON, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for shi, sh := range c.shards {
		wg.Add(1)
		go func(shi int, sh *shardConn) {
			defer wg.Done()
			shardStats[shi], errs[shi] = c.fetchShard(acc, shi, sh, body)
		}(shi, sh)
	}
	wg.Wait()
	for shi, err := range errs {
		if err != nil {
			return nil, server.StatsJSON{}, fmt.Errorf("shard %s: fragment %s: %w", c.shards[shi].url, site.Table, err)
		}
	}
	m, err := acc.Result()
	if err != nil {
		return nil, server.StatsJSON{}, err
	}
	var sst server.StatsJSON
	for _, ss := range shardStats {
		sst.PrimCycles += ss.PrimCycles
		sst.Instances += ss.Instances
		sst.AdaptiveCalls += ss.AdaptiveCalls
		sst.OffBestCalls += ss.OffBestCalls
	}
	return m, sst, nil
}

// fetchShard delivers one shard's partial into the accumulator: streaming
// first, falling back to the buffered endpoint if the stream fails for
// any reason (old peer, truncation, digest mismatch). A failed stream's
// already-delivered chunks are discarded via ResetShard before the
// buffered retry, so no partial rows survive into the merge.
//
// The logical fragment is counted exactly once here, however many
// transport attempts it takes — a stream→buffered fallback is one
// fragment, two attempts — so on success fragments == streamed+buffered
// always holds in /metrics. (It used to be counted per attempt, which
// double-counted every fallback.)
func (c *Coordinator) fetchShard(acc *plan.PartialAccumulator, shi int, sh *shardConn, body []byte) (server.StatsJSON, error) {
	c.fragments.Add(1)
	if !c.buffered {
		sst, serr := c.fetchStream(acc, shi, sh, body)
		if serr == nil {
			return sst, nil
		}
		if rerr := acc.ResetShard(shi); rerr != nil {
			// Reset refuses only after FinishShard — the stream was already
			// folded, so the failure is a post-verification bug, not a
			// retryable transport error.
			return sst, fmt.Errorf("stream failed after shard finished: %v (%w)", serr, rerr)
		}
	}
	sst, tab, err := c.fetchBuffered(sh, body)
	if err != nil {
		return sst, err
	}
	if err := acc.AddChunk(shi, tab); err != nil {
		return sst, err
	}
	return sst, acc.FinishShard(shi)
}

// fetchStream ships the fragment over /v1/plan/stream, folding each chunk
// into the accumulator as it arrives and recording time-to-first-chunk.
// TTFC is measured during the stream but recorded only once the whole
// stream verifies: a stream that dies after its first chunk falls back to
// the buffered path, and its provisional TTFC sample must not survive
// into the window (it would skew the percentiles low, since aborted
// streams tend to have delivered their first chunk quickly).
func (c *Coordinator) fetchStream(acc *plan.PartialAccumulator, shi int, sh *shardConn, body []byte) (server.StatsJSON, error) {
	c.attempts.Add(1)
	start := time.Now()
	ttfc := -1.0
	res, err := sh.client.PlanStreamEncoded(body, func(tj *server.TableJSON) error {
		if ttfc < 0 {
			ttfc = float64(time.Since(start))
		}
		tab, derr := server.DecodeTable(tj)
		if derr != nil {
			return derr
		}
		return acc.AddChunk(shi, tab)
	})
	if err != nil {
		return server.StatsJSON{}, err
	}
	if ttfc < 0 {
		// Zero-row partial: first "chunk" is the verified trailer.
		ttfc = float64(time.Since(start))
	}
	c.ttfc.Add(ttfc)
	sh.lat.Add(float64(time.Since(start)))
	c.streamedFrags.Add(1)
	c.binChunks.Add(int64(res.BinaryChunks))
	c.jsonChunks.Add(int64(res.Chunks - res.BinaryChunks))
	if err := acc.FinishShard(shi); err != nil {
		return res.Stats, err
	}
	return res.Stats, nil
}

// fetchBuffered ships the fragment over buffered /v1/plan and decodes the
// whole partial — the fallback path and the BufferedFragments mode.
func (c *Coordinator) fetchBuffered(sh *shardConn, body []byte) (server.StatsJSON, *engine.Table, error) {
	c.attempts.Add(1)
	start := time.Now()
	out, err := sh.client.PlanEncoded(body)
	if err != nil {
		return server.StatsJSON{}, nil, err
	}
	sh.lat.Add(float64(time.Since(start)))
	if !out.OK() {
		msg := "(no body)"
		if out.Err != nil {
			msg = out.Err.Error
		}
		return server.StatsJSON{}, nil, fmt.Errorf("status %d: %s", out.Status, msg)
	}
	tj, err := out.Response.ResultTable()
	if err != nil {
		return server.StatsJSON{}, nil, err
	}
	if tj == nil {
		return server.StatsJSON{}, nil, fmt.Errorf("shard answered without result table")
	}
	tab, err := server.DecodeTable(tj)
	if err != nil {
		return server.StatsJSON{}, nil, err
	}
	c.bufferedFrags.Add(1)
	if len(out.Response.ResultBin) > 0 {
		c.binChunks.Add(1)
	} else {
		c.jsonChunks.Add(1)
	}
	return out.Response.Stats, tab, nil
}

// Fleet implements server.FleetReporter: fleet-wide fragment latency from
// the per-shard windows folded with stats.Window.Merge, plus gossip
// counters.
func (c *Coordinator) Fleet() server.FleetMetrics {
	all := stats.NewWindow(len(c.shards) * 1024)
	for _, sh := range c.shards {
		all.Merge(sh.lat)
	}
	ps := all.Percentiles(50, 99)
	ttfc := c.ttfc.Percentiles(50, 99)
	return server.FleetMetrics{
		Shards:            len(c.shards),
		FragmentsSent:     c.fragments.Load(),
		FragmentAttempts:  c.attempts.Load(),
		StreamedFragments: c.streamedFrags.Load(),
		BufferedFragments: c.bufferedFrags.Load(),
		BinaryChunks:      c.binChunks.Load(),
		JSONChunks:        c.jsonChunks.Load(),
		GossipRounds:      c.gossipRounds.Load(),
		GossipImported:    c.gossipImported.Load(),
		FragmentP50US:     ps[0] / 1e3,
		FragmentP99US:     ps[1] / 1e3,
		TTFCP50US:         ttfc[0] / 1e3,
		TTFCP99US:         ttfc[1] / 1e3,
	}
}
