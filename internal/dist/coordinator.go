// Package dist is the sharded distributed execution tier: a coordinator
// that fronts N shard processes, each an ordinary madaptd serving a
// contiguous row-range of every TPC-H table (tpch.DB.Shard).
//
// The coordinator plans queries against a schema-only catalog, derives
// per-shard plan fragments at the base-table scans (plan.FragmentSites),
// fans the fragments out over madaptd's existing HTTP/JSON plan endpoint,
// merges the partial tables bit-identically (concatenation in shard
// order, or exact partial-aggregate folding), presets the merged results
// into the original plan's executor, and runs the residual — joins, final
// aggregates, delivery steps — locally. Results are byte-for-byte the
// tables a single process produces.
//
// Micro-adaptivity crosses the process boundary twice. Shard-side
// fragments carry the original plan's node labels, so their primitive
// instances learn under the same partition-free cache keys as a
// single-process run; the coordinator's residual session learns the
// non-fragment instances. Federation (gossip.go) then exchanges
// FlavorCache snapshots through /v1/flavors, so a shard joining cold
// warm-starts from the fleet's knowledge.
package dist

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"microadapt/internal/core"
	"microadapt/internal/engine"
	"microadapt/internal/plan"
	"microadapt/internal/server"
	"microadapt/internal/service"
	"microadapt/internal/stats"
	"microadapt/internal/tpch"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Shards are the shard base URLs in shard order. Shard i must hold
	// tpch DB.Shard(i, len(Shards)) of the same generated database —
	// range order is what makes concatenated partials bit-identical.
	// Required, at least one.
	Shards []string
	// DB is the coordinator's catalog. Only its schema matters: the
	// coordinator plans and validates against a zero-row SchemaOnly view,
	// and every base-table row it processes arrives from a shard.
	// Required.
	DB *tpch.DB
	// Service configures the residual-execution service (policy, flavors,
	// vector size, warm start). Zero value takes service defaults.
	Service service.Config
	// Retry is the per-shard client retry policy; zero value installs
	// server.DefaultRetry.
	Retry *server.RetryPolicy
	// FragmentTimeoutMS bounds one fragment round trip (default 60s).
	FragmentTimeoutMS int
	// LatencyWindow is the per-shard fragment RTT window capacity
	// (default 1024).
	LatencyWindow int
}

// shardConn is one shard's client plus its observability.
type shardConn struct {
	url    string
	client *server.Client
	lat    *stats.Window // fragment round-trip time, ns
}

// Coordinator fans plan fragments out to shards and finishes queries
// locally. It implements server.Executor, so madaptd serves the same
// HTTP surface in coordinator mode as in single-process mode, and
// server.FleetReporter, so /metrics grows a fleet section.
type Coordinator struct {
	svc       *service.Service
	shards    []*shardConn
	timeoutMS int

	fragments      atomic.Int64 // fragment requests sent
	gossipRounds   atomic.Int64
	gossipImported atomic.Int64

	gossipOnce sync.Once
	gossipStop chan struct{}
	gossipDone chan struct{}
}

// New builds a coordinator over the given shard fleet. It does not touch
// the network — WaitReady waits for the fleet.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("dist: no shards configured")
	}
	if cfg.DB == nil {
		return nil, fmt.Errorf("dist: Config.DB is required")
	}
	retry := server.DefaultRetry
	if cfg.Retry != nil {
		retry = *cfg.Retry
	}
	if cfg.FragmentTimeoutMS <= 0 {
		cfg.FragmentTimeoutMS = 60_000
	}
	if cfg.LatencyWindow < 1 {
		cfg.LatencyWindow = 1024
	}
	svc := service.New(cfg.DB.SchemaOnly(), cfg.Service)
	if err := svc.Err(); err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	c := &Coordinator{svc: svc, timeoutMS: cfg.FragmentTimeoutMS}
	for _, url := range cfg.Shards {
		c.shards = append(c.shards, &shardConn{
			url:    url,
			client: server.NewClient(url).WithRetry(retry),
			lat:    stats.NewWindow(cfg.LatencyWindow),
		})
	}
	return c, nil
}

// Shards returns the fleet size.
func (c *Coordinator) Shards() int { return len(c.shards) }

// WaitReady blocks until every shard answers /healthz or the timeout
// passes.
func (c *Coordinator) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, sh := range c.shards {
		left := time.Until(deadline)
		if left <= 0 {
			left = time.Millisecond
		}
		if err := sh.client.WaitReady(left); err != nil {
			return fmt.Errorf("dist: shard %s: %w", sh.url, err)
		}
	}
	return nil
}

// DB implements server.Executor: the schema-only catalog wire plans are
// validated against.
func (c *Coordinator) DB() *tpch.DB { return c.svc.DB() }

// Cache implements server.Executor: the coordinator's own knowledge
// store, which gossip keeps merged with the shards'.
func (c *Coordinator) Cache() *service.FlavorCache { return c.svc.Cache() }

// SeededInstances implements server.Executor for the coordinator's
// residual sessions.
func (c *Coordinator) SeededInstances() (seeded, cold int64) { return c.svc.SeededInstances() }

// Execute implements server.Executor: one TPC-H query, distributed.
func (c *Coordinator) Execute(q int) (*engine.Table, service.JobStats, error) {
	if q < 1 || q > 22 {
		return nil, service.JobStats{}, fmt.Errorf("dist: no TPC-H query %d", q)
	}
	sp := tpch.Query(q)
	b := sp.Plan(c.svc.DB())
	tab, st, err := c.run(b, sp.Finish)
	st.Query = q
	if err != nil {
		return nil, st, fmt.Errorf("dist: Q%02d: %w", q, err)
	}
	return tab, st, nil
}

// ExecutePlan implements server.Executor: an arbitrary wire plan,
// distributed. Like the single-process ExecutePlan it runs every root
// (side outputs learn too) and returns the main root's table.
func (c *Coordinator) ExecutePlan(b *plan.Builder) (*engine.Table, service.JobStats, error) {
	if len(b.Roots()) == 0 {
		return nil, service.JobStats{}, fmt.Errorf("dist: plan %s has no roots", b.Name())
	}
	tab, st, err := c.run(b, func(b *plan.Builder, ex *plan.Exec) (tab *engine.Table, err error) {
		// Wire plans can reach engine panics the builder cannot rule out
		// statically; convert them like service.ExecutePlan does.
		defer func() {
			if r := recover(); r != nil {
				tab, err = nil, fmt.Errorf("plan %s: %v", b.Name(), r)
			}
		}()
		for _, root := range b.Roots() {
			t, rerr := ex.Run(root.Node)
			if rerr != nil {
				return nil, rerr
			}
			if tab == nil {
				tab = t
			}
		}
		return tab, nil
	})
	if err != nil {
		return nil, st, fmt.Errorf("dist: %w", err)
	}
	return tab, st, nil
}

// run is the distributed execution spine: derive fragment sites, fan each
// fragment out to every shard, merge the partials, preset them into the
// original plan, and finish locally.
func (c *Coordinator) run(b *plan.Builder, finish func(*plan.Builder, *plan.Exec) (*engine.Table, error)) (*engine.Table, service.JobStats, error) {
	if err := c.svc.Err(); err != nil {
		return nil, service.JobStats{}, err
	}
	start := time.Now()
	st := service.JobStats{}

	sites := plan.FragmentSites(b)
	merged := make([]*engine.Table, len(sites))
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		fanErr error
	)
	for si, site := range sites {
		wire, err := plan.MarshalPlan(site.Fragment)
		if err != nil {
			return nil, st, fmt.Errorf("marshal fragment %s: %w", site.Table, err)
		}
		parts := make([]*engine.Table, len(c.shards))
		for shi, sh := range c.shards {
			wg.Add(1)
			go func(si, shi int, sh *shardConn) {
				defer wg.Done()
				part, pst, err := c.fetchPartial(sh, wire)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if fanErr == nil {
						fanErr = fmt.Errorf("shard %s: fragment %s: %w", sh.url, sites[si].Table, err)
					}
					return
				}
				parts[shi] = part
				st.PrimCycles += pst.PrimCycles
				st.Instances += pst.Instances
				st.AdaptiveCalls += pst.AdaptiveCalls
				st.OffBestCalls += pst.OffBestCalls
			}(si, shi, sh)
		}
		wg.Wait()
		if fanErr != nil {
			return nil, st, fanErr
		}
		m, err := site.MergePartials(parts)
		if err != nil {
			return nil, st, err
		}
		merged[si] = m
	}

	// Residual execution: the original plan with every fragment site's
	// merged table preset, in a fresh warm-started session that learns the
	// coordinator-side instances.
	s := c.svc.NewSession()
	ex := b.Bind(s)
	for si, site := range sites {
		if err := ex.Preset(site.Node, merged[si]); err != nil {
			return nil, st, err
		}
	}
	tab, err := finish(b, ex)
	st.Latency = time.Since(start)
	if err != nil {
		return nil, st, err
	}
	c.svc.Cache().Harvest(s)
	st.PrimCycles += s.Ctx.PrimCycles
	st.Instances += len(s.AllInstances())
	adaptive, offBest := core.AdaptationCost(s.AllInstances())
	st.AdaptiveCalls += adaptive
	st.OffBestCalls += offBest
	return tab, st, nil
}

// fetchPartial ships one fragment to one shard and decodes the partial.
func (c *Coordinator) fetchPartial(sh *shardConn, wire []byte) (*engine.Table, server.StatsJSON, error) {
	c.fragments.Add(1)
	start := time.Now()
	out, err := sh.client.Plan(server.PlanRequest{
		Plan:          wire,
		TimeoutMS:     c.timeoutMS,
		IncludeResult: true,
	})
	if err != nil {
		return nil, server.StatsJSON{}, err
	}
	sh.lat.Add(float64(time.Since(start)))
	if !out.OK() {
		msg := "(no body)"
		if out.Err != nil {
			msg = out.Err.Error
		}
		return nil, server.StatsJSON{}, fmt.Errorf("status %d: %s", out.Status, msg)
	}
	if out.Response.Result == nil {
		return nil, server.StatsJSON{}, fmt.Errorf("shard answered without result table")
	}
	tab, err := server.DecodeTable(out.Response.Result)
	if err != nil {
		return nil, server.StatsJSON{}, err
	}
	return tab, out.Response.Stats, nil
}

// Fleet implements server.FleetReporter: fleet-wide fragment latency from
// the per-shard windows folded with stats.Window.Merge, plus gossip
// counters.
func (c *Coordinator) Fleet() server.FleetMetrics {
	all := stats.NewWindow(len(c.shards) * 1024)
	for _, sh := range c.shards {
		all.Merge(sh.lat)
	}
	ps := all.Percentiles(50, 99)
	return server.FleetMetrics{
		Shards:         len(c.shards),
		FragmentsSent:  c.fragments.Load(),
		GossipRounds:   c.gossipRounds.Load(),
		GossipImported: c.gossipImported.Load(),
		FragmentP50US:  ps[0] / 1e3,
		FragmentP99US:  ps[1] / 1e3,
	}
}
