package dist

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sort"
	"sync"
	"testing"

	"microadapt/internal/plan"
	"microadapt/internal/server"
	"microadapt/internal/service"
	"microadapt/internal/tpch"
)

// proxyShard fronts a real shard with handler overrides, reverse-proxying
// everything else, so tests can break exactly one endpoint of one shard.
func proxyShard(t *testing.T, backend string, override map[string]http.HandlerFunc) string {
	t.Helper()
	target, err := url.Parse(backend)
	if err != nil {
		t.Fatal(err)
	}
	rp := httputil.NewSingleHostReverseProxy(target)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h, ok := override[r.URL.Path]; ok {
			h(w, r)
			return
		}
		rp.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv.URL
}

// truncateStream forwards the streaming request to the backend, replays
// the header plus at most one chunk frame, then cuts the connection — a
// shard dying mid-stream, after real rows were already delivered.
func truncateStream(t *testing.T, backend string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			panic(http.ErrAbortHandler)
		}
		resp, err := http.Post(backend+"/v1/plan/stream", "application/json", bytes.NewReader(body))
		if err != nil {
			panic(http.ErrAbortHandler)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			w.WriteHeader(resp.StatusCode)
			io.Copy(w, resp.Body)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		br := bufio.NewReader(resp.Body)
		for i := 0; i < 2; i++ {
			line, err := br.ReadBytes('\n')
			if err != nil {
				break
			}
			w.Write(line)
			if fl, ok := w.(http.Flusher); ok {
				fl.Flush()
			}
		}
		panic(http.ErrAbortHandler) // cut the connection mid-stream
	}
}

// TestStreamingFallback: a shard whose stream breaks — endpoint missing
// (old peer) or connection cut after delivering real chunks — falls back
// to the buffered path with no partial rows leaking into the merge: the
// result stays bit-identical and /metrics records the buffered fragments.
func TestStreamingFallback(t *testing.T) {
	svcCfg := service.DefaultConfig()
	single := service.New(testDB, svcCfg)

	cases := []struct {
		name     string
		override func(backend string) map[string]http.HandlerFunc
	}{
		{"endpoint-missing", func(string) map[string]http.HandlerFunc {
			return map[string]http.HandlerFunc{"/v1/plan/stream": http.NotFound}
		}},
		{"dies-mid-stream", func(backend string) map[string]http.HandlerFunc {
			return map[string]http.HandlerFunc{"/v1/plan/stream": truncateStream(t, backend)}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Tiny stream chunks so the mid-stream cut happens after a real
			// chunk was folded and then discarded.
			urls := startShards(t, 2, svcCfg, server.Config{StreamChunkRows: 16})
			urls[1] = proxyShard(t, urls[1], tc.override(urls[1]))
			c, err := New(Config{Shards: urls, DB: testDB, Service: svcCfg})
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range []int{1, 6, 14} {
				want, _, err := single.Execute(q)
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := c.Execute(q)
				if err != nil {
					t.Fatalf("Q%02d: %v", q, err)
				}
				if server.Fingerprint(got) != server.Fingerprint(want) {
					t.Errorf("Q%02d: fingerprint differs after %s fallback", q, tc.name)
				}
			}
			fleet := c.Fleet()
			if fleet.BufferedFragments == 0 {
				t.Error("broken shard produced no buffered fallback fragments")
			}
			if fleet.StreamedFragments == 0 {
				t.Error("healthy shard streamed no fragments")
			}
		})
	}
}

// TestStreamingFallbackCounters is the regression test for the
// fragment-counter double-count: a stream→buffered fallback used to bump
// the fragment counter on both attempts, so fragments_sent drifted above
// streamed+buffered whenever a shard's stream broke, and the aborted
// stream left a stale time-to-first-chunk sample in the window. Counted
// correctly, fragments_sent == streamed + buffered always holds, the
// extra transport attempts show up in fragment_attempts instead, and the
// TTFC window holds exactly one sample per *completed* stream.
func TestStreamingFallbackCounters(t *testing.T) {
	svcCfg := service.DefaultConfig()
	urls := startShards(t, 2, svcCfg, server.Config{StreamChunkRows: 16})
	urls[1] = proxyShard(t, urls[1], map[string]http.HandlerFunc{
		"/v1/plan/stream": truncateStream(t, urls[1]),
	})
	c, err := New(Config{Shards: urls, DB: testDB, Service: svcCfg})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{1, 6, 14} {
		if _, _, err := c.Execute(q); err != nil {
			t.Fatalf("Q%02d: %v", q, err)
		}
	}
	fleet := c.Fleet()
	if fleet.BufferedFragments == 0 || fleet.StreamedFragments == 0 {
		t.Fatalf("want both transports exercised; %d streamed, %d buffered",
			fleet.StreamedFragments, fleet.BufferedFragments)
	}
	if got := fleet.StreamedFragments + fleet.BufferedFragments; got != fleet.FragmentsSent {
		t.Errorf("fragments_sent = %d, streamed+buffered = %d; fallback double-counted",
			fleet.FragmentsSent, got)
	}
	// Every buffered completion here followed a failed stream attempt.
	wantAttempts := fleet.FragmentsSent + fleet.BufferedFragments
	if fleet.FragmentAttempts != wantAttempts {
		t.Errorf("fragment_attempts = %d, want %d (one retry per fallback)",
			fleet.FragmentAttempts, wantAttempts)
	}
	// The aborted streams delivered a first chunk before dying; their
	// provisional TTFC samples must not survive into the window.
	if got := c.ttfc.Count(); got != fleet.StreamedFragments {
		t.Errorf("TTFC window holds %d samples, want %d (completed streams only)",
			got, fleet.StreamedFragments)
	}
}

// TestStreamingMixedFleet: a binary-negotiating coordinator over a fleet
// with one legacy JSON-only shard — negotiation falls back per shard, the
// merge stays bit-identical, and /metrics shows both encodings plus the
// restored counter invariant. This is the CI mixed-fleet smoke's
// in-process twin.
func TestStreamingMixedFleet(t *testing.T) {
	svcCfg := service.DefaultConfig()
	single := service.New(testDB, svcCfg)
	urls := startShardsMixed(t, 2, svcCfg, server.Config{StreamChunkRows: 16})
	c, err := New(Config{Shards: urls, DB: testDB, Service: svcCfg})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{1, 6, 14} {
		want, _, err := single.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.Execute(q)
		if err != nil {
			t.Fatalf("Q%02d: %v", q, err)
		}
		if server.Fingerprint(got) != server.Fingerprint(want) {
			t.Errorf("Q%02d: fingerprint differs on the mixed fleet", q)
		}
	}
	fleet := c.Fleet()
	if fleet.BinaryChunks == 0 {
		t.Error("binary shard contributed no binary chunks")
	}
	if fleet.JSONChunks == 0 {
		t.Error("legacy shard contributed no JSON chunks")
	}
	if fleet.StreamedFragments+fleet.BufferedFragments != fleet.FragmentsSent {
		t.Errorf("fragments_sent = %d, streamed+buffered = %d",
			fleet.FragmentsSent, fleet.StreamedFragments+fleet.BufferedFragments)
	}
	if fleet.FragmentAttempts != fleet.FragmentsSent {
		t.Errorf("%d attempts for %d fragments; legacy encoding is not a transport failure",
			fleet.FragmentAttempts, fleet.FragmentsSent)
	}
}

// recordBodies wraps a shard so every fragment request body's digest is
// captured, per endpoint.
func recordBodies(t *testing.T, backend string, mu *sync.Mutex, got *[]string) string {
	t.Helper()
	target, _ := url.Parse(backend)
	rp := httputil.NewSingleHostReverseProxy(target)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/plan/stream" || r.URL.Path == "/v1/plan" {
			body, err := io.ReadAll(r.Body)
			r.Body.Close()
			if err != nil {
				t.Errorf("read fragment body: %v", err)
			}
			h := sha256.Sum256(body)
			mu.Lock()
			*got = append(*got, string(h[:]))
			mu.Unlock()
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		rp.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv.URL
}

// TestFragmentEncodeOncePerSite is the regression guard for the
// encode-once fix: every shard receives byte-identical fragment bodies
// (one per site), and encoding a fragment body costs the same allocations
// whatever the fleet size — i.e. it happens per site, not per shard.
func TestFragmentEncodeOncePerSite(t *testing.T) {
	svcCfg := service.DefaultConfig()
	urls := startShards(t, 2, svcCfg, server.Config{})
	var mu sync.Mutex
	bodies := make([][]string, 2)
	for i := range urls {
		urls[i] = recordBodies(t, urls[i], &mu, &bodies[i])
	}
	c, err := New(Config{Shards: urls, DB: testDB, Service: svcCfg})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Execute(14); err != nil { // two base tables -> two sites
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(bodies[0]) < 2 {
		t.Fatalf("shard 0 saw %d fragment requests, want >= 2 (one per site)", len(bodies[0]))
	}
	sort.Strings(bodies[0])
	sort.Strings(bodies[1])
	if len(bodies[0]) != len(bodies[1]) {
		t.Fatalf("shards saw %d vs %d fragment requests", len(bodies[0]), len(bodies[1]))
	}
	for i := range bodies[0] {
		if bodies[0][i] != bodies[1][i] {
			t.Fatal("shards received different fragment body bytes for the same site")
		}
	}

	// Encoding cost is independent of fleet size: the same site body
	// allocates (almost) identically on a 1-shard and an 8-shard
	// coordinator. A couple of allocations of jitter are tolerated —
	// AllocsPerRun is not exact under -race — while the failure mode this
	// guards against (marshaling once per shard) would show up as ~8x.
	mk := func(n int) *Coordinator {
		shards := make([]string, n)
		for i := range shards {
			shards[i] = "http://unused.invalid"
		}
		cc, err := New(Config{Shards: shards, DB: testDB, Service: svcCfg})
		if err != nil {
			t.Fatal(err)
		}
		return cc
	}
	c1, c8 := mk(1), mk(8)
	sites := plan.FragmentSites(tpch.Query(6).Plan(c1.DB()))
	if len(sites) == 0 {
		t.Fatal("Q6 derived no fragment sites")
	}
	encode := func(cc *Coordinator) float64 {
		return testing.AllocsPerRun(20, func() {
			if _, err := cc.encodeFragment(sites[0]); err != nil {
				t.Fatal(err)
			}
		})
	}
	if a1, a8 := encode(c1), encode(c8); a8 > a1+2 {
		t.Errorf("fragment encoding allocations scale with fleet size: %v at N=1 vs %v at N=8", a1, a8)
	}
}
