package dist

import (
	"context"
	"strings"
	"testing"
	"time"

	"microadapt/internal/core"
	"microadapt/internal/server"
	"microadapt/internal/service"
	"microadapt/internal/tpch"
)

var testDB = tpch.Generate(0.002, 42)

// startShards spins up n in-process shard servers over row-range shards
// of testDB and returns their URLs. srvCfg parameterizes the shard
// servers beyond the executing service (e.g. StreamChunkRows).
func startShards(t *testing.T, n int, svcCfg service.Config, srvCfg server.Config) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		cfg := srvCfg
		cfg.Service = service.New(testDB.Shard(i, n), svcCfg)
		run, err := server.Start(server.NewServer(cfg), "")
		if err != nil {
			t.Fatalf("start shard %d: %v", i, err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = run.Shutdown(ctx)
		})
		urls[i] = run.URL
	}
	return urls
}

// startShardsMixed is startShards with shard 0 forced to the legacy JSON
// wire encoding — the one-old-peer-in-the-fleet scenario binary
// negotiation must degrade around.
func startShardsMixed(t *testing.T, n int, svcCfg service.Config, srvCfg server.Config) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		cfg := srvCfg
		cfg.LegacyJSONWire = i == 0
		cfg.Service = service.New(testDB.Shard(i, n), svcCfg)
		run, err := server.Start(server.NewServer(cfg), "")
		if err != nil {
			t.Fatalf("start shard %d: %v", i, err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = run.Shutdown(ctx)
		})
		urls[i] = run.URL
	}
	return urls
}

// startFleet spins up n shard servers plus a coordinator fronting them,
// returning both the coordinator and the shard URLs.
func startFleet(t *testing.T, n int, svcCfg service.Config) (*Coordinator, []string) {
	t.Helper()
	urls := startShards(t, n, svcCfg, server.Config{})
	c, err := New(Config{Shards: urls, DB: testDB, Service: svcCfg})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return c, urls
}

// TestDistributedBitIdentity is the subsystem's acceptance test: every
// TPC-H query, distributed over 1, 2 and 4 shards with shard-side
// pipeline parallelism 1, 2 and 4, must fingerprint byte-identically to
// single-process execution over the same database — on the streaming
// coordinator path and the buffered fallback path alike, over the
// default binary wire, the forced-JSON wire, and a mixed fleet where
// shard 0 refuses the binary negotiation.
func TestDistributedBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-fleet sweep")
	}
	single := service.New(testDB, service.DefaultConfig())
	want := make(map[int]string)
	for q := 1; q <= 22; q++ {
		tab, _, err := single.Execute(q)
		if err != nil {
			t.Fatalf("single-process Q%02d: %v", q, err)
		}
		want[q] = server.Fingerprint(tab)
	}
	for _, n := range []int{1, 2, 4} {
		for _, p := range []int{1, 2, 4} {
			svcCfg := service.DefaultConfig()
			svcCfg.PipelineParallelism = p
			// Small stream chunks so multi-chunk streams are the norm, not
			// an sf-dependent accident.
			urls := startShards(t, n, svcCfg, server.Config{StreamChunkRows: 64})
			stream, err := New(Config{Shards: urls, DB: testDB, Service: svcCfg})
			if err != nil {
				t.Fatal(err)
			}
			buffered, err := New(Config{Shards: urls, DB: testDB, Service: svcCfg, BufferedFragments: true})
			if err != nil {
				t.Fatal(err)
			}
			jsonw, err := New(Config{Shards: urls, DB: testDB, Service: svcCfg, JSONWire: true})
			if err != nil {
				t.Fatal(err)
			}
			mixedURLs := startShardsMixed(t, n, svcCfg, server.Config{StreamChunkRows: 64})
			mixed, err := New(Config{Shards: mixedURLs, DB: testDB, Service: svcCfg})
			if err != nil {
				t.Fatal(err)
			}
			if err := stream.WaitReady(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			coords := []struct {
				mode string
				c    *Coordinator
			}{{"stream", stream}, {"buffered", buffered}, {"json-wire", jsonw}, {"mixed-fleet", mixed}}
			for q := 1; q <= 22; q++ {
				for _, co := range coords {
					tab, st, err := co.c.Execute(q)
					if err != nil {
						t.Fatalf("N=%d P=%d Q%02d %s: %v", n, p, q, co.mode, err)
					}
					if got := server.Fingerprint(tab); got != want[q] {
						t.Errorf("N=%d P=%d Q%02d %s: fingerprint %s, want %s (rows=%d)",
							n, p, q, co.mode, got, want[q], tab.Rows())
					}
					if co.mode == "stream" && st.Instances == 0 {
						t.Errorf("N=%d P=%d Q%02d: no primitive instances counted", n, p, q)
					}
				}
			}
			for _, co := range coords {
				fleet := co.c.Fleet()
				if fleet.FragmentsSent == 0 {
					t.Errorf("N=%d P=%d %s: coordinator sent no fragments", n, p, co.mode)
				}
				// The counter invariants the fragment-counting fix restored: a
				// healthy fleet completes every fragment on its first attempt,
				// and every fragment completes over exactly one transport.
				if fleet.StreamedFragments+fleet.BufferedFragments != fleet.FragmentsSent {
					t.Errorf("N=%d P=%d %s: %d streamed + %d buffered != %d fragments sent",
						n, p, co.mode, fleet.StreamedFragments, fleet.BufferedFragments, fleet.FragmentsSent)
				}
				if fleet.FragmentAttempts != fleet.FragmentsSent {
					t.Errorf("N=%d P=%d %s: %d attempts for %d fragments on a healthy fleet",
						n, p, co.mode, fleet.FragmentAttempts, fleet.FragmentsSent)
				}
			}
			fleet := stream.Fleet()
			if fleet.StreamedFragments == 0 || fleet.BufferedFragments != 0 {
				t.Errorf("N=%d P=%d: %d streamed / %d buffered fragments; want all streamed",
					n, p, fleet.StreamedFragments, fleet.BufferedFragments)
			}
			if fleet.TTFCP50US <= 0 {
				t.Errorf("N=%d P=%d: no time-to-first-chunk recorded", n, p)
			}
			if fleet.BinaryChunks == 0 || fleet.JSONChunks != 0 {
				t.Errorf("N=%d P=%d: binary coordinator saw %d binary / %d JSON chunks",
					n, p, fleet.BinaryChunks, fleet.JSONChunks)
			}
			if jf := jsonw.Fleet(); jf.BinaryChunks != 0 || jf.JSONChunks == 0 {
				t.Errorf("N=%d P=%d: JSON-wire coordinator saw %d binary / %d JSON chunks",
					n, p, jf.BinaryChunks, jf.JSONChunks)
			}
			mf := mixed.Fleet()
			if mf.JSONChunks == 0 {
				t.Errorf("N=%d P=%d: mixed fleet's legacy shard contributed no JSON chunks", n, p)
			}
			if n > 1 && mf.BinaryChunks == 0 {
				t.Errorf("N=%d P=%d: mixed fleet's binary shards contributed no binary chunks", n, p)
			}
			bf := buffered.Fleet()
			if bf.StreamedFragments != 0 || bf.BufferedFragments == 0 {
				t.Errorf("N=%d P=%d: buffered coordinator streamed %d fragments", n, p, bf.StreamedFragments)
			}
		}
	}
}

// TestShardRanges: shard slices partition every table exactly.
func TestShardRanges(t *testing.T) {
	n := 3
	for ti, tab := range testDB.Tables() {
		total := 0
		for i := 0; i < n; i++ {
			total += testDB.Shard(i, n).Tables()[ti].Rows()
		}
		if total != tab.Rows() {
			t.Errorf("table %s: shards sum to %d rows, want %d", tab.Name, total, tab.Rows())
		}
	}
	schemaOnly := testDB.SchemaOnly()
	for _, tab := range schemaOnly.Tables() {
		if tab.Rows() != 0 {
			t.Errorf("schema-only table %s has %d rows", tab.Name, tab.Rows())
		}
	}
}

// TestFlavorFederation: knowledge learned by one shard reaches the other
// through a gossip round, and warm-starts its sessions — the cross-process
// warm-start the federation exists for.
func TestFlavorFederation(t *testing.T) {
	c, _ := startFleet(t, 2, service.DefaultConfig())

	// Warm the fleet: distributed queries make every shard learn its
	// fragment instances locally.
	for q := 1; q <= 6; q++ {
		if _, _, err := c.Execute(q); err != nil {
			t.Fatalf("Q%02d: %v", q, err)
		}
	}
	if c.Cache().Len() != 0 {
		// Residual instances may or may not exist depending on the plans;
		// either way gossip must still work below.
		t.Logf("coordinator cache holds %d keys before gossip", c.Cache().Len())
	}
	imported, err := c.GossipOnce()
	if err != nil {
		t.Fatalf("gossip: %v", err)
	}
	if imported == 0 {
		t.Fatal("gossip imported no flavor estimates from warmed shards")
	}
	if c.Cache().Len() == 0 {
		t.Fatal("coordinator cache still empty after gossip")
	}

	// A brand-new shard process (fresh cache) that receives the fleet
	// snapshot warm-starts its first query's instances.
	cold := service.New(testDB.Shard(0, 2), service.DefaultConfig())
	if got := cold.Cache().Import(c.Cache().Export()); got == 0 {
		t.Fatal("cold shard imported nothing")
	}
	if _, _, err := cold.Execute(1); err != nil {
		t.Fatal(err)
	}
	seeded, _ := cold.SeededInstances()
	if seeded == 0 {
		t.Error("cold shard's first query found no cached priors after federation")
	}
}

// TestDecisionKnowledgeFederation: operator-level decision knowledge (the
// join-strategy and ht-sizing arms) rides the same harvest, gossip and
// warm-start path as primitive-flavor knowledge. Joins run at the
// coordinator, so its cache learns decision entries locally; one gossip
// round pushes them to every shard, whose snapshot must carry them back
// through the wire codec; and a cold process importing the fleet snapshot
// warm-starts its decisions before its first join opens.
func TestDecisionKnowledgeFederation(t *testing.T) {
	c, urls := startFleet(t, 2, service.DefaultConfig())
	for _, q := range []int{3, 5, 10} {
		if _, _, err := c.Execute(q); err != nil {
			t.Fatalf("Q%02d: %v", q, err)
		}
	}
	prefix := core.DecisionSig("join-strategy") + "@"
	countDecisions := func(keys []string) (n int) {
		for _, k := range keys {
			if strings.HasPrefix(k, prefix) {
				n++
			}
		}
		return n
	}
	if countDecisions(c.Cache().Keys()) == 0 {
		t.Fatalf("coordinator cache harvested no %s* entries; keys: %v", prefix, c.Cache().Keys())
	}

	if _, err := c.GossipOnce(); err != nil {
		t.Fatalf("gossip: %v", err)
	}
	snap, err := server.NewClient(urls[0]).Flavors()
	if err != nil {
		t.Fatalf("pull shard snapshot: %v", err)
	}
	var shardKeys []string
	for k := range snap.Entries {
		shardKeys = append(shardKeys, k)
	}
	if countDecisions(shardKeys) == 0 {
		t.Fatalf("shard snapshot carries no %s* entries after gossip push; keys: %v", prefix, shardKeys)
	}

	cold := service.New(testDB.Shard(0, 2), service.DefaultConfig())
	if cold.Cache().Import(snap) == 0 {
		t.Fatal("cold shard imported nothing")
	}
	if _, _, err := cold.Execute(3); err != nil {
		t.Fatal(err)
	}
	if seeded, _ := cold.SeededInstances(); seeded == 0 {
		t.Error("cold process found no priors (decisions included) after federation")
	}
}

// TestGossipLoop: the interval loop runs rounds and stops cleanly.
func TestGossipLoop(t *testing.T) {
	c, _ := startFleet(t, 2, service.DefaultConfig())
	if _, _, err := c.Execute(1); err != nil {
		t.Fatal(err)
	}
	c.StartGossip(10 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for c.Fleet().GossipRounds == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	c.Stop()
	if c.Fleet().GossipRounds == 0 {
		t.Fatal("gossip loop ran no rounds")
	}
}
