package storage

import (
	"sort"

	"microadapt/internal/vector"
)

// rleColumn is run-length encoding: values holds one value per run, ends
// the ascending exclusive end offset of each run (ends[len-1] == Len).
// TPC-H's date-clustered fact tables are the sweet spot: a predicate over
// l_shipdate touches thousands of rows per run, so operating on the runs
// themselves beats any per-row plan.
type rleColumn[T elem] struct {
	typ    vector.Type
	values []T
	ends   []int32
}

// newRLEColumn encodes v. Every vector is RLE-encodable (worst case: one
// run per row); whether it is worth it is the analyzer's call.
func newRLEColumn[T elem](v *vector.Vector) EncodedColumn {
	src := typedSlice[T](v)[:v.Len()]
	c := &rleColumn[T]{typ: vecTypeOf[T]()}
	for i := 0; i < len(src); i++ {
		// Runs group by *bit* equality for floats: every NaN payload forms
		// its own run and +0.0 never merges with -0.0, so DecodeRange
		// reproduces the column bit-exactly (values are copied, never
		// recomputed). SelectConst still compares run values with ordinary
		// operators, matching flat-compare semantics.
		if len(c.values) == 0 || !sameBits(src[i], c.values[len(c.values)-1]) {
			c.values = append(c.values, src[i])
			c.ends = append(c.ends, int32(i+1))
		} else {
			c.ends[len(c.ends)-1] = int32(i + 1)
		}
	}
	return c
}

func (c *rleColumn[T]) Encoding() Encoding { return RLE }
func (c *rleColumn[T]) Type() vector.Type  { return c.typ }
func (c *rleColumn[T]) Units() int         { return len(c.values) }

func (c *rleColumn[T]) Len() int {
	if len(c.ends) == 0 {
		return 0
	}
	return int(c.ends[len(c.ends)-1])
}

func (c *rleColumn[T]) EncodedBytes() int {
	return len(c.values)*c.typ.Width() + 4*len(c.ends)
}

// findRun returns the index of the run containing row pos.
func (c *rleColumn[T]) findRun(pos int) int {
	return sort.Search(len(c.ends), func(i int) bool { return int(c.ends[i]) > pos })
}

func (c *rleColumn[T]) DecodeRange(lo, hi int, dst *vector.Vector) {
	d := typedSlice[T](dst)
	r := c.findRun(lo)
	for i := lo; i < hi; {
		end := int(c.ends[r])
		if end > hi {
			end = hi
		}
		val := c.values[r]
		for ; i < end; i++ {
			d[i-lo] = val
		}
		r++
	}
}

func (c *rleColumn[T]) Gather(lo int, sel []int32, dst *vector.Vector) {
	if len(sel) == 0 {
		return
	}
	d := typedSlice[T](dst)
	// sel is ascending, so one forward walk over the runs serves every
	// position: a binary search for the first, then linear advances.
	r := c.findRun(lo + int(sel[0]))
	for _, p := range sel {
		row := lo + int(p)
		for int(c.ends[r]) <= row {
			r++
		}
		d[p] = c.values[r]
	}
}

// SelectConst evaluates the predicate once per run and emits whole runs of
// qualifying positions — O(runs + selected) instead of O(rows).
func (c *rleColumn[T]) SelectConst(lo, hi int, op string, rhs any, sel []int32, out []int32) (int, bool) {
	val, ok := constVal[T](rhs)
	if !ok {
		return 0, false
	}
	cmp := cmpFn[T](op)
	k := 0
	if sel != nil {
		if len(sel) == 0 {
			return 0, true
		}
		r := c.findRun(lo + int(sel[0]))
		lastR, lastOK := -1, false
		for _, p := range sel {
			row := lo + int(p)
			for int(c.ends[r]) <= row {
				r++
			}
			if r != lastR {
				lastR, lastOK = r, cmp(c.values[r], val)
			}
			if lastOK {
				out[k] = p
				k++
			}
		}
		return k, true
	}
	r := c.findRun(lo)
	for i := lo; i < hi; {
		end := int(c.ends[r])
		if end > hi {
			end = hi
		}
		if cmp(c.values[r], val) {
			for ; i < end; i++ {
				out[k] = int32(i - lo)
				k++
			}
		} else {
			i = end
		}
		r++
	}
	return k, true
}
