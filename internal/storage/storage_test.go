package storage

import (
	"math"
	"math/rand"
	"testing"

	"microadapt/internal/vector"
)

// mkI32 builds an I32 vector from values.
func mkI32(vals []int32) *vector.Vector { return vector.FromI32(vals) }

// randomVec generates one random vector whose shape is drawn from the
// generator: domain size controls dictionary viability, run bias controls
// RLE viability.
func randomVec(rng *rand.Rand, n, domain int, runBias float64) *vector.Vector {
	vals := make([]int32, n)
	cur := int32(rng.Intn(domain))
	for i := range vals {
		if rng.Float64() > runBias {
			cur = int32(rng.Intn(domain))
		}
		vals[i] = cur
	}
	return mkI32(vals)
}

// allEncodings returns v under every encoding it supports.
func allEncodings(t *testing.T, v *vector.Vector) map[Encoding]EncodedColumn {
	t.Helper()
	out := map[Encoding]EncodedColumn{}
	for _, e := range []Encoding{Flat, Dict, RLE, BitPack} {
		c, err := EncodeColumnAs(v, e)
		if err != nil {
			continue
		}
		out[e] = c
	}
	return out
}

// checkRoundTrip asserts enc reconstructs v bit-identically through both
// access paths: full-range decode, windowed decode and selective gather.
func checkRoundTrip(t *testing.T, enc EncodedColumn, v *vector.Vector, rng *rand.Rand) {
	t.Helper()
	n := v.Len()
	if enc.Len() != n {
		t.Fatalf("%s: Len %d, want %d", enc.Encoding(), enc.Len(), n)
	}
	decode := func(lo, hi int) *vector.Vector {
		dst := vector.New(v.Type(), hi-lo)
		dst.SetLen(hi - lo)
		enc.DecodeRange(lo, hi, dst)
		return dst
	}
	full := decode(0, n)
	for i := 0; i < n; i++ {
		if got, want := full.GetI64(i), v.GetI64(i); got != want {
			t.Fatalf("%s: DecodeRange[%d] = %d, want %d", enc.Encoding(), i, got, want)
		}
	}
	for w := 0; w < 4 && n > 0; w++ {
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo) + 1
		win := decode(lo, hi)
		for i := lo; i < hi; i++ {
			if got, want := win.GetI64(i-lo), v.GetI64(i); got != want {
				t.Fatalf("%s: DecodeRange[%d,%d)[%d] = %d, want %d", enc.Encoding(), lo, hi, i-lo, got, want)
			}
		}
		var sel []int32
		for p := rng.Intn(3); p < hi-lo; p += 1 + rng.Intn(3) {
			sel = append(sel, int32(p))
		}
		if len(sel) == 0 {
			continue
		}
		dst := vector.New(v.Type(), hi-lo)
		dst.SetLen(hi - lo)
		enc.Gather(lo, sel, dst)
		for _, p := range sel {
			if got, want := dst.GetI64(int(p)), v.GetI64(lo+int(p)); got != want {
				t.Fatalf("%s: Gather lo=%d pos=%d = %d, want %d", enc.Encoding(), lo, p, got, want)
			}
		}
	}
}

// TestRoundTripRandomized: encode→decode must be bit-identical for every
// encoding on randomized vectors across the viability spectrum.
func TestRoundTripRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(600)
		domain := 1 + rng.Intn(1<<uint(rng.Intn(16)))
		v := randomVec(rng, n, domain, rng.Float64())
		for _, enc := range allEncodings(t, v) {
			checkRoundTrip(t, enc, v, rng)
		}
	}
}

// TestRoundTripEdgeCases covers the boundary shapes every encoding must
// survive: empty, single value, all-equal (one max-length run, width-0
// packing), all-distinct (worst case for dict/RLE), and a two-value
// alternation (max run count at minimal domain).
func TestRoundTripEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cases := map[string][]int32{
		"empty":       {},
		"single":      {42},
		"all-equal":   make([]int32, 500),
		"alternating": make([]int32, 257),
		"negative":    {-5, -5, math.MinInt32, math.MaxInt32, 0},
	}
	for i := range cases["all-equal"] {
		cases["all-equal"][i] = 7
	}
	for i := range cases["alternating"] {
		cases["alternating"][i] = int32(i % 2)
	}
	distinct := make([]int32, 1000)
	for i := range distinct {
		distinct[i] = int32(i * 13)
	}
	cases["all-distinct"] = distinct
	for name, vals := range cases {
		v := mkI32(vals)
		encs := allEncodings(t, v)
		if len(encs) < 2 {
			t.Fatalf("%s: only %d encodings applied", name, len(encs))
		}
		for _, enc := range encs {
			checkRoundTrip(t, enc, v, rng)
		}
	}
}

// TestRoundTripAllTypes: every element type round-trips under every
// encoding that supports it.
func TestRoundTripAllTypes(t *testing.T) {
	n := 300
	i16s := make([]int16, n)
	i64s := make([]int64, n)
	f64s := make([]float64, n)
	strs := make([]string, n)
	words := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < n; i++ {
		i16s[i] = int16(i % 37)
		i64s[i] = int64(i/9) * 1000
		f64s[i] = float64(i%23) / 7
		strs[i] = words[i%len(words)]
	}
	vecs := []*vector.Vector{
		vector.FromI16(i16s), vector.FromI64(i64s), vector.FromF64(f64s), vector.FromStr(strs),
	}
	for _, v := range vecs {
		for _, enc := range allEncodings(t, v) {
			dst := vector.New(v.Type(), n)
			dst.SetLen(n)
			enc.DecodeRange(0, n, dst)
			for i := 0; i < n; i++ {
				same := false
				switch v.Type() {
				case vector.Str:
					same = dst.GetStr(i) == v.GetStr(i)
				case vector.F64:
					same = dst.GetF64(i) == v.GetF64(i)
				default:
					same = dst.GetI64(i) == v.GetI64(i)
				}
				if !same {
					t.Fatalf("%s/%s: round trip diverges at %d", v.Type(), enc.Encoding(), i)
				}
			}
		}
	}
}

// TestSelectConstMatchesNaive: the operate-on-compressed predicate path of
// every encoding that offers one must produce exactly the naive
// decode-and-compare selection, with and without an input selection.
func TestSelectConstMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	cmp := map[string]func(a, b int32) bool{
		"<":  func(a, b int32) bool { return a < b },
		"<=": func(a, b int32) bool { return a <= b },
		">":  func(a, b int32) bool { return a > b },
		">=": func(a, b int32) bool { return a >= b },
		"==": func(a, b int32) bool { return a == b },
		"!=": func(a, b int32) bool { return a != b },
	}
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(400)
		v := randomVec(rng, n, 1+rng.Intn(50), rng.Float64())
		vals := v.I32()[:n]
		lo := rng.Intn(n)
		hi := lo + 1 + rng.Intn(n-lo)
		var sel []int32
		if trial%2 == 0 {
			for p := 0; p < hi-lo; p += 1 + rng.Intn(4) {
				sel = append(sel, int32(p))
			}
		}
		rhs := int32(rng.Intn(60) - 5)
		for _, op := range ops {
			var want []int32
			if sel != nil {
				for _, p := range sel {
					if cmp[op](vals[lo+int(p)], rhs) {
						want = append(want, p)
					}
				}
			} else {
				for i := lo; i < hi; i++ {
					if cmp[op](vals[i], rhs) {
						want = append(want, int32(i-lo))
					}
				}
			}
			for _, enc := range allEncodings(t, v) {
				out := make([]int32, n)
				k, ok := enc.SelectConst(lo, hi, op, int64(rhs), sel, out)
				if !ok {
					continue // no compressed-form path; flavors decode instead
				}
				got := out[:k]
				if len(got) != len(want) {
					t.Fatalf("%s %s rhs=%d: %d selected, want %d", enc.Encoding(), op, rhs, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s %s: position %d = %d, want %d", enc.Encoding(), op, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestDictRejectsNaNAndFallsBack: NaN columns are not dictionary-encodable
// (the sorted order would break silently), a NaN constant must refuse the
// code-interval path, and RLE must round-trip NaN runs bit-exactly.
func TestDictRejectsNaNAndFallsBack(t *testing.T) {
	withNaN := vector.FromF64([]float64{1, math.NaN(), 2, 2, math.NaN()})
	if _, err := EncodeColumnAs(withNaN, Dict); err == nil {
		t.Error("dict-encoding a NaN column should fail")
	}
	rle, err := EncodeColumnAs(withNaN, RLE)
	if err != nil {
		t.Fatalf("RLE over NaN column: %v", err)
	}
	dst := vector.New(vector.F64, 5)
	dst.SetLen(5)
	rle.DecodeRange(0, 5, dst)
	for i, want := range []bool{false, true, false, false, true} {
		if math.IsNaN(dst.GetF64(i)) != want {
			t.Errorf("RLE NaN round trip diverges at %d", i)
		}
	}
	clean := vector.FromF64([]float64{1, 2, 2, 3, 1})
	dict, err := EncodeColumnAs(clean, Dict)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int32, 5)
	if _, ok := dict.SelectConst(0, 5, "<", math.NaN(), nil, out); ok {
		t.Error("dict SelectConst with NaN constant should report no compressed path")
	}
}

// TestSignedZeroRoundTrips: +0.0 and -0.0 compare equal under Go ==, so a
// value-keyed encoding could silently canonicalize one sign. Dict must
// refuse such columns; RLE must keep the signs bit-exact (runs group by
// bit equality, not value equality).
func TestSignedZeroRoundTrips(t *testing.T) {
	negZero := math.Copysign(0, -1)
	v := vector.FromF64([]float64{0, negZero, 0, negZero, negZero, 1})
	if _, err := EncodeColumnAs(v, Dict); err == nil {
		t.Error("dict-encoding a column with -0.0 should fail")
	}
	rle, err := EncodeColumnAs(v, RLE)
	if err != nil {
		t.Fatal(err)
	}
	if rle.Units() != 5 {
		t.Errorf("runs = %d, want 5 (+0 and -0 must not merge)", rle.Units())
	}
	dst := vector.New(vector.F64, 6)
	dst.SetLen(6)
	rle.DecodeRange(0, 6, dst)
	for i := 0; i < 6; i++ {
		if math.Float64bits(dst.GetF64(i)) != math.Float64bits(v.GetF64(i)) {
			t.Errorf("position %d: bits %x, want %x", i,
				math.Float64bits(dst.GetF64(i)), math.Float64bits(v.GetF64(i)))
		}
	}
	// The analyzer must still return *some* bit-faithful encoding.
	enc := EncodeColumn(v)
	dst2 := vector.New(vector.F64, 6)
	dst2.SetLen(6)
	enc.DecodeRange(0, 6, dst2)
	for i := 0; i < 6; i++ {
		if math.Float64bits(dst2.GetF64(i)) != math.Float64bits(v.GetF64(i)) {
			t.Errorf("analyzer pick %s: position %d not bit-exact", enc.Encoding(), i)
		}
	}
}

// TestAnalyzerPicksSmallest: EncodeColumn must return an encoding no larger
// than flat, and strictly smaller when an obvious structure exists.
func TestAnalyzerPicksSmallest(t *testing.T) {
	runs := make([]int32, 4000)
	for i := range runs {
		runs[i] = int32(i / 400)
	}
	if enc := EncodeColumn(mkI32(runs)); enc.Encoding() == Flat {
		t.Errorf("run-structured column stayed flat")
	}
	words := make([]string, 2000)
	for i := range words {
		words[i] = []string{"AIR", "RAIL", "SHIP"}[i%3]
	}
	if enc := EncodeColumn(vector.FromStr(words)); enc.Encoding() != Dict && enc.Encoding() != RLE {
		t.Errorf("low-cardinality strings got %s", enc.Encoding())
	}
	rng := rand.New(rand.NewSource(14))
	noise := make([]string, 500)
	for i := range noise {
		b := make([]byte, 12)
		rng.Read(b)
		noise[i] = string(b)
	}
	if enc := EncodeColumn(vector.FromStr(noise)); enc.Encoding() != Flat {
		t.Errorf("incompressible strings got %s", enc.Encoding())
	}
	for _, vals := range [][]int32{runs, {1, 2, 3}} {
		enc := EncodeColumn(mkI32(vals))
		flat := len(vals) * 4
		if enc.EncodedBytes() > flat {
			t.Errorf("%s resident %d bytes > flat %d", enc.Encoding(), enc.EncodedBytes(), flat)
		}
	}
}

// TestEncodedTableAccounting: table-level byte accounting and summaries.
func TestEncodedTableAccounting(t *testing.T) {
	n := 1000
	a := make([]int32, n)
	b := make([]string, n)
	for i := 0; i < n; i++ {
		a[i] = int32(i / 100)
		b[i] = []string{"x", "y"}[i%2]
	}
	tab := Encode("t", vector.Schema{{Name: "a", Type: vector.I32}, {Name: "b", Type: vector.Str}},
		[]*vector.Vector{mkI32(a), vector.FromStr(b)})
	if tab.Rows() != n {
		t.Fatalf("rows = %d, want %d", tab.Rows(), n)
	}
	if tab.ResidentBytes() >= tab.FlatBytes() {
		t.Errorf("resident %d >= flat %d", tab.ResidentBytes(), tab.FlatBytes())
	}
	if s := tab.Summary(); len(s) == 0 {
		t.Error("empty summary")
	}
	if tab.Col("a").Len() != n {
		t.Error("Col lookup broken")
	}
}
