package storage

import (
	"fmt"

	"microadapt/internal/vector"
)

// EncodeColumn analyzes one column and returns it in the smallest encoding
// that actually beats flat storage; incompressible columns come back flat.
// The decision is load-time and per column — exactly the "per-instance
// encoding" the adaptive decompression flavors then learn to scan.
func EncodeColumn(v *vector.Vector) EncodedColumn {
	best := NewFlatColumn(v)
	for _, e := range []Encoding{Dict, RLE, BitPack} {
		if c, err := EncodeColumnAs(v, e); err == nil && c.EncodedBytes() < best.EncodedBytes() {
			best = c
		}
	}
	return best
}

// EncodeColumnAs forces one encoding, erring when the column does not
// support it (too many distinct values for Dict, non-integer or full-range
// values for BitPack). Tests use it to pin encodings; production loading
// goes through EncodeColumn.
func EncodeColumnAs(v *vector.Vector, e Encoding) (EncodedColumn, error) {
	switch e {
	case Flat:
		return NewFlatColumn(v), nil
	case RLE:
		return encodeTyped(v, func(c *vector.Vector) (EncodedColumn, bool) {
			return rleOf(c), true
		})
	case Dict:
		return encodeTyped(v, dictOf)
	case BitPack:
		c, ok := newBitPackColumn(v)
		if !ok {
			return nil, fmt.Errorf("storage: column is not bit-packable (%s)", v.Type())
		}
		return c, nil
	default:
		return nil, fmt.Errorf("storage: unknown encoding %d", e)
	}
}

// encodeTyped dispatches a generic encoder over the vector's element type.
func encodeTyped(v *vector.Vector, enc func(*vector.Vector) (EncodedColumn, bool)) (EncodedColumn, error) {
	c, ok := enc(v)
	if !ok {
		return nil, fmt.Errorf("storage: column is not encodable this way (%s)", v.Type())
	}
	return c, nil
}

// rleOf instantiates the RLE encoder for the vector's element type.
func rleOf(v *vector.Vector) EncodedColumn {
	switch v.Type() {
	case vector.I16:
		return newRLEColumn[int16](v)
	case vector.I32:
		return newRLEColumn[int32](v)
	case vector.I64:
		return newRLEColumn[int64](v)
	case vector.F64:
		return newRLEColumn[float64](v)
	case vector.Str:
		return newRLEColumn[string](v)
	default:
		panic("storage: invalid vector type")
	}
}

// dictOf instantiates the dictionary encoder for the vector's element type.
func dictOf(v *vector.Vector) (EncodedColumn, bool) {
	switch v.Type() {
	case vector.I16:
		return newDictColumn[int16](v)
	case vector.I32:
		return newDictColumn[int32](v)
	case vector.I64:
		return newDictColumn[int64](v)
	case vector.F64:
		return newDictColumn[float64](v)
	case vector.Str:
		return newDictColumn[string](v)
	default:
		panic("storage: invalid vector type")
	}
}

// Encode analyzes every column of a relation and returns its compressed-
// resident form.
func Encode(name string, sch vector.Schema, cols []*vector.Vector) *EncodedTable {
	out := make([]EncodedColumn, len(cols))
	for i, v := range cols {
		out[i] = EncodeColumn(v)
	}
	return NewEncodedTable(name, sch, out)
}
