package storage

import "microadapt/internal/vector"

// flatColumn is the uncompressed passthrough: it references the original
// vector (zero copy) and exists so an EncodedTable can carry columns the
// analyzer found incompressible without a second storage form.
type flatColumn struct {
	v *vector.Vector
}

// NewFlatColumn wraps a vector without copying.
func NewFlatColumn(v *vector.Vector) EncodedColumn { return &flatColumn{v: v} }

// Unwrap returns the backing vector of a flat column, or nil for any real
// encoding. Scans use it to stream flat columns as zero-copy slices instead
// of paying a decode.
func Unwrap(c EncodedColumn) *vector.Vector {
	if fc, ok := c.(*flatColumn); ok {
		return fc.v
	}
	return nil
}

func (c *flatColumn) Encoding() Encoding { return Flat }
func (c *flatColumn) Type() vector.Type  { return c.v.Type() }
func (c *flatColumn) Len() int           { return c.v.Len() }
func (c *flatColumn) EncodedBytes() int  { return c.v.Len() * c.v.Type().Width() }
func (c *flatColumn) Units() int         { return c.v.Len() }

func (c *flatColumn) DecodeRange(lo, hi int, dst *vector.Vector) {
	switch c.v.Type() {
	case vector.I16:
		copy(dst.I16()[:hi-lo], c.v.I16()[lo:hi])
	case vector.I32:
		copy(dst.I32()[:hi-lo], c.v.I32()[lo:hi])
	case vector.I64:
		copy(dst.I64()[:hi-lo], c.v.I64()[lo:hi])
	case vector.F64:
		copy(dst.F64()[:hi-lo], c.v.F64()[lo:hi])
	case vector.Str:
		copy(dst.Str()[:hi-lo], c.v.Str()[lo:hi])
	}
}

func (c *flatColumn) Gather(lo int, sel []int32, dst *vector.Vector) {
	switch c.v.Type() {
	case vector.I16:
		src, d := c.v.I16(), dst.I16()
		for _, p := range sel {
			d[p] = src[lo+int(p)]
		}
	case vector.I32:
		src, d := c.v.I32(), dst.I32()
		for _, p := range sel {
			d[p] = src[lo+int(p)]
		}
	case vector.I64:
		src, d := c.v.I64(), dst.I64()
		for _, p := range sel {
			d[p] = src[lo+int(p)]
		}
	case vector.F64:
		src, d := c.v.F64(), dst.F64()
		for _, p := range sel {
			d[p] = src[lo+int(p)]
		}
	case vector.Str:
		src, d := c.v.Str(), dst.Str()
		for _, p := range sel {
			d[p] = src[lo+int(p)]
		}
	}
}

// SelectConst reports false: flat columns have no compressed form to
// operate on; callers decode (trivially) and compare.
func (c *flatColumn) SelectConst(lo, hi int, op string, rhs any, sel []int32, out []int32) (int, bool) {
	return 0, false
}
