package storage

import (
	"sort"

	"microadapt/internal/vector"
)

// dictMaxDistinct bounds the dictionary: codes are uint16, and one code
// value is kept free so every search bound (0..len) also fits in uint16.
const dictMaxDistinct = 1<<16 - 1

// dictColumn is sorted-dictionary encoding: values holds the distinct
// column values in ascending order, codes one index per row. Keeping the
// dictionary sorted is what lets range predicates run on the codes alone —
// "value < rhs" becomes "code < lowerBound(rhs)", one narrow integer
// compare per row with no value materialization.
type dictColumn[T elem] struct {
	typ    vector.Type
	values []T
	codes  []uint16
}

// newDictColumn encodes v, or reports false when the column is not
// dictionary-encodable: too many distinct values, float NaNs (they break
// both the sorted order and map-based code assignment), or a negative
// zero (it compares equal to +0.0, so the value-keyed dictionary would
// canonicalize the sign and break the bit-identical round trip).
func newDictColumn[T elem](v *vector.Vector) (EncodedColumn, bool) {
	src := typedSlice[T](v)[:v.Len()]
	distinct := make(map[T]struct{}, 256)
	for _, x := range src {
		if isNaNVal(x) || isNegZeroVal(x) {
			return nil, false
		}
		distinct[x] = struct{}{}
		if len(distinct) > dictMaxDistinct {
			return nil, false
		}
	}
	values := make([]T, 0, len(distinct))
	for x := range distinct {
		values = append(values, x)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	code := make(map[T]uint16, len(values))
	for i, x := range values {
		code[x] = uint16(i)
	}
	codes := make([]uint16, len(src))
	for i, x := range src {
		codes[i] = code[x]
	}
	return &dictColumn[T]{typ: vecTypeOf[T](), values: values, codes: codes}, true
}

func (c *dictColumn[T]) Encoding() Encoding { return Dict }
func (c *dictColumn[T]) Type() vector.Type  { return c.typ }
func (c *dictColumn[T]) Len() int           { return len(c.codes) }
func (c *dictColumn[T]) Units() int         { return len(c.values) }

func (c *dictColumn[T]) EncodedBytes() int {
	return len(c.values)*c.typ.Width() + 2*len(c.codes)
}

func (c *dictColumn[T]) DecodeRange(lo, hi int, dst *vector.Vector) {
	d := typedSlice[T](dst)
	for i := lo; i < hi; i++ {
		d[i-lo] = c.values[c.codes[i]]
	}
}

func (c *dictColumn[T]) Gather(lo int, sel []int32, dst *vector.Vector) {
	d := typedSlice[T](dst)
	for _, p := range sel {
		d[p] = c.values[c.codes[lo+int(p)]]
	}
}

// SelectConst evaluates the predicate on codes: the sorted dictionary maps
// the constant to a code interval once (two binary searches), then each row
// costs one uint16 compare.
func (c *dictColumn[T]) SelectConst(lo, hi int, op string, rhs any, sel []int32, out []int32) (int, bool) {
	val, ok := constVal[T](rhs)
	if !ok || isNaNVal(val) {
		// A NaN constant compares false under every operator except != on
		// real values; code arithmetic cannot express that — fall back.
		return 0, false
	}
	lb := sort.Search(len(c.values), func(i int) bool { return c.values[i] >= val })
	ub := sort.Search(len(c.values), func(i int) bool { return c.values[i] > val })
	exact := lb < ub // values[lb] == val
	// Express the predicate as a code interval [cLo, cHi) plus optional
	// negated point for "!=".
	var test func(code uint16) bool
	switch op {
	case "<":
		b := uint16(lb)
		test = func(code uint16) bool { return code < b }
	case "<=":
		b := uint16(ub)
		test = func(code uint16) bool { return code < b }
	case ">":
		b := uint16(ub)
		test = func(code uint16) bool { return code >= b }
	case ">=":
		b := uint16(lb)
		test = func(code uint16) bool { return code >= b }
	case "==":
		if !exact {
			test = func(uint16) bool { return false }
		} else {
			b := uint16(lb)
			test = func(code uint16) bool { return code == b }
		}
	case "!=":
		if !exact {
			test = func(uint16) bool { return true }
		} else {
			b := uint16(lb)
			test = func(code uint16) bool { return code != b }
		}
	default:
		return 0, false
	}
	k := 0
	if sel != nil {
		for _, p := range sel {
			if test(c.codes[lo+int(p)]) {
				out[k] = p
				k++
			}
		}
		return k, true
	}
	for i := lo; i < hi; i++ {
		if test(c.codes[i]) {
			out[k] = int32(i - lo)
			k++
		}
	}
	return k, true
}
