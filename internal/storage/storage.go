// Package storage implements compressed columnar storage: per-column
// encodings (dictionary, run-length, bit-packed integers, plus a flat
// passthrough) behind one EncodedColumn interface, an analyzer that picks
// the smallest encoding per column at load time, and EncodedTable, the
// compressed-resident form of a relation.
//
// The package deliberately knows nothing about operators or primitives: it
// exposes exactly the three access paths the decompression flavor family in
// internal/primitive competes over — eager range decode, lazy per-selection
// gather, and operate-on-compressed predicate evaluation — and the engine's
// encoded scan wires them to adaptive primitive instances. Which path wins
// is data-dependent (run lengths, dictionary size, selectivity), which is
// what makes decompression a Micro Adaptivity scenario rather than a fixed
// choice.
package storage

import (
	"fmt"
	"math"

	"microadapt/internal/vector"
)

// Encoding enumerates the column encodings.
type Encoding uint8

const (
	// Flat is the uncompressed passthrough (the seed engine's only form).
	Flat Encoding = iota
	// Dict is dictionary encoding: a sorted array of distinct values plus
	// one small code per row. Sorted dictionaries let range predicates run
	// on codes alone.
	Dict
	// RLE is run-length encoding: run values plus exclusive end offsets.
	// Predicates evaluate once per run instead of once per row.
	RLE
	// BitPack is frame-of-reference bit packing for integer columns:
	// value-minus-min stored in ceil(log2(range)) bits.
	BitPack
)

// String returns the encoding's short name.
func (e Encoding) String() string {
	switch e {
	case Flat:
		return "flat"
	case Dict:
		return "dict"
	case RLE:
		return "rle"
	case BitPack:
		return "bitpack"
	default:
		return "invalid"
	}
}

// EncodedColumn is one column resident in encoded form. Positions handed to
// the access methods are batch-relative: lo is the table row offset of
// batch position 0, and selection vectors / outputs index positions within
// the batch, matching the convention of core.Call.
type EncodedColumn interface {
	// Encoding identifies the storage scheme.
	Encoding() Encoding
	// Type is the decoded element type.
	Type() vector.Type
	// Len is the row count.
	Len() int
	// EncodedBytes is the resident size of the encoded form.
	EncodedBytes() int
	// Units is the number of structural units a whole-column decode
	// touches: distinct values for Dict, runs for RLE, packed words for
	// BitPack, rows for Flat. Cost models read it.
	Units() int
	// DecodeRange writes rows [lo, hi) into dst[0 : hi-lo] (eager decode).
	DecodeRange(lo, hi int, dst *vector.Vector)
	// Gather writes row lo+p into dst[p] for every batch position p of sel
	// (lazy decode); other dst positions are left untouched. sel is
	// ascending, as all engine selection vectors are.
	Gather(lo int, sel []int32, dst *vector.Vector)
	// SelectConst evaluates "value <op> rhs" over batch rows [lo, hi)
	// restricted to sel (nil = all), appending qualifying batch positions
	// to out and returning their count. The boolean reports whether the
	// encoding evaluated the predicate on the compressed form; false means
	// the caller must decode and compare itself. rhs is int64 for integer
	// columns, float64 for dbl, string for str.
	SelectConst(lo, hi int, op string, rhs any, sel []int32, out []int32) (int, bool)
}

// elem covers every decodable element type.
type elem interface {
	~int16 | ~int32 | ~int64 | ~float64 | ~string
}

// typedSlice extracts the typed backing slice of a vector.
func typedSlice[T elem](v *vector.Vector) []T {
	switch any(*new(T)).(type) {
	case int16:
		return any(v.I16()).([]T)
	case int32:
		return any(v.I32()).([]T)
	case int64:
		return any(v.I64()).([]T)
	case float64:
		return any(v.F64()).([]T)
	case string:
		return any(v.Str()).([]T)
	default:
		panic("storage: unsupported element type")
	}
}

// vecTypeOf maps a Go element type to its vector.Type.
func vecTypeOf[T elem]() vector.Type {
	switch any(*new(T)).(type) {
	case int16:
		return vector.I16
	case int32:
		return vector.I32
	case int64:
		return vector.I64
	case float64:
		return vector.F64
	case string:
		return vector.Str
	default:
		panic("storage: unsupported element type")
	}
}

// cmpFn builds the comparison for one operator spelling.
func cmpFn[T elem](op string) func(a, b T) bool {
	switch op {
	case "<":
		return func(a, b T) bool { return a < b }
	case "<=":
		return func(a, b T) bool { return a <= b }
	case ">":
		return func(a, b T) bool { return a > b }
	case ">=":
		return func(a, b T) bool { return a >= b }
	case "==":
		return func(a, b T) bool { return a == b }
	case "!=":
		return func(a, b T) bool { return a != b }
	default:
		panic("storage: unknown comparison " + op)
	}
}

// constVal narrows the boxed rhs constant to the column's element type.
// Integer constants arrive widened to int64; the narrowing is lossless
// because predicate constants are built from the column's own type.
func constVal[T elem](rhs any) (T, bool) {
	var zero T
	switch any(zero).(type) {
	case int16:
		v, ok := rhs.(int64)
		return any(int16(v)).(T), ok
	case int32:
		v, ok := rhs.(int64)
		return any(int32(v)).(T), ok
	case int64:
		v, ok := rhs.(int64)
		return any(v).(T), ok
	case float64:
		v, ok := rhs.(float64)
		return any(v).(T), ok
	case string:
		v, ok := rhs.(string)
		return any(v).(T), ok
	default:
		return zero, false
	}
}

// isNaNVal reports whether a float64-typed element is NaN; every other
// element type reports false.
func isNaNVal[T elem](v T) bool {
	f, ok := any(v).(float64)
	return ok && math.IsNaN(f)
}

// isNegZeroVal reports whether a float64-typed element is -0.0. Negative
// zero compares equal to +0.0 under Go ==, so value-keyed encodings would
// silently canonicalize one sign — a bit-identity violation.
func isNegZeroVal[T elem](v T) bool {
	f, ok := any(v).(float64)
	return ok && f == 0 && math.Signbit(f)
}

// sameBits reports whether two elements are interchangeable in storage:
// bit equality for floats (distinguishes +0.0 from -0.0, groups identical
// NaNs), value equality for everything else.
func sameBits[T elem](a, b T) bool {
	if fa, ok := any(a).(float64); ok {
		return math.Float64bits(fa) == math.Float64bits(any(b).(float64))
	}
	return a == b
}

// EncodedTable is a relation resident in compressed columnar form: the
// engine keeps one next to (or instead of) the flat column vectors and
// scans it through adaptive decompression primitives.
type EncodedTable struct {
	Name string
	Sch  vector.Schema
	Cols []EncodedColumn
	rows int
}

// NewEncodedTable wraps already-encoded columns; all must share one length.
func NewEncodedTable(name string, sch vector.Schema, cols []EncodedColumn) *EncodedTable {
	if len(sch) != len(cols) {
		panic("storage.NewEncodedTable: schema/column count mismatch")
	}
	rows := 0
	if len(cols) > 0 {
		rows = cols[0].Len()
		for _, c := range cols[1:] {
			if c.Len() != rows {
				panic("storage.NewEncodedTable: column length mismatch in " + name)
			}
		}
	}
	return &EncodedTable{Name: name, Sch: sch, Cols: cols, rows: rows}
}

// Rows returns the row count.
func (t *EncodedTable) Rows() int { return t.rows }

// Col returns the named encoded column.
func (t *EncodedTable) Col(name string) EncodedColumn { return t.Cols[t.Sch.MustIndexOf(name)] }

// ResidentBytes sums the encoded sizes of all columns.
func (t *EncodedTable) ResidentBytes() int {
	total := 0
	for _, c := range t.Cols {
		total += c.EncodedBytes()
	}
	return total
}

// FlatBytes is what the same data occupies uncompressed.
func (t *EncodedTable) FlatBytes() int {
	total := 0
	for i, c := range t.Sch {
		total += t.Cols[i].Len() * c.Type.Width()
	}
	return total
}

// Summary renders one line per column: name, encoding, encoded vs flat
// bytes — the load-time report of the analyzer's choices.
func (t *EncodedTable) Summary() string {
	out := fmt.Sprintf("%s: %d rows, %d -> %d bytes\n", t.Name, t.rows, t.FlatBytes(), t.ResidentBytes())
	for i, c := range t.Sch {
		enc := t.Cols[i]
		out += fmt.Sprintf("  %-20s %-8s %8d -> %8d bytes (units=%d)\n",
			c.Name, enc.Encoding(), enc.Len()*c.Type.Width(), enc.EncodedBytes(), enc.Units())
	}
	return out
}
