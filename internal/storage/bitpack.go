package storage

import (
	"math/bits"

	"microadapt/internal/vector"
)

// bitPackColumn is frame-of-reference bit packing for integer columns:
// each value is stored as (value - base) in width bits, packed contiguously
// into 64-bit words. A TPC-H quantity column (1..50) packs into 6 bits per
// row instead of 32.
type bitPackColumn struct {
	typ   vector.Type
	n     int
	base  int64
	width uint // bits per value; 0 means every value equals base
	words []uint64
}

// newBitPackColumn encodes an integer vector, or reports false when the
// value range needs (almost) as many bits as the flat type — packing then
// saves nothing.
func newBitPackColumn(v *vector.Vector) (EncodedColumn, bool) {
	t := v.Type()
	var flatBits uint
	switch t {
	case vector.I16:
		flatBits = 16
	case vector.I32:
		flatBits = 32
	case vector.I64:
		flatBits = 64
	default:
		return nil, false
	}
	n := v.Len()
	c := &bitPackColumn{typ: t, n: n}
	if n == 0 {
		return c, true
	}
	min, max := v.GetI64(0), v.GetI64(0)
	for i := 1; i < n; i++ {
		x := v.GetI64(i)
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	if max-min < 0 {
		return nil, false // range exceeds int64: cannot frame-of-reference
	}
	width := uint(bits.Len64(uint64(max - min)))
	if width >= flatBits {
		return nil, false
	}
	c.base = min
	c.width = width
	if width > 0 {
		c.words = make([]uint64, (n*int(width)+63)/64)
		for i := 0; i < n; i++ {
			c.put(i, uint64(v.GetI64(i)-min))
		}
	}
	return c, true
}

func (c *bitPackColumn) put(i int, val uint64) {
	bitPos := i * int(c.width)
	w, off := bitPos/64, uint(bitPos%64)
	c.words[w] |= val << off
	if off+c.width > 64 {
		c.words[w+1] |= val >> (64 - off)
	}
}

func (c *bitPackColumn) get(i int) int64 {
	if c.width == 0 {
		return c.base
	}
	bitPos := i * int(c.width)
	w, off := bitPos/64, uint(bitPos%64)
	val := c.words[w] >> off
	if off+c.width > 64 {
		val |= c.words[w+1] << (64 - off)
	}
	val &= 1<<c.width - 1
	return c.base + int64(val)
}

func (c *bitPackColumn) Encoding() Encoding { return BitPack }
func (c *bitPackColumn) Type() vector.Type  { return c.typ }
func (c *bitPackColumn) Len() int           { return c.n }
func (c *bitPackColumn) EncodedBytes() int  { return 8*len(c.words) + 16 }
func (c *bitPackColumn) Units() int         { return len(c.words) }

func (c *bitPackColumn) DecodeRange(lo, hi int, dst *vector.Vector) {
	switch c.typ {
	case vector.I16:
		d := dst.I16()
		for i := lo; i < hi; i++ {
			d[i-lo] = int16(c.get(i))
		}
	case vector.I32:
		d := dst.I32()
		for i := lo; i < hi; i++ {
			d[i-lo] = int32(c.get(i))
		}
	case vector.I64:
		d := dst.I64()
		for i := lo; i < hi; i++ {
			d[i-lo] = c.get(i)
		}
	}
}

func (c *bitPackColumn) Gather(lo int, sel []int32, dst *vector.Vector) {
	switch c.typ {
	case vector.I16:
		d := dst.I16()
		for _, p := range sel {
			d[p] = int16(c.get(lo + int(p)))
		}
	case vector.I32:
		d := dst.I32()
		for _, p := range sel {
			d[p] = int32(c.get(lo + int(p)))
		}
	case vector.I64:
		d := dst.I64()
		for _, p := range sel {
			d[p] = c.get(lo + int(p))
		}
	}
}

// SelectConst reports false: a packed value must be unpacked to compare, so
// there is no compressed-form shortcut; callers decode and compare.
func (c *bitPackColumn) SelectConst(lo, hi int, op string, rhs any, sel []int32, out []int32) (int, bool) {
	return 0, false
}
