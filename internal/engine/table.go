package engine

import (
	"fmt"
	"strconv"
	"strings"

	"microadapt/internal/core"
	"microadapt/internal/storage"
	"microadapt/internal/vector"
)

// Table is an in-memory column store relation: full-length column vectors
// plus a schema. It is both the scan source and the materialization target.
// A table may additionally be resident in compressed columnar form (Enc),
// in which case plans scan it through adaptive decompression primitives
// instead of the zero-copy flat scan.
type Table struct {
	Name   string
	Sch    vector.Schema
	Cols   []*vector.Vector
	RowCnt int

	// Enc is the compressed-resident form of the table, nil for flat-only
	// tables. Set it through EncodeTable.
	Enc *storage.EncodedTable
}

// Encoded reports whether the table is resident in compressed form.
func (t *Table) Encoded() bool { return t.Enc != nil }

// NewTable builds a table; all columns must have equal lengths.
func NewTable(name string, sch vector.Schema, cols []*vector.Vector) *Table {
	if len(sch) != len(cols) {
		panic("engine.NewTable: schema/column count mismatch")
	}
	rows := 0
	if len(cols) > 0 {
		rows = cols[0].Len()
		for _, c := range cols[1:] {
			if c.Len() != rows {
				panic("engine.NewTable: column length mismatch in " + name)
			}
		}
	}
	return &Table{Name: name, Sch: sch, Cols: cols, RowCnt: rows}
}

// Rows returns the number of tuples.
func (t *Table) Rows() int { return t.RowCnt }

// Slice returns a zero-copy view of rows [lo, hi), clamped to the table.
// The view is flat (no compressed-resident form) regardless of t's.
func (t *Table) Slice(lo, hi int) *Table {
	if lo < 0 {
		lo = 0
	}
	if hi > t.RowCnt {
		hi = t.RowCnt
	}
	if hi < lo {
		hi = lo
	}
	cols := make([]*vector.Vector, len(t.Cols))
	for i, c := range t.Cols {
		cols[i] = c.Slice(lo, hi)
	}
	return NewTable(t.Name, t.Sch, cols)
}

// Col returns the named column vector.
func (t *Table) Col(name string) *vector.Vector { return t.Cols[t.Sch.MustIndexOf(name)] }

// Project returns a table view with only the named columns (zero copy).
func (t *Table) Project(names ...string) *Table {
	sch := make(vector.Schema, len(names))
	cols := make([]*vector.Vector, len(names))
	for i, n := range names {
		idx := t.Sch.MustIndexOf(n)
		sch[i] = t.Sch[idx]
		cols[i] = t.Cols[idx]
	}
	return NewTable(t.Name, sch, cols)
}

// Rename returns a view of the table with columns renamed per the map
// (zero copy); names absent from the map are kept.
func Rename(t *Table, names map[string]string) *Table {
	sch := make(vector.Schema, len(t.Sch))
	copy(sch, t.Sch)
	for i := range sch {
		if nn, ok := names[sch[i].Name]; ok {
			sch[i].Name = nn
		}
	}
	return NewTable(t.Name, sch, t.Cols)
}

// Scan streams a table — or a contiguous row range of it — in vector-size
// batches (zero-copy column slices).
type Scan struct {
	sess   *core.Session
	table  *Table
	cols   []int // column indexes to produce; nil = all
	sch    vector.Schema
	lo, hi int // row range [lo, hi)
	pos    int
}

// NewScan builds a scan of the named columns (all columns when empty).
func NewScan(sess *core.Session, t *Table, cols ...string) *Scan {
	return NewRangeScan(sess, t, 0, t.Rows(), cols...)
}

// NewRangeScan builds a scan restricted to rows [lo, hi) — the morsel of
// one pipeline partition. Bounds are clamped to the table.
func NewRangeScan(sess *core.Session, t *Table, lo, hi int, cols ...string) *Scan {
	if lo < 0 {
		lo = 0
	}
	if hi > t.Rows() {
		hi = t.Rows()
	}
	if hi < lo {
		hi = lo
	}
	s := &Scan{sess: sess, table: t, lo: lo, hi: hi, pos: lo}
	if len(cols) == 0 {
		s.sch = t.Sch
		for i := range t.Sch {
			s.cols = append(s.cols, i)
		}
		return s
	}
	for _, name := range cols {
		idx := t.Sch.MustIndexOf(name)
		s.cols = append(s.cols, idx)
		s.sch = append(s.sch, t.Sch[idx])
	}
	return s
}

// Schema implements Operator.
func (s *Scan) Schema() vector.Schema { return s.sch }

// Open implements Operator.
func (s *Scan) Open() error {
	s.pos = s.lo
	return nil
}

// Next implements Operator.
func (s *Scan) Next() (*vector.Batch, error) {
	if s.pos >= s.hi {
		return nil, nil
	}
	lo := s.pos
	hi := lo + s.sess.VectorSize
	if hi > s.hi {
		hi = s.hi
	}
	s.pos = hi
	cols := make([]*vector.Vector, len(s.cols))
	for i, ci := range s.cols {
		cols[i] = s.table.Cols[ci].Slice(lo, hi)
	}
	chargeOp(s.sess, perBatchOverhead)
	return &vector.Batch{N: hi - lo, Cols: cols}, nil
}

// Close implements Operator.
func (s *Scan) Close() {}

// Materialize drains an operator into a Table (selection applied). It
// streams: every batch's live tuples are gathered straight into growable
// column accumulators — no per-batch vector allocation and no retained
// compacted copies, unlike the old Run-then-copy implementation. (Drain
// loops that need whole compacted batches rather than columns reuse a
// destination via vector.Batch.CompactInto instead.)
func Materialize(op Operator) (*Table, error) {
	sch := op.Schema()
	acc := make([]colAcc, len(sch))
	for i, c := range sch {
		acc[i].t = c.Type
	}
	err := Drain(op, func(b *vector.Batch) error {
		for ci := range sch {
			acc[ci].appendLive(b.Cols[ci], b.Sel, b.N)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	cols := make([]*vector.Vector, len(sch))
	for i := range acc {
		cols[i] = acc[i].vector()
	}
	return NewTable("materialized", sch, cols), nil
}

// colAcc accumulates one output column of a streaming materialization.
type colAcc struct {
	t   vector.Type
	i16 []int16
	i32 []int32
	i64 []int64
	f64 []float64
	str []string
}

// appendLive gathers the live tuples of one source vector (per sel; all n
// when sel is nil) onto the accumulator: capacity grows once per batch and
// the gather runs as indexed stores, so the whole drain does one amortized
// copy of the live data.
func (a *colAcc) appendLive(v *vector.Vector, sel []int32, n int) {
	switch a.t {
	case vector.I16:
		a.i16 = gatherLive(a.i16, v.I16(), sel, n)
	case vector.I32:
		a.i32 = gatherLive(a.i32, v.I32(), sel, n)
	case vector.I64:
		a.i64 = gatherLive(a.i64, v.I64(), sel, n)
	case vector.F64:
		a.f64 = gatherLive(a.f64, v.F64(), sel, n)
	case vector.Str:
		a.str = gatherLive(a.str, v.Str(), sel, n)
	}
}

// gatherLive appends the selected positions of src (all n when sel is nil)
// to dst, growing dst's capacity geometrically.
func gatherLive[T any](dst []T, src []T, sel []int32, n int) []T {
	if sel == nil {
		return append(dst, src[:n]...)
	}
	off := len(dst)
	need := off + len(sel)
	if need > cap(dst) {
		grown := make([]T, need, growCap(cap(dst), need))
		copy(grown, dst)
		dst = grown
	} else {
		dst = dst[:need]
	}
	out := dst[off:]
	for j, i := range sel {
		out[j] = src[i]
	}
	return dst
}

// growCap doubles capacity until it covers need.
func growCap(c, need int) int {
	if c < 64 {
		c = 64
	}
	for c < need {
		c *= 2
	}
	return c
}

func (a *colAcc) vector() *vector.Vector {
	switch a.t {
	case vector.I16:
		if a.i16 == nil {
			a.i16 = []int16{}
		}
		return vector.FromI16(a.i16)
	case vector.I32:
		if a.i32 == nil {
			a.i32 = []int32{}
		}
		return vector.FromI32(a.i32)
	case vector.I64:
		if a.i64 == nil {
			a.i64 = []int64{}
		}
		return vector.FromI64(a.i64)
	case vector.F64:
		if a.f64 == nil {
			a.f64 = []float64{}
		}
		return vector.FromF64(a.f64)
	default:
		if a.str == nil {
			a.str = []string{}
		}
		return vector.FromStr(a.str)
	}
}

// TableString renders up to maxRows rows of a table (maxRows <= 0 renders
// all of them) for debugging, the example programs, and the result
// fingerprints of the equivalence tests and the concurrent service. It uses
// a strings.Builder throughout: naive string concatenation is quadratic in
// the rendered size, which turned whole-table fingerprints of generated
// lineitem tables into a multi-minute operation.
func TableString(t *Table, maxRows int) string {
	var out strings.Builder
	for i := range t.Sch {
		if i > 0 {
			out.WriteByte('\t')
		}
		out.WriteString(t.Sch[i].Name)
	}
	out.WriteByte('\n')
	n := t.Rows()
	if maxRows > 0 && n > maxRows {
		n = maxRows
	}
	for r := 0; r < n; r++ {
		for i, c := range t.Cols {
			if i > 0 {
				out.WriteByte('\t')
			}
			switch c.Type() {
			case vector.I16, vector.I32, vector.I64:
				out.WriteString(strconv.FormatInt(c.GetI64(r), 10))
			case vector.F64:
				out.WriteString(strconv.FormatFloat(c.GetF64(r), 'f', 4, 64))
			case vector.Str:
				out.WriteString(c.GetStr(r))
			}
		}
		out.WriteByte('\n')
	}
	if t.Rows() > n {
		fmt.Fprintf(&out, "... (%d rows total)\n", t.Rows())
	}
	return out.String()
}
