package engine

import (
	"microadapt/internal/core"
	"microadapt/internal/primitive"
	"microadapt/internal/storage"
	"microadapt/internal/vector"
)

// EncodeTable analyzes t's columns and attaches the compressed-resident
// form the encoded scan operates from; already-encoded tables are returned
// as-is (encoding is idempotent). The flat vectors stay as the load copy —
// joins, delivery steps and golden comparisons still read them — while
// every plan scan of the table goes through the encoded form and its
// adaptive decompression flavors.
func EncodeTable(t *Table) *storage.EncodedTable {
	if t.Enc == nil {
		t.Enc = storage.Encode(t.Name, t.Sch, t.Cols)
	}
	return t.Enc
}

// PushdownSplit splits a Select's conjuncts into the maximal prefix an
// encoded scan of t's named columns (all when empty) can evaluate itself —
// column-vs-constant comparisons over non-flat encodings — and the rest,
// which stay in the Select above the scan. Conjunct order is preserved, so
// pushing the prefix changes where the selection vector is produced but
// never what it contains.
func PushdownSplit(t *Table, cols []string, preds []Pred) (push, rest []Pred) {
	if t.Enc == nil {
		return nil, preds
	}
	colIdx := scanColumnIndexes(t, cols)
	for i, p := range preds {
		if !pushablePred(t, colIdx, p) {
			return preds[:i], preds[i:]
		}
	}
	return preds, nil
}

// pushablePred reports whether one conjunct can run inside the encoded scan.
func pushablePred(t *Table, colIdx []int, p Pred) bool {
	switch p.Op {
	case "<", "<=", ">", ">=", "==", "!=":
	default:
		return false
	}
	if p.RHSCol >= 0 || p.Col < 0 || p.Col >= len(colIdx) {
		return false
	}
	// Flat columns gain nothing from the decompression family; their
	// predicates keep the ordinary selection primitives (and their wider
	// branching/compiler flavor axes).
	return t.Enc.Cols[colIdx[p.Col]].Encoding() != storage.Flat
}

// scanColumnIndexes resolves scan output positions to table column indexes.
func scanColumnIndexes(t *Table, cols []string) []int {
	if len(cols) == 0 {
		out := make([]int, len(t.Sch))
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, len(cols))
	for i, name := range cols {
		out[i] = t.Sch.MustIndexOf(name)
	}
	return out
}

// EncodedScan streams a compressed-resident table — or a contiguous row
// range of it — in vector-size batches, doing all decompression through
// adaptive primitive instances: one scan_decompress instance per non-flat
// output column (eager vs lazy flavors) and, when predicates are pushed
// down, one selenc instance per conjunct (decode vs operate-on-compressed
// flavors). Flat columns stream as zero-copy slices exactly like Scan.
type EncodedScan struct {
	sess   *core.Session
	table  *Table
	label  string // plan label prefixing decompress-instance names
	cols   []int
	sch    vector.Schema
	lo, hi int
	pos    int

	pushLabel string
	preds     []Pred

	decInsts []*core.Instance // per output column; nil for flat columns
	selInsts []*core.Instance // per pushed-down conjunct
	rhs      []*vector.Vector // constant vectors per conjunct
	encPred  []storage.EncodedColumn
	scratch  []*vector.Vector // per-conjunct decode scratch
	selA     []int32
	selB     []int32
}

// NewEncodedScan builds an encoded scan of the named columns (all when
// empty). label is the plan-position prefix of the scan's primitive
// instances; the table must be resident in compressed form (EncodeTable).
func NewEncodedScan(sess *core.Session, t *Table, label string, cols ...string) *EncodedScan {
	return NewEncodedRangeScan(sess, t, label, 0, t.Rows(), cols...)
}

// NewEncodedRangeScan builds an encoded scan restricted to rows [lo, hi) —
// the morsel of one pipeline partition. Bounds are clamped to the table.
func NewEncodedRangeScan(sess *core.Session, t *Table, label string, lo, hi int, cols ...string) *EncodedScan {
	if t.Enc == nil {
		panic("engine.NewEncodedRangeScan: table " + t.Name + " has no encoded form (EncodeTable)")
	}
	if lo < 0 {
		lo = 0
	}
	if hi > t.Rows() {
		hi = t.Rows()
	}
	if hi < lo {
		hi = lo
	}
	s := &EncodedScan{sess: sess, table: t, label: label, lo: lo, hi: hi, pos: lo}
	s.cols = scanColumnIndexes(t, cols)
	for _, ci := range s.cols {
		s.sch = append(s.sch, t.Sch[ci])
	}
	return s
}

// Pushdown attaches predicates the scan evaluates itself, in conjunct
// order, before decoding the output columns — which is what gives the lazy
// decompression flavor a selection vector to exploit. label prefixes the
// selenc instance names; pass the originating Select node's label so the
// instances keep that plan position. Predicates must satisfy PushdownSplit.
func (s *EncodedScan) Pushdown(label string, preds ...Pred) *EncodedScan {
	s.pushLabel = label
	s.preds = preds
	return s
}

// Schema implements Operator.
func (s *EncodedScan) Schema() vector.Schema { return s.sch }

// Open implements Operator.
func (s *EncodedScan) Open() error {
	s.pos = s.lo
	s.selA = make([]int32, s.sess.VectorSize)
	s.selB = make([]int32, s.sess.VectorSize)
	s.selInsts = make([]*core.Instance, len(s.preds))
	s.rhs = make([]*vector.Vector, len(s.preds))
	s.encPred = make([]storage.EncodedColumn, len(s.preds))
	s.scratch = make([]*vector.Vector, len(s.preds))
	for i, p := range s.preds {
		t := s.sch[p.Col].Type
		s.encPred[i] = s.table.Enc.Cols[s.cols[p.Col]]
		switch t {
		case vector.I16:
			s.rhs[i] = vector.ConstI16(int16(p.I64))
		case vector.I32:
			s.rhs[i] = vector.ConstI32(int32(p.I64))
		case vector.I64:
			s.rhs[i] = vector.ConstI64(p.I64)
		case vector.F64:
			s.rhs[i] = vector.ConstF64(p.F64)
		case vector.Str:
			s.rhs[i] = vector.ConstStr(p.Str)
		}
		s.scratch[i] = vector.New(t, s.sess.VectorSize)
		sig := primitive.EncSelSig(p.Op, t)
		s.selInsts[i] = s.sess.Instance(sig, labelf("%s/%s#%d", s.pushLabel, sig, i))
	}
	s.decInsts = make([]*core.Instance, len(s.cols))
	for j, ci := range s.cols {
		enc := s.table.Enc.Cols[ci]
		if storage.Unwrap(enc) != nil {
			continue // flat columns stream zero-copy, no decode instance
		}
		sig := primitive.DecompressSig(enc.Type())
		s.decInsts[j] = s.sess.Instance(sig, labelf("%s/%s#%d", s.label, sig, j))
	}
	return nil
}

// Next implements Operator. Pushed-down conjuncts run first and refine the
// batch's selection vector; output columns then decode under that selection
// (the eager flavor ignores it, the lazy flavor gathers only the
// survivors). Fully filtered batches still flow with an empty selection so
// downstream instances keep their call cadence, exactly like Select.
func (s *EncodedScan) Next() (*vector.Batch, error) {
	if s.pos >= s.hi {
		return nil, nil
	}
	lo := s.pos
	n := s.sess.VectorSize
	if lo+n > s.hi {
		n = s.hi - lo
	}
	s.pos = lo + n

	var sel vector.Sel
	cur, spare := s.selA, s.selB
	for i := range s.preds {
		if sel != nil && len(sel) == 0 {
			break
		}
		call := &core.Call{
			N:      n,
			Sel:    sel,
			In:     []*vector.Vector{s.rhs[i]},
			SelOut: cur,
			Aux:    &primitive.DecompressArgs{Col: s.encPred[i], Lo: lo, Scratch: s.scratch[i]},
		}
		call.Feat = core.Features{Valid: true, Selectivity: call.Density(),
			Encoding: s.encPred[i].Encoding().String()}
		k := s.selInsts[i].Run(s.sess.Ctx, call)
		sel = cur[:k]
		cur, spare = spare, cur
	}
	_ = spare

	cols := make([]*vector.Vector, len(s.cols))
	for j, ci := range s.cols {
		enc := s.table.Enc.Cols[ci]
		if fv := storage.Unwrap(enc); fv != nil {
			cols[j] = fv.Slice(lo, lo+n)
			continue
		}
		res := vector.New(enc.Type(), n)
		res.SetLen(n)
		if sel == nil || len(sel) > 0 {
			call := &core.Call{
				N:   n,
				Sel: sel,
				Res: res,
				Aux: &primitive.DecompressArgs{Col: enc, Lo: lo},
			}
			call.Feat = core.Features{Valid: true, Selectivity: call.Density(),
				Encoding: enc.Encoding().String()}
			s.decInsts[j].Run(s.sess.Ctx, call)
		}
		cols[j] = res
	}

	var outSel vector.Sel
	if sel != nil {
		outSel = append([]int32{}, sel...)
	}
	chargeOp(s.sess, perBatchOverhead)
	return &vector.Batch{N: n, Sel: outSel, Cols: cols}, nil
}

// Close implements Operator.
func (s *EncodedScan) Close() {}
