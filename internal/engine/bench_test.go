package engine

import (
	"math/rand"
	"testing"

	"microadapt/internal/core"
	"microadapt/internal/expr"
	"microadapt/internal/hw"
	"microadapt/internal/primitive"
	"microadapt/internal/vector"
)

// benchTable builds a 64K-row two-column table.
func benchTable() *Table {
	n := 1 << 16
	rng := rand.New(rand.NewSource(3))
	a := make([]int32, n)
	v := make([]int64, n)
	for i := 0; i < n; i++ {
		a[i] = int32(rng.Intn(1000))
		v[i] = int64(rng.Intn(100_000))
	}
	return NewTable("bench",
		vector.Schema{{Name: "a", Type: vector.I32}, {Name: "v", Type: vector.I64}},
		[]*vector.Vector{vector.FromI32(a), vector.FromI64(v)})
}

func benchEngSession() *core.Session {
	return core.NewSession(primitive.NewDictionary(primitive.Everything()),
		hw.Machine1(), core.WithVectorSize(1024), core.WithSeed(4))
}

// BenchmarkPipelineScanSelectAggAdaptive measures end-to-end operator
// throughput with vw-greedy flavor selection active on every primitive.
func BenchmarkPipelineScanSelectAggAdaptive(b *testing.B) {
	tab := benchTable()
	b.SetBytes(int64(tab.Rows() * 12))
	for i := 0; i < b.N; i++ {
		s := benchEngSession()
		sel := NewSelect(s, NewScan(s, tab), "b", CmpVal(0, "<", 500))
		proj := NewProject(s, sel, "p",
			ProjExpr{Name: "x", Expr: expr.Mul(&expr.Col{Idx: 1}, &expr.ConstI64{V: 3})})
		agg := NewHashAgg(s, proj, "a", nil, Agg(AggSum, 0, "s"))
		if _, err := Materialize(agg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineHashJoin(b *testing.B) {
	tab := benchTable()
	build := NewTable("b",
		vector.Schema{{Name: "k", Type: vector.I32}, {Name: "p", Type: vector.I64}},
		[]*vector.Vector{
			vector.FromI32(seq(1000)),
			vector.FromI64(seq64(1000)),
		})
	b.SetBytes(int64(tab.Rows() * 12))
	for i := 0; i < b.N; i++ {
		s := benchEngSession()
		j := NewHashJoin(s, NewScan(s, build), NewScan(s, tab), "j", "k", "a",
			[]string{"p"}, WithBloom(8))
		if _, err := Materialize(j); err != nil {
			b.Fatal(err)
		}
	}
}

func seq(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

func seq64(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i * 7)
	}
	return out
}

// BenchmarkHashJoinProbeNext isolates the per-batch probe path of HashJoin
// over a wide probe schema — the benchmark behind hoisting the
// Schema.MustIndexOf probe-key lookup (a linear name scan per Next batch)
// into Open.
func BenchmarkHashJoinProbeNext(b *testing.B) {
	n := 1 << 16
	cols := make([]*vector.Vector, 0, 17)
	sch := make(vector.Schema, 0, 17)
	for c := 0; c < 16; c++ {
		sch = append(sch, vector.Col{Name: "pad" + string(rune('a'+c)), Type: vector.I64})
		cols = append(cols, vector.FromI64(seq64(n)))
	}
	sch = append(sch, vector.Col{Name: "key", Type: vector.I32})
	cols = append(cols, vector.FromI32(seq(n)))
	probeTab := NewTable("probe", sch, cols)
	buildTab := NewTable("build",
		vector.Schema{{Name: "k", Type: vector.I32}},
		[]*vector.Vector{vector.FromI32(seq(1024))})
	b.SetBytes(int64(n * 4))
	for i := 0; i < b.N; i++ {
		s := core.NewSession(primitive.NewDictionary(primitive.Defaults()),
			hw.Machine1(), core.WithVectorSize(64), core.WithSeed(4))
		j := NewHashJoin(s, NewScan(s, buildTab), NewScan(s, probeTab), "j",
			"k", "key", nil, WithKind(SemiJoin))
		if err := j.Open(); err != nil {
			b.Fatal(err)
		}
		for {
			batch, err := j.Next()
			if err != nil {
				b.Fatal(err)
			}
			if batch == nil {
				break
			}
		}
		j.Close()
	}
}

// BenchmarkMaterializeDrain measures the streaming materialization drain
// (live tuples gathered straight into growing columns, no per-batch vector
// allocation) on a selective pipeline — the path every query's result
// assembly and every join build side takes.
func BenchmarkMaterializeDrain(b *testing.B) {
	tab := benchTable()
	b.SetBytes(int64(tab.Rows() * 12))
	for i := 0; i < b.N; i++ {
		s := core.NewSession(primitive.NewDictionary(primitive.Defaults()),
			hw.Machine1(), core.WithVectorSize(128), core.WithSeed(4))
		sel := NewSelect(s, NewScan(s, tab), "b", CmpVal(0, "<", 500))
		if _, err := Materialize(sel); err != nil {
			b.Fatal(err)
		}
	}
}
