package engine

import (
	"microadapt/internal/core"
	"microadapt/internal/expr"
	"microadapt/internal/vector"
)

// ProjExpr is one output column of a Project: an expression plus its name.
type ProjExpr struct {
	Name string
	Expr expr.Node
}

// Keep passes an input column through unchanged.
func Keep(name string, idx int) ProjExpr { return ProjExpr{Name: name, Expr: &expr.Col{Idx: idx}} }

// Project computes expressions as new columns (the non-duplicate-
// eliminating Projection operator of §1). Each expression tree is
// evaluated by the expression evaluator, which is where flavor choice
// happens for map primitives.
type Project struct {
	sess  *core.Session
	child Operator
	exprs []ProjExpr
	label string

	sch vector.Schema
	ev  *expr.Evaluator
}

// NewProject builds a Project over child producing exactly exprs.
func NewProject(sess *core.Session, child Operator, label string, exprs ...ProjExpr) *Project {
	return &Project{sess: sess, child: child, exprs: exprs, label: label}
}

// Schema implements Operator.
func (p *Project) Schema() vector.Schema {
	if p.sch == nil {
		in := p.child.Schema()
		for _, e := range p.exprs {
			p.sch = append(p.sch, vector.Col{Name: e.Name, Type: e.Expr.Type(in)})
		}
	}
	return p.sch
}

// Open implements Operator.
func (p *Project) Open() error {
	if err := p.child.Open(); err != nil {
		return err
	}
	p.ev = expr.NewEvaluator(p.sess, p.child.Schema(), p.label)
	return nil
}

// Next implements Operator. Expressions are not evaluated for empty
// batches; primitives never see zero live tuples.
func (p *Project) Next() (*vector.Batch, error) {
	b, err := p.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	if b.Live() == 0 {
		sch := p.Schema()
		cols := make([]*vector.Vector, len(sch))
		for i, c := range sch {
			cols[i] = vector.New(c.Type, 0)
		}
		chargeOp(p.sess, perBatchOverhead)
		return &vector.Batch{N: 0, Cols: cols}, nil
	}
	cols := make([]*vector.Vector, len(p.exprs))
	for i, e := range p.exprs {
		v := e.Expr.Eval(p.ev, b)
		if v.Len() == 1 && b.N != 1 {
			// Broadcast a constant across the batch.
			bc := vector.New(v.Type(), b.N)
			bc.SetLen(b.N)
			broadcast(v, bc, b.N)
			v = bc
		}
		cols[i] = v
	}
	chargeOp(p.sess, perBatchOverhead)
	return &vector.Batch{N: b.N, Sel: b.Sel, Cols: cols}, nil
}

func broadcast(src, dst *vector.Vector, n int) {
	switch src.Type() {
	case vector.I16:
		v := src.I16()[0]
		d := dst.I16()
		for i := 0; i < n; i++ {
			d[i] = v
		}
	case vector.I32:
		v := src.I32()[0]
		d := dst.I32()
		for i := 0; i < n; i++ {
			d[i] = v
		}
	case vector.I64:
		v := src.I64()[0]
		d := dst.I64()
		for i := 0; i < n; i++ {
			d[i] = v
		}
	case vector.F64:
		v := src.F64()[0]
		d := dst.F64()
		for i := 0; i < n; i++ {
			d[i] = v
		}
	case vector.Str:
		v := src.Str()[0]
		d := dst.Str()
		for i := 0; i < n; i++ {
			d[i] = v
		}
	}
}

// Close implements Operator.
func (p *Project) Close() { p.child.Close() }
