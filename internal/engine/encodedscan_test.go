package engine

import (
	"strings"
	"testing"

	"microadapt/internal/core"
	"microadapt/internal/hw"
	"microadapt/internal/primitive"
	"microadapt/internal/storage"
	"microadapt/internal/vector"
)

// encTestTable builds a small encodable table: a run-structured date
// column, a small-domain quantity, and an incompressible id.
func encTestTable(n int) *Table {
	dates := make([]int32, n)
	qty := make([]int32, n)
	ids := make([]int64, n)
	for i := 0; i < n; i++ {
		dates[i] = int32(700 + i/19)
		qty[i] = int32(i*i%50) + 1
		// Multiplicative hashing wraps across the full int64 range, so no
		// encoding (dict/RLE/bit-pack) can beat flat on this column.
		ids[i] = int64(i+1) * -0x61c8864680b583eb
	}
	return NewTable("enc", vector.Schema{
		{Name: "date", Type: vector.I32},
		{Name: "qty", Type: vector.I32},
		{Name: "id", Type: vector.I64},
	}, []*vector.Vector{vector.FromI32(dates), vector.FromI32(qty), vector.FromI64(ids)})
}

func encSession() *core.Session {
	return core.NewSession(primitive.NewDictionary(primitive.Everything()), hw.Machine1(),
		core.WithVectorSize(64), core.WithSeed(3))
}

func tableEqual(t *testing.T, a, b *Table, ctxMsg string) {
	t.Helper()
	if got, want := TableString(a, 0), TableString(b, 0); got != want {
		t.Fatalf("%s: tables differ\n got: %s\nwant: %s", ctxMsg, got, want)
	}
}

// TestEncodedScanMatchesFlatScan: a full encoded scan must reproduce the
// flat scan bit-identically, including range restrictions and projections.
func TestEncodedScanMatchesFlatScan(t *testing.T) {
	tab := encTestTable(1000)
	EncodeTable(tab)
	if tab.Enc.ResidentBytes() >= tab.Enc.FlatBytes() {
		t.Fatalf("test table should compress: %d >= %d", tab.Enc.ResidentBytes(), tab.Enc.FlatBytes())
	}
	for _, tc := range []struct {
		lo, hi int
		cols   []string
	}{
		{0, 1000, nil},
		{0, 1000, []string{"qty", "date"}},
		{137, 803, nil},
		{999, 1000, []string{"id"}},
		{500, 500, nil},
	} {
		flat, err := Materialize(NewRangeScan(encSession(), tab, tc.lo, tc.hi, tc.cols...))
		if err != nil {
			t.Fatal(err)
		}
		enc, err := Materialize(NewEncodedRangeScan(encSession(), tab, "t/scan0", tc.lo, tc.hi, tc.cols...))
		if err != nil {
			t.Fatal(err)
		}
		tableEqual(t, enc, flat, "range scan")
	}
}

// TestEncodedScanPushdownMatchesSelect: pushing conjuncts into the scan
// must yield exactly the rows of a Select above a flat scan, for every
// split point — including predicates that select nothing.
func TestEncodedScanPushdownMatchesSelect(t *testing.T) {
	tab := encTestTable(1000)
	EncodeTable(tab)
	preds := []Pred{CmpVal(0, ">=", 710), CmpVal(0, "<", 740), CmpVal(1, "<", 24)}
	flat, err := Materialize(NewSelect(encSession(), NewScan(encSession(), tab), "t/sel0", preds...))
	if err != nil {
		t.Fatal(err)
	}
	if flat.Rows() == 0 {
		t.Fatal("test predicates select nothing; weaken them")
	}
	push, rest := PushdownSplit(tab, nil, preds)
	if len(push) != len(preds) || len(rest) != 0 {
		t.Fatalf("all conjuncts should push down, got %d/%d", len(push), len(rest))
	}
	s := encSession()
	es := NewEncodedScan(s, tab, "t/scan0").Pushdown("t/sel0", push...)
	enc, err := Materialize(NewSelect(s, es, "t/sel0-rest", rest...))
	if err != nil {
		t.Fatal(err)
	}
	tableEqual(t, enc, flat, "pushdown")
	// Both selenc and decompress instances must exist and carry the calls.
	var selenc, dec bool
	for _, inst := range s.Instances() {
		switch {
		case inst.Calls > 0 && inst.Prim.Class == hw.ClassDecompress && strings.HasPrefix(inst.Label, "t/sel0"):
			selenc = true
		case inst.Calls > 0 && inst.Prim.Class == hw.ClassDecompress:
			dec = true
		}
	}
	if !selenc || !dec {
		t.Errorf("expected live selenc and decompress instances (selenc=%v dec=%v)", selenc, dec)
	}

	// An unsatisfiable pushed predicate still streams empty-selection
	// batches (cadence) and produces zero rows.
	s2 := encSession()
	es2 := NewEncodedScan(s2, tab, "t/scan0").Pushdown("t/sel0", CmpVal(0, "<", -1))
	none, err := Materialize(es2)
	if err != nil {
		t.Fatal(err)
	}
	if none.Rows() != 0 {
		t.Errorf("unsatisfiable pushdown returned %d rows", none.Rows())
	}
}

// TestPushdownSplitBoundaries: the split is the maximal pushable prefix.
func TestPushdownSplitBoundaries(t *testing.T) {
	tab := encTestTable(1000)
	EncodeTable(tab)
	if tab.Enc.Col("id").Encoding() != storage.Flat {
		t.Skip("id column unexpectedly compressed; boundary case needs a flat column")
	}
	// id is flat: its conjunct blocks the split there.
	preds := []Pred{CmpVal(0, ">", 705), CmpVal(2, ">", 0), CmpVal(1, "<", 10)}
	push, rest := PushdownSplit(tab, nil, preds)
	if len(push) != 1 || len(rest) != 2 {
		t.Errorf("split = %d/%d, want 1/2 (flat column stops the prefix)", len(push), len(rest))
	}
	// Column-vs-column and IN conjuncts never push.
	push, rest = PushdownSplit(tab, nil, []Pred{CmpCol(0, "<", 1), CmpVal(0, ">", 0)})
	if len(push) != 0 || len(rest) != 2 {
		t.Errorf("col-col split = %d/%d, want 0/2", len(push), len(rest))
	}
	// Unencoded tables push nothing.
	flatTab := encTestTable(100)
	if push, _ = PushdownSplit(flatTab, nil, preds); push != nil {
		t.Error("flat table pushed conjuncts")
	}
}
