// Package engine is the vectorized query executor: pull-based relational
// operators (Scan, Select, Project, HashAgg, HashJoin, MergeJoin, Sort,
// TopN, Limit, and the Parallel/Exchange pair for partitioned pipelines)
// that move vector.Batch slices of one vector size — the session's
// configurable tuples-per-vector, 1024 by default and 128 in the benchmark
// and service configurations — and do all data-path work through the
// adaptive primitive instances of a core.Session, exactly separating
// control logic (operators) from data processing logic (primitives) as
// described in §1 of the paper.
package engine

import (
	"fmt"

	"microadapt/internal/core"
	"microadapt/internal/vector"
)

// Operator is a vectorized physical operator. Usage: Open, then Next until
// it returns nil, then Close.
type Operator interface {
	// Schema describes the batches this operator produces.
	Schema() vector.Schema
	// Open prepares the operator (and its children) for execution.
	Open() error
	// Next returns the next batch or nil at end of stream. Returned
	// batches may carry a selection vector.
	Next() (*vector.Batch, error)
	// Close releases resources; it must be called exactly once.
	Close()
}

// perBatchOverhead is the control-logic cost an operator adds per batch —
// the "execute stage outside primitives" sliver of Table 1.
const perBatchOverhead = 24.0

// chargeOp adds operator (non-primitive) execute-stage cycles.
func chargeOp(s *core.Session, cycles float64) {
	s.Ctx.OperatorCycles += cycles
}

// Run drains an operator, returning its batches compacted (selection
// applied). It is the "postprocess" boundary of Table 1.
func Run(op Operator) ([]*vector.Batch, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []*vector.Batch
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		if b.Live() == 0 {
			continue
		}
		out = append(out, b.Compact())
	}
}

// RowCount sums the live tuples of batches.
func RowCount(batches []*vector.Batch) int {
	n := 0
	for _, b := range batches {
		n += b.Live()
	}
	return n
}

// labelf builds instance labels.
func labelf(format string, args ...any) string { return fmt.Sprintf(format, args...) }
