// Package engine is the vectorized query executor: pull-based relational
// operators (Scan, Select, Project, HashAgg, HashJoin, MergeJoin, Sort,
// TopN, Limit, and the Parallel/Exchange pair for partitioned pipelines)
// that move vector.Batch slices of one vector size — the session's
// configurable tuples-per-vector, 1024 by default and 128 in the benchmark
// and service configurations — and do all data-path work through the
// adaptive primitive instances of a core.Session, exactly separating
// control logic (operators) from data processing logic (primitives) as
// described in §1 of the paper.
package engine

import (
	"fmt"

	"microadapt/internal/core"
	"microadapt/internal/vector"
)

// Operator is a vectorized physical operator. Usage: Open, then Next until
// it returns nil, then Close.
type Operator interface {
	// Schema describes the batches this operator produces.
	Schema() vector.Schema
	// Open prepares the operator (and its children) for execution.
	Open() error
	// Next returns the next batch or nil at end of stream. Returned
	// batches may carry a selection vector.
	Next() (*vector.Batch, error)
	// Close releases resources; it must be called exactly once.
	Close()
}

// perBatchOverhead is the control-logic cost an operator adds per batch —
// the "execute stage outside primitives" sliver of Table 1.
const perBatchOverhead = 24.0

// chargeOp adds operator (non-primitive) execute-stage cycles.
func chargeOp(s *core.Session, cycles float64) {
	s.Ctx.OperatorCycles += cycles
}

// Drain opens op, streams every non-empty batch (selection vector intact)
// to yield, and closes it. Batches may alias operator-owned or table-owned
// storage: yield must consume them before returning and never retain them.
// It is the streaming "postprocess" boundary of Table 1 — Run and
// Materialize are both built on it.
func Drain(op Operator, yield func(*vector.Batch) error) error {
	if err := op.Open(); err != nil {
		return err
	}
	defer op.Close()
	for {
		b, err := op.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		if b.Live() == 0 {
			continue
		}
		if err := yield(b); err != nil {
			return err
		}
	}
}

// Run drains an operator, returning its batches compacted (selection
// applied, one vector.Batch.CompactInto(nil) each). Because every batch is
// retained, each one needs its own storage — callers that only stream over
// the output should use Drain (raw batches) or Materialize (gathers live
// tuples straight into growing columns) instead, which allocate no fresh
// vectors per batch.
func Run(op Operator) ([]*vector.Batch, error) {
	var out []*vector.Batch
	err := Drain(op, func(b *vector.Batch) error {
		out = append(out, b.Compact())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RowCount sums the live tuples of batches.
func RowCount(batches []*vector.Batch) int {
	n := 0
	for _, b := range batches {
		n += b.Live()
	}
	return n
}

// labelf builds instance labels.
func labelf(format string, args ...any) string { return fmt.Sprintf(format, args...) }
