package engine

import (
	"testing"

	"microadapt/internal/core"
	"microadapt/internal/expr"
	"microadapt/internal/hw"
	"microadapt/internal/primitive"
	"microadapt/internal/vector"
)

func testSession(t testing.TB) *core.Session {
	t.Helper()
	return core.NewSession(primitive.NewDictionary(primitive.Everything()),
		hw.Machine1(), core.WithVectorSize(16), core.WithSeed(5))
}

// numbersTable builds a small table: id 0..n-1, val = id*10, name "s<id%3>".
func numbersTable(n int) *Table {
	ids := make([]int32, n)
	vals := make([]int64, n)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = int32(i)
		vals[i] = int64(i * 10)
		names[i] = string(rune('a' + i%3))
	}
	return NewTable("numbers",
		vector.Schema{
			{Name: "id", Type: vector.I32},
			{Name: "val", Type: vector.I64},
			{Name: "name", Type: vector.Str},
		},
		[]*vector.Vector{vector.FromI32(ids), vector.FromI64(vals), vector.FromStr(names)})
}

func TestScanBatches(t *testing.T) {
	s := testSession(t)
	tab := numbersTable(40)
	scan := NewScan(s, tab, "id", "val")
	batches, err := Run(scan)
	if err != nil {
		t.Fatal(err)
	}
	if got := RowCount(batches); got != 40 {
		t.Fatalf("rows = %d, want 40", got)
	}
	if len(batches) != 3 { // 16+16+8
		t.Errorf("batches = %d, want 3", len(batches))
	}
	if len(scan.Schema()) != 2 {
		t.Errorf("schema = %v", scan.Schema())
	}
}

func TestSelectConstAndColCol(t *testing.T) {
	s := testSession(t)
	tab := numbersTable(50)
	sel := NewSelect(s, NewScan(s, tab), "t",
		CmpVal(0, ">=", 10),
		CmpVal(0, "<", 30))
	out, err := Materialize(sel)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 20 {
		t.Fatalf("rows = %d, want 20", out.Rows())
	}
	if out.Col("id").GetI64(0) != 10 {
		t.Errorf("first id = %d", out.Col("id").GetI64(0))
	}

	// Column-column comparison (both columns must share a type).
	s2 := testSession(t)
	tab2 := NewTable("cc",
		vector.Schema{{Name: "a", Type: vector.I64}, {Name: "b", Type: vector.I64}},
		[]*vector.Vector{
			vector.FromI64([]int64{1, 5, 3, 9, 2}),
			vector.FromI64([]int64{2, 4, 3, 1, 8}),
		})
	eq := NewSelect(s2, NewScan(s2, tab2), "t2", CmpCol(0, "<", 1))
	out2, err := Materialize(eq)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Rows() != 2 { // rows (1,2) and (2,8)
		t.Errorf("col-col rows = %d, want 2", out2.Rows())
	}
}

func TestSelectStringOps(t *testing.T) {
	s := testSession(t)
	tab := numbersTable(30)
	sel := NewSelect(s, NewScan(s, tab), "t", CmpVal(2, "==", "a"))
	out, err := Materialize(sel)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 10 {
		t.Errorf("eq rows = %d, want 10", out.Rows())
	}

	s2 := testSession(t)
	in := NewSelect(s2, NewScan(s2, tab), "t", InStr(2, "a", "b"))
	out2, err := Materialize(in)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Rows() != 20 {
		t.Errorf("in rows = %d, want 20", out2.Rows())
	}
}

func TestSelectLike(t *testing.T) {
	s := testSession(t)
	tab := NewTable("t", vector.Schema{{Name: "s", Type: vector.Str}},
		[]*vector.Vector{vector.FromStr([]string{
			"PROMO BRUSHED STEEL", "STANDARD BRASS", "PROMO TIN", "LARGE BRASS", "special requests here",
		})})
	cases := []struct {
		pred Pred
		want int
	}{
		{Like(0, "PROMO%"), 2},
		{Like(0, "%BRASS"), 2},
		{Like(0, "%special%requests%"), 1},
		{NotLike(0, "PROMO%"), 3},
		{Like(0, "PROMO TIN"), 1},
	}
	for i, c := range cases {
		sel := NewSelect(s, NewScan(s, tab), labelf("t%d", i), c.pred)
		out, err := Materialize(sel)
		if err != nil {
			t.Fatal(err)
		}
		if out.Rows() != c.want {
			t.Errorf("case %d: rows = %d, want %d", i, out.Rows(), c.want)
		}
	}
}

func TestSelectInI32(t *testing.T) {
	s := testSession(t)
	tab := numbersTable(20)
	sel := NewSelect(s, NewScan(s, tab), "t", InI32(0, 3, 7, 11, 99))
	out, err := Materialize(sel)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 3 {
		t.Errorf("rows = %d, want 3", out.Rows())
	}
}

func TestSelectEmptyBatchesPropagate(t *testing.T) {
	s := testSession(t)
	tab := numbersTable(32)
	sel := NewSelect(s, NewScan(s, tab), "t", CmpVal(0, ">", 1000))
	if err := sel.Open(); err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	batches := 0
	for {
		b, err := sel.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		batches++
		if b.Live() != 0 {
			t.Error("expected empty selection")
		}
	}
	// Empty batches keep flowing so downstream instances keep their call
	// cadence (the Figure 2 tail).
	if batches != 2 {
		t.Errorf("batches = %d, want 2", batches)
	}
}

func TestProjectArithmetic(t *testing.T) {
	s := testSession(t)
	tab := numbersTable(20)
	scan := NewScan(s, tab)
	proj := NewProject(s, scan, "p",
		Keep("id", 0),
		ProjExpr{Name: "twice", Expr: expr.Mul(&expr.Col{Idx: 1}, &expr.ConstI64{V: 2})},
		ProjExpr{Name: "plus", Expr: expr.Add(&expr.Col{Idx: 1}, &expr.ConstI64{V: 5})},
	)
	out, err := Materialize(proj)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < out.Rows(); r++ {
		id := out.Col("id").GetI64(r)
		if got := out.Col("twice").GetI64(r); got != id*20 {
			t.Fatalf("row %d: twice = %d, want %d", r, got, id*20)
		}
		if got := out.Col("plus").GetI64(r); got != id*10+5 {
			t.Fatalf("row %d: plus = %d, want %d", r, got, id*10+5)
		}
	}
}

func TestProjectUnderSelection(t *testing.T) {
	s := testSession(t)
	tab := numbersTable(30)
	sel := NewSelect(s, NewScan(s, tab), "t", CmpVal(0, ">=", 15))
	proj := NewProject(s, sel, "p",
		Keep("id", 0),
		ProjExpr{Name: "v2", Expr: expr.Mul(&expr.Col{Idx: 1}, &expr.ConstI64{V: 3})})
	out, err := Materialize(proj)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 15 {
		t.Fatalf("rows = %d, want 15", out.Rows())
	}
	for r := 0; r < out.Rows(); r++ {
		if out.Col("v2").GetI64(r) != out.Col("id").GetI64(r)*30 {
			t.Fatal("projection under selection computed wrong values")
		}
	}
}

func TestHashAggGlobalAndGrouped(t *testing.T) {
	s := testSession(t)
	tab := numbersTable(30)
	global := NewHashAgg(s, NewScan(s, tab), "g", nil,
		Agg(AggSum, 1, "sum"),
		Agg(AggCount, -1, "cnt"),
		Agg(AggMin, 1, "min"),
		Agg(AggMax, 1, "max"),
		Agg(AggAvg, 1, "avg"))
	out, err := Materialize(global)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 1 {
		t.Fatalf("global agg rows = %d", out.Rows())
	}
	if got := out.Col("sum").GetI64(0); got != 4350 { // 10*(0+..+29)
		t.Errorf("sum = %d, want 4350", got)
	}
	if out.Col("cnt").GetI64(0) != 30 || out.Col("min").GetI64(0) != 0 || out.Col("max").GetI64(0) != 290 {
		t.Error("count/min/max wrong")
	}
	if got := out.Col("avg").GetF64(0); got != 145 {
		t.Errorf("avg = %v, want 145", got)
	}

	s2 := testSession(t)
	grouped := NewHashAgg(s2, NewScan(s2, tab), "gg", []int{2},
		Agg(AggCount, -1, "cnt"))
	out2, err := Materialize(grouped)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Rows() != 3 {
		t.Fatalf("groups = %d, want 3", out2.Rows())
	}
	for r := 0; r < 3; r++ {
		if out2.Col("cnt").GetI64(r) != 10 {
			t.Errorf("group %d count = %d, want 10", r, out2.Col("cnt").GetI64(r))
		}
	}
}

func TestHashAggIntKeysAndPack2(t *testing.T) {
	s := testSession(t)
	tab := numbersTable(40)
	// Single int key: id % nothing... group by id/10 via project first.
	proj := NewProject(s, NewScan(s, tab), "p",
		ProjExpr{Name: "bucket", Expr: expr.Div(expr.ToI64(&expr.Col{Idx: 0}), &expr.ConstI64{V: 10})},
		Keep("val", 1),
		Keep("id", 0))
	agg := NewHashAgg(s, proj, "a", []int{0}, Agg(AggCount, -1, "cnt"))
	out, err := Materialize(agg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 4 {
		t.Fatalf("buckets = %d, want 4", out.Rows())
	}

	// Two 32-bit int keys exercise the packed path.
	s2 := testSession(t)
	tab2 := NewTable("t2",
		vector.Schema{{Name: "a", Type: vector.I32}, {Name: "b", Type: vector.I32}},
		[]*vector.Vector{
			vector.FromI32([]int32{1, 1, 2, 2, 1, -1}),
			vector.FromI32([]int32{5, 5, 5, 6, 5, 5}),
		})
	agg2 := NewHashAgg(s2, NewScan(s2, tab2), "a2", []int{0, 1}, Agg(AggCount, -1, "cnt"))
	out2, err := Materialize(agg2)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Rows() != 4 { // (1,5),(2,5),(2,6),(-1,5)
		t.Fatalf("pack2 groups = %d, want 4", out2.Rows())
	}
	var total int64
	for r := 0; r < out2.Rows(); r++ {
		total += out2.Col("cnt").GetI64(r)
	}
	if total != 6 {
		t.Errorf("total = %d, want 6", total)
	}
}

func TestHashAggFirst(t *testing.T) {
	s := testSession(t)
	tab := numbersTable(9)
	agg := NewHashAgg(s, NewScan(s, tab), "f", []int{2},
		Agg(AggFirst, 0, "first_id"),
		Agg(AggMin, 0, "min_id"))
	out, err := Materialize(agg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 3 {
		t.Fatalf("groups = %d", out.Rows())
	}
	for r := 0; r < 3; r++ {
		// First id seen per name group is also the minimum (data ordered).
		if out.Col("first_id").GetI64(r) != out.Col("min_id").GetI64(r) {
			t.Error("first != min on ordered input")
		}
	}
}

func TestHashJoinInner(t *testing.T) {
	s := testSession(t)
	build := numbersTable(10)
	probeIDs := []int32{0, 5, 9, 42, 5}
	probe := NewTable("probe",
		vector.Schema{{Name: "k", Type: vector.I32}},
		[]*vector.Vector{vector.FromI32(probeIDs)})
	j := NewHashJoin(s, NewScan(s, build), NewScan(s, probe), "j", "id", "k",
		[]string{"val", "name"})
	out, err := Materialize(j)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 4 { // 42 misses
		t.Fatalf("rows = %d, want 4", out.Rows())
	}
	for r := 0; r < out.Rows(); r++ {
		k := out.Col("k").GetI64(r)
		if out.Col("val").GetI64(r) != k*10 {
			t.Errorf("row %d: payload mismatch", r)
		}
	}
}

func TestHashJoinSemiAntiAndBloom(t *testing.T) {
	s := testSession(t)
	build := numbersTable(8)
	probeIDs := make([]int32, 100)
	for i := range probeIDs {
		probeIDs[i] = int32(i)
	}
	probe := NewTable("probe",
		vector.Schema{{Name: "k", Type: vector.I32}},
		[]*vector.Vector{vector.FromI32(probeIDs)})

	semi := NewHashJoin(s, NewScan(s, build), NewScan(s, probe), "semi", "id", "k",
		nil, WithKind(SemiJoin), WithBloom(8))
	out, err := Materialize(semi)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 8 {
		t.Fatalf("semi rows = %d, want 8", out.Rows())
	}

	s2 := testSession(t)
	anti := NewHashJoin(s2, NewScan(s2, build), NewScan(s2, probe), "anti", "id", "k",
		nil, WithKind(AntiJoin))
	out2, err := Materialize(anti)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Rows() != 92 {
		t.Fatalf("anti rows = %d, want 92", out2.Rows())
	}
}

func TestMergeJoinManyToMany(t *testing.T) {
	s := testSession(t)
	left := NewTable("l",
		vector.Schema{{Name: "lk", Type: vector.I64}, {Name: "lv", Type: vector.Str}},
		[]*vector.Vector{
			vector.FromI64([]int64{1, 2, 2, 4}),
			vector.FromStr([]string{"a", "b", "c", "d"}),
		})
	right := NewTable("r",
		vector.Schema{{Name: "rk", Type: vector.I64}, {Name: "rv", Type: vector.I64}},
		[]*vector.Vector{
			vector.FromI64([]int64{2, 2, 3, 4, 4}),
			vector.FromI64([]int64{20, 21, 30, 40, 41}),
		})
	mj := NewMergeJoin(s, NewScan(s, left), NewScan(s, right), "mj", "lk", "rk",
		[]string{"lk", "lv"}, []string{"rv"})
	out, err := Materialize(mj)
	if err != nil {
		t.Fatal(err)
	}
	// key 2: 2 left x 2 right = 4 pairs; key 4: 1x2 = 2 pairs.
	if out.Rows() != 6 {
		t.Fatalf("rows = %d, want 6", out.Rows())
	}
	var sum int64
	for r := 0; r < out.Rows(); r++ {
		sum += out.Col("rv").GetI64(r)
	}
	if sum != 20+21+20+21+40+41 {
		t.Errorf("rv sum = %d", sum)
	}
}

// TestMergeJoinCapacityBoundary forces a duplicate group to straddle the
// output vector boundary.
func TestMergeJoinCapacityBoundary(t *testing.T) {
	s := testSession(t) // vector size 16
	n := 7
	lk := make([]int64, n)
	rk := make([]int64, n)
	for i := range lk {
		lk[i] = 1
		rk[i] = 1
	}
	left := NewTable("l", vector.Schema{{Name: "lk", Type: vector.I64}},
		[]*vector.Vector{vector.FromI64(lk)})
	right := NewTable("r", vector.Schema{{Name: "rk", Type: vector.I64}},
		[]*vector.Vector{vector.FromI64(rk)})
	mj := NewMergeJoin(s, NewScan(s, left), NewScan(s, right), "mj", "lk", "rk",
		[]string{"lk"}, nil)
	out, err := Materialize(mj)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != n*n { // 49 pairs through 16-wide output vectors
		t.Fatalf("rows = %d, want %d", out.Rows(), n*n)
	}
}

func TestSortAndTopNAndLimit(t *testing.T) {
	s := testSession(t)
	tab := numbersTable(25)
	sorted := NewSort(s, NewScan(s, tab), Desc(0))
	out, err := Materialize(sorted)
	if err != nil {
		t.Fatal(err)
	}
	if out.Col("id").GetI64(0) != 24 || out.Col("id").GetI64(24) != 0 {
		t.Error("descending sort wrong")
	}

	s2 := testSession(t)
	top := NewTopN(s2, NewScan(s2, tab), 5, Asc(2), Desc(0))
	out2, err := Materialize(top)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Rows() != 5 {
		t.Fatalf("topn rows = %d", out2.Rows())
	}
	if out2.Col("name").GetStr(0) != "a" || out2.Col("id").GetI64(0) != 24 {
		t.Error("topn ordering wrong")
	}

	s3 := testSession(t)
	lim := NewLimit(s3, NewScan(s3, tab), 7)
	out3, err := Materialize(lim)
	if err != nil {
		t.Fatal(err)
	}
	if out3.Rows() != 7 {
		t.Fatalf("limit rows = %d", out3.Rows())
	}
}

func TestRenameAndProjectView(t *testing.T) {
	tab := numbersTable(3)
	r := Rename(tab, map[string]string{"val": "value"})
	if r.Sch.IndexOf("value") != 1 || r.Sch.IndexOf("val") != -1 {
		t.Error("rename wrong")
	}
	if tab.Sch.IndexOf("val") != 1 {
		t.Error("rename mutated the original")
	}
	p := tab.Project("name", "id")
	if p.Sch[0].Name != "name" || p.Cols[1] != tab.Cols[0] {
		t.Error("project view wrong")
	}
}

func TestTableStringRendering(t *testing.T) {
	tab := numbersTable(3)
	out := TableString(tab, 2)
	if !contains(out, "id") || !contains(out, "3 rows total") {
		t.Errorf("render: %q", out)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
