package engine

import (
	"math"

	"microadapt/internal/bloom"
	"microadapt/internal/core"
	"microadapt/internal/hw"
	"microadapt/internal/primitive"
	"microadapt/internal/vector"
)

// JoinKind selects join semantics.
type JoinKind int

const (
	// InnerJoin emits probe tuples with matching build payload columns.
	InnerJoin JoinKind = iota
	// SemiJoin emits probe tuples that have a match (no build columns).
	SemiJoin
	// AntiJoin emits probe tuples without a match (no build columns).
	AntiJoin
)

// Join strategy arm names. Arm 0 is always the planner's historical
// default — bloomhash when the plan carries a bloom hint, plain hash
// otherwise — so a fixed:arm=0 policy (and a cold bandit's first sweep
// step) reproduces exactly the physical behavior plans had before the
// strategy became a decision. AntiJoin decisions carry no bloomhash arm: a
// bloom pre-filter discards probe keys that cannot match, which is
// exactly the population an anti join must keep.
var (
	joinStrategies      = []string{"hash", "merge", "bloomhash"}
	joinStrategiesBloom = []string{"bloomhash", "hash", "merge"}
	joinStrategiesAnti  = []string{"hash", "merge"}
)

// Join joins a probe stream against a materialized build side on single
// integer key columns with unique build keys (the PK side of a PK-FK join,
// which is every hash-family join in our TPC-H plans). The physical plan
// no longer fixes the algorithm: *how* to join is an operator-level
// decision resolved at Open on the session's decision registry, by the
// same policy that picks primitive flavors one level down. The arms:
//
//   - hash:      build a JoinTable, probe with sel_htlookup_slng_col.
//   - merge:     sort the build side's (key, row) pairs, probe with the
//     binary-search primitive sel_bsearch_slng_col.
//   - bloomhash: hash, behind a bloom pre-filter (the loop-fission
//     primitive of Table 8 / Figure 11d).
//
// Every arm returns the lowest matching build row per probe tuple, so the
// query result is bit-identical whichever arm the policy explores; only
// the cost moves. The hash arms consult a second decision, ht-sizing,
// that places the table on the probes-versus-cache-misses curve (see
// primitive.JoinSizings). Probing stays fully vectorized: pre-filter,
// lookup, one fetch primitive per payload column.
type Join struct {
	sess     *core.Session
	build    Operator
	probe    Operator
	label    string
	kind     JoinKind
	buildKey string // key column name on build side
	probeKey string // key column name on probe side
	payload  []string
	bitsPer  int // bloomhash arm's bits per build key (hint; default 8)

	sch        vector.Schema
	buildTab   *Table
	joinTab    *primitive.JoinTable
	sortTab    *primitive.SortedTable
	filter     *bloom.Filter
	bloomInst  *core.Instance
	lookupInst *core.Instance
	fetchInsts []*core.Instance
	payloadIdx []int

	strategyDec *core.Decision
	sizingDec   *core.Decision
	buildCost   float64 // operator cycles spent building the chosen structure
	probeTuples int     // live probe tuples seen by Next
	baseCycles  float64 // probe-instance cycles predating this Open
	observed    bool

	keyScratch  *vector.Vector
	rowScratch  *vector.Vector
	selA, selB  []int32
	probeKeyIdx int // probe-side key column, resolved once in Open
}

// JoinOption configures a Join.
type JoinOption func(*Join)

// HashJoinOption is the historical name of JoinOption.
type HashJoinOption = JoinOption

// WithBloom sets the bits per build key the bloomhash arm uses (8 when
// unset). It is a hint for one arm, not a mandate: the strategy decision
// still chooses whether the filter is worth building.
func WithBloom(bitsPerKey int) JoinOption {
	return func(h *Join) { h.bitsPer = bitsPerKey }
}

// WithKind sets the join semantics (default InnerJoin).
func WithKind(k JoinKind) JoinOption {
	return func(h *Join) { h.kind = k }
}

// NewJoin builds a join. payload names build-side columns to append to the
// probe schema (inner joins only).
func NewJoin(sess *core.Session, build, probe Operator, label, buildKey, probeKey string, payload []string, opts ...JoinOption) *Join {
	h := &Join{
		sess: sess, build: build, probe: probe, label: label,
		buildKey: buildKey, probeKey: probeKey, payload: payload,
	}
	for _, o := range opts {
		o(h)
	}
	return h
}

// NewHashJoin is the historical name of NewJoin, kept for callers that
// predate the strategy decision.
func NewHashJoin(sess *core.Session, build, probe Operator, label, buildKey, probeKey string, payload []string, opts ...JoinOption) *Join {
	return NewJoin(sess, build, probe, label, buildKey, probeKey, payload, opts...)
}

// Schema implements Operator: probe columns, then payload columns.
func (h *Join) Schema() vector.Schema {
	if h.sch != nil {
		return h.sch
	}
	h.sch = append(h.sch, h.probe.Schema()...)
	if h.kind == InnerJoin {
		bs := h.build.Schema()
		for _, name := range h.payload {
			h.sch = append(h.sch, bs[bs.MustIndexOf(name)])
		}
	}
	return h.sch
}

// JoinStrategyArms returns the strategy-decision arm set a Join with the
// given kind and bloom hint will enumerate — the planner's explain output
// renders it so plans show the decision point instead of a baked-in
// algorithm.
func JoinStrategyArms(kind JoinKind, bloomBits int) []string {
	return (&Join{kind: kind, bitsPer: bloomBits}).strategies()
}

// strategies returns the arm set for this join's kind and hints.
func (h *Join) strategies() []string {
	if h.kind == AntiJoin {
		return joinStrategiesAnti
	}
	if h.bitsPer > 0 {
		return joinStrategiesBloom
	}
	return joinStrategies
}

// buildFeatures summarizes the materialized build side for the strategy
// decision: Selectivity carries cache pressure (the miss ratio a probe
// structure of this cardinality would see against the LLC — the feature
// the hash-versus-merge tradeoff actually pivots on), Sortedness the
// fraction of adjacent non-descending key pairs. Both are O(rows) over
// data the operator just materialized anyway.
func buildFeatures(m *hw.Machine, keys []int64) core.Features {
	f := core.Features{Valid: true, Sortedness: 1, DistinctRatio: 1}
	f.Selectivity = hw.MissRatio(12*len(keys), m.LLCBytes)
	if len(keys) > 1 {
		asc := 0
		for i := 1; i < len(keys); i++ {
			if keys[i] >= keys[i-1] {
				asc++
			}
		}
		f.Sortedness = float64(asc) / float64(len(keys)-1)
	}
	return f
}

// Open implements Operator: drains the build side, resolves the strategy
// and sizing decisions, and builds the chosen probe structure.
// (Materialize opens and closes the build child.)
func (h *Join) Open() error {
	tab, err := Materialize(h.build)
	if err != nil {
		return err
	}
	h.buildTab = tab

	keyCol := tab.Col(h.buildKey)
	keys := make([]int64, tab.Rows())
	kv := vector.FromI64(keys)
	primitive.WidenToI64(keyCol, nil, tab.Rows(), kv)

	arms := h.strategies()
	h.strategyDec = h.sess.Decision("join-strategy", h.label+"/strategy", arms)
	arm := arms[h.strategyDec.Choose(buildFeatures(h.sess.Machine, keys))]
	h.joinTab, h.sortTab, h.filter = nil, nil, nil
	h.bloomInst, h.sizingDec = nil, nil
	h.probeTuples, h.observed = 0, false

	// Build-side indexing is operator work, not a studied primitive; each
	// arm charges its own build. The charge also flows into the decision's
	// cost signal at Close, so an arm cannot hide an expensive build
	// behind a cheap probe.
	rows := float64(tab.Rows())
	sig := ""
	if arm == "merge" {
		h.sortTab = primitive.NewSortedTable(keys)
		h.buildCost = 1.2 * rows * math.Log2(rows+2)
		sig = "sel_bsearch_slng_col"
		if h.kind == AntiJoin {
			sig = "sel_bsearchmiss_slng_col"
		}
	} else {
		h.sizingDec = h.sess.Decision("ht-sizing", h.label+"/sizing", primitive.JoinSizings)
		sizing := primitive.JoinSizings[h.sizingDec.Choose(core.Features{})]
		h.joinTab = primitive.NewJoinTableSized(keys, sizing)
		h.buildCost = 8 * rows
		if arm == "bloomhash" {
			bits := h.bitsPer
			if bits <= 0 {
				bits = 8
			}
			h.filter = bloom.New(tab.Rows()*bits/8, 2)
			for _, k := range keys {
				h.filter.Add(k)
			}
			h.buildCost += 6 * rows
			h.bloomInst = h.sess.Instance("sel_bloomfilter_slng_col", h.label+"/sel_bloomfilter_slng_col#0")
		}
		sig = "sel_htlookup_slng_col"
		if h.kind == AntiJoin {
			sig = "sel_htmiss_slng_col"
		}
	}
	chargeOp(h.sess, h.buildCost)
	h.lookupInst = h.sess.Instance(sig, h.label+"/"+sig+"#0")
	h.baseCycles = h.lookupInst.Cycles
	if h.bloomInst != nil {
		h.baseCycles += h.bloomInst.Cycles
	}

	if h.kind == InnerJoin {
		h.fetchInsts = make([]*core.Instance, len(h.payload))
		h.payloadIdx = make([]int, len(h.payload))
		for i, name := range h.payload {
			idx := tab.Sch.MustIndexOf(name)
			h.payloadIdx[i] = idx
			fsig := primitive.FetchSig(tab.Sch[idx].Type)
			h.fetchInsts[i] = h.sess.Instance(fsig, labelf("%s/%s#%d", h.label, fsig, i))
		}
	}

	vs := h.sess.VectorSize
	h.keyScratch = vector.New(vector.I64, vs)
	h.rowScratch = vector.New(vector.I32, vs)
	h.selA = make([]int32, vs)
	h.selB = make([]int32, vs)
	// Resolve the probe key once: a schema lookup is a linear name scan,
	// far too slow to repeat on every Next batch.
	h.probeKeyIdx = h.probe.Schema().MustIndexOf(h.probeKey)
	return h.probe.Open()
}

// probeAux returns the probe structure of the chosen arm.
func (h *Join) probeAux() interface{} {
	if h.sortTab != nil {
		return h.sortTab
	}
	return h.joinTab
}

// Next implements Operator. Empty probe batches pass through without any
// primitive calls.
func (h *Join) Next() (*vector.Batch, error) {
	b, err := h.probe.Next()
	if err != nil || b == nil {
		return nil, err
	}
	if b.Live() == 0 {
		cols := make([]*vector.Vector, 0, len(h.Schema()))
		cols = append(cols, b.Cols...)
		if h.kind == InnerJoin {
			for _, idx := range h.payloadIdx {
				cols = append(cols, vector.New(h.buildTab.Sch[idx].Type, 0))
			}
		}
		chargeOp(h.sess, perBatchOverhead)
		return &vector.Batch{N: b.N, Sel: []int32{}, Cols: cols}, nil
	}
	if b.N > len(h.selA) {
		// Probe batches wider than the session's vector size (a child fed
		// from a materialized table of another session) would overflow the
		// key/row/selection scratch; grow it to the batch.
		h.keyScratch = vector.New(vector.I64, b.N)
		h.rowScratch = vector.New(vector.I32, b.N)
		h.selA = make([]int32, b.N)
		h.selB = make([]int32, b.N)
	}
	primitive.WidenToI64(b.Cols[h.probeKeyIdx], b.Sel, b.N, h.keyScratch)
	h.probeTuples += b.Live()

	sel := b.Sel
	if h.filter != nil {
		call := &core.Call{N: b.N, Sel: sel, In: []*vector.Vector{h.keyScratch}, SelOut: h.selA, Aux: h.filter}
		k := h.bloomInst.Run(h.sess.Ctx, call)
		sel = h.selA[:k]
	}
	call := &core.Call{N: b.N, Sel: sel, In: []*vector.Vector{h.keyScratch}, SelOut: h.selB, Res: h.rowScratch, Aux: h.probeAux()}
	k := h.lookupInst.Run(h.sess.Ctx, call)
	outSel := make([]int32, k)
	copy(outSel, h.selB[:k])

	cols := make([]*vector.Vector, 0, len(h.Schema()))
	cols = append(cols, b.Cols...)
	if h.kind == InnerJoin {
		for i, idx := range h.payloadIdx {
			src := h.buildTab.Cols[idx]
			res := vector.New(src.Type(), b.N)
			res.SetLen(b.N)
			fc := &core.Call{N: b.N, Sel: outSel, In: []*vector.Vector{h.rowScratch, src}, Res: res}
			h.fetchInsts[i].Run(h.sess.Ctx, fc)
			cols = append(cols, res)
		}
	}
	chargeOp(h.sess, perBatchOverhead)
	return &vector.Batch{N: b.N, Sel: outSel, Cols: cols}, nil
}

// Close implements Operator: the decisions learn here, once the chosen
// strategy's full cost — build plus every probe cycle this Open accrued on
// the pre-filter and lookup instances — is known.
func (h *Join) Close() {
	if h.strategyDec != nil && !h.observed {
		h.observed = true
		cycles := h.lookupInst.Cycles
		if h.bloomInst != nil {
			cycles += h.bloomInst.Cycles
		}
		cycles += h.buildCost - h.baseCycles
		h.strategyDec.Observe(h.probeTuples, cycles)
		if h.sizingDec != nil {
			h.sizingDec.Observe(h.probeTuples, cycles)
		}
	}
	h.probe.Close()
}
