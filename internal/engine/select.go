package engine

import (
	"microadapt/internal/core"
	"microadapt/internal/primitive"
	"microadapt/internal/vector"
)

// Pred is one conjunct of a Select: column <op> constant, column <op>
// column, a LIKE pattern, or an IN list. Each conjunct maps to one
// selection-primitive instance.
type Pred struct {
	Col    int    // left column index
	Op     string // "<", "<=", ">", ">=", "==", "!=", "like", "notlike", "in"
	RHSCol int    // right column index for col-col compares; -1 otherwise
	I64    int64  // constant for integer columns (also dates via int32)
	F64    float64
	Str    string   // constant for string compares / like pattern
	Set    []string // values for "in" over string columns
	SetI32 []int32  // values for "in" over sint columns
}

// CmpVal builds a column-vs-constant comparison predicate. value must match
// the column type: int for integer columns, float64, or string.
func CmpVal(col int, op string, value any) Pred {
	p := Pred{Col: col, Op: op, RHSCol: -1}
	switch v := value.(type) {
	case int:
		p.I64 = int64(v)
	case int32:
		p.I64 = int64(v)
	case int64:
		p.I64 = v
	case float64:
		p.F64 = v
	case string:
		p.Str = v
	default:
		panic("engine.CmpVal: unsupported constant type")
	}
	return p
}

// CmpCol builds a column-vs-column comparison predicate.
func CmpCol(col int, op string, rhs int) Pred { return Pred{Col: col, Op: op, RHSCol: rhs} }

// Like builds a LIKE predicate (patterns of literal segments separated by
// '%'); Not negates it.
func Like(col int, pattern string) Pred { return Pred{Col: col, Op: "like", RHSCol: -1, Str: pattern} }

// NotLike builds a NOT LIKE predicate.
func NotLike(col int, pattern string) Pred {
	return Pred{Col: col, Op: "notlike", RHSCol: -1, Str: pattern}
}

// InStr builds an IN-list predicate over a string column.
func InStr(col int, values ...string) Pred { return Pred{Col: col, Op: "in", RHSCol: -1, Set: values} }

// InI32 builds an IN-list predicate over a sint column.
func InI32(col int, values ...int32) Pred {
	return Pred{Col: col, Op: "in", RHSCol: -1, SetI32: values}
}

// Select filters its child's batches through conjunctive predicates,
// producing/refining selection vectors via selection primitives —
// including empty-selection batches, so downstream primitive instances
// keep their call cadence (the tail of Figure 2).
type Select struct {
	sess  *core.Session
	child Operator
	preds []Pred
	label string

	insts []*core.Instance
	rhs   []*vector.Vector // constant vectors per pred
	selA  []int32
	selB  []int32
}

// NewSelect builds a Select. label prefixes the primitive-instance names.
func NewSelect(sess *core.Session, child Operator, label string, preds ...Pred) *Select {
	return &Select{sess: sess, child: child, preds: preds, label: label}
}

// Schema implements Operator.
func (s *Select) Schema() vector.Schema { return s.child.Schema() }

// Open implements Operator.
func (s *Select) Open() error {
	if err := s.child.Open(); err != nil {
		return err
	}
	sch := s.child.Schema()
	s.selA = make([]int32, s.sess.VectorSize)
	s.selB = make([]int32, s.sess.VectorSize)
	s.insts = make([]*core.Instance, len(s.preds))
	s.rhs = make([]*vector.Vector, len(s.preds))
	for i, p := range s.preds {
		t := sch[p.Col].Type
		var sig string
		switch p.Op {
		case "like", "notlike":
			sig = "select_" + p.Op + "_str_col_str_val"
			s.rhs[i] = vector.ConstStr(p.Str)
		case "in":
			if t == vector.Str {
				sig = "select_in_str_col"
				s.rhs[i] = vector.FromStr(p.Set)
			} else {
				sig = "select_in_sint_col"
				s.rhs[i] = vector.FromI32(p.SetI32)
			}
		default:
			if p.RHSCol >= 0 {
				sig = primitive.SelSig(p.Op, t, true)
			} else {
				sig = primitive.SelSig(p.Op, t, false)
				switch t {
				case vector.I16:
					s.rhs[i] = vector.ConstI16(int16(p.I64))
				case vector.I32:
					s.rhs[i] = vector.ConstI32(int32(p.I64))
				case vector.I64:
					s.rhs[i] = vector.ConstI64(p.I64)
				case vector.F64:
					s.rhs[i] = vector.ConstF64(p.F64)
				case vector.Str:
					s.rhs[i] = vector.ConstStr(p.Str)
				}
			}
		}
		s.insts[i] = s.sess.Instance(sig, labelf("%s/%s#%d", s.label, sig, i))
	}
	return nil
}

// Next implements Operator. Empty inputs skip the remaining predicates
// entirely — as in Vectorwise, primitives are never called on empty
// selection vectors (learning from zero-tuple calls is meaningless).
func (s *Select) Next() (*vector.Batch, error) {
	b, err := s.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	if b.Live() == 0 {
		chargeOp(s.sess, perBatchOverhead)
		return &vector.Batch{N: b.N, Sel: []int32{}, Cols: b.Cols}, nil
	}
	if b.N > len(s.selA) {
		// A child may hand over batches wider than this session's vector
		// size (e.g. a materialized table streamed by another session);
		// selection primitives write up to b.N positions into SelOut, so
		// grow the scratch instead of corrupting memory past it.
		s.selA = make([]int32, b.N)
		s.selB = make([]int32, b.N)
	}
	cur, spare := s.selA, s.selB
	sel := b.Sel
	for i, p := range s.preds {
		if sel != nil && len(sel) == 0 {
			break
		}
		in := []*vector.Vector{b.Cols[p.Col], s.rhs[i]}
		if p.RHSCol >= 0 {
			in[1] = b.Cols[p.RHSCol]
		}
		call := &core.Call{N: b.N, Sel: sel, In: in, SelOut: cur}
		// Per-batch context: the incoming selection density — what earlier
		// conjuncts (or the child) left alive — known before the call runs,
		// unlike this predicate's own selectivity.
		call.Feat = core.Features{Valid: true, Selectivity: call.Density()}
		k := s.insts[i].Run(s.sess.Ctx, call)
		sel = cur[:k]
		cur, spare = spare, cur
	}
	_ = spare
	out := make([]int32, len(sel))
	copy(out, sel)
	chargeOp(s.sess, perBatchOverhead)
	return &vector.Batch{N: b.N, Sel: out, Cols: b.Cols}, nil
}

// Close implements Operator.
func (s *Select) Close() { s.child.Close() }
