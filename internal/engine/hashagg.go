package engine

import (
	"math"
	"strconv"

	"microadapt/internal/core"
	"microadapt/internal/primitive"
	"microadapt/internal/vector"
)

// AggFn enumerates the aggregate functions.
type AggFn string

// Aggregate functions supported by HashAgg.
const (
	AggSum   AggFn = "sum"
	AggCount AggFn = "count"
	AggMin   AggFn = "min"
	AggMax   AggFn = "max"
	AggAvg   AggFn = "avg"
	AggFirst AggFn = "first" // first value per group (functionally dependent columns)
)

// AggSpec is one aggregate output: Fn over column Col (ignored for count),
// named As.
type AggSpec struct {
	Fn  AggFn
	Col int
	As  string
}

// Agg builds an AggSpec.
func Agg(fn AggFn, col int, as string) AggSpec { return AggSpec{Fn: fn, Col: col, As: as} }

// HashAgg is the blocking hash-aggregation operator. Group ids are
// assigned by vectorized hash_insertcheck primitives (Figure 4e);
// aggregates are maintained by vectorized aggr update primitives
// (Figure 4b). Multi-column keys are packed: two string columns via the
// map_concat primitive, anything else via per-column stringification.
type HashAgg struct {
	sess      *core.Session
	child     Operator
	label     string
	groupCols []int
	aggs      []AggSpec

	sch    vector.Schema
	result *Table
	scan   *Scan

	// key state
	tabI64 *primitive.GroupTableI64
	tabStr *primitive.GroupTableStr

	// per-aggregate accumulators
	accI64 []*primitive.AccI64
	accF64 []*primitive.AccF64

	// first-value capture for group columns and AggFirst specs
	firstGroup []capture
	firstAgg   map[int]*capture
}

// capture stores first-seen per-group values of one column.
type capture struct {
	t    vector.Type
	i64s []int64
	f64s []float64
	strs []string
}

func (cp *capture) add(v *vector.Vector, i int32) {
	switch cp.t {
	case vector.I16:
		cp.i64s = append(cp.i64s, int64(v.I16()[i]))
	case vector.I32:
		cp.i64s = append(cp.i64s, int64(v.I32()[i]))
	case vector.I64:
		cp.i64s = append(cp.i64s, v.I64()[i])
	case vector.F64:
		cp.f64s = append(cp.f64s, v.F64()[i])
	case vector.Str:
		cp.strs = append(cp.strs, v.Str()[i])
	}
}

func (cp *capture) len() int {
	switch cp.t {
	case vector.F64:
		return len(cp.f64s)
	case vector.Str:
		return len(cp.strs)
	default:
		return len(cp.i64s)
	}
}

// outType is the result-column type of the capture (ints widen to I64).
func (cp *capture) outType() vector.Type {
	switch cp.t {
	case vector.I16, vector.I32:
		return vector.I64
	default:
		return cp.t
	}
}

func (cp *capture) toVector() *vector.Vector {
	switch cp.outType() {
	case vector.F64:
		return vector.FromF64(cp.f64s)
	case vector.Str:
		return vector.FromStr(cp.strs)
	default:
		return vector.FromI64(cp.i64s)
	}
}

// NewHashAgg builds a hash aggregation grouping on groupCols (may be
// empty for a global aggregate) computing aggs.
func NewHashAgg(sess *core.Session, child Operator, label string, groupCols []int, aggs ...AggSpec) *HashAgg {
	return &HashAgg{sess: sess, child: child, label: label, groupCols: groupCols, aggs: aggs}
}

// Schema implements Operator: group columns (ints widened to I64) followed
// by the aggregates.
func (h *HashAgg) Schema() vector.Schema {
	if h.sch == nil {
		h.sch = AggOutputSchema(h.child.Schema(), h.groupCols, h.aggs)
	}
	return h.sch
}

// AggOutputSchema computes the result schema of a hash aggregation over in:
// the group columns (integers widened to I64) followed by one column per
// aggregate. The logical planner uses it to type plans without building
// operators, so it must stay the single source of truth for HashAgg.
func AggOutputSchema(in vector.Schema, groupCols []int, aggs []AggSpec) vector.Schema {
	var sch vector.Schema
	for _, gc := range groupCols {
		t := in[gc].Type
		if t == vector.I16 || t == vector.I32 {
			t = vector.I64
		}
		sch = append(sch, vector.Col{Name: in[gc].Name, Type: t})
	}
	for _, a := range aggs {
		sch = append(sch, vector.Col{Name: a.As, Type: aggType(in, a)})
	}
	return sch
}

func aggType(in vector.Schema, a AggSpec) vector.Type {
	switch a.Fn {
	case AggCount:
		return vector.I64
	case AggAvg:
		return vector.F64
	case AggFirst:
		t := in[a.Col].Type
		if t == vector.I16 || t == vector.I32 {
			return vector.I64
		}
		return t
	default:
		return primitive.AggrValueType(in[a.Col].Type)
	}
}

// Open implements Operator.
func (h *HashAgg) Open() error { return h.child.Open() }

// Next implements Operator: the first call drains the child and builds the
// result; subsequent calls stream it.
func (h *HashAgg) Next() (*vector.Batch, error) {
	if h.result == nil {
		if err := h.build(); err != nil {
			return nil, err
		}
	}
	return h.scan.Next()
}

// Close implements Operator.
func (h *HashAgg) Close() { h.child.Close() }

func (h *HashAgg) build() error {
	in := h.child.Schema()
	vecSize := h.sess.VectorSize

	// Key strategy.
	keyKind := "none"
	switch {
	case len(h.groupCols) == 1:
		if in[h.groupCols[0]].Type == vector.Str {
			keyKind = "str"
			h.tabStr = primitive.NewGroupTableStr(64)
		} else {
			keyKind = "i64"
			h.tabI64 = primitive.NewGroupTableI64(64)
		}
	case len(h.groupCols) == 2 && is32bit(in[h.groupCols[0]].Type) && is32bit(in[h.groupCols[1]].Type):
		// Two 32-bit integer keys pack exactly into one int64.
		keyKind = "pack2"
		h.tabI64 = primitive.NewGroupTableI64(64)
	case len(h.groupCols) > 1:
		keyKind = "multi"
		h.tabStr = primitive.NewGroupTableStr(64)
	}

	var insertInst *core.Instance
	switch keyKind {
	case "i64", "pack2":
		insertInst = h.sess.Instance("hash_insertcheck_slng_col", h.label+"/hash_insertcheck_slng_col#0")
	case "str", "multi":
		insertInst = h.sess.Instance("hash_insertcheck_str_col", h.label+"/hash_insertcheck_str_col#0")
	}
	var concatInsts []*core.Instance

	// Aggregate state.
	h.accI64 = make([]*primitive.AccI64, len(h.aggs))
	h.accF64 = make([]*primitive.AccF64, len(h.aggs))
	avgCount := make([]*primitive.AccI64, len(h.aggs))
	h.firstAgg = make(map[int]*capture)
	aggInsts := make([]*core.Instance, len(h.aggs))
	avgCntInsts := make([]*core.Instance, len(h.aggs))
	for ai, a := range h.aggs {
		switch a.Fn {
		case AggFirst:
			h.firstAgg[ai] = &capture{t: in[a.Col].Type}
			continue
		case AggCount:
			h.accI64[ai] = &primitive.AccI64{}
			aggInsts[ai] = h.sess.Instance("aggr_count_col", labelf("%s/aggr_count_col#%d", h.label, ai))
			continue
		}
		vt := primitive.AggrValueType(in[a.Col].Type)
		fnName := string(a.Fn)
		if a.Fn == AggAvg {
			fnName = "sum"
			avgCount[ai] = &primitive.AccI64{}
			avgCntInsts[ai] = h.sess.Instance("aggr_count_col", labelf("%s/aggr_count_col#avg%d", h.label, ai))
		}
		if vt == vector.F64 {
			h.accF64[ai] = &primitive.AccF64{}
			sig := "aggr_" + fnName + "_dbl_col"
			aggInsts[ai] = h.sess.Instance(sig, labelf("%s/%s#%d", h.label, sig, ai))
		} else {
			h.accI64[ai] = &primitive.AccI64{}
			sig := "aggr_" + fnName + "_slng_col"
			aggInsts[ai] = h.sess.Instance(sig, labelf("%s/%s#%d", h.label, sig, ai))
		}
	}

	// First-value capture of group columns.
	h.firstGroup = make([]capture, len(h.groupCols))
	for gi, gc := range h.groupCols {
		h.firstGroup[gi].t = in[gc].Type
	}

	keyScratch := vector.New(vector.I64, vecSize)
	gidVec := vector.New(vector.I32, vecSize)
	widenScratch := vector.New(vector.I64, vecSize)

	for {
		b, err := h.child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if b.Live() == 0 {
			continue
		}
		if b.N > keyScratch.Cap() {
			// Same guard as Select/HashJoin: an over-wide child batch must
			// grow the scratch, not write past it.
			keyScratch = vector.New(vector.I64, b.N)
			gidVec = vector.New(vector.I32, b.N)
			widenScratch = vector.New(vector.I64, b.N)
		}

		// 1. Group ids.
		var gids *vector.Vector
		groups := 1
		switch keyKind {
		case "none":
			gids = nil
		case "i64":
			primitive.WidenToI64(b.Cols[h.groupCols[0]], b.Sel, b.N, keyScratch)
			call := &core.Call{N: b.N, Sel: b.Sel, In: []*vector.Vector{keyScratch}, Res: gidVec, Aux: h.tabI64}
			insertInst.Run(h.sess.Ctx, call)
			gids = gidVec
			groups = h.tabI64.Groups()
		case "pack2":
			h.pack2(b, keyScratch)
			call := &core.Call{N: b.N, Sel: b.Sel, In: []*vector.Vector{keyScratch}, Res: gidVec, Aux: h.tabI64}
			insertInst.Run(h.sess.Ctx, call)
			gids = gidVec
			groups = h.tabI64.Groups()
		case "str":
			call := &core.Call{N: b.N, Sel: b.Sel, In: []*vector.Vector{b.Cols[h.groupCols[0]]}, Res: gidVec, Aux: h.tabStr}
			insertInst.Run(h.sess.Ctx, call)
			gids = gidVec
			groups = h.tabStr.Groups()
		case "multi":
			keyCol := h.stringify(b, h.groupCols[0])
			for ki := 1; ki < len(h.groupCols); ki++ {
				next := h.stringify(b, h.groupCols[ki])
				if len(concatInsts) < ki {
					concatInsts = append(concatInsts, h.sess.Instance("map_concat_str_col_str_col",
						labelf("%s/map_concat_str_col_str_col#%d", h.label, ki-1)))
				}
				res := vector.New(vector.Str, b.N)
				call := &core.Call{N: b.N, Sel: b.Sel, In: []*vector.Vector{keyCol, next}, Res: res}
				concatInsts[ki-1].Run(h.sess.Ctx, call)
				keyCol = res
			}
			call := &core.Call{N: b.N, Sel: b.Sel, In: []*vector.Vector{keyCol}, Res: gidVec, Aux: h.tabStr}
			insertInst.Run(h.sess.Ctx, call)
			gids = gidVec
			groups = h.tabStr.Groups()
		}

		// 2. Capture first-seen group column values.
		h.captureFirst(b, gids, groups)

		// 3. Aggregate updates.
		for ai, a := range h.aggs {
			if a.Fn == AggFirst {
				continue
			}
			if acc := h.accI64[ai]; acc != nil {
				init := int64(0)
				switch a.Fn {
				case AggMin:
					init = math.MaxInt64
				case AggMax:
					init = math.MinInt64
				}
				acc.Grow(groups, init)
			}
			if acc := h.accF64[ai]; acc != nil {
				init := 0.0
				switch a.Fn {
				case AggMin:
					init = math.Inf(1)
				case AggMax:
					init = math.Inf(-1)
				}
				acc.Grow(groups, init)
			}
			var call *core.Call
			switch {
			case a.Fn == AggCount:
				call = &core.Call{N: b.N, Sel: b.Sel, In: []*vector.Vector{nil, gids}, Aux: h.accI64[ai]}
			case h.accF64[ai] != nil:
				call = &core.Call{N: b.N, Sel: b.Sel, In: []*vector.Vector{b.Cols[a.Col], gids}, Aux: h.accF64[ai]}
			default:
				primitive.WidenToI64(b.Cols[a.Col], b.Sel, b.N, widenScratch)
				call = &core.Call{N: b.N, Sel: b.Sel, In: []*vector.Vector{widenScratch, gids}, Aux: h.accI64[ai]}
			}
			aggInsts[ai].Run(h.sess.Ctx, call)
			if a.Fn == AggAvg {
				avgCount[ai].Grow(groups, 0)
				cntCall := &core.Call{N: b.N, Sel: b.Sel, In: []*vector.Vector{nil, gids}, Aux: avgCount[ai]}
				avgCntInsts[ai].Run(h.sess.Ctx, cntCall)
			}
		}
		chargeOp(h.sess, perBatchOverhead)
	}

	// Finalize.
	groups := 1
	switch keyKind {
	case "i64", "pack2":
		groups = h.tabI64.Groups()
	case "str", "multi":
		groups = h.tabStr.Groups()
	}
	if keyKind == "none" {
		// Global aggregate: exactly one group even with no input.
		for ai, a := range h.aggs {
			if acc := h.accI64[ai]; acc != nil {
				init := int64(0)
				switch a.Fn {
				case AggMin:
					init = math.MaxInt64
				case AggMax:
					init = math.MinInt64
				}
				acc.Grow(1, init)
			}
			if acc := h.accF64[ai]; acc != nil {
				acc.Grow(1, 0)
			}
			if avgCount[ai] != nil {
				avgCount[ai].Grow(1, 0)
			}
		}
	}

	sch := h.Schema()
	cols := make([]*vector.Vector, 0, len(sch))
	for gi := range h.groupCols {
		cols = append(cols, h.firstGroup[gi].toVector())
	}
	for ai, a := range h.aggs {
		switch {
		case a.Fn == AggFirst:
			cols = append(cols, h.firstAgg[ai].toVector())
		case a.Fn == AggAvg:
			out := make([]float64, groups)
			cnt := avgCount[ai].Acc
			if h.accF64[ai] != nil {
				for g := 0; g < groups; g++ {
					if cnt[g] > 0 {
						out[g] = h.accF64[ai].Acc[g] / float64(cnt[g])
					}
				}
			} else {
				for g := 0; g < groups; g++ {
					if cnt[g] > 0 {
						out[g] = float64(h.accI64[ai].Acc[g]) / float64(cnt[g])
					}
				}
			}
			cols = append(cols, vector.FromF64(out))
		case h.accF64[ai] != nil:
			cols = append(cols, vector.FromF64(h.accF64[ai].Acc[:groups]))
		default:
			cols = append(cols, vector.FromI64(h.accI64[ai].Acc[:groups]))
		}
	}
	h.result = NewTable(h.label, sch, cols)
	h.scan = NewScan(h.sess, h.result)
	return h.scan.Open()
}

// captureFirst records group-column (and AggFirst) values the first time
// each group id appears; insertcheck assigns dense ids in first-seen
// order, so a value belongs to a new group exactly when gid == captured.
func (h *HashAgg) captureFirst(b *vector.Batch, gids *vector.Vector, groups int) {
	capture1 := func(i int32) {
		g := int32(0)
		if gids != nil {
			g = gids.I32()[i]
		}
		for gi, gc := range h.groupCols {
			if int(g) == h.firstGroup[gi].len() {
				h.firstGroup[gi].add(b.Cols[gc], i)
			}
		}
		for ai, cp := range h.firstAgg {
			if int(g) == cp.len() {
				cp.add(b.Cols[h.aggs[ai].Col], i)
			}
		}
	}
	if b.Sel != nil {
		for _, i := range b.Sel {
			capture1(i)
		}
	} else {
		for i := 0; i < b.N; i++ {
			capture1(int32(i))
		}
	}
}

func is32bit(t vector.Type) bool { return t == vector.I16 || t == vector.I32 }

// pack2 packs two 32-bit integer group columns into one int64 key column
// (exact: high word | low word).
func (h *HashAgg) pack2(b *vector.Batch, res *vector.Vector) {
	a := b.Cols[h.groupCols[0]]
	c := b.Cols[h.groupCols[1]]
	out := res.I64()
	pack := func(i int32) {
		out[i] = int64(uint64(uint32(a.GetI64(int(i))))<<32 | uint64(uint32(c.GetI64(int(i)))))
	}
	if b.Sel != nil {
		for _, i := range b.Sel {
			pack(i)
		}
	} else {
		for i := 0; i < b.N; i++ {
			pack(int32(i))
		}
	}
	res.SetLen(b.N)
	h.sess.Ctx.OperatorCycles += 2 * float64(b.Live())
}

// stringify converts a column to strings for composite keys (plain Go:
// key packing is not part of the paper's flavor sets).
func (h *HashAgg) stringify(b *vector.Batch, col int) *vector.Vector {
	src := b.Cols[col]
	if src.Type() == vector.Str {
		return src
	}
	out := vector.New(vector.Str, b.N)
	s := out.Str()
	conv := func(i int32) {
		switch src.Type() {
		case vector.F64:
			s[i] = strconv.FormatFloat(src.F64()[i], 'g', -1, 64)
		default:
			s[i] = strconv.FormatInt(src.GetI64(int(i)), 10)
		}
	}
	if b.Sel != nil {
		for _, i := range b.Sel {
			conv(i)
		}
	} else {
		for i := 0; i < b.N; i++ {
			conv(int32(i))
		}
	}
	out.SetLen(b.N)
	h.sess.Ctx.OperatorCycles += 8 * float64(b.Live())
	return out
}
