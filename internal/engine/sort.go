package engine

import (
	"math"
	"sort"

	"microadapt/internal/core"
	"microadapt/internal/vector"
)

// SortKey describes one ordering column.
type SortKey struct {
	Col  int
	Desc bool
}

// Asc sorts ascending on col.
func Asc(col int) SortKey { return SortKey{Col: col} }

// Desc sorts descending on col.
func Desc(col int) SortKey { return SortKey{Col: col, Desc: true} }

// Sort is the blocking order-by operator: it materializes its input, sorts
// by the keys and streams the result. Sorting is control logic and costs
// operator cycles (n log n), not primitive cycles.
type Sort struct {
	sess  *core.Session
	child Operator
	keys  []SortKey
	limit int // 0 = no limit

	out  *Table
	scan *Scan
}

// NewSort builds a Sort.
func NewSort(sess *core.Session, child Operator, keys ...SortKey) *Sort {
	return &Sort{sess: sess, child: child, keys: keys}
}

// NewTopN builds a Sort that keeps only the first n output rows.
func NewTopN(sess *core.Session, child Operator, n int, keys ...SortKey) *Sort {
	s := NewSort(sess, child, keys...)
	s.limit = n
	return s
}

// Schema implements Operator.
func (s *Sort) Schema() vector.Schema { return s.child.Schema() }

// Open implements Operator.
func (s *Sort) Open() error {
	tab, err := Materialize(s.child)
	if err != nil {
		return err
	}
	n := tab.Rows()
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ia, ib := int(perm[a]), int(perm[b])
		for _, k := range s.keys {
			c := compareAt(tab.Cols[k.Col], ia, ib)
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if n > 1 {
		chargeOp(s.sess, 3*float64(n)*math.Log2(float64(n)))
	}
	if s.limit > 0 && s.limit < n {
		perm = perm[:s.limit]
	}
	// Apply the permutation.
	cols := make([]*vector.Vector, len(tab.Cols))
	for ci, src := range tab.Cols {
		dst := vector.New(src.Type(), len(perm))
		dst.SetLen(len(perm))
		for j, i := range perm {
			copyAt(src, dst, int(i), j)
		}
		cols[ci] = dst
	}
	s.out = NewTable("sorted", tab.Sch, cols)
	s.scan = NewScan(s.sess, s.out)
	return s.scan.Open()
}

// Next implements Operator.
func (s *Sort) Next() (*vector.Batch, error) { return s.scan.Next() }

// Close implements Operator.
func (s *Sort) Close() {}

func compareAt(v *vector.Vector, a, b int) int {
	switch v.Type() {
	case vector.F64:
		x, y := v.F64()[a], v.F64()[b]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case vector.Str:
		x, y := v.Str()[a], v.Str()[b]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	default:
		x, y := v.GetI64(a), v.GetI64(b)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	}
}

func copyAt(src, dst *vector.Vector, from, to int) {
	switch src.Type() {
	case vector.I16:
		dst.I16()[to] = src.I16()[from]
	case vector.I32:
		dst.I32()[to] = src.I32()[from]
	case vector.I64:
		dst.I64()[to] = src.I64()[from]
	case vector.F64:
		dst.F64()[to] = src.F64()[from]
	case vector.Str:
		dst.Str()[to] = src.Str()[from]
	}
}

// Limit truncates its child's stream to n live tuples.
type Limit struct {
	sess  *core.Session
	child Operator
	n     int
	seen  int
}

// NewLimit builds a Limit.
func NewLimit(sess *core.Session, child Operator, n int) *Limit {
	return &Limit{sess: sess, child: child, n: n}
}

// Schema implements Operator.
func (l *Limit) Schema() vector.Schema { return l.child.Schema() }

// Open implements Operator.
func (l *Limit) Open() error {
	l.seen = 0
	return l.child.Open()
}

// Next implements Operator.
func (l *Limit) Next() (*vector.Batch, error) {
	if l.seen >= l.n {
		return nil, nil
	}
	b, err := l.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	live := b.Live()
	if l.seen+live > l.n {
		want := l.n - l.seen
		if b.Sel != nil {
			b.Sel = b.Sel[:want]
		} else {
			sel := make([]int32, want)
			for i := range sel {
				sel[i] = int32(i)
			}
			b.Sel = sel
		}
		live = want
	}
	l.seen += live
	return b, nil
}

// Close implements Operator.
func (l *Limit) Close() { l.child.Close() }
