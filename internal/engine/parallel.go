package engine

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"microadapt/internal/core"
	"microadapt/internal/vector"
)

// Morsel is one partition of a range-partitioned scan: partition Part
// processes the contiguous rows [Lo, Hi) of the scanned table.
type Morsel struct {
	Part int
	Lo   int
	Hi   int
}

// Rows returns the morsel's row count.
func (m Morsel) Rows() int { return m.Hi - m.Lo }

// FragmentBuilder constructs the pipeline fragment of one partition: the
// operator tree above a range scan of the morsel's rows, built entirely on
// the fragment session fs (a NewRangeScan over m.Lo..m.Hi plus whatever
// Select/Project stack the plan runs below the exchange). Builders must use
// the same plan labels as the serial plan; fs tags them with the partition
// so the per-partition bandits stay distinct inside the query while
// collapsing to one primitive.InstanceKey for cross-session knowledge.
//
// ParallelPipeline also invokes the builder for the serial fallback, with
// the coordinator session itself and the full row range — so one builder
// expresses both the serial and the partitioned shape of a pipeline.
type FragmentBuilder func(fs *core.Session, m Morsel) (Operator, error)

// minMorselRows is the smallest partition worth a goroutine and a fragment
// session; scans smaller than two morsels of this size run serially no
// matter the configured parallelism.
const minMorselRows = 512

// exchangeBufBatches bounds how many rebatched chunks one fragment may have
// in flight ahead of the consumer. It is the exchange's backpressure knob:
// the merge holds at most P*exchangeBufBatches vector-size chunks instead
// of every fragment's full output, and a fragment that runs far ahead of
// the partition-ordered consumer blocks on its channel rather than
// buffering its whole partition.
const exchangeBufBatches = 8

// errAbandoned is the producer-side signal that the exchange was closed
// (or failed) before this fragment's output was fully consumed.
var errAbandoned = errors.New("engine: exchange abandoned")

// fragment pairs one morsel with the session and operator tree processing
// it, plus the bounded channel its rebatched output crosses the exchange
// on. err is written (if at all) before ch is closed, so a consumer that
// sees the channel closed reads err race-free.
type fragment struct {
	morsel Morsel
	sess   *core.Session
	root   Operator

	ch  chan *vector.Batch
	err error
}

// Parallel is the fan-out half of the engine's Parallel/Exchange pair: a
// range-partitioned pipeline of P fragments, each owning a morsel of the
// scanned rows, a fragment session (spawned through core.Session.Fragment,
// so the coordinator can harvest every partition's learned knowledge
// afterwards) and the operator tree the FragmentBuilder put above its
// morsel. Construction is eager and single-threaded; execution — one
// goroutine per fragment — starts when the Exchange above it opens.
type Parallel struct {
	sess  *core.Session
	frags []*fragment

	fanoutDec *core.Decision // set by ParallelPipeline; observed after run
	rows      int
}

// NewParallel partitions rows into parts morsels and builds one pipeline
// fragment per morsel. parts must be >= 2 (use ParallelPipeline for the
// serial fallback decision); rows are split evenly with the remainder
// spread over the leading partitions.
func NewParallel(sess *core.Session, rows, parts int, build FragmentBuilder) (*Parallel, error) {
	if parts < 2 {
		return nil, fmt.Errorf("engine: NewParallel needs >= 2 partitions, got %d", parts)
	}
	p := &Parallel{sess: sess, rows: rows}
	for i := 0; i < parts; i++ {
		m := Morsel{Part: i, Lo: rows * i / parts, Hi: rows * (i + 1) / parts}
		fs := sess.Fragment(i)
		root, err := build(fs, m)
		if err != nil {
			return nil, fmt.Errorf("engine: building fragment %d: %w", i, err)
		}
		p.frags = append(p.frags, &fragment{morsel: m, sess: fs, root: root})
	}
	return p, nil
}

// rebatcher coalesces a fragment's output batches into dense, owned chunks
// of about the session's vector size before they cross the exchange
// channel. Fragment roots emit scratch-backed, often sparse batches that
// must be copied before the producer's next Next reuses the scratch, and
// rebatching to vector-size chunks keeps the downstream batch count (and
// so the per-batch overhead accounting) at the level of the old
// materialize-then-slice exchange even under selective predicates.
type rebatcher struct {
	sch    vector.Schema
	target int
	acc    []colAcc
	n      int
}

func newRebatcher(sch vector.Schema, target int) *rebatcher {
	if target < 1 {
		target = 1
	}
	return &rebatcher{sch: sch, target: target}
}

func (r *rebatcher) add(b *vector.Batch) {
	if r.acc == nil {
		r.acc = make([]colAcc, len(r.sch))
		for i, c := range r.sch {
			r.acc[i].t = c.Type
		}
	}
	for ci := range r.sch {
		r.acc[ci].appendLive(b.Cols[ci], b.Sel, b.N)
	}
	r.n += b.Live()
}

func (r *rebatcher) take() *vector.Batch {
	cols := make([]*vector.Vector, len(r.sch))
	for i := range r.acc {
		cols[i] = r.acc[i].vector()
	}
	b := &vector.Batch{N: r.n, Cols: cols}
	r.acc, r.n = nil, 0
	return b
}

// Exchange is the merge half of the pair: an Operator that starts the
// Parallel's fragments on its Open and streams their output chunks in
// partition order as they are produced. Because morsels are contiguous row
// ranges and fragments preserve order, the merged stream carries exactly
// the rows, in exactly the order, of the serial pipeline — which is what
// makes parallel plans bit-identical to serial ones (order-sensitive
// consumers like merge joins and first-seen group numbering included).
//
// Unlike the original barrier exchange, Open does not run fragments to
// completion: each fragment hands rebatched, self-owned chunks through a
// bounded channel, so the downstream consumer overlaps with upstream
// fragment execution while total buffering stays at P*exchangeBufBatches
// chunks. The order contract is kept by consuming the channels strictly in
// partition order; later fragments compute ahead until their channel
// fills, then block (backpressure) instead of materializing their whole
// partition.
//
// The exchange boundary is also where the partitions' learned flavor
// knowledge merges: fragment sessions are registered on the coordinator
// session (core.Session.Fragments), so knowledge harvesting walks all P
// per-partition bandits, and the fragments' virtual cycle accounting is
// folded into the coordinator's ExecCtx when the stream ends (or the
// exchange is closed early — a Limit above it abandons the producers, and
// whatever work they did is still accounted).
type Exchange struct {
	par    *Parallel
	frag   int // partition currently being streamed
	opened bool

	done   chan struct{} // closed to release blocked producers
	wg     sync.WaitGroup
	start  time.Time
	folded bool
}

// NewExchange builds the merging operator over a Parallel.
func NewExchange(p *Parallel) *Exchange { return &Exchange{par: p} }

// Schema implements Operator: fragments share one schema.
func (e *Exchange) Schema() vector.Schema { return e.par.frags[0].root.Schema() }

// Open implements Operator: it starts one producer goroutine per fragment
// and returns immediately; Next then streams the fragments' chunks in
// partition order as they arrive. Fragment errors (a builder bug, a
// primitive panic) surface from Next when the consumer reaches the failed
// fragment's position in the merge order.
func (e *Exchange) Open() error {
	e.frag = 0
	e.folded = false
	e.start = time.Now()
	e.done = make(chan struct{})
	for _, f := range e.par.frags {
		f.ch = make(chan *vector.Batch, exchangeBufBatches)
		f.err = nil
		e.wg.Add(1)
		go e.produce(f)
	}
	e.opened = true
	return nil
}

// produce drains one fragment's operator tree, rebatching its output into
// vector-size chunks and sending them down the fragment's bounded channel.
// A panic inside the fragment — a primitive bug must not kill the whole
// service — is converted into the fragment's error. err is always written
// before ch closes.
func (e *Exchange) produce(f *fragment) {
	defer e.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			f.err = fmt.Errorf("engine: fragment %d panicked: %v", f.morsel.Part, r)
		}
		close(f.ch)
	}()
	rb := newRebatcher(f.root.Schema(), e.par.sess.VectorSize)
	err := Drain(f.root, func(b *vector.Batch) error {
		if rb.n > 0 && rb.n+b.Live() > rb.target {
			if !e.send(f, rb.take()) {
				return errAbandoned
			}
		}
		rb.add(b)
		if rb.n >= rb.target {
			if !e.send(f, rb.take()) {
				return errAbandoned
			}
		}
		return nil
	})
	if err != nil {
		if !errors.Is(err, errAbandoned) {
			f.err = err
		}
		return
	}
	if rb.n > 0 {
		e.send(f, rb.take())
	}
}

// send delivers one chunk unless the exchange has been closed or failed;
// it reports whether the producer should keep going.
func (e *Exchange) send(f *fragment, b *vector.Batch) bool {
	select {
	case f.ch <- b:
		return true
	case <-e.done:
		return false
	}
}

// Next implements Operator: it streams the fragments' chunks in partition
// order, blocking on the current partition's channel — which is how the
// consumer overlaps with every still-running upstream fragment.
func (e *Exchange) Next() (*vector.Batch, error) {
	if !e.opened {
		return nil, fmt.Errorf("engine: Exchange.Next before Open")
	}
	for e.frag < len(e.par.frags) {
		f := e.par.frags[e.frag]
		b, ok := <-f.ch
		if ok {
			chargeOp(e.par.sess, perBatchOverhead)
			return b, nil
		}
		if f.err != nil {
			err := f.err
			e.shutdown()
			return nil, err
		}
		e.frag++
	}
	e.shutdown()
	return nil, nil
}

// shutdown releases any still-blocked producers, waits for all of them to
// exit, observes the fan-out decision with the real wall time of the
// streamed pipeline, and folds the fragments' cycle accounting into the
// coordinator session so whole-query accounting (JobStats, Table 1
// breakdowns) sees the sum of all partitions. It runs exactly once per
// Open, whether the stream was fully drained, failed, or closed early.
func (e *Exchange) shutdown() {
	if e.folded {
		return
	}
	e.folded = true
	close(e.done)
	e.wg.Wait()
	if d := e.par.fanoutDec; d != nil {
		// The fan-out decision's signal is real wall time, not simulated
		// cycles: partitioning does not change the virtual cycle sum, only
		// how long the overlapped pipeline takes on actual cores. Units are
		// nanoseconds — consistent within the decision, which is all
		// Observe requires.
		d.Observe(e.par.rows, float64(time.Since(e.start).Nanoseconds()))
	}
	sess := e.par.sess
	for _, f := range e.par.frags {
		sess.Ctx.PrimCycles += f.sess.Ctx.PrimCycles
		sess.Ctx.OperatorCycles += f.sess.Ctx.OperatorCycles
		chargeOp(sess, perBatchOverhead) // per-partition merge overhead
	}
}

// Close implements Operator. An early Close — a Limit upstream satisfied,
// an error elsewhere in the plan — abandons the producers via done and
// still folds whatever cycle accounting the fragments accumulated; opened
// resets so a Next after Close errors instead of reading stale channels.
func (e *Exchange) Close() {
	if e.opened {
		e.shutdown()
	}
	e.opened = false
}

// PartitionCount returns the fan-out ParallelPipeline uses for a scan of
// rows at pipeline parallelism p: min(p, rows/minMorselRows), floored at 1
// (serial). The physical planner calls it to annotate explain output with
// the same decision the runtime will take.
func PartitionCount(p, rows int) int {
	if max := rows / minMorselRows; p > max {
		p = max
	}
	if p < 2 {
		return 1
	}
	return p
}

// fanoutArms are the arms of the per-pipeline fan-out decision: run the
// eligible partition count as configured, or halve it. Halving wins when
// the morsels are small enough that per-fragment session and goroutine
// overhead eats the speedup; the configured count wins on scan-heavy
// pipelines. When the eligible count is already 2 the arms coincide —
// harmless, the decision just learns they cost the same.
var fanoutArms = []string{"xfull", "xhalf"}

// ParallelPipeline builds the scan-heavy prefix of a plan either serially
// or as a Parallel/Exchange fan-out, depending on the session's pipeline
// parallelism and the scanned row count. label is the pipeline's plan
// position (the top node's label), which keys the fan-out decision.
//
// With parallelism P > 1 and at least two minMorselRows-sized morsels,
// rows are range-partitioned into PartitionCount(P, rows) fragments —
// subject to the "parallelism" decision, which may halve the fan-out.
// Otherwise the builder runs once with the coordinator session and the
// full range, producing exactly the serial plan (identical instance
// labels included). Either way the rows streamed are bit-identical; the
// decision only moves wall time.
func ParallelPipeline(sess *core.Session, label string, rows int, build FragmentBuilder) (Operator, error) {
	parts := PartitionCount(sess.Parallelism(), rows)
	if parts < 2 {
		return build(sess, Morsel{Part: 0, Lo: 0, Hi: rows})
	}
	dec := sess.Decision("parallelism", label+"/parallelism", fanoutArms)
	if fanoutArms[dec.Choose(core.Features{})] == "xhalf" && parts/2 >= 2 {
		parts /= 2
	}
	par, err := NewParallel(sess, rows, parts, build)
	if err != nil {
		return nil, err
	}
	par.fanoutDec = dec
	return NewExchange(par), nil
}
