package engine

import (
	"fmt"
	"sync"
	"time"

	"microadapt/internal/core"
	"microadapt/internal/vector"
)

// Morsel is one partition of a range-partitioned scan: partition Part
// processes the contiguous rows [Lo, Hi) of the scanned table.
type Morsel struct {
	Part int
	Lo   int
	Hi   int
}

// Rows returns the morsel's row count.
func (m Morsel) Rows() int { return m.Hi - m.Lo }

// FragmentBuilder constructs the pipeline fragment of one partition: the
// operator tree above a range scan of the morsel's rows, built entirely on
// the fragment session fs (a NewRangeScan over m.Lo..m.Hi plus whatever
// Select/Project stack the plan runs below the exchange). Builders must use
// the same plan labels as the serial plan; fs tags them with the partition
// so the per-partition bandits stay distinct inside the query while
// collapsing to one primitive.InstanceKey for cross-session knowledge.
//
// ParallelPipeline also invokes the builder for the serial fallback, with
// the coordinator session itself and the full row range — so one builder
// expresses both the serial and the partitioned shape of a pipeline.
type FragmentBuilder func(fs *core.Session, m Morsel) (Operator, error)

// minMorselRows is the smallest partition worth a goroutine and a fragment
// session; scans smaller than two morsels of this size run serially no
// matter the configured parallelism.
const minMorselRows = 512

// fragment pairs one morsel with the session and operator tree processing it.
type fragment struct {
	morsel Morsel
	sess   *core.Session
	root   Operator

	out *Table
	err error
}

// Parallel is the fan-out half of the engine's Parallel/Exchange pair: a
// range-partitioned pipeline of P fragments, each owning a morsel of the
// scanned rows, a fragment session (spawned through core.Session.Fragment,
// so the coordinator can harvest every partition's learned knowledge
// afterwards) and the operator tree the FragmentBuilder put above its
// morsel. Construction is eager and single-threaded; execution — one
// goroutine per fragment — happens when the Exchange above it opens.
type Parallel struct {
	sess  *core.Session
	frags []*fragment

	fanoutDec *core.Decision // set by ParallelPipeline; observed after run
	rows      int
}

// NewParallel partitions rows into parts morsels and builds one pipeline
// fragment per morsel. parts must be >= 2 (use ParallelPipeline for the
// serial fallback decision); rows are split evenly with the remainder
// spread over the leading partitions.
func NewParallel(sess *core.Session, rows, parts int, build FragmentBuilder) (*Parallel, error) {
	if parts < 2 {
		return nil, fmt.Errorf("engine: NewParallel needs >= 2 partitions, got %d", parts)
	}
	p := &Parallel{sess: sess, rows: rows}
	for i := 0; i < parts; i++ {
		m := Morsel{Part: i, Lo: rows * i / parts, Hi: rows * (i + 1) / parts}
		fs := sess.Fragment(i)
		root, err := build(fs, m)
		if err != nil {
			return nil, fmt.Errorf("engine: building fragment %d: %w", i, err)
		}
		p.frags = append(p.frags, &fragment{morsel: m, sess: fs, root: root})
	}
	return p, nil
}

// run executes every fragment on its own goroutine and blocks until all
// finish. Each goroutine opens its root, streams it into one materialized
// partition table (the postprocess boundary of the fragment — a single
// reused scratch batch, no per-batch vector allocation) and closes it; a
// panic inside a fragment — a primitive bug must not kill the whole
// service — is converted into that fragment's error.
func (p *Parallel) run() error {
	var wg sync.WaitGroup
	for _, f := range p.frags {
		f := f
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					f.err = fmt.Errorf("engine: fragment %d panicked: %v", f.morsel.Part, r)
				}
			}()
			f.out, f.err = Materialize(f.root)
		}()
	}
	wg.Wait()
	for _, f := range p.frags {
		if f.err != nil {
			return f.err
		}
	}
	return nil
}

// Exchange is the merge half of the pair: an Operator that runs the
// Parallel's fragments to completion on its Open and then streams their
// output batches in partition order. Because morsels are contiguous row
// ranges and fragments preserve order, the merged stream carries exactly
// the rows, in exactly the order, of the serial pipeline — which is what
// makes parallel plans bit-identical to serial ones (order-sensitive
// consumers like merge joins and first-seen group numbering included).
//
// The exchange boundary is also where the partitions' learned flavor
// knowledge merges: fragment sessions are registered on the coordinator
// session (core.Session.Fragments), so knowledge harvesting walks all P
// per-partition bandits, and the fragments' virtual cycle accounting is
// folded into the coordinator's ExecCtx here.
//
// Known tradeoff: Open is a barrier — every fragment runs to completion
// and its output is materialized before downstream consumption starts, so
// the exchange holds the full filtered/projected partition output in
// memory and the consumer cannot overlap with the slowest fragment. At the
// lab scale factors this buys exact partition-order determinism cheaply; a
// streaming partition-order merge (consume fragment 0 while later
// fragments still run) is the upgrade path for larger-than-memory scans.
type Exchange struct {
	par    *Parallel
	frag   int // partition currently being streamed
	pos    int // next row within that partition's table
	opened bool
}

// NewExchange builds the merging operator over a Parallel.
func NewExchange(p *Parallel) *Exchange { return &Exchange{par: p} }

// Schema implements Operator: fragments share one schema.
func (e *Exchange) Schema() vector.Schema { return e.par.frags[0].root.Schema() }

// Open implements Operator: it runs all fragments concurrently and merges
// their cycle accounting into the coordinator session; Next then streams
// the partition tables in partition order.
func (e *Exchange) Open() error {
	e.frag, e.pos = 0, 0
	start := time.Now()
	if err := e.par.run(); err != nil {
		return err
	}
	if d := e.par.fanoutDec; d != nil {
		// The fan-out decision's signal is real wall time, not simulated
		// cycles: partitioning does not change the virtual cycle sum, only
		// how long the barrier takes on actual cores. Units are nanoseconds
		// — consistent within the decision, which is all Observe requires.
		d.Observe(e.par.rows, float64(time.Since(start).Nanoseconds()))
	}
	sess := e.par.sess
	for _, f := range e.par.frags {
		// The fragments' work happened on private ExecCtxs; fold it into
		// the coordinator so whole-query accounting (JobStats, Table 1
		// breakdowns) sees the sum of all partitions.
		sess.Ctx.PrimCycles += f.sess.Ctx.PrimCycles
		sess.Ctx.OperatorCycles += f.sess.Ctx.OperatorCycles
		chargeOp(sess, perBatchOverhead) // per-partition merge overhead
	}
	e.opened = true
	return nil
}

// Next implements Operator: it streams vector-size, zero-copy slices of
// the materialized partition tables, in partition order.
func (e *Exchange) Next() (*vector.Batch, error) {
	if !e.opened {
		return nil, fmt.Errorf("engine: Exchange.Next before Open")
	}
	for e.frag < len(e.par.frags) {
		t := e.par.frags[e.frag].out
		if e.pos >= t.Rows() {
			e.frag++
			e.pos = 0
			continue
		}
		lo := e.pos
		hi := lo + e.par.sess.VectorSize
		if hi > t.Rows() {
			hi = t.Rows()
		}
		e.pos = hi
		cols := make([]*vector.Vector, len(t.Cols))
		for i, c := range t.Cols {
			cols[i] = c.Slice(lo, hi)
		}
		chargeOp(e.par.sess, perBatchOverhead)
		return &vector.Batch{N: hi - lo, Cols: cols}, nil
	}
	return nil, nil
}

// Close implements Operator. Fragments were opened and closed by their own
// goroutines during Open, so releasing the partition tables is all that is
// left; opened resets so a Next after Close errors instead of hitting the
// nil tables.
func (e *Exchange) Close() {
	for _, f := range e.par.frags {
		f.out = nil
	}
	e.opened = false
}

// PartitionCount returns the fan-out ParallelPipeline uses for a scan of
// rows at pipeline parallelism p: min(p, rows/minMorselRows), floored at 1
// (serial). The physical planner calls it to annotate explain output with
// the same decision the runtime will take.
func PartitionCount(p, rows int) int {
	if max := rows / minMorselRows; p > max {
		p = max
	}
	if p < 2 {
		return 1
	}
	return p
}

// fanoutArms are the arms of the per-pipeline fan-out decision: run the
// eligible partition count as configured, or halve it. Halving wins when
// the morsels are small enough that per-fragment session and goroutine
// overhead eats the speedup; the configured count wins on scan-heavy
// pipelines. When the eligible count is already 2 the arms coincide —
// harmless, the decision just learns they cost the same.
var fanoutArms = []string{"xfull", "xhalf"}

// ParallelPipeline builds the scan-heavy prefix of a plan either serially
// or as a Parallel/Exchange fan-out, depending on the session's pipeline
// parallelism and the scanned row count. label is the pipeline's plan
// position (the top node's label), which keys the fan-out decision.
//
// With parallelism P > 1 and at least two minMorselRows-sized morsels,
// rows are range-partitioned into PartitionCount(P, rows) fragments —
// subject to the "parallelism" decision, which may halve the fan-out.
// Otherwise the builder runs once with the coordinator session and the
// full range, producing exactly the serial plan (identical instance
// labels included). Either way the rows streamed are bit-identical; the
// decision only moves wall time.
func ParallelPipeline(sess *core.Session, label string, rows int, build FragmentBuilder) (Operator, error) {
	parts := PartitionCount(sess.Parallelism(), rows)
	if parts < 2 {
		return build(sess, Morsel{Part: 0, Lo: 0, Hi: rows})
	}
	dec := sess.Decision("parallelism", label+"/parallelism", fanoutArms)
	if fanoutArms[dec.Choose(core.Features{})] == "xhalf" && parts/2 >= 2 {
		parts /= 2
	}
	par, err := NewParallel(sess, rows, parts, build)
	if err != nil {
		return nil, err
	}
	par.fanoutDec = dec
	return NewExchange(par), nil
}
