package engine

import (
	"microadapt/internal/bloom"
	"microadapt/internal/core"
	"microadapt/internal/primitive"
	"microadapt/internal/vector"
)

// JoinKind selects hash-join semantics.
type JoinKind int

const (
	// InnerJoin emits probe tuples with matching build payload columns.
	InnerJoin JoinKind = iota
	// SemiJoin emits probe tuples that have a match (no build columns).
	SemiJoin
	// AntiJoin emits probe tuples without a match (no build columns).
	AntiJoin
)

// HashJoin joins a probe stream against a materialized build side on
// single integer key columns with unique build keys (the PK side of a
// PK-FK join, which is every hash join in our TPC-H plans). Probing is
// fully vectorized: an optional bloom-filter pre-filter (the loop-fission
// primitive of Table 8 / Figure 11d), a hash-table lookup primitive, and
// one fetch primitive per payload column.
type HashJoin struct {
	sess     *core.Session
	build    Operator
	probe    Operator
	label    string
	kind     JoinKind
	buildKey string // key column name on build side
	probeKey string // key column name on probe side
	payload  []string
	useBloom bool
	bitsPer  int

	sch        vector.Schema
	buildTab   *Table
	joinTab    *primitive.JoinTable
	filter     *bloom.Filter
	bloomInst  *core.Instance
	lookupInst *core.Instance
	fetchInsts []*core.Instance
	payloadIdx []int

	keyScratch  *vector.Vector
	rowScratch  *vector.Vector
	selA, selB  []int32
	probeKeyIdx int // probe-side key column, resolved once in Open
}

// HashJoinOption configures a HashJoin.
type HashJoinOption func(*HashJoin)

// WithBloom enables the bloom-filter pre-filter with the given bits per
// build key (8 is typical).
func WithBloom(bitsPerKey int) HashJoinOption {
	return func(h *HashJoin) {
		h.useBloom = true
		h.bitsPer = bitsPerKey
	}
}

// WithKind sets the join semantics (default InnerJoin).
func WithKind(k JoinKind) HashJoinOption {
	return func(h *HashJoin) { h.kind = k }
}

// NewHashJoin builds a hash join. payload names build-side columns to
// append to the probe schema (inner joins only).
func NewHashJoin(sess *core.Session, build, probe Operator, label, buildKey, probeKey string, payload []string, opts ...HashJoinOption) *HashJoin {
	h := &HashJoin{
		sess: sess, build: build, probe: probe, label: label,
		buildKey: buildKey, probeKey: probeKey, payload: payload,
	}
	for _, o := range opts {
		o(h)
	}
	return h
}

// Schema implements Operator: probe columns, then payload columns.
func (h *HashJoin) Schema() vector.Schema {
	if h.sch != nil {
		return h.sch
	}
	h.sch = append(h.sch, h.probe.Schema()...)
	if h.kind == InnerJoin {
		bs := h.build.Schema()
		for _, name := range h.payload {
			h.sch = append(h.sch, bs[bs.MustIndexOf(name)])
		}
	}
	return h.sch
}

// Open implements Operator: drains and indexes the build side.
// (Materialize opens and closes the build child.)
func (h *HashJoin) Open() error {
	tab, err := Materialize(h.build)
	if err != nil {
		return err
	}
	h.buildTab = tab

	keyCol := tab.Col(h.buildKey)
	keys := make([]int64, tab.Rows())
	kv := vector.FromI64(keys)
	primitive.WidenToI64(keyCol, nil, tab.Rows(), kv)
	h.joinTab = primitive.NewJoinTable(keys)
	// Build-side indexing is operator work, not a studied primitive.
	chargeOp(h.sess, 8*float64(tab.Rows()))

	if h.useBloom {
		bits := h.bitsPer
		if bits <= 0 {
			bits = 8
		}
		h.filter = bloom.New(tab.Rows()*bits/8, 2)
		for _, k := range keys {
			h.filter.Add(k)
		}
		chargeOp(h.sess, 6*float64(tab.Rows()))
		h.bloomInst = h.sess.Instance("sel_bloomfilter_slng_col", h.label+"/sel_bloomfilter_slng_col#0")
	}
	sig := "sel_htlookup_slng_col"
	if h.kind == AntiJoin {
		sig = "sel_htmiss_slng_col"
	}
	h.lookupInst = h.sess.Instance(sig, h.label+"/"+sig+"#0")

	if h.kind == InnerJoin {
		h.fetchInsts = make([]*core.Instance, len(h.payload))
		h.payloadIdx = make([]int, len(h.payload))
		for i, name := range h.payload {
			idx := tab.Sch.MustIndexOf(name)
			h.payloadIdx[i] = idx
			fsig := primitive.FetchSig(tab.Sch[idx].Type)
			h.fetchInsts[i] = h.sess.Instance(fsig, labelf("%s/%s#%d", h.label, fsig, i))
		}
	}

	vs := h.sess.VectorSize
	h.keyScratch = vector.New(vector.I64, vs)
	h.rowScratch = vector.New(vector.I32, vs)
	h.selA = make([]int32, vs)
	h.selB = make([]int32, vs)
	// Resolve the probe key once: a schema lookup is a linear name scan,
	// far too slow to repeat on every Next batch.
	h.probeKeyIdx = h.probe.Schema().MustIndexOf(h.probeKey)
	return h.probe.Open()
}

// Next implements Operator. Empty probe batches pass through without any
// primitive calls.
func (h *HashJoin) Next() (*vector.Batch, error) {
	b, err := h.probe.Next()
	if err != nil || b == nil {
		return nil, err
	}
	if b.Live() == 0 {
		cols := make([]*vector.Vector, 0, len(h.Schema()))
		cols = append(cols, b.Cols...)
		if h.kind == InnerJoin {
			for _, idx := range h.payloadIdx {
				cols = append(cols, vector.New(h.buildTab.Sch[idx].Type, 0))
			}
		}
		chargeOp(h.sess, perBatchOverhead)
		return &vector.Batch{N: b.N, Sel: []int32{}, Cols: cols}, nil
	}
	if b.N > len(h.selA) {
		// Probe batches wider than the session's vector size (a child fed
		// from a materialized table of another session) would overflow the
		// key/row/selection scratch; grow it to the batch.
		h.keyScratch = vector.New(vector.I64, b.N)
		h.rowScratch = vector.New(vector.I32, b.N)
		h.selA = make([]int32, b.N)
		h.selB = make([]int32, b.N)
	}
	primitive.WidenToI64(b.Cols[h.probeKeyIdx], b.Sel, b.N, h.keyScratch)

	sel := b.Sel
	if h.filter != nil {
		call := &core.Call{N: b.N, Sel: sel, In: []*vector.Vector{h.keyScratch}, SelOut: h.selA, Aux: h.filter}
		k := h.bloomInst.Run(h.sess.Ctx, call)
		sel = h.selA[:k]
	}
	call := &core.Call{N: b.N, Sel: sel, In: []*vector.Vector{h.keyScratch}, SelOut: h.selB, Res: h.rowScratch, Aux: h.joinTab}
	k := h.lookupInst.Run(h.sess.Ctx, call)
	outSel := make([]int32, k)
	copy(outSel, h.selB[:k])

	cols := make([]*vector.Vector, 0, len(h.Schema()))
	cols = append(cols, b.Cols...)
	if h.kind == InnerJoin {
		for i, idx := range h.payloadIdx {
			src := h.buildTab.Cols[idx]
			res := vector.New(src.Type(), b.N)
			res.SetLen(b.N)
			fc := &core.Call{N: b.N, Sel: outSel, In: []*vector.Vector{h.rowScratch, src}, Res: res}
			h.fetchInsts[i].Run(h.sess.Ctx, fc)
			cols = append(cols, res)
		}
	}
	chargeOp(h.sess, perBatchOverhead)
	return &vector.Batch{N: b.N, Sel: outSel, Cols: cols}, nil
}

// Close implements Operator.
func (h *HashJoin) Close() { h.probe.Close() }
