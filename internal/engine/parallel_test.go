package engine

import (
	"fmt"
	"testing"
	"time"

	"microadapt/internal/core"
	"microadapt/internal/hw"
	"microadapt/internal/primitive"
	"microadapt/internal/vector"
)

func parallelSession(t testing.TB, p int) *core.Session {
	t.Helper()
	return core.NewSession(primitive.NewDictionary(primitive.Everything()),
		hw.Machine1(), core.WithVectorSize(16), core.WithSeed(5), core.WithParallelism(p))
}

// selProjPipeline is the canonical partitionable prefix: range scan, a
// selection keeping val < cut, and a pass-through projection.
func selProjPipeline(tab *Table, cut int) FragmentBuilder {
	return func(fs *core.Session, m Morsel) (Operator, error) {
		scan := NewRangeScan(fs, tab, m.Lo, m.Hi, "id", "val")
		return NewSelect(fs, scan, "t/sel", CmpVal(1, "<", cut)), nil
	}
}

// TestRangeScanBounds: a range scan streams exactly [lo, hi), clamped.
func TestRangeScanBounds(t *testing.T) {
	s := testSession(t)
	tab := numbersTable(100)
	for _, tc := range []struct{ lo, hi, want int }{
		{0, 100, 100}, {10, 30, 20}, {90, 300, 10}, {50, 50, 0}, {-5, 7, 7}, {60, 20, 0},
	} {
		got, err := Materialize(NewRangeScan(s, tab, tc.lo, tc.hi, "id"))
		if err != nil {
			t.Fatal(err)
		}
		if got.Rows() != tc.want {
			t.Errorf("range [%d,%d): %d rows, want %d", tc.lo, tc.hi, got.Rows(), tc.want)
		}
		if tc.want > 0 {
			lo := tc.lo
			if lo < 0 {
				lo = 0
			}
			if first := got.Col("id").GetI64(0); first != int64(lo) {
				t.Errorf("range [%d,%d): first id = %d, want %d", tc.lo, tc.hi, first, lo)
			}
		}
	}
}

// TestExchangeMatchesSerial: the merged stream of a partitioned pipeline
// carries exactly the serial pipeline's rows in the serial order.
func TestExchangeMatchesSerial(t *testing.T) {
	tab := numbersTable(4000)
	serialSess := parallelSession(t, 1)
	serialOp, err := ParallelPipeline(serialSess, "T", tab.Rows(), selProjPipeline(tab, 31000))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := serialOp.(*Exchange); ok {
		t.Fatal("parallelism 1 must not build an exchange")
	}
	want, err := Materialize(serialOp)
	if err != nil {
		t.Fatal(err)
	}
	if len(serialSess.Fragments()) != 0 {
		t.Fatalf("serial pipeline spawned %d fragments", len(serialSess.Fragments()))
	}

	for _, p := range []int{2, 4, 7} {
		s := parallelSession(t, p)
		op, err := ParallelPipeline(s, "T", tab.Rows(), selProjPipeline(tab, 31000))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := op.(*Exchange); !ok {
			t.Fatalf("P=%d: expected an exchange, got %T", p, op)
		}
		got, err := Materialize(op)
		if err != nil {
			t.Fatal(err)
		}
		if TableString(got, 0) != TableString(want, 0) {
			t.Errorf("P=%d: merged stream differs from serial", p)
		}
		if len(s.Fragments()) != p {
			t.Errorf("P=%d: %d fragment sessions", p, len(s.Fragments()))
		}
		// Fragment work folded into the coordinator's accounting.
		if s.Ctx.PrimCycles <= 0 {
			t.Errorf("P=%d: no primitive cycles folded into coordinator", p)
		}
		// Each fragment learned on partition-tagged labels that collapse to
		// the serial instance key.
		for _, fs := range s.Fragments() {
			for _, inst := range fs.Instances() {
				if core.BaseLabel(inst.Label) == inst.Label {
					t.Errorf("fragment instance label %q carries no partition tag", inst.Label)
				}
				if want := "t/sel"; core.BaseLabel(inst.Label)[:len(want)] != want {
					t.Errorf("fragment label %q does not collapse onto the plan label", inst.Label)
				}
			}
		}
	}
}

// TestParallelPipelineSmallScanStaysSerial: scans below two minimum-size
// morsels must not fan out, whatever the configured parallelism.
func TestParallelPipelineSmallScanStaysSerial(t *testing.T) {
	tab := numbersTable(600) // < 2*minMorselRows
	s := parallelSession(t, 8)
	op, err := ParallelPipeline(s, "T", tab.Rows(), selProjPipeline(tab, 1<<30))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*Exchange); ok {
		t.Fatal("tiny scan built an exchange")
	}
	if len(s.Fragments()) != 0 {
		t.Fatalf("tiny scan spawned %d fragments", len(s.Fragments()))
	}
}

// TestExchangeFragmentError: a builder error surfaces from construction; a
// fragment panic during execution surfaces as a stream error from the
// merge (Open starts the producers, Next delivers their failure), not a
// crash — and the exchange shuts its other producers down cleanly.
func TestExchangeFragmentError(t *testing.T) {
	tab := numbersTable(4000)
	s := parallelSession(t, 2)
	if _, err := ParallelPipeline(s, "T", tab.Rows(), func(fs *core.Session, m Morsel) (Operator, error) {
		return nil, fmt.Errorf("no fragment for morsel %d", m.Part)
	}); err == nil {
		t.Error("builder error did not surface")
	}

	s = parallelSession(t, 2)
	op, err := ParallelPipeline(s, "T", tab.Rows(), func(fs *core.Session, m Morsel) (Operator, error) {
		return &panicOp{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Materialize(op); err == nil {
		t.Error("fragment panic did not surface from the merged stream")
	}
}

// TestExchangeEarlyClose: closing the exchange before the stream is
// exhausted (the shape a Limit above it produces) must release the
// blocked producer goroutines, not deadlock, and still fold the
// fragments' cycle accounting into the coordinator session.
func TestExchangeEarlyClose(t *testing.T) {
	s := parallelSession(t, 4)
	tab := numbersTable(40000) // large enough that producers outpace one Next
	op, err := ParallelPipeline(s, "T", tab.Rows(), func(fs *core.Session, m Morsel) (Operator, error) {
		return NewRangeScan(fs, tab, m.Lo, m.Hi, "id", "val"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := op.(*Exchange)
	if !ok {
		t.Fatalf("expected an Exchange at P=4, got %T", op)
	}
	if err := ex.Open(); err != nil {
		t.Fatal(err)
	}
	if b, err := ex.Next(); err != nil || b == nil {
		t.Fatalf("first Next = (%v, %v)", b, err)
	}
	done := make(chan struct{})
	go func() { ex.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("early Close deadlocked against blocked producers")
	}
	if s.Ctx.OperatorCycles <= 0 {
		t.Error("early Close folded no fragment cycle accounting")
	}
	if _, err := ex.Next(); err == nil {
		t.Error("Next after early Close did not error")
	}
}

// TestExchangeBackpressureOverlap: the consumer must be able to drain
// partition 0 while later partitions are still producing, and the whole
// merged stream must equal the serial order even when producers block on
// their bounded channels. Run with -race this is the handoff's data-race
// coverage.
func TestExchangeBackpressureOverlap(t *testing.T) {
	tab := numbersTable(30000)
	serial := parallelSession(t, 1)
	want, err := Materialize(mustPipeline(t, serial, tab, selProjPipeline(tab, 200000)))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, 8} {
		s := parallelSession(t, p)
		op := mustPipeline(t, s, tab, selProjPipeline(tab, 200000))
		if err := op.Open(); err != nil {
			t.Fatal(err)
		}
		rows := 0
		for {
			b, err := op.Next()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				break
			}
			rows += b.Live()
		}
		op.Close()
		if rows != want.Rows() {
			t.Errorf("P=%d: streamed %d rows, want %d", p, rows, want.Rows())
		}
	}
}

func mustPipeline(t *testing.T, s *core.Session, tab *Table, build FragmentBuilder) Operator {
	t.Helper()
	op, err := ParallelPipeline(s, "T", tab.Rows(), build)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

// panicOp panics on Next, simulating a primitive bug inside a fragment.
type panicOp struct{}

func (p *panicOp) Schema() vector.Schema        { return vector.Schema{{Name: "x", Type: vector.I64}} }
func (p *panicOp) Open() error                  { return nil }
func (p *panicOp) Next() (*vector.Batch, error) { panic("primitive bug") }
func (p *panicOp) Close()                       {}

// wideOp hands out batches wider than the consuming session's vector size —
// the shape a materialized table streamed by another session produces.
type wideOp struct {
	tab  *Table
	pos  int
	step int
}

func (w *wideOp) Schema() vector.Schema { return w.tab.Sch }
func (w *wideOp) Open() error           { w.pos = 0; return nil }
func (w *wideOp) Close()                {}
func (w *wideOp) Next() (*vector.Batch, error) {
	if w.pos >= w.tab.Rows() {
		return nil, nil
	}
	lo, hi := w.pos, w.pos+w.step
	if hi > w.tab.Rows() {
		hi = w.tab.Rows()
	}
	w.pos = hi
	cols := make([]*vector.Vector, len(w.tab.Cols))
	for i, c := range w.tab.Cols {
		cols[i] = c.Slice(lo, hi)
	}
	return &vector.Batch{N: hi - lo, Cols: cols}, nil
}

// TestSelectHandlesOverWideBatches is the regression test for the SelOut
// scratch guard: a child batch with N > VectorSize (here 8x) must filter
// correctly instead of writing past the scratch.
func TestSelectHandlesOverWideBatches(t *testing.T) {
	s := testSession(t) // vector size 16
	tab := numbersTable(400)
	sel := NewSelect(s, &wideOp{tab: tab, step: 128}, "wide/sel", CmpVal(1, "<", 1000))
	got, err := Materialize(sel)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 100 { // val = id*10 < 1000 -> ids 0..99
		t.Errorf("rows = %d, want 100", got.Rows())
	}
}

// TestHashJoinHandlesOverWideBatches: same guard on the probe side's
// key/row/selection scratch.
func TestHashJoinHandlesOverWideBatches(t *testing.T) {
	s := testSession(t) // vector size 16
	build := numbersTable(50)
	probe := numbersTable(400)
	j := NewHashJoin(s, NewScan(s, build, "id", "val"), &wideOp{tab: probe, step: 128},
		"wide/join", "id", "id", []string{"val"})
	got, err := Materialize(j)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 50 {
		t.Errorf("rows = %d, want 50", got.Rows())
	}
}

// TestHashAggHandlesOverWideBatches: same guard on the key/gid scratch.
func TestHashAggHandlesOverWideBatches(t *testing.T) {
	s := testSession(t) // vector size 16
	tab := numbersTable(400)
	agg := NewHashAgg(s, &wideOp{tab: tab, step: 128}, "wide/agg", []int{0},
		Agg(AggSum, 1, "sum_val"))
	got, err := Materialize(agg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 400 {
		t.Errorf("groups = %d, want 400", got.Rows())
	}
}

// TestExchangeNextAfterClose: a Next after Close must error like a Next
// before Open, not dereference the released partition tables.
func TestExchangeNextAfterClose(t *testing.T) {
	s := parallelSession(t, 4)
	tab := numbersTable(4096)
	op, err := ParallelPipeline(s, "T", tab.Rows(), func(fs *core.Session, m Morsel) (Operator, error) {
		return NewRangeScan(fs, tab, m.Lo, m.Hi), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := op.(*Exchange)
	if !ok {
		t.Fatalf("expected an Exchange at P=4, got %T", op)
	}
	if err := ex.Open(); err != nil {
		t.Fatal(err)
	}
	if b, err := ex.Next(); err != nil || b == nil {
		t.Fatalf("first Next = (%v, %v)", b, err)
	}
	ex.Close()
	if _, err := ex.Next(); err == nil {
		t.Error("Next after Close did not error")
	}
}
