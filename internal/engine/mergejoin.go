package engine

import (
	"microadapt/internal/core"
	"microadapt/internal/primitive"
	"microadapt/internal/vector"
)

// MergeJoin joins two inputs already sorted ascending on their integer key
// columns (TPC-H lineitem and orders are clustered on orderkey, so
// orders-lineitem joins merge without sorting, as in the paper's Q7/Q12
// plans). Both inputs are materialized; the kernel is the adaptive
// mergejoin primitive of Figures 4(c) and 5, and output columns are
// materialized through fetch primitives — the exact pattern behind
// Figure 4(d)'s map_fetch_uidx_col_str_col.
type MergeJoin struct {
	sess     *core.Session
	left     Operator
	right    Operator
	label    string
	leftKey  string
	rightKey string
	// Output columns: names prefixed l. / r. pick the side.
	leftOut  []string
	rightOut []string

	sch       vector.Schema
	ltab      *Table
	rtab      *Table
	state     *primitive.MergeState
	joinInst  *core.Instance
	fetchInst []*core.Instance
	fetchSide []bool // true = left
	fetchIdx  []int
	done      bool
}

// NewMergeJoin builds a merge join emitting leftOut columns from the left
// input and rightOut columns from the right input.
func NewMergeJoin(sess *core.Session, left, right Operator, label, leftKey, rightKey string, leftOut, rightOut []string) *MergeJoin {
	return &MergeJoin{
		sess: sess, left: left, right: right, label: label,
		leftKey: leftKey, rightKey: rightKey, leftOut: leftOut, rightOut: rightOut,
	}
}

// Schema implements Operator.
func (m *MergeJoin) Schema() vector.Schema {
	if m.sch != nil {
		return m.sch
	}
	ls, rs := m.left.Schema(), m.right.Schema()
	for _, n := range m.leftOut {
		m.sch = append(m.sch, ls[ls.MustIndexOf(n)])
	}
	for _, n := range m.rightOut {
		m.sch = append(m.sch, rs[rs.MustIndexOf(n)])
	}
	return m.sch
}

// Open implements Operator: materializes both inputs and sets up cursors.
func (m *MergeJoin) Open() error {
	var err error
	if m.ltab, err = Materialize(m.left); err != nil {
		return err
	}
	if m.rtab, err = Materialize(m.right); err != nil {
		return err
	}
	lkeys := make([]int64, m.ltab.Rows())
	rkeys := make([]int64, m.rtab.Rows())
	primitive.WidenToI64(m.ltab.Col(m.leftKey), nil, m.ltab.Rows(), vector.FromI64(lkeys))
	primitive.WidenToI64(m.rtab.Col(m.rightKey), nil, m.rtab.Rows(), vector.FromI64(rkeys))
	m.state = primitive.NewMergeState(lkeys, rkeys)
	vs := m.sess.VectorSize
	m.state.LOut = make([]int32, vs)
	m.state.ROut = make([]int32, vs)
	m.joinInst = m.sess.Instance("mergejoin_slng_col_slng_col", m.label+"/mergejoin_slng_col_slng_col#0")

	for i, n := range m.leftOut {
		idx := m.ltab.Sch.MustIndexOf(n)
		sig := primitive.FetchSig(m.ltab.Sch[idx].Type)
		m.fetchInst = append(m.fetchInst, m.sess.Instance(sig, labelf("%s/%s#L%d", m.label, sig, i)))
		m.fetchSide = append(m.fetchSide, true)
		m.fetchIdx = append(m.fetchIdx, idx)
	}
	for i, n := range m.rightOut {
		idx := m.rtab.Sch.MustIndexOf(n)
		sig := primitive.FetchSig(m.rtab.Sch[idx].Type)
		m.fetchInst = append(m.fetchInst, m.sess.Instance(sig, labelf("%s/%s#R%d", m.label, sig, i)))
		m.fetchSide = append(m.fetchSide, false)
		m.fetchIdx = append(m.fetchIdx, idx)
	}
	m.done = false
	return nil
}

// Next implements Operator.
func (m *MergeJoin) Next() (*vector.Batch, error) {
	if m.done {
		return nil, nil
	}
	vs := m.sess.VectorSize
	call := &core.Call{N: vs, Aux: m.state}
	produced := m.joinInst.Run(m.sess.Ctx, call)
	if m.state.Done() {
		m.done = true
	}
	if produced == 0 {
		if m.done {
			return nil, nil
		}
		return &vector.Batch{N: 0}, nil
	}

	lIdx := vector.FromI32(m.state.LOut[:produced])
	rIdx := vector.FromI32(m.state.ROut[:produced])
	cols := make([]*vector.Vector, len(m.fetchInst))
	for i := range m.fetchInst {
		srcTab, idxVec := m.rtab, rIdx
		if m.fetchSide[i] {
			srcTab, idxVec = m.ltab, lIdx
		}
		src := srcTab.Cols[m.fetchIdx[i]]
		res := vector.New(src.Type(), produced)
		res.SetLen(produced)
		fc := &core.Call{N: produced, Cap: vs, In: []*vector.Vector{idxVec, src}, Res: res}
		m.fetchInst[i].Run(m.sess.Ctx, fc)
		cols[i] = res
	}
	chargeOp(m.sess, perBatchOverhead)
	return &vector.Batch{N: produced, Cols: cols}, nil
}

// Close implements Operator.
func (m *MergeJoin) Close() {}
