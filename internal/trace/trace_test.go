package trace

import (
	"math/rand"
	"testing"

	"microadapt/internal/core"
	"microadapt/internal/hw"
)

// fakeWorkload builds a session workload with two primitives whose flavor
// costs are controlled exactly.
func fakeDict(costs map[string][]float64) *core.Dictionary {
	d := core.NewDictionary()
	for sig, armCosts := range costs {
		for arm, cost := range armCosts {
			cost := cost
			d.AddFlavor(sig, hw.ClassMapArith, &core.Flavor{
				Name: sig + string(rune('a'+arm)),
				Fn: func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
					return c.N, cost * float64(c.N)
				},
			})
		}
	}
	return d
}

func TestRecordAndScores(t *testing.T) {
	costs := map[string][]float64{
		"p1": {5, 3}, // arm 1 best
		"p2": {2, 8}, // arm 0 best
	}
	mk := func(f core.ChooserFactory) *core.Session {
		return core.NewSession(fakeDict(costs), hw.Machine1(),
			core.WithVectorSize(10), core.WithChooser(f))
	}
	workload := func(s *core.Session) error {
		i1 := s.Instance("p1", "w/p1")
		i2 := s.Instance("p2", "w/p2")
		for call := 0; call < 50; call++ {
			i1.Run(s.Ctx, &core.Call{N: 10})
			i2.Run(s.Ctx, &core.Call{N: 10})
		}
		return nil
	}
	traces, err := Record(2, mk, workload)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(traces))
	}
	for _, tr := range traces {
		if tr.Calls() != 50 {
			t.Errorf("%s calls = %d, want 50", tr.Label, tr.Calls())
		}
	}
	// OPT picks the per-call best: p1 via arm1 (3), p2 via arm0 (2).
	var p1, p2 *InstanceTrace
	for _, tr := range traces {
		if tr.Label == "w/p1" {
			p1 = tr
		} else {
			p2 = tr
		}
	}
	if got := p1.OptCycles(); got != 3*10*50 {
		t.Errorf("p1 OPT = %v", got)
	}
	if got := p1.FixedCycles(0); got != 5*10*50 {
		t.Errorf("p1 fixed(0) = %v", got)
	}
	if got := p2.OptCycles(); got != 2*10*50 {
		t.Errorf("p2 OPT = %v", got)
	}

	// A perfect oracle-like chooser: fixed best arm per trace.
	best := func(tr *InstanceTrace) func(n int) core.Chooser {
		bestArm := 0
		if tr.FixedCycles(1) < tr.FixedCycles(0) {
			bestArm = 1
		}
		return func(n int) core.Chooser { return core.NewFixed(bestArm) }
	}
	if got := Simulate(p1, best(p1)); got != p1.OptCycles() {
		t.Errorf("simulate best = %v, want OPT", got)
	}

	// Scoring: the always-arm-0 policy is 5/3 off on p1, optimal on p2.
	s := Score(traces, func(n int) core.Chooser { return core.NewFixed(0) })
	wantAbs := (5.0*500 + 2.0*500) / (3.0*500 + 2.0*500)
	if diff := s.AbsoluteOverOPT - wantAbs; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("absolute = %v, want %v", s.AbsoluteOverOPT, wantAbs)
	}
	wantRel := (5.0/3.0 + 1.0) / 2
	if diff := s.RelativeOverOPT - wantRel; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("relative = %v, want %v", s.RelativeOverOPT, wantRel)
	}
	if s.Average() <= 1 {
		t.Error("average must exceed 1 for a suboptimal policy")
	}
}

func TestVWGreedyNearOptimalOnStationaryTrace(t *testing.T) {
	costs := map[string][]float64{"p": {9, 4, 7}}
	mk := func(f core.ChooserFactory) *core.Session {
		return core.NewSession(fakeDict(costs), hw.Machine1(),
			core.WithVectorSize(100), core.WithChooser(f))
	}
	workload := func(s *core.Session) error {
		inst := s.Instance("p", "w/p")
		for call := 0; call < 4000; call++ {
			inst.Run(s.Ctx, &core.Call{N: 100})
		}
		return nil
	}
	traces, err := Record(3, mk, workload)
	if err != nil {
		t.Fatal(err)
	}
	score := Score(traces, func(n int) core.Chooser {
		return core.NewVWGreedy(n, core.VWParams{
			ExplorePeriod: 512, ExploitPeriod: 8, ExploreLength: 1,
			WarmupSkip: 2, InitialSweep: true,
		}, rand.New(rand.NewSource(1)))
	})
	if score.AbsoluteOverOPT > 1.05 {
		t.Errorf("vw-greedy on stationary trace = %v, want < 1.05", score.AbsoluteOverOPT)
	}
}

func TestRecordClampsMissingArms(t *testing.T) {
	// p1 has 3 flavors, p2 only 1: recording 3 arms must still produce a
	// complete matrix for p2 (filled from arm 0).
	d := core.NewDictionary()
	for arm := 0; arm < 3; arm++ {
		cost := float64(arm + 1)
		d.AddFlavor("p1", hw.ClassMapArith, &core.Flavor{
			Name: string(rune('a' + arm)),
			Fn: func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
				return c.N, cost * float64(c.N)
			},
		})
	}
	d.AddFlavor("p2", hw.ClassMapArith, &core.Flavor{
		Name: "only",
		Fn:   func(ctx *core.ExecCtx, c *core.Call) (int, float64) { return c.N, float64(c.N) },
	})
	mk := func(f core.ChooserFactory) *core.Session {
		return core.NewSession(d, hw.Machine1(), core.WithChooser(f))
	}
	workload := func(s *core.Session) error {
		for call := 0; call < 10; call++ {
			s.Instance("p1", "p1").Run(s.Ctx, &core.Call{N: 4})
			s.Instance("p2", "p2").Run(s.Ctx, &core.Call{N: 4})
		}
		return nil
	}
	traces, err := Record(3, mk, workload)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range traces {
		for arm := 0; arm < 3; arm++ {
			if len(tr.Cycles[arm]) != tr.Calls() {
				t.Errorf("%s arm %d incomplete", tr.Label, arm)
			}
		}
	}
}
