// Package trace implements the simulation-on-traces methodology of §3.2
// (Table 5): it records per-call flavor costs for every primitive instance
// of a workload (one run per flavor, each pinned), then replays the traces
// through candidate multi-armed-bandit algorithms and scores them against
// OPT, the per-call oracle.
package trace

import (
	"fmt"
	"sort"

	"microadapt/internal/core"
)

// InstanceTrace holds the recorded per-call costs of one primitive
// instance: Cycles[arm][call] is what flavor arm cost on that call.
// Because flavors are functionally equivalent and the engine is
// deterministic, call sequences align exactly across the per-arm runs.
type InstanceTrace struct {
	Label  string
	Sig    string
	Arms   int
	Tuples []int       // tuples per call
	Cycles [][]float64 // [arm][call]
}

// Calls returns the recorded call count.
func (tr *InstanceTrace) Calls() int { return len(tr.Tuples) }

// OptCycles is the oracle total: the per-call minimum across arms.
func (tr *InstanceTrace) OptCycles() float64 {
	var total float64
	for call := range tr.Tuples {
		best := tr.Cycles[0][call]
		for a := 1; a < tr.Arms; a++ {
			if c := tr.Cycles[a][call]; c < best {
				best = c
			}
		}
		total += best
	}
	return total
}

// FixedCycles returns the total cost of always using one arm.
func (tr *InstanceTrace) FixedCycles(arm int) float64 {
	var total float64
	for _, c := range tr.Cycles[arm] {
		total += c
	}
	return total
}

// recorder is a pinned chooser that logs every observation.
type recorder struct {
	arm    int
	tuples []int
	cycles []float64
}

func (r *recorder) Name() string                  { return "recorder" }
func (r *recorder) Choose(core.ChooseContext) int { return r.arm }
func (r *recorder) Observe(o core.Observation) {
	r.tuples = append(r.tuples, o.Tuples)
	r.cycles = append(r.cycles, o.Cycles)
}

// Workload runs a job against a session (e.g. the full TPC-H suite).
type Workload func(s *core.Session) error

// Record runs the workload once per arm in [0, nArms), pinning every
// instance to that arm (clamped to the instance's flavor count), and
// returns the per-instance traces sorted by label. Instances whose flavor
// count is below nArms get their extra columns filled from arm 0 so that
// simulation still sees a full matrix.
func Record(nArms int, mkSession func(core.ChooserFactory) *core.Session, workload Workload) ([]*InstanceTrace, error) {
	byLabel := make(map[string]*InstanceTrace)
	for arm := 0; arm < nArms; arm++ {
		arm := arm
		recs := make(map[*core.Instance]*recorder)
		s := mkSession(func(n int) core.Chooser {
			a := arm
			if a >= n {
				a = 0
			}
			return &recorder{arm: a}
		})
		if err := workload(s); err != nil {
			return nil, fmt.Errorf("trace.Record arm %d: %w", arm, err)
		}
		for _, inst := range s.Instances() {
			rec, _ := inst.Chooser().(*recorder)
			if rec == nil {
				continue
			}
			recs[inst] = rec
			tr := byLabel[inst.Label]
			if tr == nil {
				tr = &InstanceTrace{
					Label:  inst.Label,
					Sig:    inst.Prim.Sig,
					Arms:   nArms,
					Cycles: make([][]float64, nArms),
				}
				byLabel[inst.Label] = tr
			}
			if arm == 0 {
				tr.Tuples = rec.tuples
			}
			if len(rec.cycles) == len(tr.Tuples) {
				tr.Cycles[arm] = rec.cycles
			}
		}
	}
	var out []*InstanceTrace
	for _, tr := range byLabel {
		ok := tr.Tuples != nil
		for a := 0; a < tr.Arms; a++ {
			if tr.Cycles[a] == nil {
				// Instance missing from a run (or fewer flavors):
				// fall back to arm 0 so the matrix is complete.
				if tr.Cycles[0] == nil {
					ok = false
					break
				}
				tr.Cycles[a] = tr.Cycles[0]
			}
		}
		if ok && tr.Calls() > 0 {
			out = append(out, tr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out, nil
}

// Simulate replays one trace through a chooser and returns its total cost.
func Simulate(tr *InstanceTrace, mk func(n int) core.Chooser) float64 {
	ch := mk(tr.Arms)
	var total float64
	for call := range tr.Tuples {
		arm := ch.Choose(core.ChooseContext{})
		if arm < 0 || arm >= tr.Arms {
			arm = 0
		}
		c := tr.Cycles[arm][call]
		ch.Observe(core.Observation{Arm: arm, Tuples: tr.Tuples[call], Cycles: c})
		total += c
	}
	return total
}

// Scores are the two metrics of Table 5 (lower is better, 1.0 = OPT).
type Scores struct {
	AbsoluteOverOPT float64
	RelativeOverOPT float64
}

// Average is the mean of the two scores, the ranking key of Table 5.
func (s Scores) Average() float64 { return (s.AbsoluteOverOPT + s.RelativeOverOPT) / 2 }

// Score runs an algorithm over all traces. Absolute/OPT divides workload
// totals (weighting instances by their cost); Relative/OPT averages the
// per-instance ratios.
func Score(traces []*InstanceTrace, mk func(n int) core.Chooser) Scores {
	var sumAlgo, sumOpt float64
	var relSum float64
	relN := 0
	for _, tr := range traces {
		algo := Simulate(tr, mk)
		opt := tr.OptCycles()
		sumAlgo += algo
		sumOpt += opt
		if opt > 0 {
			relSum += algo / opt
			relN++
		}
	}
	s := Scores{}
	if sumOpt > 0 {
		s.AbsoluteOverOPT = sumAlgo / sumOpt
	}
	if relN > 0 {
		s.RelativeOverOPT = relSum / float64(relN)
	}
	return s
}
