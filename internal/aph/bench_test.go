package aph

import "testing"

// BenchmarkAdd measures the per-call cost of APH maintenance, the
// instrumentation overhead the paper's §4.2 results already include.
func BenchmarkAdd(b *testing.B) {
	h := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(1000, 4000)
	}
}

// BenchmarkAddSmallBudget stresses the merge path (span doubling happens
// every 4 calls at budget 8).
func BenchmarkAddSmallBudget(b *testing.B) {
	h := NewSize(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(1000, 4000)
	}
}

func BenchmarkSeries(b *testing.B) {
	h := New()
	for i := 0; i < 100_000; i++ {
		h.Add(1000, float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Series()
	}
}

func BenchmarkOptCycles(b *testing.B) {
	hs := make([]*History, 3)
	for fi := range hs {
		hs[fi] = New()
		for i := 0; i < 50_000; i++ {
			hs[fi].Add(1000, float64((i+fi*7)%100))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = OptCycles(hs...)
	}
}
