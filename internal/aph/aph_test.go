package aph

import (
	"testing"
	"testing/quick"
)

func TestAddWithinBudget(t *testing.T) {
	h := NewSize(8)
	for i := 0; i < 8; i++ {
		h.Add(100, float64(i))
	}
	if len(h.Buckets()) != 8 || h.Span() != 1 {
		t.Fatalf("buckets/span = %d/%d, want 8/1", len(h.Buckets()), h.Span())
	}
	for i, b := range h.Buckets() {
		if b.Calls != 1 || b.Cycles != float64(i) {
			t.Errorf("bucket %d = %+v", i, b)
		}
	}
}

func TestMergeHalvesBuckets(t *testing.T) {
	h := NewSize(8)
	for i := 0; i < 9; i++ {
		h.Add(10, 1)
	}
	// The 9th call triggers a merge to 4 buckets, then appends one.
	if len(h.Buckets()) != 5 {
		t.Fatalf("buckets = %d, want 5", len(h.Buckets()))
	}
	if h.Span() != 2 {
		t.Fatalf("span = %d, want 2", h.Span())
	}
	b0 := h.Buckets()[0]
	if b0.Calls != 2 || b0.Tuples != 20 || b0.Cycles != 2 {
		t.Errorf("merged bucket = %+v", b0)
	}
}

func TestRepeatedMergesKeepSpanPowerOfTwo(t *testing.T) {
	h := NewSize(4)
	for i := 0; i < 100; i++ {
		h.Add(1, 1)
	}
	if h.Span() != 32 {
		t.Errorf("span = %d, want 32", h.Span())
	}
	if h.Calls() != 100 {
		t.Errorf("calls = %d, want 100", h.Calls())
	}
}

// TestNeverExceedsBudget is the paper's APH invariant: at most 512 buckets
// regardless of call count, each spanning 2^k calls.
func TestNeverExceedsBudget(t *testing.T) {
	f := func(calls uint16) bool {
		h := NewSize(16)
		for i := 0; i < int(calls); i++ {
			h.Add(1, 1)
		}
		if len(h.Buckets()) > 16 {
			return false
		}
		return h.Calls() == int(calls)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestTotalsPreserved: merging never loses tuples or cycles.
func TestTotalsPreserved(t *testing.T) {
	f := func(entries []uint8) bool {
		h := NewSize(8)
		var wantT int64
		var wantC float64
		for _, e := range entries {
			h.Add(int(e), float64(e)*2)
			wantT += int64(e)
			wantC += float64(e) * 2
		}
		gotT, gotC := h.Totals()
		return gotT == wantT && gotC == wantC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDefaultBudgetIs512(t *testing.T) {
	h := New()
	for i := 0; i < 100000; i++ {
		h.Add(1, 1)
	}
	if len(h.Buckets()) > DefaultBuckets {
		t.Errorf("buckets = %d, want <= 512", len(h.Buckets()))
	}
	// After 100K calls: span must be 256 (512*256 = 131072 >= 100000).
	if h.Span() != 256 {
		t.Errorf("span = %d, want 256", h.Span())
	}
}

func TestSeries(t *testing.T) {
	h := NewSize(4)
	h.Add(10, 50) // 5 cycles/tuple
	h.Add(10, 30) // 3 cycles/tuple
	s := h.Series()
	if len(s) != 2 || s[0] != 5 || s[1] != 3 {
		t.Errorf("series = %v", s)
	}
	if (Bucket{}).CyclesPerTuple() != 0 {
		t.Error("empty bucket cost should be 0")
	}
}

func TestMinWithAndOptCycles(t *testing.T) {
	a, b := NewSize(4), NewSize(4)
	// Flavor a: cheap then expensive; flavor b: the reverse.
	a.Add(10, 10)
	a.Add(10, 100)
	b.Add(10, 80)
	b.Add(10, 20)
	env := MinWith(a, b)
	if len(env) != 2 || env[0] != 1 || env[1] != 2 {
		t.Errorf("envelope = %v, want [1 2]", env)
	}
	if got := OptCycles(a, b); got != 30 {
		t.Errorf("OPT cycles = %v, want 30", got)
	}
	if MinWith() != nil {
		t.Error("MinWith() should be nil")
	}
	if OptCycles() != 0 {
		t.Error("OptCycles() should be 0")
	}
}

func TestMinWithTruncatesToShortest(t *testing.T) {
	a, b := NewSize(8), NewSize(8)
	for i := 0; i < 5; i++ {
		a.Add(1, 1)
	}
	for i := 0; i < 3; i++ {
		b.Add(1, 2)
	}
	if got := len(MinWith(a, b)); got != 3 {
		t.Errorf("envelope length = %d, want 3", got)
	}
}

// TestMinWithAlignsDifferentMergeDepths: two histories of the same call
// sequence whose budgets forced different merge depths must be compared on
// a common span, not bucket index by bucket index. Before span alignment,
// bucket 1 of the merged history (calls 3-4) was compared against bucket 1
// of the unmerged one (call 2) — an OPT envelope over unrelated call
// ranges.
func TestMinWithAlignsDifferentMergeDepths(t *testing.T) {
	costs := []float64{10, 10, 30, 30}
	merged, flat := NewSize(2), NewSize(8)
	for _, c := range costs {
		merged.Add(1, c)
		flat.Add(1, c)
	}
	if merged.Span() == flat.Span() {
		t.Fatal("test needs histories of different merge depth")
	}
	// Both histories recorded the identical sequence, so the envelope is
	// the sequence itself at the coarser span: [10, 30].
	got := MinWith(merged, flat)
	want := []float64{10, 30}
	if len(got) != len(want) {
		t.Fatalf("envelope length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("envelope[%d] = %v, want %v (span misalignment)", i, got[i], want[i])
		}
	}
	// OPT cycles likewise: identical sequences mean OPT equals either
	// history's total, 80 — not a min over mismatched ranges.
	if opt := OptCycles(merged, flat); opt != 80 {
		t.Errorf("OptCycles = %v, want 80", opt)
	}
	// Alignment holds with the argument order flipped, too.
	if opt := OptCycles(flat, merged); opt != 80 {
		t.Errorf("OptCycles (flipped) = %v, want 80", opt)
	}
}

// TestAlignedTrailingPartialBucket: a partial trailing bucket groups like a
// history's own trailing bucket — fewer calls, same call alignment.
func TestAlignedTrailingPartialBucket(t *testing.T) {
	merged, flat := NewSize(2), NewSize(8)
	for _, c := range []float64{4, 4, 8, 8, 2} {
		merged.Add(1, c)
		flat.Add(1, c)
	}
	// merged reaches span 4: buckets (4,4,8,8) and the partial (2); flat's
	// five span-1 buckets must group identically — including the trailer.
	if merged.Span() != 4 {
		t.Fatalf("merged span = %d, want 4", merged.Span())
	}
	got := MinWith(merged, flat)
	want := []float64{6, 2}
	if len(got) != len(want) {
		t.Fatalf("envelope length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("envelope[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNewSizeValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, -2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSize(%d) should panic", n)
				}
			}()
			NewSize(n)
		}()
	}
}
