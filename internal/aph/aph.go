// Package aph implements the Approximated Performance History of the paper
// (§1.1): a bounded histogram of per-call primitive performance.
//
// Vectorwise keeps, for each primitive instance, profiling data at every
// call. A query processing 100M tuples calls its primitives ~100K times;
// keeping all measurements is too heavyweight, so the APH keeps at most 512
// buckets. Initially every call appends one bucket; when all 512 are used,
// neighbouring buckets are merged pairwise down to 256, after which each
// bucket spans 2 calls; after k merge rounds each bucket spans 2^k calls.
package aph

// DefaultBuckets is the bucket budget used by Vectorwise.
const DefaultBuckets = 512

// Bucket aggregates a contiguous run of primitive calls.
type Bucket struct {
	Calls  int     // number of calls merged into this bucket
	Tuples int64   // total tuples processed
	Cycles float64 // total cycles spent
}

// CyclesPerTuple returns the bucket's average cost; 0 for an empty bucket.
func (b Bucket) CyclesPerTuple() float64 {
	if b.Tuples == 0 {
		return 0
	}
	return b.Cycles / float64(b.Tuples)
}

// History is an approximated performance history. The zero value is not
// usable; construct with New or NewSize.
type History struct {
	max     int
	span    int // calls per full bucket (2^k)
	buckets []Bucket
}

// New returns a History with the default 512-bucket budget.
func New() *History { return NewSize(DefaultBuckets) }

// NewSize returns a History holding at most maxBuckets buckets.
// maxBuckets must be an even number >= 2.
func NewSize(maxBuckets int) *History {
	if maxBuckets < 2 || maxBuckets%2 != 0 {
		panic("aph.NewSize: bucket budget must be an even number >= 2")
	}
	return &History{max: maxBuckets, span: 1, buckets: make([]Bucket, 0, maxBuckets)}
}

// Add records one primitive call.
func (h *History) Add(tuples int, cycles float64) {
	n := len(h.buckets)
	if n > 0 && h.buckets[n-1].Calls < h.span {
		b := &h.buckets[n-1]
		b.Calls++
		b.Tuples += int64(tuples)
		b.Cycles += cycles
		return
	}
	if n == h.max {
		h.merge()
	}
	h.buckets = append(h.buckets, Bucket{Calls: 1, Tuples: int64(tuples), Cycles: cycles})
}

// merge combines neighbouring buckets pairwise, halving the bucket count
// and doubling the span.
func (h *History) merge() {
	half := len(h.buckets) / 2
	for i := 0; i < half; i++ {
		a, b := h.buckets[2*i], h.buckets[2*i+1]
		h.buckets[i] = Bucket{
			Calls:  a.Calls + b.Calls,
			Tuples: a.Tuples + b.Tuples,
			Cycles: a.Cycles + b.Cycles,
		}
	}
	h.buckets = h.buckets[:half]
	h.span *= 2
}

// Buckets returns the current buckets in call order. The returned slice
// aliases internal state and must not be modified.
func (h *History) Buckets() []Bucket { return h.buckets }

// Span returns the number of calls a full bucket currently represents.
func (h *History) Span() int { return h.span }

// Calls returns the total number of calls recorded.
func (h *History) Calls() int {
	total := 0
	for _, b := range h.buckets {
		total += b.Calls
	}
	return total
}

// Totals returns the total tuples and cycles recorded.
func (h *History) Totals() (tuples int64, cycles float64) {
	for _, b := range h.buckets {
		tuples += b.Tuples
		cycles += b.Cycles
	}
	return tuples, cycles
}

// Series returns the per-bucket average cycles/tuple, in call order — the
// curves plotted in Figures 2, 4, 10 and 11 of the paper.
func (h *History) Series() []float64 {
	out := make([]float64, len(h.buckets))
	for i, b := range h.buckets {
		out[i] = b.CyclesPerTuple()
	}
	return out
}

// MinWith returns, bucket by bucket, the minimum cycles/tuple across this
// history and the others — the OPT lower envelope used in §4.1 of the
// paper. All histories must have the same bucket layout (same call counts),
// which holds when they were recorded from runs with identical call
// sequences; trailing length differences are truncated to the shortest.
func MinWith(hs ...*History) []float64 {
	if len(hs) == 0 {
		return nil
	}
	n := len(hs[0].buckets)
	for _, h := range hs[1:] {
		if len(h.buckets) < n {
			n = len(h.buckets)
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		best := hs[0].buckets[i].CyclesPerTuple()
		for _, h := range hs[1:] {
			if v := h.buckets[i].CyclesPerTuple(); v < best {
				best = v
			}
		}
		out[i] = best
	}
	return out
}

// OptCycles computes the OPT cycle total of §4.1: for each bucket index the
// minimum cycles among the histories (assuming aligned layouts), summed.
func OptCycles(hs ...*History) float64 {
	if len(hs) == 0 {
		return 0
	}
	n := len(hs[0].buckets)
	for _, h := range hs[1:] {
		if len(h.buckets) < n {
			n = len(h.buckets)
		}
	}
	var total float64
	for i := 0; i < n; i++ {
		best := hs[0].buckets[i].Cycles
		for _, h := range hs[1:] {
			if v := h.buckets[i].Cycles; v < best {
				best = v
			}
		}
		total += best
	}
	return total
}
