// Package aph implements the Approximated Performance History of the paper
// (§1.1): a bounded histogram of per-call primitive performance.
//
// Vectorwise keeps, for each primitive instance, profiling data at every
// call. A query processing 100M tuples calls its primitives ~100K times;
// keeping all measurements is too heavyweight, so the APH keeps at most 512
// buckets. Initially every call appends one bucket; when all 512 are used,
// neighbouring buckets are merged pairwise down to 256, after which each
// bucket spans 2 calls; after k merge rounds each bucket spans 2^k calls.
package aph

// DefaultBuckets is the bucket budget used by Vectorwise.
const DefaultBuckets = 512

// Bucket aggregates a contiguous run of primitive calls.
type Bucket struct {
	Calls  int     // number of calls merged into this bucket
	Tuples int64   // total tuples processed
	Cycles float64 // total cycles spent
}

// CyclesPerTuple returns the bucket's average cost; 0 for an empty bucket.
func (b Bucket) CyclesPerTuple() float64 {
	if b.Tuples == 0 {
		return 0
	}
	return b.Cycles / float64(b.Tuples)
}

// History is an approximated performance history. The zero value is not
// usable; construct with New or NewSize.
type History struct {
	max     int
	span    int // calls per full bucket (2^k)
	buckets []Bucket
}

// New returns a History with the default 512-bucket budget.
func New() *History { return NewSize(DefaultBuckets) }

// NewSize returns a History holding at most maxBuckets buckets.
// maxBuckets must be an even number >= 2.
func NewSize(maxBuckets int) *History {
	if maxBuckets < 2 || maxBuckets%2 != 0 {
		panic("aph.NewSize: bucket budget must be an even number >= 2")
	}
	return &History{max: maxBuckets, span: 1, buckets: make([]Bucket, 0, maxBuckets)}
}

// Add records one primitive call.
func (h *History) Add(tuples int, cycles float64) {
	n := len(h.buckets)
	if n > 0 && h.buckets[n-1].Calls < h.span {
		b := &h.buckets[n-1]
		b.Calls++
		b.Tuples += int64(tuples)
		b.Cycles += cycles
		return
	}
	if n == h.max {
		h.merge()
	}
	h.buckets = append(h.buckets, Bucket{Calls: 1, Tuples: int64(tuples), Cycles: cycles})
}

// merge combines neighbouring buckets pairwise, halving the bucket count
// and doubling the span.
func (h *History) merge() {
	half := len(h.buckets) / 2
	for i := 0; i < half; i++ {
		a, b := h.buckets[2*i], h.buckets[2*i+1]
		h.buckets[i] = Bucket{
			Calls:  a.Calls + b.Calls,
			Tuples: a.Tuples + b.Tuples,
			Cycles: a.Cycles + b.Cycles,
		}
	}
	h.buckets = h.buckets[:half]
	h.span *= 2
}

// Buckets returns the current buckets in call order. The returned slice
// aliases internal state and must not be modified.
func (h *History) Buckets() []Bucket { return h.buckets }

// Span returns the number of calls a full bucket currently represents.
func (h *History) Span() int { return h.span }

// Calls returns the total number of calls recorded.
func (h *History) Calls() int {
	total := 0
	for _, b := range h.buckets {
		total += b.Calls
	}
	return total
}

// Totals returns the total tuples and cycles recorded.
func (h *History) Totals() (tuples int64, cycles float64) {
	for _, b := range h.buckets {
		tuples += b.Tuples
		cycles += b.Cycles
	}
	return tuples, cycles
}

// Series returns the per-bucket average cycles/tuple, in call order — the
// curves plotted in Figures 2, 4, 10 and 11 of the paper.
func (h *History) Series() []float64 {
	out := make([]float64, len(h.buckets))
	for i, b := range h.buckets {
		out[i] = b.CyclesPerTuple()
	}
	return out
}

// commonSpan returns the smallest span every history can be re-bucketed
// to: the maximum per-history span. Spans are always powers of two (they
// start at 1 and only double on merges), so the maximum is a multiple of
// every span.
func commonSpan(hs []*History) int {
	span := 1
	for _, h := range hs {
		if h.span > span {
			span = h.span
		}
	}
	return span
}

// alignedBuckets re-buckets the history so every bucket spans `span` calls
// (span must be a multiple of h.span): groups of span/h.span consecutive
// buckets are summed. Only the last bucket of a history can be partial, so
// grouping by index keeps groups call-aligned; the trailing group may cover
// fewer than span calls, exactly like a history's own trailing bucket.
func (h *History) alignedBuckets(span int) []Bucket {
	if span <= h.span {
		return h.buckets
	}
	ratio := span / h.span
	out := make([]Bucket, 0, (len(h.buckets)+ratio-1)/ratio)
	for i := 0; i < len(h.buckets); i += ratio {
		var b Bucket
		for j := i; j < i+ratio && j < len(h.buckets); j++ {
			b.Calls += h.buckets[j].Calls
			b.Tuples += h.buckets[j].Tuples
			b.Cycles += h.buckets[j].Cycles
		}
		out = append(out, b)
	}
	return out
}

// aligned re-buckets all histories to their common span and truncates to
// the shortest, so bucket i covers the same call range in every history —
// required before any bucket-by-bucket comparison: histories recorded from
// identical call sequences can still have merged a different number of
// times (different bucket budgets, or one just over a merge boundary).
func aligned(hs []*History) [][]Bucket {
	span := commonSpan(hs)
	out := make([][]Bucket, len(hs))
	n := -1
	for i, h := range hs {
		out[i] = h.alignedBuckets(span)
		if n < 0 || len(out[i]) < n {
			n = len(out[i])
		}
	}
	for i := range out {
		out[i] = out[i][:n]
	}
	return out
}

// MinWith returns, bucket by bucket, the minimum cycles/tuple across this
// history and the others — the OPT lower envelope used in §4.1 of the
// paper. Histories are first aligned to a common span (see aligned), so
// comparing runs whose histories merged to different depths never mixes
// unrelated call ranges; trailing length differences are truncated to the
// shortest aligned history.
func MinWith(hs ...*History) []float64 {
	if len(hs) == 0 {
		return nil
	}
	bs := aligned(hs)
	out := make([]float64, len(bs[0]))
	for i := range out {
		best := bs[0][i].CyclesPerTuple()
		for _, hb := range bs[1:] {
			if v := hb[i].CyclesPerTuple(); v < best {
				best = v
			}
		}
		out[i] = best
	}
	return out
}

// OptCycles computes the OPT cycle total of §4.1: for each span-aligned
// bucket the minimum cycles among the histories, summed.
func OptCycles(hs ...*History) float64 {
	if len(hs) == 0 {
		return 0
	}
	bs := aligned(hs)
	var total float64
	for i := range bs[0] {
		best := bs[0][i].Cycles
		for _, hb := range bs[1:] {
			if v := hb[i].Cycles; v < best {
				best = v
			}
		}
		total += best
	}
	return total
}
