// Package heuristics is the competing approach of §4.2: hard-coded
// threshold rules that pick a flavor from call context, tuned to machine 1
// (the paper's best case for heuristics). It selects
//
//   - no-branching selection between 10% and 90% observed selectivity,
//   - full computation above 30% input selectivity,
//   - loop fission when the bloom filter exceeds the machine's effective
//     probe cache,
//
// and the default flavor everywhere else — notably for compiler and
// hand-unrolling variation, where (as the paper notes) no sensible
// heuristic exists.
package heuristics

import (
	"microadapt/internal/bloom"
	"microadapt/internal/core"
	"microadapt/internal/hw"
)

// Thresholds are the tuning constants; Default() matches the paper's
// prose, calibrated for machine 1.
type Thresholds struct {
	NoBranchLo  float64 // use no-branching above this observed selectivity...
	NoBranchHi  float64 // ...and below this one
	FullCompSel float64 // use full computation above this input density
}

// Default returns the §4.2 thresholds.
func Default() Thresholds {
	return Thresholds{NoBranchLo: 0.10, NoBranchHi: 0.90, FullCompSel: 0.30}
}

// Selector is a core.Chooser implementing the rules from live-call context.
// One Selector serves one primitive instance.
type Selector struct {
	machine *hw.Machine
	th      Thresholds

	// Cached arm indexes, resolved lazily from flavor tags.
	resolved   bool
	defaultArm int
	branchArm  int
	noBranch   int
	selective  int
	full       int
	noFission  int
	fission    int
}

// Factory returns a ChooserFactory building Selectors for the machine.
func Factory(m *hw.Machine, th Thresholds) core.ChooserFactory {
	return func(n int) core.Chooser { return &Selector{machine: m, th: th} }
}

// Name implements core.Chooser.
func (h *Selector) Name() string { return "heuristics" }

// Observe implements core.Chooser; heuristics do not learn.
func (h *Selector) Observe(core.Observation) {}

// resolve finds the arm of each variant among the instance's flavors. The
// default arm prefers the shipped build: branching, selective, no fission,
// unroll 8, gcc.
func (h *Selector) resolve(inst *core.Instance) {
	h.resolved = true
	h.branchArm, h.noBranch = -1, -1
	h.selective, h.full = -1, -1
	h.noFission, h.fission = -1, -1
	h.defaultArm = 0
	bestScore := -1
	for i, f := range inst.Prim.Flavors {
		score := 0
		if f.Tag("compiler") == "gcc" {
			score += 4
		}
		if f.Tag("unroll") != "u1" {
			score += 2
		}
		if f.Tag("branch") != "n" && f.Tag("full") != "y" && f.Tag("fission") != "y" {
			score++
		}
		if score > bestScore {
			bestScore, h.defaultArm = score, i
		}
		// Variant arms, preferring gcc builds.
		pick := func(slot *int) {
			if *slot < 0 || f.Tag("compiler") == "gcc" && f.Tag("unroll") != "u1" {
				*slot = i
			}
		}
		switch {
		case f.Tag("branch") == "y":
			pick(&h.branchArm)
		case f.Tag("branch") == "n":
			pick(&h.noBranch)
		}
		switch {
		case f.Tag("full") == "y":
			pick(&h.full)
		case f.Tag("full") == "n":
			pick(&h.selective)
		}
		switch {
		case f.Tag("fission") == "y":
			pick(&h.fission)
		case f.Tag("fission") == "n":
			pick(&h.noFission)
		}
	}
}

// Choose implements core.Chooser: the rules read the instance's observed
// selectivity and the live call's density and auxiliary state. Without
// call context (trace replay, synthetic tests) it falls back to arm 0.
func (h *Selector) Choose(cc core.ChooseContext) int {
	inst, c := cc.Inst, cc.Call
	if inst == nil || c == nil {
		return 0
	}
	if !h.resolved {
		h.resolve(inst)
	}
	switch inst.Prim.Class {
	case hw.ClassSelCmp:
		if h.noBranch < 0 || h.branchArm < 0 {
			return h.defaultArm
		}
		// Observed output selectivity of this instance so far; until
		// known, stay with the default (branching) build.
		if inst.Tuples == 0 {
			return h.branchArm
		}
		sel := float64(inst.Produced) / float64(inst.Tuples)
		if sel >= h.th.NoBranchLo && sel <= h.th.NoBranchHi {
			return h.noBranch
		}
		return h.branchArm
	case hw.ClassMapArith:
		if h.full < 0 || h.selective < 0 {
			return h.defaultArm
		}
		if c.Sel != nil && c.Density() > h.th.FullCompSel {
			return h.full
		}
		return h.selective
	case hw.ClassBloom:
		if h.fission < 0 || h.noFission < 0 {
			return h.defaultArm
		}
		if f, ok := c.Aux.(*bloom.Filter); ok && f.SizeBytes() > h.machine.BloomEffCache {
			return h.fission
		}
		return h.noFission
	default:
		// Compilers, unrolling, fetch, joins: no heuristic exists.
		return h.defaultArm
	}
}
