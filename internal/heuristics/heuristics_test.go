package heuristics

import (
	"testing"

	"microadapt/internal/bloom"
	"microadapt/internal/core"
	"microadapt/internal/hw"
	"microadapt/internal/primitive"
)

func testInstance(t *testing.T, o primitive.Options, sig string) (*core.Session, *core.Instance, *Selector) {
	t.Helper()
	d := primitive.NewDictionary(o)
	sel := &Selector{machine: hw.Machine1(), th: Default()}
	s := core.NewSession(d, hw.Machine1(),
		core.WithChooser(func(n int) core.Chooser { return sel }))
	inst := s.Instance(sig, "h/"+sig)
	return s, inst, sel
}

func TestSelectionRule(t *testing.T) {
	s, inst, sel := testInstance(t, primitive.BranchSet(), "select_<_sint_col_sint_val")
	prim := inst.Prim
	branchArm := prim.FlavorByTag("branch", "y")
	noBranchArm := prim.FlavorByTag("branch", "n")

	// Cold start: the shipped (branching) build.
	c := &core.Call{N: 100}
	if got := sel.Choose(core.ChooseContext{Inst: inst, Call: c}); got != branchArm {
		t.Errorf("cold start arm = %d, want branching %d", got, branchArm)
	}
	// Mid selectivity observed: no-branching.
	inst.Tuples = 1000
	inst.Produced = 500
	if got := sel.Choose(core.ChooseContext{Inst: inst, Call: c}); got != noBranchArm {
		t.Error("50% selectivity should pick no-branching")
	}
	// Extreme selectivities: branching.
	inst.Produced = 20
	if got := sel.Choose(core.ChooseContext{Inst: inst, Call: c}); got != branchArm {
		t.Error("2% selectivity should pick branching")
	}
	inst.Produced = 990
	if got := sel.Choose(core.ChooseContext{Inst: inst, Call: c}); got != branchArm {
		t.Error("99% selectivity should pick branching")
	}
	_ = s
}

func TestFullComputationRule(t *testing.T) {
	_, inst, sel := testInstance(t, primitive.ComputeSet(), "map_*_slng_col_slng_col")
	prim := inst.Prim
	fullArm := prim.FlavorByTag("full", "y")
	selArm := prim.FlavorByTag("full", "n")

	dense := &core.Call{N: 100, Sel: mkSel(80)}
	if got := sel.Choose(core.ChooseContext{Inst: inst, Call: dense}); got != fullArm {
		t.Error("80% density should pick full computation")
	}
	sparse := &core.Call{N: 100, Sel: mkSel(10)}
	if got := sel.Choose(core.ChooseContext{Inst: inst, Call: sparse}); got != selArm {
		t.Error("10% density should pick selective computation")
	}
	noSel := &core.Call{N: 100}
	if got := sel.Choose(core.ChooseContext{Inst: inst, Call: noSel}); got != selArm {
		t.Error("dense input (no sel) should stay on the default selective build")
	}
}

func mkSel(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

func TestFissionRule(t *testing.T) {
	_, inst, sel := testInstance(t, primitive.FissionSet(), "sel_bloomfilter_slng_col")
	prim := inst.Prim
	fis := prim.FlavorByTag("fission", "y")
	nofis := prim.FlavorByTag("fission", "n")
	m := hw.Machine1()

	small := &core.Call{N: 100, Aux: bloom.New(m.BloomEffCache/4, 2)}
	if got := sel.Choose(core.ChooseContext{Inst: inst, Call: small}); got != nofis {
		t.Error("cache-resident filter should not use fission")
	}
	big := &core.Call{N: 100, Aux: bloom.New(m.BloomEffCache*16, 2)}
	if got := sel.Choose(core.ChooseContext{Inst: inst, Call: big}); got != fis {
		t.Error("memory-resident filter should use fission")
	}
}

func TestNoHeuristicClassesUseDefault(t *testing.T) {
	_, inst, sel := testInstance(t, primitive.CompilerSet(), "mergejoin_slng_col_slng_col")
	c := &core.Call{N: 100}
	arm := sel.Choose(core.ChooseContext{Inst: inst, Call: c})
	if got := inst.Prim.Flavors[arm].Tag("compiler"); got != "gcc" {
		t.Errorf("default compiler = %s, want gcc", got)
	}
}

func TestDefaultArmPrefersShippedBuild(t *testing.T) {
	_, inst, sel := testInstance(t, primitive.Everything(), "select_<_sint_col_sint_val")
	c := &core.Call{N: 100}
	arm := sel.Choose(core.ChooseContext{Inst: inst, Call: c})
	f := inst.Prim.Flavors[arm]
	if f.Tag("compiler") != "gcc" || f.Tag("branch") != "y" || f.Tag("unroll") != "u8" {
		t.Errorf("shipped build = %s, want branching gcc u8", f.Name)
	}
}

func TestChooserInterfaceBasics(t *testing.T) {
	sel := &Selector{machine: hw.Machine1(), th: Default()}
	if sel.Name() != "heuristics" {
		t.Error("name wrong")
	}
	if sel.Choose(core.ChooseContext{}) != 0 {
		t.Error("context-free choice should be 0")
	}
	sel.Observe(core.Observation{Arm: 0, Tuples: 1, Cycles: 1}) // must not panic; heuristics do not learn
	f := Factory(hw.Machine1(), Default())
	if _, ok := f(3).(*Selector); !ok {
		t.Error("factory should build Selectors")
	}
}

func TestThresholdDefaults(t *testing.T) {
	th := Default()
	if th.NoBranchLo != 0.10 || th.NoBranchHi != 0.90 || th.FullCompSel != 0.30 {
		t.Errorf("defaults = %+v, want the paper's §4.2 thresholds", th)
	}
}
