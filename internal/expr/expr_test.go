package expr

import (
	"testing"

	"microadapt/internal/core"
	"microadapt/internal/hw"
	"microadapt/internal/primitive"
	"microadapt/internal/vector"
)

func testEval(t testing.TB, sch vector.Schema) (*core.Session, *Evaluator) {
	t.Helper()
	d := primitive.NewDictionary(primitive.Defaults())
	s := core.NewSession(d, hw.Machine1(), core.WithVectorSize(8), core.WithSeed(2))
	return s, NewEvaluator(s, sch, "test")
}

func i64Batch(vals ...int64) *vector.Batch {
	return vector.NewBatch(vector.FromI64(vals))
}

func TestColAndConst(t *testing.T) {
	sch := vector.Schema{{Name: "x", Type: vector.I64}}
	_, ev := testEval(t, sch)
	b := i64Batch(4, 5, 6)
	col := (&Col{Idx: 0}).Eval(ev, b)
	if col.I64()[1] != 5 {
		t.Error("col ref wrong")
	}
	if (&ConstI64{V: 9}).Eval(ev, b).I64()[0] != 9 {
		t.Error("const i64 wrong")
	}
	if (&ConstI32{V: 7}).Eval(ev, b).I32()[0] != 7 {
		t.Error("const i32 wrong")
	}
	if (&ConstF64{V: 1.5}).Eval(ev, b).F64()[0] != 1.5 {
		t.Error("const f64 wrong")
	}
}

func TestBinOpShapes(t *testing.T) {
	sch := vector.Schema{{Name: "x", Type: vector.I64}, {Name: "y", Type: vector.I64}}
	_, ev := testEval(t, sch)
	b := vector.NewBatch(vector.FromI64([]int64{10, 20, 30}), vector.FromI64([]int64{1, 2, 3}))

	colcol := Mul(&Col{Idx: 0}, &Col{Idx: 1}).Eval(ev, b)
	if colcol.I64()[2] != 90 {
		t.Errorf("col*col = %v", colcol.I64()[:3])
	}
	colval := Add(&Col{Idx: 0}, &ConstI64{V: 5}).Eval(ev, b)
	if colval.I64()[0] != 15 {
		t.Errorf("col+val = %v", colval.I64()[:3])
	}
	valcol := Sub(&ConstI64{V: 100}, &Col{Idx: 1}).Eval(ev, b)
	if valcol.I64()[2] != 97 {
		t.Errorf("val-col = %v", valcol.I64()[:3])
	}
	div := Div(&Col{Idx: 0}, &Col{Idx: 1}).Eval(ev, b)
	if div.I64()[1] != 10 {
		t.Errorf("col/col = %v", div.I64()[:3])
	}
}

func TestNestedExpressionSharesInstances(t *testing.T) {
	sch := vector.Schema{{Name: "x", Type: vector.I64}}
	s, ev := testEval(t, sch)
	// (x*2) + (x*2): the shared node must map to ONE primitive instance.
	shared := Mul(&Col{Idx: 0}, &ConstI64{V: 2})
	sum := Add(shared, shared)
	b := i64Batch(3)
	if got := sum.Eval(ev, b).I64()[0]; got != 12 {
		t.Errorf("result = %d, want 12", got)
	}
	mulInsts := 0
	for _, inst := range s.Instances() {
		if inst.Prim.Sig == "map_*_slng_col_slng_val" {
			mulInsts++
		}
	}
	if mulInsts != 1 {
		t.Errorf("mul instances = %d, want 1 (node sharing)", mulInsts)
	}
}

func TestEvalUnderSelection(t *testing.T) {
	sch := vector.Schema{{Name: "x", Type: vector.I64}}
	_, ev := testEval(t, sch)
	b := i64Batch(1, 2, 3, 4)
	b.Sel = []int32{1, 3}
	res := Mul(&Col{Idx: 0}, &ConstI64{V: 10}).Eval(ev, b)
	if res.I64()[1] != 20 || res.I64()[3] != 40 {
		t.Error("live positions wrong")
	}
}

func TestWiden(t *testing.T) {
	sch := vector.Schema{{Name: "x", Type: vector.I32}}
	_, ev := testEval(t, sch)
	b := vector.NewBatch(vector.FromI32([]int32{-7, 8}))
	res := ToI64(&Col{Idx: 0}).Eval(ev, b)
	if res.Type() != vector.I64 || res.I64()[0] != -7 {
		t.Error("widen wrong")
	}
	// Widening an I64 column is a no-op returning the same vector.
	sch2 := vector.Schema{{Name: "x", Type: vector.I64}}
	_, ev2 := testEval(t, sch2)
	b2 := i64Batch(5)
	in := (&Col{Idx: 0}).Eval(ev2, b2)
	if ToI64(&Col{Idx: 0}).Eval(ev2, b2) != in {
		t.Error("widen of I64 should be identity")
	}
}

func TestCastF64(t *testing.T) {
	sch := vector.Schema{{Name: "x", Type: vector.I64}}
	_, ev := testEval(t, sch)
	res := CastF64(&Col{Idx: 0}).Eval(ev, i64Batch(3))
	if res.Type() != vector.F64 || res.F64()[0] != 3 {
		t.Error("cast wrong")
	}
}

func TestSubstrAndCases(t *testing.T) {
	sch := vector.Schema{{Name: "s", Type: vector.Str}}
	_, ev := testEval(t, sch)
	b := vector.NewBatch(vector.FromStr([]string{"25-xyz", "9", ""}))
	sub := (&Substr{Child: &Col{Idx: 0}, From: 0, Len: 2}).Eval(ev, b)
	if sub.Str()[0] != "25" || sub.Str()[1] != "9" || sub.Str()[2] != "" {
		t.Errorf("substr = %v", sub.Str()[:3])
	}

	ci := (&CaseInStr{Col: &Col{Idx: 0}, Values: []string{"9", "25-xyz"}, Then: 1, Else: 0}).Eval(ev, b)
	if ci.I64()[0] != 1 || ci.I64()[2] != 0 {
		t.Error("case-in wrong")
	}
	ce := (&CaseEqStr{Col: &Col{Idx: 0}, Value: "9", Then: 7, Else: -1}).Eval(ev, b)
	if ce.I64()[1] != 7 || ce.I64()[0] != -1 {
		t.Error("case-eq wrong")
	}
	cl := (&CaseLikeStr{Col: &Col{Idx: 0}, Match: func(s string) bool { return len(s) > 1 }, Then: 1, Else: 2}).Eval(ev, b)
	if cl.I64()[0] != 1 || cl.I64()[1] != 2 {
		t.Error("case-like wrong")
	}
}

func TestMapI64(t *testing.T) {
	sch := vector.Schema{{Name: "x", Type: vector.I32}}
	_, ev := testEval(t, sch)
	b := vector.NewBatch(vector.FromI32([]int32{700, 1100}))
	res := (&MapI64{Child: ToI64(&Col{Idx: 0}), Fn: func(v int64) int64 { return v / 365 }}).Eval(ev, b)
	if res.I64()[0] != 1 || res.I64()[1] != 3 {
		t.Errorf("mapfn = %v", res.I64()[:2])
	}
}

func TestTypeResolution(t *testing.T) {
	sch := vector.Schema{
		{Name: "a", Type: vector.I32},
		{Name: "b", Type: vector.F64},
		{Name: "s", Type: vector.Str},
	}
	if (&Col{Idx: 1}).Type(sch) != vector.F64 {
		t.Error("col type wrong")
	}
	if Add(&Col{Idx: 1}, &ConstF64{V: 1}).Type(sch) != vector.F64 {
		t.Error("binop type wrong")
	}
	if ToI64(&Col{Idx: 0}).Type(sch) != vector.I64 {
		t.Error("widen type wrong")
	}
	if (&Substr{Child: &Col{Idx: 2}}).Type(sch) != vector.Str {
		t.Error("substr type wrong")
	}
	if (&CaseInStr{}).Type(sch) != vector.I64 {
		t.Error("case type wrong")
	}
	if (&MapI64{}).Type(sch) != vector.I64 {
		t.Error("mapi64 type wrong")
	}
	if (&ToF64{}).Type(sch) != vector.F64 {
		t.Error("tof64 type wrong")
	}
	if (&CaseEqStr{}).Type(sch) != vector.I64 || (&CaseLikeStr{}).Type(sch) != vector.I64 {
		t.Error("case types wrong")
	}
	if (&ConstI64{}).Type(sch) != vector.I64 || (&ConstI32{}).Type(sch) != vector.I32 || (&ConstF64{}).Type(sch) != vector.F64 {
		t.Error("const types wrong")
	}
}
