// Package expr is the vectorized expression evaluator: it recursively
// evaluates expression trees over batches, calling map primitives through
// per-node primitive instances. This is the component the paper modified to
// host the learning algorithm — every Call node resolves its primitive in
// the dictionary and lets the instance's chooser pick a flavor per call.
package expr

import (
	"fmt"

	"microadapt/internal/core"
	"microadapt/internal/primitive"
	"microadapt/internal/vector"
)

// Node is a typed expression over a batch's columns. Eval returns a vector
// of length batch.N whose live positions (batch.Sel) hold the results;
// positions outside the selection are undefined (Figure 7 left).
type Node interface {
	// Type returns the result type under the given input schema.
	Type(s vector.Schema) vector.Type
	// Eval computes the expression for the batch.
	Eval(ev *Evaluator, b *vector.Batch) *vector.Vector
}

// Col references an input column by index.
type Col struct{ Idx int }

// Type implements Node.
func (c *Col) Type(s vector.Schema) vector.Type { return s[c.Idx].Type }

// Eval implements Node.
func (c *Col) Eval(ev *Evaluator, b *vector.Batch) *vector.Vector { return b.Cols[c.Idx] }

// ConstI64 is an int64 literal.
type ConstI64 struct{ V int64 }

// Type implements Node.
func (c *ConstI64) Type(vector.Schema) vector.Type { return vector.I64 }

// Eval implements Node.
func (c *ConstI64) Eval(*Evaluator, *vector.Batch) *vector.Vector { return vector.ConstI64(c.V) }

// ConstI32 is an int32 literal.
type ConstI32 struct{ V int32 }

// Type implements Node.
func (c *ConstI32) Type(vector.Schema) vector.Type { return vector.I32 }

// Eval implements Node.
func (c *ConstI32) Eval(*Evaluator, *vector.Batch) *vector.Vector { return vector.ConstI32(c.V) }

// ConstF64 is a float64 literal.
type ConstF64 struct{ V float64 }

// Type implements Node.
func (c *ConstF64) Type(vector.Schema) vector.Type { return vector.F64 }

// Eval implements Node.
func (c *ConstF64) Eval(*Evaluator, *vector.Batch) *vector.Vector { return vector.ConstF64(c.V) }

// isConst reports whether a node is a literal (evaluates to a 1-tuple
// vector used as a _val parameter).
func isConst(n Node) bool {
	switch n.(type) {
	case *ConstI64, *ConstI32, *ConstF64:
		return true
	}
	return false
}

// BinOp is an arithmetic expression (+, -, *, /) over operands of the same
// numeric type; it maps to one primitive instance.
type BinOp struct {
	Op   string
	L, R Node
}

// Add returns l + r.
func Add(l, r Node) *BinOp { return &BinOp{Op: "+", L: l, R: r} }

// Sub returns l - r.
func Sub(l, r Node) *BinOp { return &BinOp{Op: "-", L: l, R: r} }

// Mul returns l * r.
func Mul(l, r Node) *BinOp { return &BinOp{Op: "*", L: l, R: r} }

// Div returns l / r.
func Div(l, r Node) *BinOp { return &BinOp{Op: "/", L: l, R: r} }

// Type implements Node.
func (n *BinOp) Type(s vector.Schema) vector.Type { return n.L.Type(s) }

// Eval implements Node.
func (n *BinOp) Eval(ev *Evaluator, b *vector.Batch) *vector.Vector {
	t := n.Type(ev.Schema)
	lv := n.L.Eval(ev, b)
	rv := n.R.Eval(ev, b)
	shape := "col_col"
	switch {
	case isConst(n.R):
		shape = "col_val"
	case isConst(n.L):
		shape = "val_col"
	}
	sig := primitive.MapSig(n.Op, t, shape)
	inst := ev.instance(n, sig)
	res := ev.scratch(t, b.N)
	call := &core.Call{N: b.N, Sel: b.Sel, In: []*vector.Vector{lv, rv}, Res: res}
	inst.Run(ev.Sess.Ctx, call)
	return res
}

// Widen converts an integer column to I64 (a cast map primitive in
// Vectorwise; here a fixed-cost conversion outside the flavor sets).
type Widen struct{ Child Node }

// ToI64 widens an integer expression to 64 bits.
func ToI64(n Node) Node { return &Widen{Child: n} }

// Type implements Node.
func (w *Widen) Type(vector.Schema) vector.Type { return vector.I64 }

// Eval implements Node.
func (w *Widen) Eval(ev *Evaluator, b *vector.Batch) *vector.Vector {
	in := w.Child.Eval(ev, b)
	if in.Type() == vector.I64 {
		return in
	}
	res := ev.scratch(vector.I64, b.N)
	primitive.WidenToI64(in, b.Sel, b.N, res)
	ev.Sess.Ctx.OperatorCycles += 0.5 * float64(b.Live())
	return res
}

// CaseInStr evaluates to Then where the string column's value is in Values,
// Else otherwise (the CASE expressions of TPC-H Q12/Q14). It is evaluated
// in plain Go: CASE maps are not part of the paper's flavor sets.
type CaseInStr struct {
	Col        Node
	Values     []string
	Then, Else int64
}

// Type implements Node.
func (n *CaseInStr) Type(vector.Schema) vector.Type { return vector.I64 }

// Eval implements Node.
func (n *CaseInStr) Eval(ev *Evaluator, b *vector.Batch) *vector.Vector {
	in := n.Col.Eval(ev, b).Str()
	res := ev.scratch(vector.I64, b.N)
	out := res.I64()
	set := make(map[string]bool, len(n.Values))
	for _, v := range n.Values {
		set[v] = true
	}
	eval1 := func(i int32) {
		if set[in[i]] {
			out[i] = n.Then
		} else {
			out[i] = n.Else
		}
	}
	if b.Sel != nil {
		for _, i := range b.Sel {
			eval1(i)
		}
	} else {
		for i := 0; i < b.N; i++ {
			eval1(int32(i))
		}
	}
	res.SetLen(b.N)
	ev.Sess.Ctx.OperatorCycles += 4 * float64(b.Live())
	return res
}

// Evaluator evaluates expressions for one operator. It owns the primitive
// instances of its expression nodes (one instance per node, labelled
// uniquely within the query) and a small scratch-vector arena.
type Evaluator struct {
	Sess   *core.Session
	Schema vector.Schema
	Prefix string // label prefix, e.g. "Q1/project0"

	insts  map[Node]*core.Instance
	nextID int
}

// NewEvaluator builds an evaluator for the operator named by prefix.
func NewEvaluator(sess *core.Session, schema vector.Schema, prefix string) *Evaluator {
	return &Evaluator{Sess: sess, Schema: schema, Prefix: prefix, insts: make(map[Node]*core.Instance)}
}

// instance memoizes the primitive instance of an expression node.
func (ev *Evaluator) instance(n Node, sig string) *core.Instance {
	if inst, ok := ev.insts[n]; ok {
		return inst
	}
	label := fmt.Sprintf("%s/%s#%d", ev.Prefix, sig, ev.nextID)
	ev.nextID++
	inst := ev.Sess.Instance(sig, label)
	ev.insts[n] = inst
	return inst
}

// scratch allocates a result vector. Vectors are small (vector-size), so a
// fresh allocation per call keeps aliasing rules trivial; the virtual cost
// model is unaffected.
func (ev *Evaluator) scratch(t vector.Type, n int) *vector.Vector {
	v := vector.New(t, n)
	v.SetLen(n)
	return v
}
