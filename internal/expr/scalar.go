package expr

import (
	"microadapt/internal/primitive"
	"microadapt/internal/vector"
)

// The nodes in this file are evaluated in plain Go and charged as operator
// cycles: date/year extraction, casts, substrings and CASE expressions are
// not part of the paper's flavor sets, so making them adaptive would only
// add noise to the experiments.

// MapI64 applies an arbitrary scalar function to an integer column,
// producing I64 (e.g. year-of-date extraction). Name is the function's
// symbolic identity for plan serialization: a node whose function is
// registered under Name (see plan.RegisterMapI64) survives a JSON
// round-trip; a node with a bare Fn and no Name is unserializable.
type MapI64 struct {
	Child Node
	Fn    func(int64) int64
	Name  string  // registry name of Fn ("" = not serializable)
	Cost  float64 // cycles per tuple; 0 means 4
}

// Type implements Node.
func (n *MapI64) Type(vector.Schema) vector.Type { return vector.I64 }

// Eval implements Node.
func (n *MapI64) Eval(ev *Evaluator, b *vector.Batch) *vector.Vector {
	in := n.Child.Eval(ev, b)
	res := ev.scratch(vector.I64, b.N)
	out := res.I64()
	apply := func(i int32) { out[i] = n.Fn(in.GetI64(int(i))) }
	if b.Sel != nil {
		for _, i := range b.Sel {
			apply(i)
		}
	} else {
		for i := 0; i < b.N; i++ {
			apply(int32(i))
		}
	}
	cost := n.Cost
	if cost == 0 {
		cost = 4
	}
	ev.Sess.Ctx.OperatorCycles += cost * float64(b.Live())
	return res
}

// ToF64 casts an integer column to float64.
type ToF64 struct{ Child Node }

// CastF64 widens a numeric expression to float64.
func CastF64(n Node) Node { return &ToF64{Child: n} }

// Type implements Node.
func (n *ToF64) Type(vector.Schema) vector.Type { return vector.F64 }

// Eval implements Node.
func (n *ToF64) Eval(ev *Evaluator, b *vector.Batch) *vector.Vector {
	in := n.Child.Eval(ev, b)
	if in.Type() == vector.F64 {
		return in
	}
	res := ev.scratch(vector.F64, b.N)
	out := res.F64()
	apply := func(i int32) { out[i] = in.GetF64(int(i)) }
	if b.Sel != nil {
		for _, i := range b.Sel {
			apply(i)
		}
	} else {
		for i := 0; i < b.N; i++ {
			apply(int32(i))
		}
	}
	ev.Sess.Ctx.OperatorCycles += 0.5 * float64(b.Live())
	return res
}

// Substr extracts a fixed substring of a string column (e.g. the phone
// country code of TPC-H Q22).
type Substr struct {
	Child     Node
	From, Len int // From is 0-based
}

// Type implements Node.
func (n *Substr) Type(vector.Schema) vector.Type { return vector.Str }

// Eval implements Node.
func (n *Substr) Eval(ev *Evaluator, b *vector.Batch) *vector.Vector {
	in := n.Child.Eval(ev, b).Str()
	res := ev.scratch(vector.Str, b.N)
	out := res.Str()
	apply := func(i int32) {
		s := in[i]
		lo := n.From
		if lo > len(s) {
			lo = len(s)
		}
		hi := lo + n.Len
		if hi > len(s) {
			hi = len(s)
		}
		out[i] = s[lo:hi]
	}
	if b.Sel != nil {
		for _, i := range b.Sel {
			apply(i)
		}
	} else {
		for i := 0; i < b.N; i++ {
			apply(int32(i))
		}
	}
	ev.Sess.Ctx.OperatorCycles += 2 * float64(b.Live())
	return res
}

// CaseEqStr evaluates to Then where the string column equals Value, Else
// otherwise (Q8's market-share indicator).
type CaseEqStr struct {
	Col        Node
	Value      string
	Then, Else int64
}

// Type implements Node.
func (n *CaseEqStr) Type(vector.Schema) vector.Type { return vector.I64 }

// Eval implements Node.
func (n *CaseEqStr) Eval(ev *Evaluator, b *vector.Batch) *vector.Vector {
	in := n.Col.Eval(ev, b).Str()
	res := ev.scratch(vector.I64, b.N)
	out := res.I64()
	apply := func(i int32) {
		if in[i] == n.Value {
			out[i] = n.Then
		} else {
			out[i] = n.Else
		}
	}
	if b.Sel != nil {
		for _, i := range b.Sel {
			apply(i)
		}
	} else {
		for i := 0; i < b.N; i++ {
			apply(int32(i))
		}
	}
	ev.Sess.Ctx.OperatorCycles += 3 * float64(b.Live())
	return res
}

// CaseLikeStr evaluates to Then where the string column matches the LIKE
// pattern (Q14's promo indicator), Else otherwise. Set Pattern (a
// simplified SQL LIKE pattern, matched with primitive.LikeMatch) for a
// node that survives plan serialization; Match overrides Pattern with an
// arbitrary predicate but makes the node unserializable.
type CaseLikeStr struct {
	Col        Node
	Pattern    string
	Match      func(s string) bool // overrides Pattern when non-nil
	Then, Else int64
}

// Type implements Node.
func (n *CaseLikeStr) Type(vector.Schema) vector.Type { return vector.I64 }

// Eval implements Node.
func (n *CaseLikeStr) Eval(ev *Evaluator, b *vector.Batch) *vector.Vector {
	in := n.Col.Eval(ev, b).Str()
	res := ev.scratch(vector.I64, b.N)
	out := res.I64()
	match := n.Match
	if match == nil {
		pattern := n.Pattern
		match = func(s string) bool { return primitive.LikeMatch(s, pattern) }
	}
	apply := func(i int32) {
		if match(in[i]) {
			out[i] = n.Then
		} else {
			out[i] = n.Else
		}
	}
	if b.Sel != nil {
		for _, i := range b.Sel {
			apply(i)
		}
	} else {
		for i := 0; i < b.N; i++ {
			apply(int32(i))
		}
	}
	ev.Sess.Ctx.OperatorCycles += 6 * float64(b.Live())
	return res
}
