package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAdmissionShedsWhenFull pins the 429 path: with one busy worker and
// the one queue slot occupied, the next request is shed immediately —
// never queued, never executed.
func TestAdmissionShedsWhenFull(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Workers: 1, QueueDepth: 1})
	defer a.Drain()
	release := make(chan struct{})
	running := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := a.Do(context.Background(), func() error { close(running); <-release; return nil }); err != nil {
			t.Errorf("blocker: %v", err)
		}
	}()
	<-running // the worker is now busy executing the blocker
	go func() {
		defer wg.Done()
		if err := a.Do(context.Background(), func() error { return nil }); err != nil {
			t.Errorf("queued request: %v", err)
		}
	}()
	waitFor(t, "queue slot occupied", func() bool { return a.QueueDepth() == 1 })

	if err := a.Do(context.Background(), func() error { return nil }); !errors.Is(err, ErrShed) {
		t.Fatalf("Do while saturated = %v, want ErrShed", err)
	}
	close(release)
	wg.Wait()

	st := a.Stats()
	if st.Executed != 2 || st.Shed != 1 {
		t.Errorf("stats = %+v, want executed=2 shed=1", st)
	}
}

// TestAdmissionExpiredWhileQueued pins the deadline contract: a request
// whose context expires while it waits in the queue returns the context
// error to its caller and is skipped — not executed — when a worker
// finally reaches it.
func TestAdmissionExpiredWhileQueued(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Workers: 1, QueueDepth: 1})
	defer a.Drain()
	release := make(chan struct{})
	running := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = a.Do(context.Background(), func() error { close(running); <-release; return nil })
	}()
	<-running

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	executed := false
	err := a.Do(ctx, func() error { executed = true; return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Do = %v, want DeadlineExceeded", err)
	}

	close(release)
	wg.Wait()
	waitFor(t, "expired ticket to be skipped", func() bool { return a.Stats().Expired == 1 })
	if executed {
		t.Error("expired request's job ran anyway")
	}
	if st := a.Stats(); st.Executed != 1 {
		t.Errorf("executed = %d, want 1 (only the blocker)", st.Executed)
	}
}

// TestAdmissionDrain pins graceful shutdown: Drain completes everything
// already admitted (executing and queued), rejects everything new with
// ErrDraining, and returns only once the pool is idle.
func TestAdmissionDrain(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Workers: 2, QueueDepth: 4})
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = a.Do(context.Background(), func() error { started <- struct{}{}; <-release; return nil })
		}()
	}
	<-started
	<-started
	waitFor(t, "two requests queued", func() bool { return a.QueueDepth() == 2 })

	drained := make(chan struct{})
	go func() { a.Drain(); close(drained) }()
	waitFor(t, "draining flag", a.Draining)

	if err := a.Do(context.Background(), func() error { return nil }); !errors.Is(err, ErrDraining) {
		t.Fatalf("Do while draining = %v, want ErrDraining", err)
	}
	select {
	case <-drained:
		t.Fatal("Drain returned while admitted work was still blocked")
	default:
	}

	close(release)
	<-drained
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("admitted request %d failed: %v", i, err)
		}
	}
	st := a.Stats()
	if st.Executed != 4 || st.Rejected != 1 {
		t.Errorf("stats = %+v, want executed=4 rejected=1", st)
	}
	a.Drain() // idempotent
}

// TestAdmissionPropagatesJobError: a job's own error comes back verbatim.
func TestAdmissionPropagatesJobError(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Workers: 1, QueueDepth: 1})
	defer a.Drain()
	boom := errors.New("boom")
	if err := a.Do(context.Background(), func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want boom", err)
	}
}

// TestAdmissionQueueWait: queue-wait percentiles are recorded for
// executed work.
func TestAdmissionQueueWait(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Workers: 1, QueueDepth: 4})
	defer a.Drain()
	for i := 0; i < 8; i++ {
		if err := a.Do(context.Background(), func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if a.QueueWait(99) < 0 {
		t.Error("negative queue wait")
	}
	if got := a.Stats().Executed; got != 8 {
		t.Errorf("executed = %d, want 8", got)
	}
}
