package server

import (
	"context"
	"testing"
	"time"
)

// TestRetryPolicyDelay: capped exponential, floored by Retry-After.
func TestRetryPolicyDelay(t *testing.T) {
	p := RetryPolicy{Max: 4, Base: 25 * time.Millisecond, Cap: time.Second}
	cases := []struct {
		attempt    int
		retryAfter time.Duration
		want       time.Duration
	}{
		{0, 0, 25 * time.Millisecond},
		{1, 0, 50 * time.Millisecond},
		{2, 0, 100 * time.Millisecond},
		{10, 0, time.Second},                                // capped
		{0, 400 * time.Millisecond, 400 * time.Millisecond}, // server hint wins
		{10, 5 * time.Second, time.Second},                  // hint still capped
	}
	for _, tc := range cases {
		if got := p.delay(tc.attempt, tc.retryAfter); got != tc.want {
			t.Errorf("delay(%d, %v) = %v, want %v", tc.attempt, tc.retryAfter, got, tc.want)
		}
	}
	zero := RetryPolicy{}
	if got := zero.delay(0, 0); got != 25*time.Millisecond {
		t.Errorf("zero-policy base delay = %v, want 25ms default", got)
	}
}

// TestClientRetriesSheds: a shed answer is retried with backoff and
// succeeds once the worker frees up — the caller never sees the 429.
func TestClientRetriesSheds(t *testing.T) {
	run, c := startTestServer(t, Config{Workers: 1, QueueDepth: -1, RetryAfter: 10 * time.Millisecond})
	c.WithRetry(RetryPolicy{Max: 50, Base: 5 * time.Millisecond, Cap: 20 * time.Millisecond})

	running := make(chan struct{})
	release := make(chan struct{})
	blockerDone := make(chan error, 1)
	go func() {
		blockerDone <- run.Server.adm.Do(context.Background(), func() error {
			close(running)
			<-release
			return nil
		})
	}()
	<-running

	done := make(chan struct{})
	var out *Outcome
	var err error
	go func() {
		defer close(done)
		out, err = c.Query(QueryRequest{Query: 6})
	}()
	// Hold the worker long enough that the client must shed at least once.
	time.Sleep(50 * time.Millisecond)
	close(release)
	if berr := <-blockerDone; berr != nil {
		t.Fatalf("blocker job: %v", berr)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("retrying query never completed")
	}
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if !out.OK() {
		t.Fatalf("status %d after retries, want 200", out.Status)
	}
	if c.Retries() == 0 {
		t.Error("client reports zero retries despite a pinned worker")
	}
}

// TestClientDoesNotRetryDrain: 503 from a draining server surfaces
// immediately — retrying a server that is going away is wrong.
func TestClientDoesNotRetryDrain(t *testing.T) {
	run, c := startTestServer(t, Config{Workers: 1})
	run.Server.Drain()
	start := time.Now()
	out, err := c.Query(QueryRequest{Query: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Draining() {
		t.Fatalf("status %d, want 503", out.Status)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("drain answer took %v — the client appears to have retried it", elapsed)
	}
}
