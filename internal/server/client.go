package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client talks madaptd's wire protocol. A shed (429) or drain (503)
// answer is a well-formed protocol outcome, not an error: the soak
// harness must distinguish "the server said back off" (expected under
// overload) from a genuinely broken exchange.
type Client struct {
	base string
	http *http.Client
}

// NewClient builds a client for a server base URL ("http://host:port").
func NewClient(base string) *Client {
	return &Client{base: base, http: &http.Client{Timeout: 2 * time.Minute}}
}

// Outcome is one request's protocol-level result.
type Outcome struct {
	Status int
	// Response is set on 200.
	Response *QueryResponse
	// Err is set on non-2xx, decoded from the error body.
	Err *ErrorResponse
	// RetryAfter is the suggested backoff on 429.
	RetryAfter time.Duration
}

// Shed reports a 429 load-shed answer.
func (o *Outcome) Shed() bool { return o.Status == http.StatusTooManyRequests }

// Draining reports a 503 drain answer.
func (o *Outcome) Draining() bool { return o.Status == http.StatusServiceUnavailable }

// OK reports a 200 answer.
func (o *Outcome) OK() bool { return o.Status == http.StatusOK }

func (c *Client) post(path string, body any) (*Outcome, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	return decodeOutcome(resp)
}

func decodeOutcome(resp *http.Response) (*Outcome, error) {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Status: resp.StatusCode}
	if resp.StatusCode == http.StatusOK {
		var qr QueryResponse
		if err := json.Unmarshal(raw, &qr); err != nil {
			return nil, fmt.Errorf("server: malformed 200 body %q: %w", raw, err)
		}
		out.Response = &qr
		return out, nil
	}
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		return nil, fmt.Errorf("server: malformed error body (status %d) %q: %w", resp.StatusCode, raw, err)
	}
	out.Err = &er
	if er.RetryAfterMS > 0 {
		out.RetryAfter = time.Duration(er.RetryAfterMS) * time.Millisecond
	}
	return out, nil
}

// CreateSession mints a server-side session and returns its id.
func (c *Client) CreateSession() (string, error) {
	resp, err := c.http.Post(c.base+"/v1/session", "application/json", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("server: create session: status %d: %s", resp.StatusCode, raw)
	}
	var sr SessionResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		return "", err
	}
	return sr.Session, nil
}

// DeleteSession drops a session; unknown ids are an error.
func (c *Client) DeleteSession(id string) error {
	req, err := http.NewRequest(http.MethodDelete, c.base+"/v1/session/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("server: delete session %s: status %d: %s", id, resp.StatusCode, raw)
	}
	return nil
}

// SessionStats fetches a session's accumulated adaptation counters.
func (c *Client) SessionStats(id string) (SessionStats, error) {
	resp, err := c.http.Get(c.base + "/v1/session/" + id)
	if err != nil {
		return SessionStats{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return SessionStats{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return SessionStats{}, fmt.Errorf("server: session stats %s: status %d: %s", id, resp.StatusCode, raw)
	}
	var st SessionStats
	if err := json.Unmarshal(raw, &st); err != nil {
		return SessionStats{}, err
	}
	return st, nil
}

// Query runs one TPC-H query.
func (c *Client) Query(req QueryRequest) (*Outcome, error) { return c.post("/v1/query", req) }

// Plan ships a marshalled plan for server-side validation and execution.
func (c *Client) Plan(req PlanRequest) (*Outcome, error) { return c.post("/v1/plan", req) }

// Metrics fetches the server's metrics snapshot.
func (c *Client) Metrics() (MetricsSnapshot, error) {
	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		return MetricsSnapshot{}, err
	}
	defer resp.Body.Close()
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return MetricsSnapshot{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return MetricsSnapshot{}, errors.New("server: metrics: non-200")
	}
	return m, nil
}

// Healthy reports whether /healthz answers 200.
func (c *Client) Healthy() bool {
	resp, err := c.http.Get(c.base + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// WaitReady polls /healthz until it answers 200 or the timeout passes —
// the shared readiness helper for tests, the soak harness, and CI.
func (c *Client) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.Healthy() {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("server: %s not ready after %v", c.base, timeout)
}
