package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"microadapt/internal/service"
)

// RetryPolicy governs automatic retry of load-shed (429) answers inside
// the client. Backoff is capped exponential — Base doubling per attempt
// up to Cap — but never shorter than the server's Retry-After hint, and
// jittered ±50% so a herd of shed clients does not re-arrive in phase.
// Drain (503) answers are never retried: a draining server is going
// away, not momentarily busy.
type RetryPolicy struct {
	// Max is how many retries follow the first attempt; 0 disables
	// retrying entirely and surfaces every shed to the caller.
	Max int
	// Base is the first backoff (default 25ms). Attempt k waits
	// min(Base<<k, Cap), floored by the server's Retry-After.
	Base time.Duration
	// Cap bounds the backoff (default 1s).
	Cap time.Duration
}

func (p RetryPolicy) delay(attempt int, retryAfter time.Duration) time.Duration {
	base, cap := p.Base, p.Cap
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	if cap <= 0 {
		cap = time.Second
	}
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if retryAfter > d {
		d = retryAfter
	}
	if d > cap {
		d = cap
	}
	return d
}

// DefaultRetry is what NewClient installs: a handful of attempts capped
// at a second, enough to ride out a transient queue-full without hiding
// a persistently saturated server.
var DefaultRetry = RetryPolicy{Max: 4, Base: 25 * time.Millisecond, Cap: time.Second}

// Client talks madaptd's wire protocol. A shed (429) or drain (503)
// answer is a well-formed protocol outcome, not an error: the soak
// harness must distinguish "the server said back off" (expected under
// overload) from a genuinely broken exchange. Sheds are retried with
// backoff per the client's RetryPolicy before being surfaced.
type Client struct {
	base    string
	http    *http.Client
	retry   RetryPolicy
	binWire bool
	retries atomic.Int64

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewClient builds a client for a server base URL ("http://host:port")
// with DefaultRetry installed.
func NewClient(base string) *Client {
	return &Client{
		base:  base,
		http:  &http.Client{Timeout: 2 * time.Minute},
		retry: DefaultRetry,
		rng:   rand.New(rand.NewSource(int64(len(base)) + 0x9e3779b9)),
	}
}

// WithRetry replaces the retry policy and returns the client, so callers
// can chain it off NewClient. RetryPolicy{} turns retrying off.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	c.retry = p
	return c
}

// WithBinaryWire toggles negotiation of the binary columnar result
// encoding (wirebin.go) and returns the client. When on, result-bearing
// requests carry the WireHeader header; a peer that understands it
// answers binary bodies, an old peer ignores it and answers JSON —
// either way the client decodes transparently (QueryResponse.ResultTable,
// binary "bin" chunk frames), so turning this on against a mixed fleet
// is always safe.
func (c *Client) WithBinaryWire(on bool) *Client {
	c.binWire = on
	return c
}

// Retries reports how many shed answers the client retried (and so hid
// from callers) since construction.
func (c *Client) Retries() int64 { return c.retries.Load() }

// jitter spreads d over [d/2, 3d/2) so retries from many clients decohere.
func (c *Client) jitter(d time.Duration) time.Duration {
	c.rngMu.Lock()
	f := 0.5 + c.rng.Float64()
	c.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// Outcome is one request's protocol-level result.
type Outcome struct {
	Status int
	// Response is set on 200.
	Response *QueryResponse
	// Err is set on non-2xx, decoded from the error body.
	Err *ErrorResponse
	// RetryAfter is the suggested backoff on 429.
	RetryAfter time.Duration
}

// Shed reports a 429 load-shed answer.
func (o *Outcome) Shed() bool { return o.Status == http.StatusTooManyRequests }

// Draining reports a 503 drain answer.
func (o *Outcome) Draining() bool { return o.Status == http.StatusServiceUnavailable }

// OK reports a 200 answer.
func (o *Outcome) OK() bool { return o.Status == http.StatusOK }

func (c *Client) post(path string, body any) (*Outcome, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	return c.postBytes(path, data)
}

// postWire issues one POST with the content type and, when the client is
// in binary-wire mode, the WireHeader negotiation header set.
func (c *Client) postWire(path string, data []byte) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.binWire {
		req.Header.Set(WireHeader, WireBin)
	}
	return c.http.Do(req)
}

func (c *Client) postBytes(path string, data []byte) (*Outcome, error) {
	for attempt := 0; ; attempt++ {
		resp, err := c.postWire(path, data)
		if err != nil {
			return nil, err
		}
		out, err := decodeOutcome(resp)
		if err != nil || !out.Shed() || attempt >= c.retry.Max {
			return out, err
		}
		c.retries.Add(1)
		time.Sleep(c.jitter(c.retry.delay(attempt, out.RetryAfter)))
	}
}

func decodeOutcome(resp *http.Response) (*Outcome, error) {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Status: resp.StatusCode}
	if resp.StatusCode == http.StatusOK {
		var qr QueryResponse
		if err := json.Unmarshal(raw, &qr); err != nil {
			return nil, fmt.Errorf("server: malformed 200 body %q: %w", raw, err)
		}
		out.Response = &qr
		return out, nil
	}
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		return nil, fmt.Errorf("server: malformed error body (status %d) %q: %w", resp.StatusCode, raw, err)
	}
	out.Err = &er
	if er.RetryAfterMS > 0 {
		out.RetryAfter = time.Duration(er.RetryAfterMS) * time.Millisecond
	}
	return out, nil
}

// CreateSession mints a server-side session and returns its id.
func (c *Client) CreateSession() (string, error) {
	resp, err := c.http.Post(c.base+"/v1/session", "application/json", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("server: create session: status %d: %s", resp.StatusCode, raw)
	}
	var sr SessionResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		return "", err
	}
	return sr.Session, nil
}

// DeleteSession drops a session; unknown ids are an error.
func (c *Client) DeleteSession(id string) error {
	req, err := http.NewRequest(http.MethodDelete, c.base+"/v1/session/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("server: delete session %s: status %d: %s", id, resp.StatusCode, raw)
	}
	return nil
}

// SessionStats fetches a session's accumulated adaptation counters.
func (c *Client) SessionStats(id string) (SessionStats, error) {
	resp, err := c.http.Get(c.base + "/v1/session/" + id)
	if err != nil {
		return SessionStats{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return SessionStats{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return SessionStats{}, fmt.Errorf("server: session stats %s: status %d: %s", id, resp.StatusCode, raw)
	}
	var st SessionStats
	if err := json.Unmarshal(raw, &st); err != nil {
		return SessionStats{}, err
	}
	return st, nil
}

// Query runs one TPC-H query.
func (c *Client) Query(req QueryRequest) (*Outcome, error) { return c.post("/v1/query", req) }

// Plan ships a marshalled plan for server-side validation and execution.
func (c *Client) Plan(req PlanRequest) (*Outcome, error) { return c.post("/v1/plan", req) }

// Flavors pulls the server's flavor-knowledge snapshot — one half of the
// federation gossip exchange.
func (c *Client) Flavors() (service.KnowledgeSnapshot, error) {
	resp, err := c.http.Get(c.base + "/v1/flavors")
	if err != nil {
		return service.KnowledgeSnapshot{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return service.KnowledgeSnapshot{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return service.KnowledgeSnapshot{}, fmt.Errorf("server: flavors: status %d: %s", resp.StatusCode, raw)
	}
	var snap service.KnowledgeSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return service.KnowledgeSnapshot{}, err
	}
	return snap, nil
}

// PushFlavors merges a knowledge snapshot into the server's cache and
// returns how many estimates it accepted — the other half of gossip.
func (c *Client) PushFlavors(snap service.KnowledgeSnapshot) (int, error) {
	data, err := json.Marshal(snap)
	if err != nil {
		return 0, err
	}
	resp, err := c.http.Post(c.base+"/v1/flavors", "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("server: push flavors: status %d: %s", resp.StatusCode, raw)
	}
	var pr FlavorsPushResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		return 0, err
	}
	return pr.Accepted, nil
}

// Metrics fetches the server's metrics snapshot.
func (c *Client) Metrics() (MetricsSnapshot, error) {
	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		return MetricsSnapshot{}, err
	}
	defer resp.Body.Close()
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return MetricsSnapshot{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return MetricsSnapshot{}, errors.New("server: metrics: non-200")
	}
	return m, nil
}

// Healthy reports whether /healthz answers 200.
func (c *Client) Healthy() bool {
	resp, err := c.http.Get(c.base + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// WaitReady polls /healthz until it answers 200 or the timeout passes —
// the shared readiness helper for tests, the soak harness, and CI.
func (c *Client) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.Healthy() {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("server: %s not ready after %v", c.base, timeout)
}
