// Binary columnar wire encoding for result tables: the packed
// little-endian column body that replaces per-value JSON text on the
// distributed data path.
//
// Layout (all integers little-endian; uvarint is encoding/binary's
// unsigned varint):
//
//	magic   "MWT1" (4 bytes)
//	uvarint len(name), name bytes
//	uvarint rows
//	uvarint cols
//	per column:
//	  uvarint len(name), name bytes
//	  byte    type code (1=schr 2=sint 3=slng 4=dbl 5=str)
//	  body:
//	    integer types  rows x 8 bytes, values widened to int64 (two's
//	                   complement), exactly like the JSON form's I64
//	    dbl            rows x 8 bytes, raw IEEE-754 bits via
//	                   math.Float64bits — NaN and ±Inf round-trip
//	                   bit-exactly, which encoding/json cannot do at all
//	    str            rows x uvarint byte length, then the concatenated
//	                   string bytes
//
// The codec converts to and from the TableJSON wire form, so everything
// downstream of it — DecodeTable's width narrowing, TableJSON.Equal,
// PartialAccumulator folding, fingerprints — is shared with the JSON
// path and behaves identically over either body format.
//
// Negotiation is request-driven: a client that understands the binary
// form sends the WireHeader header (see Client.WithBinaryWire), and a
// server that honors it answers /v1/plan and /v1/query results as
// result_bin and /v1/plan/stream chunks as base64 "bin" frame fields. An
// old peer ignores the unknown header and answers plain JSON, which the
// client decodes transparently — negotiation cannot fail, it can only
// fall back. Config.LegacyJSONWire makes a new server behave like such
// an old peer, which is what the mixed-fleet tests and `madaptd
// -wire-json` use.
package server

import (
	"encoding/binary"
	"fmt"
	"math"

	"microadapt/internal/vector"
)

// WireHeader is the request header a client sends to negotiate the
// binary columnar encoding for result tables.
const WireHeader = "X-Madapt-Wire"

// WireBin is the WireHeader value requesting the binary encoding.
const WireBin = "bin"

// wireBinMagic guards against decoding arbitrary bytes as a table.
var wireBinMagic = [4]byte{'M', 'W', 'T', '1'}

// Type codes of the binary form. They deliberately do not reuse
// vector.Type's numeric values: the wire format is versioned by its
// magic, not by internal enum ordering.
const (
	binI16 byte = 1
	binI32 byte = 2
	binI64 byte = 3
	binF64 byte = 4
	binStr byte = 5
)

func binTypeCode(name string) (byte, error) {
	switch name {
	case vector.I16.String():
		return binI16, nil
	case vector.I32.String():
		return binI32, nil
	case vector.I64.String():
		return binI64, nil
	case vector.F64.String():
		return binF64, nil
	case vector.Str.String():
		return binStr, nil
	}
	return 0, fmt.Errorf("unknown column type %q", name)
}

func binTypeName(code byte) (string, error) {
	switch code {
	case binI16:
		return vector.I16.String(), nil
	case binI32:
		return vector.I32.String(), nil
	case binI64:
		return vector.I64.String(), nil
	case binF64:
		return vector.F64.String(), nil
	case binStr:
		return vector.Str.String(), nil
	}
	return "", fmt.Errorf("unknown binary type code %d", code)
}

// MarshalTableBin packs a wire table into the binary columnar form.
// Float columns ship raw bits, so a table that has been through
// EscapeNonFinite (F64Bits set) packs identically to its plain form.
func MarshalTableBin(tj *TableJSON) ([]byte, error) {
	if tj == nil {
		return nil, fmt.Errorf("server: marshal bin: nil table")
	}
	// Size the buffer once: fixed-width columns dominate, strings get
	// their exact byte length plus worst-case 5-byte uvarints.
	size := 4 + 10 + len(tj.Name) + 10
	for ci := range tj.Cols {
		c := &tj.Cols[ci]
		size += 10 + len(c.Name) + 1 + 8*tj.Rows
		for _, s := range c.Str {
			size += len(s) + 5
		}
	}
	out := make([]byte, 0, size)
	out = append(out, wireBinMagic[:]...)
	out = appendUvarintString(out, tj.Name)
	out = binary.AppendUvarint(out, uint64(tj.Rows))
	out = binary.AppendUvarint(out, uint64(len(tj.Cols)))
	for ci := range tj.Cols {
		c := &tj.Cols[ci]
		code, err := binTypeCode(c.Type)
		if err != nil {
			return nil, fmt.Errorf("server: marshal bin: col %s: %w", c.Name, err)
		}
		out = appendUvarintString(out, c.Name)
		out = append(out, code)
		var vals int
		switch code {
		case binF64:
			if len(c.F64Bits) > 0 {
				vals = len(c.F64Bits)
				for _, b := range c.F64Bits {
					out = binary.LittleEndian.AppendUint64(out, b)
				}
			} else {
				vals = len(c.F64)
				for _, v := range c.F64 {
					out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
				}
			}
		case binStr:
			vals = len(c.Str)
			for _, s := range c.Str {
				out = appendUvarintString(out, s)
			}
		default:
			vals = len(c.I64)
			for _, v := range c.I64 {
				out = binary.LittleEndian.AppendUint64(out, uint64(v))
			}
		}
		if vals != tj.Rows {
			return nil, fmt.Errorf("server: marshal bin: col %s: %d values, want %d rows", c.Name, vals, tj.Rows)
		}
	}
	return out, nil
}

// UnmarshalTableBin unpacks the binary columnar form back into the
// TableJSON wire shape (integers widened to I64, floats reconstructed
// from their bits). Corrupt or truncated input returns an error; it
// never panics and never allocates more than the input can account for.
func UnmarshalTableBin(data []byte) (*TableJSON, error) {
	r := binReader{data: data}
	var magic [4]byte
	if !r.bytes(magic[:]) || magic != wireBinMagic {
		return nil, fmt.Errorf("server: unmarshal bin: bad magic")
	}
	name, ok := r.str()
	rows, ok2 := r.uvarint()
	ncols, ok3 := r.uvarint()
	if !ok || !ok2 || !ok3 {
		return nil, fmt.Errorf("server: unmarshal bin: truncated header")
	}
	// Every column body costs at least one byte per row (string uvarint
	// lengths) or eight (fixed-width), and each column header at least
	// two bytes; reject size claims the input cannot hold before
	// allocating anything proportional to them.
	if rows > uint64(len(data)) || ncols > uint64(len(data)) {
		return nil, fmt.Errorf("server: unmarshal bin: claims %d rows x %d cols in %d bytes", rows, ncols, len(data))
	}
	tj := &TableJSON{Name: name, Rows: int(rows), Cols: make([]ColumnJSON, int(ncols))}
	for ci := range tj.Cols {
		cname, ok := r.str()
		if !ok {
			return nil, fmt.Errorf("server: unmarshal bin: truncated at column %d header", ci)
		}
		code, ok := r.byte()
		if !ok {
			return nil, fmt.Errorf("server: unmarshal bin: truncated at column %s type", cname)
		}
		tname, err := binTypeName(code)
		if err != nil {
			return nil, fmt.Errorf("server: unmarshal bin: col %s: %w", cname, err)
		}
		col := ColumnJSON{Name: cname, Type: tname}
		switch code {
		case binF64:
			raw, ok := r.take(8 * int(rows))
			if !ok {
				return nil, fmt.Errorf("server: unmarshal bin: col %s: truncated float body", cname)
			}
			col.F64 = make([]float64, rows)
			for i := range col.F64 {
				col.F64[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
			}
		case binStr:
			col.Str = make([]string, rows)
			// Two passes: measure the blob, then slice every value out of
			// one string allocation.
			save := r.off
			total := 0
			for i := 0; i < int(rows); i++ {
				n, ok := r.uvarint()
				if !ok || !r.skip(int(n)) {
					return nil, fmt.Errorf("server: unmarshal bin: col %s: truncated string body", cname)
				}
				total += int(n)
			}
			r.off = save
			blob := make([]byte, 0, total)
			lens := make([]int, rows)
			for i := 0; i < int(rows); i++ {
				n, _ := r.uvarint()
				b, _ := r.take(int(n))
				blob = append(blob, b...)
				lens[i] = int(n)
			}
			s := string(blob)
			off := 0
			for i, n := range lens {
				col.Str[i] = s[off : off+n]
				off += n
			}
		default:
			raw, ok := r.take(8 * int(rows))
			if !ok {
				return nil, fmt.Errorf("server: unmarshal bin: col %s: truncated integer body", cname)
			}
			col.I64 = make([]int64, rows)
			for i := range col.I64 {
				col.I64[i] = int64(binary.LittleEndian.Uint64(raw[8*i:]))
			}
		}
		tj.Cols[ci] = col
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("server: unmarshal bin: %d trailing bytes", len(data)-r.off)
	}
	return tj, nil
}

func appendUvarintString(out []byte, s string) []byte {
	out = binary.AppendUvarint(out, uint64(len(s)))
	return append(out, s...)
}

// binReader is a bounds-checked cursor over the binary form.
type binReader struct {
	data []byte
	off  int
}

func (r *binReader) take(n int) ([]byte, bool) {
	if n < 0 || r.off+n > len(r.data) || r.off+n < r.off {
		return nil, false
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, true
}

func (r *binReader) skip(n int) bool {
	_, ok := r.take(n)
	return ok
}

func (r *binReader) bytes(dst []byte) bool {
	b, ok := r.take(len(dst))
	if ok {
		copy(dst, b)
	}
	return ok
}

func (r *binReader) byte() (byte, bool) {
	b, ok := r.take(1)
	if !ok {
		return 0, false
	}
	return b[0], true
}

func (r *binReader) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, false
	}
	r.off += n
	return v, true
}

func (r *binReader) str() (string, bool) {
	n, ok := r.uvarint()
	if !ok || n > uint64(len(r.data)-r.off) {
		return "", false
	}
	b, ok := r.take(int(n))
	if !ok {
		return "", false
	}
	return string(b), true
}
