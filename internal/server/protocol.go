// Wire protocol of madaptd: the JSON request/response bodies, the result
// fingerprint, and a typed-column table encoding that survives a wire
// round trip bit-identically. Finite floats survive JSON because
// encoding/json prints float64 in shortest form, which decodes back to
// the same bits; non-finite floats (NaN, ±Inf) cannot be represented in
// JSON at all, so on the JSON path they travel losslessly as raw
// IEEE-754 bits in the F64Bits escape column (see EscapeNonFinite), and
// on the negotiated binary path (wirebin.go) every float ships as raw
// bits to begin with.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"microadapt/internal/engine"
	"microadapt/internal/service"
	"microadapt/internal/vector"
)

// QueryRequest asks the server to run one TPC-H query by number.
type QueryRequest struct {
	// Session is a session id from POST /v1/session; empty runs
	// sessionless (still warm-started from the shared cache, but not
	// counted against any client session).
	Session string `json:"session,omitempty"`
	// Query is the TPC-H query number, 1-22.
	Query int `json:"query"`
	// TimeoutMS overrides the server's default per-request deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// IncludeResult returns the full result table, not just its
	// fingerprint. The soak harness samples with this on to prove wire
	// results bit-identical to in-process execution.
	IncludeResult bool `json:"include_result,omitempty"`
}

// PlanRequest ships a client-built logical plan (the plan JSON wire form
// produced by plan.MarshalPlan) for server-side validation and execution.
type PlanRequest struct {
	Session       string          `json:"session,omitempty"`
	Plan          json.RawMessage `json:"plan"`
	TimeoutMS     int             `json:"timeout_ms,omitempty"`
	IncludeResult bool            `json:"include_result,omitempty"`
}

// StatsJSON is the per-job execution statistics in wire form.
type StatsJSON struct {
	LatencyUS     int64   `json:"latency_us"`
	PrimCycles    float64 `json:"prim_cycles"`
	Instances     int     `json:"instances"`
	AdaptiveCalls int64   `json:"adaptive_calls"`
	OffBestCalls  int64   `json:"off_best_calls"`
}

func statsJSON(st service.JobStats) StatsJSON {
	return StatsJSON{
		LatencyUS:     st.Latency.Microseconds(),
		PrimCycles:    st.PrimCycles,
		Instances:     st.Instances,
		AdaptiveCalls: st.AdaptiveCalls,
		OffBestCalls:  st.OffBestCalls,
	}
}

// QueryResponse is the success body of /v1/query and /v1/plan.
type QueryResponse struct {
	Query       int        `json:"query,omitempty"` // 0 for plan requests
	Plan        string     `json:"plan,omitempty"`  // plan name for plan requests
	Session     string     `json:"session,omitempty"`
	Rows        int        `json:"rows"`
	Fingerprint string     `json:"fingerprint"`
	Stats       StatsJSON  `json:"stats"`
	Result      *TableJSON `json:"result,omitempty"`
	// ResultBin is Result in the negotiated binary columnar encoding
	// (wirebin.go), set instead of Result when the client sent the
	// WireHeader and the server honors it. encoding/json carries it as
	// base64.
	ResultBin []byte `json:"result_bin,omitempty"`
}

// ResultTable returns the response's result table in wire form,
// whichever encoding it arrived in — the JSON field as-is, or the binary
// field decoded. (nil, nil) means the response carried no result (the
// request did not set IncludeResult).
func (r *QueryResponse) ResultTable() (*TableJSON, error) {
	if r.Result != nil {
		return r.Result, nil
	}
	if len(r.ResultBin) > 0 {
		return UnmarshalTableBin(r.ResultBin)
	}
	return nil, nil
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterMS accompanies 429 (load shed): how long the client
	// should back off. Mirrors the Retry-After header in milliseconds,
	// since the header's granularity is whole seconds.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// SessionResponse is the body of POST /v1/session.
type SessionResponse struct {
	Session string `json:"session"`
}

// Fingerprint digests a result table — full render plus row count, the
// same material the service equivalence tests compare — into a short hex
// string clients can check without shipping the table.
func Fingerprint(t *engine.Table) string {
	h := sha256.New()
	fmt.Fprintf(h, "%srows=%d", engine.TableString(t, 0), t.Rows())
	return hex.EncodeToString(h.Sum(nil))
}

// ColumnJSON is one typed column of a wire-encoded result. Exactly one of
// the value arrays is set, per Type.
type ColumnJSON struct {
	Name string `json:"name"`
	// Type uses the engine's type names: schr, sint, slng, dbl, str.
	// Integer columns of every width travel in I64.
	Type string    `json:"type"`
	I64  []int64   `json:"i64,omitempty"`
	F64  []float64 `json:"f64,omitempty"`
	Str  []string  `json:"str,omitempty"`
	// F64Bits replaces F64 when the column holds any non-finite value:
	// encoding/json rejects NaN and ±Inf outright, so such columns travel
	// as raw IEEE-754 bits (exactly representable as JSON integers).
	// Exactly one of F64 and F64Bits is set on a dbl column.
	F64Bits []uint64 `json:"f64b,omitempty"`
}

// f64Len is the row count of a dbl column in either representation.
func (c *ColumnJSON) f64Len() int {
	if len(c.F64Bits) > 0 {
		return len(c.F64Bits)
	}
	return len(c.F64)
}

// f64Bit is row r's raw bits in either representation.
func (c *ColumnJSON) f64Bit(r int) uint64 {
	if len(c.F64Bits) > 0 {
		return c.F64Bits[r]
	}
	return math.Float64bits(c.F64[r])
}

// TableJSON is a result table in wire form.
type TableJSON struct {
	Name string       `json:"name"`
	Rows int          `json:"rows"`
	Cols []ColumnJSON `json:"cols"`
}

// EscapeNonFinite rewrites every dbl column containing a NaN or ±Inf
// into its F64Bits form, so the table survives json.Marshal losslessly.
// Columns of only finite values keep the readable F64 form. It returns
// the table for chaining and must be called on every table bound for a
// JSON response body — json.Marshal fails outright on non-finite floats,
// and on the streaming path that failure would surface only as an
// in-band error frame after the 200 was committed.
func (t *TableJSON) EscapeNonFinite() *TableJSON {
	if t == nil {
		return nil
	}
	for ci := range t.Cols {
		c := &t.Cols[ci]
		finite := true
		for _, v := range c.F64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				finite = false
				break
			}
		}
		if finite {
			continue
		}
		c.F64Bits = make([]uint64, len(c.F64))
		for r, v := range c.F64 {
			c.F64Bits[r] = math.Float64bits(v)
		}
		c.F64 = nil
	}
	return t
}

// EncodeTable converts a result table to wire form.
func EncodeTable(t *engine.Table) *TableJSON {
	out := &TableJSON{Name: t.Name, Rows: t.Rows(), Cols: make([]ColumnJSON, len(t.Sch))}
	for ci, f := range t.Sch {
		col := ColumnJSON{Name: f.Name, Type: f.Type.String()}
		v := t.Cols[ci]
		switch f.Type {
		case vector.I16, vector.I32, vector.I64:
			col.I64 = make([]int64, t.Rows())
			for r := range col.I64 {
				col.I64[r] = v.GetI64(r)
			}
		case vector.F64:
			col.F64 = make([]float64, t.Rows())
			for r := range col.F64 {
				col.F64[r] = v.GetF64(r)
			}
		case vector.Str:
			col.Str = make([]string, t.Rows())
			for r := range col.Str {
				col.Str[r] = v.GetStr(r)
			}
		}
		out.Cols[ci] = col
	}
	return out
}

// DecodeTable rebuilds an engine table from its wire form — the inverse
// of EncodeTable. Integer columns travel widened to I64, so decode
// narrows them back per the declared type name, rejecting out-of-range
// values rather than silently truncating: the coordinator feeds decoded
// shard partials straight into merge and Preset, and a corrupt wire
// table must fail loudly there, not fingerprint-mismatch later.
func DecodeTable(tj *TableJSON) (*engine.Table, error) {
	if tj == nil {
		return nil, fmt.Errorf("server: decode table: nil table")
	}
	sch := make(vector.Schema, len(tj.Cols))
	cols := make([]*vector.Vector, len(tj.Cols))
	for ci := range tj.Cols {
		c := &tj.Cols[ci]
		typ, err := typeByName(c.Type)
		if err != nil {
			return nil, fmt.Errorf("server: decode table %s col %s: %w", tj.Name, c.Name, err)
		}
		sch[ci] = vector.Col{Name: c.Name, Type: typ}
		var vals int
		switch typ {
		case vector.F64:
			if len(c.F64) > 0 && len(c.F64Bits) > 0 {
				return nil, fmt.Errorf("server: decode table %s col %s: both f64 and f64b set", tj.Name, c.Name)
			}
			vals = c.f64Len()
		case vector.Str:
			vals = len(c.Str)
		default:
			vals = len(c.I64)
		}
		if vals != tj.Rows {
			return nil, fmt.Errorf("server: decode table %s col %s: %d values, want %d rows",
				tj.Name, c.Name, vals, tj.Rows)
		}
		switch typ {
		case vector.I16:
			xs := make([]int16, vals)
			for r, v := range c.I64 {
				if v < math.MinInt16 || v > math.MaxInt16 {
					return nil, fmt.Errorf("server: decode table %s col %s row %d: %d overflows %s",
						tj.Name, c.Name, r, v, c.Type)
				}
				xs[r] = int16(v)
			}
			cols[ci] = vector.FromI16(xs)
		case vector.I32:
			xs := make([]int32, vals)
			for r, v := range c.I64 {
				if v < math.MinInt32 || v > math.MaxInt32 {
					return nil, fmt.Errorf("server: decode table %s col %s row %d: %d overflows %s",
						tj.Name, c.Name, r, v, c.Type)
				}
				xs[r] = int32(v)
			}
			cols[ci] = vector.FromI32(xs)
		case vector.I64:
			xs := make([]int64, vals)
			copy(xs, c.I64)
			cols[ci] = vector.FromI64(xs)
		case vector.F64:
			xs := make([]float64, vals)
			if len(c.F64Bits) > 0 {
				for r, b := range c.F64Bits {
					xs[r] = math.Float64frombits(b)
				}
			} else {
				copy(xs, c.F64)
			}
			cols[ci] = vector.FromF64(xs)
		case vector.Str:
			xs := make([]string, vals)
			copy(xs, c.Str)
			cols[ci] = vector.FromStr(xs)
		}
	}
	return engine.NewTable(tj.Name, sch, cols), nil
}

func typeByName(name string) (vector.Type, error) {
	switch name {
	case vector.I16.String():
		return vector.I16, nil
	case vector.I32.String():
		return vector.I32, nil
	case vector.I64.String():
		return vector.I64, nil
	case vector.F64.String():
		return vector.F64, nil
	case vector.Str.String():
		return vector.Str, nil
	}
	return 0, fmt.Errorf("unknown column type %q", name)
}

// Equal reports whether two wire tables hold bit-identical results.
// Float comparison is over raw IEEE-754 bits (math.Float64bits), not ==:
// the wire encoding preserves float64 bits exactly, so any bit
// difference is a real divergence — and a NaN-bearing table must still
// compare equal to itself, which == would deny (NaN != NaN). The bits
// comparison also distinguishes +0 from -0, deliberately: those are
// different bit patterns a correct round trip must preserve. A column in
// F64Bits escape form compares equal to its plain-F64 twin.
func (t *TableJSON) Equal(o *TableJSON) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Rows != o.Rows || len(t.Cols) != len(o.Cols) {
		return false
	}
	for i := range t.Cols {
		a, b := &t.Cols[i], &o.Cols[i]
		if a.Name != b.Name || a.Type != b.Type ||
			len(a.I64) != len(b.I64) || a.f64Len() != b.f64Len() || len(a.Str) != len(b.Str) {
			return false
		}
		for r := range a.I64 {
			if a.I64[r] != b.I64[r] {
				return false
			}
		}
		for r := 0; r < a.f64Len(); r++ {
			if a.f64Bit(r) != b.f64Bit(r) {
				return false
			}
		}
		for r := range a.Str {
			if a.Str[r] != b.Str[r] {
				return false
			}
		}
	}
	return true
}
