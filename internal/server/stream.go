// Streaming variant of /v1/plan: the result travels as NDJSON frames —
// one schema header, size-capped row chunks, then a trailer carrying the
// stats, the result fingerprint, and a sha256 over the exact chunk-line
// bytes — so a coordinator can fold partial tables into its merge while
// later chunks are still in flight. Buffered /v1/plan stays as the
// fallback path and for old peers (a 404/405 surfaces as
// ErrStreamUnsupported, which callers answer by retrying buffered).
package server

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"microadapt/internal/engine"
	"microadapt/internal/plan"
	"microadapt/internal/service"
)

// Frame discriminators of the NDJSON stream.
const (
	FrameHeader  = "header"
	FrameChunk   = "chunk"
	FrameTrailer = "trailer"
	FrameError   = "error"
)

// StreamFrame is one NDJSON line of a streaming plan response. Frame says
// which of the field groups is populated.
type StreamFrame struct {
	Frame string `json:"frame"`

	// Header fields: the plan name, the result schema as a zero-row wire
	// table, and the server's row cap per chunk.
	Plan      string     `json:"plan,omitempty"`
	Schema    *TableJSON `json:"schema,omitempty"`
	ChunkRows int        `json:"chunk_rows,omitempty"`

	// Chunk fields: one size-capped slice of the result, in row order.
	// Exactly one is set per chunk frame: Table carries the JSON wire
	// form, Bin the negotiated binary columnar form (wirebin.go) as
	// base64. The chunk digest hashes the frame's exact line bytes either
	// way, so integrity verification is encoding-agnostic.
	Table *TableJSON `json:"table,omitempty"`
	Bin   []byte     `json:"bin,omitempty"`

	// Trailer fields: totals, the hex sha256 over the exact bytes of every
	// chunk line (newlines excluded), the whole-result fingerprint, and
	// the execution stats.
	Rows        int        `json:"rows,omitempty"`
	Chunks      int        `json:"chunks,omitempty"`
	SHA256      string     `json:"sha256,omitempty"`
	Fingerprint string     `json:"fingerprint,omitempty"`
	Stats       *StatsJSON `json:"stats,omitempty"`
	Session     string     `json:"session,omitempty"`

	// Error field: a mid-stream failure after the 200 status is committed.
	Error string `json:"error,omitempty"`
}

// handlePlanStream validates and executes a plan exactly like /v1/plan —
// same admission, deadline, shed and session semantics, all resolved
// before the status line is written — then streams the result instead of
// buffering it into one body.
func (s *Server) handlePlanStream(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	b, err := plan.UnmarshalPlan(req.Plan, s.svc.DB().TableByName)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	if !s.checkSession(w, req.Session) {
		return
	}
	timeout := s.defaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	start := time.Now()
	var tab *engine.Table
	var st service.JobStats
	if err := s.adm.Do(ctx, func() error {
		var jerr error
		tab, st, jerr = s.svc.ExecutePlan(b)
		return jerr
	}); err != nil {
		s.writeError(w, err)
		return
	}
	s.latency.Add(float64(time.Since(start)))
	s.adaptive.Add(st.AdaptiveCalls)
	s.offBest.Add(st.OffBestCalls)
	if req.Session != "" {
		s.sess.record(req.Session, st.AdaptiveCalls, st.OffBestCalls)
	}
	s.streamTable(w, b.Name(), req.Session, tab, statsJSON(st), s.wantsBin(r))
}

// streamTable writes the frame sequence for one result table. The 200 is
// committed before the first frame; any later failure can only be
// reported in-band as an error frame. With bin set, chunk frames carry
// the binary columnar body; the header's zero-row schema and the trailer
// stay JSON either way (they hold no column values to speak of).
func (s *Server) streamTable(w http.ResponseWriter, name, session string, tab *engine.Table, st StatsJSON, bin bool) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	writeLine := func(line []byte) bool {
		if _, err := w.Write(append(line, '\n')); err != nil {
			return false // client went away; nothing more to say
		}
		if fl != nil {
			fl.Flush()
		}
		return true
	}
	writeFrame := func(f *StreamFrame) bool {
		line, err := json.Marshal(f)
		if err != nil {
			el, _ := json.Marshal(StreamFrame{Frame: FrameError, Error: err.Error()})
			writeLine(el)
			return false
		}
		return writeLine(line)
	}

	schema := EncodeTable(tab.Slice(0, 0))
	if !writeFrame(&StreamFrame{Frame: FrameHeader, Plan: name, Schema: schema, ChunkRows: s.streamChunkRows}) {
		return
	}
	h := sha256.New()
	chunks := 0
	for lo := 0; lo < tab.Rows(); lo += s.streamChunkRows {
		hi := min(lo+s.streamChunkRows, tab.Rows())
		frame := StreamFrame{Frame: FrameChunk}
		if bin {
			data, err := MarshalTableBin(EncodeTable(tab.Slice(lo, hi)))
			if err != nil {
				el, _ := json.Marshal(StreamFrame{Frame: FrameError, Error: err.Error()})
				writeLine(el)
				return
			}
			frame.Bin = data
		} else {
			frame.Table = EncodeTable(tab.Slice(lo, hi)).EscapeNonFinite()
		}
		line, err := json.Marshal(frame)
		if err != nil {
			el, _ := json.Marshal(StreamFrame{Frame: FrameError, Error: err.Error()})
			writeLine(el)
			return
		}
		h.Write(line)
		if !writeLine(line) {
			return
		}
		chunks++
	}
	writeFrame(&StreamFrame{
		Frame:       FrameTrailer,
		Rows:        tab.Rows(),
		Chunks:      chunks,
		SHA256:      hex.EncodeToString(h.Sum(nil)),
		Fingerprint: Fingerprint(tab),
		Stats:       &st,
		Session:     session,
	})
}

// ErrStreamUnsupported reports a peer without the streaming endpoint
// (404/405 from an older madaptd). Callers fall back to buffered Plan.
var ErrStreamUnsupported = errors.New("server: stream: peer does not support /v1/plan/stream")

// StreamResult is the verified outcome of one streamed plan execution:
// what the trailer claimed, cross-checked against what actually arrived.
type StreamResult struct {
	Plan        string
	Session     string
	Schema      *TableJSON
	Rows        int
	Chunks      int
	Fingerprint string
	Stats       StatsJSON
	// BinaryChunks counts the chunks that arrived in the binary columnar
	// encoding; Chunks-BinaryChunks arrived as JSON. Against a peer that
	// honored the negotiation it equals Chunks, against an old JSON-only
	// peer it is zero.
	BinaryChunks int
}

// shedStreamError carries a 429 out of one streaming attempt so the retry
// loop can back off; it never escapes to callers.
type shedStreamError struct{ retryAfter time.Duration }

func (e *shedStreamError) Error() string { return "server: stream: shed" }

// EncodePlanRequest marshals a plan request once, so a coordinator can
// send identical bytes to every shard (and to both the streaming and
// buffered endpoints) without re-encoding per attempt.
func EncodePlanRequest(req PlanRequest) ([]byte, error) { return json.Marshal(req) }

// PlanEncoded is Plan with a pre-encoded request body.
func (c *Client) PlanEncoded(body []byte) (*Outcome, error) {
	return c.postBytes("/v1/plan", body)
}

// PlanStream ships a plan to the streaming endpoint, invoking onChunk for
// every decoded chunk in arrival (row) order, and returns the verified
// trailer. See PlanStreamEncoded for semantics.
func (c *Client) PlanStream(req PlanRequest, onChunk func(*TableJSON) error) (*StreamResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return c.PlanStreamEncoded(body, onChunk)
}

// PlanStreamEncoded is PlanStream with a pre-encoded request body. Shed
// (429) answers retry with backoff exactly like the buffered client —
// safely, because a shed is decided before any chunk is delivered. Any
// failure after the first frame (truncation, hash mismatch, remote error
// frame, onChunk error) surfaces as an error; rows already delivered to
// onChunk must be discarded by the caller (see plan.PartialAccumulator's
// ResetShard).
func (c *Client) PlanStreamEncoded(body []byte, onChunk func(*TableJSON) error) (*StreamResult, error) {
	for attempt := 0; ; attempt++ {
		res, err := c.planStreamOnce(body, onChunk)
		var shed *shedStreamError
		if err == nil || !errors.As(err, &shed) {
			return res, err
		}
		if attempt >= c.retry.Max {
			return nil, fmt.Errorf("server: stream: shed %d times, giving up", attempt+1)
		}
		c.retries.Add(1)
		time.Sleep(c.jitter(c.retry.delay(attempt, shed.retryAfter)))
	}
}

func (c *Client) planStreamOnce(body []byte, onChunk func(*TableJSON) error) (*StreamResult, error) {
	resp, err := c.postWire("/v1/plan/stream", body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound, http.StatusMethodNotAllowed:
		// An old peer's mux answers 404/405 with a plain-text body; a JSON
		// ErrorResponse at 404 is a real protocol answer (unknown session),
		// not a missing endpoint.
		raw, _ := io.ReadAll(resp.Body)
		var er ErrorResponse
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			return nil, fmt.Errorf("server: stream: status %d: %s", resp.StatusCode, er.Error)
		}
		return nil, ErrStreamUnsupported
	default:
		raw, _ := io.ReadAll(resp.Body)
		var er ErrorResponse
		if err := json.Unmarshal(raw, &er); err != nil {
			return nil, fmt.Errorf("server: stream: status %d: %s", resp.StatusCode, raw)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			return nil, &shedStreamError{retryAfter: time.Duration(er.RetryAfterMS) * time.Millisecond}
		}
		return nil, fmt.Errorf("server: stream: status %d: %s", resp.StatusCode, er.Error)
	}

	br := bufio.NewReader(resp.Body)
	h := sha256.New()
	res := &StreamResult{}
	sawHeader := false
	rows, chunks := 0, 0
	for {
		line, err := readFrameLine(br)
		if err != nil {
			// EOF (or any read error) before the trailer: the peer died
			// mid-stream or the connection was cut — the result is
			// unverifiable and must be discarded.
			return nil, fmt.Errorf("server: stream: truncated after %d chunks: %w", chunks, err)
		}
		var f StreamFrame
		if err := json.Unmarshal(line, &f); err != nil {
			return nil, fmt.Errorf("server: stream: malformed frame %q: %w", line, err)
		}
		switch f.Frame {
		case FrameHeader:
			if sawHeader {
				return nil, errors.New("server: stream: duplicate header frame")
			}
			sawHeader = true
			res.Plan, res.Schema = f.Plan, f.Schema
		case FrameChunk:
			if !sawHeader {
				return nil, errors.New("server: stream: chunk before header")
			}
			tab := f.Table
			if len(f.Bin) > 0 {
				if tab != nil {
					return nil, errors.New("server: stream: chunk frame with both table and bin bodies")
				}
				if tab, err = UnmarshalTableBin(f.Bin); err != nil {
					return nil, fmt.Errorf("server: stream: chunk %d: %w", chunks, err)
				}
				res.BinaryChunks++
			}
			if tab == nil {
				return nil, errors.New("server: stream: chunk frame without table")
			}
			// Digest the exact line bytes, same as the server — integrity
			// verification does not care which encoding the body used.
			h.Write(line)
			rows += tab.Rows
			chunks++
			if onChunk != nil {
				if err := onChunk(tab); err != nil {
					return nil, err
				}
			}
		case FrameTrailer:
			if !sawHeader {
				return nil, errors.New("server: stream: trailer before header")
			}
			if got := hex.EncodeToString(h.Sum(nil)); got != f.SHA256 {
				return nil, fmt.Errorf("server: stream: chunk digest %s does not match trailer %s", got, f.SHA256)
			}
			if rows != f.Rows || chunks != f.Chunks {
				return nil, fmt.Errorf("server: stream: received %d rows in %d chunks, trailer claims %d in %d",
					rows, chunks, f.Rows, f.Chunks)
			}
			res.Session, res.Rows, res.Chunks, res.Fingerprint = f.Session, f.Rows, f.Chunks, f.Fingerprint
			if f.Stats != nil {
				res.Stats = *f.Stats
			}
			return res, nil
		case FrameError:
			return nil, fmt.Errorf("server: stream: remote error: %s", f.Error)
		default:
			return nil, fmt.Errorf("server: stream: unknown frame kind %q", f.Frame)
		}
	}
}

// readFrameLine reads one NDJSON line without a size cap (a chunk line is
// bounded by the server's chunk-row cap, not by bufio.Scanner's token
// limit), returning it with the trailing newline stripped.
func readFrameLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	if err != nil {
		if err == io.EOF && len(bytes.TrimSpace(line)) > 0 {
			return nil, fmt.Errorf("partial frame at EOF: %w", err)
		}
		return nil, err
	}
	return bytes.TrimSuffix(line, []byte{'\n'}), nil
}
