package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"microadapt/internal/plan"
	"microadapt/internal/tpch"
)

func marshalQueryPlan(t *testing.T, q int) []byte {
	t.Helper()
	data, err := plan.MarshalPlan(tpch.Query(q).Plan(testDB))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestPlanStreamBitIdentical: the streamed chunks, concatenated in
// arrival order, are bit-identical to the buffered endpoint's result, the
// trailer fingerprint matches, and a small chunk cap actually splits the
// result into multiple frames.
func TestPlanStreamBitIdentical(t *testing.T) {
	_, c := startTestServer(t, Config{StreamChunkRows: 7})
	for _, q := range []int{1, 6, 13} {
		body, err := EncodePlanRequest(PlanRequest{Plan: marshalQueryPlan(t, q), IncludeResult: true})
		if err != nil {
			t.Fatal(err)
		}
		buffered, err := c.PlanEncoded(body)
		if err != nil {
			t.Fatal(err)
		}
		if !buffered.OK() {
			t.Fatalf("Q%02d buffered: status %d: %+v", q, buffered.Status, buffered.Err)
		}

		var chunks []*TableJSON
		res, err := c.PlanStreamEncoded(body, func(tj *TableJSON) error {
			chunks = append(chunks, tj)
			return nil
		})
		if err != nil {
			t.Fatalf("Q%02d stream: %v", q, err)
		}
		if res.Fingerprint != buffered.Response.Fingerprint {
			t.Errorf("Q%02d: stream fingerprint differs from buffered", q)
		}
		if res.Rows != buffered.Response.Rows {
			t.Errorf("Q%02d: stream rows %d, buffered %d", q, res.Rows, buffered.Response.Rows)
		}
		if res.Rows > 7 && res.Chunks < 2 {
			t.Errorf("Q%02d: %d rows arrived in %d chunks; chunk cap 7 not applied", q, res.Rows, res.Chunks)
		}
		if res.Schema == nil || len(res.Schema.Cols) == 0 {
			t.Errorf("Q%02d: header carried no schema", q)
		}
		if res.Stats.LatencyUS <= 0 {
			t.Errorf("Q%02d: trailer carried no stats", q)
		}
		// Stitch the chunks back together and compare bitwise.
		whole := buffered.Response.Result
		stitched := &TableJSON{Name: whole.Name, Cols: make([]ColumnJSON, len(whole.Cols))}
		for ci := range whole.Cols {
			stitched.Cols[ci] = ColumnJSON{Name: whole.Cols[ci].Name, Type: whole.Cols[ci].Type}
		}
		for _, ch := range chunks {
			stitched.Rows += ch.Rows
			for ci := range ch.Cols {
				stitched.Cols[ci].I64 = append(stitched.Cols[ci].I64, ch.Cols[ci].I64...)
				stitched.Cols[ci].F64 = append(stitched.Cols[ci].F64, ch.Cols[ci].F64...)
				stitched.Cols[ci].Str = append(stitched.Cols[ci].Str, ch.Cols[ci].Str...)
			}
		}
		if !stitched.Equal(whole) {
			t.Errorf("Q%02d: stitched stream chunks differ from buffered result", q)
		}
	}
}

// TestPlanStreamEmptyResult: a zero-row result is a header and a trailer
// with no chunk frames, and still verifies.
func TestPlanStreamEmptyResult(t *testing.T) {
	_, c := startTestServer(t, Config{})
	b := plan.New("empty")
	tab := testDB.Tables()[0]
	b.Root(b.Scan(tab, tab.Sch[0].Name).Select(plan.CmpVal(0, "<", -1e15)))
	wire, err := plan.MarshalPlan(b)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	res, err := c.PlanStream(PlanRequest{Plan: wire}, func(*TableJSON) error { calls++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 || res.Chunks != 0 || res.Rows != 0 {
		t.Errorf("empty result: %d callbacks, %d chunks, %d rows; want all zero", calls, res.Chunks, res.Rows)
	}
}

// TestPlanStreamSessionAndErrors: bad plans and unknown sessions answer
// with ordinary status codes before any frame; unknown endpoints surface
// ErrStreamUnsupported so callers can fall back to buffered mode.
func TestPlanStreamSessionAndErrors(t *testing.T) {
	_, c := startTestServer(t, Config{})
	if _, err := c.PlanStream(PlanRequest{Plan: []byte(`{"name":"X","nodes":[],"roots":[]}`)}, nil); err == nil {
		t.Error("malformed plan streamed without error")
	}
	_, err := c.PlanStream(PlanRequest{Plan: marshalQueryPlan(t, 6), Session: "nope"}, nil)
	if err == nil || errors.Is(err, ErrStreamUnsupported) {
		t.Errorf("unknown session: err = %v, want protocol error (not unsupported)", err)
	}

	// A peer without the endpoint (old madaptd): plain 404 from its mux.
	old := httptest.NewServer(http.NotFoundHandler())
	defer old.Close()
	if _, err := NewClient(old.URL).PlanStreamEncoded([]byte(`{}`), nil); !errors.Is(err, ErrStreamUnsupported) {
		t.Errorf("missing endpoint: err = %v, want ErrStreamUnsupported", err)
	}
}

// streamLines builds a valid frame sequence for a tiny table, optionally
// letting the caller corrupt it before serving.
func streamLines(t *testing.T) []string {
	t.Helper()
	chunk, err := json.Marshal(StreamFrame{Frame: FrameChunk, Table: &TableJSON{
		Name: "t", Rows: 2, Cols: []ColumnJSON{{Name: "k", Type: "slng", I64: []int64{1, 2}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.Sum256(chunk)
	header, _ := json.Marshal(StreamFrame{Frame: FrameHeader, Plan: "t", Schema: &TableJSON{Name: "t"}})
	trailer, _ := json.Marshal(StreamFrame{Frame: FrameTrailer, Rows: 2, Chunks: 1,
		SHA256: hex.EncodeToString(h[:]), Fingerprint: "f"})
	return []string{string(header), string(chunk), string(trailer)}
}

// serveFrames answers every request with the given raw lines.
func serveFrames(lines []string) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, ln := range lines {
			fmt.Fprintf(w, "%s\n", ln)
		}
	}))
}

// TestPlanStreamFailureModes: truncation mid-stream and mid-chunk, digest
// mismatch, and remote error frames all fail the call — and rows already
// surfaced through the callback are reported for discard, never silently
// kept.
func TestPlanStreamFailureModes(t *testing.T) {
	lines := streamLines(t)
	cases := []struct {
		name  string
		lines []string
		raw   string // overrides lines when set, written verbatim
		want  string
	}{
		{name: "truncated-before-trailer", lines: lines[:2], want: "truncated"},
		{name: "truncated-mid-chunk", raw: lines[0] + "\n" + lines[1][:len(lines[1])/2], want: "truncated"},
		{name: "digest-mismatch", lines: []string{lines[0],
			strings.Replace(lines[1], `"i64":[1,2]`, `"i64":[1,3]`, 1), lines[2]}, want: "digest"},
		{name: "remote-error-frame", lines: []string{lines[0], `{"frame":"error","error":"shard exploded"}`},
			want: "shard exploded"},
		{name: "chunk-before-header", lines: lines[1:], want: "chunk before header"},
		{name: "trailer-count-lie", lines: []string{lines[0],
			strings.Replace(lines[2], `"rows":2`, `"rows":0`, 1)}, want: "digest"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var srv *httptest.Server
			if tc.raw != "" {
				srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					fmt.Fprint(w, tc.raw)
				}))
			} else {
				srv = serveFrames(tc.lines)
			}
			defer srv.Close()
			delivered := 0
			_, err := NewClient(srv.URL).PlanStreamEncoded([]byte(`{}`), func(*TableJSON) error {
				delivered++
				return nil
			})
			if err == nil {
				t.Fatalf("corrupt stream verified cleanly (%d chunks delivered)", delivered)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestPlanStreamShedRetry: a 429 before any frame retries with backoff
// inside the client, exactly like the buffered path.
func TestPlanStreamShedRetry(t *testing.T) {
	lines := streamLines(t)
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: "shed", RetryAfterMS: 1})
			return
		}
		for _, ln := range lines {
			fmt.Fprintf(w, "%s\n", ln)
		}
	}))
	defer srv.Close()
	c := NewClient(srv.URL).WithRetry(RetryPolicy{Max: 4, Base: time.Millisecond, Cap: 5 * time.Millisecond})
	res, err := c.PlanStreamEncoded([]byte(`{}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 2 {
		t.Errorf("rows = %d, want 2", res.Rows)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
	if c.Retries() != 2 {
		t.Errorf("client recorded %d retries, want 2", c.Retries())
	}
}
