// Package server is madaptd's HTTP/JSON front end over internal/service:
// per-client sessions, a bounded admission queue with per-request
// deadlines, load shedding under saturation, graceful drain, and a
// /metrics endpoint reporting latency percentiles, off-best fraction and
// flavor-cache warm-start rates.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"microadapt/internal/engine"
	"microadapt/internal/plan"
	"microadapt/internal/service"
	"microadapt/internal/stats"
	"microadapt/internal/tpch"
)

// Executor is the execution backend a Server fronts. *service.Service is
// the single-process implementation; dist.Coordinator implements the same
// contract over a fleet of shard processes, so madaptd serves an
// identical HTTP surface whether it executes locally or distributes
// fragments.
type Executor interface {
	// Execute runs TPC-H query q (1-22).
	Execute(q int) (*engine.Table, service.JobStats, error)
	// ExecutePlan runs an already-validated logical plan.
	ExecutePlan(b *plan.Builder) (*engine.Table, service.JobStats, error)
	// DB exposes the table catalog plans are validated against. For a
	// coordinator this is a schema-only view — fragment execution happens
	// on the shards, so the coordinator's own tables may hold zero rows.
	DB() *tpch.DB
	// SeededInstances reports warm-start counters for /metrics.
	SeededInstances() (seeded, cold int64)
	// Cache is the flavor-knowledge store /v1/flavors exports and imports.
	Cache() *service.FlavorCache
}

// FleetMetrics extends /metrics when the executor fronts a shard fleet.
type FleetMetrics struct {
	Shards int `json:"shards"`
	// FragmentsSent counts logical fragments (one per site x shard);
	// FragmentAttempts counts transport attempts, so a stream→buffered
	// fallback is one fragment but two attempts. On a healthy fleet
	// fragments_sent == streamed_fragments + buffered_fragments and
	// fragment_attempts - fragments_sent is the fallback count.
	FragmentsSent    int64 `json:"fragments_sent"`
	FragmentAttempts int64 `json:"fragment_attempts"`
	// StreamedFragments and BufferedFragments split FragmentsSent by
	// transport: answered over /v1/plan/stream vs the buffered fallback.
	StreamedFragments int64 `json:"streamed_fragments"`
	BufferedFragments int64 `json:"buffered_fragments"`
	// BinaryChunks and JSONChunks split arrived partial bodies by
	// encoding (a buffered response counts as one chunk). Nonzero
	// json_chunks under a binary coordinator means some shard declined
	// the negotiation — an old peer in the fleet.
	BinaryChunks int64 `json:"binary_chunks"`
	JSONChunks   int64 `json:"json_chunks"`
	GossipRounds int64 `json:"gossip_rounds"`
	// GossipImported counts flavor estimates accepted from shards across
	// all gossip rounds.
	GossipImported int64 `json:"gossip_imported"`
	// Fragment round-trip latency percentiles across every shard, from
	// per-shard windows folded with stats.Window.Merge.
	FragmentP50US float64 `json:"fragment_p50_us"`
	FragmentP99US float64 `json:"fragment_p99_us"`
	// Time-to-first-chunk percentiles of streamed fragments: how long the
	// coordinator waited before its merge had rows to fold.
	TTFCP50US float64 `json:"ttfc_p50_us"`
	TTFCP99US float64 `json:"ttfc_p99_us"`
}

// FleetReporter is an optional Executor capability: executors that fan
// work out to shards report fleet-wide numbers in /metrics.
type FleetReporter interface {
	Fleet() FleetMetrics
}

// Config parameterizes a Server. Only Service is required.
type Config struct {
	// Service executes the queries. Required. *service.Service for a
	// single-process server, dist.Coordinator for the front of a fleet.
	Service Executor
	// Workers is the number of concurrent query executors (default:
	// GOMAXPROCS via the admission controller).
	Workers int
	// QueueDepth bounds how many admitted requests may wait beyond the
	// executing ones (default 64; -1 means zero queue — admit only when a
	// worker is free).
	QueueDepth int
	// DefaultTimeout is the per-request deadline when the client sends no
	// timeout_ms (default 30s).
	DefaultTimeout time.Duration
	// RetryAfter is the backoff the server suggests on 429 (default 50ms).
	RetryAfter time.Duration
	// MaxSessions caps live sessions; beyond it the LRU session is
	// evicted (default 256).
	MaxSessions int
	// SessionTTL expires idle sessions (default 10m).
	SessionTTL time.Duration
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// LatencyWindow is the sample capacity of the latency distribution
	// (default 4096).
	LatencyWindow int
	// StreamChunkRows caps the rows per NDJSON chunk frame on
	// /v1/plan/stream (default 4096).
	StreamChunkRows int
	// LegacyJSONWire makes the server ignore binary-wire negotiation and
	// answer every result table as JSON, exactly like a pre-binary peer.
	// The mixed-fleet tests and `madaptd -wire-json` use it to prove a
	// binary coordinator falls back cleanly against a JSON-only shard.
	LegacyJSONWire bool
	// Clock is injectable time for session-eviction tests (default
	// time.Now).
	Clock func() time.Time
}

// Server is the handler plus its admission controller and session map. It
// implements http.Handler; use Start for a listening instance with
// lifecycle helpers.
type Server struct {
	svc  Executor
	adm  *Admission
	sess *sessionMap
	mux  *http.ServeMux

	defaultTimeout  time.Duration
	retryAfter      time.Duration
	maxBody         int64
	streamChunkRows int
	legacyJSONWire  bool

	latency  *stats.Window // end-to-end latency of executed requests, ns
	adaptive atomic.Int64  // adaptive primitive calls across all requests
	offBest  atomic.Int64  // of those, calls on a non-best flavor
}

// NewServer builds a server over an existing service.
func NewServer(cfg Config) *Server {
	if cfg.Service == nil {
		panic("server: Config.Service is required")
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 50 * time.Millisecond
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.LatencyWindow < 1 {
		cfg.LatencyWindow = 4096
	}
	if cfg.StreamChunkRows < 1 {
		cfg.StreamChunkRows = 4096
	}
	s := &Server{
		svc:             cfg.Service,
		adm:             NewAdmission(AdmissionConfig{Workers: cfg.Workers, QueueDepth: cfg.QueueDepth}),
		sess:            newSessionMap(cfg.MaxSessions, cfg.SessionTTL, cfg.Clock),
		mux:             http.NewServeMux(),
		defaultTimeout:  cfg.DefaultTimeout,
		retryAfter:      cfg.RetryAfter,
		maxBody:         cfg.MaxBodyBytes,
		streamChunkRows: cfg.StreamChunkRows,
		legacyJSONWire:  cfg.LegacyJSONWire,
		latency:         stats.NewWindow(cfg.LatencyWindow),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/session", s.handleSessionCreate)
	s.mux.HandleFunc("GET /v1/session/{id}", s.handleSessionStats)
	s.mux.HandleFunc("DELETE /v1/session/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/plan", s.handlePlan)
	s.mux.HandleFunc("POST /v1/plan/stream", s.handlePlanStream)
	s.mux.HandleFunc("GET /v1/flavors", s.handleFlavorsGet)
	s.mux.HandleFunc("POST /v1/flavors", s.handleFlavorsPost)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain stops admitting queries, completes queued and in-flight work, and
// returns when the pool is idle. Health flips to draining immediately so
// load balancers stop routing here; query endpoints answer 503.
func (s *Server) Drain() { s.adm.Drain() }

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrShed):
		ms := s.retryAfter.Milliseconds()
		secs := (ms + 999) / 1000 // Retry-After is whole seconds; round up
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: err.Error(), RetryAfterMS: ms})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: "deadline exceeded"})
	default:
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.adm.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if s.adm.Draining() {
		s.writeError(w, ErrDraining)
		return
	}
	writeJSON(w, http.StatusOK, SessionResponse{Session: s.sess.create().id})
}

func (s *Server) handleSessionStats(w http.ResponseWriter, r *http.Request) {
	st, ok := s.sess.stats(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown session"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if !s.sess.drop(r.PathValue("id")) {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown session"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

// decodeBody reads a bounded JSON body; unknown fields are errors so a
// client typo ("quer": 6) fails loudly instead of running query 0.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request: " + err.Error()})
		return false
	}
	return true
}

// wantsBin reports whether this request negotiated the binary columnar
// result encoding (and the server is willing to speak it).
func (s *Server) wantsBin(r *http.Request) bool {
	return !s.legacyJSONWire && r.Header.Get(WireHeader) == WireBin
}

// encodeResult fills exactly one of resp.Result / resp.ResultBin with
// the result table, per the request's negotiated wire encoding. The JSON
// form escapes non-finite floats so the response body always marshals.
func encodeResult(resp *QueryResponse, tab *engine.Table, bin bool) error {
	tj := EncodeTable(tab)
	if !bin {
		resp.Result = tj.EscapeNonFinite()
		return nil
	}
	data, err := MarshalTableBin(tj)
	if err != nil {
		return err
	}
	resp.ResultBin = data
	return nil
}

// checkSession validates an optional session id; empty is allowed.
func (s *Server) checkSession(w http.ResponseWriter, id string) bool {
	if id == "" {
		return true
	}
	if _, ok := s.sess.touch(id); !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown session " + id})
		return false
	}
	return true
}

// execute admits one decoded request and runs it, handling deadline,
// shedding, metrics, and session accounting uniformly for both endpoints.
func (s *Server) execute(w http.ResponseWriter, r *http.Request, sessionID string, timeoutMS int,
	run func() (*QueryResponse, error)) {
	timeout := s.defaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	start := time.Now()
	var resp *QueryResponse
	err := s.adm.Do(ctx, func() error {
		var jerr error
		resp, jerr = run()
		return jerr
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.latency.Add(float64(time.Since(start)))
	s.adaptive.Add(resp.Stats.AdaptiveCalls)
	s.offBest.Add(resp.Stats.OffBestCalls)
	if sessionID != "" {
		s.sess.record(sessionID, resp.Stats.AdaptiveCalls, resp.Stats.OffBestCalls)
		resp.Session = sessionID
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Query < 1 || req.Query > 22 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("no TPC-H query %d", req.Query)})
		return
	}
	if !s.checkSession(w, req.Session) {
		return
	}
	bin := s.wantsBin(r)
	s.execute(w, r, req.Session, req.TimeoutMS, func() (*QueryResponse, error) {
		tab, st, err := s.svc.Execute(req.Query)
		if err != nil {
			return nil, err
		}
		resp := &QueryResponse{Query: req.Query, Rows: tab.Rows(), Fingerprint: Fingerprint(tab), Stats: statsJSON(st)}
		if req.IncludeResult {
			if err := encodeResult(resp, tab, bin); err != nil {
				return nil, err
			}
		}
		return resp, nil
	})
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	// Validate and rebuild the plan before admission: a malformed plan is
	// answered 400 without consuming a queue slot, and only plans that
	// passed the codec's full validation ever reach a worker.
	b, err := plan.UnmarshalPlan(req.Plan, s.svc.DB().TableByName)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	if !s.checkSession(w, req.Session) {
		return
	}
	bin := s.wantsBin(r)
	s.execute(w, r, req.Session, req.TimeoutMS, func() (*QueryResponse, error) {
		tab, st, err := s.svc.ExecutePlan(b)
		if err != nil {
			return nil, err
		}
		resp := &QueryResponse{Plan: b.Name(), Rows: tab.Rows(), Fingerprint: Fingerprint(tab), Stats: statsJSON(st)}
		if req.IncludeResult {
			if err := encodeResult(resp, tab, bin); err != nil {
				return nil, err
			}
		}
		return resp, nil
	})
}

// handleFlavorsGet exports the flavor cache's current knowledge. The
// coordinator's gossip loop pulls shard caches through this endpoint.
func (s *Server) handleFlavorsGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Cache().Export())
}

// FlavorsPushResponse is the body of POST /v1/flavors.
type FlavorsPushResponse struct {
	// Accepted counts flavor estimates merged into the cache; entries
	// with non-finite costs are dropped, not errors.
	Accepted int `json:"accepted"`
}

// handleFlavorsPost merges a pushed knowledge snapshot into the local
// cache. Imports go through the cache's Observe path, so pushed fleet
// knowledge EWMA-merges with local observations rather than replacing
// them — pushing is idempotent-ish, never destructive.
func (s *Server) handleFlavorsPost(w http.ResponseWriter, r *http.Request) {
	var snap service.KnowledgeSnapshot
	if !s.decodeBody(w, r, &snap) {
		return
	}
	writeJSON(w, http.StatusOK, FlavorsPushResponse{Accepted: s.svc.Cache().Import(snap)})
}

// MetricsSnapshot is the body of GET /metrics.
type MetricsSnapshot struct {
	Admission  AdmissionStats `json:"admission"`
	QueueDepth int            `json:"queue_depth"`
	Draining   bool           `json:"draining"`

	// Latency percentiles over the recent executed-request window, in
	// microseconds (end to end: queue wait + execution + encode).
	LatencyP50US float64 `json:"latency_p50_us"`
	LatencyP95US float64 `json:"latency_p95_us"`
	LatencyP99US float64 `json:"latency_p99_us"`
	LatencyMaxUS float64 `json:"latency_max_us"`

	QueueWaitP50US float64 `json:"queue_wait_p50_us"`
	QueueWaitP99US float64 `json:"queue_wait_p99_us"`

	SessionsLive    int   `json:"sessions_live"`
	SessionsCreated int64 `json:"sessions_created"`
	SessionsEvicted int64 `json:"sessions_evicted"`

	// Micro-adaptivity: what fraction of adaptive primitive calls ran a
	// flavor the session did not end up considering best, and how often
	// fresh primitive instances found priors in the shared FlavorCache.
	AdaptiveCalls     int64   `json:"adaptive_calls"`
	OffBestCalls      int64   `json:"off_best_calls"`
	OffBestPct        float64 `json:"off_best_pct"`
	CacheSeededInsts  int64   `json:"cache_seeded_instances"`
	CacheColdInsts    int64   `json:"cache_cold_instances"`
	CacheHitRatePct   float64 `json:"cache_hit_rate_pct"`
	CacheInstanceKeys int     `json:"cache_instance_keys"`

	// Fleet is present only when the executor fronts a shard fleet
	// (implements FleetReporter), i.e. on a coordinator.
	Fleet *FleetMetrics `json:"fleet,omitempty"`
}

// Metrics assembles the current snapshot.
func (s *Server) Metrics() MetricsSnapshot {
	lat := s.latency.Percentiles(50, 95, 99)
	m := MetricsSnapshot{
		Admission:      s.adm.Stats(),
		QueueDepth:     s.adm.QueueDepth(),
		Draining:       s.adm.Draining(),
		LatencyP50US:   lat[0] / 1e3,
		LatencyP95US:   lat[1] / 1e3,
		LatencyP99US:   lat[2] / 1e3,
		LatencyMaxUS:   s.latency.Max() / 1e3,
		QueueWaitP50US: float64(s.adm.QueueWait(50).Nanoseconds()) / 1e3,
		QueueWaitP99US: float64(s.adm.QueueWait(99).Nanoseconds()) / 1e3,
		AdaptiveCalls:  s.adaptive.Load(),
		OffBestCalls:   s.offBest.Load(),
	}
	m.SessionsLive, m.SessionsCreated, m.SessionsEvicted = s.sess.counts()
	if m.AdaptiveCalls > 0 {
		m.OffBestPct = 100 * float64(m.OffBestCalls) / float64(m.AdaptiveCalls)
	}
	seeded, cold := s.svc.SeededInstances()
	m.CacheSeededInsts, m.CacheColdInsts = seeded, cold
	if seeded+cold > 0 {
		m.CacheHitRatePct = 100 * float64(seeded) / float64(seeded+cold)
	}
	m.CacheInstanceKeys = s.svc.Cache().Len()
	if fr, ok := s.svc.(FleetReporter); ok {
		f := fr.Fleet()
		m.Fleet = &f
	}
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// Running is a started server instance. Tests, madaptd, and the soak
// harness all go through it so start/readiness/shutdown behave the same
// everywhere.
type Running struct {
	Server *Server
	URL    string
	Addr   net.Addr
	http   *http.Server
	lnErr  chan error
}

// Start listens on addr ("" or ":0" picks an ephemeral port) and serves
// until Shutdown. It returns once the listener is accepting — a client
// may connect immediately.
func Start(s *Server, addr string) (*Running, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	hs := &http.Server{Handler: s}
	run := &Running{
		Server: s,
		URL:    "http://" + ln.Addr().String(),
		Addr:   ln.Addr(),
		http:   hs,
		lnErr:  make(chan error, 1),
	}
	go func() { run.lnErr <- hs.Serve(ln) }()
	return run, nil
}

// Shutdown drains gracefully: stop admitting (new queries get 503),
// complete queued and in-flight work, then close the listener. The ctx
// bounds only the final HTTP close, not the drain.
func (r *Running) Shutdown(ctx context.Context) error {
	r.Server.Drain()
	if err := r.http.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-r.lnErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
