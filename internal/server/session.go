package server

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// session is one client's identity on the server. Execution state (flavor
// knowledge) lives in the service's shared FlavorCache, not here — a
// session exists so the server can attribute load and adaptation metrics
// to a client and so tests can watch off-best fractions fall as the cache
// warms across a session's query stream.
type session struct {
	id       string
	created  time.Time
	lastUsed time.Time

	queries  int64
	adaptive int64
	offBest  int64
}

// SessionStats is one session's public snapshot.
type SessionStats struct {
	ID            string `json:"id"`
	Queries       int64  `json:"queries"`
	AdaptiveCalls int64  `json:"adaptive_calls"`
	OffBestCalls  int64  `json:"off_best_calls"`
}

// sessionMap tracks live sessions with a TTL and a size cap. When the cap
// is hit, the least recently used session is evicted — a client that lost
// its session gets 404 and creates a new one, losing only attribution,
// never correctness (the FlavorCache it warmed survives).
type sessionMap struct {
	mu   sync.Mutex
	m    map[string]*session
	max  int
	ttl  time.Duration
	now  func() time.Time // injectable for eviction tests
	seq  int64            // tiebreak id source if crypto/rand fails
	evd  int64            // sessions evicted (LRU or TTL)
	made int64            // sessions ever created
}

func newSessionMap(max int, ttl time.Duration, now func() time.Time) *sessionMap {
	if max < 1 {
		max = 256
	}
	if ttl <= 0 {
		ttl = 10 * time.Minute
	}
	if now == nil {
		now = time.Now
	}
	return &sessionMap{m: make(map[string]*session), max: max, ttl: ttl, now: now}
}

// create mints a new session, evicting expired then LRU entries to stay
// under the cap.
func (sm *sessionMap) create() *session {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	now := sm.now()
	sm.expireLocked(now)
	for len(sm.m) >= sm.max {
		sm.evictOldestLocked()
	}
	id := sm.newIDLocked()
	s := &session{id: id, created: now, lastUsed: now}
	sm.m[id] = s
	sm.made++
	return s
}

func (sm *sessionMap) newIDLocked() string {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		sm.seq++
		return hex.EncodeToString([]byte{byte(sm.seq >> 8), byte(sm.seq)})
	}
	return hex.EncodeToString(buf[:])
}

// touch looks up a session and marks it used; false if unknown or expired.
func (sm *sessionMap) touch(id string) (*session, bool) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	now := sm.now()
	sm.expireLocked(now)
	s, ok := sm.m[id]
	if !ok {
		return nil, false
	}
	s.lastUsed = now
	return s, true
}

// record accumulates one executed query's adaptation stats onto a session.
func (sm *sessionMap) record(id string, adaptive, offBest int64) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if s, ok := sm.m[id]; ok {
		s.queries++
		s.adaptive += adaptive
		s.offBest += offBest
	}
}

// drop removes a session; false if it did not exist.
func (sm *sessionMap) drop(id string) bool {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	_, ok := sm.m[id]
	delete(sm.m, id)
	return ok
}

// stats returns a session's snapshot.
func (sm *sessionMap) stats(id string) (SessionStats, bool) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	sm.expireLocked(sm.now())
	s, ok := sm.m[id]
	if !ok {
		return SessionStats{}, false
	}
	return SessionStats{ID: s.id, Queries: s.queries, AdaptiveCalls: s.adaptive, OffBestCalls: s.offBest}, true
}

func (sm *sessionMap) expireLocked(now time.Time) {
	for id, s := range sm.m {
		if now.Sub(s.lastUsed) > sm.ttl {
			delete(sm.m, id)
			sm.evd++
		}
	}
}

func (sm *sessionMap) evictOldestLocked() {
	var oldest *session
	for _, s := range sm.m {
		if oldest == nil || s.lastUsed.Before(oldest.lastUsed) {
			oldest = s
		}
	}
	if oldest != nil {
		delete(sm.m, oldest.id)
		sm.evd++
	}
}

// counts snapshots (live, created, evicted) for /metrics.
func (sm *sessionMap) counts() (live int, created, evicted int64) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	sm.expireLocked(sm.now())
	return len(sm.m), sm.made, sm.evd
}
