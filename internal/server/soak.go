package server

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"microadapt/internal/core"
	"microadapt/internal/engine"
	"microadapt/internal/hw"
	"microadapt/internal/plan"
	"microadapt/internal/primitive"
	"microadapt/internal/service"
	"microadapt/internal/stats"
	"microadapt/internal/tpch"
	"microadapt/internal/traffic"
)

// SoakConfig parameterizes a sustained open-loop load run against a
// madaptd server.
type SoakConfig struct {
	// URL targets a running server; empty spawns one in-process over a
	// real TCP listener (the same Start/Shutdown lifecycle madaptd uses)
	// and tears it down afterwards.
	URL string
	// Duration, Rate, Mix, Bursts, Seed define the open-loop arrival
	// schedule (see traffic.Traffic).
	Duration time.Duration
	Rate     float64
	Mix      []traffic.WeightedQuery
	Bursts   []traffic.Phase
	Seed     int64
	// Clients is how many concurrent client sessions carry the load
	// (round-robin over arrivals). Minimum 1; the acceptance soak uses 4+.
	Clients int
	// PlanEvery ships every Nth arrival as a client-built wire plan via
	// /v1/plan instead of a query number (0 = never).
	PlanEvery int
	// SampleEvery fetches the full result of every Nth arrival and
	// compares it bit-for-bit against in-process execution (0 = never).
	SampleEvery int
	// SF and DBSeed must match the target server's database so the
	// in-process ground truth is the same relation set.
	SF     float64
	DBSeed int64
	// Out, when set, receives a human-readable progress line per phase.
	Out io.Writer
}

// SoakReport is the outcome of one soak run.
type SoakReport struct {
	Scheduled int // arrivals in the schedule
	OK        int
	Shed      int // 429s: expected under burst overload, not errors
	// ProtocolErrors are broken exchanges: transport failures, malformed
	// bodies, unexpected statuses. A passing soak has none.
	ProtocolErrors []string

	SampleChecks     int
	SampleMismatches int
	PlanRequests     int

	// Client-observed latency over successful requests.
	P50, P99, Max time.Duration
	// FirstHalfP99 and SecondHalfP99 split successes by arrival time; a
	// stable server keeps the second half's p99 in the same regime as
	// the first's instead of degrading as the run goes on.
	FirstHalfP99, SecondHalfP99 time.Duration

	// Metrics is the server's own snapshot after the run.
	Metrics MetricsSnapshot
}

// Validate applies the soak acceptance criteria: zero protocol errors,
// zero sampled mismatches (with sampling actually exercised), some
// successful work, and a p99 that did not degrade materially between the
// run's halves.
func (r *SoakReport) Validate() error {
	if len(r.ProtocolErrors) > 0 {
		n := len(r.ProtocolErrors)
		return fmt.Errorf("soak: %d protocol errors, first: %s", n, r.ProtocolErrors[0])
	}
	if r.OK == 0 {
		return fmt.Errorf("soak: no request succeeded (%d shed)", r.Shed)
	}
	if r.SampleMismatches > 0 {
		return fmt.Errorf("soak: %d sampled results diverged from in-process execution", r.SampleMismatches)
	}
	if r.SampleChecks == 0 {
		return fmt.Errorf("soak: no samples were checked; the correctness leg did not run")
	}
	// Allow generous absolute slack: at tiny scale factors the base p99
	// is sub-millisecond and a single GC pause would otherwise fail the
	// run spuriously.
	if limit := 5*r.FirstHalfP99 + 200*time.Millisecond; r.SecondHalfP99 > limit {
		return fmt.Errorf("soak: p99 degraded from %v to %v (limit %v)",
			r.FirstHalfP99, r.SecondHalfP99, limit)
	}
	return nil
}

// String renders the report for operators.
func (r *SoakReport) String() string {
	m := r.Metrics
	return fmt.Sprintf(
		"soak: %d scheduled, %d ok, %d shed, %d protocol errors\n"+
			"      samples: %d checked, %d mismatched; %d plan requests\n"+
			"      client latency p50=%v p99=%v max=%v (halves p99 %v -> %v)\n"+
			"      server: executed=%d shed=%d expired=%d p99=%.0fus queue-p99=%.0fus\n"+
			"      adaptivity: %.1f%% off-best (%d/%d), cache hit rate %.1f%% (%d keys)",
		r.Scheduled, r.OK, r.Shed, len(r.ProtocolErrors),
		r.SampleChecks, r.SampleMismatches, r.PlanRequests,
		r.P50, r.P99, r.Max, r.FirstHalfP99, r.SecondHalfP99,
		m.Admission.Executed, m.Admission.Shed, m.Admission.Expired, m.LatencyP99US, m.QueueWaitP99US,
		m.OffBestPct, m.OffBestCalls, m.AdaptiveCalls, m.CacheHitRatePct, m.CacheInstanceKeys)
}

// expectation is the precomputed ground truth for one query of the mix.
// Query and plan arrivals have distinct truths: several TPC-H specs
// post-process their plan's output in Go (Q14 divides two sums into a
// share, for instance), so /v1/query answers match Spec.Run while
// /v1/plan answers match executing the shipped plan itself.
type expectation struct {
	fingerprint string
	table       *TableJSON

	planJSON        []byte
	planFingerprint string
	planTable       *TableJSON
}

// RunSoak executes one soak. The run is open-loop: arrivals fire on
// schedule whether or not earlier requests have completed, so a slow or
// wedged server accumulates pressure instead of quietly slowing the
// generator down.
func RunSoak(cfg SoakConfig) (*SoakReport, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 15 * time.Second
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 40
	}
	if len(cfg.Mix) == 0 {
		cfg.Mix = traffic.ZipfMix(1, 6, 1, 12, 14)
	}
	if cfg.Clients < 1 {
		cfg.Clients = 4
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 16
	}
	if cfg.PlanEvery < 0 {
		cfg.PlanEvery = 0
	}
	if cfg.SF <= 0 {
		cfg.SF = 0.002
	}
	if cfg.DBSeed == 0 {
		cfg.DBSeed = 42
	}
	logf := func(format string, args ...any) {
		if cfg.Out != nil {
			fmt.Fprintf(cfg.Out, format+"\n", args...)
		}
	}

	schedule, err := (traffic.Traffic{
		Duration: cfg.Duration, Rate: cfg.Rate, Mix: cfg.Mix,
		Bursts: cfg.Bursts, Seed: cfg.Seed,
	}).Schedule()
	if err != nil {
		return nil, err
	}

	// The local database doubles as the ground truth for sampled result
	// comparison and as the catalog client-built plans resolve against.
	logf("soak: generating local ground-truth DB (sf=%g seed=%d)", cfg.SF, cfg.DBSeed)
	db := tpch.Generate(cfg.SF, cfg.DBSeed)
	expected := make(map[int]*expectation)
	for _, wq := range cfg.Mix {
		if _, ok := expected[wq.Query]; ok {
			continue
		}
		exp, err := buildExpectation(db, wq.Query)
		if err != nil {
			return nil, err
		}
		expected[wq.Query] = exp
	}

	url := cfg.URL
	if url == "" {
		svcCfg := service.DefaultConfig()
		run, err := Start(NewServer(Config{Service: service.New(db, svcCfg)}), "")
		if err != nil {
			return nil, err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = run.Shutdown(ctx)
		}()
		url = run.URL
		logf("soak: spawned in-process server at %s", url)
	}

	// One client (own connection pool) and one server-side session per
	// concurrent soak client.
	clients := make([]*Client, cfg.Clients)
	sessions := make([]string, cfg.Clients)
	for i := range clients {
		// Retries off: the soak harness measures the server's shedding
		// behavior, so every 429 must reach the accounting below instead
		// of being absorbed by the client's backoff loop.
		clients[i] = NewClient(url).WithRetry(RetryPolicy{})
		if i == 0 {
			if err := clients[0].WaitReady(10 * time.Second); err != nil {
				return nil, err
			}
		}
		id, err := clients[i].CreateSession()
		if err != nil {
			return nil, fmt.Errorf("soak: create session %d: %w", i, err)
		}
		sessions[i] = id
	}

	type result struct {
		at       time.Duration
		latency  time.Duration
		ok, shed bool
		protoErr string
		sampled  bool
		mismatch bool
		wasPlan  bool
	}
	results := make([]result, len(schedule))
	var wg sync.WaitGroup
	start := time.Now()
	logf("soak: %d arrivals over %v at %d clients", len(schedule), cfg.Duration, cfg.Clients)
	for i, a := range schedule {
		if d := time.Until(start.Add(a.At)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, a traffic.Arrival) {
			defer wg.Done()
			r := &results[i]
			r.at = a.At
			c := clients[i%cfg.Clients]
			sess := sessions[i%cfg.Clients]
			exp := expected[a.Query]
			r.sampled = cfg.SampleEvery > 0 && i%cfg.SampleEvery == 0
			r.wasPlan = cfg.PlanEvery > 0 && i%cfg.PlanEvery == 0

			t0 := time.Now()
			var out *Outcome
			var err error
			wantFP, wantTable := exp.fingerprint, exp.table
			if r.wasPlan {
				out, err = c.Plan(PlanRequest{Session: sess, Plan: exp.planJSON, IncludeResult: r.sampled})
				wantFP, wantTable = exp.planFingerprint, exp.planTable
			} else {
				out, err = c.Query(QueryRequest{Session: sess, Query: a.Query, IncludeResult: r.sampled})
			}
			r.latency = time.Since(t0)
			if err != nil {
				r.protoErr = fmt.Sprintf("arrival %d (Q%02d): %v", i, a.Query, err)
				return
			}
			switch {
			case out.OK():
				r.ok = true
				if out.Response.Fingerprint != wantFP {
					r.mismatch = true
				}
				if r.sampled {
					got, derr := out.Response.ResultTable()
					if derr != nil || !got.Equal(wantTable) {
						r.mismatch = true
					}
				}
			case out.Shed():
				r.shed = true
			default:
				r.protoErr = fmt.Sprintf("arrival %d (Q%02d): unexpected status %d: %+v",
					i, a.Query, out.Status, out.Err)
			}
		}(i, a)
	}
	wg.Wait()

	rep := &SoakReport{Scheduled: len(schedule)}
	var all, firstHalf, secondHalf []float64
	for i := range results {
		r := &results[i]
		switch {
		case r.protoErr != "":
			rep.ProtocolErrors = append(rep.ProtocolErrors, r.protoErr)
		case r.ok:
			rep.OK++
			all = append(all, float64(r.latency))
			if r.at < cfg.Duration/2 {
				firstHalf = append(firstHalf, float64(r.latency))
			} else {
				secondHalf = append(secondHalf, float64(r.latency))
			}
			if r.sampled {
				rep.SampleChecks++
			}
			if r.mismatch {
				rep.SampleMismatches++
			}
		case r.shed:
			rep.Shed++
		}
		if r.wasPlan {
			rep.PlanRequests++
		}
	}
	rep.P50 = time.Duration(stats.Percentile(all, 50))
	rep.P99 = time.Duration(stats.Percentile(all, 99))
	rep.Max = time.Duration(stats.Percentile(all, 100))
	rep.FirstHalfP99 = time.Duration(stats.Percentile(firstHalf, 99))
	rep.SecondHalfP99 = time.Duration(stats.Percentile(secondHalf, 99))
	rep.Metrics, err = clients[0].Metrics()
	if err != nil {
		return nil, fmt.Errorf("soak: final metrics: %w", err)
	}
	for i, c := range clients {
		_ = c.DeleteSession(sessions[i])
	}
	return rep, nil
}

// plannedSession builds the deterministic single-flavor session the
// ground truth runs on: no adaptivity, so any wire/in-process divergence
// is the server's fault, not a flavor difference (flavors are
// result-identical by the engine's own tests, but the soak should not
// depend on that invariant to localize a failure).
func plannedSession() *core.Session {
	dict := primitive.NewDictionary(primitive.Defaults())
	return core.NewSession(dict, hw.Machine1(), core.WithVectorSize(128), core.WithSeed(3))
}

// buildExpectation runs query q in process on a single-flavor build and
// captures the fingerprint, the wire-encoded table, and the marshalled
// plan used for /v1/plan arrivals.
func buildExpectation(db *tpch.DB, q int) (*expectation, error) {
	spec := tpch.Query(q)
	tab, err := spec.Run(db, plannedSession())
	if err != nil {
		return nil, fmt.Errorf("soak: ground truth Q%02d: %w", q, err)
	}
	b := spec.Plan(db)
	planJSON, err := plan.MarshalPlan(b)
	if err != nil {
		return nil, fmt.Errorf("soak: marshal plan Q%02d: %w", q, err)
	}
	// The plan ground truth mirrors the server's /v1/plan semantics: run
	// every registered root, return the main (first) one.
	exec := b.Bind(plannedSession())
	var planTab *engine.Table
	for _, root := range b.Roots() {
		t, err := exec.Run(root.Node)
		if err != nil {
			return nil, fmt.Errorf("soak: plan ground truth Q%02d: %w", q, err)
		}
		if planTab == nil {
			planTab = t
		}
	}
	return &expectation{
		fingerprint:     Fingerprint(tab),
		table:           EncodeTable(tab),
		planJSON:        planJSON,
		planFingerprint: Fingerprint(planTab),
		planTable:       EncodeTable(planTab),
	}, nil
}
