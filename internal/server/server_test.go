package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"microadapt/internal/core"
	"microadapt/internal/engine"
	"microadapt/internal/hw"
	"microadapt/internal/plan"
	"microadapt/internal/primitive"
	"microadapt/internal/service"
	"microadapt/internal/tpch"
)

// testDB is shared across tests; generation dominates test wall time.
var testDB = tpch.Generate(0.002, 42)

func testService(warm bool) *service.Service {
	cfg := service.DefaultConfig()
	cfg.Workers = 4
	cfg.WarmStart = warm
	cfg.Seed = 7
	return service.New(testDB, cfg)
}

// startTestServer runs a real listening server with the shared lifecycle
// helpers (Start / WaitReady / Shutdown) and cleans it up after the test.
func startTestServer(t *testing.T, cfg Config) (*Running, *Client) {
	t.Helper()
	if cfg.Service == nil {
		cfg.Service = testService(true)
	}
	run, err := Start(NewServer(cfg), "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := run.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	c := NewClient(run.URL)
	if err := c.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return run, c
}

// baselineTable runs query q in process on a single-flavor build — the
// ground truth the server's adaptive execution must reproduce bitwise.
func baselineTable(t *testing.T, q int) *engine.Table {
	t.Helper()
	dict := primitive.NewDictionary(primitive.Defaults())
	s := core.NewSession(dict, hw.Machine1(), core.WithVectorSize(128), core.WithSeed(3))
	tab, err := tpch.Query(q).Run(testDB, s)
	if err != nil {
		t.Fatalf("baseline Q%02d: %v", q, err)
	}
	return tab
}

// TestServerQueryBitIdentical is the end-to-end correctness property: a
// result fetched over the wire — fingerprint and full table, after a JSON
// round trip — is bit-identical to in-process execution.
func TestServerQueryBitIdentical(t *testing.T) {
	_, c := startTestServer(t, Config{})
	for _, q := range []int{1, 6, 14} {
		out, err := c.Query(QueryRequest{Query: q, IncludeResult: true})
		if err != nil {
			t.Fatalf("Q%02d: %v", q, err)
		}
		if !out.OK() {
			t.Fatalf("Q%02d: status %d: %+v", q, out.Status, out.Err)
		}
		want := baselineTable(t, q)
		if out.Response.Fingerprint != Fingerprint(want) {
			t.Errorf("Q%02d: wire fingerprint differs from in-process", q)
		}
		if out.Response.Rows != want.Rows() {
			t.Errorf("Q%02d: rows = %d, want %d", q, out.Response.Rows, want.Rows())
		}
		if !out.Response.Result.Equal(EncodeTable(want)) {
			t.Errorf("Q%02d: wire result not bit-identical to in-process", q)
		}
		if out.Response.Stats.LatencyUS <= 0 {
			t.Errorf("Q%02d: missing latency in stats", q)
		}
	}
}

// TestServerPlanEndpoint ships a client-built plan over the wire and
// checks the server validates, executes, and returns the same result as
// running the plan in process.
func TestServerPlanEndpoint(t *testing.T) {
	_, c := startTestServer(t, Config{})
	data, err := plan.MarshalPlan(tpch.Query(6).Plan(testDB))
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Plan(PlanRequest{Plan: data, IncludeResult: true})
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("plan status %d: %+v", out.Status, out.Err)
	}
	want := baselineTable(t, 6)
	if out.Response.Fingerprint != Fingerprint(want) {
		t.Error("plan result fingerprint differs from in-process Q6")
	}
	if !out.Response.Result.Equal(EncodeTable(want)) {
		t.Error("plan result not bit-identical to in-process Q6")
	}
	if out.Response.Plan == "" {
		t.Error("response missing plan name")
	}

	// A malformed plan is rejected 400 before it consumes a queue slot.
	bad, err := c.Plan(PlanRequest{Plan: []byte(`{"name":"X","nodes":[],"roots":[]}`)})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Status != http.StatusBadRequest {
		t.Errorf("malformed plan status = %d, want 400", bad.Status)
	}
}

// TestServerRejectsBadRequests covers the 400/404 surface.
func TestServerRejectsBadRequests(t *testing.T) {
	run, c := startTestServer(t, Config{})
	for _, q := range []int{0, 23, -1} {
		out, err := c.Query(QueryRequest{Query: q})
		if err != nil {
			t.Fatal(err)
		}
		if out.Status != http.StatusBadRequest {
			t.Errorf("query %d status = %d, want 400", q, out.Status)
		}
	}
	for _, body := range []string{"{", `{"quer":6}`} {
		resp, err := http.Post(run.URL+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		out, err := decodeOutcome(resp)
		if err != nil {
			t.Fatal(err)
		}
		if out.Status != http.StatusBadRequest {
			t.Errorf("body %q status = %d, want 400", body, out.Status)
		}
	}
	out, err := c.Query(QueryRequest{Query: 6, Session: "nope"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != http.StatusNotFound {
		t.Errorf("unknown session status = %d, want 404", out.Status)
	}
}

// TestServerSessionLifecycle: create, use, inspect, delete.
func TestServerSessionLifecycle(t *testing.T) {
	_, c := startTestServer(t, Config{})
	id, err := c.CreateSession()
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Query(QueryRequest{Query: 6, Session: id})
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("query status %d", out.Status)
	}
	if out.Response.Session != id {
		t.Errorf("response session = %q, want %q", out.Response.Session, id)
	}
	st, err := c.SessionStats(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != 1 || st.AdaptiveCalls == 0 {
		t.Errorf("session stats = %+v, want 1 query with adaptive calls", st)
	}
	if err := c.DeleteSession(id); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteSession(id); err == nil {
		t.Error("double delete succeeded")
	}
	out, err = c.Query(QueryRequest{Query: 6, Session: id})
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != http.StatusNotFound {
		t.Errorf("query on deleted session status = %d, want 404", out.Status)
	}
}

// TestServerSessionEviction drives the TTL and LRU policies with an
// injected clock.
func TestServerSessionEviction(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	_, c := startTestServer(t, Config{MaxSessions: 2, SessionTTL: time.Minute, Clock: clock})
	s1, err := c.CreateSession()
	if err != nil {
		t.Fatal(err)
	}
	advance(time.Second)
	s2, err := c.CreateSession()
	if err != nil {
		t.Fatal(err)
	}
	advance(time.Second)
	s3, err := c.CreateSession() // over MaxSessions: evicts s1 (LRU)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionStats(s1); err == nil {
		t.Error("LRU session survived eviction")
	}
	for _, id := range []string{s2, s3} {
		if _, err := c.SessionStats(id); err != nil {
			t.Errorf("live session %s: %v", id, err)
		}
	}
	advance(2 * time.Minute) // past TTL: everything expires
	for _, id := range []string{s2, s3} {
		if _, err := c.SessionStats(id); err == nil {
			t.Errorf("session %s survived TTL expiry", id)
		}
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.SessionsLive != 0 || m.SessionsCreated != 3 || m.SessionsEvicted != 3 {
		t.Errorf("session metrics = live %d created %d evicted %d, want 0/3/3",
			m.SessionsLive, m.SessionsCreated, m.SessionsEvicted)
	}
}

// TestServerConcurrentClients is the -race workhorse: many clients with
// their own sessions hammer the server concurrently; every result must
// match the in-process baseline, and the shared FlavorCache must have
// harvested knowledge.
func TestServerConcurrentClients(t *testing.T) {
	_, c := startTestServer(t, Config{Workers: 4, QueueDepth: 256})
	queries := []int{1, 6, 12, 14}
	want := make(map[int]string)
	for _, q := range queries {
		want[q] = Fingerprint(baselineTable(t, q))
	}

	const clients, perClient = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			id, err := c.CreateSession()
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < perClient; i++ {
				q := queries[(ci+i)%len(queries)]
				out, err := c.Query(QueryRequest{Query: q, Session: id})
				if err != nil {
					errs <- err
					return
				}
				if !out.OK() {
					errs <- fmt.Errorf("client %d Q%02d: status %d: %+v", ci, q, out.Status, out.Err)
					return
				}
				if out.Response.Fingerprint != want[q] {
					errs <- fmt.Errorf("client %d Q%02d: result differs from baseline", ci, q)
					return
				}
			}
			st, err := c.SessionStats(id)
			if err != nil {
				errs <- err
				return
			}
			if st.Queries != perClient {
				errs <- fmt.Errorf("client %d: session recorded %d queries, want %d", ci, st.Queries, perClient)
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Admission.Executed != clients*perClient {
		t.Errorf("executed = %d, want %d", m.Admission.Executed, clients*perClient)
	}
	if m.AdaptiveCalls == 0 {
		t.Error("no adaptive calls recorded")
	}
	if m.CacheInstanceKeys == 0 {
		t.Error("FlavorCache empty after concurrent load: harvest broken")
	}
	if m.LatencyP99US <= 0 || m.LatencyP50US > m.LatencyP99US {
		t.Errorf("implausible latency percentiles: p50=%v p99=%v", m.LatencyP50US, m.LatencyP99US)
	}
}

// TestServerWarmStartAcrossSessions mirrors the service-level warm-start
// acceptance property at the HTTP layer: a second client session pays a
// measurably smaller exploration tax than the first, because the first
// session's harvest seeded the shared FlavorCache.
func TestServerWarmStartAcrossSessions(t *testing.T) {
	_, c := startTestServer(t, Config{Service: testService(true)})
	s1, err := c.CreateSession()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := c.Query(QueryRequest{Query: 6, Session: s1})
	if err != nil {
		t.Fatal(err)
	}
	if !cold.OK() {
		t.Fatalf("cold status %d", cold.Status)
	}
	if cold.Response.Stats.OffBestCalls == 0 {
		t.Fatal("cold run paid no exploration tax; test is vacuous")
	}
	s2, err := c.CreateSession()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c.Query(QueryRequest{Query: 6, Session: s2})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.OK() {
		t.Fatalf("warm status %d", warm.Status)
	}
	if warm.Response.Stats.OffBestCalls >= cold.Response.Stats.OffBestCalls {
		t.Errorf("warm session off-best = %d, want < cold %d",
			warm.Response.Stats.OffBestCalls, cold.Response.Stats.OffBestCalls)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheSeededInsts == 0 {
		t.Error("no instances seeded from the cache")
	}
	if m.CacheHitRatePct <= 0 {
		t.Error("cache hit rate not reported")
	}
}

// TestServerShedsUnderSaturation pins down a one-worker, zero-queue
// server by occupying its only worker directly, then floods it over HTTP:
// every flooded request must come back as a well-formed 429 with
// Retry-After, and the server recovers once the worker frees up. (Pinning
// the worker rather than racing real queries keeps the test deterministic
// under arbitrary scheduler load.)
func TestServerShedsUnderSaturation(t *testing.T) {
	run, c := startTestServer(t, Config{Workers: 1, QueueDepth: -1, RetryAfter: 25 * time.Millisecond})
	// Retries off: this test counts raw sheds, so the client's backoff
	// loop must not absorb (and re-trigger) them.
	c.WithRetry(RetryPolicy{})
	running := make(chan struct{})
	release := make(chan struct{})
	blockerDone := make(chan error, 1)
	go func() {
		blockerDone <- run.Server.adm.Do(context.Background(), func() error {
			close(running)
			<-release
			return nil
		})
	}()
	<-running

	const n = 16
	outcomes := make([]*Outcome, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			outcomes[i], errs[i] = c.Query(QueryRequest{Query: 1})
		}()
	}
	wg.Wait()
	close(release)
	if err := <-blockerDone; err != nil {
		t.Fatalf("blocker job: %v", err)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: protocol error %v", i, errs[i])
		}
		if !outcomes[i].Shed() {
			t.Errorf("request %d: status %d, want 429 while the worker is pinned", i, outcomes[i].Status)
		} else if outcomes[i].RetryAfter <= 0 {
			t.Error("shed response missing Retry-After")
		}
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Admission.Shed != int64(n) {
		t.Errorf("metrics shed = %d, want %d", m.Admission.Shed, n)
	}
	// The server is not wedged: a lone retry succeeds.
	out, err := c.Query(QueryRequest{Query: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Errorf("post-flood retry status %d, want 200", out.Status)
	}
}

// TestServerDrainRejectsNew: after Drain, health flips to draining and
// query/session endpoints answer 503 while the process stays up.
func TestServerDrainRejectsNew(t *testing.T) {
	run, c := startTestServer(t, Config{})
	if out, err := c.Query(QueryRequest{Query: 6}); err != nil || !out.OK() {
		t.Fatalf("pre-drain query: %v / %+v", err, out)
	}
	run.Server.Drain()
	if c.Healthy() {
		t.Error("healthz still 200 after Drain")
	}
	out, err := c.Query(QueryRequest{Query: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Draining() {
		t.Errorf("post-drain query status = %d, want 503", out.Status)
	}
	if _, err := c.CreateSession(); err == nil {
		t.Error("session create succeeded after Drain")
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Draining {
		t.Error("metrics does not report draining")
	}
}

// TestErrorMapping pins the error -> HTTP status table.
func TestErrorMapping(t *testing.T) {
	s := NewServer(Config{Service: testService(true), RetryAfter: 1500 * time.Millisecond})
	cases := []struct {
		err        error
		status     int
		retryAfter string
	}{
		{ErrShed, http.StatusTooManyRequests, "2"}, // 1500ms rounds up to 2s
		{ErrDraining, http.StatusServiceUnavailable, ""},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, ""},
		{context.Canceled, http.StatusGatewayTimeout, ""},
		{errors.New("kaboom"), http.StatusInternalServerError, ""},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		s.writeError(rec, tc.err)
		if rec.Code != tc.status {
			t.Errorf("%v -> %d, want %d", tc.err, rec.Code, tc.status)
		}
		if got := rec.Header().Get("Retry-After"); got != tc.retryAfter {
			t.Errorf("%v Retry-After = %q, want %q", tc.err, got, tc.retryAfter)
		}
	}
}
