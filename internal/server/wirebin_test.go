package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"microadapt/internal/engine"
	"microadapt/internal/vector"
)

// wireBinCases are the round-trip fixtures the codec must preserve
// bit-exactly: empty and zero-row tables, all-equal columns, non-finite
// floats (which JSON cannot carry at all), signed zeros, and wide
// strings.
func wireBinCases() []*TableJSON {
	wide := strings.Repeat("x", 1<<16) + "π∞" // multi-byte tail past one chunk of anything
	return []*TableJSON{
		{Name: "empty"},
		{Name: "zero-row", Rows: 0, Cols: []ColumnJSON{
			{Name: "k", Type: "slng", I64: []int64{}},
			{Name: "v", Type: "dbl", F64: []float64{}},
			{Name: "s", Type: "str", Str: []string{}},
		}},
		{Name: "all-types", Rows: 3, Cols: []ColumnJSON{
			{Name: "a", Type: "schr", I64: []int64{-128, 0, 127}},
			{Name: "b", Type: "sint", I64: []int64{math.MinInt16, 0, math.MaxInt16}},
			{Name: "c", Type: "slng", I64: []int64{math.MinInt64, -1, math.MaxInt64}},
			{Name: "d", Type: "dbl", F64: []float64{-1.5, 0, 6.02214076e23}},
			{Name: "e", Type: "str", Str: []string{"", "hello", "héllo"}},
		}},
		{Name: "all-equal", Rows: 4, Cols: []ColumnJSON{
			{Name: "k", Type: "slng", I64: []int64{7, 7, 7, 7}},
		}},
		{Name: "non-finite", Rows: 5, Cols: []ColumnJSON{
			{Name: "f", Type: "dbl", F64: []float64{
				math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 0,
			}},
		}},
		{Name: "wide-strings", Rows: 2, Cols: []ColumnJSON{
			{Name: "s", Type: "str", Str: []string{wide, "short"}},
		}},
	}
}

func TestWireBinRoundTrip(t *testing.T) {
	for _, tj := range wireBinCases() {
		data, err := MarshalTableBin(tj)
		if err != nil {
			t.Fatalf("%s: marshal: %v", tj.Name, err)
		}
		got, err := UnmarshalTableBin(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", tj.Name, err)
		}
		if got.Name != tj.Name || got.Rows != tj.Rows || len(got.Cols) != len(tj.Cols) {
			t.Fatalf("%s: shape changed: %+v", tj.Name, got)
		}
		if !got.Equal(tj) {
			t.Errorf("%s: round trip not bit-identical", tj.Name)
		}
		// Equal compares float bits, but double-check the decoded F64
		// values carry the exact bit patterns (incl. NaN payload, -0).
		for ci := range tj.Cols {
			want := &tj.Cols[ci]
			for r := 0; r < want.f64Len(); r++ {
				if gb, wb := got.Cols[ci].f64Bit(r), want.f64Bit(r); gb != wb {
					t.Errorf("%s col %s row %d: bits %016x, want %016x", tj.Name, want.Name, r, gb, wb)
				}
			}
		}
	}
}

// TestWireBinEscapedFormPacksIdentically: a table in F64Bits escape form
// (post EscapeNonFinite) and its plain-F64 twin produce the same bytes —
// the binary body always carries raw bits.
func TestWireBinEscapedFormPacksIdentically(t *testing.T) {
	plain := &TableJSON{Name: "t", Rows: 2, Cols: []ColumnJSON{
		{Name: "f", Type: "dbl", F64: []float64{math.NaN(), 1.5}},
	}}
	escaped := &TableJSON{Name: "t", Rows: 2, Cols: []ColumnJSON{
		{Name: "f", Type: "dbl", F64: []float64{math.NaN(), 1.5}},
	}}
	escaped.EscapeNonFinite()
	if len(escaped.Cols[0].F64Bits) == 0 {
		t.Fatal("EscapeNonFinite left a NaN column in F64 form")
	}
	a, err := MarshalTableBin(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalTableBin(escaped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("escaped and plain forms pack differently")
	}
}

// TestWireBinRejectsCorrupt: every truncation of a valid encoding, plus
// assorted structural corruptions, error cleanly — never panic, never
// decode to a wrong table.
func TestWireBinRejectsCorrupt(t *testing.T) {
	valid, err := MarshalTableBin(wireBinCases()[2]) // all-types
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(valid); n++ {
		if _, err := UnmarshalTableBin(valid[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded cleanly", n, len(valid))
		}
	}
	corrupt := map[string][]byte{
		"empty":           {},
		"bad-magic":       append([]byte("XXXX"), valid[4:]...),
		"trailing-bytes":  append(append([]byte{}, valid...), 0),
		"huge-row-claim":  {'M', 'W', 'T', '1', 0, 0xff, 0xff, 0xff, 0xff, 0x0f, 1},
		"bad-type-code":   {'M', 'W', 'T', '1', 0, 0, 1, 1, 'c', 99},
		"string-len-lies": {'M', 'W', 'T', '1', 0, 1, 1, 1, 's', 5, 200, 'x'},
	}
	for name, data := range corrupt {
		if _, err := UnmarshalTableBin(data); err == nil {
			t.Errorf("%s: decoded cleanly", name)
		}
	}
}

// TestWireBinMarshalRejectsRaggedColumn: a column whose value count
// disagrees with the declared row count must not encode.
func TestWireBinMarshalRejectsRaggedColumn(t *testing.T) {
	_, err := MarshalTableBin(&TableJSON{Name: "t", Rows: 3, Cols: []ColumnJSON{
		{Name: "k", Type: "slng", I64: []int64{1, 2}},
	}})
	if err == nil {
		t.Error("ragged column encoded cleanly")
	}
}

// FuzzWireBin: arbitrary bytes never panic the decoder, and anything it
// does accept re-encodes to a table equal to the first decode (the codec
// is a lossless involution on its own output).
func FuzzWireBin(f *testing.F) {
	for _, tj := range wireBinCases() {
		if data, err := MarshalTableBin(tj); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte("MWT1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tj, err := UnmarshalTableBin(data)
		if err != nil {
			return
		}
		re, err := MarshalTableBin(tj)
		if err != nil {
			t.Fatalf("accepted table does not re-marshal: %v", err)
		}
		back, err := UnmarshalTableBin(re)
		if err != nil {
			t.Fatalf("re-marshalled table does not decode: %v", err)
		}
		if !back.Equal(tj) {
			t.Fatal("marshal∘unmarshal is not idempotent")
		}
	})
}

// TestDecodeTableNarrowingBoundaries: decode narrows wire I64 back to the
// declared width (schr=16-bit, sint=32-bit), accepting the exact type
// bounds and rejecting one past them rather than silently truncating.
func TestDecodeTableNarrowingBoundaries(t *testing.T) {
	cases := []struct {
		typ string
		val int64
		ok  bool
	}{
		{"schr", math.MinInt16, true},
		{"schr", math.MaxInt16, true},
		{"schr", math.MinInt16 - 1, false},
		{"schr", math.MaxInt16 + 1, false},
		{"sint", math.MinInt32, true},
		{"sint", math.MaxInt32, true},
		{"sint", math.MinInt32 - 1, false},
		{"sint", math.MaxInt32 + 1, false},
		{"slng", math.MinInt32 - 1, true}, // slng is 64-bit: no narrowing
		{"slng", math.MaxInt32 + 1, true},
	}
	for _, tc := range cases {
		tj := &TableJSON{Name: "t", Rows: 1, Cols: []ColumnJSON{
			{Name: "k", Type: tc.typ, I64: []int64{tc.val}},
		}}
		_, err := DecodeTable(tj)
		if tc.ok && err != nil {
			t.Errorf("%s %d: rejected: %v", tc.typ, tc.val, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s %d: accepted out-of-range value", tc.typ, tc.val)
		}
	}
}

// TestTableJSONEqualNonFinite: Equal compares float bits, so a
// NaN-bearing table equals itself (== would deny it), ±Inf round-trips,
// the F64Bits escape form equals its plain twin, and +0 vs -0 — distinct
// bit patterns — compare unequal.
func TestTableJSONEqualNonFinite(t *testing.T) {
	mk := func(vals ...float64) *TableJSON {
		return &TableJSON{Name: "t", Rows: len(vals), Cols: []ColumnJSON{
			{Name: "f", Type: "dbl", F64: vals},
		}}
	}
	nonFinite := mk(math.NaN(), math.Inf(1), math.Inf(-1))
	if !nonFinite.Equal(nonFinite) {
		t.Error("NaN/Inf table unequal to itself")
	}
	if !nonFinite.Equal(mk(math.NaN(), math.Inf(1), math.Inf(-1))) {
		t.Error("NaN/Inf table unequal to a bit-identical copy")
	}
	escaped := mk(math.NaN(), math.Inf(1), math.Inf(-1)).EscapeNonFinite()
	if len(escaped.Cols[0].F64Bits) == 0 {
		t.Fatal("EscapeNonFinite did not rewrite the column")
	}
	if !nonFinite.Equal(escaped) || !escaped.Equal(nonFinite) {
		t.Error("escaped form unequal to its plain twin")
	}
	if mk(0).Equal(mk(math.Copysign(0, -1))) {
		t.Error("+0 compares equal to -0; bit comparison must distinguish them")
	}
	if mk(1, 2).Equal(mk(1, 3)) {
		t.Error("differing tables compare equal")
	}
}

// TestEscapeNonFiniteJSONRoundTrip pins the JSON-path behavior the
// escape exists for: json.Marshal fails outright on a non-finite float,
// and the escaped form marshals cleanly and round-trips bit-exactly
// through both json and DecodeTable.
func TestEscapeNonFiniteJSONRoundTrip(t *testing.T) {
	vals := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 2.5}
	raw := &TableJSON{Name: "t", Rows: 4, Cols: []ColumnJSON{
		{Name: "f", Type: "dbl", F64: append([]float64{}, vals...)},
	}}
	if _, err := json.Marshal(raw); err == nil {
		t.Fatal("json.Marshal accepted a non-finite float; the escape would be dead code")
	}
	data, err := json.Marshal(raw.EscapeNonFinite())
	if err != nil {
		t.Fatalf("escaped table does not marshal: %v", err)
	}
	var back TableJSON
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	tab, err := DecodeTable(&back)
	if err != nil {
		t.Fatal(err)
	}
	for r, want := range vals {
		if got := tab.Cols[0].GetF64(r); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("row %d: %v (bits %016x), want %v", r, got, math.Float64bits(got), want)
		}
	}
}

// TestDecodeTableRejectsBothFloatForms: a column carrying both f64 and
// f64b is malformed, not a choice.
func TestDecodeTableRejectsBothFloatForms(t *testing.T) {
	_, err := DecodeTable(&TableJSON{Name: "t", Rows: 1, Cols: []ColumnJSON{
		{Name: "f", Type: "dbl", F64: []float64{1}, F64Bits: []uint64{2}},
	}})
	if err == nil {
		t.Error("column with both float forms decoded cleanly")
	}
}

// nonFiniteTable is an engine table no TPC-H query produces but a wire
// plan could: a dbl column holding NaN and both infinities.
func nonFiniteTable() *engine.Table {
	sch := vector.Schema{
		{Name: "k", Type: vector.I64},
		{Name: "f", Type: vector.F64},
	}
	cols := []*vector.Vector{
		vector.FromI64([]int64{1, 2, 3, 4, 5, 6}),
		vector.FromF64([]float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.0, 1.5, 2.5}),
	}
	return engine.NewTable("nf", sch, cols)
}

// TestPlanStreamNonFinite: streamTable on a NaN/±Inf result emits clean
// chunk frames — no mid-stream error frame after the committed 200 — in
// both wire modes, and the values round-trip bit-exactly.
func TestPlanStreamNonFinite(t *testing.T) {
	for _, bin := range []bool{false, true} {
		name := "json"
		if bin {
			name = "bin"
		}
		t.Run(name, func(t *testing.T) {
			s := &Server{streamChunkRows: 4}
			rec := httptest.NewRecorder()
			want := nonFiniteTable()
			s.streamTable(rec, "nf", "", want, StatsJSON{}, bin)

			var got *TableJSON
			chunks := 0
			sc := bufio.NewScanner(bytes.NewReader(rec.Body.Bytes()))
			for sc.Scan() {
				var f StreamFrame
				if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
					t.Fatalf("malformed frame %q: %v", sc.Text(), err)
				}
				switch f.Frame {
				case FrameError:
					t.Fatalf("error frame mid-stream: %s", f.Error)
				case FrameChunk:
					chunks++
					tj := f.Table
					if bin {
						if tj != nil || len(f.Bin) == 0 {
							t.Fatal("binary mode emitted a JSON chunk body")
						}
						var err error
						if tj, err = UnmarshalTableBin(f.Bin); err != nil {
							t.Fatal(err)
						}
					}
					if got == nil {
						got = tj
					} else {
						got.Rows += tj.Rows
						for ci := range tj.Cols {
							got.Cols[ci].I64 = append(got.Cols[ci].I64, tj.Cols[ci].I64...)
							got.Cols[ci].F64 = append(got.Cols[ci].F64, tj.Cols[ci].F64...)
							fb := &got.Cols[ci]
							// Stitching across escaped/plain chunks: normalize to bits.
							if len(tj.Cols[ci].F64Bits) > 0 || len(fb.F64Bits) > 0 {
								all := make([]uint64, 0, got.Rows)
								for r := 0; r < fb.f64Len(); r++ {
									all = append(all, fb.f64Bit(r))
								}
								for r := 0; r < tj.Cols[ci].f64Len(); r++ {
									all = append(all, tj.Cols[ci].f64Bit(r))
								}
								fb.F64, fb.F64Bits = nil, all
							}
						}
					}
				}
			}
			if chunks != 2 {
				t.Fatalf("%d chunks, want 2 (6 rows, cap 4)", chunks)
			}
			tab, err := DecodeTable(got)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < want.Rows(); r++ {
				wb := math.Float64bits(want.Cols[1].GetF64(r))
				gb := math.Float64bits(tab.Cols[1].GetF64(r))
				if wb != gb {
					t.Errorf("row %d: bits %016x, want %016x", r, gb, wb)
				}
			}
		})
	}
}

// TestPlanStreamBinaryNegotiation: a binary client gets binary chunks
// from a current server and JSON chunks from a legacy one, with
// identical fingerprints, digests verified, and identical decoded rows —
// negotiation can only fall back, never fail.
func TestPlanStreamBinaryNegotiation(t *testing.T) {
	runCur, cur := startTestServer(t, Config{StreamChunkRows: 7})
	_, old := startTestServer(t, Config{StreamChunkRows: 7, LegacyJSONWire: true})
	old.WithBinaryWire(true)
	curJSON := NewClient(runCur.URL)
	cur.WithBinaryWire(true)

	body, err := EncodePlanRequest(PlanRequest{Plan: marshalQueryPlan(t, 1)})
	if err != nil {
		t.Fatal(err)
	}
	run := func(c *Client) *StreamResult {
		t.Helper()
		res, err := c.PlanStreamEncoded(body, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	binRes, jsonRes, oldRes := run(cur), run(curJSON), run(old)
	if binRes.BinaryChunks == 0 || binRes.BinaryChunks != binRes.Chunks {
		t.Errorf("negotiated stream: %d/%d binary chunks, want all", binRes.BinaryChunks, binRes.Chunks)
	}
	if jsonRes.BinaryChunks != 0 {
		t.Errorf("non-negotiating client got %d binary chunks", jsonRes.BinaryChunks)
	}
	if oldRes.BinaryChunks != 0 {
		t.Errorf("legacy server answered %d binary chunks", oldRes.BinaryChunks)
	}
	if binRes.Fingerprint != jsonRes.Fingerprint || binRes.Fingerprint != oldRes.Fingerprint {
		t.Error("fingerprints differ across wire modes")
	}
}

// TestQueryBinaryWire: the buffered endpoints honor the negotiation too —
// result_bin instead of result — and ResultTable decodes both forms to
// equal tables.
func TestQueryBinaryWire(t *testing.T) {
	_, c := startTestServer(t, Config{})
	jsonOut, err := c.Query(QueryRequest{Query: 6, IncludeResult: true})
	if err != nil {
		t.Fatal(err)
	}
	c.WithBinaryWire(true)
	binOut, err := c.Query(QueryRequest{Query: 6, IncludeResult: true})
	if err != nil {
		t.Fatal(err)
	}
	if jsonOut.Response.Result == nil || len(jsonOut.Response.ResultBin) != 0 {
		t.Fatal("plain client should get the JSON result form")
	}
	if binOut.Response.Result != nil || len(binOut.Response.ResultBin) == 0 {
		t.Fatal("negotiating client should get the binary result form")
	}
	jt, err := jsonOut.Response.ResultTable()
	if err != nil {
		t.Fatal(err)
	}
	bt, err := binOut.Response.ResultTable()
	if err != nil {
		t.Fatal(err)
	}
	if !jt.Equal(bt) {
		t.Error("binary and JSON result tables differ")
	}
	if binOut.Response.Fingerprint != jsonOut.Response.Fingerprint {
		t.Error("fingerprints differ across wire modes")
	}
}
