// Admission control: the bounded request queue between the HTTP front end
// and the query workers. Everything the server promises about overload
// behavior lives here — a full queue sheds instead of buffering without
// bound, a request whose deadline passes while queued is cancelled before
// it ever reaches a session, and draining lets in-flight (queued or
// executing) work finish while new work bounces.
package server

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"microadapt/internal/stats"
)

// ErrShed reports a request rejected because the queue was full; the HTTP
// layer maps it to 429 + Retry-After.
var ErrShed = errors.New("server: overloaded, queue full")

// ErrDraining reports a request rejected because the server is shutting
// down; the HTTP layer maps it to 503.
var ErrDraining = errors.New("server: draining")

// AdmissionConfig sizes the controller.
type AdmissionConfig struct {
	// Workers is the number of concurrent query executors (default:
	// GOMAXPROCS).
	Workers int
	// QueueDepth is how many admitted requests may wait beyond the ones
	// executing (default 64). 0 is legal and means a request is admitted
	// only when a worker is ready to take it immediately.
	QueueDepth int
	// WaitWindow is the sample capacity of the queue-wait distribution
	// (default 1024).
	WaitWindow int
}

// ticket is one admitted request traveling from Do to a worker.
type ticket struct {
	ctx      context.Context
	job      func() error
	done     chan error
	enqueued time.Time
}

// Admission is the bounded queue plus worker pool. Jobs submitted through
// Do run on the pool; the calling goroutine blocks until its job finishes
// or its context expires.
type Admission struct {
	queue chan *ticket
	wait  *stats.Window // queue wait, nanoseconds

	// drainMu serializes "may I still enqueue?" against Drain: senders
	// hold it shared around the check-and-send, Drain holds it exclusive
	// while flipping draining, so no send can race the channel close.
	drainMu  sync.RWMutex
	draining bool
	workers  sync.WaitGroup

	executed atomic.Int64 // jobs that ran
	shed     atomic.Int64 // rejected: queue full
	expired  atomic.Int64 // cancelled while queued (deadline passed)
	rejected atomic.Int64 // rejected: draining
}

// NewAdmission builds the controller and starts its workers.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	} else if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.WaitWindow < 1 {
		cfg.WaitWindow = 1024
	}
	a := &Admission{
		queue: make(chan *ticket, cfg.QueueDepth),
		wait:  stats.NewWindow(cfg.WaitWindow),
	}
	a.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go a.worker()
	}
	return a
}

// NewImmediateAdmission builds a controller whose queue holds nothing
// beyond the executing requests: admission requires a ready worker. Tests
// and the shed-behavior CI smoke use it for deterministic overload.
func NewImmediateAdmission(workers int) *Admission {
	return NewAdmission(AdmissionConfig{Workers: workers, QueueDepth: -1})
}

// Do admits job, waits for a worker to run it, and returns its error.
//
//   - ErrDraining: the server is shutting down; job did not run.
//   - ErrShed: the queue was full; job did not run.
//   - ctx.Err(): the deadline passed while queued. The caller stops
//     waiting immediately; the worker that eventually dequeues the ticket
//     observes the dead context and skips execution, so an expired request
//     never touches a session.
func (a *Admission) Do(ctx context.Context, job func() error) error {
	t := &ticket{ctx: ctx, job: job, done: make(chan error, 1), enqueued: time.Now()}

	a.drainMu.RLock()
	if a.draining {
		a.drainMu.RUnlock()
		a.rejected.Add(1)
		return ErrDraining
	}
	select {
	case a.queue <- t:
		a.drainMu.RUnlock()
	default:
		a.drainMu.RUnlock()
		a.shed.Add(1)
		return ErrShed
	}

	select {
	case err := <-t.done:
		return err
	case <-ctx.Done():
		// The ticket stays queued; the worker skips it on dequeue.
		return ctx.Err()
	}
}

func (a *Admission) worker() {
	defer a.workers.Done()
	for t := range a.queue {
		a.wait.Add(float64(time.Since(t.enqueued)))
		if err := t.ctx.Err(); err != nil {
			a.expired.Add(1)
			t.done <- err
			continue
		}
		a.executed.Add(1)
		t.done <- t.job()
	}
}

// Drain stops admitting, lets every queued and executing job finish, and
// returns when the pool is idle. Jobs queued before Drain complete — the
// graceful-shutdown contract — and Do calls racing Drain either enqueue
// before the flag flips (and complete) or observe ErrDraining.
func (a *Admission) Drain() {
	a.drainMu.Lock()
	if a.draining {
		a.drainMu.Unlock()
		a.workers.Wait()
		return
	}
	a.draining = true
	a.drainMu.Unlock()
	// No sender can be inside the enqueue critical section now, and every
	// future one sees draining, so closing is race-free.
	close(a.queue)
	a.workers.Wait()
}

// Draining reports whether Drain has begun.
func (a *Admission) Draining() bool {
	a.drainMu.RLock()
	defer a.drainMu.RUnlock()
	return a.draining
}

// QueueDepth returns how many admitted requests are waiting right now.
func (a *Admission) QueueDepth() int { return len(a.queue) }

// AdmissionStats is a counter snapshot for /metrics.
type AdmissionStats struct {
	Executed int64 `json:"executed"`
	Shed     int64 `json:"shed"`
	Expired  int64 `json:"expired"`
	Rejected int64 `json:"rejected_draining"`
}

// Stats snapshots the counters.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{
		Executed: a.executed.Load(),
		Shed:     a.shed.Load(),
		Expired:  a.expired.Load(),
		Rejected: a.rejected.Load(),
	}
}

// QueueWait returns the p-th percentile of recent queue waits.
func (a *Admission) QueueWait(p float64) time.Duration {
	return time.Duration(a.wait.Percentile(p))
}
