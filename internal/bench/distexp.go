// Distributed-tier experiments: shard-scaling with bit-identity checks,
// and the flavor-knowledge federation study (cold shard vs. a shard
// warm-started from gossiped fleet knowledge).
package bench

import (
	"context"
	"fmt"
	"time"

	"microadapt/internal/dist"
	"microadapt/internal/server"
	"microadapt/internal/service"
	"microadapt/internal/stats"
	"microadapt/internal/tpch"
)

// distMix is the query mix the distributed experiments drive: scan-heavy
// fragment-friendly queries plus join/delivery-heavy residuals.
var distMix = []int{1, 3, 6, 12, 14, 19}

// distServiceConfig maps a bench Config onto a service configuration.
func distServiceConfig(cfg Config) service.Config {
	sc := service.DefaultConfig()
	sc.VectorSize = cfg.VectorSize
	sc.Machine = cfg.Machine
	sc.Policy = cfg.policySpec()
	sc.VW = cfg.VW
	sc.Seed = cfg.Seed
	return sc
}

// startDistFleet spins up n in-process shard servers over row-range
// shards of db plus a coordinator. The returned stop function shuts the
// fleet down.
func startDistFleet(db *tpch.DB, n int, sc service.Config) (*dist.Coordinator, func(), error) {
	return startDistFleetFanout(db, n, sc, 0)
}

// startDistFleetFanout is startDistFleet with an explicit coordinator
// site fan-out: 1 runs fragment sites sequentially (deterministic
// shard-side learning, what the gated bench entries need); 0 takes the
// coordinator default (overlapped sites).
func startDistFleetFanout(db *tpch.DB, n int, sc service.Config, fanout int) (*dist.Coordinator, func(), error) {
	return startDistFleetWire(db, n, sc, fanout, false)
}

// startDistFleetWire additionally pins the wire encoding: jsonWire forces
// the legacy JSON partial bodies, isolating the binary codec's
// contribution in the dist-n2 vs dist-json bench entries.
func startDistFleetWire(db *tpch.DB, n int, sc service.Config, fanout int, jsonWire bool) (*dist.Coordinator, func(), error) {
	var runs []*server.Running
	stop := func() {
		for _, r := range runs {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = r.Shutdown(ctx)
			cancel()
		}
	}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		svc := service.New(db.Shard(i, n), sc)
		run, err := server.Start(server.NewServer(server.Config{Service: svc}), "")
		if err != nil {
			stop()
			return nil, nil, fmt.Errorf("start shard %d: %w", i, err)
		}
		runs = append(runs, run)
		urls[i] = run.URL
	}
	c, err := dist.New(dist.Config{Shards: urls, DB: db, Service: sc, SiteFanout: fanout, JSONWire: jsonWire})
	if err != nil {
		stop()
		return nil, nil, err
	}
	if err := c.WaitReady(time.Minute); err != nil {
		stop()
		return nil, nil, err
	}
	return c, stop, nil
}

// distTierStats is one fleet size's measured behavior.
type distTierStats struct {
	shards        int
	wall          time.Duration
	fragP50US     float64
	fragP99US     float64
	ttfcP50US     float64
	offBestPct    float64
	adaptiveCalls int64
	fingerprints  bool // all queries bit-identical to single-process
}

// runDistTier executes rounds of the mix through a coordinator over n
// shards and verifies every result against the single-process
// fingerprints.
func runDistTier(db *tpch.DB, n, rounds int, sc service.Config, want map[int]string) (distTierStats, error) {
	c, stop, err := startDistFleet(db, n, sc)
	if err != nil {
		return distTierStats{}, err
	}
	defer stop()
	ts := distTierStats{shards: n, fingerprints: true}
	var adaptive, offBest int64
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, q := range distMix {
			tab, st, err := c.Execute(q)
			if err != nil {
				return ts, fmt.Errorf("N=%d Q%02d: %w", n, q, err)
			}
			if server.Fingerprint(tab) != want[q] {
				ts.fingerprints = false
			}
			adaptive += st.AdaptiveCalls
			offBest += st.OffBestCalls
		}
	}
	ts.wall = time.Since(start)
	fleet := c.Fleet()
	ts.fragP50US, ts.fragP99US = fleet.FragmentP50US, fleet.FragmentP99US
	ts.ttfcP50US = fleet.TTFCP50US
	ts.adaptiveCalls = adaptive
	if adaptive > 0 {
		ts.offBestPct = 100 * float64(offBest) / float64(adaptive)
	}
	return ts, nil
}

// DistScaling measures distributed execution across fleet sizes: wall
// time, fragment round-trip percentiles, off-best fraction — with every
// result checked bit-identical against single-process execution.
func DistScaling(cfg Config) (*Report, error) {
	db := cfg.DB()
	sc := distServiceConfig(cfg)
	single := service.New(db, sc)
	want := make(map[int]string, len(distMix))
	const rounds = 3
	lat := stats.NewWindow(4096)
	var adaptive, offBest int64
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, q := range distMix {
			tab, st, err := single.Execute(q)
			if err != nil {
				return nil, fmt.Errorf("single Q%02d: %w", q, err)
			}
			if r == 0 {
				want[q] = server.Fingerprint(tab)
			}
			lat.Add(float64(st.Latency))
			adaptive += st.AdaptiveCalls
			offBest += st.OffBestCalls
		}
	}
	singleWall := time.Since(start)
	singleOffBest := 0.0
	if adaptive > 0 {
		singleOffBest = 100 * float64(offBest) / float64(adaptive)
	}

	rows := [][]string{{"tier", "wall ms", "frag p50 us", "frag p99 us", "ttfc p50 us", "off-best %", "bit-identical"}}
	rows = append(rows, []string{
		"single", fmt.Sprintf("%.1f", float64(singleWall.Microseconds())/1e3),
		"-", "-", "-", fmt.Sprintf("%.2f", singleOffBest), "baseline",
	})
	for _, n := range []int{1, 2, 4} {
		ts, err := runDistTier(db, n, rounds, sc, want)
		if err != nil {
			return nil, err
		}
		ident := "yes"
		if !ts.fingerprints {
			ident = "NO"
		}
		rows = append(rows, []string{
			fmt.Sprintf("dist N=%d", n),
			fmt.Sprintf("%.1f", float64(ts.wall.Microseconds())/1e3),
			fmt.Sprintf("%.0f", ts.fragP50US),
			fmt.Sprintf("%.0f", ts.fragP99US),
			fmt.Sprintf("%.0f", ts.ttfcP50US),
			fmt.Sprintf("%.2f", ts.offBestPct),
			ident,
		})
		if !ts.fingerprints {
			return nil, fmt.Errorf("dist N=%d produced results differing from single-process", n)
		}
	}
	body := stats.FormatTable(rows) +
		fmt.Sprintf("\nmix %v x %d rounds, sf=%g seed=%d; fragments run on shard processes over\n"+
			"madaptd's HTTP plan endpoint; results verified bit-identical per query.\n",
			distMix, rounds, cfg.SF, cfg.Seed)
	return &Report{ID: "dist", Title: "Distributed execution: shard scaling with bit-identity", Body: body}, nil
}

// federationStats measures one fresh shard-sized service running the mix.
type federationStats struct {
	offBestPct float64
	adaptive   int64
	seeded     int64
}

func runFederationPhase(db *tpch.DB, sc service.Config, snap *service.KnowledgeSnapshot) (federationStats, error) {
	svc := service.New(db, sc)
	if snap != nil {
		svc.Cache().Import(*snap)
	}
	var adaptive, offBest int64
	for _, q := range distMix {
		_, st, err := svc.Execute(q)
		if err != nil {
			return federationStats{}, err
		}
		adaptive += st.AdaptiveCalls
		offBest += st.OffBestCalls
	}
	fs := federationStats{adaptive: adaptive}
	fs.seeded, _ = svc.SeededInstances()
	if adaptive > 0 {
		fs.offBestPct = 100 * float64(offBest) / float64(adaptive)
	}
	return fs, nil
}

// Federation runs the flavor-knowledge federation study: warm a 2-shard
// fleet through the coordinator, gossip the fleet's knowledge together,
// then compare a cold shard process against an identical process
// warm-started from the gossiped snapshot. The warm shard's off-best
// fraction must be lower — cross-process transfer of flavor knowledge is
// the entire point of federation.
func Federation(cfg Config) (*Report, error) {
	db := cfg.DB()
	sc := distServiceConfig(cfg)

	c, stop, err := startDistFleet(db, 2, sc)
	if err != nil {
		return nil, err
	}
	const rounds = 3
	for r := 0; r < rounds; r++ {
		for _, q := range distMix {
			if _, _, err := c.Execute(q); err != nil {
				stop()
				return nil, fmt.Errorf("warmup Q%02d: %w", q, err)
			}
		}
	}
	if _, err := c.GossipOnce(); err != nil {
		stop()
		return nil, fmt.Errorf("gossip: %w", err)
	}
	fleet := c.Cache().Export()
	stop()
	if fleet.Len() == 0 {
		return nil, fmt.Errorf("federation: fleet snapshot is empty after warmup")
	}

	shardDB := db.Shard(0, 2)
	cold, err := runFederationPhase(shardDB, sc, nil)
	if err != nil {
		return nil, fmt.Errorf("cold phase: %w", err)
	}
	warm, err := runFederationPhase(shardDB, sc, &fleet)
	if err != nil {
		return nil, fmt.Errorf("warm phase: %w", err)
	}

	rows := [][]string{
		{"phase", "off-best %", "adaptive calls", "seeded instances"},
		{"cold (no federation)", fmt.Sprintf("%.2f", cold.offBestPct), fmt.Sprintf("%d", cold.adaptive), fmt.Sprintf("%d", cold.seeded)},
		{"federated warm-start", fmt.Sprintf("%.2f", warm.offBestPct), fmt.Sprintf("%d", warm.adaptive), fmt.Sprintf("%d", warm.seeded)},
	}
	verdict := "federation reduced the exploration tax"
	if warm.offBestPct >= cold.offBestPct {
		verdict = "WARNING: federation did not reduce off-best fraction on this run"
	}
	body := stats.FormatTable(rows) + fmt.Sprintf(
		"\n%s: %.2f%% -> %.2f%% off-best over mix %v.\n"+
			"The fleet snapshot (%d instance keys) was learned by two shard processes,\n"+
			"gossiped through the coordinator, and imported by a brand-new process\n"+
			"before its first query.\n",
		verdict, cold.offBestPct, warm.offBestPct, distMix, fleet.Len())
	return &Report{ID: "federation", Title: "Flavor-knowledge federation: cold vs. warm-started shard", Body: body}, nil
}
