package bench

import "microadapt/internal/traffic"

// The open-loop traffic generator lives in internal/traffic so that the
// server package (soak harness) can use it without importing bench.
// These aliases keep the bench-facing names that experiments and
// cmd/madapt were written against.
type (
	Traffic       = traffic.Traffic
	WeightedQuery = traffic.WeightedQuery
	Phase         = traffic.Phase
	Arrival       = traffic.Arrival
)

// UniformMix weights every query equally.
var UniformMix = traffic.UniformMix

// ZipfMix weights queries by a Zipf law; see traffic.ZipfMix.
var ZipfMix = traffic.ZipfMix
