package bench

import (
	"strings"
	"testing"

	"microadapt/internal/core"
	"microadapt/internal/policy"
	"microadapt/internal/primitive"
	"microadapt/internal/tpch"
)

// tinyConfig keeps experiment smoke tests fast.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.SF = 0.002
	cfg.VW.ExplorePeriod = 64
	return cfg
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 22 {
		t.Errorf("experiments = %d, want 22 (every table and figure + policycmp + scaling + storage + dist + federation)", len(exps))
	}
	want := []string{"table1", "fig1", "fig2", "fig4", "fig5", "fig6", "table4",
		"fig8", "fig10", "table5", "table6", "table7", "table8", "table9",
		"table10", "fig11", "table11", "policycmp", "scaling", "storage",
		"dist", "federation"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id should not resolve")
	}
	if len(IDs()) != len(exps) {
		t.Error("IDs() length mismatch")
	}
}

// TestMicroExperimentsRun smoke-tests the non-TPC-H experiments.
func TestMicroExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("micro experiments take ~10s; skipped in -short mode")
	}
	cfg := tinyConfig()
	for _, id := range []string{"fig1", "fig5", "fig6", "table4", "fig8"} {
		e, _ := ByID(id)
		rep, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if rep.ID != id || len(rep.Body) < 100 {
			t.Errorf("%s: malformed report", id)
		}
		if !strings.Contains(rep.String(), rep.Title) {
			t.Errorf("%s: rendering misses title", id)
		}
	}
}

// TestTPCHExperimentsRun smoke-tests the workload-based experiments at a
// tiny scale factor (shape assertions live in the packages below; this
// guards against instance-label drift between plans and the harness).
func TestTPCHExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H experiments skipped in -short mode")
	}
	cfg := tinyConfig()
	for _, id := range []string{"table1", "fig2", "fig4", "fig10", "table6", "table9", "fig11", "table11"} {
		e, _ := ByID(id)
		rep, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Body) < 50 {
			t.Errorf("%s: empty report", id)
		}
	}
}

func TestFig1ShapeMatchesPaper(t *testing.T) {
	cfg := tinyConfig()
	rep, err := Fig1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Body, "cross-over points") {
		t.Error("fig1 should report cross-over points")
	}
}

func TestFig6CrossoverOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6 sweeps four machines over seven filter sizes (~11s); skipped in -short mode")
	}
	cfg := tinyConfig()
	rep, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: machine 1 crosses over at a smaller filter
	// size than machine 4.
	lines := strings.Split(rep.Body, "\n")
	sizeLike := func(s string) bool {
		return strings.HasSuffix(s, "M") || strings.HasSuffix(s, "K")
	}
	var m1Cross, m4Cross string
	for _, l := range lines {
		f := strings.Fields(l)
		// The cross-over table rows look like: "machine1  1M  1.53".
		if len(f) == 3 && sizeLike(f[1]) {
			switch f[0] {
			case "machine1":
				m1Cross = f[1]
			case "machine4":
				m4Cross = f[1]
			}
		}
	}
	if m1Cross != "1M" {
		t.Errorf("machine1 cross-over = %q, want 1M", m1Cross)
	}
	if m4Cross != "4M" {
		t.Errorf("machine4 cross-over = %q, want 4M", m4Cross)
	}
}

// TestBenchConcurrent smoke-tests the concurrent-service benchmark: both
// phases must run, and the report must show the warm-start comparison.
func TestBenchConcurrent(t *testing.T) {
	cfg := tinyConfig()
	rep, err := BenchConcurrent(cfg, ConcurrentOptions{
		Workers: 2,
		Jobs:    8,
		Mix:     []int{6, 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cold", "warm", "off-best", "jobs/s"} {
		if !strings.Contains(rep.Body, want) {
			t.Errorf("report missing %q:\n%s", want, rep.Body)
		}
	}
	// Cold-only skips the warm phase.
	rep, err = BenchConcurrent(cfg, ConcurrentOptions{Workers: 2, Jobs: 4, Mix: []int{6}, ColdOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(rep.Body, "warm start:") {
		t.Error("cold-only report should not include the warm-start summary")
	}
	// Pipeline parallelism composes with the worker pool.
	rep, err = BenchConcurrent(cfg, ConcurrentOptions{
		Workers: 2, Jobs: 6, Mix: []int{1, 6}, PipelineParallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Body, "pipeline-parallel 4") {
		t.Errorf("report missing the pipeline-parallel setting:\n%s", rep.Body)
	}
}

// TestParallelSessionDeterministic: identical configurations must produce
// identical virtual-cycle totals across runs even with pipeline
// parallelism — per-fragment policy factories pin each partition's random
// streams, so goroutine scheduling cannot leak into the measurements.
func TestParallelSessionDeterministic(t *testing.T) {
	cfg := tinyConfig()
	cfg.PipelineParallelism = 4
	run := func() (float64, int) {
		s := cfg.TPCHSession(primitive.Everything(), nil)
		if _, err := tpch.Query(1).Run(cfg.DB(), s); err != nil {
			t.Fatal(err)
		}
		return s.Ctx.PrimCycles, len(s.AllInstances())
	}
	c1, n1 := run()
	c2, n2 := run()
	if c1 != c2 || n1 != n2 {
		t.Errorf("parallel runs differ: %v/%d vs %v/%d cycles/instances", c1, n1, c2, n2)
	}
	if n1 <= 20 {
		t.Errorf("instances = %d; expected fragment fan-out (plan did not parallelize)", n1)
	}
}

// TestPaperExperimentsPinSerial: paper-reproduction experiments introspect
// per-instance histories by serial plan label, so they must run serial even
// when the caller's config asks for pipeline parallelism (fig2 would panic
// in mustInstance otherwise).
func TestPaperExperimentsPinSerial(t *testing.T) {
	cfg := tinyConfig()
	cfg.PipelineParallelism = 4
	e, _ := ByID("fig2")
	if _, err := e.Run(cfg); err != nil {
		t.Fatalf("fig2 with PipelineParallelism=4: %v", err)
	}
}

// TestScalingExperimentRuns smoke-tests the scaling experiment: every
// (query, P) cell must appear, with the serial row carrying no speedup.
func TestScalingExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 3 queries x 3 parallelism degrees x 3 reps; skipped in -short mode")
	}
	rep, err := Scaling(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Q01", "Q06", "Q12", "off-best%", "cache-keys"} {
		if !strings.Contains(rep.Body, want) {
			t.Errorf("report missing %q:\n%s", want, rep.Body)
		}
	}
}

func TestDBCaching(t *testing.T) {
	cfg := tinyConfig()
	if cfg.DB() != cfg.DB() {
		t.Error("DB should be cached per configuration")
	}
	cfg2 := cfg
	cfg2.Seed = 99
	if cfg.DB() == cfg2.DB() {
		t.Error("different seeds should generate different databases")
	}
}

func TestFixedArmClamps(t *testing.T) {
	f := fixedArm(5)
	if f(2).Choose(core.ChooseContext{}) != 1 {
		t.Error("fixed policy should clamp to the last arm")
	}
	if f(8).Choose(core.ChooseContext{}) != 5 {
		t.Error("fixed policy should use the requested arm when available")
	}
}

// TestPolicyComparisonRuns smoke-tests the policycmp experiment: every
// warm-startable registry policy must survive both phases and appear in
// the report.
func TestPolicyComparisonRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("policycmp runs two service phases per policy; skipped in -short mode")
	}
	cfg := tinyConfig()
	rep, err := PolicyComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, def := range policy.Definitions() {
		if def.WarmStart && !strings.Contains(rep.Body, def.Name) {
			t.Errorf("report missing policy %s:\n%s", def.Name, rep.Body)
		}
	}
	if !strings.Contains(rep.Body, "off-best") {
		t.Error("report should explain the off-best metric")
	}
}

// TestSkewedContextualBeatsContextFree pins the acceptance criterion of the
// skewed-workload study: a contextual policy, seeing the per-batch
// selectivity, must hold its off-best rate at or below its context-free
// counterpart's on a workload whose best flavor flips with the phase.
func TestSkewedContextualBeatsContextFree(t *testing.T) {
	cfg := tinyConfig()
	best := skewedBestArms(cfg)
	total := func(xs []int) (s int) {
		for _, x := range xs {
			s += x
		}
		return s
	}
	for _, pair := range [][2]string{{"eps-greedy", "ctx-greedy"}, {"vw-greedy", "ctx-vw-greedy"}} {
		rate := make(map[string]float64, 2)
		for _, spec := range pair {
			off, calls, err := runSkewed(cfg, spec, best, 12, 256)
			if err != nil {
				t.Fatalf("%s: %v", spec, err)
			}
			rate[spec] = float64(total(off)) / float64(total(calls))
		}
		if rate[pair[1]] > rate[pair[0]] {
			t.Errorf("%s off-best %.3f > %s off-best %.3f; context should not hurt",
				pair[1], rate[pair[1]], pair[0], rate[pair[0]])
		}
	}
}

// TestStorageComparisonRuns smoke-tests the compressed-storage experiment:
// every query must report both storage forms with identical results, the
// resident-bytes line must show a reduction, and at least one instance must
// learn an operate-on-compressed selection flavor.
func TestStorageComparisonRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 6 queries x 2 storage forms x 3 reps; skipped in -short mode")
	}
	rep, err := StorageComparison(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"resident bytes", "Q01", "Q06", "Q17", "oncompressed", "lineitem"} {
		if !strings.Contains(rep.Body, want) {
			t.Errorf("report missing %q:\n%s", want, rep.Body)
		}
	}
	if strings.Contains(rep.Body, "NO") {
		t.Errorf("encoded results diverged from flat:\n%s", rep.Body)
	}
	if strings.Contains(rep.Body, "\n0 instances learned an operate-on-compressed") {
		t.Errorf("no operate-on-compressed winner was learned:\n%s", rep.Body)
	}
}

// TestBenchConcurrentEncoded: the concurrent service composes with
// compressed-resident storage end to end.
func TestBenchConcurrentEncoded(t *testing.T) {
	cfg := tinyConfig()
	rep, err := BenchConcurrent(cfg, ConcurrentOptions{
		Workers: 2, Jobs: 6, Mix: []int{6}, Encoded: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Body, "encoded storage") {
		t.Errorf("report missing encoded-storage annotation:\n%s", rep.Body)
	}
}
