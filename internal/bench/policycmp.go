package bench

import (
	"fmt"
	"strings"

	"microadapt/internal/policy"
	"microadapt/internal/primitive"
	"microadapt/internal/service"
	"microadapt/internal/stats"
)

// PolicyComparison runs every warm-startable policy in the registry over
// the same concurrent TPC-H mix twice — cold sessions against an empty
// knowledge cache, then sessions warm-started from a priming pass — and
// reports the off-best-call rate (the exploration tax) of each phase. It
// is the experiment the policy-agnostic warm-start API exists for: the
// cache speaks to policies only through the Snapshotter/WarmStarter
// capabilities, so one table covers vw-greedy, the ε-strategies, ucb1 and
// thompson without a line of policy-specific harness code.
func PolicyComparison(cfg Config) (*Report, error) {
	db := cfg.DB()
	mix := []int{1, 6, 12}
	const jobs = 18

	base := service.Config{
		Workers:    2,
		Flavors:    primitive.Everything(),
		Machine:    cfg.Machine.ScaledCaches(cfg.cacheScale()),
		VectorSize: cfg.VectorSize,
		VW:         cfg.VW,
		Seed:       cfg.Seed,
	}
	load := service.LoadConfig{Mix: mix, Jobs: jobs}

	rows := [][]string{{"policy", "cold off-best/job", "cold off-best%", "warm off-best/job", "warm off-best%", "cold/warm"}}
	for _, def := range policy.Definitions() {
		if !def.WarmStart {
			continue
		}
		pcfg := base
		pcfg.Policy = def.Name

		coldCfg := pcfg
		coldCfg.WarmStart = false
		cold, err := service.New(db, coldCfg).RunLoad(load)
		if err != nil {
			return nil, fmt.Errorf("policycmp %s cold: %w", def.Name, err)
		}

		warmCfg := pcfg
		warmCfg.WarmStart = true
		svc := service.New(db, warmCfg)
		// Priming pass: one run of each mix query fills the cache the way
		// earlier traffic would; excluded from the measured warm phase.
		if _, err := svc.RunLoad(service.LoadConfig{Mix: mix, Jobs: len(mix)}); err != nil {
			return nil, fmt.Errorf("policycmp %s prime: %w", def.Name, err)
		}
		warm, err := svc.RunLoad(load)
		if err != nil {
			return nil, fmt.Errorf("policycmp %s warm: %w", def.Name, err)
		}

		ratio := "inf"
		if warm.OffBestPerJob() > 0 {
			ratio = fmt.Sprintf("%.1fx", cold.OffBestPerJob()/warm.OffBestPerJob())
		} else if cold.OffBestPerJob() == 0 {
			ratio = "-"
		}
		rows = append(rows, []string{
			def.Name,
			fmt.Sprintf("%.1f", cold.OffBestPerJob()),
			fmt.Sprintf("%.1f", 100*cold.OffBestFraction()),
			fmt.Sprintf("%.1f", warm.OffBestPerJob()),
			fmt.Sprintf("%.1f", 100*warm.OffBestFraction()),
			ratio,
		})
	}

	var b strings.Builder
	mixNames := make([]string, len(mix))
	for i, q := range mix {
		mixNames[i] = fmt.Sprintf("Q%02d", q)
	}
	fmt.Fprintf(&b, "mix %s, %d jobs per phase, machine %s; off-best = adaptive calls spent on a\n"+
		"flavor other than the one the session found best (the exploration tax)\n\n",
		strings.Join(mixNames, ","), jobs, cfg.Machine.Name)
	b.WriteString(stats.FormatTable(rows))
	b.WriteString("\nwarm start flows through the Snapshotter/WarmStarter capabilities, so every\n" +
		"row uses the same cache and harness; only the learning algorithm differs.\n")

	return &Report{
		ID:    "policycmp",
		Title: "Policy comparison: cold vs. warm-started exploration tax per registered policy",
		Body:  b.String(),
	}, nil
}
