package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"microadapt/internal/core"
	"microadapt/internal/policy"
	"microadapt/internal/primitive"
	"microadapt/internal/service"
	"microadapt/internal/stats"
	"microadapt/internal/vector"
)

// PolicyComparison runs every warm-startable policy in the registry over
// the same concurrent TPC-H mix twice — cold sessions against an empty
// knowledge cache, then sessions warm-started from a priming pass — and
// reports the off-best-call rate (the exploration tax) of each phase. It
// is the experiment the policy-agnostic warm-start API exists for: the
// cache speaks to policies only through the Snapshotter/WarmStarter
// capabilities, so one table covers vw-greedy, the ε-strategies, ucb1 and
// thompson without a line of policy-specific harness code.
func PolicyComparison(cfg Config) (*Report, error) {
	db := cfg.DB()
	mix := []int{1, 6, 12}
	const jobs = 18

	base := service.Config{
		Workers:    2,
		Flavors:    primitive.Everything(),
		Machine:    cfg.Machine.ScaledCaches(cfg.cacheScale()),
		VectorSize: cfg.VectorSize,
		VW:         cfg.VW,
		Seed:       cfg.Seed,
	}
	load := service.LoadConfig{Mix: mix, Jobs: jobs}

	rows := [][]string{{"policy", "cold off-best/job", "cold off-best%", "warm off-best/job", "warm off-best%", "cold/warm"}}
	for _, def := range policy.Definitions() {
		if !def.WarmStart {
			continue
		}
		pcfg := base
		pcfg.Policy = def.Name

		coldCfg := pcfg
		coldCfg.WarmStart = false
		cold, err := service.New(db, coldCfg).RunLoad(load)
		if err != nil {
			return nil, fmt.Errorf("policycmp %s cold: %w", def.Name, err)
		}

		warmCfg := pcfg
		warmCfg.WarmStart = true
		svc := service.New(db, warmCfg)
		// Priming pass: one run of each mix query fills the cache the way
		// earlier traffic would; excluded from the measured warm phase.
		if _, err := svc.RunLoad(service.LoadConfig{Mix: mix, Jobs: len(mix)}); err != nil {
			return nil, fmt.Errorf("policycmp %s prime: %w", def.Name, err)
		}
		warm, err := svc.RunLoad(load)
		if err != nil {
			return nil, fmt.Errorf("policycmp %s warm: %w", def.Name, err)
		}

		ratio := "inf"
		if warm.OffBestPerJob() > 0 {
			ratio = fmt.Sprintf("%.1fx", cold.OffBestPerJob()/warm.OffBestPerJob())
		} else if cold.OffBestPerJob() == 0 {
			ratio = "-"
		}
		rows = append(rows, []string{
			def.Name,
			fmt.Sprintf("%.1f", cold.OffBestPerJob()),
			fmt.Sprintf("%.1f", 100*cold.OffBestFraction()),
			fmt.Sprintf("%.1f", warm.OffBestPerJob()),
			fmt.Sprintf("%.1f", 100*warm.OffBestFraction()),
			ratio,
		})
	}

	var b strings.Builder
	mixNames := make([]string, len(mix))
	for i, q := range mix {
		mixNames[i] = fmt.Sprintf("Q%02d", q)
	}
	fmt.Fprintf(&b, "mix %s, %d jobs per phase, machine %s; off-best = adaptive calls spent on a\n"+
		"flavor other than the one the session found best (the exploration tax)\n\n",
		strings.Join(mixNames, ","), jobs, cfg.Machine.Name)
	b.WriteString(stats.FormatTable(rows))
	b.WriteString("\nwarm start flows through the Snapshotter/WarmStarter capabilities, so every\n" +
		"row uses the same cache and harness; only the learning algorithm differs.\n")

	skew, err := skewedComparison(cfg)
	if err != nil {
		return nil, err
	}
	b.WriteString(skew)

	return &Report{
		ID:    "policycmp",
		Title: "Policy comparison: cold vs. warm-started exploration tax per registered policy",
		Body:  b.String(),
	}, nil
}

// skewPhase is one recurring regime of the skewed workload.
type skewPhase struct {
	name   string
	selPct int // selection threshold over uniform [0, 100) values
}

// skewedPhases alternates a highly selective regime (branching wins — the
// branch is almost never taken) with a 50% one (no-branching wins — peak
// misprediction, Figure 1's hump). A context-free bandit sees one cost
// mixture and can at best settle on a compromise arm; a contextual policy
// sees the per-batch selectivity in Features, buckets the two regimes
// apart, and runs the right flavor in each.
var skewedPhases = []skewPhase{{"sel=2%", 2}, {"sel=50%", 50}}

// skewedComparison judges each contextual policy against its context-free
// counterpart on the phase-alternating workload, reporting the off-best
// call rate per phase: calls that used a flavor other than the phase's
// measured-best one.
func skewedComparison(cfg Config) (string, error) {
	const blocks, blockCalls = 12, 256
	best := skewedBestArms(cfg)

	pairs := [][2]string{{"eps-greedy", "ctx-greedy"}, {"vw-greedy", "ctx-vw-greedy"}}
	rows := [][]string{{"policy", "off-best% " + skewedPhases[0].name, "off-best% " + skewedPhases[1].name, "off-best% overall"}}
	for _, pair := range pairs {
		for _, spec := range pair {
			off, calls, err := runSkewed(cfg, spec, best, blocks, blockCalls)
			if err != nil {
				return "", fmt.Errorf("policycmp skew %s: %w", spec, err)
			}
			totalOff, totalCalls := 0, 0
			row := []string{spec}
			for pi := range skewedPhases {
				row = append(row, fmt.Sprintf("%.1f", 100*float64(off[pi])/float64(calls[pi])))
				totalOff += off[pi]
				totalCalls += calls[pi]
			}
			row = append(row, fmt.Sprintf("%.1f", 100*float64(totalOff)/float64(totalCalls)))
			rows = append(rows, row)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "\nskewed workload: one branching/no-branching selection instance, %d blocks of\n"+
		"%d calls alternating %s and %s; Features carry the per-batch selectivity\n\n",
		blocks, blockCalls, skewedPhases[0].name, skewedPhases[1].name)
	b.WriteString(stats.FormatTable(rows))
	b.WriteString("\na contextual (ctx-) policy buckets the phases apart and should hold its\n" +
		"off-best rate at or below its context-free counterpart's.\n")
	return b.String(), nil
}

// skewedBestArms measures the ground-truth best arm per phase by running
// every flavor directly (no policy in the loop) on phase-typical data.
func skewedBestArms(cfg Config) []int {
	pin := cfg.Session(primitive.BranchSet(), fixedArm(0))
	best := make([]int, len(skewedPhases))
	for pi, ph := range skewedPhases {
		bestCost := 0.0
		for arm := 0; arm < 2; arm++ {
			c := selPrimBench(cfg, pin, arm, fmt.Sprintf("skew/pin%d/a%d", ph.selPct, arm), ph.selPct, 400)
			if arm == 0 || c < bestCost {
				best[pi], bestCost = arm, c
			}
		}
	}
	return best
}

// runSkewed drives the policy through the skewed workload and counts, per
// phase, the calls that used an arm other than the phase's best.
func runSkewed(cfg Config, spec string, best []int, blocks, blockCalls int) (off, calls []int, err error) {
	factory, err := policy.NewFactory(spec, cfg.PolicyEnv())
	if err != nil {
		return nil, nil, err
	}
	s := cfg.Session(primitive.BranchSet(), factory)
	inst := s.Instance(primitive.SelSig("<", vector.I32, false), "skew/"+spec)
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.VectorSize
	col := make([]int32, n)
	out := make([]int32, n)
	off = make([]int, len(skewedPhases))
	calls = make([]int, len(skewedPhases))
	for blk := 0; blk < blocks; blk++ {
		pi := blk % len(skewedPhases)
		ph := skewedPhases[pi]
		threshold := vector.ConstI32(int32(ph.selPct))
		for j := 0; j < blockCalls; j++ {
			for i := range col {
				col[i] = int32(rng.Intn(100))
			}
			c := &core.Call{
				N: n, In: []*vector.Vector{vector.FromI32(col), threshold}, SelOut: out,
				Feat: core.Features{Valid: true, Selectivity: float64(ph.selPct) / 100},
			}
			inst.Run(s.Ctx, c)
			calls[pi]++
			if inst.LastArm != best[pi] {
				off[pi]++
			}
		}
	}
	return off, calls, nil
}
