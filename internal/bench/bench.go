// Package bench regenerates every table and figure of the paper's
// evaluation: micro-benchmarks (Figures 1, 5, 6, 8, Table 4), the
// vw-greedy demonstration (Figure 10), trace simulation (Table 5), the
// per-flavor-set TPC-H studies (Tables 6-10, Figures 2, 4, 11) and the
// end-to-end comparison against heuristics (Table 11).
package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"microadapt/internal/core"
	"microadapt/internal/hw"
	"microadapt/internal/policy"
	"microadapt/internal/primitive"
	"microadapt/internal/stats"
	"microadapt/internal/tpch"
)

// Config parameterizes an experiment run. The defaults trade the paper's
// SF-100 for a laptop-scale workload with proportionally scaled vector
// size and vw-greedy parameters (see DESIGN.md §4).
type Config struct {
	SF         float64
	Seed       int64
	VectorSize int
	Machine    *hw.Machine
	// Policy is the default flavor-selection policy spec (registry syntax,
	// e.g. "ucb1:c=2"); empty means "vw-greedy" with the VW parameters.
	Policy string
	// VW are the base vw-greedy parameters (spec parameters override).
	VW core.VWParams
	// PipelineParallelism is the intra-query fan-out of partitionable
	// plans (0/1 = serial), applied to every session the config builds.
	PipelineParallelism int
	// ChartWidth/Height controls ASCII figure rendering.
	ChartWidth, ChartHeight int
}

// DefaultConfig returns the standard experiment configuration.
func DefaultConfig() Config {
	return Config{
		SF:         0.05,
		Seed:       42,
		VectorSize: 128,
		Machine:    hw.Machine1(),
		VW:         core.VWParams{ExplorePeriod: 512, ExploitPeriod: 8, ExploreLength: 1, WarmupSkip: 2, InitialSweep: true},
		ChartWidth: 72, ChartHeight: 14,
	}
}

// cacheScale is the factor applied to cache capacities for TPC-H runs so
// working-set-to-cache ratios match the paper's SF-100 regime (DESIGN §4).
func (cfg Config) cacheScale() float64 {
	s := cfg.SF / 2
	if s > 1 {
		s = 1
	}
	return s
}

// TPCHSession is Session with the machine's caches scaled for the TPC-H
// data volume; all whole-workload experiments use it.
func (cfg Config) TPCHSession(o primitive.Options, chooser core.ChooserFactory) *core.Session {
	scaled := cfg
	scaled.Machine = cfg.Machine.ScaledCaches(cfg.cacheScale())
	return scaled.Session(o, chooser)
}

// Report is the rendered output of one experiment.
type Report struct {
	ID    string
	Title string
	Body  string
}

func (r *Report) String() string {
	line := strings.Repeat("=", len(r.Title))
	return fmt.Sprintf("%s\n%s\n%s\n", r.Title, line, r.Body)
}

// dbCache memoizes generated databases per (sf, seed); the mutex makes it
// safe for concurrent experiment runs (generation may happen twice under a
// race, but both results are identical — Generate is deterministic).
var (
	dbCacheMu sync.Mutex
	dbCache   = map[[2]int64]*tpch.DB{}
)

// DB returns the (cached) database for the configuration.
func (cfg Config) DB() *tpch.DB {
	key := [2]int64{int64(cfg.SF * 1e6), cfg.Seed}
	dbCacheMu.Lock()
	db, ok := dbCache[key]
	dbCacheMu.Unlock()
	if ok {
		return db
	}
	db = tpch.Generate(cfg.SF, cfg.Seed)
	dbCacheMu.Lock()
	dbCache[key] = db
	dbCacheMu.Unlock()
	return db
}

// EncodedDB generates a fresh database and makes it resident in compressed
// columnar form. Encoded experiments must use this, never cfg.DB().Encode():
// the cached DB is shared across every experiment in the process, and
// encoding it in place would silently flip all later flat runs to encoded
// scans.
func (cfg Config) EncodedDB() *tpch.DB {
	return tpch.Generate(cfg.SF, cfg.Seed).Encode()
}

// PolicyEnv is the registry environment of this configuration.
func (cfg Config) PolicyEnv() policy.Env {
	return policy.Env{Machine: cfg.Machine, VW: cfg.VW, Seed: cfg.Seed}
}

// Session builds a session over a fresh dictionary with the given flavor
// options and chooser (nil = cfg.Policy via the registry, defaulting to
// vw-greedy with cfg.VW). An invalid cfg.Policy spec panics: experiment
// configurations are wired by code, and the CLI validates specs up front.
func (cfg Config) Session(o primitive.Options, chooser core.ChooserFactory) *core.Session {
	dict := primitive.NewDictionary(o)
	opts := []core.SessionOption{core.WithVectorSize(cfg.VectorSize), core.WithSeed(cfg.Seed)}
	if cfg.PipelineParallelism > 1 {
		opts = append(opts, core.WithParallelism(cfg.PipelineParallelism))
		if chooser == nil {
			// Registry-built policies get a fresh factory per fragment
			// session with a partition-derived seed: one shared factory
			// would hand out its per-chooser random streams in instance-
			// creation arrival order across concurrently opening fragments,
			// making cycle traces vary run to run (results never differ —
			// flavors are equivalent — but experiments must be
			// reproducible).
			opts = append(opts, core.WithFragmentSpawner(func(part int) *core.Session {
				env := cfg.PolicyEnv()
				env.Seed = cfg.Seed + core.FragmentSeedStride*int64(part+1)
				return core.NewSession(dict, cfg.Machine,
					core.WithVectorSize(cfg.VectorSize),
					core.WithSeed(env.Seed),
					core.WithChooser(policy.MustFactory(cfg.policySpec(), env)))
			}))
		}
	}
	if chooser == nil {
		chooser = policy.MustFactory(cfg.policySpec(), cfg.PolicyEnv())
	} else {
		// An explicitly supplied factory pins (or traces) primitive
		// flavors; operator-level decisions stay on their default arms so
		// every pinned run executes the same physical plan shape — a
		// Table 6-10 study compares flavors, not join strategies.
		pin := chooser
		opts = append(opts, core.WithInstanceChooser(func(sig, label string, arms []string) core.Chooser {
			if core.IsDecisionSig(sig) {
				return core.NewFixed(0)
			}
			return pin(len(arms))
		}))
	}
	opts = append(opts, core.WithChooser(chooser))
	return core.NewSession(dict, cfg.Machine, opts...)
}

// policySpec is cfg.Policy with the vw-greedy default applied.
func (cfg Config) policySpec() string {
	if cfg.Policy == "" {
		return "vw-greedy"
	}
	return cfg.Policy
}

// fixedArm resolves the registry's "fixed:arm=N" spec: every instance
// pinned to min(arm, flavors-1).
func fixedArm(arm int) core.ChooserFactory {
	return policy.MustFactory(fmt.Sprintf("fixed:arm=%d", arm), policy.Env{})
}

// RunTPCH executes all 22 queries in one session.
func RunTPCH(db *tpch.DB, s *core.Session) error {
	for _, q := range tpch.Queries() {
		if _, err := q.Run(db, s); err != nil {
			return fmt.Errorf("%s: %v", q.Name, err)
		}
	}
	return nil
}

// affectedCycles sums the cycles of instances with more than one flavor
// (the primitives the active flavor set actually targets) and the total
// primitive cycles of the session, fragment sessions included.
func affectedCycles(s *core.Session) (affected, total float64) {
	for _, inst := range s.AllInstances() {
		total += inst.Cycles
		if len(inst.Prim.Flavors) > 1 {
			affected += inst.Cycles
		}
	}
	return affected, total
}

// chartAPH renders overlaid APH cycles/tuple series.
func (cfg Config) chartAPH(title string, series []stats.Series) string {
	return stats.ASCIIChart(title, series, cfg.ChartWidth, cfg.ChartHeight)
}

// instancesByLabel collects one labelled instance from several sessions,
// erroring out loudly if absent (an experiment wiring bug).
func mustInstance(s *core.Session, label string) *core.Instance {
	if inst := s.InstanceByLabel(label); inst != nil {
		return inst
	}
	var near []string
	for _, inst := range s.Instances() {
		if strings.Contains(inst.Label, label[:min(len(label), 6)]) {
			near = append(near, inst.Label)
		}
	}
	sort.Strings(near)
	panic(fmt.Sprintf("bench: no instance %q; near matches: %v", label, near))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fmtFactor(base, other float64) string {
	if other == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", base/other)
}

func fmtBillions(c float64) string {
	switch {
	case c >= 1e9:
		return fmt.Sprintf("%.1f bn.", c/1e9)
	case c >= 1e6:
		return fmt.Sprintf("%.1f mn.", c/1e6)
	default:
		return fmt.Sprintf("%.0f", c)
	}
}
