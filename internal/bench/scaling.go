package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"microadapt/internal/primitive"
	"microadapt/internal/service"
	"microadapt/internal/stats"
)

// scalingQueries are the scan-heavy plans with a partitionable pipeline
// prefix; Q1 and Q6 are the paper's canonical selection/projection-dominated
// queries, Q12 adds an order-sensitive merge join above the exchange.
var scalingQueries = []int{1, 6, 12}

// scalingDegrees are the pipeline-parallelism settings compared.
var scalingDegrees = []int{1, 2, 4}

// Scaling measures morsel-driven intra-query parallelism: each query runs
// repeatedly through the concurrent service with PipelineParallelism P,
// one query at a time (Workers=1) so the only concurrency is the intra-query
// fan-out. Reported per (query, P): mean wall time, speedup over the serial
// plan, and the off-best fraction — the share of adaptive calls spent on a
// non-best flavor, which shows how P independent per-partition bandits on
// the same instance keys learn compared to the serial plan's single bandit.
func Scaling(cfg Config) (*Report, error) {
	db := cfg.DB()
	const reps = 3
	rows := [][]string{{"query", "P", "wall(mean)", "speedup", "off-best%", "instances", "cache-keys"}}
	var b strings.Builder
	for _, q := range scalingQueries {
		var serialWall time.Duration
		for _, p := range scalingDegrees {
			svc := service.New(db, service.Config{
				Workers:             1,
				Flavors:             primitive.Everything(),
				Machine:             cfg.Machine.ScaledCaches(cfg.cacheScale()),
				VectorSize:          cfg.VectorSize,
				Policy:              cfg.Policy,
				VW:                  cfg.VW,
				WarmStart:           true,
				PipelineParallelism: p,
				Seed:                cfg.Seed,
			})
			var wall time.Duration
			var adaptive, offBest int64
			insts := 0
			for r := 0; r < reps; r++ {
				_, st, err := svc.Execute(q)
				if err != nil {
					return nil, fmt.Errorf("scaling Q%02d P=%d: %w", q, p, err)
				}
				wall += st.Latency
				adaptive += st.AdaptiveCalls
				offBest += st.OffBestCalls
				insts = st.Instances
			}
			mean := wall / reps
			if p == 1 {
				serialWall = mean
			}
			speedup := "-"
			if p > 1 && mean > 0 {
				speedup = fmt.Sprintf("%.2fx", float64(serialWall)/float64(mean))
			}
			offPct := 0.0
			if adaptive > 0 {
				offPct = 100 * float64(offBest) / float64(adaptive)
			}
			rows = append(rows, []string{
				fmt.Sprintf("Q%02d", q),
				fmt.Sprintf("%d", p),
				mean.Round(time.Microsecond).String(),
				speedup,
				fmt.Sprintf("%.1f", offPct),
				fmt.Sprintf("%d", insts),
				fmt.Sprintf("%d", svc.Cache().Len()),
			})
		}
	}
	b.WriteString(stats.FormatTable(rows))
	fmt.Fprintf(&b, "\n%d reps per cell, workers=1 (intra-query parallelism only), GOMAXPROCS=%d; instance counts grow\nwith P while cache keys stay partition-free: all P partition bandits merge under the serial plan's\nkeys. Wall-time speedup needs real cores; on a single-core host only the off-best column moves.\n", reps, runtime.GOMAXPROCS(0))
	return &Report{
		ID:    "scaling",
		Title: "Pipeline scaling: wall time and off-best fraction vs. parallelism",
		Body:  b.String(),
	}, nil
}
