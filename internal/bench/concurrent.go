package bench

import (
	"fmt"
	"strings"
	"time"

	"microadapt/internal/primitive"
	"microadapt/internal/service"
	"microadapt/internal/stats"
)

// ConcurrentOptions parameterizes the bench-concurrent run: a worker pool
// hammering one shared database with a query mix, first with cold sessions
// (every query pays the full vw-greedy exploration tax) and then with
// warm-started sessions seeded from the shared flavor-knowledge cache.
type ConcurrentOptions struct {
	Workers  int
	Jobs     int           // total queries per phase (0 = use Duration)
	Duration time.Duration // per-phase wall cap when Jobs == 0
	Mix      []int         // TPC-H query numbers, cycled round-robin
	Flavors  primitive.Options
	Policy   string // registry policy spec ("" = vw-greedy)
	ColdOnly bool   // skip the warm phase (pure throughput measurement)
	// PipelineParallelism fans each query's partitionable pipeline into P
	// morsel streams (0/1 = serial), on top of the worker-pool concurrency.
	PipelineParallelism int
	// Encoded runs the load over a compressed-resident database: scans go
	// through the adaptive decompression flavors, results stay identical.
	Encoded bool
}

// DefaultConcurrentOptions returns a quick but representative run.
func DefaultConcurrentOptions() ConcurrentOptions {
	return ConcurrentOptions{
		Workers: 4,
		Jobs:    64,
		Mix:     []int{1, 6, 12},
		Flavors: primitive.Everything(),
	}
}

// BenchConcurrent runs the concurrent query service under the configured
// load and reports throughput, the latency distribution, and — unless
// ColdOnly — how much of the exploration tax the cross-session warm start
// removes. The database and virtual machine come from cfg, with caches
// scaled exactly like every other whole-workload experiment.
func BenchConcurrent(cfg Config, o ConcurrentOptions) (*Report, error) {
	if len(o.Mix) == 0 {
		o.Mix = DefaultConcurrentOptions().Mix
	}
	if o.Workers < 1 {
		o.Workers = DefaultConcurrentOptions().Workers
	}
	if len(o.Flavors.Compilers) == 0 {
		o.Flavors = primitive.Everything()
	}

	db := cfg.DB()
	if o.Encoded {
		db = cfg.EncodedDB()
	}
	base := service.Config{
		Workers:             o.Workers,
		Flavors:             o.Flavors,
		Machine:             cfg.Machine.ScaledCaches(cfg.cacheScale()),
		VectorSize:          cfg.VectorSize,
		Policy:              o.Policy,
		VW:                  cfg.VW,
		PipelineParallelism: o.PipelineParallelism,
		Seed:                cfg.Seed,
	}
	load := service.LoadConfig{Mix: o.Mix, Jobs: o.Jobs, Duration: o.Duration}

	coldCfg := base
	coldCfg.WarmStart = false
	coldSvc := service.New(db, coldCfg)
	cold, err := coldSvc.RunLoad(load)
	if err != nil {
		return nil, fmt.Errorf("cold phase: %w", err)
	}

	var b strings.Builder
	mixNames := make([]string, len(o.Mix))
	for i, q := range o.Mix {
		mixNames[i] = fmt.Sprintf("Q%02d", q)
	}
	pol := o.Policy
	if pol == "" {
		pol = "vw-greedy"
	}
	pp := ""
	if o.PipelineParallelism > 1 {
		pp = fmt.Sprintf(", pipeline-parallel %d", o.PipelineParallelism)
	}
	if o.Encoded {
		flat, resident := db.StorageFootprint()
		pp += fmt.Sprintf(", encoded storage (%d -> %d resident bytes)", flat, resident)
	}
	fmt.Fprintf(&b, "mix %s, %d workers, %d jobs/phase, machine %s, policy %s%s\n\n",
		strings.Join(mixNames, ","), o.Workers, cold.Jobs, cfg.Machine.Name, pol, pp)

	rows := [][]string{{"phase", "jobs", "wall", "jobs/s", "p50", "p95", "p99", "max", "off-best/job", "off-best%"}}
	rows = append(rows, metricsRow("cold", cold))

	warm := cold
	if !o.ColdOnly {
		warmCfg := base
		warmCfg.WarmStart = true
		warmSvc := service.New(db, warmCfg)
		// Priming pass: one execution of each mix query populates the
		// shared cache, the way earlier traffic would in a long-running
		// service. It is reported separately and excluded from the
		// steady-state warm numbers.
		prime, err := warmSvc.RunLoad(service.LoadConfig{Mix: o.Mix, Jobs: len(o.Mix)})
		if err != nil {
			return nil, fmt.Errorf("priming pass: %w", err)
		}
		warm, err = warmSvc.RunLoad(load)
		if err != nil {
			return nil, fmt.Errorf("warm phase: %w", err)
		}
		rows = append(rows, metricsRow("prime", prime))
		rows = append(rows, metricsRow("warm", warm))
	}
	b.WriteString(stats.FormatTable(rows))

	if !o.ColdOnly {
		fmt.Fprintf(&b, "\nwarm start: off-best calls/job %.1f -> %.1f (%.1fx fewer); %d/%d instances seeded from cache\n",
			cold.OffBestPerJob(), warm.OffBestPerJob(),
			safeRatio(cold.OffBestPerJob(), warm.OffBestPerJob()),
			warm.SeededInstances, warm.SeededInstances+warm.ColdInstances)
	}

	return &Report{
		ID:    "bench-concurrent",
		Title: "Concurrent adaptive query service (cross-session flavor warm-start)",
		Body:  b.String(),
	}, nil
}

func metricsRow(phase string, m service.Metrics) []string {
	return []string{
		phase,
		fmt.Sprintf("%d", m.Jobs),
		m.Wall.Round(time.Millisecond).String(),
		fmt.Sprintf("%.1f", m.JobsPerSec),
		m.P50.Round(time.Microsecond).String(),
		m.P95.Round(time.Microsecond).String(),
		m.P99.Round(time.Microsecond).String(),
		m.MaxLatency.Round(time.Microsecond).String(),
		fmt.Sprintf("%.1f", m.OffBestPerJob()),
		fmt.Sprintf("%.1f", 100*m.OffBestFraction()),
	}
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
