package bench

import (
	"fmt"
	"math/rand"

	"microadapt/internal/aph"
	"microadapt/internal/bloom"
	"microadapt/internal/core"
	"microadapt/internal/engine"
	"microadapt/internal/hw"
	"microadapt/internal/primitive"
	"microadapt/internal/stats"
	"microadapt/internal/vector"
)

// Table1 reproduces the stage breakdown of Table 1: almost all time of
// "SELECT l_orderkey FROM lineitem WHERE l_quantity < 40" is spent in the
// execute stage, and within it, in primitives.
func Table1(cfg Config) (*Report, error) {
	// The stage shares depend on data volume (preprocessing is constant,
	// execution scales), so this experiment uses 10x the configured SF.
	t1cfg := cfg
	t1cfg.SF = cfg.SF * 10
	db := t1cfg.DB()
	s := t1cfg.Session(primitive.Defaults(), nil)
	// Preprocess: parse + plan build, modelled as a fixed cost.
	s.Ctx.PreCycles = 25_000
	scan := engine.NewScan(s, db.Lineitem, "l_orderkey", "l_quantity")
	sel := engine.NewSelect(s, scan, "T1", engine.CmpVal(1, "<", 40))
	out, err := engine.Materialize(sel)
	if err != nil {
		return nil, err
	}
	s.Ctx.PostCycles = 0.3 * float64(out.Rows())

	total := s.Ctx.TotalCycles()
	rows := [][]string{
		{"stage", "cycles", "% of total"},
		{"preprocess", fmt.Sprintf("%.0f", s.Ctx.PreCycles), fmt.Sprintf("%.2f%%", 100*s.Ctx.PreCycles/total)},
		{"execute", fmt.Sprintf("%.0f", s.Ctx.ExecuteCycles()), fmt.Sprintf("%.2f%%", 100*s.Ctx.ExecuteCycles()/total)},
		{"  primitives", fmt.Sprintf("%.0f", s.Ctx.PrimCycles), fmt.Sprintf("%.2f%%", 100*s.Ctx.PrimCycles/total)},
		{"postprocess", fmt.Sprintf("%.0f", s.Ctx.PostCycles), fmt.Sprintf("%.2f%%", 100*s.Ctx.PostCycles/total)},
	}
	body := stats.FormatTable(rows)
	body += fmt.Sprintf("\nprimitives account for %.1f%% of the execute stage "+
		"(paper: 92.2%% of total at SF-100; shares of pre/post shrink with scale)\n",
		100*s.Ctx.PrimCycles/s.Ctx.ExecuteCycles())
	body += fmt.Sprintf("qualifying tuples: %d of %d\n", out.Rows(), db.Lineitem.Rows())
	return &Report{ID: "table1", Title: "Table 1: time spent in execution stages", Body: body}, nil
}

// selPrimBench runs one selection flavor over synthetic data at a target
// selectivity, returning cycles/tuple.
func selPrimBench(cfg Config, s *core.Session, arm int, label string, selPct int, calls int) float64 {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(selPct)))
	inst := s.Instance(primitive.SelSig("<", vector.I32, false), label)
	n := cfg.VectorSize
	col := make([]int32, n)
	out := make([]int32, n)
	threshold := vector.ConstI32(int32(selPct))
	var cycles float64
	var tuples int64
	fl := inst.Prim.Flavors[arm]
	for call := 0; call < calls; call++ {
		for i := range col {
			col[i] = int32(rng.Intn(100))
		}
		c := &core.Call{N: n, In: []*vector.Vector{vector.FromI32(col), threshold}, SelOut: out, Inst: inst}
		_, cyc := fl.Fn(s.Ctx, c)
		cycles += cyc
		tuples += int64(n)
	}
	return cycles / float64(tuples)
}

// Fig1 reproduces Figure 1: branching vs no-branching selection cost as a
// function of selectivity, with the misprediction hump at 50%.
func Fig1(cfg Config) (*Report, error) {
	s := cfg.Session(primitive.BranchSet(), fixedArm(0))
	var xs []string
	var branch, nobranch []float64
	for sel := 0; sel <= 100; sel += 5 {
		b := selPrimBench(cfg, s, 0, fmt.Sprintf("fig1/b%d", sel), sel, 400)
		nb := selPrimBench(cfg, s, 1, fmt.Sprintf("fig1/n%d", sel), sel, 400)
		branch = append(branch, b)
		nobranch = append(nobranch, nb)
		xs = append(xs, fmt.Sprintf("%d", sel))
	}
	body := cfg.chartAPH("cycles/tuple vs selectivity (0..100%)", []stats.Series{
		{Name: "branching", Values: branch},
		{Name: "no-branching", Values: nobranch},
	})
	rows := [][]string{{"selectivity%", "branching", "no-branching"}}
	for i := range xs {
		rows = append(rows, []string{xs[i], fmt.Sprintf("%.2f", branch[i]), fmt.Sprintf("%.2f", nobranch[i])})
	}
	body += stats.FormatTable(rows)
	lo, hi := crossovers(branch, nobranch)
	body += fmt.Sprintf("\ncross-over points: ~%d%% and ~%d%% selectivity "+
		"(paper: branching wins at the extremes, no-branching in between)\n", lo*5, hi*5)
	return &Report{ID: "fig1", Title: "Figure 1: (No-)Branching primitive cost vs. selectivity", Body: body}, nil
}

// crossovers returns the first and last index where a rises above b.
func crossovers(a, b []float64) (int, int) {
	first, last := -1, -1
	for i := range a {
		if a[i] > b[i] {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	return first, last
}

// Fig5 reproduces Figure 5: the best compiler for the merge-join kernel
// depends on the machine.
func Fig5(cfg Config) (*Report, error) {
	machines := []*hw.Machine{hw.Machine1(), hw.Machine3(), hw.Machine4()}
	compilers := []string{"gcc", "icc", "clang"}
	rows := [][]string{{"machine", "gcc", "icc", "clang", "best"}}
	for _, m := range machines {
		mcfg := cfg
		mcfg.Machine = m
		s := mcfg.Session(primitive.CompilerSet(), fixedArm(0))
		var cyc []float64
		for arm := range compilers {
			cyc = append(cyc, mergejoinBench(mcfg, s, arm, fmt.Sprintf("fig5/%s/%d", m.Name, arm)))
		}
		best := compilers[argmin(cyc)]
		rows = append(rows, []string{m.Name,
			fmt.Sprintf("%.2f", cyc[0]), fmt.Sprintf("%.2f", cyc[1]), fmt.Sprintf("%.2f", cyc[2]), best})
	}
	body := stats.FormatTable(rows)
	body += "\ncycles/tuple of mergejoin_slng_col_slng_col; the paper observes gcc ~90% slower\n" +
		"on Intel machines and icc slower than clang on the AMD machine.\n"
	return &Report{ID: "fig5", Title: "Figure 5: mergejoin — best compiler depends on machine", Body: body}, nil
}

func mergejoinBench(cfg Config, s *core.Session, arm int, label string) float64 {
	inst := s.Instance("mergejoin_slng_col_slng_col", label)
	n := 200_000
	lkeys := make([]int64, n)
	rkeys := make([]int64, n)
	for i := range lkeys {
		lkeys[i] = int64(i)
		rkeys[i] = int64(i * 2) // half the keys match
	}
	st := primitive.NewMergeState(lkeys, rkeys)
	st.LOut = make([]int32, cfg.VectorSize)
	st.ROut = make([]int32, cfg.VectorSize)
	fl := inst.Prim.Flavors[arm]
	var cycles float64
	consumed := n * 2
	for !st.Done() {
		c := &core.Call{N: cfg.VectorSize, Aux: st, Inst: inst}
		_, cyc := fl.Fn(s.Ctx, c)
		cycles += cyc
	}
	return cycles / float64(consumed)
}

func argmin(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// Fig6 reproduces Figure 6: loop-fission speedup of the bloom-filter probe
// vs. filter size, per machine, with machine-dependent cross-over points.
func Fig6(cfg Config) (*Report, error) {
	sizes := []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20, 128 << 20}
	var series []stats.Series
	rows := [][]string{{"size"}}
	for _, sz := range sizes {
		rows[0] = append(rows[0], sizeName(sz))
	}
	crossRows := [][]string{{"machine", "cross-over size", "max speedup"}}
	for _, m := range hw.Machines() {
		mcfg := cfg
		mcfg.Machine = m
		s := mcfg.Session(primitive.FissionSet(), fixedArm(0))
		var speedups []float64
		for i, sz := range sizes {
			nof := bloomBench(mcfg, s, 0, fmt.Sprintf("fig6/%s/n%d", m.Name, i), sz)
			fis := bloomBench(mcfg, s, 1, fmt.Sprintf("fig6/%s/f%d", m.Name, i), sz)
			speedups = append(speedups, nof/fis)
		}
		series = append(series, stats.Series{Name: m.Name, Values: speedups})
		row := []string{m.Name}
		for _, sp := range speedups {
			row = append(row, fmt.Sprintf("%.2f", sp))
		}
		rows = append(rows, row)
		cross := "never"
		for i, sp := range speedups {
			if sp > 1 {
				cross = sizeName(sizes[i])
				break
			}
		}
		crossRows = append(crossRows, []string{m.Name, cross, fmt.Sprintf("%.2f", stats.Max(speedups))})
	}
	body := cfg.chartAPH("fission speedup vs bloom filter size (4KB..128MB, log scale)", series)
	body += stats.FormatTable(transpose(rows))
	body += "\n" + stats.FormatTable(crossRows)
	body += "\npaper: cross-over at 1MB on machine 1 but 4MB on machine 4; fission up to\n" +
		"~50% faster on large filters and ~15% slower on small ones.\n"
	return &Report{ID: "fig6", Title: "Figure 6: sel_bloomfilter speedup with loop fission", Body: body}, nil
}

func sizeName(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dM", b>>20)
	default:
		return fmt.Sprintf("%dK", b>>10)
	}
}

func transpose(rows [][]string) [][]string {
	if len(rows) == 0 {
		return rows
	}
	out := make([][]string, len(rows[0]))
	for i := range out {
		out[i] = make([]string, len(rows))
		for j := range rows {
			out[i][j] = rows[j][i]
		}
	}
	return out
}

func bloomBench(cfg Config, s *core.Session, arm int, label string, sizeBytes int) float64 {
	inst := s.Instance("sel_bloomfilter_slng_col", label)
	f := bloom.New(sizeBytes, 2)
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Fill to a realistic load (~20% of probes hit).
	for i := 0; i < sizeBytes/8; i++ {
		f.Add(rng.Int63())
	}
	n := cfg.VectorSize
	keys := make([]int64, n)
	out := make([]int32, n)
	fl := inst.Prim.Flavors[arm]
	var cycles float64
	var tuples int64
	for call := 0; call < 200; call++ {
		for i := range keys {
			keys[i] = rng.Int63()
		}
		c := &core.Call{N: n, In: []*vector.Vector{vector.FromI64(keys)}, SelOut: out, Aux: f, Inst: inst}
		_, cyc := fl.Fn(s.Ctx, c)
		cycles += cyc
		tuples += int64(n)
	}
	return cycles / float64(tuples)
}

// Table4 reproduces Table 4: the interaction of hand unrolling with
// compiler SIMD and unrolling flags for dense integer multiplication, on
// machines 1 and 3.
func Table4(cfg Config) (*Report, error) {
	rows := [][]string{{"machine", "hand", "compiler SIMD+unroll", "SIMD only", "unroll only", "neither"}}
	for _, m := range []*hw.Machine{hw.Machine1(), hw.Machine3()} {
		for _, hand := range []bool{true, false} {
			handName := "unroll 8"
			if !hand {
				handName = "no unroll"
			}
			row := []string{m.Name, handName}
			for _, flags := range [][2]bool{{true, true}, {true, false}, {false, true}, {false, false}} {
				cyc := primitive.MeasureDenseMul(m, hand, flags[0], flags[1], 1<<16)
				row = append(row, fmt.Sprintf("%.2f", cyc))
			}
			rows = append(rows, row)
		}
	}
	body := stats.FormatTable(rows)
	body += "\ncycles/tuple of dense map_mul_sint_col_sint_col. Hand unrolling defeats\n" +
		"auto-vectorization, so all four compiler columns agree (paper: 1.73/2.02);\n" +
		"on machine 3 SIMD loses to unrolled scalar code (paper: 3.61 vs 2.02).\n"
	return &Report{ID: "table4", Title: "Table 4: map_mul — hand vs compiler unrolling (cycles/tuple)", Body: body}, nil
}

// Fig8 reproduces Figure 8: full-computation speedup over selective
// computation as a function of input selectivity, by machine and type.
func Fig8(cfg Config) (*Report, error) {
	var series []stats.Series
	type curve struct {
		name string
		m    *hw.Machine
		t    vector.Type
	}
	curves := []curve{
		{"mul_int m1", hw.Machine1(), vector.I32},
		{"mul_int m2", hw.Machine2(), vector.I32},
		{"mul_int m3", hw.Machine3(), vector.I32},
		{"mul_int m4", hw.Machine4(), vector.I32},
		{"mul_short m1", hw.Machine1(), vector.I16},
		{"mul_long m1", hw.Machine1(), vector.I64},
	}
	rows := [][]string{{"sel%"}}
	for sel := 0; sel <= 100; sel += 10 {
		rows = append(rows, []string{fmt.Sprintf("%d", sel)})
	}
	for _, cv := range curves {
		mcfg := cfg
		mcfg.Machine = cv.m
		s := mcfg.Session(primitive.ComputeSet(), fixedArm(0))
		var sp []float64
		for sel := 0; sel <= 100; sel += 10 {
			selective := mapMulBench(mcfg, s, cv.t, 0, fmt.Sprintf("fig8/%s/s%d", cv.name, sel), sel)
			full := mapMulBench(mcfg, s, cv.t, 1, fmt.Sprintf("fig8/%s/f%d", cv.name, sel), sel)
			sp = append(sp, selective/full)
		}
		series = append(series, stats.Series{Name: cv.name, Values: sp})
		rows[0] = append(rows[0], cv.name)
		for i, v := range sp {
			rows[i+1] = append(rows[i+1], fmt.Sprintf("%.2f", v))
		}
	}
	body := cfg.chartAPH("full-computation speedup vs input selectivity", series)
	body += stats.FormatTable(rows)
	body += "\npaper: int crosses over at ~30% on machine 1 but ~80% on machine 2; short\n" +
		"benefits much earlier; long never benefits.\n"
	return &Report{ID: "fig8", Title: "Figure 8: map_mul — full computation speedup", Body: body}, nil
}

// mapMulBench measures one compute flavor of map_mul at a given input
// selectivity (percent), returning total cycles per call (so the speedup
// ratio matches the paper's per-vector comparison).
func mapMulBench(cfg Config, s *core.Session, t vector.Type, arm int, label string, selPct int) float64 {
	sig := primitive.MapSig("*", t, "col_col")
	inst := s.Instance(sig, label)
	n := cfg.VectorSize
	a := vector.New(t, n)
	b := vector.New(t, n)
	res := vector.New(t, n)
	a.SetLen(n)
	b.SetLen(n)
	res.SetLen(n)
	rng := rand.New(rand.NewSource(cfg.Seed + int64(selPct)))
	fl := inst.Prim.Flavors[arm]
	var cycles float64
	calls := 200
	for call := 0; call < calls; call++ {
		var sel []int32
		for i := 0; i < n; i++ {
			if rng.Intn(100) < selPct {
				sel = append(sel, int32(i))
			}
		}
		if sel == nil {
			sel = []int32{}
		}
		c := &core.Call{N: n, Sel: sel, In: []*vector.Vector{a, b}, Res: res, Inst: inst}
		_, cyc := fl.Fn(s.Ctx, c)
		cycles += cyc
	}
	return cycles / float64(calls)
}

// Fig10 reproduces Figure 10: vw-greedy on three synthetic non-stationary
// flavors, with parameters (1024, 256, 32). One flavor is best at the
// start and end of the query, another in the middle.
func Fig10(cfg Config) (*Report, error) {
	totalCalls := 100_000
	costs := fig10Costs(totalCalls)
	d := core.NewDictionary()
	for fi := 0; fi < 3; fi++ {
		fi := fi
		err := d.AddFlavor("synthetic", hw.ClassMapArith, &core.Flavor{
			Name: fmt.Sprintf("flavor%d", fi+1),
			Fn: func(ctx *core.ExecCtx, c *core.Call) (int, float64) {
				// Costs depend on query progress (the instance's global
				// call count), not on per-flavor use.
				cost := costs[fi](c.Inst.Calls)
				return c.N, cost * float64(c.N)
			},
		})
		if err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	params := core.DemoVWParams()
	s := core.NewSession(d, cfg.Machine,
		core.WithVectorSize(1000),
		core.WithChooser(func(n int) core.Chooser { return core.NewVWGreedy(n, params, rng) }))
	inst := s.Instance("synthetic", "fig10/synthetic#0")
	for call := 0; call < totalCalls; call++ {
		inst.Run(s.Ctx, &core.Call{N: 1000})
	}

	// Per-flavor reference curves (what each flavor would cost).
	hists := make([]*aph.History, 3)
	for fi := range hists {
		hists[fi] = aph.New()
		for call := 0; call < totalCalls; call++ {
			hists[fi].Add(1000, costs[fi](call)*1000)
		}
	}
	series := []stats.Series{
		{Name: "flavor 1", Values: hists[0].Series()},
		{Name: "flavor 2", Values: hists[1].Series()},
		{Name: "flavor 3", Values: hists[2].Series()},
		{Name: "adaptive", Values: inst.History().Series()},
	}
	body := cfg.chartAPH("cycles/tuple over 100K calls (EXPLORE_PERIOD=1024, EXPLOIT_PERIOD=256, EXPLORE_LENGTH=32)", series)

	adaptive := inst.Cycles
	var opt, best float64
	bestIdx := 0
	for fi, h := range hists {
		_, c := h.Totals()
		if fi == 0 || c < best {
			best, bestIdx = c, fi
		}
	}
	opt = aph.OptCycles(hists...)
	body += fmt.Sprintf("\nadaptive/OPT = %.3f; best-single-flavor (flavor %d)/OPT = %.3f — "+
		"the adaptive run tracks the minimum of the flavor curves.\n",
		adaptive/opt, bestIdx+1, best/opt)
	if adaptive >= best {
		body += "WARNING: adaptive did not beat the best single flavor on this run\n"
	}
	return &Report{ID: "fig10", Title: "Figure 10: vw-greedy in action on 3 flavors", Body: body}, nil
}

// fig10Costs builds the three cost curves of the demonstration.
func fig10Costs(total int) [3]func(int) float64 {
	mid := func(call int) float64 {
		// Smooth bump between 30% and 70% of the query.
		x := float64(call) / float64(total)
		switch {
		case x < 0.3 || x > 0.7:
			return 0
		case x < 0.4:
			return (x - 0.3) / 0.1
		case x > 0.6:
			return (0.7 - x) / 0.1
		default:
			return 1
		}
	}
	return [3]func(int) float64{
		func(c int) float64 { return 5.0 + 2.0*mid(c) }, // best at start/end
		func(c int) float64 { return 6.5 - 1.8*mid(c) }, // best mid-query
		func(c int) float64 { return 6.8 },              // never best
	}
}
