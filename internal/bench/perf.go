// Performance trajectory suite: the machine-readable benchmark record
// checked in as BENCH_<pr>.json and regression-gated in CI.
//
// Each entry carries two kinds of metrics. Deterministic ones — off-best
// percentage, virtual primitive cycles (the hw.Machine cost model is
// simulated, so cycles are hardware-independent), resident bytes — are
// reproducible on any machine at the same (sf, seed, vector size) and are
// gated strictly. Wall-clock metrics (wall, p50, p99) vary with the host
// and are recorded for trajectory only; ComparePerf checks them only on
// request.
package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"microadapt/internal/server"
	"microadapt/internal/service"
	"microadapt/internal/stats"
)

// PerfEntry is one experiment's record in the suite.
type PerfEntry struct {
	Name string `json:"name"`

	// Host-dependent, trajectory-only.
	WallMS float64 `json:"wall_ms"`
	P50US  float64 `json:"p50_us"`
	P99US  float64 `json:"p99_us"`
	// Time-to-first-chunk percentiles of streamed fragments (distributed
	// entries only): how long the coordinator's merge waited for rows.
	TTFCP50US float64 `json:"ttfc_p50_us,omitempty"`
	TTFCP99US float64 `json:"ttfc_p99_us,omitempty"`

	// Deterministic at fixed (sf, seed, vecsize): regression-gated.
	OffBestPct    float64 `json:"off_best_pct"`
	PrimCycles    float64 `json:"prim_cycles"`
	ResidentBytes int64   `json:"resident_bytes"`

	// TrajectoryOnly marks entries whose execution is intentionally
	// nondeterministic (overlapped fragment sites make the shard-side
	// bandit harvest order race-dependent), so ComparePerf records them
	// without gating their metrics.
	TrajectoryOnly bool `json:"trajectory_only,omitempty"`
}

// PerfSuite is the whole record.
type PerfSuite struct {
	Schema     int         `json:"schema"`
	SF         float64     `json:"sf"`
	Seed       int64       `json:"seed"`
	VectorSize int         `json:"vector_size"`
	Entries    []PerfEntry `json:"entries"`
}

// perfSchemaVersion bumps when entry semantics change incompatibly.
const perfSchemaVersion = 1

// measureService runs rounds of the mix through any executor-shaped run
// function and folds the per-query stats into one entry.
func measureRun(name string, rounds int, mix []int,
	exec func(q int) (service.JobStats, error)) (PerfEntry, error) {
	e := PerfEntry{Name: name}
	lat := stats.NewWindow(4096)
	var adaptive, offBest int64
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, q := range mix {
			st, err := exec(q)
			if err != nil {
				return e, fmt.Errorf("%s Q%02d: %w", name, q, err)
			}
			lat.Add(float64(st.Latency))
			adaptive += st.AdaptiveCalls
			offBest += st.OffBestCalls
			e.PrimCycles += st.PrimCycles
		}
	}
	e.WallMS = float64(time.Since(start).Microseconds()) / 1e3
	ps := lat.Percentiles(50, 99)
	e.P50US, e.P99US = ps[0]/1e3, ps[1]/1e3
	if adaptive > 0 {
		e.OffBestPct = 100 * float64(offBest) / float64(adaptive)
	}
	return e, nil
}

// RunPerfSuite produces the PR's benchmark record: single-process
// execution, distributed execution at two fleet sizes, and the two
// federation phases, all over the same database and query mix.
func RunPerfSuite(cfg Config) (*PerfSuite, error) {
	suite := &PerfSuite{Schema: perfSchemaVersion, SF: cfg.SF, Seed: cfg.Seed, VectorSize: cfg.VectorSize}
	db := cfg.DB()
	sc := distServiceConfig(cfg)
	flat, resident := db.StorageFootprint()
	_ = flat
	const rounds = 3

	// Single-process baseline, plus the ground-truth fingerprints the
	// distributed tiers are checked against.
	single := service.New(db, sc)
	want := map[int]string{}
	e, err := measureRun("single", rounds, distMix, func(q int) (service.JobStats, error) {
		tab, st, err := single.Execute(q)
		if err == nil {
			if fp := server.Fingerprint(tab); want[q] == "" {
				want[q] = fp
			}
		}
		return st, err
	})
	if err != nil {
		return nil, err
	}
	e.ResidentBytes = int64(resident)
	suite.Entries = append(suite.Entries, e)

	// Distributed tiers. The gated dist-n2/dist-n4 entries run fragment
	// sites sequentially (SiteFanout=1): the streaming transport still
	// overlaps chunk arrival with the merge, but the shard-side learning
	// sequence stays deterministic, keeping off-best % and prim cycles
	// reproducible. dist-stream overlaps sites under the default fan-out —
	// the full streaming pipeline — and is recorded trajectory-only.
	// dist-json is dist-n2 pinned to the legacy JSON wire: its
	// deterministic metrics must equal dist-n2's exactly (the codec changes
	// bytes on the wire, never decoded values), and the wall-time gap
	// between the two is the binary encoding's contribution.
	tiers := []struct {
		name       string
		shards     int
		fanout     int
		jsonWire   bool
		trajectory bool
	}{
		{"dist-n2", 2, 1, false, false},
		{"dist-n4", 4, 1, false, false},
		{"dist-json", 2, 1, true, false},
		{"dist-stream", 2, 0, false, true}, // 0 = default fan-out
	}
	for _, tier := range tiers {
		c, stop, err := startDistFleetWire(db, tier.shards, sc, tier.fanout, tier.jsonWire)
		if err != nil {
			return nil, err
		}
		e, err := measureRun(tier.name, rounds, distMix, func(q int) (service.JobStats, error) {
			tab, st, err := c.Execute(q)
			if err == nil && server.Fingerprint(tab) != want[q] {
				return st, fmt.Errorf("result differs from single-process")
			}
			return st, err
		})
		if err == nil {
			fleet := c.Fleet()
			e.TTFCP50US, e.TTFCP99US = fleet.TTFCP50US, fleet.TTFCP99US
		}
		stop()
		if err != nil {
			return nil, err
		}
		e.ResidentBytes = int64(resident)
		e.TrajectoryOnly = tier.trajectory
		suite.Entries = append(suite.Entries, e)
	}

	// Federation: cold shard vs. the same shard warm-started from fleet
	// knowledge gossiped out of a 2-shard fleet.
	c, stop, err := startDistFleet(db, 2, sc)
	if err != nil {
		return nil, err
	}
	for r := 0; r < rounds; r++ {
		for _, q := range distMix {
			if _, _, err := c.Execute(q); err != nil {
				stop()
				return nil, fmt.Errorf("federation warmup Q%02d: %w", q, err)
			}
		}
	}
	if _, err := c.GossipOnce(); err != nil {
		stop()
		return nil, fmt.Errorf("federation gossip: %w", err)
	}
	fleet := c.Cache().Export()
	stop()
	shardDB := db.Shard(0, 2)
	shardFlat, shardResident := shardDB.StorageFootprint()
	_ = shardFlat
	for _, phase := range []struct {
		name string
		snap *service.KnowledgeSnapshot
	}{{"federation-cold", nil}, {"federation-warm", &fleet}} {
		svc := service.New(shardDB, sc)
		if phase.snap != nil {
			svc.Cache().Import(*phase.snap)
		}
		e, err := measureRun(phase.name, 1, distMix, func(q int) (service.JobStats, error) {
			_, st, err := svc.Execute(q)
			return st, err
		})
		if err != nil {
			return nil, err
		}
		e.ResidentBytes = int64(shardResident)
		suite.Entries = append(suite.Entries, e)
	}
	return suite, nil
}

// String renders the suite as an aligned table.
func (s *PerfSuite) String() string {
	rows := [][]string{{"entry", "wall ms", "p50 us", "p99 us", "ttfc p50 us", "off-best %", "prim Gcycles", "resident MB"}}
	for _, e := range s.Entries {
		ttfc := "-"
		if e.TTFCP50US > 0 {
			ttfc = fmt.Sprintf("%.0f", e.TTFCP50US)
		}
		rows = append(rows, []string{
			e.Name,
			fmt.Sprintf("%.1f", e.WallMS),
			fmt.Sprintf("%.0f", e.P50US),
			fmt.Sprintf("%.0f", e.P99US),
			ttfc,
			fmt.Sprintf("%.2f", e.OffBestPct),
			fmt.Sprintf("%.3f", e.PrimCycles/1e9),
			fmt.Sprintf("%.1f", float64(e.ResidentBytes)/1e6),
		})
	}
	return fmt.Sprintf("perf suite (sf=%g seed=%d vecsize=%d)\n", s.SF, s.Seed, s.VectorSize) +
		stats.FormatTable(rows)
}

// MarshalIndent renders the suite as the checked-in JSON form.
func (s *PerfSuite) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// LoadPerfSuite parses a suite from its JSON form.
func LoadPerfSuite(data []byte) (*PerfSuite, error) {
	var s PerfSuite
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("bench: parse perf suite: %w", err)
	}
	return &s, nil
}

// relDiff is |a-b| relative to max(|a|,|b|); 0 when both are 0.
func relDiff(a, b float64) float64 {
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return math.Abs(a-b) / m
}

// ComparePerf gates current against baseline. Deterministic metrics
// (off-best %, prim cycles, resident bytes) must be within detTol
// relative difference (2% when <= 0); wall metrics are checked within
// wallTol only when includeWall is set — the CI default leaves
// host-dependent timing ungated. Baselines at a different (sf, seed,
// vecsize, schema) are rejected outright: cross-configuration numbers are
// not comparable.
func ComparePerf(baseline, current *PerfSuite, includeWall bool) error {
	const detTol, wallTol = 0.02, 0.5
	if baseline.Schema != current.Schema {
		return fmt.Errorf("schema %d vs %d: regenerate the baseline", baseline.Schema, current.Schema)
	}
	if baseline.SF != current.SF || baseline.Seed != current.Seed || baseline.VectorSize != current.VectorSize {
		return fmt.Errorf("configuration mismatch: baseline (sf=%g seed=%d vec=%d) vs current (sf=%g seed=%d vec=%d)",
			baseline.SF, baseline.Seed, baseline.VectorSize, current.SF, current.Seed, current.VectorSize)
	}
	byName := map[string]PerfEntry{}
	for _, e := range current.Entries {
		byName[e.Name] = e
	}
	var errs []error
	for _, b := range baseline.Entries {
		c, ok := byName[b.Name]
		if !ok {
			errs = append(errs, fmt.Errorf("entry %q missing from current run", b.Name))
			continue
		}
		if b.TrajectoryOnly {
			// Overlapped execution makes these metrics race-dependent by
			// design; presence is required, drift is not gated.
			continue
		}
		check := func(metric string, bv, cv, tol float64) {
			if d := relDiff(bv, cv); d > tol {
				errs = append(errs, fmt.Errorf("%s.%s: %.4g -> %.4g (%.1f%% drift, tolerance %.0f%%)",
					b.Name, metric, bv, cv, 100*d, 100*tol))
			}
		}
		check("off_best_pct", b.OffBestPct, c.OffBestPct, detTol)
		check("prim_cycles", b.PrimCycles, c.PrimCycles, detTol)
		check("resident_bytes", float64(b.ResidentBytes), float64(c.ResidentBytes), detTol)
		if includeWall {
			check("wall_ms", b.WallMS, c.WallMS, wallTol)
			check("p99_us", b.P99US, c.P99US, wallTol)
		}
	}
	if len(errs) > 0 {
		msg := "perf regression gate failed:"
		for _, e := range errs {
			msg += "\n  " + e.Error()
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}
