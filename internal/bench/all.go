package bench

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is a registry entry.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Report, error)
}

// serialOnly pins a paper-reproduction experiment to serial execution:
// these experiments introspect per-instance histories by serial plan label
// (mustInstance, APH charts), which a partitioned plan splits across
// fragment sessions. Only the scaling experiment varies parallelism, and it
// does so itself.
func serialOnly(run func(Config) (*Report, error)) func(Config) (*Report, error) {
	return func(cfg Config) (*Report, error) {
		cfg.PipelineParallelism = 0
		return run(cfg)
	}
}

// Experiments returns the full registry, in the paper's order.
func Experiments() []Experiment {
	exps := []Experiment{
		{"table1", "Table 1: execution-stage breakdown", serialOnly(Table1)},
		{"fig1", "Figure 1: (no-)branching vs selectivity", serialOnly(Fig1)},
		{"fig2", "Figure 2: (no-)branching in TPC-H Q12", serialOnly(Fig2)},
		{"fig4", "Figure 4: compiler APHs", serialOnly(Fig4)},
		{"fig5", "Figure 5: mergejoin by machine", serialOnly(Fig5)},
		{"fig6", "Figure 6: bloom-filter loop fission", serialOnly(Fig6)},
		{"table4", "Table 4: hand vs compiler unrolling", serialOnly(Table4)},
		{"fig8", "Figure 8: full computation speedup", serialOnly(Fig8)},
		{"fig10", "Figure 10: vw-greedy demonstration", serialOnly(Fig10)},
		{"table5", "Table 5: MAB algorithms on traces", serialOnly(Table5)},
	}
	for _, spec := range flavorSetSpecs {
		id := spec.id
		exps = append(exps, Experiment{id, spec.title, serialOnly(func(cfg Config) (*Report, error) {
			return FlavorSetTable(cfg, id)
		})})
	}
	exps = append(exps,
		Experiment{"fig11", "Figure 11: micro adaptive APHs", serialOnly(Fig11)},
		Experiment{"table11", "Table 11: TPC-H overall", serialOnly(Table11)},
		Experiment{"policycmp", "Policy comparison: cold vs. warm per policy", serialOnly(PolicyComparison)},
		Experiment{"scaling", "Pipeline scaling: wall time and off-best vs. parallelism", Scaling},
		Experiment{"storage", "Compressed storage: flavor-adaptive scans vs. flat", serialOnly(StorageComparison)},
		Experiment{"dist", "Distributed execution: shard scaling with bit-identity", DistScaling},
		Experiment{"federation", "Flavor-knowledge federation: cold vs. warm-started shard", Federation},
	)
	return exps
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	var out []string
	for _, e := range Experiments() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// RunAll executes every experiment, streaming reports to w. It keeps going
// on individual failures and returns the first error at the end.
func RunAll(cfg Config, w io.Writer) error {
	var firstErr error
	for _, e := range Experiments() {
		rep, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(w, "%s FAILED: %v\n\n", e.ID, err)
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", e.ID, err)
			}
			continue
		}
		fmt.Fprintln(w, rep.String())
	}
	return firstErr
}
