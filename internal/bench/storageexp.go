package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"microadapt/internal/core"
	"microadapt/internal/engine"
	"microadapt/internal/primitive"
	"microadapt/internal/stats"
	"microadapt/internal/tpch"
)

// storageQueries are the scan-dominated plans where the encoding choice and
// the decompression flavors carry the most cycles: Q1 has no selection
// (pure eager-decode pressure), Q6/Q12/Q14 push date and quantity
// predicates into the encoded scan, and Q10/Q17 push equality predicates
// over dictionary-encoded low-cardinality columns (l_returnflag, p_brand,
// p_container) — the operate-on-compressed sweet spot.
var storageQueries = []int{1, 6, 10, 12, 14, 17}

// StorageComparison measures compressed columnar storage against flat: per
// query, mean wall time, primitive cycles and the off-best fraction under
// both storage forms, plus the resident-bytes reduction of the analyzer's
// encodings and the decompression flavors each instance's bandit learned —
// the paper's decompression scenario (its flagship example of a primitive
// whose best implementation is data-dependent) on real TPC-H data.
func StorageComparison(cfg Config) (*Report, error) {
	const reps = 3
	flatDB := cfg.DB()
	encDB := cfg.EncodedDB()
	flatBytes, residentBytes := encDB.StorageFootprint()

	opts := primitive.Everything()
	rows := [][]string{{"query", "storage", "wall(mean)", "prim Mcycles", "off-best%", "identical"}}
	var winners []decompressWinner
	for _, qn := range storageQueries {
		q := tpch.Query(qn)
		var flatFP string
		for _, mode := range []struct {
			name string
			db   *tpch.DB
		}{{"flat", flatDB}, {"encoded", encDB}} {
			var wall time.Duration
			var cycles float64
			var adaptive, offBest int64
			var fps []string
			for r := 0; r < reps; r++ {
				s := cfg.TPCHSession(opts, nil)
				start := time.Now()
				tab, err := q.Run(mode.db, s)
				if err != nil {
					return nil, fmt.Errorf("storage %s %s: %w", q.Name, mode.name, err)
				}
				wall += time.Since(start)
				cycles += s.Ctx.PrimCycles
				a, ob := offBestCalls(s)
				adaptive += a
				offBest += ob
				fps = append(fps, engine.TableString(tab, 0))
				if mode.name == "encoded" && r == reps-1 {
					winners = append(winners, collectDecompressWinners(s, q.Name)...)
				}
			}
			identical := "-"
			if mode.name == "flat" {
				flatFP = fps[0]
			}
			// Every rep of either storage form must match the flat result;
			// a divergence in any single rep flags the whole cell.
			allMatch := true
			for _, fp := range fps {
				if fp != flatFP {
					allMatch = false
				}
			}
			if mode.name == "encoded" || !allMatch {
				identical = map[bool]string{true: "yes", false: "NO"}[allMatch]
			}
			offPct := 0.0
			if adaptive > 0 {
				offPct = 100 * float64(offBest) / float64(adaptive)
			}
			rows = append(rows, []string{
				q.Name, mode.name,
				(wall / reps).Round(time.Microsecond).String(),
				fmt.Sprintf("%.2f", cycles/reps/1e6),
				fmt.Sprintf("%.1f", offPct),
				identical,
			})
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "resident bytes: flat %d -> encoded %d (%.1f%% of flat)\n\n",
		flatBytes, residentBytes, 100*float64(residentBytes)/float64(flatBytes))
	b.WriteString(stats.FormatTable(rows))
	b.WriteString("\nlearned decompression winners (encoded runs, per instance):\n")
	onCompressed := 0
	sort.Slice(winners, func(i, j int) bool { return winners[i].label < winners[j].label })
	for _, w := range winners {
		fmt.Fprintf(&b, "  %-64s %s\n", w.label, w.flavor)
		if w.flavor == "oncompressed" {
			onCompressed++
		}
	}
	fmt.Fprintf(&b, "\n%d instances learned an operate-on-compressed selection; %d reps per cell, cold\nsessions (policy %s). Lineitem encodings:\n%s",
		onCompressed, reps, cfg.policySpec(), encDB.Lineitem.Enc.Summary())
	return &Report{
		ID:    "storage",
		Title: "Compressed storage: flavor-adaptive scans vs. flat",
		Body:  b.String(),
	}, nil
}

// offBestCalls is the session-wide core.AdaptationCost — the same
// exploration-tax accounting the concurrent service reports per job.
func offBestCalls(s *core.Session) (adaptive, offBest int64) {
	return core.AdaptationCost(s.AllInstances())
}

// decompressWinner is one instance's measured-cheapest flavor.
type decompressWinner struct{ label, flavor string }

// collectDecompressWinners returns, for every decompression-family
// instance of the session, the flavor its bandit measured cheapest.
func collectDecompressWinners(s *core.Session, qname string) []decompressWinner {
	var out []decompressWinner
	for _, inst := range s.AllInstances() {
		sig := inst.Prim.Sig
		if !strings.HasPrefix(sig, "scan_decompress_") && !strings.HasPrefix(sig, "selenc_") {
			continue
		}
		if len(inst.Prim.Flavors) <= 1 || inst.Calls == 0 {
			continue
		}
		best := inst.BestMeasuredFlavor()
		if best < 0 {
			continue
		}
		out = append(out, decompressWinner{
			label:  qname + ": " + core.BaseLabel(inst.Label),
			flavor: inst.Prim.Flavors[best].Name,
		})
	}
	return out
}
