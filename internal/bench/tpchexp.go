package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"microadapt/internal/aph"
	"microadapt/internal/core"
	"microadapt/internal/heuristics"
	"microadapt/internal/primitive"
	"microadapt/internal/stats"
	"microadapt/internal/tpch"
	"microadapt/internal/trace"
)

// Fig2 reproduces Figure 2: the two (no-)branching flavors of the Q12
// receiptdate selection. The date-clustered lineitem keeps the predicate's
// selectivity near 100% for most of the query and drops it at the end,
// where the branching flavor collapses.
func Fig2(cfg Config) (*Report, error) {
	db := cfg.DB()
	const label = "Q12/sel0/select_<_sint_col_sint_val#1" // l_receiptdate < 1995-01-01
	var series []stats.Series
	names := []string{"branching", "no branching"}
	var hists []*aph.History
	for arm := 0; arm < 2; arm++ {
		s := cfg.TPCHSession(primitive.BranchSet(), fixedArm(arm))
		if _, err := tpch.Q12(db, s); err != nil {
			return nil, err
		}
		inst := mustInstance(s, label)
		series = append(series, stats.Series{Name: names[arm], Values: inst.History().Series()})
		hists = append(hists, inst.History())
	}
	body := cfg.chartAPH("avg cycles/tuple during Q12 ("+label+")", series)
	bTot, nbTot := histCycles(hists[0]), histCycles(hists[1])
	body += fmt.Sprintf("\ntotal cycles: branching %.0f, no-branching %.0f; branching is faster for\n"+
		"most of the query but collapses when the selectivity drops at the end —\n"+
		"exactly the Figure 2 phenomenon that motivates intra-query adaptivity.\n", bTot, nbTot)
	return &Report{ID: "fig2", Title: "Figure 2: (No-)Branching primitive cost in TPC-H Q12", Body: body}, nil
}

func histCycles(h *aph.History) float64 {
	_, c := h.Totals()
	return c
}

// fig4Panels maps the five sub-figures of Figure 4 to our instances.
var fig4Panels = []struct {
	id, query, label, title string
}{
	{"a", "Q1", "Q1/proj0/map_-_slng_val_slng_col#0", "(a) Q1: Projection(map arithmetic)"},
	{"b", "Q1", "Q1/agg0/aggr_sum_slng_col#0", "(b) Q1: Aggregation(aggr_sum_slng_col)"},
	{"c", "Q7", "Q7/mj0/mergejoin_slng_col_slng_col#0", "(c) Q7: MergeJoin(mergejoin_slng_col_slng_col)"},
	{"d", "Q12", "Q12/mj0/map_fetch_uidx_col_str_col#R0", "(d) Q12: MergeJoin(map_fetch_uidx_col_str_col)"},
	{"e", "Q16", "Q16/agg0/hash_insertcheck_str_col#0", "(e) Q16: Aggregation(hash_insertcheck_str_col)"},
}

// Fig4 reproduces Figure 4: compiler-flavor APHs of five primitive
// instances across TPC-H queries, showing levels, reversals and mid-query
// cross-overs.
func Fig4(cfg Config) (*Report, error) {
	db := cfg.DB()
	queries := []tpch.Spec{tpch.Query(1), tpch.Query(7), tpch.Query(12), tpch.Query(16)}
	compilers := []string{"gcc", "icc", "clang"}
	// Figure 4 measures whole builds (one binary per compiler), so the
	// hash primitives carry compiler flavors here even though the
	// evaluator-level flavor sets of Tables 5/7 do not reach them.
	opts := primitive.CompilerSet()
	opts.FullCompilerCoverage = true
	sessions := make([]*core.Session, 3)
	for arm := 0; arm < 3; arm++ {
		s := cfg.TPCHSession(opts, fixedArm(arm))
		for _, q := range queries {
			if _, err := q.Run(db, s); err != nil {
				return nil, err
			}
		}
		sessions[arm] = s
	}
	var body strings.Builder
	for _, panel := range fig4Panels {
		var series []stats.Series
		for arm, name := range compilers {
			inst := mustInstance(sessions[arm], panel.label)
			series = append(series, stats.Series{Name: name, Values: inst.History().Series()})
		}
		body.WriteString(cfg.chartAPH(panel.title, series))
		body.WriteString("\n")
	}
	body.WriteString("paper: no single best compiler even within one query — gcc wins (a),\n" +
		"icc wins (b) until clang crosses over, gcc is ~90% slower on (c), gcc and\n" +
		"clang alternate on (d), icc is 2x slower on (e).\n")
	return &Report{ID: "fig4", Title: "Figure 4: compiler differences (sample APHs, TPC-H)", Body: body.String()}, nil
}

// flavorSetRun holds everything the Tables 6-10 / Figure 11 experiments
// need from one flavor-set study.
type flavorSetRun struct {
	opts     primitive.Options
	armNames []string
	arms     []*core.Session
	adaptive *core.Session

	defaultAffected float64 // cycles in affected primitives, default arm
	totalDefault    float64 // all primitive cycles, default arm
	armAffected     []float64
	adaptAffected   float64
	optAffected     float64
}

// runFlavorSet executes the full TPC-H suite once per pinned arm and once
// adaptively, then computes the Table 6-10 aggregates. OPT is computed per
// instance from the per-arm APHs (minimum per aligned bucket), as §4.1
// describes.
func runFlavorSet(cfg Config, opts primitive.Options, nArms int, armNames []string) (*flavorSetRun, error) {
	db := cfg.DB()
	r := &flavorSetRun{opts: opts, armNames: armNames}
	for arm := 0; arm < nArms; arm++ {
		s := cfg.TPCHSession(opts, fixedArm(arm))
		if err := RunTPCH(db, s); err != nil {
			return nil, err
		}
		r.arms = append(r.arms, s)
		aff, tot := affectedCycles(s)
		r.armAffected = append(r.armAffected, aff)
		if arm == 0 {
			r.defaultAffected, r.totalDefault = aff, tot
		}
	}
	adaptive := cfg.TPCHSession(opts, nil)
	if err := RunTPCH(db, adaptive); err != nil {
		return nil, err
	}
	r.adaptive = adaptive
	adaptAff, _ := affectedCycles(adaptive)
	r.adaptAffected = adaptAff

	// OPT per affected instance across the pinned runs.
	for _, inst := range r.arms[0].Instances() {
		if len(inst.Prim.Flavors) <= 1 {
			continue
		}
		var hists []*aph.History
		for _, s := range r.arms {
			other := s.InstanceByLabel(inst.Label)
			if other == nil {
				hists = nil
				break
			}
			hists = append(hists, other.History())
		}
		if hists == nil {
			continue
		}
		r.optAffected += aph.OptCycles(hists...)
	}
	return r, nil
}

// report renders the Table 6-10 row layout: default cost (and workload
// share), then improvement factors for each alternative, Micro Adaptivity
// and OPT.
func (r *flavorSetRun) report() string {
	header := []string{fmt.Sprintf("Always %s", r.armNames[0])}
	row := []string{fmt.Sprintf("%s (%.2f%%)", fmtBillions(r.defaultAffected), 100*r.defaultAffected/r.totalDefault)}
	for i := 1; i < len(r.armNames); i++ {
		header = append(header, "Always "+r.armNames[i])
		row = append(row, fmtFactor(r.defaultAffected, r.armAffected[i]))
	}
	header = append(header, "Micro Adaptive", "OPT")
	row = append(row, fmtFactor(r.defaultAffected, r.adaptAffected), fmtFactor(r.defaultAffected, r.optAffected))
	return stats.FormatTable([][]string{header, row})
}

// fig11Panel renders one Figure 11 panel: the pinned flavor curves plus
// the adaptive curve of one instance.
func (r *flavorSetRun) fig11Panel(cfg Config, title, label string) string {
	var series []stats.Series
	for arm, s := range r.arms {
		inst := mustInstance(s, label)
		series = append(series, stats.Series{Name: r.armNames[arm], Values: inst.History().Series()})
	}
	inst := mustInstance(r.adaptive, label)
	series = append(series, stats.Series{Name: "micro adaptive", Values: inst.History().Series()})
	return cfg.chartAPH(title, series)
}

// flavorSetSpecs defines the five studies of §4.1.
var flavorSetSpecs = []struct {
	id       string
	title    string
	opts     func() primitive.Options
	nArms    int
	armNames []string
}{
	{"table6", "Table 6: (No-)Branching flavors", primitive.BranchSet, 2, []string{"Branching", "No-Branching"}},
	{"table7", "Table 7: Compiler flavors", primitive.CompilerSet, 3, []string{"gcc", "icc", "clang"}},
	{"table8", "Table 8: Loop Fission flavors", primitive.FissionSet, 2, []string{"Never Fission", "Always Fission"}},
	{"table9", "Table 9: Full Computation flavors", primitive.ComputeSet, 2, []string{"Selective", "Full Computation"}},
	{"table10", "Table 10: Hand-Unrolling flavors", primitive.UnrollSet, 2, []string{"unroll 8", "no unroll"}},
}

// flavorSetCache shares the expensive runs between the table and figure
// experiments within one process.
var flavorSetCache = map[string]*flavorSetRun{}

func flavorSet(cfg Config, id string) (*flavorSetRun, string, error) {
	for _, spec := range flavorSetSpecs {
		if spec.id != id {
			continue
		}
		key := fmt.Sprintf("%s/%v/%d", id, cfg.SF, cfg.VectorSize)
		if r, ok := flavorSetCache[key]; ok {
			return r, spec.title, nil
		}
		r, err := runFlavorSet(cfg, spec.opts(), spec.nArms, spec.armNames)
		if err != nil {
			return nil, "", err
		}
		flavorSetCache[key] = r
		return r, spec.title, nil
	}
	return nil, "", fmt.Errorf("bench: unknown flavor set %q", id)
}

// FlavorSetTable generates one of Tables 6-10.
func FlavorSetTable(cfg Config, id string) (*Report, error) {
	r, title, err := flavorSet(cfg, id)
	if err != nil {
		return nil, err
	}
	body := r.report()
	body += "\ncycles in affected primitives over the full TPC-H run (% of all primitive\n" +
		"cycles); columns are improvement factors over the default flavor.\n"
	return &Report{ID: id, Title: title, Body: body}, nil
}

// Fig11 reproduces Figure 11: adaptive APHs tracking the lower envelope of
// the flavor curves, one panel per flavor set.
func Fig11(cfg Config) (*Report, error) {
	panels := []struct {
		setID, title, label string
	}{
		{"table6", "(a) Q14: Selection(select_>=_sint_col_sint_val)", "Q14/sel0/select_>=_sint_col_sint_val#0"},
		{"table7", "(b) Q7: Selection(select_<=_sint_col_sint_val)", "Q7/sel1/select_<=_sint_col_sint_val#1"},
		{"table9", "(c) Q1: Project(map_*_slng_col_slng_col)", "Q1/proj0/map_*_slng_col_slng_col#1"},
		{"table8", "(d) Q21: HashJoin(sel_bloomfilter_slng_col)", "Q21/hj0/sel_bloomfilter_slng_col#0"},
		{"table10", "(e) Q7: Selection(select_>=_sint_col_sint_val)", "Q7/sel1/select_>=_sint_col_sint_val#0"},
	}
	var body strings.Builder
	for _, p := range panels {
		r, _, err := flavorSet(cfg, p.setID)
		if err != nil {
			return nil, err
		}
		body.WriteString(r.fig11Panel(cfg, p.title, p.label))
		body.WriteString("\n")
	}
	body.WriteString("micro adaptivity tracks the lower bound of the flavors, switching when\n" +
		"beneficial; detecting deterioration (EXPLOIT_PERIOD) is faster than\n" +
		"discovering improvement (EXPLORE_PERIOD), as the paper notes for (a).\n")
	return &Report{ID: "fig11", Title: "Figure 11: Micro Adaptive execution (sample APHs)", Body: body.String()}, nil
}

// Table5 reproduces the MAB-algorithm comparison: record per-call costs of
// the three compiler flavors over the full TPC-H run, then replay the
// traces through each algorithm and score against OPT.
func Table5(cfg Config) (*Report, error) {
	db := cfg.DB()
	traces, err := trace.Record(3, func(f core.ChooserFactory) *core.Session {
		return cfg.TPCHSession(primitive.CompilerSet(), f)
	}, func(s *core.Session) error { return RunTPCH(db, s) })
	if err != nil {
		return nil, err
	}
	var calls int
	for _, tr := range traces {
		calls += tr.Calls()
	}
	horizon := calls / len(traces)

	type algo struct {
		name string
		mk   func(n int) core.Chooser
	}
	vw := func(p, e, l int) algo {
		return algo{
			name: fmt.Sprintf("vw-greedy(%d,%d,%d)", p, e, l),
			mk: func(n int) core.Chooser {
				return core.NewVWGreedy(n, core.VWParams{
					ExplorePeriod: p, ExploitPeriod: e, ExploreLength: l,
					WarmupSkip: 2, InitialSweep: true,
				}, rand.New(rand.NewSource(cfg.Seed)))
			},
		}
	}
	algos := []algo{
		vw(1024, 8, 2), vw(2048, 8, 1), vw(2048, 8, 2), vw(128, 8, 2), vw(256, 8, 2),
		{"eps-first(0.001)", func(n int) core.Chooser {
			return core.NewEpsFirst(n, 0.001, horizon, rand.New(rand.NewSource(cfg.Seed)))
		}},
		{"eps-first(0.05)", func(n int) core.Chooser {
			return core.NewEpsFirst(n, 0.05, horizon, rand.New(rand.NewSource(cfg.Seed)))
		}},
		{"eps-first(0.1)", func(n int) core.Chooser {
			return core.NewEpsFirst(n, 0.1, horizon, rand.New(rand.NewSource(cfg.Seed)))
		}},
		{"eps-greedy(0.001)", func(n int) core.Chooser {
			return core.NewEpsGreedy(n, 0.001, rand.New(rand.NewSource(cfg.Seed)))
		}},
		{"eps-greedy(0.05)", func(n int) core.Chooser {
			return core.NewEpsGreedy(n, 0.05, rand.New(rand.NewSource(cfg.Seed)))
		}},
		{"eps-greedy(0.1)", func(n int) core.Chooser {
			return core.NewEpsGreedy(n, 0.1, rand.New(rand.NewSource(cfg.Seed)))
		}},
		{"eps-decreasing(1.0)", func(n int) core.Chooser {
			return core.NewEpsDecreasing(n, 1.0, rand.New(rand.NewSource(cfg.Seed)))
		}},
		{"eps-decreasing(0.1)", func(n int) core.Chooser {
			return core.NewEpsDecreasing(n, 0.1, rand.New(rand.NewSource(cfg.Seed)))
		}},
		{"eps-decreasing(5.0)", func(n int) core.Chooser {
			return core.NewEpsDecreasing(n, 5.0, rand.New(rand.NewSource(cfg.Seed)))
		}},
	}
	type scored struct {
		name string
		s    trace.Scores
	}
	var results []scored
	for _, a := range algos {
		results = append(results, scored{a.name, trace.Score(traces, a.mk)})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].s.Average() < results[j].s.Average() })
	rows := [][]string{{"Algorithm", "Absolute/OPT", "Relative/OPT", "Average"}}
	for _, r := range results {
		rows = append(rows, []string{r.name,
			fmt.Sprintf("%.3f", r.s.AbsoluteOverOPT),
			fmt.Sprintf("%.3f", r.s.RelativeOverOPT),
			fmt.Sprintf("%.3f", r.s.Average())})
	}
	body := stats.FormatTable(rows)
	body += fmt.Sprintf("\n%d primitive instances traced; %d calls on average (paper: >300 instances,\n"+
		"16K-32K calls at SF-100). Scores are factors over the per-call oracle OPT;\n"+
		"compiler flavors rarely cross over mid-query, so all algorithms land close\n"+
		"to OPT, with windowed/scaled vw-greedy at the top — matching Table 5.\n",
		len(traces), horizon)
	return &Report{ID: "table5", Title: "Table 5: MAB algorithms on recorded TPC-H traces (factor over OPT)", Body: body}, nil
}

// Table11 reproduces the end-to-end comparison: per-query times of the
// baseline build, and improvement factors of the heuristics build and of
// Micro Adaptivity, with the geometric mean (the TPC-H power score).
func Table11(cfg Config) (*Report, error) {
	db := cfg.DB()
	const cyclesPerSec = 2.8e9 // nominal 2.8GHz clock for the seconds column

	type runResult struct{ cycles []float64 }
	runAll := func(mk func() *core.Session) (runResult, error) {
		var rr runResult
		for _, q := range tpch.Queries() {
			s := mk()
			if _, err := q.Run(db, s); err != nil {
				return rr, err
			}
			rr.cycles = append(rr.cycles, s.Ctx.TotalCycles())
		}
		return rr, nil
	}

	base, err := runAll(func() *core.Session { return cfg.TPCHSession(primitive.Defaults(), nil) })
	if err != nil {
		return nil, err
	}
	heur, err := runAll(func() *core.Session {
		scaled := cfg.Machine.ScaledCaches(cfg.cacheScale())
		return cfg.TPCHSession(primitive.Everything(), heuristics.Factory(scaled, heuristics.Default()))
	})
	if err != nil {
		return nil, err
	}
	adapt, err := runAll(func() *core.Session { return cfg.TPCHSession(primitive.Everything(), nil) })
	if err != nil {
		return nil, err
	}

	rows := [][]string{{"Query", "No Heuristics (sec)", "Heuristics", "Micro Adaptive"}}
	var hFactors, aFactors []float64
	for i, q := range tpch.Queries() {
		hf := base.cycles[i] / heur.cycles[i]
		af := base.cycles[i] / adapt.cycles[i]
		hFactors = append(hFactors, hf)
		aFactors = append(aFactors, af)
		rows = append(rows, []string{q.Name,
			fmt.Sprintf("%.3f", base.cycles[i]/cyclesPerSec),
			fmt.Sprintf("%.2f", hf),
			fmt.Sprintf("%.2f", af)})
	}
	hGeo, aGeo := stats.GeoMean(hFactors), stats.GeoMean(aFactors)
	rows = append(rows, []string{"Geo Avg", "", fmt.Sprintf("%.2f", hGeo), fmt.Sprintf("%.2f", aGeo)})
	body := stats.FormatTable(rows)
	body += fmt.Sprintf("\nvirtual seconds at a nominal %.1fGHz clock; factors are improvements over\n"+
		"the baseline build. Paper (SF-100, machine 1): heuristics 1.05, Micro\n"+
		"Adaptivity 1.09 — adaptivity should beat the hand-tuned heuristics here too\n"+
		"(measured: heuristics %.2f, micro adaptive %.2f).\n", cyclesPerSec/1e9, hGeo, aGeo)
	return &Report{ID: "table11", Title: "Table 11: TPC-H overall — heuristics vs Micro Adaptivity", Body: body}, nil
}
