// Package policy is the named registry of flavor-selection policies: every
// learning algorithm and baseline the system knows, constructible from a
// compact textual Spec like
//
//	vw-greedy:explore=1024,exploit=8,len=2
//	eps-greedy:eps=0.05
//	fixed:arm=2
//
// The registry is the single place the CLI, the concurrent service, the
// experiment harness and the public facade resolve policies, so adding a
// policy here makes it selectable — and warm-startable, if it implements
// the core.WarmStarter capability — everywhere at once.
package policy

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Spec is a parsed policy specification: a registry name plus key=value
// parameters.
type Spec struct {
	Name   string
	Params map[string]string
}

// ParseSpec parses "name" or "name:key=val,key=val". Parameter values are
// validated later, against the named policy's accepted keys.
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	name, rest, hasParams := strings.Cut(s, ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return Spec{}, fmt.Errorf("policy: empty spec")
	}
	sp := Spec{Name: name, Params: map[string]string{}}
	if !hasParams {
		return sp, nil
	}
	for _, part := range strings.Split(rest, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" || v == "" {
			return Spec{}, fmt.Errorf("policy: bad parameter %q in %q (want key=value)", part, s)
		}
		if _, dup := sp.Params[k]; dup {
			return Spec{}, fmt.Errorf("policy: duplicate parameter %q in %q", k, s)
		}
		sp.Params[k] = v
	}
	return sp, nil
}

// String renders the spec back into its canonical textual form.
func (sp Spec) String() string {
	if len(sp.Params) == 0 {
		return sp.Name
	}
	keys := make([]string, 0, len(sp.Params))
	for k := range sp.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + sp.Params[k]
	}
	return sp.Name + ":" + strings.Join(parts, ",")
}

// args is the typed view of a Spec's parameters a builder reads through:
// every getter records the key as consumed and accumulates conversion
// errors, and finish() rejects keys the policy does not accept — a typo in
// a spec fails loudly instead of silently running defaults.
type args struct {
	spec Spec
	used map[string]bool
	err  error
}

func newArgs(sp Spec) *args { return &args{spec: sp, used: make(map[string]bool)} }

func (a *args) raw(key string) (string, bool) {
	a.used[key] = true
	v, ok := a.spec.Params[key]
	return v, ok
}

func (a *args) fail(key, v, want string) {
	if a.err == nil {
		a.err = fmt.Errorf("policy %s: parameter %s=%q is not a valid %s", a.spec.Name, key, v, want)
	}
}

// Float returns the parameter as float64, or def when absent.
func (a *args) Float(key string, def float64) float64 {
	v, ok := a.raw(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		a.fail(key, v, "number")
		return def
	}
	return f
}

// Int returns the parameter as int, or def when absent.
func (a *args) Int(key string, def int) int {
	v, ok := a.raw(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		a.fail(key, v, "integer")
		return def
	}
	return n
}

// Bool returns the parameter as bool, or def when absent.
func (a *args) Bool(key string, def bool) bool {
	v, ok := a.raw(key)
	if !ok {
		return def
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		a.fail(key, v, "boolean")
		return def
	}
	return b
}

// check records a range violation for a key unless cond holds: out-of-range
// values are errors like ill-typed ones, never silent defaults. got is the
// effective value — when the key was never written in the spec, the bad
// value came from configuration defaults (Env), and the message must say
// so instead of blaming a spec parameter the user never typed.
func (a *args) check(cond bool, key string, got any, want string) {
	if cond || a.err != nil {
		return
	}
	if v, ok := a.spec.Params[key]; ok {
		a.err = fmt.Errorf("policy %s: parameter %s=%q out of range (want %s)",
			a.spec.Name, key, v, want)
	} else {
		a.err = fmt.Errorf("policy %s: effective %s=%v (from configuration defaults) out of range (want %s)",
			a.spec.Name, key, got, want)
	}
}

// finish returns the first conversion error or an unknown-key error.
func (a *args) finish() error {
	if a.err != nil {
		return a.err
	}
	var unknown []string
	for k := range a.spec.Params {
		if !a.used[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("policy %s: unknown parameter(s) %s", a.spec.Name, strings.Join(unknown, ", "))
	}
	return nil
}
